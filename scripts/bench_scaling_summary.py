#!/usr/bin/env python3
"""Render the 1-vs-N-thread scaling table of a bench.sh trajectory.

Reads the merged JSON written by scripts/bench.sh and prints a GitHub
Markdown table (case, t1 mean ms, tN mean ms, speedup) per bench binary —
the payload the bench-multicore CI job appends to its job summary. Purely
informational: the job gates on counter determinism (inside bench.sh),
never on the speedup numbers, which are noisy on shared CI runners.

Since PR 9 the trajectory carries bench_service `service_solve` cases; in
addition to the generic scaling rows, a service-throughput section shows
the cold-vs-warm cache contrast per worker count (the wall time the shared
FactorCache saves a same-topology burst).

Since PR 10 the pipeline cases carry per-phase factorization timings (a
"timings" object next to the gated "counters"); a factor-phase section
breaks the sparse factorization down into ordering / symbolic / numeric
wall per problem size.

Usage: bench_scaling_summary.py [trajectory.json]   (default BENCH_pr10.json)
"""

import json
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_pr10.json"
    with open(path) as f:
        traj = json.load(f)
    configs = traj.get("thread_configs", [])
    if len(configs) != 2:
        print(f"{path}: expected two thread configs, got {configs!r}",
              file=sys.stderr)
        return 2
    t1, tn = configs
    runs = {(r["binary"], r["threads"]): r for r in traj.get("runs", [])}

    print(f"## Bench scaling (PR {traj.get('pr', '?')}): "
          f"{t1} vs {tn} threads")
    print()
    print(f"| case | t{t1} mean ms | t{tn} mean ms | speedup |")
    print("| --- | ---: | ---: | ---: |")
    rows = 0
    for binary in sorted({b for b, _ in runs}):
        base = runs.get((binary, t1))
        many = runs.get((binary, tn))
        if base is None or many is None:
            print(f"{path}: {binary} missing a thread config",
                  file=sys.stderr)
            return 2
        many_by_name = {c["name"]: c for c in many["results"]}
        for case in base["results"]:
            other = many_by_name.get(case["name"])
            if other is None:
                continue
            a = case["wall_ms"]["mean"]
            b = other["wall_ms"]["mean"]
            speedup = f"{a / b:.2f}x" if b > 0 else "n/a"
            print(f"| {case['name']} | {a:.3f} | {b:.3f} | {speedup} |")
            rows += 1
    print()
    print("_Counters are identical across both configurations (gated in "
          "scripts/bench.sh); wall times are single CI samples — the "
          "speedup column is informational, not gated._")

    # Service throughput: cold vs warm cache per worker count, from the
    # t1 run (BCCLAP_THREADS only resizes the per-worker Runtimes; the
    # cold/warm contrast is the cache's, not the thread count's).
    service = runs.get(("bench_service", t1))
    if service is not None:
        by_name = {c["name"]: c for c in service["results"]}
        pairs = []
        for name, case in sorted(by_name.items()):
            if not name.endswith("/cold"):
                continue
            warm = by_name.get(name[: -len("cold")] + "warm")
            if warm is not None:
                pairs.append((name.rsplit("/", 1)[0], case, warm))
        if pairs:
            print()
            print("### Solver service: cold vs warm cache "
                  f"(BCCLAP_THREADS={t1})")
            print()
            print("| case | cold mean ms | warm mean ms | warm speedup |")
            print("| --- | ---: | ---: | ---: |")
            for label, cold, warm in pairs:
                a = cold["wall_ms"]["mean"]
                b = warm["wall_ms"]["mean"]
                speedup = f"{a / b:.2f}x" if b > 0 else "n/a"
                print(f"| {label} | {a:.3f} | {b:.3f} | {speedup} |")
            print()
            print("_Warm cases are gated in scripts/bench.sh: no cache "
                  "misses, zero prepare work, reply bytes identical to "
                  "the cold and facade-direct runs._")
    # Factor-phase breakdown: ordering / symbolic / numeric wall of the
    # sparse factorization per problem size, from the t1 pipeline run.
    pipeline = runs.get(("bench_pipeline", t1))
    if pipeline is not None:
        phase_rows = []
        for case in pipeline["results"]:
            timings = case.get("timings", {})
            if "ordering_ms" not in timings:
                continue
            o = timings["ordering_ms"]
            s = timings.get("symbolic_ms", 0.0)
            n = timings.get("numeric_ms", 0.0)
            total = o + s + n
            share = f"{100.0 * o / total:.1f}%" if total > 0 else "n/a"
            supernodes = case.get("counters", {}).get("supernodes")
            sn = f"{supernodes:.0f}" if supernodes is not None else "n/a"
            phase_rows.append(
                f"| {case['name']} | {o:.3f} | {s:.3f} | {n:.3f} "
                f"| {share} | {sn} |")
        if phase_rows:
            print()
            print("### Sparse factorization phases "
                  f"(BCCLAP_THREADS={t1})")
            print()
            print("| case | ordering ms | symbolic ms | numeric ms "
                  "| ordering share | supernodes |")
            print("| --- | ---: | ---: | ---: | ---: | ---: |")
            for row in phase_rows:
                print(row)
            print()
            print("_The ordering share at n=10^4 is gated <= 25% in "
                  "scripts/bench.sh; the AMD-vs-exact-MD speedup gate "
                  "reads the ordering_amd_vs_exact timings._")
    if rows == 0:
        print(f"{path}: no comparable cases found", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
