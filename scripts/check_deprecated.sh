#!/usr/bin/env bash
# Deprecated-surface ratchet (PR 5).
#
# PR 5 removed every context-less algorithm wrapper (factor/solve/multiply/
# sparsify/lp/flow overloads over common::default_context()) after
# migrating the suites onto explicit Contexts. What remains of the
# deprecated surface is the ThreadPool global shim family plus
# default_context() itself — kept deliberately (test_runtime and
# test_thread_pool pin the legacy contracts; the bench harness uses the
# shims to report the thread count).
#
# This script counts the remaining call sites over src/ tests/ bench/
# examples/ and compares the total against the checked-in baseline
# (scripts/deprecated_baseline.txt). CI fails when the count INCREASES —
# new code must take a common::Context / bcclap::Runtime, never reach for
# the process-global accessors. When the count decreases, re-run with
# --update and commit the lowered baseline (the ratchet only tightens).
#
# Usage: scripts/check_deprecated.sh [--update]
set -euo pipefail

cd "$(dirname "$0")/.."
baseline_file="scripts/deprecated_baseline.txt"

# Literal call-site patterns of the remaining deprecated surface. Fixed
# strings (grep -F) so the gate never drifts with regex quoting.
patterns=(
  "ThreadPool::global()"
  "set_global_threads("
  "global_threads()"
  "default_context("
)

count_pattern() {
  grep -rFo --include='*.h' --include='*.cpp' -- "$1" \
    src tests bench examples 2>/dev/null | wc -l
}

total=0
breakdown=""
for p in "${patterns[@]}"; do
  c="$(count_pattern "$p")"
  breakdown+="$(printf '%6d  %s' "$c" "$p")"$'\n'
  total=$((total + c))
done

echo "deprecated-surface call sites (src/ tests/ bench/ examples/):"
printf '%s' "$breakdown"
echo "total: $total"

if [ "${1:-}" = "--update" ]; then
  printf '%d\n' "$total" > "$baseline_file"
  echo "wrote $baseline_file"
  exit 0
fi

if [ ! -f "$baseline_file" ]; then
  echo "ERROR: $baseline_file missing; run $0 --update and commit it" >&2
  exit 1
fi
baseline="$(head -n1 "$baseline_file" | tr -d '[:space:]')"

if [ "$total" -gt "$baseline" ]; then
  echo "ERROR: deprecated-surface call sites increased: $total > baseline" \
       "$baseline" >&2
  echo "New code must take a common::Context (rt.context()) instead of the" >&2
  echo "process-global accessors; see README 'Deprecation path'." >&2
  exit 1
fi
if [ "$total" -lt "$baseline" ]; then
  echo "note: count dropped below baseline ($total < $baseline);" \
       "ratchet down with: $0 --update"
fi
echo "deprecated-surface ratchet: OK ($total <= $baseline)"
