#!/usr/bin/env bash
# Formatting entrypoint (.clang-format: Google base, 80 columns).
#
# The one-shot legacy reformat has been applied, so the whole tree is
# expected to be clean; CI blocks on the diff-scoped check, and this
# script covers the full tree:
#   scripts/format.sh          reformat every tracked C++ file in place
#   scripts/format.sh --check  fail (exit 1) if any file would change
#
# Uses the first clang-format found among $CLANG_FORMAT, clang-format,
# clang-format-<N>. Exits 2 if none is installed.
set -euo pipefail

cd "$(dirname "$0")/.."

find_formatter() {
  if [ -n "${CLANG_FORMAT:-}" ]; then
    echo "$CLANG_FORMAT"
    return
  fi
  for candidate in clang-format clang-format-{21,20,19,18,17,16,15,14}; do
    if command -v "$candidate" > /dev/null 2>&1; then
      echo "$candidate"
      return
    fi
  done
  echo "error: no clang-format binary found (set \$CLANG_FORMAT)" >&2
  exit 2
}

FORMATTER="$(find_formatter)"
mapfile -t files < <(git ls-files '*.cpp' '*.h')

if [ "${1:-}" = "--check" ]; then
  "$FORMATTER" --dry-run -Werror "${files[@]}"
  echo "formatting clean (${#files[@]} files, $("$FORMATTER" --version))"
else
  "$FORMATTER" -i "${files[@]}"
  echo "reformatted ${#files[@]} files with $("$FORMATTER" --version)"
fi
