#!/usr/bin/env bash
# The tier-1 verification entrypoint (ROADMAP.md). Builders and CI run this
# one script; it is exactly the roadmap command, nothing more:
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
#
# Environment knobs:
#   BCCLAP_SANITIZE=ON   build + run the suites under ASan+UBSan
#   BUILD_DIR=<path>     build tree location (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j
