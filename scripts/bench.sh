#!/usr/bin/env bash
# Machine-readable benchmark trajectory (BENCH_pr8.json).
#
# Builds the harness benches and runs the three pipeline-level binaries
# under BCCLAP_THREADS=1 and BCCLAP_THREADS=N (default 4), then merges the
# per-run JSON into one trajectory file at the repo root. The counters of
# the two configurations must be identical — the engine's determinism
# contract, which since PR 3 also covers the blocked LDLT factorization
# and the sparsifier's pure-oracle sampling fast path, and since PR 4 the
# `concurrent_runtimes` case: two bcclap::Runtimes (1 worker and the
# env-resolved count) running the n=128 pipeline concurrently, whose
# `identical` counter asserts byte-identical results in-run. Since PR 5
# the laplacian/pipeline benches carry `batched_solve` cases (k = 1/8/32
# right-hand sides at n = 256 on the bounded-degree sparse generator), and
# a second gate checks the amortization claim: per-RHS wall time at k = 32
# must land strictly below the k = 1 case (factor once, solve many). Since
# PR 6 the pipeline bench carries `pipeline_sparse_*` cases (sparse-first
# CSC LDL^T at n = 1024 / 4096 / 10^4 on the bounded-degree generator),
# and a third gate checks the dispatch: the large cases must report
# sparse_factors >= 1 and dense_factors = 0 — the preconditioner
# factorization actually ran on the sparse path, not the dense kernel.
# Since PR 7 the pipeline bench carries `pipeline_engine_auto/n=1024`
# (facade default engine = "auto"), and a fourth gate checks the registry
# tuner's selection: its engine_is_exact_sparse counter must be 1 — the
# tuner routed the large sparse instance to the exact-sparse engine.
# Since PR 8 the pipeline bench carries `pipeline_cached_solve/n=1024`
# (cold + warm solve on one cache-enabled Runtime), and a fifth gate
# checks the factorization cache: the warm run must report
# warm_cache_hits >= 1 with warm_sparsify_count = 0 and
# identical_to_uncached = 1 — served from the cache, zero prepare work,
# byte-identical to the cache-off facade.
# Since PR 9 the bench_service binary runs `service_solve` throughput
# cases (a 16-request same-topology burst through service::SolverService
# at 1 and 4 workers, cold vs warm shared FactorCache), and a sixth gate
# checks the serving layer: every case must report
# identical_to_reference = 1 (reply bytes equal the direct facade panel),
# the warm cases warm_all_hits = 1 with warm_prepare_work = 0 (served
# from cache residency, zero sparsify/factor work), and the warm mean
# wall time at workers = 1 must land strictly below the cold mean.
# Since PR 10 the harness emits a per-case "timings" object (wall-clock
# phase splits, exempt from the counter gate by construction), and two
# more gates read it: the AMD quotient-graph ordering must be >= 5x
# faster than the retained exact-MD reference at n = 10^4
# (ordering_amd_vs_exact), and the ordering phase of
# pipeline_sparse_solve/n=10000 must cost at most 25% of the total
# factorization time (ordering + symbolic + numeric) — ordering stays a
# minor phase, not the bottleneck it was with the std::set ordering.
# The script fails loudly if any counter differs between configurations.
#
# Environment knobs:
#   BUILD_DIR=<path>      build tree location (default: build)
#   BENCH_THREADS=<n>     the multi-threaded configuration (default: 4)
#   BENCH_REPEATS=<n>     measured repetitions per case (default: 3)
#   BENCH_OUT=<path>      output file (default: BENCH_pr10.json)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
BENCH_THREADS="${BENCH_THREADS:-4}"
BENCH_REPEATS="${BENCH_REPEATS:-3}"
BENCH_OUT="${BENCH_OUT:-BENCH_pr10.json}"
BENCHES=(bench_pipeline bench_sparsifier bench_laplacian bench_service)

if [ "$BENCH_THREADS" -le 1 ]; then
  echo "BENCH_THREADS must be > 1 (the trajectory compares a 1-thread and" >&2
  echo "a multi-thread configuration; comparing t1 against itself would" >&2
  echo "make the determinism gate vacuous)" >&2
  exit 2
fi

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j --target bcclap_benches > /dev/null

json_dir="$BUILD_DIR/bench-json"
mkdir -p "$json_dir"

runs=()
for bench in "${BENCHES[@]}"; do
  for threads in 1 "$BENCH_THREADS"; do
    out="$json_dir/${bench}_t${threads}.json"
    echo "== $bench (BCCLAP_THREADS=$threads)"
    BCCLAP_THREADS="$threads" "$BUILD_DIR/bench/$bench" \
      --repeats "$BENCH_REPEATS" --json "$out"
    runs+=("$out")
  done
done

# Determinism gate: counters (rounds, sizes, fingerprints) must not depend
# on the thread count; only wall times may differ.
for bench in "${BENCHES[@]}"; do
  a="$json_dir/${bench}_t1.json"
  b="$json_dir/${bench}_t${BENCH_THREADS}.json"
  if ! diff <(grep -o '"counters": {[^}]*}' "$a") \
            <(grep -o '"counters": {[^}]*}' "$b") > /dev/null; then
    echo "ERROR: $bench counters differ between 1 and $BENCH_THREADS threads" >&2
    exit 1
  fi
done
echo "determinism gate: counters identical across thread counts"

# Batched-solve amortization gate: per-RHS wall time of the k=32 panel must
# be strictly below the k=1 case (same instance, same eps — the only
# difference is amortizing sparsify+factor+dispatch across the panel).
wall_of() {  # wall_of <json> <case-name> -> mean wall ms
  grep -F "\"name\": \"$2\"" "$1" \
    | sed 's/.*"mean": \([0-9.eE+-]*\).*/\1/'
}
lap_t1="$json_dir/bench_laplacian_t1.json"
w1="$(wall_of "$lap_t1" "batched_solve/n=256/k=1")"
w32="$(wall_of "$lap_t1" "batched_solve/n=256/k=32")"
if [ -z "$w1" ] || [ -z "$w32" ]; then
  echo "ERROR: batched_solve cases missing from $lap_t1" >&2
  exit 1
fi
if ! awk -v w1="$w1" -v w32="$w32" 'BEGIN { exit !(w32 / 32 < w1) }'; then
  echo "ERROR: batched per-RHS cost did not amortize:" >&2
  echo "  k=1 wall ${w1} ms vs k=32 per-RHS $(awk -v w=$w32 'BEGIN{print w/32}') ms" >&2
  exit 1
fi
echo "batched gate: k=32 per-RHS $(awk -v w=$w32 'BEGIN{printf "%.3f", w/32}') ms < k=1 ${w1} ms"

# Sparse-dispatch gate: the large pipeline cases must have factored their
# preconditioner on the sparse path (sparse_factors >= 1, dense_factors
# = 0) — otherwise the "break the dense O(n^2) wall" claim silently
# regressed to the dense kernel.
counter_of() {  # counter_of <json> <case-name> <counter> -> value
  grep -F "\"name\": \"$2\"" "$1" \
    | sed "s/.*\"$3\": \([0-9.eE+-]*\).*/\1/"
}
pipe_t1="$json_dir/bench_pipeline_t1.json"
for case in "pipeline_sparse_solve/n=1024" \
            "pipeline_sparse_solve/n=4096" \
            "pipeline_sparse_solve/n=10000" \
            "pipeline_sparse_batched/n=10000/k=32"; do
  sf="$(counter_of "$pipe_t1" "$case" sparse_factors)"
  df="$(counter_of "$pipe_t1" "$case" dense_factors)"
  if [ -z "$sf" ] || [ -z "$df" ]; then
    echo "ERROR: $case missing from $pipe_t1" >&2
    exit 1
  fi
  if ! awk -v sf="$sf" -v df="$df" 'BEGIN { exit !(sf >= 1 && df == 0) }'; then
    echo "ERROR: $case ran on the dense path" >&2
    echo "  sparse_factors=$sf dense_factors=$df" >&2
    exit 1
  fi
done
echo "sparse gate: large pipeline cases factored on the sparse path"

# Engine-auto gate: under the facade default engine = "auto", the registry
# tuner must route the n=1024 sparse instance to the exact-sparse engine
# (RunStats engine string, surfaced as the engine_is_exact_sparse counter).
ea="$(counter_of "$pipe_t1" "pipeline_engine_auto/n=1024" engine_is_exact_sparse)"
if [ -z "$ea" ]; then
  echo "ERROR: pipeline_engine_auto/n=1024 missing from $pipe_t1" >&2
  exit 1
fi
if ! awk -v ea="$ea" 'BEGIN { exit !(ea == 1) }'; then
  echo "ERROR: the auto tuner did not select exact-sparse at n=1024" >&2
  echo "  engine_is_exact_sparse=$ea" >&2
  exit 1
fi
echo "engine gate: auto tuner selected exact-sparse at n=1024"

# Factor-cache gate: the warm half of pipeline_cached_solve must have been
# served from the cache (warm_cache_hits >= 1) with zero prepare work
# (warm_sparsify_count = 0) and bytes identical to the cache-off facade
# (identical_to_uncached = 1).
ch="$(counter_of "$pipe_t1" "pipeline_cached_solve/n=1024" warm_cache_hits)"
cs="$(counter_of "$pipe_t1" "pipeline_cached_solve/n=1024" warm_sparsify_count)"
ci="$(counter_of "$pipe_t1" "pipeline_cached_solve/n=1024" identical_to_uncached)"
if [ -z "$ch" ] || [ -z "$cs" ] || [ -z "$ci" ]; then
  echo "ERROR: pipeline_cached_solve/n=1024 missing from $pipe_t1" >&2
  exit 1
fi
if ! awk -v ch="$ch" -v cs="$cs" -v ci="$ci" \
     'BEGIN { exit !(ch >= 1 && cs == 0 && ci == 1) }'; then
  echo "ERROR: the factorization cache did not serve the warm solve" >&2
  echo "  warm_cache_hits=$ch warm_sparsify_count=$cs identical_to_uncached=$ci" >&2
  exit 1
fi
echo "cache gate: warm solve hit the cache with zero prepare work"

# Service gate: every service_solve case must have replied with bytes
# identical to the direct facade panel; the warm cases must have been
# served purely from cache residency (no misses, at least one hit, zero
# sparsify/factor prepare work); and the warm burst at workers=1 must be
# strictly faster than the cold one — the throughput the shared cache buys.
svc_t1="$json_dir/bench_service_t1.json"
for case in "service_solve/n=256/workers=1/cold" \
            "service_solve/n=256/workers=1/warm" \
            "service_solve/n=256/workers=4/cold" \
            "service_solve/n=256/workers=4/warm"; do
  ir="$(counter_of "$svc_t1" "$case" identical_to_reference)"
  if [ -z "$ir" ]; then
    echo "ERROR: $case missing from $svc_t1" >&2
    exit 1
  fi
  if ! awk -v ir="$ir" 'BEGIN { exit !(ir == 1) }'; then
    echo "ERROR: $case replies differ from the facade reference (ir=$ir)" >&2
    exit 1
  fi
done
for case in "service_solve/n=256/workers=1/warm" \
            "service_solve/n=256/workers=4/warm"; do
  wh="$(counter_of "$svc_t1" "$case" warm_all_hits)"
  wp="$(counter_of "$svc_t1" "$case" warm_prepare_work)"
  if ! awk -v wh="$wh" -v wp="$wp" 'BEGIN { exit !(wh == 1 && wp == 0) }'; then
    echo "ERROR: $case was not served from cache residency" >&2
    echo "  warm_all_hits=$wh warm_prepare_work=$wp" >&2
    exit 1
  fi
done
sc="$(wall_of "$svc_t1" "service_solve/n=256/workers=1/cold")"
sw="$(wall_of "$svc_t1" "service_solve/n=256/workers=1/warm")"
if ! awk -v sc="$sc" -v sw="$sw" 'BEGIN { exit !(sw < sc) }'; then
  echo "ERROR: warm service burst not faster than cold (warm ${sw} ms vs cold ${sc} ms)" >&2
  exit 1
fi
echo "service gate: byte-identical replies; warm burst ${sw} ms < cold ${sc} ms"

# Ordering-speedup gate: the AMD quotient-graph ordering must be at least
# 5x faster than the retained exact-MD reference on the n = 10^4 topology.
# Both readings come from the "timings" object (wall clocks, deliberately
# outside the cross-config counter diff).
amd_ms="$(counter_of "$pipe_t1" "ordering_amd_vs_exact/n=10000" amd_ms)"
exact_ms="$(counter_of "$pipe_t1" "ordering_amd_vs_exact/n=10000" exact_md_ms)"
if [ -z "$amd_ms" ] || [ -z "$exact_ms" ]; then
  echo "ERROR: ordering_amd_vs_exact/n=10000 missing from $pipe_t1" >&2
  exit 1
fi
if ! awk -v a="$amd_ms" -v e="$exact_ms" 'BEGIN { exit !(a * 5 <= e) }'; then
  echo "ERROR: AMD ordering not >= 5x faster than exact-MD at n=10000" >&2
  echo "  amd_ms=$amd_ms exact_md_ms=$exact_ms" >&2
  exit 1
fi
echo "ordering gate: AMD ${amd_ms} ms vs exact-MD ${exact_ms} ms (>= 5x)"

# Factor-phase gate: in the n = 10^4 pipeline factorization, ordering must
# cost at most 25% of the total factor time — the phase split that used
# to be dominated by the std::set ordering.
o_ms="$(counter_of "$pipe_t1" "pipeline_sparse_solve/n=10000" ordering_ms)"
s_ms="$(counter_of "$pipe_t1" "pipeline_sparse_solve/n=10000" symbolic_ms)"
n_ms="$(counter_of "$pipe_t1" "pipeline_sparse_solve/n=10000" numeric_ms)"
if [ -z "$o_ms" ] || [ -z "$s_ms" ] || [ -z "$n_ms" ]; then
  echo "ERROR: factor-phase timings missing from pipeline_sparse_solve/n=10000" >&2
  exit 1
fi
if ! awk -v o="$o_ms" -v s="$s_ms" -v n="$n_ms" \
     'BEGIN { exit !(o <= 0.25 * (o + s + n)) }'; then
  echo "ERROR: ordering phase exceeds 25% of factor time at n=10000" >&2
  echo "  ordering_ms=$o_ms symbolic_ms=$s_ms numeric_ms=$n_ms" >&2
  exit 1
fi
echo "phase gate: ordering ${o_ms} ms of $(awk -v o="$o_ms" -v s="$s_ms" -v n="$n_ms" 'BEGIN{printf "%.3f", o+s+n}') ms factor time"

{
  echo '{'
  echo '  "pr": 10,'
  echo '  "generated_by": "scripts/bench.sh",'
  echo "  \"thread_configs\": [1, $BENCH_THREADS],"
  echo '  "runs": ['
  first=1
  for f in "${runs[@]}"; do
    if [ "$first" -eq 0 ]; then echo '  ,'; fi
    first=0
    sed 's/^/  /' "$f"
  done
  echo '  ]'
  echo '}'
} > "$BENCH_OUT"
echo "wrote $BENCH_OUT"
