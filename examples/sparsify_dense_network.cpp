// Scenario: compressing a dense overlay network for monitoring.
//
// An operator wants a sparse "skeleton" of a dense communication overlay
// that preserves all cut and congestion structure (spectral sparsifier),
// computed *in-network* under broadcast constraints, and wants to know the
// price of the broadcast constraint in rounds. Demonstrates Theorem 1.2,
// the Lemma 3.3 coupling, and the Lemma 3.1 orientation claim.
#include <cstdio>

#include "core/bcclap.h"
#include "spanner/cluster.h"

int main() {
  using namespace bcclap;

  rng::Stream stream(31337);
  const std::size_t n = 56;
  const graph::Graph overlay = graph::random_regularish(n, 24, 4, stream);
  std::printf("overlay: %zu nodes, %zu links\n", n, overlay.num_edges());

  for (std::size_t t : {1u, 2u, 4u, 8u}) {
    bcc::Network net(bcc::Model::kBroadcastCongest, overlay,
                     bcc::Network::default_bandwidth(n));
    sparsify::SparsifyOptions opt;
    opt.epsilon = 0.5;
    opt.k = 2;
    opt.t = t;
    const auto res = sparsify::spectral_sparsify(overlay, opt, 17, net);
    const auto check = sparsify::check_sparsifier(overlay, res.sparsifier);
    const auto deg = spanner::out_degrees(n, res.out_vertex);
    std::size_t max_deg = 0;
    for (auto d : deg) max_deg = std::max(max_deg, d);
    std::printf(
        "t = %zu: skeleton %4zu links (%5.1f%%), achieved eps %5.2f, "
        "max out-degree %2zu, %6lld BC rounds, deduction %s\n",
        t, res.sparsifier.num_edges(),
        100.0 * static_cast<double>(res.sparsifier.num_edges()) /
            static_cast<double>(overlay.num_edges()),
        check.valid ? check.achieved_epsilon() : -1.0, max_deg,
        static_cast<long long>(res.rounds),
        res.deduction_consistent ? "consistent" : "BROKEN");
  }

  // The Lemma 3.3 coupling, live: the centralized a-priori reference
  // produces the identical skeleton from the same seed.
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = 2;
  bcc::Network net(bcc::Model::kBroadcastCongest, overlay,
                   bcc::Network::default_bandwidth(n));
  const auto adhoc = sparsify::spectral_sparsify(overlay, opt, 99, net);
  const auto apriori = sparsify::spectral_sparsify_apriori(overlay, opt, 99);
  std::printf("coupling check (Lemma 3.3): ad-hoc vs a-priori skeletons %s\n",
              adhoc.original_edge == apriori.original_edge ? "IDENTICAL"
                                                           : "DIFFER");
  return 0;
}
