// Scenario: compressing a dense overlay network for monitoring.
//
// An operator wants a sparse "skeleton" of a dense communication overlay
// that preserves all cut and congestion structure (spectral sparsifier),
// computed *in-network* under broadcast constraints, and wants to know the
// price of the broadcast constraint in rounds. Demonstrates Theorem 1.2,
// the Lemma 3.3 coupling, and the Lemma 3.1 orientation claim, all through
// the bcclap::Runtime facade: one Runtime drives the whole t-sweep (facade
// calls are call-order independent, so reuse is safe), and a second
// Runtime seeds the coupling check (the Runtime's seed is the pipeline
// seed).
#include <cstdio>

#include "core/bcclap.h"
#include "spanner/cluster.h"

int main() {
  using namespace bcclap;

  rng::Stream stream(31337);
  const std::size_t n = 56;
  const graph::Graph overlay = graph::random_regularish(n, 24, 4, stream);
  std::printf("overlay: %zu nodes, %zu links\n", n, overlay.num_edges());

  RuntimeOptions ropts;
  ropts.seed = 17;
  Runtime rt(ropts);
  for (std::size_t t : {1u, 2u, 4u, 8u}) {
    sparsify::SparsifyOptions opt;
    opt.epsilon = 0.5;
    opt.k = 2;
    opt.t = t;
    const SparsifyRun run = rt.sparsify(overlay, opt);
    const auto& res = run.result;
    const auto check = sparsify::check_sparsifier(overlay, res.sparsifier);
    const auto deg = spanner::out_degrees(n, res.out_vertex);
    std::size_t max_deg = 0;
    for (auto d : deg) max_deg = std::max(max_deg, d);
    std::printf(
        "t = %zu: skeleton %4zu links (%5.1f%%), achieved eps %5.2f, "
        "max out-degree %2zu, %6lld BC rounds, deduction %s\n",
        t, res.sparsifier.num_edges(),
        100.0 * static_cast<double>(res.sparsifier.num_edges()) /
            static_cast<double>(overlay.num_edges()),
        check.valid ? check.achieved_epsilon() : -1.0, max_deg,
        static_cast<long long>(run.stats.rounds),
        res.deduction_consistent ? "consistent" : "BROKEN");
  }

  // The Lemma 3.3 coupling, live: the centralized a-priori reference
  // produces the identical skeleton from the same seed (the coupling
  // Runtime's seed).
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = 2;
  RuntimeOptions copts;
  copts.seed = 99;
  Runtime coupling_rt(copts);
  const SparsifyRun adhoc = coupling_rt.sparsify(overlay, opt);
  const auto apriori =
      sparsify::spectral_sparsify_apriori(coupling_rt.context(), overlay, opt);
  std::printf("coupling check (Lemma 3.3): ad-hoc vs a-priori skeletons %s\n",
              adhoc.result.original_edge == apriori.original_edge
                  ? "IDENTICAL"
                  : "DIFFER");
  return 0;
}
