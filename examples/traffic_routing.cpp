// Scenario: minimum-cost traffic routing (Theorem 1.1).
//
// A logistics network with arc capacities (lane throughput) and per-unit
// tolls; the dispatcher wants the maximum volume from depot to port at the
// least total toll. The BCC interior-point pipeline — driven through the
// bcclap::Runtime facade — computes the *exact* integral optimum; the
// combinatorial baseline confirms it.
#include <cstdio>

#include "core/bcclap.h"

int main() {
  using namespace bcclap;

  RuntimeOptions ropts;
  ropts.seed = 2025;
  Runtime rt(ropts);

  // Depot = 0, port = 11; random mid-size road network.
  rng::Stream stream(7);
  const std::size_t n = 12;
  const graph::Digraph roads =
      graph::random_flow_network(n, 24, /*max_capacity=*/6, /*max_cost=*/5,
                                 stream);
  std::printf("road network: %zu junctions, %zu lanes\n", n,
              roads.num_arcs());

  flow::McmfOptions opt;
  opt.seed = 2025;  // Daitch-Spielman perturbation stream
  const McmfRun plan = rt.min_cost_max_flow(roads, 0, n - 1, opt);
  if (!plan.result.exact) {
    std::printf("IPM pipeline failed to round to a feasible plan\n");
    return 1;
  }
  std::printf("IPM plan:     volume %lld, total toll %lld "
              "(%zu path steps, %zu Newton steps, %lld BCC rounds, "
              "%zu perturbation redraws, %.2f ms wall)\n",
              static_cast<long long>(plan.result.flow.value),
              static_cast<long long>(plan.result.flow.cost),
              plan.stats.iterations, plan.stats.steps,
              static_cast<long long>(plan.stats.rounds), plan.result.retries,
              1e3 * plan.stats.wall_seconds);

  const auto baseline = flow::min_cost_max_flow_ssp(roads, 0, n - 1);
  std::printf("baseline SSP: volume %lld, total toll %lld -> %s\n",
              static_cast<long long>(baseline.value),
              static_cast<long long>(baseline.cost),
              (plan.result.flow.value == baseline.value &&
               plan.result.flow.cost == baseline.cost)
                  ? "EXACT MATCH"
                  : "MISMATCH");

  std::printf("lane loads (tail->head: used/capacity @ toll):\n");
  for (std::size_t a = 0; a < roads.num_arcs(); ++a) {
    if (plan.result.flow.flow[a] == 0) continue;
    const auto& arc = roads.arc(a);
    std::printf("  %2zu -> %2zu : %lld/%lld @ %lld\n", arc.tail, arc.head,
                static_cast<long long>(plan.result.flow.flow[a]),
                static_cast<long long>(arc.capacity),
                static_cast<long long>(arc.cost));
  }
  return plan.result.flow.value == baseline.value &&
                 plan.result.flow.cost == baseline.cost
             ? 0
             : 1;
}
