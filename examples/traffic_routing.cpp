// Scenario: minimum-cost traffic routing (Theorem 1.1), served through
// the solver service.
//
// A logistics network with arc capacities (lane throughput) and per-unit
// tolls; the dispatcher wants the maximum volume from depot to port at the
// least total toll. The routing request is submitted to a
// service::SolverService — the long-lived serving layer that multiplexes
// worker Runtimes over a shared factorization cache — and the BCC
// interior-point pipeline computes the *exact* integral optimum; the
// combinatorial baseline confirms it.
#include <cstdio>

#include "core/bcclap.h"

int main() {
  using namespace bcclap;

  // Depot = 0, port = 11; random mid-size road network.
  rng::Stream stream(7);
  const std::size_t n = 12;
  const graph::Digraph roads =
      graph::random_flow_network(n, 24, /*max_capacity=*/6, /*max_cost=*/5,
                                 stream);
  std::printf("road network: %zu junctions, %zu lanes\n", n,
              roads.num_arcs());

  service::ServiceOptions sopts;
  sopts.workers = 1;
  service::SolverService dispatcher(sopts);

  service::Request req;
  req.type = service::RequestType::kMcmf;
  req.seed = 2025;
  req.network = roads;
  req.source = 0;
  req.sink = n - 1;
  req.mcmf.seed = 2025;  // Daitch-Spielman perturbation stream

  service::Submission sub = dispatcher.submit(std::move(req));
  if (!sub.accepted()) {
    std::printf("dispatcher rejected the request: %s\n", sub.reason());
    return 1;
  }
  const service::Reply& plan = sub.reply->wait();
  if (plan.status != service::ReplyStatus::kOk) {
    std::printf("IPM pipeline failed: %s\n", plan.error.c_str());
    return 1;
  }
  std::printf("IPM plan:     volume %lld, total toll %lld "
              "(%zu path steps, %zu Newton steps, %lld BCC rounds, "
              "%zu perturbation redraws, %.2f ms wall)\n",
              static_cast<long long>(plan.mcmf.flow.value),
              static_cast<long long>(plan.mcmf.flow.cost),
              plan.stats.iterations, plan.stats.steps,
              static_cast<long long>(plan.stats.rounds), plan.mcmf.retries,
              1e3 * plan.stats.wall_seconds);

  const auto baseline = flow::min_cost_max_flow_ssp(roads, 0, n - 1);
  std::printf("baseline SSP: volume %lld, total toll %lld -> %s\n",
              static_cast<long long>(baseline.value),
              static_cast<long long>(baseline.cost),
              (plan.mcmf.flow.value == baseline.value &&
               plan.mcmf.flow.cost == baseline.cost)
                  ? "EXACT MATCH"
                  : "MISMATCH");

  std::printf("lane loads (tail->head: used/capacity @ toll):\n");
  for (std::size_t a = 0; a < roads.num_arcs(); ++a) {
    if (plan.mcmf.flow.flow[a] == 0) continue;
    const auto& arc = roads.arc(a);
    std::printf("  %2zu -> %2zu : %lld/%lld @ %lld\n", arc.tail, arc.head,
                static_cast<long long>(plan.mcmf.flow.flow[a]),
                static_cast<long long>(arc.capacity),
                static_cast<long long>(arc.cost));
  }
  dispatcher.shutdown();
  return plan.mcmf.flow.value == baseline.value &&
                 plan.mcmf.flow.cost == baseline.cost
             ? 0
             : 1;
}
