// Scenario: deterministic replay of a solver-service request stream.
//
// A synthetic traffic mix — repeated-topology Laplacian solves (the
// coalescing and warm-cache fodder), a multi-RHS panel, a sparsification
// and an exact min-cost max-flow — is journaled to disk, read back, and
// replayed twice: once through a single-worker service, once through a
// four-worker one. The reply payload bytes must be identical per request:
// worker count, queue order, cache state and coalescing change wall time
// and counters, never bytes. That is the service's determinism contract
// (service/solver_service.h), demonstrated end to end.
#include <cstdio>
#include <string>
#include <vector>

#include "core/bcclap.h"

using namespace bcclap;

namespace {

linalg::Vec gaussian_rhs(std::size_t n, std::uint64_t seed) {
  rng::Stream stream(seed);
  linalg::Vec b(n);
  for (auto& v : b) v = stream.next_gaussian();
  return b;
}

std::vector<service::Request> synthetic_traffic() {
  rng::Stream gstream(11);
  const graph::Graph g = graph::random_regularish(64, 4, 8, gstream);
  const std::size_t n = g.num_vertices();
  sparsify::SparsifyOptions sopt;
  sopt.epsilon = 1.0;
  sopt.k = 2;
  sopt.t = 3;

  std::vector<service::Request> traffic;
  for (std::uint64_t rhs = 1; rhs <= 4; ++rhs) {
    service::Request req;
    req.type = service::RequestType::kSolve;
    req.seed = 19;
    req.engine = "sparsified-chebyshev";
    req.sparsify = sopt;
    req.graph = g;
    req.b = gaussian_rhs(n, rhs);
    traffic.push_back(std::move(req));
  }
  {
    service::Request req;
    req.type = service::RequestType::kSolveMany;
    req.seed = 19;
    req.engine = "sparsified-chebyshev";
    req.sparsify = sopt;
    req.graph = g;
    req.panel = linalg::DenseMatrix(n, 2);
    req.panel.set_column(0, gaussian_rhs(n, 21));
    req.panel.set_column(1, gaussian_rhs(n, 22));
    traffic.push_back(std::move(req));
  }
  {
    service::Request req;
    req.type = service::RequestType::kSparsify;
    req.seed = 19;
    req.sparsify = sopt;
    req.graph = g;
    traffic.push_back(std::move(req));
  }
  {
    rng::Stream fstream(7);
    service::Request req;
    req.type = service::RequestType::kMcmf;
    req.seed = 19;
    req.network = graph::random_flow_network(10, 20, 5, 4, fstream);
    req.source = 0;
    req.sink = 9;
    traffic.push_back(std::move(req));
  }
  return traffic;
}

service::ReplayResult run_at(const std::vector<service::Request>& stream,
                             std::size_t workers) {
  service::ServiceOptions opts;
  opts.workers = workers;
  service::SolverService svc(opts);
  const service::ReplayResult out = service::replay(svc, stream);
  const auto stats = svc.stats();
  svc.shutdown();
  std::printf("  %zu worker%s: served %zu (%zu warm admissions, "
              "%zu coalesced into %zu panels), cache hits %zu / misses "
              "%zu\n",
              workers, workers == 1 ? "" : "s", stats.served,
              stats.warm_admissions, stats.coalesced_requests,
              stats.coalesced_panels, stats.cache.hits, stats.cache.misses);
  return out;
}

}  // namespace

int main() {
  const std::vector<service::Request> traffic = synthetic_traffic();
  const std::string path = "service_replay_journal.txt";
  if (!service::write_journal_file(path, traffic)) {
    std::printf("cannot write %s\n", path.c_str());
    return 1;
  }
  const std::vector<service::Request> replayed =
      service::read_journal_file(path);
  std::printf("journaled %zu requests to %s and read them back\n",
              replayed.size(), path.c_str());

  std::printf("replaying at 1 and 4 workers:\n");
  const service::ReplayResult narrow = run_at(replayed, 1);
  const service::ReplayResult wide = run_at(replayed, 4);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < narrow.payloads.size(); ++i) {
    if (narrow.payloads[i] != wide.payloads[i]) ++mismatches;
  }
  std::printf("per-request reply payload bytes: %s\n",
              mismatches == 0 ? "IDENTICAL across worker counts"
                              : "MISMATCH");
  return mismatches == 0 ? 0 : 1;
}
