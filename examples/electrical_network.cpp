// Scenario: electrical-network analysis on a distributed grid.
//
// Each processor owns one bus of a 12x8 resistor grid; solving L x = b for
// a current injection gives node potentials, effective resistances and
// power flows — the classic Laplacian-paradigm workload, here computed
// through the bcclap::Runtime facade and verified against the exact
// factorization.
#include <cstdio>

#include "core/bcclap.h"

int main() {
  using namespace bcclap;

  RuntimeOptions ropts;
  ropts.seed = 4242;
  Runtime rt(ropts);

  rng::Stream stream(99);
  const std::size_t rows = 12, cols = 8;
  // Conductances 1..5 (integer weights).
  const graph::Graph grid = graph::grid(rows, cols, 5, stream);
  const std::size_t n = grid.num_vertices();
  std::printf("resistor grid: %zux%zu buses, %zu branches\n", rows, cols,
              grid.num_edges());

  // Inject 1A at the top-left bus, extract at the bottom-right.
  linalg::Vec current(n, 0.0);
  current[0] = 1.0;
  current[n - 1] = -1.0;

  LaplacianSolveOptions opt;
  opt.eps = 1e-10;
  opt.sparsify.epsilon = 0.5;
  opt.sparsify.k = 2;
  opt.sparsify.t = 3;
  const LaplacianRun run = rt.solve_laplacian(grid, current, opt);
  const linalg::Vec& potential = run.x;

  std::printf("preconditioner: %zu branches, %lld preprocessing rounds\n",
              run.sparsifier.num_edges(),
              static_cast<long long>(run.preprocessing_rounds));

  const double r_eff = potential[0] - potential[n - 1];
  std::printf("effective resistance corner-to-corner: %.6f ohm "
              "(%zu iterations, %lld rounds, %.2f ms wall)\n",
              r_eff, run.stats.iterations,
              static_cast<long long>(run.stats.rounds),
              1e3 * run.stats.wall_seconds);

  // Branch power flows P_e = w_e (x_u - x_v)^2; report the hottest five.
  struct Branch {
    double power;
    std::size_t u, v;
  };
  std::vector<Branch> branches;
  for (const auto& e : grid.edges()) {
    const double d = potential[e.u] - potential[e.v];
    branches.push_back({e.weight * d * d, e.u, e.v});
  }
  std::sort(branches.begin(), branches.end(),
            [](const Branch& a, const Branch& b) { return a.power > b.power; });
  std::printf("hottest branches (bus-bus : watts at 1A):\n");
  for (std::size_t i = 0; i < 5 && i < branches.size(); ++i) {
    std::printf("  %3zu - %3zu : %.6f\n", branches[i].u, branches[i].v,
                branches[i].power);
  }

  // Cross-check against the exact solver (on the same Runtime's context).
  const auto exact =
      laplacian::exact_laplacian_solve(rt.context(), grid, current);
  const double err = laplacian::laplacian_norm(
                         rt.context(), grid, linalg::sub(exact, potential)) /
                     laplacian::laplacian_norm(rt.context(), grid, exact);
  std::printf("relative energy-norm error vs exact: %.2e\n", err);
  return 0;
}
