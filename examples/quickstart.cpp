// Quickstart: sparsify a dense network in Broadcast CONGEST, then solve a
// Laplacian system on it in the Broadcast Congested Clique (Theorems 1.2
// and 1.3 in five minutes).
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/bcclap.h"

int main() {
  using namespace bcclap;

  // A dense random network: 48 processors, every pair potentially linked.
  rng::Stream stream(2022);
  const graph::Graph g = graph::complete(48, /*max_weight=*/8, stream);
  std::printf("input graph: n = %zu, m = %zu\n", g.num_vertices(),
              g.num_edges());

  // Preprocessing (Theorem 1.2): spectral sparsifier via repeated spanners
  // with on-the-fly sampling, every decision broadcast implicitly.
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;  // (2k-1)-spanners inside the bundles
  opt.t = 4;  // spanners per bundle (bench-scale constant)
  laplacian::SparsifiedLaplacianSolver solver(g, opt, /*seed=*/7);
  std::printf("sparsifier:  %zu edges (%.1f%% of input), %lld BC rounds\n",
              solver.sparsifier().num_edges(),
              100.0 * static_cast<double>(solver.sparsifier().num_edges()) /
                  static_cast<double>(g.num_edges()),
              static_cast<long long>(solver.preprocessing_rounds()));

  // Check the spectral guarantee (Definition 2.1) explicitly.
  const auto check = sparsify::check_sparsifier(g, solver.sparsifier());
  std::printf("pencil eigenvalues in [%.3f, %.3f] -> achieved eps = %.3f\n",
              check.lambda_min, check.lambda_max, check.achieved_epsilon());

  // Per-instance solve (Theorem 1.3): L_G x = b to 1e-8 in the energy norm.
  linalg::Vec b(g.num_vertices(), 0.0);
  b[0] = 1.0;
  b[g.num_vertices() - 1] = -1.0;  // unit current from node 0 to node n-1
  laplacian::SolveStats stats;
  const linalg::Vec x = solver.solve(b, 1e-8, &stats);

  const linalg::Vec exact = laplacian::exact_laplacian_solve(g, b);
  const double err = laplacian::laplacian_norm(g, linalg::sub(exact, x)) /
                     laplacian::laplacian_norm(g, exact);
  std::printf(
      "solve:       %zu Chebyshev iterations, %lld BCC rounds, "
      "relative L_G-norm error %.2e\n",
      stats.iterations, static_cast<long long>(stats.rounds), err);
  std::printf("potential difference x[0] - x[n-1] = %.6f (effective "
              "resistance between the probes)\n",
              x[0] - x[g.num_vertices() - 1]);
  return 0;
}
