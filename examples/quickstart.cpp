// Quickstart: sparsify a dense network in Broadcast CONGEST, then solve a
// Laplacian system on it in the Broadcast Congested Clique (Theorems 1.2
// and 1.3 in five minutes).
//
// Everything runs inside a bcclap::Runtime — the execution context that
// owns the worker pool, the RNG stream tree and the chunking policy — via
// the facade entry points (rt.solve_laplacian / rt.sparsify /
// rt.min_cost_max_flow). RuntimeOptions::threads = 0 resolves from
// BCCLAP_THREADS, so `BCCLAP_THREADS=4 ./quickstart` parallelizes without
// a code change.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/bcclap.h"

int main() {
  using namespace bcclap;

  RuntimeOptions ropts;
  ropts.seed = 7;  // every pipeline decision derives from this root seed
  Runtime rt(ropts);

  // A dense random network: 48 processors, every pair potentially linked.
  rng::Stream stream(2022);
  const graph::Graph g = graph::complete(48, /*max_weight=*/8, stream);
  std::printf("input graph: n = %zu, m = %zu (runtime: %zu threads)\n",
              g.num_vertices(), g.num_edges(), rt.num_threads());

  // Preprocessing (Theorem 1.2) + per-instance solve (Theorem 1.3) in one
  // facade call: L_G x = b to 1e-8 in the energy norm.
  LaplacianSolveOptions opt;
  opt.eps = 1e-8;
  opt.sparsify.epsilon = 0.5;
  opt.sparsify.k = 2;  // (2k-1)-spanners inside the bundles
  opt.sparsify.t = 4;  // spanners per bundle (bench-scale constant)

  linalg::Vec b(g.num_vertices(), 0.0);
  b[0] = 1.0;
  b[g.num_vertices() - 1] = -1.0;  // unit current from node 0 to node n-1
  const LaplacianRun run = rt.solve_laplacian(g, b, opt);

  std::printf("sparsifier:  %zu edges (%.1f%% of input), %lld BC rounds\n",
              run.sparsifier.num_edges(),
              100.0 * static_cast<double>(run.sparsifier.num_edges()) /
                  static_cast<double>(g.num_edges()),
              static_cast<long long>(run.preprocessing_rounds));

  // Check the spectral guarantee (Definition 2.1) explicitly.
  const auto check = sparsify::check_sparsifier(g, run.sparsifier);
  std::printf("pencil eigenvalues in [%.3f, %.3f] -> achieved eps = %.3f\n",
              check.lambda_min, check.lambda_max, check.achieved_epsilon());

  const linalg::Vec exact =
      laplacian::exact_laplacian_solve(rt.context(), g, b);
  const double err =
      laplacian::laplacian_norm(rt.context(), g, linalg::sub(exact, run.x)) /
      laplacian::laplacian_norm(rt.context(), g, exact);
  std::printf(
      "solve:       engine \"%s\" (registry pick for this instance), "
      "%zu Chebyshev iterations, %lld BCC rounds total, "
      "%.2f ms wall, relative L_G-norm error %.2e\n",
      run.stats.engine.c_str(), run.stats.iterations,
      static_cast<long long>(run.stats.rounds), 1e3 * run.stats.wall_seconds,
      err);
  std::printf("potential difference x[0] - x[n-1] = %.6f (effective "
              "resistance between the probes)\n",
              run.x[0] - run.x[g.num_vertices() - 1]);
  return 0;
}
