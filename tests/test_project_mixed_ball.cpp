#include "lp/project_mixed_ball.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/vector_ops.h"
#include "support/fixtures.h"

namespace bcclap::lp {
namespace {

struct Case {
  std::size_t m;
  double l_scale;
  std::uint64_t seed;
};

class MixedBall : public ::testing::TestWithParam<Case> {};

TEST_P(MixedBall, FastMatchesReferenceAndIsFeasible) {
  const Case c = GetParam();
  rng::Stream stream(c.seed);
  const auto a = testsupport::gaussian_vector(c.m, stream);
  linalg::Vec l(c.m);
  for (auto& v : l) v = c.l_scale * (0.1 + stream.next_double());

  const auto fast = project_mixed_ball(a, l);
  const auto ref = project_mixed_ball_reference(a, l, 5000);

  EXPECT_LE(mixed_norm(fast.x, l), 1.0 + 1e-6);
  EXPECT_NEAR(fast.value, ref.value, 1e-4 * (1.0 + std::abs(ref.value)));
  // The fast result is itself a feasible point achieving its value.
  EXPECT_NEAR(linalg::dot(a, fast.x), fast.value, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MixedBall,
    ::testing::Values(Case{5, 1.0, 1}, Case{20, 1.0, 2}, Case{20, 0.01, 3},
                      Case{20, 100.0, 4}, Case{100, 1.0, 5},
                      Case{100, 0.1, 6}, Case{3, 10.0, 7},
                      Case{50, 0.5, 8}));

TEST(MixedBall, ZeroVectorGivesZero) {
  const linalg::Vec a(10, 0.0), l(10, 1.0);
  const auto res = project_mixed_ball(a, l);
  EXPECT_DOUBLE_EQ(res.value, 0.0);
  EXPECT_EQ(res.x, linalg::zeros(10));
}

TEST(MixedBall, SingleCoordinate) {
  // m=1: max a*x s.t. |x| + |x|/l <= 1 -> x = sign(a) * l/(l+1).
  const linalg::Vec a{3.0}, l{2.0};
  const auto res = project_mixed_ball(a, l);
  EXPECT_NEAR(res.x[0], 2.0 / 3.0, 1e-6);
  EXPECT_NEAR(res.value, 2.0, 1e-5);
}

TEST(MixedBall, HugeLReducesToEuclideanBall) {
  // l -> inf: constraint is just ||x||_2 <= 1; optimum = ||a||_2.
  rng::Stream stream(11);
  const auto a = testsupport::gaussian_vector(15, stream);
  const linalg::Vec l(15, 1e9);
  const auto res = project_mixed_ball(a, l);
  EXPECT_NEAR(res.value, linalg::norm2(a), 1e-4 * linalg::norm2(a));
  EXPECT_NEAR(res.t, 0.0, 1e-3);
}

TEST(MixedBall, TinyLForcesInfinityBudget) {
  // l -> 0: the infinity term dominates unless t ~ its share; the optimum
  // is far below the Euclidean bound.
  rng::Stream stream(12);
  const auto a = testsupport::gaussian_vector(15, stream);
  const linalg::Vec l(15, 1e-4);
  const auto res = project_mixed_ball(a, l);
  EXPECT_LT(res.value, 0.01 * linalg::norm2(a));
  EXPECT_LE(mixed_norm(res.x, l), 1.0 + 1e-6);
}

TEST(MixedBall, NegativeEntriesHandledBySign) {
  const linalg::Vec a{-5.0, 0.0, 5.0};
  const linalg::Vec l{1.0, 1.0, 1.0};
  const auto res = project_mixed_ball(a, l);
  EXPECT_LT(res.x[0], 0.0);
  EXPECT_NEAR(res.x[1], 0.0, 1e-9);
  EXPECT_GT(res.x[2], 0.0);
  EXPECT_NEAR(res.x[0], -res.x[2], 1e-6);
}

TEST(MixedBall, TiesInRatioAreFine) {
  // All |a_i| l_i equal: exercises the tie-handling of the ordering.
  const linalg::Vec a{1.0, 1.0, 1.0, 1.0};
  const linalg::Vec l{1.0, 1.0, 1.0, 1.0};
  const auto fast = project_mixed_ball(a, l);
  const auto ref = project_mixed_ball_reference(a, l, 4000);
  // The grid reference is only accurate to its resolution; the fast
  // solver may legitimately beat it slightly.
  EXPECT_NEAR(fast.value, ref.value, 1e-3);
  EXPECT_GE(fast.value, ref.value - 1e-9);
}

TEST(MixedBall, ProbeCountIsLogarithmic) {
  rng::Stream stream(13);
  const auto a = testsupport::gaussian_vector(200, stream);
  linalg::Vec l(200);
  for (auto& v : l) v = 0.1 + stream.next_double();
  const auto res = project_mixed_ball(a, l, 1e-12);
  // Ternary search: ~2 * log_{3/2}(1/tol) ~ 140 probes, not O(m).
  EXPECT_LT(res.probes, 200u);
  EXPECT_GT(res.probes, 20u);
}

TEST(MixedBall, ChargesRounds) {
  rng::Stream stream(14);
  const auto a = testsupport::gaussian_vector(30, stream);
  const linalg::Vec l(30, 1.0);
  bcc::RoundAccountant acct;
  (void)project_mixed_ball(a, l, 1e-10, &acct);
  EXPECT_GT(acct.total_for("mixed-ball/probe"), 0);
}

}  // namespace
}  // namespace bcclap::lp
