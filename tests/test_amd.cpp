// PR 10 AMD ordering stack: the quotient-graph approximate minimum
// degree ordering (linalg/amd.h), its shared contract with the exact-MD
// reference (permutation validity, ascending dense tail, deterministic
// tie-break), the fill-quality bound versus exact-MD, and the
// supernode-blocked factor's thread-count invariance. Runs under the
// `runtime` ctest label so CI's TSan rerun covers the panel fan-outs.
#include "linalg/amd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/runtime.h"
#include "graph/generators.h"
#include "graph/laplacian.h"
#include "linalg/cholesky.h"
#include "linalg/sparse_ldlt.h"
#include "linalg/vector_ops.h"
#include "support/fixtures.h"

namespace bcclap::linalg {
namespace {

using testsupport::test_context;

// Pins the process-wide dispatch mode for one test body and restores the
// previous mode on every exit path (same guard as test_sparse_factor.cpp).
class ModeGuard {
 public:
  explicit ModeGuard(FactorMode mode) : prev_(factor_mode()) {
    set_factor_mode(mode);
  }
  ~ModeGuard() { set_factor_mode(prev_); }
  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;

 private:
  FactorMode prev_;
};

graph::Graph star_graph(std::size_t n) {
  graph::Graph g(n);
  for (std::size_t v = 1; v < n; ++v)
    g.add_edge(0, v, 1.0 + static_cast<double>(v % 3));
  return g;
}

// Two mid-size components plus a singleton — exercises the zero-degree
// and forest paths of the quotient graph.
graph::Graph disconnected_graph() {
  graph::Graph g(451);
  const auto part = graph::path(200);
  for (const auto& e : part.edges()) g.add_edge(e.u, e.v, e.weight);
  rng::Stream gstream(13);
  const auto part2 = graph::random_regularish(250, 6, 3, gstream);
  for (const auto& e : part2.edges())
    g.add_edge(200 + e.u, 200 + e.v, e.weight);
  return g;
}

// One representative of each structure the ordering treats differently:
// chain (no fill at all), hub (one giant element), grid (regular fronts),
// expander-ish (element absorption under pressure), disconnected.
std::vector<std::pair<const char*, graph::Graph>> ordering_graphs() {
  std::vector<std::pair<const char*, graph::Graph>> out;
  out.emplace_back("path", graph::path(500));
  out.emplace_back("star", star_graph(450));
  rng::Stream gr(92);
  out.emplace_back("grid", graph::grid(22, 23, 3, gr));
  rng::Stream reg(91);
  out.emplace_back("regularish", graph::random_regularish(600, 8, 4, reg));
  out.emplace_back("disconnected", disconnected_graph());
  return out;
}

// The shared ordering contract of linalg/amd.h: a valid permutation with
// the dense tail listed in ascending original id.
void expect_valid_ordering(const Ordering& ord, std::size_t n,
                           const char* name) {
  ASSERT_EQ(ord.perm.size(), n) << name;
  ASSERT_LE(ord.t, n) << name;
  std::vector<bool> seen(n, false);
  for (std::size_t k = 0; k < n; ++k) {
    ASSERT_LT(ord.perm[k], n) << name << " position " << k;
    EXPECT_FALSE(seen[ord.perm[k]])
        << name << " duplicates original id " << ord.perm[k];
    seen[ord.perm[k]] = true;
  }
  for (std::size_t k = ord.t + 1; k < n; ++k) {
    EXPECT_LT(ord.perm[k - 1], ord.perm[k])
        << name << " tail not ascending at position " << k;
  }
}

// Total fill proxy for an ordering: sparse-prefix off-diagonal fill by
// the symbolic count plus the dense tail's strict lower triangle. Makes
// orderings with different cutoff points t comparable.
std::size_t total_fill(const CscSymmetricMatrix& a, const Ordering& ord) {
  const std::size_t tail = a.dim() - ord.t;
  return ordering_fill_nnz(a, ord) + tail * (tail - 1) / 2;
}

TEST(AmdOrder, ProducesValidOrderingsOnFixtureGraphs) {
  for (auto& [name, g] : ordering_graphs()) {
    const auto a = graph::laplacian_csc(g);
    expect_valid_ordering(amd_order(a), a.dim(), name);
    expect_valid_ordering(exact_min_degree_order(a), a.dim(), name);
  }
}

TEST(AmdOrder, IsDeterministicAcrossRepeatedCalls) {
  rng::Stream reg(91);
  const auto g = graph::random_regularish(600, 8, 4, reg);
  const auto a = graph::laplacian_csc(g);
  const Ordering first = amd_order(a);
  const Ordering second = amd_order(a);
  EXPECT_EQ(first.t, second.t);
  EXPECT_EQ(first.perm, second.perm);
}

TEST(AmdOrder, PathGraphOrdersFillFree) {
  // A chain has a perfect elimination ordering; the approximation must
  // find a zero-fill prefix too (degrees are exact on trees: every
  // element here has at most two boundary vertices).
  const auto a = graph::laplacian_csc(graph::path(500));
  const Ordering ord = amd_order(a);
  // Leaf-first elimination of a chain is fill-free: every prefix column
  // carries exactly its one surviving neighbor, nothing more.
  EXPECT_EQ(ordering_fill_nnz(a, ord), ord.t);
}

TEST(AmdOrder, FillWithinFifteenPercentOfExactMinDegree) {
  for (auto& [name, g] : ordering_graphs()) {
    const auto a = graph::laplacian_csc(g);
    const std::size_t amd_fill = total_fill(a, amd_order(a));
    const std::size_t md_fill = total_fill(a, exact_min_degree_order(a));
    EXPECT_LE(static_cast<double>(amd_fill),
              1.15 * static_cast<double>(md_fill) + 16.0)
        << name << " amd=" << amd_fill << " exact=" << md_fill;
  }
}

TEST(AmdOrder, SupernodeBlockedFactorIsThreadCountInvariant) {
  // The blocked Schur bands and panel mirrors fan out over the pool;
  // fixed band boundaries and a sequential reduction order keep the
  // factor bytes identical at any worker count.
  rng::Stream gstream(57);
  const auto g = graph::random_regularish(1200, 8, 5, gstream);
  const auto lap = graph::laplacian(g);
  rng::Stream bstream(58);
  DenseMatrix b(1200, 4);
  for (std::size_t i = 0; i < b.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j)
      b(i, j) = bstream.next_gaussian();
  auto run = [&](std::size_t threads) {
    RuntimeOptions opts;
    opts.threads = threads;
    opts.seed = 5;
    Runtime rt(opts);
    ModeGuard guard(FactorMode::kForceSparse);
    const auto f = LaplacianFactor::factor(rt.context(), lap);
    EXPECT_TRUE(f);
    EXPECT_EQ(f->path(), FactorKind::kSparse);
    // The factor actually went through the supernode machinery.
    const SparseFactorPhases phases = f->factor_phases();
    EXPECT_GT(phases.supernodes, 0u);
    EXPECT_GT(phases.fill_nnz, 0u);
    return f->solve_many(rt.context(), b);
  };
  const DenseMatrix x1 = run(1);
  const DenseMatrix x4 = run(4);
  ASSERT_EQ(x1.rows(), x4.rows());
  for (std::size_t i = 0; i < x1.rows(); ++i)
    for (std::size_t j = 0; j < x1.cols(); ++j)
      EXPECT_EQ(x1(i, j), x4(i, j)) << "(" << i << "," << j << ")";
}

TEST(AmdOrder, DenseDispatchBelowThresholdIsByteIdentical) {
  // n = 256 < kSparseMinDim: the auto dispatch must still route dense,
  // and the ordering rewrite must leave those solves byte-identical to a
  // forced-dense factor — the bench anchors at n=256 depend on it.
  static_assert(256 < kSparseMinDim);
  rng::Stream gstream(23);
  const auto g = graph::random_connected_gnp(256, 0.05, 6, gstream);
  const auto lap = graph::laplacian(g);
  std::optional<LaplacianFactor> fa, fd;
  {
    ModeGuard guard(FactorMode::kAuto);
    fa = LaplacianFactor::factor(test_context(), lap);
  }
  {
    ModeGuard guard(FactorMode::kForceDense);
    fd = LaplacianFactor::factor(test_context(), lap);
  }
  ASSERT_TRUE(fa);
  ASSERT_TRUE(fd);
  EXPECT_EQ(fa->path(), FactorKind::kDense);
  Vec b(256);
  rng::Stream bstream(29);
  for (auto& v : b) v = bstream.next_gaussian();
  remove_mean(b);
  const Vec xa = fa->solve(b);
  const Vec xd = fd->solve(b);
  ASSERT_EQ(xa.size(), xd.size());
  for (std::size_t i = 0; i < xa.size(); ++i) EXPECT_EQ(xa[i], xd[i]);
}

}  // namespace
}  // namespace bcclap::linalg
