#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <vector>

namespace bcclap::common {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::size_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(0, kN, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, ChunkBoundariesDependOnlyOnRangeAndGrain) {
  // The determinism contract: the set of (lo, hi) chunks must be the same
  // partition for every thread count.
  const auto chunks_for = [](std::size_t threads, std::size_t n,
                             std::size_t grain) {
    ThreadPool pool(threads);
    std::mutex mu;
    std::set<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallel_for_chunks(0, n, grain,
                             [&](std::size_t lo, std::size_t hi) {
                               std::lock_guard<std::mutex> lock(mu);
                               chunks.insert({lo, hi});
                             });
    return chunks;
  };
  const auto reference = chunks_for(1, 1000, 64);
  // 1000/64 -> 15 full chunks + the 40-index tail.
  EXPECT_EQ(reference.size(), 16u);
  for (const std::size_t threads : {2u, 3u, 8u}) {
    EXPECT_EQ(chunks_for(threads, 1000, 64), reference);
  }
}

TEST(ThreadPool, ParallelSumMatchesSequential) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 4096;
  std::vector<double> x(kN);
  std::iota(x.begin(), x.end(), 1.0);
  std::vector<double> y(kN, 0.0);
  pool.parallel_for(0, kN, [&](std::size_t i) { y[i] = x[i] * x[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(y[i], x[i] * x[i]);
}

TEST(ThreadPool, EmptyAndSingletonRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4);
  constexpr std::size_t kOuter = 16;
  constexpr std::size_t kInner = 64;
  std::vector<std::vector<int>> hits(kOuter, std::vector<int>(kInner, 0));
  pool.parallel_for(0, kOuter, [&](std::size_t i) {
    // Nested dispatch onto the same pool from a worker must not deadlock;
    // it runs inline on the calling worker.
    pool.parallel_for(0, kInner, [&](std::size_t j) { ++hits[i][j]; });
  });
  for (const auto& row : hits) {
    for (int h : row) EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(0, 1000,
                        [&](std::size_t i) {
                          if (i == 123) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool is still usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ZeroThreadsMeansOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPool, ManySmallJobsBackToBack) {
  // Stresses job publication: a straggler from job k must never touch job
  // k+1's state (regression guard for the shared-job lifetime design).
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(0, 8, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 8);
  }
}

}  // namespace
}  // namespace bcclap::common
