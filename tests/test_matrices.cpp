#include <gtest/gtest.h>

#include "common/rng.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "support/fixtures.h"

namespace bcclap::linalg {
namespace {

using testsupport::test_context;

TEST(DenseMatrix, IdentityMultiply) {
  const auto eye = DenseMatrix::identity(3);
  const Vec x{1, 2, 3};
  EXPECT_EQ(eye.multiply(test_context(), x), x);
  EXPECT_EQ(eye.multiply_transpose(test_context(), x), x);
}

TEST(DenseMatrix, MultiplyAndTranspose) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  EXPECT_EQ(a.multiply(test_context(), Vec{1, 1, 1}), (Vec{6, 15}));
  EXPECT_EQ(a.multiply_transpose(test_context(), Vec{1, 1}), (Vec{5, 7, 9}));
  const auto at = a.transpose();
  EXPECT_EQ(at.rows(), 3u);
  EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
}

TEST(DenseMatrix, MatrixProduct) {
  DenseMatrix a(2, 2), b(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 3;
  a(1, 1) = 4;
  b(0, 0) = 0;
  b(0, 1) = 1;
  b(1, 0) = 1;
  b(1, 1) = 0;
  const auto c = a.multiply(test_context(), b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(DenseMatrix, SymmetryCheck) {
  DenseMatrix a(2, 2);
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  EXPECT_TRUE(a.is_symmetric());
  a(1, 0) = 2.0;
  EXPECT_FALSE(a.is_symmetric());
}

TEST(CsrMatrix, DuplicateTripletsSum) {
  CsrMatrix m(2, 2, {{0, 0, 1.0}, {0, 0, 2.0}, {1, 1, 5.0}});
  EXPECT_EQ(m.nnz(), 2u);
  EXPECT_EQ(m.diagonal(), (Vec{3.0, 5.0}));
}

TEST(CsrMatrix, MatvecMatchesDense) {
  rng::Stream stream(42);
  std::vector<Triplet> trips;
  const std::size_t rows = 17, cols = 9;
  for (int i = 0; i < 60; ++i) {
    trips.push_back({stream.next_below(rows), stream.next_below(cols),
                     stream.next_gaussian()});
  }
  const CsrMatrix sparse(rows, cols, trips);
  const auto dense = sparse.to_dense();
  const auto x = testsupport::gaussian_vector(cols, stream);
  const auto y = testsupport::gaussian_vector(rows, stream);
  const auto s1 = sparse.multiply(test_context(), x);
  const auto d1 = dense.multiply(test_context(), x);
  for (std::size_t i = 0; i < rows; ++i) EXPECT_NEAR(s1[i], d1[i], 1e-12);
  const auto s2 = sparse.multiply_transpose(y);
  const auto d2 = dense.multiply_transpose(test_context(), y);
  for (std::size_t i = 0; i < cols; ++i) EXPECT_NEAR(s2[i], d2[i], 1e-12);
}

TEST(CsrMatrix, TransposeRoundTrip) {
  CsrMatrix m(2, 3, {{0, 2, 7.0}, {1, 0, -3.0}});
  const auto t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  const auto back = t.transpose().to_dense();
  EXPECT_DOUBLE_EQ(back(0, 2), 7.0);
  EXPECT_DOUBLE_EQ(back(1, 0), -3.0);
}

TEST(CsrMatrix, EmptyMatrix) {
  CsrMatrix m(3, 3, {});
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.multiply(test_context(), Vec{1, 2, 3}), (Vec{0, 0, 0}));
}

}  // namespace
}  // namespace bcclap::linalg
