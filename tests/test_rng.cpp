#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace bcclap::rng {
namespace {

TEST(Rng, Deterministic) {
  Stream a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Stream a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, ChildIndependentOfParentState) {
  Stream parent(7);
  Stream c1 = parent.child("x");
  (void)parent.next_u64();
  Stream c2 = parent.child("x");
  EXPECT_EQ(c1.next_u64(), c2.next_u64());  // child depends on seed only
}

TEST(Rng, ChildrenWithDifferentLabelsDiffer) {
  Stream parent(7);
  EXPECT_NE(parent.child("a").next_u64(), parent.child("b").next_u64());
  EXPECT_NE(parent.child(std::uint64_t{1}).next_u64(),
            parent.child(std::uint64_t{2}).next_u64());
}

TEST(Rng, NextBelowInRange) {
  Stream s(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(s.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Stream s(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(s.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Stream s(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = s.next_int(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    hit_lo |= (v == -2);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Stream s(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = s.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliStatistics) {
  Stream s(13);
  int count = 0;
  const int trials = 40000;
  for (int i = 0; i < trials; ++i) count += s.bernoulli(0.25);
  EXPECT_NEAR(count / static_cast<double>(trials), 0.25, 0.02);
}

TEST(Rng, BernoulliEdgeCases) {
  Stream s(17);
  EXPECT_FALSE(s.bernoulli(0.0));
  EXPECT_FALSE(s.bernoulli(-1.0));
  EXPECT_TRUE(s.bernoulli(1.0));
  EXPECT_TRUE(s.bernoulli(2.0));
}

TEST(Rng, GaussianMoments) {
  Stream s(19);
  double sum = 0.0, sumsq = 0.0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) {
    const double g = s.next_gaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.03);
  EXPECT_NEAR(sumsq / trials, 1.0, 0.05);
}

TEST(Rng, SignIsBalanced) {
  Stream s(23);
  int pos = 0;
  for (int i = 0; i < 10000; ++i) pos += (s.next_sign() > 0);
  EXPECT_NEAR(pos / 10000.0, 0.5, 0.03);
}

TEST(Rng, BitsPacking) {
  Stream s(29);
  const auto bits = s.next_bits(37);
  EXPECT_EQ(bits.size(), 5u);  // ceil(37/8)
}

TEST(Rng, DeriveSeedSensitivity) {
  EXPECT_NE(derive_seed(1, "abc"), derive_seed(1, "abd"));
  EXPECT_NE(derive_seed(1, "abc"), derive_seed(2, "abc"));
  EXPECT_EQ(derive_seed(1, "abc"), derive_seed(1, "abc"));
}

}  // namespace
}  // namespace bcclap::rng
