// Batched multi-RHS solve stack (PR 5): solve_many on a panel must be
// byte-identical to k sequential solve() calls — per layer (LDLT factor,
// component Laplacian factor, sparsified solver, both SDD engines, the
// Runtime facade) and at 1 and 4 worker threads alike. Degenerate panels
// (k = 0, k = 1, a zero column) are covered, as are the batched iterative
// drivers and the panel Laplacian application they are built on.
#include <gtest/gtest.h>

#include <cstring>

#include "core/runtime.h"
#include "graph/generators.h"
#include "graph/laplacian.h"
#include "laplacian/bcc_solver.h"
#include "laplacian/engine.h"
#include "laplacian/solver.h"
#include "linalg/cg.h"
#include "linalg/chebyshev.h"
#include "linalg/cholesky.h"
#include "lp/lp_solver.h"
#include "support/fixtures.h"

namespace bcclap {
namespace {

using linalg::DenseMatrix;
using linalg::Vec;

// Bitwise comparison — tolerance would hide exactly the divergence the
// batched stack promises not to have.
::testing::AssertionResult BitwiseEqual(const Vec& a, const Vec& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0) {
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0)
        return ::testing::AssertionFailure()
               << "entry " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult PanelMatchesColumns(const DenseMatrix& panel,
                                               const std::vector<Vec>& cols) {
  if (panel.cols() != cols.size())
    return ::testing::AssertionFailure()
           << "panel has " << panel.cols() << " columns, expected "
           << cols.size();
  for (std::size_t j = 0; j < cols.size(); ++j) {
    const auto res = BitwiseEqual(panel.column(j), cols[j]);
    if (!res) {
      return ::testing::AssertionFailure()
             << res.message() << " (column " << j << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

// Gaussian panel with column `zero_col` (if in range) zeroed — the
// degenerate-column case rides along in every suite.
DenseMatrix gaussian_panel(std::size_t n, std::size_t k, std::uint64_t seed,
                           std::size_t zero_col = static_cast<std::size_t>(-1)) {
  rng::Stream stream(seed);
  DenseMatrix b(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    if (j == zero_col) continue;
    for (std::size_t i = 0; i < n; ++i) b(i, j) = stream.next_gaussian();
  }
  return b;
}

Runtime& runtime_for(std::size_t threads) {
  static Runtime rt1([] {
    RuntimeOptions o;
    o.threads = 1;
    o.seed = 505;
    return o;
  }());
  static Runtime rt4([] {
    RuntimeOptions o;
    o.threads = 4;
    o.seed = 505;
    return o;
  }());
  return threads == 1 ? rt1 : rt4;
}

TEST(BatchedSolve, LdltPanelMatchesSequentialSolves) {
  rng::Stream mstream(3);
  const auto a = testsupport::random_spd(96, mstream);
  const auto b = gaussian_panel(96, 32, 17, /*zero_col=*/5);
  std::vector<DenseMatrix> per_thread;
  for (const std::size_t threads : {1u, 4u}) {
    const auto ctx = runtime_for(threads).context();
    const auto f = linalg::LdltFactor::factor(ctx, a);
    ASSERT_TRUE(f);
    const DenseMatrix x = f->solve_many(ctx, b);
    std::vector<Vec> seq;
    for (std::size_t j = 0; j < b.cols(); ++j)
      seq.push_back(f->solve(b.column(j)));
    EXPECT_TRUE(PanelMatchesColumns(x, seq)) << threads << " threads";
    per_thread.push_back(x);
  }
  for (std::size_t j = 0; j < b.cols(); ++j) {
    EXPECT_TRUE(
        BitwiseEqual(per_thread[0].column(j), per_thread[1].column(j)));
  }
}

TEST(BatchedSolve, LdltDegeneratePanels) {
  rng::Stream mstream(5);
  const auto a = testsupport::random_spd(24, mstream);
  const auto ctx = testsupport::test_context();
  const auto f = linalg::LdltFactor::factor(ctx, a);
  ASSERT_TRUE(f);
  // k = 0: empty result, no dispatch, no crash.
  const DenseMatrix empty = f->solve_many(ctx, DenseMatrix(24, 0));
  EXPECT_EQ(empty.rows(), 24u);
  EXPECT_EQ(empty.cols(), 0u);
  // k = 1 equals the single solve bit for bit.
  const auto b1 = gaussian_panel(24, 1, 7);
  EXPECT_TRUE(BitwiseEqual(f->solve_many(ctx, b1).column(0),
                           f->solve(b1.column(0))));
}

TEST(BatchedSolve, ComponentFactorPanelMatchesSequentialSolves) {
  // Disconnected input: a singleton, a pair, and two larger components —
  // the Gremban-reduction workload shape.
  graph::Graph g(40);
  g.add_edge(1, 2, 2.0);
  rng::Stream gstream(11);
  const auto part_a = graph::random_connected_gnp(17, 0.3, 5, gstream);
  for (const auto& e : part_a.edges()) g.add_edge(3 + e.u, 3 + e.v, e.weight);
  const auto part_b = graph::random_connected_gnp(20, 0.2, 3, gstream);
  for (const auto& e : part_b.edges())
    g.add_edge(20 + e.u, 20 + e.v, e.weight);
  const auto lap = graph::laplacian(g);
  const auto b = gaussian_panel(40, 8, 23, /*zero_col=*/2);
  std::vector<DenseMatrix> per_thread;
  for (const std::size_t threads : {1u, 4u}) {
    const auto ctx = runtime_for(threads).context();
    const auto f = linalg::ComponentLaplacianFactor::factor(ctx, lap);
    ASSERT_TRUE(f);
    const DenseMatrix x = f->solve_many(ctx, b);
    std::vector<Vec> seq;
    for (std::size_t j = 0; j < b.cols(); ++j)
      seq.push_back(f->solve(ctx, b.column(j)));
    EXPECT_TRUE(PanelMatchesColumns(x, seq)) << threads << " threads";
    EXPECT_EQ(f->solve_many(ctx, DenseMatrix(40, 0)).cols(), 0u);
    per_thread.push_back(x);
  }
  for (std::size_t j = 0; j < b.cols(); ++j) {
    EXPECT_TRUE(
        BitwiseEqual(per_thread[0].column(j), per_thread[1].column(j)));
  }
}

TEST(BatchedSolve, ApplyLaplacianManyMatchesPerColumnApply) {
  rng::Stream gstream(31);
  // Large enough that the chunked-reduction path runs, not just the
  // sequential sweep.
  const auto g = graph::complete(96, 4, gstream);
  const auto x = gaussian_panel(96, 6, 41, /*zero_col=*/1);
  for (const std::size_t threads : {1u, 4u}) {
    const auto ctx = runtime_for(threads).context();
    const DenseMatrix y = graph::apply_laplacian_many(ctx, g, x);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      EXPECT_TRUE(BitwiseEqual(
          y.column(j), graph::apply_laplacian(ctx, g, x.column(j))))
          << "column " << j << ", " << threads << " threads";
    }
  }
  EXPECT_EQ(graph::apply_laplacian_many(testsupport::test_context(), g,
                                        DenseMatrix(96, 0))
                .cols(),
            0u);
}

TEST(BatchedSolve, SparsifiedSolverPanelMatchesSequentialSolves) {
  rng::Stream gstream(7);
  const auto g = graph::random_regularish(48, 6, 4, gstream);
  const auto opt = testsupport::small_sparsify_options(0.5, 2, 3);
  const auto b = gaussian_panel(48, 32, 29, /*zero_col=*/3);
  std::vector<DenseMatrix> per_thread;
  for (const std::size_t threads : {1u, 4u}) {
    const auto ctx = runtime_for(threads).context().with_seed(99);
    laplacian::SparsifiedLaplacianSolver batched(ctx, g, opt);
    laplacian::SparsifiedLaplacianSolver sequential(ctx, g, opt);
    ASSERT_TRUE(batched.usable());
    laplacian::SolveStats many_stats;
    const DenseMatrix x = batched.solve_many(b, 1e-8, &many_stats);
    std::vector<Vec> seq;
    std::int64_t seq_rounds = 0;
    for (std::size_t j = 0; j < b.cols(); ++j) {
      laplacian::SolveStats st;
      seq.push_back(sequential.solve(b.column(j), 1e-8, &st));
      seq_rounds += st.rounds;
    }
    EXPECT_TRUE(PanelMatchesColumns(x, seq)) << threads << " threads";
    // The panel charges exactly what 32 sequential solves charge (the
    // model counts communication per right-hand side) and reports itself
    // as one panel.
    EXPECT_EQ(many_stats.rounds, seq_rounds);
    EXPECT_EQ(many_stats.panels, 1u);
    EXPECT_EQ(batched.accountant().total(), sequential.accountant().total());
    per_thread.push_back(x);
  }
  for (std::size_t j = 0; j < b.cols(); ++j) {
    EXPECT_TRUE(
        BitwiseEqual(per_thread[0].column(j), per_thread[1].column(j)));
  }
}

// Diagonally dominant SDD test matrix with off-diagonal structure.
DenseMatrix sdd_matrix(std::size_t n, std::uint64_t seed) {
  rng::Stream stream(seed);
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (stream.next_double() < 0.5) {
        const double v = -1.0 - 2.0 * stream.next_double();
        m(i, j) = v;
        m(j, i) = v;
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) s += std::abs(m(i, j));
    m(i, i) = s + 1.0;
  }
  return m;
}

TEST(BatchedSolve, ExactSddEnginePanelMatchesSequentialSolves) {
  const auto m = sdd_matrix(12, 13);
  const auto y = gaussian_panel(12, 8, 37, /*zero_col=*/0);
  for (const std::size_t threads : {1u, 4u}) {
    const auto ctx = runtime_for(threads).context();
    auto& registry = laplacian::EngineRegistry::instance();
    laplacian::SddEngineOptions eopt;
    eopt.network_n = 12;
    auto batched = registry.create_sdd("exact-dense", ctx, m, eopt);
    auto sequential = registry.create_sdd("exact-dense", ctx, m, eopt);
    const DenseMatrix x = batched->solve_many(y, 1e-10);
    std::vector<Vec> seq;
    for (std::size_t j = 0; j < y.cols(); ++j)
      seq.push_back(sequential->solve(y.column(j), 1e-10));
    EXPECT_TRUE(PanelMatchesColumns(x, seq)) << threads << " threads";
    EXPECT_EQ(batched->rounds_charged(), sequential->rounds_charged());
    EXPECT_EQ(batched->solve_many(DenseMatrix(12, 0), 1e-10).cols(), 0u);
  }
}

TEST(BatchedSolve, SparsifiedSddEnginePanelMatchesSequentialSolves) {
  const auto m = sdd_matrix(10, 17);
  const auto y = gaussian_panel(10, 8, 43, /*zero_col=*/6);
  for (const std::size_t threads : {1u, 4u}) {
    const auto ctx = runtime_for(threads).context().with_seed(777);
    auto& registry = laplacian::EngineRegistry::instance();
    auto batched = registry.create_sdd("sparsified-chebyshev", ctx, m, {});
    auto sequential = registry.create_sdd("sparsified-chebyshev", ctx, m, {});
    const DenseMatrix x = batched->solve_many(y, 1e-8);
    std::vector<Vec> seq;
    for (std::size_t j = 0; j < y.cols(); ++j)
      seq.push_back(sequential->solve(y.column(j), 1e-8));
    EXPECT_TRUE(PanelMatchesColumns(x, seq)) << threads << " threads";
    EXPECT_EQ(batched->rounds_charged(), sequential->rounds_charged());
  }
}

TEST(BatchedSolve, FacadePanelMatchesPerColumnFacadeSolves) {
  rng::Stream gstream(19);
  const auto g = graph::random_regularish(32, 5, 3, gstream);
  LaplacianSolveOptions lopt;
  lopt.sparsify = testsupport::small_sparsify_options(0.5, 2, 3);
  const auto b = gaussian_panel(32, 3, 47);
  RuntimeOptions opts;
  opts.threads = 2;
  opts.seed = 9;
  Runtime rt(opts);
  const auto many = rt.solve_laplacian_many(g, b, lopt);
  ASSERT_TRUE(many.usable);
  EXPECT_EQ(many.stats.panels, 1u);
  EXPECT_GT(many.stats.rounds, 0);
  std::int64_t per_column_rounds = 0;
  for (std::size_t j = 0; j < b.cols(); ++j) {
    const auto one = rt.solve_laplacian(g, b.column(j), lopt);
    ASSERT_TRUE(one.usable);
    EXPECT_TRUE(BitwiseEqual(many.x.column(j), one.x)) << "column " << j;
    per_column_rounds += one.stats.rounds - one.preprocessing_rounds;
  }
  // Panel rounds = one preprocessing + the k columns' solve rounds.
  EXPECT_EQ(many.stats.rounds,
            many.preprocessing_rounds + per_column_rounds);
}

TEST(BatchedSolve, ChebyshevPanelDriverMatchesSingleRhsDriver) {
  // Generic operators: A = diag(1..n)/n preconditioned by B = I (kappa =
  // n). Column-wise panel ops by construction.
  const std::size_t n = 12;
  const auto apply_a_vec = [n](const Vec& v) {
    Vec y(v);
    for (std::size_t i = 0; i < n; ++i)
      y[i] *= static_cast<double>(i + 1) / static_cast<double>(n);
    return y;
  };
  const auto apply_a_panel = [&](const DenseMatrix& p) {
    DenseMatrix y = p;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < p.cols(); ++j)
        y(i, j) *= static_cast<double>(i + 1) / static_cast<double>(n);
    return y;
  };
  const auto identity = [](const auto& r) { return r; };
  const auto b = gaussian_panel(n, 5, 53, /*zero_col=*/4);
  const auto many = linalg::preconditioned_chebyshev_many(
      apply_a_panel, identity, b, static_cast<double>(n), 1e-10);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    const auto one = linalg::preconditioned_chebyshev(
        apply_a_vec, identity, b.column(j), static_cast<double>(n), 1e-10);
    EXPECT_EQ(many.iterations, one.iterations);
    EXPECT_TRUE(BitwiseEqual(many.x.column(j), one.x)) << "column " << j;
  }
  // One panel application per iteration, not one per column.
  EXPECT_EQ(many.a_multiplies, many.iterations);
  EXPECT_EQ(many.b_solves, many.iterations);
}

TEST(BatchedSolve, CgPanelDriverMatchesSingleRhsDriver) {
  rng::Stream mstream(59);
  const auto a = testsupport::random_spd(16, mstream);
  const auto ctx = testsupport::test_context();
  const auto apply_vec = [&](const Vec& v) { return a.multiply(ctx, v); };
  const auto apply_panel = [&](const DenseMatrix& p) {
    DenseMatrix y(p.rows(), p.cols());
    for (std::size_t j = 0; j < p.cols(); ++j)
      y.set_column(j, a.multiply(ctx, p.column(j)));
    return y;
  };
  // A zero column converges at iteration 0; the driver must freeze it.
  const auto b = gaussian_panel(16, 6, 61, /*zero_col=*/2);
  const auto many =
      linalg::conjugate_gradient_many(apply_panel, b, 1e-10, 200);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    const auto one =
        linalg::conjugate_gradient(apply_vec, b.column(j), 1e-10, 200);
    EXPECT_EQ(many.iterations[j], one.iterations) << "column " << j;
    EXPECT_EQ(many.converged[j], one.converged) << "column " << j;
    EXPECT_EQ(many.residual_norm[j], one.residual_norm) << "column " << j;
    EXPECT_TRUE(BitwiseEqual(many.x.column(j), one.x)) << "column " << j;
  }
}

TEST(BatchedSolve, ExactLaplacianSolverReusesFactorAcrossPanels) {
  rng::Stream gstream(67);
  const auto g = graph::random_connected_gnp(24, 0.3, 4, gstream);
  const auto ctx = testsupport::test_context();
  const laplacian::ExactLaplacianSolver oracle(ctx, g);
  ASSERT_TRUE(oracle.usable());
  const auto b = gaussian_panel(24, 4, 71);
  const DenseMatrix x = oracle.solve_many(b);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    EXPECT_TRUE(BitwiseEqual(x.column(j), oracle.solve(b.column(j))));
    // The one-shot convenience is the same arithmetic.
    EXPECT_TRUE(BitwiseEqual(
        x.column(j), laplacian::exact_laplacian_solve(ctx, g, b.column(j))));
  }
}

TEST(BatchedSolve, LpSolveCountsGramPanels) {
  const auto p = testsupport::diamond_lp();
  lp::LpOptions opt;
  opt.epsilon = 1e-4;
  const auto res = lp::lp_solve(testsupport::test_context(opt.seed), p,
                                {0.5, 0.5, 0.5, 0.5}, opt);
  ASSERT_TRUE(res.converged);
  // Every Newton system went through the batched interface as a k = 1
  // panel, plus the final feasibility-restoration panel.
  EXPECT_EQ(res.stats.panels, res.newton_steps + 1);
}

}  // namespace
}  // namespace bcclap
