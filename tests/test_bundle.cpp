#include "spanner/bundle.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "spanner/baswana_sen.h"
#include "support/fixtures.h"

namespace bcclap::spanner {
namespace {

using testsupport::bc_net;
using testsupport::edge_weights;

TEST(Bundle, EdgesAreDisjointlyDecided) {
  rng::Stream gstream(1);
  const auto g = graph::random_connected_gnp(30, 0.4, 5, gstream);
  auto net = bc_net(g);
  rng::Stream marks(2), edges(3);
  const ExistenceOracle oracle = [&](graph::EdgeId) {
    return edges.bernoulli(0.6);
  };
  const auto res =
      bundle_spanner(g, std::vector<bool>(g.num_edges(), true),
                     edge_weights(g), 2, 3, oracle, marks, net);
  std::set<graph::EdgeId> b(res.bundle_edges.begin(), res.bundle_edges.end());
  std::set<graph::EdgeId> c(res.deleted_edges.begin(),
                            res.deleted_edges.end());
  EXPECT_EQ(b.size(), res.bundle_edges.size());  // no duplicates
  for (graph::EdgeId e : b) EXPECT_EQ(c.count(e), 0u);
  EXPECT_TRUE(res.deduction_consistent);
}

TEST(Bundle, TSpannersWithP1CoverGraphLevels) {
  // With p == 1 each T_i is a spanner of G minus the previous bundles
  // (Definition 2.2's t-bundle). Check the first level is a spanner of G.
  rng::Stream gstream(11);
  const auto g = graph::complete(24, 3, gstream);
  auto net = bc_net(g);
  rng::Stream marks(12);
  const ExistenceOracle always = [](graph::EdgeId) { return true; };
  const auto res =
      bundle_spanner(g, std::vector<bool>(g.num_edges(), true),
                     edge_weights(g), 3, 2, always, marks, net);
  EXPECT_TRUE(res.deleted_edges.empty());
  EXPECT_TRUE(verify_stretch(g, res.bundle_edges, 5.0));
}

TEST(Bundle, LargerTGivesMoreEdges) {
  rng::Stream gstream(21);
  const auto g = graph::complete(30, 2, gstream);
  const ExistenceOracle always = [](graph::EdgeId) { return true; };
  std::size_t prev = 0;
  for (std::size_t t : {1u, 2u, 4u}) {
    auto net = bc_net(g);
    rng::Stream marks(22);
    const auto res =
        bundle_spanner(g, std::vector<bool>(g.num_edges(), true),
                       edge_weights(g), 3, t, always, marks, net);
    EXPECT_GE(res.bundle_edges.size(), prev);
    prev = res.bundle_edges.size();
  }
}

TEST(Bundle, ExhaustsSmallGraphs) {
  // With enough spanners and p == 1, a small graph is fully consumed.
  const auto g = graph::cycle(8);
  auto net = bc_net(g);
  rng::Stream marks(31);
  const ExistenceOracle always = [](graph::EdgeId) { return true; };
  const auto res =
      bundle_spanner(g, std::vector<bool>(g.num_edges(), true),
                     edge_weights(g), 2, 10, always, marks, net);
  EXPECT_EQ(res.bundle_edges.size(), g.num_edges());
}

TEST(Bundle, RoundsAccumulateAcrossSpanners) {
  rng::Stream gstream(41);
  const auto g = graph::random_connected_gnp(20, 0.4, 3, gstream);
  const ExistenceOracle always = [](graph::EdgeId) { return true; };
  auto net1 = bc_net(g);
  rng::Stream m1(42);
  const auto r1 = bundle_spanner(g, std::vector<bool>(g.num_edges(), true),
                                 edge_weights(g), 2, 1, always, m1, net1);
  auto net2 = bc_net(g);
  rng::Stream m2(42);
  const auto r2 = bundle_spanner(g, std::vector<bool>(g.num_edges(), true),
                                 edge_weights(g), 2, 4, always, m2, net2);
  EXPECT_GT(r2.rounds, r1.rounds);
}

}  // namespace
}  // namespace bcclap::spanner
