#include "lp/lp_solver.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "support/fixtures.h"

namespace bcclap::lp {
namespace {

using testsupport::test_context;

// min c^T x  s.t.  x_1 + x_2 = 1, 0 <= x <= 1.
LpProblem simplex2(double c1, double c2) {
  LpProblem p;
  p.a = linalg::CsrMatrix(2, 1, {{0, 0, 1.0}, {1, 0, 1.0}});
  p.b = {1.0};
  p.c = {c1, c2};
  p.lower = {0.0, 0.0};
  p.upper = {1.0, 1.0};
  return p;
}

TEST(LpSolver, TwoVariableSimplexVanilla) {
  const auto prob = simplex2(1.0, 2.0);
  LpOptions opt;
  opt.weights = WeightMode::kVanilla;
  opt.epsilon = 1e-6;
  const auto res = lp_solve(test_context(opt.seed), prob, {0.5, 0.5}, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.objective, 1.0, 1e-4);
  EXPECT_NEAR(res.x[0], 1.0, 1e-3);
  EXPECT_NEAR(res.x[1], 0.0, 1e-3);
  EXPECT_NEAR(res.x[0] + res.x[1], 1.0, 1e-7);  // feasibility maintained
}

TEST(LpSolver, TwoVariableSimplexLewis) {
  const auto prob = simplex2(2.0, 1.0);
  LpOptions opt;
  opt.weights = WeightMode::kLewis;
  opt.epsilon = 1e-5;
  const auto res = lp_solve(test_context(opt.seed), prob, {0.5, 0.5}, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.objective, 1.0, 1e-3);
  EXPECT_NEAR(res.x[1], 1.0, 5e-3);
}

TEST(LpSolver, DegenerateTieStaysFeasible) {
  // c1 == c2: every feasible point optimal; check feasibility + objective.
  const auto prob = simplex2(1.0, 1.0);
  LpOptions opt;
  opt.epsilon = 1e-6;
  const auto res = lp_solve(test_context(opt.seed), prob, {0.3, 0.7}, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.objective, 1.0, 1e-6);
  EXPECT_NEAR(res.x[0] + res.x[1], 1.0, 1e-7);
}

// Random transportation-style LP: x >= 0, column-sum constraints, compare
// against brute-force over vertices (small sizes).
TEST(LpSolver, BoxConstrainedKnownOptimum) {
  // min -x1 - 2 x2 s.t. x1 + x2 = 1.5, 0 <= x <= 1 -> x = (0.5, 1).
  LpProblem p;
  p.a = linalg::CsrMatrix(2, 1, {{0, 0, 1.0}, {1, 0, 1.0}});
  p.b = {1.5};
  p.c = {-1.0, -2.0};
  p.lower = {0.0, 0.0};
  p.upper = {1.0, 1.0};
  LpOptions opt;
  opt.epsilon = 1e-6;
  const auto res = lp_solve(test_context(opt.seed), p, {0.75, 0.75}, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.objective, -2.5, 1e-4);
  EXPECT_NEAR(res.x[0], 0.5, 1e-3);
  EXPECT_NEAR(res.x[1], 1.0, 1e-3);
}

TEST(LpSolver, MultiConstraintDiamond) {
  // Variables x in R^4 with A^T x = b enforcing two sums:
  //   x1 + x2 = 1, x3 + x4 = 1, minimize x1 + 3x2 + 2x3 + x4 -> (1,0,0,1).
  const auto p = testsupport::diamond_lp();
  LpOptions opt;
  opt.epsilon = 1e-6;
  const auto res =
      lp_solve(test_context(opt.seed), p, {0.5, 0.5, 0.5, 0.5}, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.objective, 2.0, 1e-3);
  EXPECT_NEAR(res.x[0], 1.0, 5e-3);
  EXPECT_NEAR(res.x[3], 1.0, 5e-3);
}

TEST(LpSolver, ShortStepModeConverges) {
  const auto prob = simplex2(1.0, 4.0);
  LpOptions opt;
  opt.steps = StepMode::kShortStep;
  opt.alpha_constant = 2.0;
  opt.epsilon = 1e-4;
  const auto res = lp_solve(test_context(opt.seed), prob, {0.5, 0.5}, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.objective, 1.0, 1e-2);
  EXPECT_GT(res.path_steps, 10u);  // short steps take many path steps
}

TEST(LpSolver, ReportsAccounting) {
  const auto prob = simplex2(1.0, 2.0);
  LpOptions opt;
  opt.epsilon = 1e-4;
  const auto res = lp_solve(test_context(opt.seed), prob, {0.5, 0.5}, opt);
  EXPECT_GT(res.rounds, 0);
  EXPECT_GT(res.newton_steps, 0u);
  EXPECT_GT(res.path_steps, 0u);
}

TEST(LpSolver, GramAssembly) {
  // A = [1 0; 1 1; 0 2], D = diag(1,2,3):
  // A^T D A = [[1+2, 2],[2, 2+12]].
  linalg::CsrMatrix a(3, 2, {{0, 0, 1.0}, {1, 0, 1.0}, {1, 1, 1.0},
                             {2, 1, 2.0}});
  const auto gram = assemble_gram(a, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(gram(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(gram(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(gram(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(gram(1, 1), 14.0);
}

}  // namespace
}  // namespace bcclap::lp
