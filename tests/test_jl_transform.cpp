#include "linalg/jl_transform.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/vector_ops.h"
#include "support/fixtures.h"

namespace bcclap::linalg {
namespace {

class JlNormPreservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JlNormPreservation, KaneNelsonPreservesNorms) {
  const std::size_t m = 200;
  const std::size_t k = jl_dimension(m, 0.5, 8.0);
  const KaneNelsonSketch q(k, m, 4, GetParam());
  rng::Stream stream(GetParam() ^ 0x1234);
  int good = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    const auto x = testsupport::gaussian_vector(m, stream);
    const double nx = norm2(x);
    const double nq = norm2(q.apply(x));
    if (nq >= 0.5 * nx && nq <= 1.5 * nx) ++good;
  }
  EXPECT_GE(good, trials - 2);  // eta = 0.5 with small failure probability
}

INSTANTIATE_TEST_SUITE_P(Seeds, JlNormPreservation,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(JlTransform, KaneNelsonDeterministicInSeed) {
  const KaneNelsonSketch a(16, 50, 4, 7);
  const KaneNelsonSketch b(16, 50, 4, 7);
  Vec x(50, 1.0);
  EXPECT_EQ(a.apply(x), b.apply(x));
}

TEST(JlTransform, KaneNelsonRowsMatchApply) {
  const KaneNelsonSketch q(12, 30, 3, 5);
  rng::Stream stream(3);
  const auto x = testsupport::gaussian_vector(30, stream);
  const Vec qx = q.apply(x);
  for (std::size_t j = 0; j < q.sketch_dim(); ++j) {
    EXPECT_NEAR(dot(q.row(j), x), qx[j], 1e-12);
  }
}

TEST(JlTransform, KaneNelsonTransposeAdjoint) {
  const KaneNelsonSketch q(10, 25, 2, 11);
  rng::Stream stream(4);
  const auto x = testsupport::gaussian_vector(25, stream);
  const auto y = testsupport::gaussian_vector(q.sketch_dim(), stream);
  // <Qx, y> == <x, Q^T y>
  EXPECT_NEAR(dot(q.apply(x), y), dot(x, q.apply_transpose(y)), 1e-10);
}

TEST(JlTransform, KaneNelsonColumnSparsity) {
  // Each column has exactly s nonzeros: Q e_i has s entries of +-1/sqrt(s).
  const std::size_t s = 4;
  const KaneNelsonSketch q(16, 40, s, 13);
  for (std::size_t i = 0; i < 40; ++i) {
    Vec e(40, 0.0);
    e[i] = 1.0;
    const Vec col = q.apply(e);
    std::size_t nnz = 0;
    for (double v : col) {
      if (v != 0.0) {
        ++nnz;
        EXPECT_NEAR(std::abs(v), 1.0 / std::sqrt(double(s)), 1e-12);
      }
    }
    EXPECT_LE(nnz, s);  // collisions inside a block can cancel
    EXPECT_GE(nnz, 1u);
  }
}

TEST(JlTransform, RademacherPreservesNorms) {
  const std::size_t m = 150;
  const std::size_t k = jl_dimension(m, 0.5, 8.0);
  const RademacherSketch q(k, m, 23);
  rng::Stream stream(29);
  int good = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    const auto x = testsupport::gaussian_vector(m, stream);
    const double r = norm2(q.apply(x)) / norm2(x);
    if (r >= 0.5 && r <= 1.5) ++good;
  }
  EXPECT_GE(good, trials - 2);
}

TEST(JlTransform, RademacherAdjoint) {
  const RademacherSketch q(8, 20, 31);
  rng::Stream stream(6);
  const auto x = testsupport::gaussian_vector(20, stream);
  const auto y = testsupport::gaussian_vector(8, stream);
  EXPECT_NEAR(dot(q.apply(x), y), dot(x, q.apply_transpose(y)), 1e-10);
}

TEST(JlTransform, DimensionFormula) {
  EXPECT_GT(jl_dimension(1000, 0.1), jl_dimension(1000, 0.5));
  EXPECT_GE(jl_dimension(2, 10.0), 1u);
}

}  // namespace
}  // namespace bcclap::linalg
