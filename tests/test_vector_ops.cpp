#include "linalg/vector_ops.h"

#include <gtest/gtest.h>

#include <cmath>
#include "support/comparators.h"

namespace bcclap::linalg {
namespace {

TEST(VectorOps, DotAndNorms) {
  const Vec a{1, 2, 3};
  const Vec b{4, -5, 6};
  EXPECT_DOUBLE_EQ(dot(a, b), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(norm2(a), std::sqrt(14.0));
  EXPECT_DOUBLE_EQ(norm_inf(b), 6.0);
  EXPECT_DOUBLE_EQ(norm1(b), 15.0);
}

TEST(VectorOps, WeightedNorm) {
  const Vec x{1, 2};
  const Vec w{4, 1};
  EXPECT_DOUBLE_EQ(norm_weighted(x, w), std::sqrt(4.0 + 4.0));
}

TEST(VectorOps, AddSubScaleAxpy) {
  Vec y{1, 1};
  axpy(y, 2.0, Vec{3, -1});
  EXPECT_EQ(y, (Vec{7, -1}));
  EXPECT_EQ(add(Vec{1, 2}, Vec{3, 4}), (Vec{4, 6}));
  EXPECT_EQ(sub(Vec{1, 2}, Vec{3, 4}), (Vec{-2, -2}));
  EXPECT_EQ(scale(Vec{1, 2}, -2.0), (Vec{-2, -4}));
}

TEST(VectorOps, CoordinateWise) {
  EXPECT_EQ(cw_mul(Vec{2, 3}, Vec{4, 5}), (Vec{8, 15}));
  EXPECT_EQ(cw_div(Vec{8, 15}, Vec{4, 5}), (Vec{2, 3}));
  EXPECT_EQ(cw_inv(Vec{2, 4}), (Vec{0.5, 0.25}));
  EXPECT_EQ(cw_abs(Vec{-2, 3}), (Vec{2, 3}));
  EXPECT_EQ(cw_sqrt(Vec{4, 9}), (Vec{2, 3}));
  EXPECT_EQ(cw_max(Vec{-1, 5}, 0.0), (Vec{0, 5}));
}

TEST(VectorOps, MedianOfThree) {
  const Vec m = cw_median(Vec{1, 5, 9}, Vec{2, 4, 7}, Vec{3, 6, 8});
  EXPECT_EQ(m, (Vec{2, 5, 8}));
}

TEST(VectorOps, PositiveNegativeParts) {
  const Vec a{-2, 0, 3};
  EXPECT_EQ(positive_part(a), (Vec{0, 0, 3}));
  EXPECT_EQ(negative_part(a), (Vec{-2, 0, 0}));
  // a = a^+ + a^- identity (Section 5 notation).
  const Vec sum = add(positive_part(a), negative_part(a));
  EXPECT_EQ(sum, a);
}

TEST(VectorOps, MeanRemoval) {
  Vec x{1, 2, 3, 6};
  EXPECT_DOUBLE_EQ(mean(x), 3.0);
  remove_mean(x);
  EXPECT_DOUBLE_EQ(mean(x), 0.0);
  EXPECT_DOUBLE_EQ(x[0], -2.0);
}

TEST(VectorOps, LogExpRoundTrip) {
  const Vec a{0.5, 1.0, 7.0};
  const Vec b = cw_exp(cw_log(a));
  EXPECT_TRUE(testsupport::VecNear(a, b, 1e-12));
}

TEST(VectorOps, MinMaxEntries) {
  const Vec a{3, -1, 4};
  EXPECT_DOUBLE_EQ(max_entry(a), 4.0);
  EXPECT_DOUBLE_EQ(min_entry(a), -1.0);
}

}  // namespace
}  // namespace bcclap::linalg
