#include "graph/laplacian.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "linalg/vector_ops.h"
#include "support/fixtures.h"

namespace bcclap::graph {
namespace {

using testsupport::test_context;

TEST(LaplacianMatrix, TriangleEntries) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 3.0);
  const auto l = laplacian(g).to_dense();
  EXPECT_DOUBLE_EQ(l(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(l(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(l(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(l(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(l(1, 2), -3.0);
  EXPECT_DOUBLE_EQ(l(0, 2), 0.0);
}

TEST(LaplacianMatrix, RowSumsZero) {
  rng::Stream s(1);
  const auto g = random_connected_gnp(15, 0.3, 9, s);
  const auto l = laplacian(g);
  const auto row_sums = l.multiply(test_context(), linalg::ones(15));
  for (double v : row_sums) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(LaplacianMatrix, EqualsIncidenceForm) {
  // L = B^T W B (Section 2.2).
  rng::Stream s(2);
  const auto g = random_connected_gnp(12, 0.4, 5, s);
  const auto l = laplacian(g).to_dense();
  const auto b = incidence(g);
  // Compute B^T W B column by column.
  for (std::size_t c = 0; c < 12; ++c) {
    linalg::Vec e(12, 0.0);
    e[c] = 1.0;
    linalg::Vec be = b.multiply(test_context(), e);
    for (std::size_t k = 0; k < g.num_edges(); ++k)
      be[k] *= g.edge(k).weight;
    const auto col = b.multiply_transpose(be);
    for (std::size_t r = 0; r < 12; ++r) EXPECT_NEAR(l(r, c), col[r], 1e-12);
  }
}

TEST(LaplacianMatrix, ApplyMatchesCsr) {
  rng::Stream s(3);
  const auto g = random_connected_gnp(20, 0.25, 7, s);
  const auto l = laplacian(g);
  const auto x = testsupport::gaussian_vector(20, s);
  const auto a = apply_laplacian(test_context(), g, x);
  const auto b = l.multiply(test_context(), x);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_NEAR(a[i], b[i], 1e-10);
}

TEST(LaplacianMatrix, QuadraticFormIsEdgeSum) {
  // x' L x = sum_e w_e (x_u - x_v)^2 >= 0.
  rng::Stream s(4);
  const auto g = random_connected_gnp(10, 0.5, 3, s);
  const auto x = testsupport::gaussian_vector(10, s);
  double expected = 0.0;
  for (const auto& e : g.edges()) {
    const double d = x[e.u] - x[e.v];
    expected += e.weight * d * d;
  }
  EXPECT_NEAR(linalg::dot(x, apply_laplacian(test_context(), g, x)), expected,
              1e-9);
  EXPECT_GE(expected, 0.0);
}

TEST(LaplacianMatrix, DigraphIncidenceDropsVertex) {
  Digraph g(3);
  g.add_arc(0, 1, 1, 0);
  g.add_arc(1, 2, 1, 0);
  const auto b = incidence(g, /*drop_vertex=*/0);
  EXPECT_EQ(b.rows(), 2u);
  EXPECT_EQ(b.cols(), 2u);
  const auto d = b.to_dense();
  // Arc 0: 0->1: +1 at column of vertex 1 (=0 after drop).
  EXPECT_DOUBLE_EQ(d(0, 0), 1.0);
  // Arc 1: 1->2: -1 at col(1)=0, +1 at col(2)=1.
  EXPECT_DOUBLE_EQ(d(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 1.0);
}

}  // namespace
}  // namespace bcclap::graph
