// PreparedLaplacian::resident_bytes() accounting (laplacian/prepared.h)
// against the FactorCache's LRU byte bound (core/factor_cache.h).
//
// The cache charges its budget with exactly what the artifacts claim to
// keep resident, so the accounting must be honest: every real engine
// variant reports a plausible floor (it owns at least its factors /
// graph copies), the cache's resident_bytes is the exact sum of its
// entries' claims, and a byte bound sized below the working set forces
// evictions while the bound keeps holding — with real artifacts, not the
// stub sizes of test_factor_cache.cpp.
#include "laplacian/prepared.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/factor_cache.h"
#include "graph/generators.h"
#include "laplacian/engine.h"
#include "support/fixtures.h"

namespace bcclap {
namespace {

using core::FactorCache;
using core::FactorCacheKey;
using laplacian::PreparedLaplacian;

graph::Graph bytes_test_graph(std::uint64_t seed = 11) {
  rng::Stream stream(seed);
  return graph::random_regularish(48, 4, 8, stream);
}

std::shared_ptr<const PreparedLaplacian> prepare_variant(
    const std::string& key, const graph::Graph& g) {
  const common::Context ctx = testsupport::test_context(19);
  if (key == "exact-dense") {
    return laplacian::prepare_exact(ctx, g, linalg::FactorMode::kForceDense,
                                    key);
  }
  if (key == "exact-sparse") {
    return laplacian::prepare_exact(ctx, g, linalg::FactorMode::kForceSparse,
                                    key);
  }
  if (key == "cg") {
    return laplacian::prepare_cg(ctx, g);
  }
  return laplacian::prepare_sparsified_chebyshev(
      ctx, g, testsupport::small_sparsify_options());
}

const std::vector<std::string>& engine_variants() {
  static const std::vector<std::string> kVariants = {
      "exact-dense", "exact-sparse", "sparsified-chebyshev", "cg"};
  return kVariants;
}

TEST(PreparedBytes, EveryEngineVariantReportsAPlausibleFloor) {
  const graph::Graph g = bytes_test_graph();
  const std::size_t n = g.num_vertices();
  // Every artifact owns at least one double-sized array of dimension n
  // (a factor column, a diagonal, a permutation) — a conservative floor
  // any honest accounting clears.
  const std::size_t floor_bytes = n * sizeof(double);
  for (const auto& key : engine_variants()) {
    const auto artifact = prepare_variant(key, g);
    ASSERT_NE(artifact, nullptr) << key;
    ASSERT_TRUE(artifact->usable()) << key;
    EXPECT_EQ(artifact->engine_key(), key);
    EXPECT_GT(artifact->resident_bytes(), floor_bytes) << key;
  }
}

TEST(PreparedBytes, CacheResidentBytesIsTheExactSumOfArtifactClaims) {
  const graph::Graph g = bytes_test_graph();
  FactorCache cache(256u << 20);
  std::size_t claimed = 0;
  std::uint64_t seed = 0;
  for (const auto& key : engine_variants()) {
    const auto artifact = prepare_variant(key, g);
    FactorCacheKey cache_key;
    cache_key.engine = key;
    cache_key.seed = ++seed;  // distinct entries
    ASSERT_EQ(cache.insert(cache_key, artifact), artifact);
    claimed += artifact->resident_bytes();
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, engine_variants().size());
  EXPECT_EQ(stats.resident_bytes, claimed);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(PreparedBytes, LruByteBoundHoldsWithRealArtifacts) {
  // Budget = largest + smallest claim: every artifact fits alone (none is
  // silently oversized), but all four together cannot — inserting the set
  // must evict, and after every insert the bound still holds.
  const graph::Graph g = bytes_test_graph();
  std::vector<std::shared_ptr<const PreparedLaplacian>> artifacts;
  for (const auto& key : engine_variants()) {
    artifacts.push_back(prepare_variant(key, g));
  }
  std::size_t largest = 0;
  std::size_t smallest = static_cast<std::size_t>(-1);
  for (const auto& a : artifacts) {
    if (a->resident_bytes() > largest) largest = a->resident_bytes();
    if (a->resident_bytes() < smallest) smallest = a->resident_bytes();
  }

  FactorCache cache(largest + smallest);
  std::uint64_t seed = 0;
  for (std::size_t i = 0; i < artifacts.size(); ++i) {
    FactorCacheKey key;
    key.engine = engine_variants()[i];
    key.seed = ++seed;
    cache.insert(key, artifacts[i]);
    EXPECT_LE(cache.resident_bytes(), cache.max_bytes());
  }
  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_LT(stats.entries, artifacts.size());
  EXPECT_LE(stats.resident_bytes, stats.max_bytes);
}

}  // namespace
}  // namespace bcclap
