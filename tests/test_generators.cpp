#include "graph/generators.h"

#include <gtest/gtest.h>

#include <cmath>

#include "support/fixtures.h"

namespace bcclap::graph {
namespace {

// Property-based suite: every assertion is a structural invariant of the
// generator, so the fixture's labelled streams (not magic literals) drive
// the randomness.
class GeneratorsTest : public testsupport::SeededTest {};

TEST_F(GeneratorsTest, GnpIsConnectedAndDeterministic) {
  auto s1 = stream("gnp"), s2 = stream("gnp");
  const auto g1 = random_connected_gnp(30, 0.1, 10, s1);
  const auto g2 = random_connected_gnp(30, 0.1, 10, s2);
  EXPECT_TRUE(g1.is_connected());
  EXPECT_EQ(g1.num_edges(), g2.num_edges());
  for (std::size_t e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).u, g2.edge(e).u);
    EXPECT_EQ(g1.edge(e).v, g2.edge(e).v);
    EXPECT_DOUBLE_EQ(g1.edge(e).weight, g2.edge(e).weight);
  }
}

TEST_F(GeneratorsTest, GnpDensityScales) {
  auto s = stream("density");
  const auto sparse = random_connected_gnp(40, 0.05, 1, s);
  const auto dense = random_connected_gnp(40, 0.5, 1, s);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
}

TEST_F(GeneratorsTest, GnpWeightsInRange) {
  auto s = stream("weights");
  const auto g = random_connected_gnp(20, 0.3, 7, s);
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.weight, 1.0);
    EXPECT_LE(e.weight, 7.0);
    EXPECT_DOUBLE_EQ(e.weight, std::floor(e.weight));  // integral
  }
}

TEST_F(GeneratorsTest, RegularishConnectedAndBoundedDegree) {
  auto s = stream("regularish");
  const auto g = random_regularish(50, 4, 5, s);
  EXPECT_TRUE(g.is_connected());
  EXPECT_LE(g.max_degree(), 2 * 4 + 2u);  // d permutations + backbone
}

TEST_F(GeneratorsTest, GridShape) {
  auto s = stream("grid");
  const auto g = grid(4, 5, 1, s);
  EXPECT_EQ(g.num_vertices(), 20u);
  EXPECT_EQ(g.num_edges(), 4u * 4 + 3u * 5);  // horizontal + vertical
  EXPECT_TRUE(g.is_connected());
}

TEST_F(GeneratorsTest, PathCycleComplete) {
  EXPECT_EQ(path(5).num_edges(), 4u);
  EXPECT_EQ(cycle(5).num_edges(), 5u);
  auto s = stream("complete");
  EXPECT_EQ(complete(6, 1, s).num_edges(), 15u);
  EXPECT_TRUE(complete(6, 1, s).is_connected());
}

TEST(Generators, BarbellStructure) {
  const auto g = barbell(10);
  EXPECT_TRUE(g.is_connected());
  // Two K5s plus the bridge.
  EXPECT_EQ(g.num_edges(), 2u * 10 + 1);
}

TEST_F(GeneratorsTest, FlowNetworkHasStPath) {
  auto s = stream("flow-st");
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    auto c = s.child(trial);
    const auto g = random_flow_network(12, 20, 8, 5, c);
    // BFS from s over arcs.
    std::vector<bool> seen(g.num_vertices(), false);
    std::vector<std::size_t> stack{0};
    seen[0] = true;
    while (!stack.empty()) {
      const auto v = stack.back();
      stack.pop_back();
      for (auto a : g.out_arcs(v)) {
        const auto h = g.arc(a).head;
        if (!seen[h]) {
          seen[h] = true;
          stack.push_back(h);
        }
      }
    }
    EXPECT_TRUE(seen[g.num_vertices() - 1]);
  }
}

TEST_F(GeneratorsTest, FlowNetworkBoundsRespected) {
  auto s = stream("flow-bounds");
  const auto g = random_flow_network(10, 30, 9, 4, s);
  for (const auto& a : g.arcs()) {
    EXPECT_GE(a.capacity, 1);
    EXPECT_LE(a.capacity, 9);
    EXPECT_GE(a.cost, 0);
    EXPECT_LE(a.cost, 4);
    EXPECT_NE(a.tail, g.num_vertices() - 1);  // nothing leaves t
    EXPECT_NE(a.head, 0u);                    // nothing enters s
  }
}

}  // namespace
}  // namespace bcclap::graph
