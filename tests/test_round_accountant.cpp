// Edge cases for the round accountant: zero-round and zero-message charges,
// label bookkeeping, snapshot arithmetic, and reset.
#include "bcc/round_accountant.h"

#include <gtest/gtest.h>

#include "bcc/network.h"
#include "support/comparators.h"
#include "support/fixtures.h"

namespace bcclap::bcc {
namespace {

TEST(RoundAccountant, StartsEmpty) {
  RoundAccountant acct;
  EXPECT_EQ(acct.total(), 0);
  EXPECT_TRUE(acct.breakdown().empty());
  EXPECT_EQ(acct.total_for("anything"), 0);
}

TEST(RoundAccountant, ZeroRoundChargeRecordsLabelOnly) {
  // Charging 0 rounds is legal (a phase that happened to send nothing);
  // the label appears in the breakdown but the totals stay put.
  RoundAccountant acct;
  acct.charge("silent-phase", 0);
  EXPECT_EQ(acct.total(), 0);
  EXPECT_EQ(acct.total_for("silent-phase"), 0);
  EXPECT_EQ(acct.breakdown().count("silent-phase"), 1u);
}

TEST(RoundAccountant, ZeroBitBroadcastChargesNothing) {
  RoundAccountant acct;
  acct.charge_broadcast_bits("empty-payload", 0, 16);
  EXPECT_EQ(acct.total(), 0);
}

TEST(RoundAccountant, BroadcastBitsRoundsUp) {
  RoundAccountant acct;
  acct.charge_broadcast_bits("a", 1, 16);   // 1 round
  acct.charge_broadcast_bits("a", 16, 16);  // 1 round
  acct.charge_broadcast_bits("a", 17, 16);  // 2 rounds
  EXPECT_EQ(acct.total_for("a"), 4);
  EXPECT_TRUE(testsupport::RoundsAtMost(acct, 4));
  EXPECT_FALSE(testsupport::RoundsAtMost(acct, 3));
}

TEST(RoundAccountant, DegenerateBandwidthClampsToOne) {
  // Bandwidth <= 0 behaves as 1 bit/round (matches enc::rounds_for_bits).
  RoundAccountant acct;
  acct.charge_broadcast_bits("b", 5, 0);
  EXPECT_EQ(acct.total(), 5);
}

TEST(RoundAccountant, MarkSinceMeasuresSubPhases) {
  RoundAccountant acct;
  acct.charge("pre", 7);
  const auto m = acct.mark();
  EXPECT_EQ(acct.since(m), 0);
  acct.charge("solve", 3);
  acct.charge("solve", 2);
  EXPECT_EQ(acct.since(m), 5);
  EXPECT_EQ(acct.total(), 12);
}

TEST(RoundAccountant, ResetClearsTotalsAndBreakdown) {
  RoundAccountant acct;
  acct.charge("x", 4);
  acct.charge("y", 1);
  acct.reset();
  EXPECT_EQ(acct.total(), 0);
  EXPECT_TRUE(acct.breakdown().empty());
  EXPECT_EQ(acct.total_for("x"), 0);
}

TEST(RoundAccountant, ZeroMessageSuperstepIsFree) {
  // A superstep in which no node broadcasts charges no rounds — internal
  // computation is free in the BC/BCC models.
  auto net = testsupport::bcc_net(4);
  const std::vector<std::vector<Message>> silence(4);
  const auto inboxes = net.exchange(silence, "silence");
  EXPECT_EQ(net.accountant().total(), 0);
  for (const auto& inbox : inboxes) EXPECT_TRUE(inbox.empty());
}

TEST(RoundAccountant, LabelsAccumulateIndependently) {
  auto net = testsupport::bcc_net(3);
  std::vector<std::vector<Message>> out(3);
  out[0].push_back(Message().push_flag(true));
  (void)net.exchange(out, "phase-1");
  (void)net.exchange(out, "phase-2");
  (void)net.exchange(out, "phase-1");
  const auto& acct = net.accountant();
  EXPECT_EQ(acct.total_for("phase-1"), 2);
  EXPECT_EQ(acct.total_for("phase-2"), 1);
  EXPECT_EQ(acct.total(), 3);
}

}  // namespace
}  // namespace bcclap::bcc
