// Deterministic replay (service/journal.h): journal a request stream to
// disk, re-run it, byte-compare the replies.
//
// The acceptance contract of the solver service: replaying the same
// journal at 1 worker, at 4 workers, against a cold cache and against a
// warm one produces bitwise-identical reply payload bytes per request.
// The journal itself round-trips exactly — doubles travel as 64-bit hex
// patterns — and malformed input fails loudly.
#include "service/journal.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "service/request.h"
#include "service/solver_service.h"
#include "support/fixtures.h"

namespace bcclap {
namespace {

using linalg::Vec;
using service::ReplayResult;
using service::Request;
using service::RequestType;
using service::ServiceOptions;
using service::SolverService;

Vec gaussian_rhs(std::size_t n, std::uint64_t seed) {
  rng::Stream stream(seed);
  Vec b(n);
  for (auto& v : b) v = stream.next_gaussian();
  return b;
}

// A mixed synthetic stream: repeated-topology solves (the coalescing +
// warm-cache fodder), a panel, a sparsify and an exact mcmf.
std::vector<Request> synthetic_stream() {
  rng::Stream gstream(11);
  const graph::Graph g = graph::random_regularish(48, 4, 8, gstream);
  const std::size_t n = g.num_vertices();

  std::vector<Request> stream;
  for (std::uint64_t rhs = 1; rhs <= 3; ++rhs) {
    Request req;
    req.type = RequestType::kSolve;
    req.seed = 19;
    req.engine = "sparsified-chebyshev";
    req.sparsify = testsupport::small_sparsify_options();
    req.graph = g;
    req.b = gaussian_rhs(n, rhs);
    stream.push_back(std::move(req));
  }
  {
    Request req;
    req.type = RequestType::kSolveMany;
    req.seed = 19;
    req.engine = "sparsified-chebyshev";
    req.sparsify = testsupport::small_sparsify_options();
    req.graph = g;
    req.panel = linalg::DenseMatrix(n, 2);
    req.panel.set_column(0, gaussian_rhs(n, 21));
    req.panel.set_column(1, gaussian_rhs(n, 22));
    stream.push_back(std::move(req));
  }
  {
    Request req;
    req.type = RequestType::kSparsify;
    req.seed = 19;
    req.sparsify = testsupport::small_sparsify_options();
    req.graph = g;
    stream.push_back(std::move(req));
  }
  {
    Request req;
    req.type = RequestType::kMcmf;
    req.seed = 19;
    req.network = graph::Digraph(4);
    req.network.add_arc(0, 1, 2, 1);
    req.network.add_arc(1, 3, 2, 1);
    req.network.add_arc(0, 2, 2, 4);
    req.network.add_arc(2, 3, 2, 4);
    req.source = 0;
    req.sink = 3;
    stream.push_back(std::move(req));
  }
  return stream;
}

ReplayResult replay_fresh(const std::vector<Request>& stream,
                          std::size_t workers) {
  ServiceOptions opts;
  opts.workers = workers;
  SolverService service(opts);
  ReplayResult out = service::replay(service, stream);
  service.shutdown();
  return out;
}

TEST(ServiceJournal, RoundTripsTheStreamExactly) {
  const std::vector<Request> stream = synthetic_stream();
  std::ostringstream first;
  service::write_journal(first, stream);

  std::istringstream in(first.str());
  const std::vector<Request> back = service::read_journal(in);
  ASSERT_EQ(back.size(), stream.size());

  // A reserialized journal is byte-identical — the fixed point every
  // exact round-trip format has.
  std::ostringstream second;
  service::write_journal(second, back);
  EXPECT_EQ(first.str(), second.str());

  // Spot-check the payloads came back bit for bit.
  EXPECT_EQ(back[0].type, RequestType::kSolve);
  EXPECT_EQ(back[0].seed, 19u);
  EXPECT_EQ(back[0].engine, "sparsified-chebyshev");
  EXPECT_EQ(back[0].b, stream[0].b);
  EXPECT_EQ(back[0].graph.num_edges(), stream[0].graph.num_edges());
  EXPECT_EQ(back[3].panel.rows(), stream[3].panel.rows());
  EXPECT_EQ(back[3].panel.cols(), stream[3].panel.cols());
  EXPECT_EQ(back[5].network.num_arcs(), stream[5].network.num_arcs());
  EXPECT_EQ(back[5].sink, 3u);
}

TEST(ServiceJournal, FileRoundTripViaTempDir) {
  const std::vector<Request> stream = synthetic_stream();
  const std::string path = ::testing::TempDir() + "bcclap_journal_test.txt";
  ASSERT_TRUE(service::write_journal_file(path, stream));
  const std::vector<Request> back = service::read_journal_file(path);
  ASSERT_EQ(back.size(), stream.size());

  std::ostringstream a, b;
  service::write_journal(a, stream);
  service::write_journal(b, back);
  EXPECT_EQ(a.str(), b.str());
}

TEST(ServiceJournal, MalformedInputThrows) {
  {
    std::istringstream in("not-a-journal 1");
    EXPECT_THROW(service::read_journal(in), std::runtime_error);
  }
  {
    std::istringstream in("bcclap-journal 2\nrequests 0\n");
    EXPECT_THROW(service::read_journal(in), std::runtime_error);
  }
  {
    // Truncated mid-request.
    std::istringstream in("bcclap-journal 1\nrequests 1\nrequest solve\n");
    EXPECT_THROW(service::read_journal(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "bcclap-journal 1\nrequests 1\nrequest teleport\n");
    EXPECT_THROW(service::read_journal(in), std::runtime_error);
  }
  {
    std::istringstream in("");
    EXPECT_THROW(service::read_journal(in), std::runtime_error);
  }
}

TEST(ServiceReplay, SameJournalSameBytesAcrossRunsAndWorkerCounts) {
  const std::vector<Request> stream = synthetic_stream();

  const ReplayResult once = replay_fresh(stream, 1);
  ASSERT_EQ(once.payloads.size(), stream.size());
  for (const auto& payload : once.payloads) {
    EXPECT_NE(payload.find(" ok"), std::string::npos) << payload;
  }

  // Re-run of the identical journal: bitwise-identical payloads.
  const ReplayResult again = replay_fresh(stream, 1);
  EXPECT_EQ(once.payloads, again.payloads);

  // Worker count is wall-time, never bytes.
  const ReplayResult wide = replay_fresh(stream, 4);
  EXPECT_EQ(once.payloads, wide.payloads);
}

TEST(ServiceReplay, WarmCacheReplayMatchesColdBytes) {
  const std::vector<Request> stream = synthetic_stream();
  ServiceOptions opts;
  opts.workers = 1;
  SolverService service(opts);

  const ReplayResult cold = service::replay(service, stream);
  const auto cold_stats = service.stats();
  const ReplayResult warm = service::replay(service, stream);
  const auto warm_stats = service.stats();
  service.shutdown();

  // Same bytes, but the second pass was served from the shared cache:
  // every Laplacian request hit, and no new prepare-phase work ran (the
  // engine sparsify/factor counters stand still between the passes).
  EXPECT_EQ(cold.payloads, warm.payloads);
  EXPECT_GT(warm_stats.cache.hits, cold_stats.cache.hits);
  EXPECT_EQ(warm_stats.cache.misses, cold_stats.cache.misses);
  EXPECT_EQ(warm_stats.totals.sparsify_count, cold_stats.totals.sparsify_count);
  EXPECT_EQ(warm_stats.totals.dense_factors, cold_stats.totals.dense_factors);
  EXPECT_EQ(warm_stats.totals.sparse_factors,
            cold_stats.totals.sparse_factors);
}

TEST(ServiceReplay, HonorsBackpressureWithATinyQueue) {
  const std::vector<Request> stream = synthetic_stream();
  ServiceOptions opts;
  opts.workers = 0;  // caller-driven: replay() drains inline to make room
  opts.queue_capacity = 1;
  SolverService service(opts);

  const ReplayResult out = service::replay(service, stream);
  service.shutdown();
  ASSERT_EQ(out.payloads.size(), stream.size());
  EXPECT_GT(out.resubmissions, 0u);

  // The tiny-queue replies still match an unconstrained run's bytes.
  const ReplayResult wide = replay_fresh(stream, 1);
  EXPECT_EQ(out.payloads, wide.payloads);
}

}  // namespace
}  // namespace bcclap
