#include "laplacian/sdd_reduction.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/laplacian.h"
#include "linalg/cholesky.h"
#include "linalg/vector_ops.h"
#include "support/fixtures.h"

namespace bcclap::laplacian {
namespace {

using testsupport::test_context;

// Random SDD matrix with strictly positive slack and mixed-sign
// off-diagonals.
linalg::DenseMatrix random_sdd(std::size_t n, bool with_positive,
                               rng::Stream& stream) {
  linalg::DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (stream.next_double() < 0.5) continue;
      double v = -1.0 - 3.0 * stream.next_double();
      if (with_positive && stream.next_double() < 0.3) v = -v;
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      if (j != i) s += std::abs(m(i, j));
    m(i, i) = s + 0.5 + stream.next_double();  // strict dominance
  }
  return m;
}

TEST(SddReduction, VirtualGraphIsLaplacianOfM) {
  rng::Stream stream(1);
  const auto m = random_sdd(6, false, stream);
  const auto red = gremban_reduce(m);
  ASSERT_TRUE(red.valid);
  EXPECT_EQ(red.virtual_graph.num_vertices(), 12u);
  // L [x; -x] = [M x; -M x] for any x.
  const auto x = testsupport::gaussian_vector(6, stream);
  const auto lifted =
      graph::apply_laplacian(test_context(), red.virtual_graph, lift_rhs(x));
  const auto mx = m.multiply(test_context(), x);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(lifted[i], mx[i], 1e-9);
    EXPECT_NEAR(lifted[i + 6], -mx[i], 1e-9);
  }
}

TEST(SddReduction, SolveRoundTripNegativeOffdiag) {
  rng::Stream stream(2);
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    auto child = stream.child(trial);
    const auto m = random_sdd(8, false, child);
    const auto red = gremban_reduce(m);
    ASSERT_TRUE(red.valid);
    const auto factor = linalg::LaplacianFactor::factor(
        test_context(), graph::laplacian(red.virtual_graph));
    ASSERT_TRUE(factor);
    const auto y = testsupport::gaussian_vector(8, child);
    const auto x = project_solution(factor->solve(lift_rhs(y)));
    const auto r = linalg::sub(m.multiply(test_context(), x), y);
    EXPECT_LT(linalg::norm2(r), 1e-7 * (linalg::norm2(y) + 1.0));
  }
}

TEST(SddReduction, SolveRoundTripMixedSigns) {
  // Positive off-diagonals exercise the cross-copy edges.
  rng::Stream stream(3);
  const auto m = random_sdd(10, true, stream);
  const auto red = gremban_reduce(m);
  ASSERT_TRUE(red.valid);
  const auto factor = linalg::LaplacianFactor::factor(
      test_context(), graph::laplacian(red.virtual_graph));
  ASSERT_TRUE(factor);
  const auto y = testsupport::gaussian_vector(10, stream);
  const auto x = project_solution(factor->solve(lift_rhs(y)));
  const auto r = linalg::sub(m.multiply(test_context(), x), y);
  EXPECT_LT(linalg::norm2(r), 1e-7 * (linalg::norm2(y) + 1.0));
}

TEST(SddReduction, RejectsNonSdd) {
  linalg::DenseMatrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = -5.0;
  m(1, 0) = -5.0;
  m(1, 1) = 1.0;
  EXPECT_FALSE(gremban_reduce(m).valid);
}

TEST(SddReduction, LiftProjectInverse) {
  const linalg::Vec y{1, -2, 3};
  const auto lifted = lift_rhs(y);
  EXPECT_EQ(lifted.size(), 6u);
  EXPECT_EQ(project_solution(lifted), y);
}

}  // namespace
}  // namespace bcclap::laplacian
