// graph::fingerprint (graph/fingerprint.h): the cache identity of a
// weighted graph. The contract under test is exactly the one the
// factorization cache relies on — insensitive to edge insertion order and
// endpoint orientation, sensitive to every bit that changes solve results
// (weight bits, endpoint pairs, the vertex count including isolated
// vertices).
#include "graph/fingerprint.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <tuple>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"

namespace bcclap::graph {
namespace {

Graph from_edges(std::size_t n,
                 const std::vector<std::tuple<VertexId, VertexId, double>>&
                     edges) {
  Graph g(n);
  for (const auto& [u, v, w] : edges) g.add_edge(u, v, w);
  return g;
}

TEST(Fingerprint, ExposesVertexAndEdgeCounts) {
  const Graph g = from_edges(5, {{0, 1, 2.0}, {1, 2, 3.0}, {0, 2, 1.0}});
  const Fingerprint fp = fingerprint(g);
  EXPECT_EQ(fp.vertices, 5u);
  EXPECT_EQ(fp.edges, 3u);
}

TEST(Fingerprint, EqualUnderEdgeReordering) {
  const Graph a = from_edges(4, {{0, 1, 2.0}, {1, 2, 3.0}, {0, 2, 1.0},
                                 {2, 3, 0.5}});
  // Same multiset of edges, inserted in a different order and with the
  // endpoints of two edges written in the opposite orientation.
  const Graph b = from_edges(4, {{3, 2, 0.5}, {0, 2, 1.0}, {2, 1, 3.0},
                                 {0, 1, 2.0}});
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, EqualForIndependentlyBuiltRandomGraph) {
  // A generator rerun with the same seed must land on the same
  // fingerprint — the repeat-request scenario the cache serves.
  rng::Stream s1(42), s2(42);
  const Graph a = random_regularish(64, 4, 8, s1);
  const Graph b = random_regularish(64, 4, 8, s2);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, WeightPerturbationByOneUlpChangesIt) {
  const std::vector<std::tuple<VertexId, VertexId, double>> edges = {
      {0, 1, 2.0}, {1, 2, 3.0}, {0, 2, 1.0}};
  const Graph a = from_edges(3, edges);
  Graph b = from_edges(3, edges);
  b.set_weight(1, std::nextafter(3.0, 4.0));
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, EdgeFlipToDifferentEndpointChangesIt) {
  const Graph a = from_edges(4, {{0, 1, 2.0}, {1, 2, 3.0}});
  const Graph b = from_edges(4, {{0, 1, 2.0}, {1, 3, 3.0}});
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, IsolatedVertexCountChangesIt) {
  // Same edges, one extra isolated vertex: L_G gains a zero row/column,
  // so solutions differ and the fingerprints must too.
  const std::vector<std::tuple<VertexId, VertexId, double>> edges = {
      {0, 1, 2.0}, {1, 2, 3.0}};
  EXPECT_NE(fingerprint(from_edges(3, edges)),
            fingerprint(from_edges(4, edges)));
}

TEST(Fingerprint, ExtraEdgeChangesIt) {
  const Graph a = from_edges(3, {{0, 1, 2.0}, {1, 2, 3.0}});
  const Graph b = from_edges(3, {{0, 1, 2.0}, {1, 2, 3.0}, {0, 2, 1.0}});
  EXPECT_NE(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, SignedZeroWeightsHashEqual) {
  // -0.0 and +0.0 produce identical Laplacians; the bit-pattern hash
  // normalizes the sign so the cache equates them.
  Graph a(2), b(2);
  a.add_edge(0, 1, 0.0);
  b.add_edge(0, 1, -0.0);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

}  // namespace
}  // namespace bcclap::graph
