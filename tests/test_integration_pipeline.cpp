// End-to-end integration across the Figure 1 pipeline:
// spanner -> sparsifier -> Laplacian solver -> SDD engine -> LP -> flow.
#include <gtest/gtest.h>

#include "core/runtime.h"
#include "flow/mcmf_solver.h"
#include "flow/ssp.h"
#include "graph/generators.h"
#include "laplacian/bcc_solver.h"
#include "laplacian/engine.h"
#include "laplacian/solver.h"
#include "lp/lp_solver.h"
#include "sparsify/verifier.h"
#include "support/comparators.h"
#include "support/fixtures.h"

namespace bcclap {
namespace {

using testsupport::test_context;

TEST(Pipeline, SparsifierFeedsLaplacianSolver) {
  rng::Stream gstream(1);
  const auto g = graph::complete(32, 6, gstream);
  const auto opt = testsupport::small_sparsify_options(0.5, 2, 4);
  laplacian::SparsifiedLaplacianSolver solver(test_context(404), g, opt);
  // The preconditioner is a genuine sparsifier of G.
  const auto check = sparsify::check_sparsifier(g, solver.sparsifier());
  ASSERT_TRUE(check.valid);
  EXPECT_GT(check.lambda_min, 0.0);
  // And the solver built on it reaches high precision.
  linalg::Vec b(32, 0.0);
  b[0] = 1.0;
  b[31] = -1.0;
  const auto y = solver.solve(b, 1e-9);
  const auto x = laplacian::exact_laplacian_solve(test_context(), g, b);
  EXPECT_TRUE(testsupport::EnergyNormWithin(g, y, x, 1e-9));
}

TEST(Pipeline, SparsifiedSddEngineMatchesExact) {
  // Gremban + sparsifier + Chebyshev vs dense LDL^T on the same SDD system.
  rng::Stream stream(2);
  linalg::DenseMatrix m(10, 10);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      if (stream.next_double() < 0.6) {
        const double v = -1.0 - 2.0 * stream.next_double();
        m(i, j) = v;
        m(j, i) = v;
      }
    }
  }
  for (std::size_t i = 0; i < 10; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < 10; ++j)
      if (j != i) s += std::abs(m(i, j));
    m(i, i) = s + 1.0;
  }
  const auto y = testsupport::gaussian_vector(10, stream);

  auto& registry = laplacian::EngineRegistry::instance();
  laplacian::SddEngineOptions eopt;
  eopt.network_n = 10;
  auto exact = registry.create_sdd("exact-dense", test_context(), m, eopt);
  auto sparsified =
      registry.create_sdd("sparsified-chebyshev", test_context(777), m, eopt);
  const auto xe = exact->solve(y, 1e-10);
  const auto xs = sparsified->solve(y, 1e-10);
  EXPECT_TRUE(testsupport::VecNear(xe, xs, 1e-6));
  EXPECT_GT(sparsified->rounds_charged(), 0);
}

TEST(Pipeline, LpWithSparsifiedGramFactory) {
  // The full Theorem 1.4 wiring: the IPM's (A^T D A)-solves go through the
  // Gremban + sparsifier + Chebyshev stack instead of dense LDL^T.
  const auto p = testsupport::diamond_lp();
  lp::LpOptions opt;
  opt.epsilon = 1e-4;
  std::uint64_t counter = 0;
  opt.gram_factory = [&counter](const linalg::DenseMatrix& gram) {
    return laplacian::EngineRegistry::instance().create_sdd(
        "sparsified-chebyshev", test_context(1000 + counter++), gram, {});
  };
  const auto res =
      lp::lp_solve(test_context(opt.seed), p, {0.5, 0.5, 0.5, 0.5}, opt);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.objective, 2.0, 5e-2);
}

TEST(Pipeline, FlowOnGridLikeNetwork) {
  // A structured (non-random) instance through the whole stack.
  graph::Digraph g(6);
  g.add_arc(0, 1, 3, 1);
  g.add_arc(0, 2, 2, 2);
  g.add_arc(1, 3, 2, 1);
  g.add_arc(1, 4, 2, 3);
  g.add_arc(2, 4, 2, 1);
  g.add_arc(3, 5, 3, 1);
  g.add_arc(4, 5, 3, 1);
  const auto baseline = flow::min_cost_max_flow_ssp(g, 0, 5);
  flow::McmfOptions opt;
  const auto ipm =
      flow::min_cost_max_flow_ipm(test_context(opt.seed), g, 0, 5, opt);
  ASSERT_TRUE(ipm.exact);
  EXPECT_EQ(ipm.flow.value, baseline.value);
  EXPECT_EQ(ipm.flow.cost, baseline.cost);
}

TEST(Pipeline, RoundAccountingAccumulatesAcrossLayers) {
  rng::Stream gstream(3);
  const auto g = graph::complete(20, 2, gstream);
  const auto opt = testsupport::small_sparsify_options(1.0, 2, 2);
  laplacian::SparsifiedLaplacianSolver solver(test_context(55), g, opt);
  const auto pre = solver.preprocessing_rounds();
  EXPECT_GT(pre, 0);
  linalg::Vec b(20, 0.0);
  b[0] = 1.0;
  b[1] = -1.0;
  laplacian::SolveStats st;
  solver.solve(b, 1e-4, &st);
  EXPECT_EQ(solver.accountant().total(), pre + st.rounds);
}

TEST(Pipeline, RunStatsPropagateThroughFacade) {
  // The unified core::RunStats shape carries rounds through every facade
  // entry point, consistent with the per-layer accounting underneath.
  rng::Stream gstream(8);
  const auto g = graph::complete(24, 4, gstream);
  RuntimeOptions ropts;
  ropts.threads = 1;
  ropts.seed = 55;
  Runtime rt(ropts);
  const auto sopt = testsupport::small_sparsify_options(0.5, 2, 3);

  const auto sp = rt.sparsify(g, sopt);
  EXPECT_GT(sp.stats.rounds, 0);
  EXPECT_EQ(sp.stats.rounds, sp.result.rounds);
  EXPECT_EQ(sp.stats.iterations,
            sparsify::resolve_options(g, sopt).iterations);

  linalg::Vec b(24, 0.0);
  b[0] = 1.0;
  b[23] = -1.0;
  LaplacianSolveOptions lopt;
  lopt.sparsify = sopt;
  const auto lap = rt.solve_laplacian(g, b, lopt);
  ASSERT_TRUE(lap.usable);
  // Facade rounds = preprocessing + per-instance solve, matching the
  // layer's own split.
  laplacian::SparsifiedLaplacianSolver solver(rt.context(), g, sopt);
  laplacian::SolveStats st;
  const auto x = solver.solve(b, lopt.eps, &st);
  EXPECT_EQ(lap.preprocessing_rounds, solver.preprocessing_rounds());
  EXPECT_EQ(lap.stats.rounds, solver.preprocessing_rounds() + st.rounds);
  EXPECT_EQ(lap.stats.iterations, st.iterations);
  EXPECT_EQ(lap.x, x);

  // LP layer: the legacy rounds/steps fields and the unified stats agree.
  const auto p = testsupport::diamond_lp();
  lp::LpOptions lpopt;
  lpopt.epsilon = 1e-4;
  const auto res = lp::lp_solve(rt.context(), p, {0.5, 0.5, 0.5, 0.5}, lpopt);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.stats.rounds, res.rounds);
  EXPECT_EQ(res.stats.iterations, res.path_steps);
  EXPECT_EQ(res.stats.steps, res.newton_steps);
  EXPECT_GT(res.stats.rounds, 0);
}

}  // namespace
}  // namespace bcclap
