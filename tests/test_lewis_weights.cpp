#include "lp/lewis_weights.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "support/fixtures.h"

namespace bcclap::lp {
namespace {

using testsupport::test_context;

TEST(LewisWeights, PEquals2IsLeverageScores) {
  rng::Stream stream(1);
  const auto a = testsupport::gaussian_matrix(30, 5, stream);
  const auto sigma = leverage_scores_exact(test_context(), a);
  const auto w = lewis_fixed_point(test_context(), a, 2.0, 60);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(w[i], sigma[i], 1e-6);
  }
}

TEST(LewisWeights, FixedPointResidualSmall) {
  rng::Stream stream(2);
  const auto a = testsupport::gaussian_matrix(40, 6, stream);
  const double p = lewis_p_for(40);
  const auto w = lewis_fixed_point(test_context(), a, p, 200);
  // Check w ~ sigma(W^{1/2-1/p} A).
  const auto sigma = leverage_scores_exact(test_context(), row_scaled(a, w, p));
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(sigma[i] / std::max(w[i], 1e-12), 1.0, 1e-3);
  }
}

TEST(LewisWeights, SumScalesWithRank) {
  // sum of ell_p Lewis weights = n for p = 2; stays Theta(n) nearby.
  rng::Stream stream(3);
  const auto a = testsupport::gaussian_matrix(50, 8, stream);
  const auto w = lewis_fixed_point(test_context(), a, lewis_p_for(50), 150);
  double sum = 0.0;
  for (double v : w) sum += v;
  EXPECT_GT(sum, 4.0);
  EXPECT_LT(sum, 16.0);
}

TEST(LewisWeights, ApxWeightsRefinesWarmStart) {
  rng::Stream stream(4);
  const auto a = testsupport::gaussian_matrix(36, 5, stream);
  const double p = lewis_p_for(36);
  const auto truth = lewis_fixed_point(test_context(), a, p, 200);
  // Perturb the truth and refine.
  linalg::Vec warm = truth;
  auto child = stream.child("noise");
  for (auto& v : warm) v *= (1.0 + 0.05 * child.next_gaussian());
  LewisOptions opt;
  opt.max_iterations = 32;
  const auto refined =
      compute_apx_weights(test_context(), a, p, warm, 0.05, opt);
  double err_warm = 0.0, err_refined = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    err_warm += std::abs(warm[i] - truth[i]);
    err_refined += std::abs(refined[i] - truth[i]);
  }
  EXPECT_LT(err_refined, err_warm);
}

TEST(LewisWeights, InitialWeightsLandNearFixedPoint) {
  rng::Stream stream(5);
  const auto a = testsupport::gaussian_matrix(32, 4, stream);
  const double p = lewis_p_for(32);
  LewisOptions opt;
  const auto w = compute_initial_weights(test_context(), a, p, 0.05, opt);
  const double err = lewis_relative_error(test_context(), a, p, w);
  EXPECT_LT(err, 0.5) << "homotopy should land within trust distance";
}

TEST(LewisWeights, RowScaledShapes) {
  rng::Stream stream(6);
  const auto a = testsupport::gaussian_matrix(10, 3, stream);
  const linalg::Vec w(10, 4.0);
  // p = 2: exponent 0 -> unchanged.
  const auto s2 = row_scaled(a, w, 2.0);
  EXPECT_NEAR(s2(3, 1), a(3, 1), 1e-12);
  // p = 1: exponent -1/2 -> rows scaled by 1/2.
  const auto s1 = row_scaled(a, w, 1.0);
  EXPECT_NEAR(s1(3, 1), 0.5 * a(3, 1), 1e-12);
}

TEST(LewisWeights, PForFormula) {
  EXPECT_LT(lewis_p_for(100), 1.0);
  EXPECT_GT(lewis_p_for(100), 0.8);
  EXPECT_GT(lewis_p_for(1000000), lewis_p_for(100));
}

}  // namespace
}  // namespace bcclap::lp
