#include "lp/barrier.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bcclap::lp {
namespace {

// Finite-difference check of the derivatives.
void check_derivatives(const CoordinateBarrier& b, double x) {
  const double h = 1e-6;
  const double d1_fd = (b.value(x + h) - b.value(x - h)) / (2 * h);
  const double d2_fd = (b.d1(x + h) - b.d1(x - h)) / (2 * h);
  EXPECT_NEAR(b.d1(x), d1_fd, 1e-4 * (1.0 + std::abs(d1_fd)));
  EXPECT_NEAR(b.d2(x), d2_fd, 1e-3 * (1.0 + std::abs(d2_fd)));
  EXPECT_GT(b.d2(x), 0.0);  // convexity
}

TEST(Barrier, LogLowerBarrier) {
  const CoordinateBarrier b{0.0, kPosInf};
  EXPECT_TRUE(b.in_domain(0.5));
  EXPECT_FALSE(b.in_domain(0.0));
  EXPECT_FALSE(b.in_domain(-1.0));
  EXPECT_DOUBLE_EQ(b.value(1.0), 0.0);
  for (double x : {0.1, 1.0, 7.0}) check_derivatives(b, x);
}

TEST(Barrier, LogUpperBarrier) {
  const CoordinateBarrier b{kNegInf, 2.0};
  EXPECT_TRUE(b.in_domain(1.9));
  EXPECT_FALSE(b.in_domain(2.0));
  for (double x : {-3.0, 0.0, 1.5}) check_derivatives(b, x);
}

TEST(Barrier, TrigBarrierTwoSided) {
  const CoordinateBarrier b{-1.0, 3.0};
  EXPECT_TRUE(b.in_domain(0.0));
  EXPECT_FALSE(b.in_domain(-1.0));
  EXPECT_FALSE(b.in_domain(3.0));
  for (double x : {-0.9, 0.0, 1.0, 2.8}) check_derivatives(b, x);
  // Blows up toward both boundaries (Definition 4.1 condition 1).
  EXPECT_GT(b.value(-0.999), b.value(0.0) + 3.0);
  EXPECT_GT(b.value(2.999), b.value(1.0) + 3.0);
}

TEST(Barrier, TrigBarrierCenteredMinimum) {
  // For symmetric bounds the minimum is at the midpoint.
  const CoordinateBarrier b{-2.0, 2.0};
  EXPECT_NEAR(b.d1(0.0), 0.0, 1e-12);
  EXPECT_LT(b.value(0.0), b.value(1.0));
}

TEST(BarrierSet, GradientAndHessian) {
  BarrierSet bs(linalg::Vec{0.0, kNegInf}, linalg::Vec{kPosInf, 1.0});
  const linalg::Vec x{2.0, 0.0};
  EXPECT_TRUE(bs.in_domain(x));
  const auto g = bs.gradient(x);
  EXPECT_DOUBLE_EQ(g[0], -0.5);  // -1/(x-l)
  EXPECT_DOUBLE_EQ(g[1], 1.0);   // 1/(u-x)
  const auto h = bs.hessian_diag(x);
  EXPECT_DOUBLE_EQ(h[0], 0.25);
  EXPECT_DOUBLE_EQ(h[1], 1.0);
}

TEST(BarrierSet, MaxFeasibleStep) {
  BarrierSet bs(linalg::Vec{0.0, 0.0}, linalg::Vec{1.0, kPosInf});
  const linalg::Vec x{0.5, 1.0};
  // Moving +1 in coord 0 hits u=1 after 0.5; margin 0.99.
  const double s = bs.max_feasible_step(x, linalg::Vec{1.0, 0.0});
  EXPECT_NEAR(s, 0.495, 1e-12);
  // Moving away from all bounds: full step.
  EXPECT_DOUBLE_EQ(bs.max_feasible_step(x, linalg::Vec{-0.1, 5.0}, 0.5), 1.0);
}

TEST(BarrierSet, DomainCheck) {
  BarrierSet bs(linalg::Vec{0.0}, linalg::Vec{1.0});
  EXPECT_TRUE(bs.in_domain(linalg::Vec{0.5}));
  EXPECT_FALSE(bs.in_domain(linalg::Vec{1.5}));
}

}  // namespace
}  // namespace bcclap::lp
