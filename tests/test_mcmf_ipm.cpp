// Theorem 1.1 end-to-end: the LP-based min-cost max-flow must reproduce the
// exact integral optimum computed by the combinatorial baseline.
#include "flow/mcmf_solver.h"

#include <gtest/gtest.h>

#include "flow/mcmf_lp.h"
#include "flow/ssp.h"
#include "graph/generators.h"
#include "support/comparators.h"
#include "support/fixtures.h"

namespace bcclap::flow {
namespace {

using testsupport::test_context;

struct Case {
  std::size_t n;
  std::size_t extra;
  std::int64_t cap;
  std::int64_t cost;
  std::uint64_t seed;
};

class McmfExactness : public ::testing::TestWithParam<Case> {};

TEST_P(McmfExactness, MatchesSspBaseline) {
  const Case c = GetParam();
  rng::Stream stream(c.seed);
  const auto g =
      graph::random_flow_network(c.n, c.extra, c.cap, c.cost, stream);
  const std::size_t s = 0, t = c.n - 1;

  const auto baseline = min_cost_max_flow_ssp(g, s, t);

  McmfOptions opt;
  opt.seed = c.seed * 977 + 13;
  const auto ipm = min_cost_max_flow_ipm(test_context(opt.seed), g, s, t, opt);
  ASSERT_TRUE(ipm.exact) << "pipeline failed to produce a feasible rounding";
  EXPECT_EQ(ipm.flow.value, baseline.value) << "max-flow value mismatch";
  EXPECT_EQ(ipm.flow.cost, baseline.cost) << "min-cost mismatch";
  EXPECT_TRUE(graph::is_feasible_flow(g, ipm.flow.flow, s, t));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, McmfExactness,
    ::testing::Values(Case{6, 8, 4, 3, 1}, Case{8, 12, 5, 4, 2},
                      Case{8, 12, 5, 4, 3}, Case{10, 15, 3, 5, 4},
                      Case{10, 20, 6, 2, 5}, Case{12, 18, 4, 4, 6}));

TEST(McmfIpm, TrivialSingleArc) {
  graph::Digraph g(2);
  g.add_arc(0, 1, 7, 3);
  McmfOptions opt;
  const auto res = min_cost_max_flow_ipm(test_context(opt.seed), g, 0, 1, opt);
  ASSERT_TRUE(res.exact);
  EXPECT_EQ(res.flow.value, 7);
  EXPECT_EQ(res.flow.cost, 21);
}

TEST(McmfIpm, ChoosesCheaperParallelRoute) {
  graph::Digraph g(4);
  g.add_arc(0, 1, 2, 1);
  g.add_arc(1, 3, 2, 1);
  g.add_arc(0, 2, 2, 4);
  g.add_arc(2, 3, 2, 4);
  McmfOptions opt;
  const auto res = min_cost_max_flow_ipm(test_context(opt.seed), g, 0, 3, opt);
  ASSERT_TRUE(res.exact);
  EXPECT_EQ(res.flow.value, 4);
  // 2 units via the cheap path (cost 4) + 2 via the expensive (cost 16).
  EXPECT_EQ(res.flow.cost, 20);
}

TEST(McmfIpm, ReportsComplexityCounters) {
  rng::Stream stream(9);
  const auto g = graph::random_flow_network(8, 10, 3, 3, stream);
  McmfOptions opt;
  const auto res = min_cost_max_flow_ipm(test_context(opt.seed), g, 0, 7, opt);
  EXPECT_GT(res.path_steps, 0u);
  EXPECT_GT(res.newton_steps, 0u);
  EXPECT_GT(res.rounds, 0);
}

TEST(McmfLpFormulation, InteriorPointIsStrictlyFeasible) {
  rng::Stream stream(5);
  const auto g = graph::random_flow_network(8, 12, 5, 3, stream);
  auto pert = stream.child("p");
  const auto lp = build_mcmf_lp(g, 0, 7, pert);
  // Strictly inside the box.
  for (std::size_t i = 0; i < lp.interior_point.size(); ++i) {
    EXPECT_GT(lp.interior_point[i], lp.problem.lower[i]);
    EXPECT_LT(lp.interior_point[i], lp.problem.upper[i]);
  }
  // A^T x0 = b (= 0 for the combined formulation).
  const auto ax = lp.problem.a.multiply_transpose(lp.interior_point);
  EXPECT_TRUE(testsupport::VecNear(ax, lp.problem.b, 1e-9));
}

TEST(McmfLpFormulation, PerturbationPreservesOrder) {
  // q~ = D q + noise with noise < D: the perturbed costs order-embed the
  // original ones.
  rng::Stream stream(6);
  const auto g = graph::random_flow_network(10, 15, 4, 6, stream);
  auto pert = stream.child("p");
  const auto lp = build_mcmf_lp(g, 0, 9, pert);
  for (std::size_t a = 0; a < g.num_arcs(); ++a) {
    const auto base = g.arc(a).cost * lp.cost_scale;
    EXPECT_GT(lp.perturbed_cost[a], base);
    EXPECT_LT(lp.perturbed_cost[a], base + lp.cost_scale);
  }
}

}  // namespace
}  // namespace bcclap::flow
