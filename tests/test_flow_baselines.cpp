#include <gtest/gtest.h>

#include "flow/dinic.h"
#include "flow/ssp.h"
#include "graph/generators.h"

namespace bcclap::flow {
namespace {

TEST(Dinic, HandComputedMaxFlow) {
  // s=0, t=3. Two disjoint paths of caps 2 and 3 -> max flow 5.
  graph::Digraph g(4);
  g.add_arc(0, 1, 2, 0);
  g.add_arc(1, 3, 2, 0);
  g.add_arc(0, 2, 3, 0);
  g.add_arc(2, 3, 3, 0);
  const auto res = max_flow_dinic(g, 0, 3);
  EXPECT_EQ(res.value, 5);
  EXPECT_TRUE(graph::is_feasible_flow(g, res.flow, 0, 3));
}

TEST(Dinic, BottleneckRespected) {
  graph::Digraph g(3);
  g.add_arc(0, 1, 10, 0);
  g.add_arc(1, 2, 4, 0);
  const auto res = max_flow_dinic(g, 0, 2);
  EXPECT_EQ(res.value, 4);
}

TEST(Ssp, HandComputedMinCost) {
  // Two s-t paths: cheap cap 1 (cost 1), expensive cap 2 (cost 5).
  // Max flow 3 -> cost 1*1 + 2*10 hmm: path A: 0->1->3 (cap1, cost 1+0),
  // path B: 0->2->3 (cap2, cost 5+0). Min cost of max flow = 1 + 10 = 11.
  graph::Digraph g(4);
  g.add_arc(0, 1, 1, 1);
  g.add_arc(1, 3, 1, 0);
  g.add_arc(0, 2, 2, 5);
  g.add_arc(2, 3, 2, 0);
  const auto res = min_cost_max_flow_ssp(g, 0, 3);
  EXPECT_EQ(res.value, 3);
  EXPECT_EQ(res.cost, 11);
  EXPECT_TRUE(graph::is_feasible_flow(g, res.flow, 0, 3));
}

TEST(Ssp, PrefersCheaperPath) {
  // Shared bottleneck: only 1 unit fits; must take the cheap path.
  graph::Digraph g(4);
  g.add_arc(0, 1, 1, 10);
  g.add_arc(0, 2, 1, 1);
  g.add_arc(1, 3, 1, 0);
  g.add_arc(2, 3, 1, 0);
  // t-side bottleneck:
  graph::Digraph g2(5);
  g2.add_arc(0, 1, 1, 10);
  g2.add_arc(0, 2, 1, 1);
  g2.add_arc(1, 3, 1, 0);
  g2.add_arc(2, 3, 1, 0);
  g2.add_arc(3, 4, 1, 0);
  const auto res = min_cost_max_flow_ssp(g2, 0, 4);
  EXPECT_EQ(res.value, 1);
  EXPECT_EQ(res.cost, 1);
}

class BaselineAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BaselineAgreement, SspValueMatchesDinic) {
  rng::Stream stream(GetParam());
  const auto g = graph::random_flow_network(14, 30, 9, 6, stream);
  const auto dinic = max_flow_dinic(g, 0, 13);
  const auto ssp = min_cost_max_flow_ssp(g, 0, 13);
  EXPECT_EQ(ssp.value, dinic.value);
  EXPECT_TRUE(graph::is_feasible_flow(g, ssp.flow, 0, 13));
  EXPECT_LE(ssp.cost, dinic.cost);  // min-cost among max flows
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineAgreement,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(FlowHelpers, FeasibilityChecks) {
  graph::Digraph g(3);
  g.add_arc(0, 1, 2, 1);
  g.add_arc(1, 2, 2, 1);
  EXPECT_TRUE(graph::is_feasible_flow(g, {1, 1}, 0, 2));
  EXPECT_FALSE(graph::is_feasible_flow(g, {1, 0}, 0, 2));  // conservation
  EXPECT_FALSE(graph::is_feasible_flow(g, {3, 3}, 0, 2));  // capacity
  EXPECT_FALSE(graph::is_feasible_flow(g, {-1, -1}, 0, 2));
  EXPECT_EQ(graph::flow_value(g, {2, 2}, 0), 2);
  EXPECT_EQ(graph::flow_cost(g, {2, 2}), 4);
}

}  // namespace
}  // namespace bcclap::flow
