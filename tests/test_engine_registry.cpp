// EngineRegistry suite (PR 7): key listing, unknown-key diagnostics,
// per-key solve equivalence against the exact reference, the auto-tuner's
// thresholds, the BCCLAP_ENGINE override, RunStats engine-name propagation
// through the Runtime and LP facades, and 1-vs-4-thread bitwise identity
// per engine — extending the determinism contract to every backend.
#include "laplacian/engine.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/runtime.h"
#include "graph/generators.h"
#include "laplacian/solver.h"
#include "linalg/sparse_ldlt.h"
#include "lp/lp_solver.h"
#include "support/comparators.h"
#include "support/fixtures.h"

namespace bcclap::laplacian {
namespace {

using testsupport::test_context;

// Scoped environment-variable override; restores the previous state on
// scope exit so suite order does not matter.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_ = old != nullptr;
    if (had_) saved_ = old;
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_) {
      ::setenv(name_.c_str(), saved_.c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  std::string name_;
  std::string saved_;
  bool had_ = false;
};

TEST(EngineRegistry, ListsTheBuiltinKeysSorted) {
  auto& registry = EngineRegistry::instance();
  const auto keys = registry.keys();
  // All four built-ins present, in sorted order; "auto" is a selector,
  // never a listed entry.
  const std::vector<std::string> builtin = {
      "cg", "exact-dense", "exact-sparse", "sparsified-chebyshev"};
  std::size_t at = 0;
  for (const auto& want : builtin) {
    while (at < keys.size() && keys[at] != want) ++at;
    EXPECT_LT(at, keys.size()) << "missing or out of order: " << want;
  }
  for (const auto& key : builtin) EXPECT_TRUE(registry.registered(key)) << key;
  EXPECT_FALSE(registry.registered("auto"));
  for (std::size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i - 1], keys[i]);
}

TEST(EngineRegistry, UnknownKeyThrowsListingRegisteredKeys) {
  auto& registry = EngineRegistry::instance();
  try {
    registry.create("exact-dens", EngineOptions{});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("exact-dens"), std::string::npos) << msg;
    for (const auto& key : registry.keys())
      EXPECT_NE(msg.find(key), std::string::npos) << msg;
    EXPECT_NE(msg.find("auto"), std::string::npos) << msg;
  }
  // resolve() rejects unknown concrete keys with the same diagnostic.
  EXPECT_THROW(registry.resolve("chebishev", 64, 0.5, 1e-8),
               std::invalid_argument);
  // create() refuses the selector: the tuner needs the instance shape,
  // which only the caller has.
  EXPECT_THROW(registry.create("auto", EngineOptions{}), std::invalid_argument);
}

TEST(EngineRegistry, EveryKeySolvesTheReferenceLaplacian) {
  rng::Stream gstream(1);
  const auto g = graph::complete(32, 6, gstream);
  linalg::Vec b(32, 0.0);
  b[0] = 1.0;
  b[31] = -1.0;
  const auto ref = exact_laplacian_solve(test_context(), g, b);

  auto& registry = EngineRegistry::instance();
  for (const std::string key :
       {"cg", "exact-dense", "exact-sparse", "sparsified-chebyshev"}) {
    EngineOptions opt;
    opt.eps = 1e-8;
    opt.sparsify = testsupport::small_sparsify_options(0.5, 2, 4);
    auto engine = registry.create(key, opt);
    ASSERT_TRUE(engine) << key;
    EXPECT_EQ(engine->key(), key);
    const auto ctx = test_context(404);
    ASSERT_TRUE(engine->factor(ctx, g)) << key;
    const auto x = engine->solve(ctx, b);
    EXPECT_TRUE(testsupport::EnergyNormWithin(g, x, ref, 1e-6)) << key;
    // The batched surface honors the same accuracy contract per column.
    linalg::DenseMatrix panel(32, 2);
    for (std::size_t i = 0; i < 32; ++i) {
      panel(i, 0) = b[i];
      panel(i, 1) = -b[i];
    }
    const auto many = engine->solve_many(ctx, panel);
    linalg::Vec col0(32), col1(32);
    for (std::size_t i = 0; i < 32; ++i) {
      col0[i] = many(i, 0);
      col1[i] = -many(i, 1);
    }
    EXPECT_TRUE(testsupport::EnergyNormWithin(g, col0, ref, 1e-6)) << key;
    EXPECT_TRUE(testsupport::EnergyNormWithin(g, col1, ref, 1e-6)) << key;
    // report() stamps the concrete key into the unified stats shape.
    core::RunStats stats;
    engine->report(&stats);
    EXPECT_EQ(stats.engine, key);
  }
}

TEST(EngineRegistry, AutoSelectFollowsTheDocumentedThresholds) {
  using linalg::kSparseMaxDensity;
  using linalg::kSparseMinDim;
  // At the corner: dimension and density both at their bars -> sparse.
  EXPECT_EQ(EngineRegistry::auto_select(kSparseMinDim, kSparseMaxDensity, 1e-4),
            "exact-sparse");
  // One below the dimension bar: the PR 6 anchor-preserving rule.
  EXPECT_EQ(EngineRegistry::auto_select(kSparseMinDim - 1, 0.01, 1e-4),
            "sparsified-chebyshev");
  // Slightly too dense: the sparse factorization would just add overhead.
  EXPECT_EQ(
      EngineRegistry::auto_select(kSparseMinDim, kSparseMaxDensity * 1.01,
                                  1e-4),
      "sparsified-chebyshev");
  // Small but very accurate: direct dense factorization wins.
  EXPECT_EQ(EngineRegistry::auto_select(64, 0.9, kAutoExactEps),
            "exact-dense");
  EXPECT_EQ(EngineRegistry::auto_select(64, 0.9, kAutoExactEps * 0.1),
            "exact-dense");
  // Small and moderately accurate: the paper pipeline.
  EXPECT_EQ(EngineRegistry::auto_select(64, 0.9, 1e-8),
            "sparsified-chebyshev");
  // Large-and-sparse outranks the accuracy rule.
  EXPECT_EQ(EngineRegistry::auto_select(1024, 0.01, 1e-12), "exact-sparse");
  // "cg" is a baseline for ablations; the tuner never picks it.
  for (const std::size_t n : {16u, 256u, 384u, 2048u})
    for (const double d : {0.001, 0.25, 0.5, 1.0})
      for (const double eps : {1e-12, 1e-8, 1e-2})
        EXPECT_NE(EngineRegistry::auto_select(n, d, eps), "cg");
}

TEST(EngineRegistry, BcclapEngineOverridesTheTuner) {
  auto& registry = EngineRegistry::instance();
  // Shape where the tuner would say sparsified-chebyshev.
  const std::size_t n = 64;
  const double density = 0.9, eps = 1e-8;
  ASSERT_EQ(EngineRegistry::auto_select(n, density, eps),
            "sparsified-chebyshev");
  {
    ScopedEnv env("BCCLAP_ENGINE", "cg");
    EXPECT_EQ(registry.resolve("auto", n, density, eps), "cg");
    EXPECT_EQ(registry.resolve("", n, density, eps), "cg");
    // An explicit key in options wins over the environment.
    EXPECT_EQ(registry.resolve("exact-dense", n, density, eps), "exact-dense");
  }
  {
    // BCCLAP_ENGINE=auto is a valid no-op: the tuner decides.
    ScopedEnv env("BCCLAP_ENGINE", "auto");
    EXPECT_EQ(registry.resolve("auto", n, density, eps),
              "sparsified-chebyshev");
  }
  {
    // A misspelled value warns (once per distinct value) and falls back to
    // the tuner instead of silently picking some backend.
    ScopedEnv env("BCCLAP_ENGINE", "warp-drive");
    EXPECT_EQ(registry.resolve("auto", n, density, eps),
              "sparsified-chebyshev");
  }
  {
    ScopedEnv env("BCCLAP_ENGINE", nullptr);
    EXPECT_EQ(registry.resolve("auto", n, density, eps),
              "sparsified-chebyshev");
    EXPECT_EQ(registry.resolve("auto", linalg::kSparseMinDim, 0.01, 1e-4),
              "exact-sparse");
  }
}

TEST(EngineRegistry, FacadeStampsTheConcreteKeyIntoRunStats) {
  ScopedEnv env("BCCLAP_ENGINE", nullptr);  // isolate from ambient config
  RuntimeOptions ropts;
  ropts.threads = 1;
  ropts.seed = 99;
  Runtime rt(ropts);

  // Small dense instance: "auto" resolves to the paper pipeline.
  rng::Stream gstream(8);
  const auto g = graph::complete(24, 4, gstream);
  linalg::Vec b(24, 0.0);
  b[0] = 1.0;
  b[23] = -1.0;
  LaplacianSolveOptions lopt;
  lopt.sparsify = testsupport::small_sparsify_options();
  const auto small = rt.solve_laplacian(g, b, lopt);
  ASSERT_TRUE(small.usable);
  EXPECT_EQ(small.stats.engine, "sparsified-chebyshev");
  EXPECT_GT(small.sparsifier.num_edges(), 0u);

  // Large sparse instance: "auto" resolves to the exact sparse path and
  // builds no preconditioner.
  rng::Stream g2stream(77);
  const auto g2 = graph::random_regularish(400, 8, 4, g2stream);
  linalg::Vec b2(400, 0.0);
  b2[0] = 1.0;
  b2[399] = -1.0;
  const auto large = rt.solve_laplacian(g2, b2, lopt);
  ASSERT_TRUE(large.usable);
  EXPECT_EQ(large.stats.engine, "exact-sparse");
  EXPECT_EQ(large.sparsifier.num_edges(), 0u);
  EXPECT_GE(large.stats.sparse_factors, 1u);
  EXPECT_EQ(large.stats.dense_factors, 0u);

  // An explicit key pins the backend regardless of shape.
  LaplacianSolveOptions cgopt = lopt;
  cgopt.engine = "cg";
  const auto pinned = rt.solve_laplacian(g, b, cgopt);
  ASSERT_TRUE(pinned.usable);
  EXPECT_EQ(pinned.stats.engine, "cg");

  // The batched facade stamps the same way.
  linalg::DenseMatrix panel(24, 2);
  for (std::size_t i = 0; i < 24; ++i) {
    panel(i, 0) = b[i];
    panel(i, 1) = -b[i];
  }
  const auto many = rt.solve_laplacian_many(g, panel, lopt);
  ASSERT_TRUE(many.usable);
  EXPECT_EQ(many.stats.engine, "sparsified-chebyshev");

  // LP facade: small dense Gram systems at eps_hint 1e-12 resolve to
  // "exact-dense" — the historical make_exact_sdd_engine behavior.
  const auto p = testsupport::diamond_lp();
  lp::LpOptions lpopt;
  lpopt.epsilon = 1e-4;
  const auto res =
      lp::lp_solve(rt.context(), p, {0.5, 0.5, 0.5, 0.5}, lpopt);
  ASSERT_TRUE(res.converged);
  EXPECT_EQ(res.stats.engine, "exact-dense");
}

TEST(EngineRegistry, EveryEngineIsThreadCountInvariant) {
  ScopedEnv env("BCCLAP_ENGINE", nullptr);
  rng::Stream gstream(21);
  const auto g = graph::complete(26, 4, gstream);
  linalg::Vec b(26, 0.0);
  b[0] = 1.0;
  b[25] = -1.0;
  const auto run_with = [&](const std::string& key, std::size_t threads) {
    RuntimeOptions opts;
    opts.threads = threads;
    opts.seed = 123;
    Runtime rt(opts);
    LaplacianSolveOptions lopt;
    lopt.engine = key;
    lopt.sparsify = testsupport::small_sparsify_options();
    return rt.solve_laplacian(g, b, lopt);
  };
  for (const std::string key :
       {"cg", "exact-dense", "exact-sparse", "sparsified-chebyshev"}) {
    const auto one = run_with(key, 1);
    const auto four = run_with(key, 4);
    ASSERT_TRUE(one.usable) << key;
    ASSERT_TRUE(four.usable) << key;
    EXPECT_EQ(one.stats.engine, key);
    EXPECT_EQ(four.stats.engine, key);
    ASSERT_EQ(one.x.size(), four.x.size()) << key;
    for (std::size_t i = 0; i < one.x.size(); ++i)
      EXPECT_EQ(one.x[i], four.x[i]) << key << " index " << i;  // bitwise
    EXPECT_EQ(one.stats.rounds, four.stats.rounds) << key;
    EXPECT_EQ(one.stats.iterations, four.stats.iterations) << key;
  }
}

TEST(EngineRegistry, RegistrationIsLatestWins) {
  // The test-double seam: re-registering a key replaces its factories.
  // Registered last in this suite so the listing assertions above see
  // only the built-ins.
  // An artifact whose prepare phase "failed": usable() is false, so the
  // base engine's factor() reports unusable and never applies it.
  struct StubArtifact : PreparedLaplacian {
    std::string_view engine_key() const override { return "test-stub"; }
    bool usable() const override { return false; }
    std::size_t dim() const override { return 0; }
    linalg::Vec apply(const common::Context&, const linalg::Vec&,
                      const EngineOptions&, core::RunStats*) const override {
      return {};
    }
    linalg::DenseMatrix apply_many(const common::Context&,
                                   const linalg::DenseMatrix&,
                                   const EngineOptions&,
                                   core::RunStats*) const override {
      return linalg::DenseMatrix(0, 0);
    }
    std::size_t resident_bytes() const override { return 0; }
  };
  struct StubEngine : LaplacianEngine {
    using LaplacianEngine::LaplacianEngine;
    std::string_view key() const override { return "test-stub"; }
    std::shared_ptr<const PreparedLaplacian> prepare(
        const common::Context&, const graph::Graph&) const override {
      return std::make_shared<StubArtifact>();
    }
  };
  auto& registry = EngineRegistry::instance();
  int built = 0;
  registry.register_engine("test-stub", [&built](const EngineOptions& opt) {
    ++built;
    return std::make_unique<StubEngine>(opt);
  });
  EXPECT_TRUE(registry.registered("test-stub"));
  auto first = registry.create("test-stub", EngineOptions{});
  EXPECT_EQ(built, 1);
  EXPECT_EQ(first->key(), "test-stub");
  // Replacement: the newest factory serves subsequent creates.
  registry.register_engine("test-stub", [&built](const EngineOptions& opt) {
    built += 10;
    return std::make_unique<StubEngine>(opt);
  });
  auto second = registry.create("test-stub", EngineOptions{});
  EXPECT_EQ(built, 11);
  // No SDD factory was registered for the stub: create_sdd must refuse.
  EXPECT_THROW(registry.create_sdd("test-stub", test_context(),
                                   linalg::DenseMatrix(2, 2),
                                   SddEngineOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace bcclap::laplacian
