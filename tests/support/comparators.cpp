#include "support/comparators.h"

#include <cmath>

#include "laplacian/solver.h"
#include "linalg/vector_ops.h"
#include "support/fixtures.h"

namespace bcclap::testsupport {

::testing::AssertionResult VecNear(const linalg::Vec& a, const linalg::Vec& b,
                                   double tol) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = std::abs(a[i] - b[i]);
    if (!(diff <= tol))
      return ::testing::AssertionFailure()
             << "entry " << i << ": " << a[i] << " vs " << b[i] << " (|diff| "
             << diff << " > tol " << tol << ")";
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult EnergyNormWithin(const graph::Graph& g,
                                            const linalg::Vec& approx,
                                            const linalg::Vec& exact,
                                            double eps, double slack) {
  const auto ctx = test_context();
  const double err =
      laplacian::laplacian_norm(ctx, g, linalg::sub(exact, approx));
  const double ref = laplacian::laplacian_norm(ctx, g, exact);
  if (err <= eps * ref + slack) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "energy-norm error " << err << " exceeds eps * ||exact||_L = "
         << eps << " * " << ref << " + " << slack;
}

::testing::AssertionResult RoundsConsistent(std::int64_t reported_rounds,
                                            const bcc::Network& net) {
  const std::int64_t charged = net.accountant().total();
  if (reported_rounds <= 0)
    return ::testing::AssertionFailure()
           << "reported round count " << reported_rounds << " is not positive";
  if (reported_rounds != charged)
    return ::testing::AssertionFailure()
           << "reported " << reported_rounds << " rounds but the accountant "
           << "charged " << charged;
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult RoundsAtMost(const bcc::RoundAccountant& acct,
                                        std::int64_t bound) {
  if (acct.total() <= bound) return ::testing::AssertionSuccess();
  auto failure = ::testing::AssertionFailure()
                 << "total rounds " << acct.total() << " > bound " << bound
                 << "; breakdown:";
  for (const auto& [label, rounds] : acct.breakdown())
    failure << " [" << label << ": " << rounds << "]";
  return failure;
}

}  // namespace bcclap::testsupport
