// Tolerance comparators and BCC round-accounting assertion helpers.
//
// All helpers return ::testing::AssertionResult so failures print the
// offending index / magnitude instead of a bare boolean:
//   EXPECT_TRUE(testsupport::VecNear(expected, actual, 1e-9));
#pragma once

#include <cstdint>

#include <gtest/gtest.h>

#include "bcc/network.h"
#include "bcc/round_accountant.h"
#include "graph/graph.h"
#include "linalg/vector_ops.h"

namespace bcclap::testsupport {

// Elementwise |a[i] - b[i]| <= tol, failing with the first bad index.
::testing::AssertionResult VecNear(const linalg::Vec& a, const linalg::Vec& b,
                                   double tol);

// ||approx - exact||_{L_G} <= eps * ||exact||_{L_G} + slack — the energy-norm
// guarantee of Theorem 1.3 / Corollary 2.4.
::testing::AssertionResult EnergyNormWithin(const graph::Graph& g,
                                            const linalg::Vec& approx,
                                            const linalg::Vec& exact,
                                            double eps, double slack = 1e-12);

// A protocol result's reported round count is positive and equals what the
// network's accountant actually charged (no silent unaccounted traffic).
::testing::AssertionResult RoundsConsistent(std::int64_t reported_rounds,
                                            const bcc::Network& net);

// The accountant charged at most `bound` rounds in total; failures print
// the per-label breakdown so the offending phase is visible.
::testing::AssertionResult RoundsAtMost(const bcc::RoundAccountant& acct,
                                        std::int64_t bound);

}  // namespace bcclap::testsupport
