// Shared test fixtures: deterministic graphs, networks, RNG streams and
// right-hand sides used across the suites. Everything here is a thin,
// deterministic wrapper over the library's own generators so tests stay
// reproducible in the seed they name.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "bcc/network.h"
#include "common/context.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"
#include "lp/lp_solver.h"
#include "sparsify/spectral_sparsify.h"

namespace bcclap::testsupport {

// Execution context the suites hand to the layer APIs: the process-default
// Runtime's context (BCCLAP_THREADS-sized, so CI's 4-thread reruns
// exercise the multi-worker paths) with the given seed. Byte-identical to
// what the retired context-less wrappers resolved to.
common::Context test_context(std::uint64_t seed = 0);

// Broadcast CONGEST network over the topology of g with the model-default
// Theta(log n) bandwidth — the setting used by nearly every suite.
bcc::Network bc_net(const graph::Graph& g);

// Broadcast Congested Clique network over n nodes, default bandwidth.
bcc::Network bcc_net(std::size_t n);

// Overloads on an explicit context, for suites that construct their own
// Runtime (the 1-vs-N-thread determinism experiments) instead of riding
// the process default.
bcc::Network bc_net(const common::Context& ctx, const graph::Graph& g);
bcc::Network bcc_net(const common::Context& ctx, std::size_t n);

// Bench-scale sparsifier options (DESIGN.md section 6): small fixed bundle
// size t so suites finish in seconds while exercising the full pipeline.
sparsify::SparsifyOptions small_sparsify_options(double epsilon = 1.0,
                                                 std::size_t k = 2,
                                                 std::size_t t = 3);

// The graph's edge weights as a dense vector indexed by EdgeId — the form
// the spanner/bundle entry points take.
std::vector<double> edge_weights(const graph::Graph& g);

// A copy of g with every edge weight multiplied by `factor` (same vertex
// set and edge order). L_{scale_weights(g, c)} = c * L_g.
graph::Graph scale_weights(const graph::Graph& g, double factor);

// The standard 4-variable "diamond" LP: two unit-sum constraints,
// min x1 + 3 x2 + 2 x3 + x4 over [0,1]^4; optimum (1,0,0,1), objective 2.
// Shared between the LP suite and the pipeline integration test.
lp::LpProblem diamond_lp();

// n iid standard normal entries drawn from `stream`.
linalg::Vec gaussian_vector(std::size_t n, rng::Stream& stream);

// Gaussian vector with the mean removed — a valid Laplacian right-hand
// side (b must be orthogonal to the all-ones kernel).
linalg::Vec zero_sum_gaussian(std::size_t n, rng::Stream& stream);

// rows x cols matrix of iid standard normal entries (row-major draw order).
linalg::DenseMatrix gaussian_matrix(std::size_t rows, std::size_t cols,
                                    rng::Stream& stream);

// Random symmetric positive-definite matrix: B^T B + n I.
linalg::DenseMatrix random_spd(std::size_t n, rng::Stream& stream);

// Test fixture owning a root RNG stream. Suites derive labelled child
// streams so each random quantity has its own independent, reproducible
// source: graphs(), rhs(), marks() are the conventional labels.
class SeededTest : public ::testing::Test {
 protected:
  explicit SeededTest(std::uint64_t seed = kDefaultSeed) : root_(seed) {}

  rng::Stream& root() { return root_; }
  rng::Stream stream(std::string_view label) const {
    return root_.child(label);
  }
  rng::Stream graphs() const { return stream("graphs"); }
  rng::Stream rhs() const { return stream("rhs"); }
  rng::Stream marks() const { return stream("marks"); }

  static constexpr std::uint64_t kDefaultSeed = 0x9E3779B97F4A7C15ull;

 private:
  rng::Stream root_;
};

}  // namespace bcclap::testsupport
