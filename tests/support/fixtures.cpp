#include "support/fixtures.h"

#include "core/runtime.h"

namespace bcclap::testsupport {

common::Context test_context(std::uint64_t seed) {
  return Runtime::process_default().context().with_seed(seed);
}

bcc::Network bc_net(const graph::Graph& g) { return bc_net(test_context(), g); }

bcc::Network bcc_net(std::size_t n) { return bcc_net(test_context(), n); }

bcc::Network bc_net(const common::Context& ctx, const graph::Graph& g) {
  return bcc::Network(bcc::Model::kBroadcastCongest, g,
                      bcc::Network::default_bandwidth(g.num_vertices()), ctx);
}

bcc::Network bcc_net(const common::Context& ctx, std::size_t n) {
  return bcc::Network(bcc::Model::kBroadcastCongestedClique, n,
                      bcc::Network::default_bandwidth(n), ctx);
}

sparsify::SparsifyOptions small_sparsify_options(double epsilon, std::size_t k,
                                                 std::size_t t) {
  sparsify::SparsifyOptions opt;
  opt.epsilon = epsilon;
  opt.k = k;
  opt.t = t;
  return opt;
}

std::vector<double> edge_weights(const graph::Graph& g) {
  std::vector<double> w(g.num_edges());
  for (std::size_t e = 0; e < g.num_edges(); ++e) w[e] = g.edge(e).weight;
  return w;
}

graph::Graph scale_weights(const graph::Graph& g, double factor) {
  graph::Graph h(g.num_vertices());
  for (const auto& e : g.edges()) h.add_edge(e.u, e.v, factor * e.weight);
  return h;
}

lp::LpProblem diamond_lp() {
  lp::LpProblem p;
  p.a = linalg::CsrMatrix(
      4, 2, {{0, 0, 1.0}, {1, 0, 1.0}, {2, 1, 1.0}, {3, 1, 1.0}});
  p.b = {1.0, 1.0};
  p.c = {1.0, 3.0, 2.0, 1.0};
  p.lower = {0.0, 0.0, 0.0, 0.0};
  p.upper = {1.0, 1.0, 1.0, 1.0};
  return p;
}

linalg::Vec gaussian_vector(std::size_t n, rng::Stream& stream) {
  linalg::Vec b(n);
  for (auto& v : b) v = stream.next_gaussian();
  return b;
}

linalg::Vec zero_sum_gaussian(std::size_t n, rng::Stream& stream) {
  auto b = gaussian_vector(n, stream);
  linalg::remove_mean(b);
  return b;
}

linalg::DenseMatrix gaussian_matrix(std::size_t rows, std::size_t cols,
                                    rng::Stream& stream) {
  linalg::DenseMatrix a(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) a(i, j) = stream.next_gaussian();
  return a;
}

linalg::DenseMatrix random_spd(std::size_t n, rng::Stream& stream) {
  const auto b = gaussian_matrix(n, n, stream);
  auto a = b.transpose().multiply(test_context(), b);
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

}  // namespace bcclap::testsupport
