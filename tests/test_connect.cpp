#include "spanner/connect.h"

#include <gtest/gtest.h>

namespace bcclap::spanner {
namespace {

TEST(Connect, EmptyCandidatesReturnsBot) {
  const auto res = connect({}, [](graph::EdgeId) { return true; });
  EXPECT_FALSE(res.accepted.has_value());
  EXPECT_TRUE(res.rejected.empty());
}

TEST(Connect, AcceptsLightestWhenAllExist) {
  std::vector<Candidate> cands{{5, 0, 3.0}, {2, 1, 1.0}, {9, 2, 2.0}};
  const auto res = connect(cands, [](graph::EdgeId) { return true; });
  ASSERT_TRUE(res.accepted.has_value());
  EXPECT_EQ(res.accepted->u, 2u);  // weight 1.0 first
  EXPECT_TRUE(res.rejected.empty());
}

TEST(Connect, TieBrokenBySmallerId) {
  std::vector<Candidate> cands{{7, 0, 1.0}, {3, 1, 1.0}, {5, 2, 1.0}};
  const auto res = connect(cands, [](graph::EdgeId) { return true; });
  ASSERT_TRUE(res.accepted.has_value());
  EXPECT_EQ(res.accepted->u, 3u);
}

TEST(Connect, RejectedPrefixReportedInOrder) {
  std::vector<Candidate> cands{{1, 10, 1.0}, {2, 11, 2.0}, {3, 12, 3.0}};
  int calls = 0;
  const auto res = connect(cands, [&calls](graph::EdgeId) {
    return ++calls == 3;  // first two rejected, third accepted
  });
  ASSERT_TRUE(res.accepted.has_value());
  EXPECT_EQ(res.accepted->e, 12u);
  ASSERT_EQ(res.rejected.size(), 2u);
  EXPECT_EQ(res.rejected[0].e, 10u);
  EXPECT_EQ(res.rejected[1].e, 11u);
}

TEST(Connect, AllRejectedReturnsBotWithFullNMinus) {
  std::vector<Candidate> cands{{1, 0, 1.0}, {2, 1, 2.0}};
  const auto res = connect(cands, [](graph::EdgeId) { return false; });
  EXPECT_FALSE(res.accepted.has_value());
  EXPECT_EQ(res.rejected.size(), 2u);
}

TEST(Connect, StopsSamplingAfterAcceptance) {
  // Candidates after the accepted one must not be sampled (they stay
  // probabilistic — the key for the coupling argument).
  std::vector<Candidate> cands{{1, 0, 1.0}, {2, 1, 2.0}, {3, 2, 3.0}};
  std::vector<graph::EdgeId> sampled;
  const auto res = connect(cands, [&sampled](graph::EdgeId e) {
    sampled.push_back(e);
    return e == 1;  // reject edge 0, accept edge 1
  });
  ASSERT_TRUE(res.accepted.has_value());
  EXPECT_EQ(res.accepted->e, 1u);
  EXPECT_EQ(sampled, (std::vector<graph::EdgeId>{0, 1}));  // edge 2 untouched
}

TEST(Connect, CandidateOrderIsTotal) {
  EXPECT_TRUE(candidate_less({1, 0, 1.0}, {2, 0, 2.0}));
  EXPECT_TRUE(candidate_less({1, 0, 1.0}, {2, 0, 1.0}));
  EXPECT_FALSE(candidate_less({2, 0, 1.0}, {1, 0, 1.0}));
  EXPECT_FALSE(candidate_less({1, 0, 1.0}, {1, 0, 1.0}));
}

}  // namespace
}  // namespace bcclap::spanner
