#include "graph/graph.h"

#include <gtest/gtest.h>

#include <cmath>

namespace bcclap::graph {
namespace {

TEST(Graph, AddEdgeNormalizesOrder) {
  Graph g(3);
  const EdgeId e = g.add_edge(2, 1, 5.0);
  EXPECT_EQ(g.edge(e).u, 1u);
  EXPECT_EQ(g.edge(e).v, 2u);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 5.0);
}

TEST(Graph, FindEdgeAndOtherEndpoint) {
  Graph g(4);
  const EdgeId e = g.add_edge(0, 3, 1.0);
  EXPECT_TRUE(g.find_edge(0, 3).has_value());
  EXPECT_TRUE(g.find_edge(3, 0).has_value());
  EXPECT_FALSE(g.find_edge(1, 2).has_value());
  EXPECT_EQ(g.other_endpoint(e, 0), 3u);
  EXPECT_EQ(g.other_endpoint(e, 3), 0u);
}

TEST(Graph, DegreesAndWeights) {
  Graph g(3);
  g.add_edge(0, 1, 2.0);
  g.add_edge(0, 2, 3.0);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 5.0);
  EXPECT_DOUBLE_EQ(g.max_weight(), 3.0);
}

TEST(Graph, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(2, 3, 1.0);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, EmptyGraphIsConnected) {
  EXPECT_TRUE(Graph(0).is_connected());
  EXPECT_TRUE(Graph(1).is_connected());
}

TEST(Graph, ShortestPathsWeighted) {
  // Triangle with a shortcut: 0-1 (10), 0-2 (1), 2-1 (2).
  Graph g(3);
  g.add_edge(0, 1, 10.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(1, 2, 2.0);
  const auto d = g.shortest_paths(0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[1], 3.0);  // via 2
  EXPECT_DOUBLE_EQ(d[2], 1.0);
}

TEST(Graph, ShortestPathsDisconnected) {
  Graph g(3);
  g.add_edge(0, 1, 1.0);
  const auto d = g.shortest_paths(0);
  EXPECT_TRUE(std::isinf(d[2]));
}

TEST(Graph, SetWeight) {
  Graph g(2);
  const EdgeId e = g.add_edge(0, 1, 1.0);
  g.set_weight(e, 4.0);
  EXPECT_DOUBLE_EQ(g.edge(e).weight, 4.0);
}

}  // namespace
}  // namespace bcclap::graph
