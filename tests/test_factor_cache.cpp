// core::FactorCache (core/factor_cache.h) and the facade's cached solve
// path. Unit half: hit/miss/eviction counters, the resident-byte bound,
// LRU order and first-wins dedupe, on stub artifacts with chosen sizes.
// Integration half: repeat Runtime::solve_laplacian{,_many} on the same
// topology with caching on must skip the sparsify+factor prepare phase
// entirely (cache_hits >= 1, zero sparsify/factor tallies, zero
// preprocessing rounds) while staying bitwise-identical to the uncached
// path — at 1 and 4 worker threads, and under concurrent lookups from two
// Runtimes sharing one cache (this suite runs in CI's TSan rerun lane).
#include "core/factor_cache.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "core/runtime.h"
#include "graph/fingerprint.h"
#include "graph/generators.h"
#include "support/fixtures.h"

namespace bcclap {
namespace {

using core::FactorCache;
using core::FactorCacheKey;
using linalg::Vec;

// ---- unit half: stub artifacts with chosen resident sizes -------------

class StubArtifact final : public laplacian::PreparedLaplacian {
 public:
  explicit StubArtifact(std::size_t bytes) : bytes_(bytes) {}
  std::string_view engine_key() const override { return "stub"; }
  bool usable() const override { return true; }
  std::size_t dim() const override { return 0; }
  Vec apply(const common::Context&, const Vec&, const laplacian::EngineOptions&,
            core::RunStats*) const override {
    return {};
  }
  linalg::DenseMatrix apply_many(const common::Context&,
                                 const linalg::DenseMatrix&,
                                 const laplacian::EngineOptions&,
                                 core::RunStats*) const override {
    return {};
  }
  std::size_t resident_bytes() const override { return bytes_; }

 private:
  std::size_t bytes_;
};

FactorCacheKey key_for(std::uint64_t seed) {
  FactorCacheKey key;
  key.engine = "stub";
  key.seed = seed;
  return key;
}

std::shared_ptr<const laplacian::PreparedLaplacian> stub(std::size_t bytes) {
  return std::make_shared<StubArtifact>(bytes);
}

TEST(FactorCache, CountsMissesAndHits) {
  FactorCache cache(1024);
  EXPECT_EQ(cache.lookup(key_for(1)), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  auto artifact = stub(100);
  EXPECT_EQ(cache.insert(key_for(1), artifact), artifact);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.resident_bytes(), 100u);

  EXPECT_EQ(cache.lookup(key_for(1)), artifact);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // A different key is a miss, not a near-hit.
  EXPECT_EQ(cache.lookup(key_for(2)), nullptr);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(FactorCache, EvictsLeastRecentlyUsedToHoldTheByteBound) {
  FactorCache cache(100);
  cache.insert(key_for(1), stub(40));
  cache.insert(key_for(2), stub(40));
  // Touch key 1 so key 2 becomes the LRU entry.
  EXPECT_NE(cache.lookup(key_for(1)), nullptr);
  cache.insert(key_for(3), stub(40));

  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_LE(cache.resident_bytes(), cache.max_bytes());
  EXPECT_EQ(cache.lookup(key_for(2)), nullptr);  // the LRU victim
  EXPECT_NE(cache.lookup(key_for(1)), nullptr);
  EXPECT_NE(cache.lookup(key_for(3)), nullptr);
}

TEST(FactorCache, OversizedArtifactIsReturnedButNotCached) {
  FactorCache cache(64);
  auto big = stub(1000);
  EXPECT_EQ(cache.insert(key_for(1), big), big);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.resident_bytes(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);
}

TEST(FactorCache, FirstInsertWinsOnDuplicateKeys) {
  FactorCache cache(1024);
  auto first = stub(10);
  auto second = stub(10);
  EXPECT_EQ(cache.insert(key_for(1), first), first);
  // The racing inserter gets the canonical (existing) artifact back and
  // must apply that one, so every cached run sees the same bytes.
  EXPECT_EQ(cache.insert(key_for(1), second), first);
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_EQ(cache.resident_bytes(), 10u);
}

TEST(FactorCache, KeyDistinguishesEveryField) {
  const graph::Graph g = graph::path(8);
  const graph::Graph h = graph::path(9);
  FactorCacheKey base;
  base.engine = "sparsified-chebyshev";
  base.fingerprint = graph::fingerprint(g);
  base.seed = 7;
  base.min_work_per_chunk = 1024;
  base.options_hash = 99;

  FactorCacheKey other = base;
  EXPECT_EQ(base, other);
  other.engine = "cg";
  EXPECT_NE(base, other);
  other = base;
  other.fingerprint = graph::fingerprint(h);
  EXPECT_NE(base, other);
  other = base;
  other.seed = 8;
  EXPECT_NE(base, other);
  other = base;
  other.min_work_per_chunk = 2048;
  EXPECT_NE(base, other);
  other = base;
  other.options_hash = 100;
  EXPECT_NE(base, other);
}

TEST(FactorCache, OptionsHashCoversPrepareTimeFieldsOnly) {
  laplacian::EngineOptions a;
  laplacian::EngineOptions b;
  // Apply-time fields must not fragment the cache: one artifact serves
  // requests at any accuracy.
  b.eps = 1e-3;
  b.max_iterations = 17;
  EXPECT_EQ(core::prepare_options_hash(a), core::prepare_options_hash(b));
  // Prepare-time (sparsify) fields are the artifact's identity.
  b = a;
  b.sparsify.epsilon *= 2.0;
  EXPECT_NE(core::prepare_options_hash(a), core::prepare_options_hash(b));
  b = a;
  b.sparsify.k += 1;
  EXPECT_NE(core::prepare_options_hash(a), core::prepare_options_hash(b));
}

// ---- integration half: the facade's cached solve path -----------------

::testing::AssertionResult BitwiseEqual(const Vec& a, const Vec& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0)
    return ::testing::AssertionFailure() << "bytes differ";
  return ::testing::AssertionSuccess();
}

graph::Graph cache_test_graph(std::uint64_t seed = 11) {
  rng::Stream stream(seed);
  return graph::random_regularish(48, 4, 8, stream);
}

Vec gaussian_rhs(std::size_t n, std::uint64_t seed) {
  rng::Stream stream(seed);
  Vec b(n);
  for (auto& v : b) v = stream.next_gaussian();
  return b;
}

LaplacianSolveOptions cheby_options() {
  LaplacianSolveOptions opt;
  opt.engine = "sparsified-chebyshev";
  opt.sparsify = testsupport::small_sparsify_options();
  return opt;
}

RuntimeOptions cached_runtime_options(std::size_t threads) {
  RuntimeOptions o;
  o.threads = threads;
  o.seed = 19;
  o.factor_cache_bytes = 64u << 20;
  return o;
}

TEST(FactorCacheRuntime, RepeatSolveHitsAndSkipsAllPrepareWork) {
  const graph::Graph g = cache_test_graph();
  const Vec b = gaussian_rhs(g.num_vertices(), 3);
  Runtime rt(cached_runtime_options(1));

  const auto cold = rt.solve_laplacian(g, b, cheby_options());
  ASSERT_TRUE(cold.usable);
  EXPECT_EQ(cold.stats.cache_misses, 1u);
  EXPECT_EQ(cold.stats.cache_hits, 0u);
  EXPECT_EQ(cold.stats.sparsify_count, 1u);
  EXPECT_GT(cold.preprocessing_rounds, 0);

  const auto warm = rt.solve_laplacian(g, b, cheby_options());
  ASSERT_TRUE(warm.usable);
  EXPECT_EQ(warm.stats.cache_hits, 1u);
  EXPECT_EQ(warm.stats.cache_misses, 0u);
  // A cached run did none of the prepare work and must report none.
  EXPECT_EQ(warm.stats.sparsify_count, 0u);
  EXPECT_EQ(warm.stats.dense_factors, 0u);
  EXPECT_EQ(warm.stats.sparse_factors, 0u);
  EXPECT_EQ(warm.preprocessing_rounds, 0);
  EXPECT_TRUE(BitwiseEqual(warm.x, cold.x));
}

TEST(FactorCacheRuntime, CachedSolveMatchesUncachedBytesAtOneAndFourThreads) {
  const graph::Graph g = cache_test_graph();
  const Vec b = gaussian_rhs(g.num_vertices(), 5);

  RuntimeOptions plain;
  plain.threads = 1;
  plain.seed = 19;
  Runtime uncached(plain);
  const Vec reference = uncached.solve_laplacian(g, b, cheby_options()).x;

  for (const std::size_t threads : {1u, 4u}) {
    Runtime rt(cached_runtime_options(threads));
    const auto cold = rt.solve_laplacian(g, b, cheby_options());
    const auto warm = rt.solve_laplacian(g, b, cheby_options());
    ASSERT_TRUE(warm.usable);
    EXPECT_GE(warm.stats.cache_hits, 1u);
    EXPECT_TRUE(BitwiseEqual(cold.x, reference)) << threads << " threads";
    EXPECT_TRUE(BitwiseEqual(warm.x, reference)) << threads << " threads";
  }
}

TEST(FactorCacheRuntime, SolveManyRidesTheSameCache) {
  const graph::Graph g = cache_test_graph();
  const std::size_t n = g.num_vertices();
  linalg::DenseMatrix b(n, 3);
  for (std::size_t j = 0; j < b.cols(); ++j) {
    const Vec col = gaussian_rhs(n, 20 + j);
    for (std::size_t i = 0; i < n; ++i) b(i, j) = col[i];
  }
  Runtime rt(cached_runtime_options(1));
  const auto single = rt.solve_laplacian(g, b.column(0), cheby_options());
  ASSERT_TRUE(single.usable);
  EXPECT_EQ(single.stats.cache_misses, 1u);

  // The panel solve shares the artifact the single solve prepared.
  const auto panel = rt.solve_laplacian_many(g, b, cheby_options());
  ASSERT_TRUE(panel.usable);
  EXPECT_EQ(panel.stats.cache_hits, 1u);
  EXPECT_EQ(panel.stats.sparsify_count, 0u);
  EXPECT_EQ(panel.preprocessing_rounds, 0);
  EXPECT_TRUE(BitwiseEqual(panel.x.column(0), single.x));
}

TEST(FactorCacheRuntime, SharedCacheAcrossRuntimesAndConcurrentLookups) {
  // Two Runtimes with the same seed and chunking policy share one cache;
  // thread count is not part of the key, so the 4-thread Runtime reuses
  // what the 1-thread Runtime prepared. The concurrent section is the
  // TSan target: simultaneous lookup/insert traffic on one cache.
  const graph::Graph g1 = cache_test_graph(11);
  const graph::Graph g2 = cache_test_graph(12);
  auto shared = std::make_shared<FactorCache>(64u << 20);

  RuntimeOptions o1;
  o1.threads = 1;
  o1.seed = 19;
  o1.factor_cache = shared;
  RuntimeOptions o4 = o1;
  o4.threads = 4;
  Runtime rt1(o1), rt4(o4);

  const Vec b1 = gaussian_rhs(g1.num_vertices(), 7);
  const Vec b2 = gaussian_rhs(g2.num_vertices(), 8);
  const Vec warmed = rt1.solve_laplacian(g1, b1, cheby_options()).x;
  const auto reused = rt4.solve_laplacian(g1, b1, cheby_options());
  EXPECT_EQ(reused.stats.cache_hits, 1u);
  EXPECT_TRUE(BitwiseEqual(reused.x, warmed));

  Vec from1, from4;
  std::thread t1([&] {
    for (int i = 0; i < 4; ++i) from1 = rt1.solve_laplacian(g2, b2,
                                                            cheby_options()).x;
  });
  std::thread t4([&] {
    for (int i = 0; i < 4; ++i) from4 = rt4.solve_laplacian(g2, b2,
                                                            cheby_options()).x;
  });
  t1.join();
  t4.join();
  EXPECT_TRUE(BitwiseEqual(from1, from4));
  // Every solve either hit or missed; first-wins dedupe means at most one
  // miss for g1 and two for g2 (both loops can race cold) — at least 7 of
  // the 10 solves were served from the cache.
  EXPECT_EQ(shared->hits() + shared->misses(), 10u);
  EXPECT_GE(shared->hits(), 7u);
  EXPECT_EQ(shared->evictions(), 0u);
}

}  // namespace
}  // namespace bcclap
