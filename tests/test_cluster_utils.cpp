#include "spanner/cluster.h"

#include <gtest/gtest.h>

#include "graph/graph.h"

namespace bcclap::spanner {
namespace {

TEST(ClusterUtils, CountClusters) {
  EXPECT_EQ(count_clusters({0, 0, 1, kNoCluster, 1}), 2u);
  EXPECT_EQ(count_clusters({kNoCluster, kNoCluster}), 0u);
  EXPECT_EQ(count_clusters({}), 0u);
  EXPECT_EQ(count_clusters({3, 3, 3}), 1u);
}

TEST(ClusterUtils, OutDegrees) {
  const auto deg = out_degrees(4, {0, 0, 2, 3, 3, 3});
  EXPECT_EQ(deg, (std::vector<std::size_t>{2, 0, 1, 3}));
}

TEST(ClusterUtils, OutDegreesIgnoresOutOfRange) {
  const auto deg = out_degrees(2, {0, 5, 1});
  EXPECT_EQ(deg, (std::vector<std::size_t>{1, 1}));
}

TEST(GraphComponents, Labels) {
  graph::Graph g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(3, 4, 1.0);
  const auto labels = g.component_labels();
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_EQ(g.num_components(), 3u);
}

TEST(GraphComponents, ConnectedGraphHasOneComponent) {
  graph::Graph g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  EXPECT_EQ(g.num_components(), 1u);
}

}  // namespace
}  // namespace bcclap::spanner
