// Property sweep: the probabilistic spanner's guarantees (stretch,
// deduction consistency, F+/F- partition) across structurally different
// graph families — grids, cycles, expander-ish, barbell — not just G(n,p).
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "spanner/baswana_sen.h"
#include "spanner/probabilistic_spanner.h"
#include "support/fixtures.h"

namespace bcclap::spanner {
namespace {

enum class Family { kGrid, kCycle, kRegularish, kBarbell, kComplete };

struct Case {
  Family family;
  std::size_t n;
  std::size_t k;
  double pe;
  std::uint64_t seed;
};

graph::Graph make_graph(Family family, std::size_t n, rng::Stream& stream) {
  switch (family) {
    case Family::kGrid:
      return graph::grid(n / 4, 4, 5, stream);
    case Family::kCycle:
      return graph::cycle(n);
    case Family::kRegularish:
      return graph::random_regularish(n, 6, 4, stream);
    case Family::kBarbell:
      return graph::barbell(n);
    case Family::kComplete:
      return graph::complete(n, 3, stream);
  }
  return graph::path(n);
}

class SpannerFamilies : public ::testing::TestWithParam<Case> {};

TEST_P(SpannerFamilies, InvariantsHold) {
  const Case c = GetParam();
  rng::Stream gstream(c.seed);
  const auto g = make_graph(c.family, c.n, gstream);
  auto net = testsupport::bc_net(g);
  rng::Stream marks(c.seed ^ 0xa5a5);
  rng::Stream coins(c.seed ^ 0x5a5a);
  ProbabilisticSpannerOptions opt;
  opt.k = c.k;
  const ExistenceOracle oracle = [&](graph::EdgeId) {
    return coins.bernoulli(c.pe);
  };
  const auto res =
      spanner_with_probabilistic_edges(g, opt, oracle, marks, net);

  // Implicit communication must hold on every family.
  EXPECT_TRUE(res.deduction_consistent);
  // F+ and F- partition the decided edges.
  std::set<graph::EdgeId> fp(res.f_plus.begin(), res.f_plus.end());
  for (graph::EdgeId e : res.f_minus) EXPECT_EQ(fp.count(e), 0u);
  EXPECT_EQ(fp.size(), res.f_plus.size());

  // Stretch on the surviving graph (Lemma 3.1 with E'' = undecided).
  std::set<graph::EdgeId> fm(res.f_minus.begin(), res.f_minus.end());
  graph::Graph survivors(g.num_vertices());
  std::vector<graph::EdgeId> mapped;
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    if (fm.count(e)) continue;
    const auto& ed = g.edge(e);
    const auto id = survivors.add_edge(ed.u, ed.v, ed.weight);
    if (fp.count(e)) mapped.push_back(id);
  }
  EXPECT_TRUE(verify_stretch(survivors, mapped,
                             static_cast<double>(2 * c.k - 1)));
}

INSTANTIATE_TEST_SUITE_P(
    Families, SpannerFamilies,
    ::testing::Values(
        Case{Family::kGrid, 32, 2, 1.0, 1}, Case{Family::kGrid, 32, 3, 0.5, 2},
        Case{Family::kCycle, 24, 2, 0.5, 3},
        Case{Family::kCycle, 24, 4, 0.25, 4},
        Case{Family::kRegularish, 40, 2, 0.75, 5},
        Case{Family::kRegularish, 40, 3, 0.5, 6},
        Case{Family::kBarbell, 20, 2, 0.5, 7},
        Case{Family::kBarbell, 20, 3, 1.0, 8},
        Case{Family::kComplete, 20, 2, 0.25, 9},
        Case{Family::kComplete, 20, 5, 0.5, 10}));

TEST(SpannerFamilies, CycleWithProbabilityOneKeepsConnectivityWitness) {
  // A cycle has exactly one redundant edge per cycle; the spanner with
  // k = 2 (stretch 3) may drop long-detour edges only when the detour is
  // within stretch. For a triangle, any two edges suffice.
  const auto g = graph::cycle(3);
  auto net = testsupport::bc_net(g);
  rng::Stream marks(1);
  ProbabilisticSpannerOptions opt;
  opt.k = 2;
  const ExistenceOracle always = [](graph::EdgeId) { return true; };
  const auto res = spanner_with_probabilistic_edges(g, opt, always, marks, net);
  EXPECT_GE(res.f_plus.size(), 2u);
  EXPECT_TRUE(verify_stretch(g, res.f_plus, 3.0));
}

}  // namespace
}  // namespace bcclap::spanner
