#include "bcc/network.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "support/fixtures.h"

namespace bcclap::bcc {
namespace {

TEST(Message, FieldsAndBits) {
  Message m;
  m.push_flag(true).push_id(5, 16).push(100, 7);
  EXPECT_EQ(m.num_fields(), 3u);
  EXPECT_EQ(m.field(0), 1u);
  EXPECT_EQ(m.field(1), 5u);
  EXPECT_EQ(m.field(2), 100u);
  EXPECT_EQ(m.total_bits(), 1 + 4 + 7);
}

TEST(RoundAccountant, ChargesAndBreaksDown) {
  RoundAccountant acct;
  acct.charge("a", 3);
  acct.charge("b", 2);
  acct.charge("a", 1);
  EXPECT_EQ(acct.total(), 6);
  EXPECT_EQ(acct.total_for("a"), 4);
  EXPECT_EQ(acct.total_for("b"), 2);
  EXPECT_EQ(acct.total_for("missing"), 0);
  const auto mark = acct.mark();
  acct.charge_broadcast_bits("c", 33, 16);  // ceil(33/16) = 3
  EXPECT_EQ(acct.since(mark), 3);
  acct.reset();
  EXPECT_EQ(acct.total(), 0);
}

TEST(Network, BccDeliversToEveryone) {
  auto net = testsupport::bcc_net(4);
  std::vector<std::vector<Message>> out(4);
  out[1].push_back(Message().push_flag(true));
  const auto in = net.exchange(out, "step");
  EXPECT_TRUE(in[1].empty());  // no self-delivery
  for (std::size_t v : {0u, 2u, 3u}) {
    ASSERT_EQ(in[v].size(), 1u);
    EXPECT_EQ(in[v][0].sender, 1u);
  }
  EXPECT_EQ(net.accountant().total(), 1);
}

TEST(Network, BcDeliversAlongEdgesOnly) {
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  auto net = testsupport::bc_net(g);
  std::vector<std::vector<Message>> out(4);
  out[1].push_back(Message().push_flag(false));
  const auto in = net.exchange(out, "step");
  EXPECT_EQ(in[0].size(), 1u);
  EXPECT_EQ(in[2].size(), 1u);
  EXPECT_TRUE(in[3].empty());  // not a neighbour of 1
}

TEST(Network, RoundsAreMaxOverNodes) {
  Network net(Model::kBroadcastCongestedClique, std::size_t{3}, 8,
              testsupport::test_context());
  std::vector<std::vector<Message>> out(3);
  // Node 0 sends two 8-bit messages (2 rounds), node 1 one (1 round).
  out[0].push_back(Message().push(1, 8));
  out[0].push_back(Message().push(2, 8));
  out[1].push_back(Message().push(3, 8));
  net.exchange(out, "step");
  EXPECT_EQ(net.accountant().total(), 2);
}

TEST(Network, WideMessageCostsMultipleRounds) {
  Network net(Model::kBroadcastCongestedClique, std::size_t{2}, 8,
              testsupport::test_context());
  std::vector<std::vector<Message>> out(2);
  out[0].push_back(Message().push(0, 20));  // 20 bits over B=8: 3 rounds
  net.exchange(out, "w");
  EXPECT_EQ(net.accountant().total(), 3);
}

TEST(Network, EmptySuperstepIsFree) {
  Network net(Model::kBroadcastCongestedClique, std::size_t{3}, 8,
              testsupport::test_context());
  net.exchange(std::vector<std::vector<Message>>(3), "idle");
  EXPECT_EQ(net.accountant().total(), 0);
}

TEST(Network, DefaultBandwidthIsThetaLogN) {
  EXPECT_EQ(Network::default_bandwidth(1024), 2 * 10 + 2);
  EXPECT_GE(Network::default_bandwidth(2), 4);
}

// Regression: B = 2 ceil(log2 n) + 2 degenerates for n <= 2 (log2 n <= 1).
// Tiny networks must clamp to B >= 4 — a minimal [flag | id | id | w-bit]
// protocol message — and every n >= 0 must be accepted.
TEST(Network, DefaultBandwidthTinyNetworks) {
  EXPECT_EQ(Network::default_bandwidth(0), 4);
  EXPECT_EQ(Network::default_bandwidth(1), 4);
  EXPECT_EQ(Network::default_bandwidth(2), 4);
  EXPECT_EQ(Network::default_bandwidth(3), 6);
  EXPECT_EQ(Network::default_bandwidth(4), 6);
  // Monotone nondecreasing and always >= 4.
  std::int64_t prev = 0;
  for (std::size_t n = 0; n <= 300; ++n) {
    const std::int64_t b = Network::default_bandwidth(n);
    EXPECT_GE(b, 4) << n;
    EXPECT_GE(b, prev) << n;
    prev = b;
  }
}

TEST(Network, SingleNodeBccExchange) {
  Network net(Model::kBroadcastCongestedClique, std::size_t{1},
              Network::default_bandwidth(1), testsupport::test_context());
  std::vector<std::vector<Message>> out(1);
  out[0].push_back(Message().push_flag(true));
  const auto in = net.exchange(out, "solo");
  // No other node exists; the broadcast still costs its round.
  ASSERT_EQ(in.size(), 1u);
  EXPECT_TRUE(in[0].empty());
  EXPECT_EQ(net.accountant().total(), 1);
}

TEST(Network, TwoNodeExchangeFitsMinimalMessageInOneRound) {
  // flag + id(1) + id(1) + 1-bit weight = 4 bits fits B = 4 exactly.
  Network net(Model::kBroadcastCongestedClique, std::size_t{2},
              Network::default_bandwidth(2), testsupport::test_context());
  std::vector<std::vector<Message>> out(2);
  out[0].push_back(
      Message().push_flag(true).push_id(1, 2).push_id(0, 2).push(1, 1));
  const auto in = net.exchange(out, "pair");
  ASSERT_EQ(in[1].size(), 1u);
  EXPECT_EQ(in[1][0].sender, 0u);
  EXPECT_EQ(in[1][0].message.total_bits(), 4);
  EXPECT_EQ(net.accountant().total(), 1);
}

TEST(Network, TwoNodeBcExchange) {
  graph::Graph g(2);
  g.add_edge(0, 1, 1.0);
  auto net = testsupport::bc_net(g);
  std::vector<std::vector<Message>> out(2);
  out[0].push_back(Message().push_id(0, 2));
  out[1].push_back(Message().push_id(1, 2));
  const auto in = net.exchange(out, "pair");
  ASSERT_EQ(in[0].size(), 1u);
  EXPECT_EQ(in[0][0].sender, 1u);
  ASSERT_EQ(in[1].size(), 1u);
  EXPECT_EQ(in[1][0].sender, 0u);
}

TEST(Network, MessagesOrderedBySender) {
  Network net(Model::kBroadcastCongestedClique, std::size_t{4}, 32,
              testsupport::test_context());
  std::vector<std::vector<Message>> out(4);
  out[3].push_back(Message().push(3, 4));
  out[0].push_back(Message().push(0, 4));
  out[2].push_back(Message().push(2, 4));
  const auto in = net.exchange(out, "step");
  ASSERT_EQ(in[1].size(), 3u);
  EXPECT_EQ(in[1][0].sender, 0u);
  EXPECT_EQ(in[1][1].sender, 2u);
  EXPECT_EQ(in[1][2].sender, 3u);
}

}  // namespace
}  // namespace bcclap::bcc
