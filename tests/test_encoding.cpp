#include "common/encoding.h"

#include <gtest/gtest.h>

namespace bcclap::enc {
namespace {

TEST(Encoding, BitWidthU64) {
  EXPECT_EQ(bit_width_u64(0), 1);
  EXPECT_EQ(bit_width_u64(1), 1);
  EXPECT_EQ(bit_width_u64(2), 2);
  EXPECT_EQ(bit_width_u64(3), 2);
  EXPECT_EQ(bit_width_u64(255), 8);
  EXPECT_EQ(bit_width_u64(256), 9);
}

TEST(Encoding, BitWidthI64) {
  EXPECT_EQ(bit_width_i64(0), 2);   // sign + 1
  EXPECT_EQ(bit_width_i64(-1), 2);
  EXPECT_EQ(bit_width_i64(7), 4);
  EXPECT_EQ(bit_width_i64(-8), 5);
}

TEST(Encoding, IdBits) {
  EXPECT_EQ(id_bits(1), 1);
  EXPECT_EQ(id_bits(2), 1);
  EXPECT_EQ(id_bits(3), 2);
  EXPECT_EQ(id_bits(1024), 10);
  EXPECT_EQ(id_bits(1025), 11);
}

TEST(Encoding, RealBitsGrowsWithPrecision) {
  EXPECT_LT(real_bits(100.0, 1e-3), real_bits(100.0, 1e-9));
  EXPECT_LT(real_bits(10.0, 1e-6), real_bits(1e6, 1e-6));
}

TEST(Encoding, RoundsForBits) {
  EXPECT_EQ(rounds_for_bits(0, 16), 0);
  EXPECT_EQ(rounds_for_bits(1, 16), 1);
  EXPECT_EQ(rounds_for_bits(16, 16), 1);
  EXPECT_EQ(rounds_for_bits(17, 16), 2);
  EXPECT_EQ(rounds_for_bits(10, 0), 10);  // degenerate bandwidth clamps to 1
}

}  // namespace
}  // namespace bcclap::enc
