#include "common/encoding.h"

#include <cstdint>
#include <limits>

#include <gtest/gtest.h>

namespace bcclap::enc {
namespace {

TEST(Encoding, BitWidthU64) {
  EXPECT_EQ(bit_width_u64(0), 1);
  EXPECT_EQ(bit_width_u64(1), 1);
  EXPECT_EQ(bit_width_u64(2), 2);
  EXPECT_EQ(bit_width_u64(3), 2);
  EXPECT_EQ(bit_width_u64(255), 8);
  EXPECT_EQ(bit_width_u64(256), 9);
}

TEST(Encoding, BitWidthI64) {
  EXPECT_EQ(bit_width_i64(0), 2);   // sign + 1
  EXPECT_EQ(bit_width_i64(-1), 2);
  EXPECT_EQ(bit_width_i64(7), 4);
  EXPECT_EQ(bit_width_i64(-8), 5);
}

TEST(Encoding, IdBits) {
  EXPECT_EQ(id_bits(1), 1);
  EXPECT_EQ(id_bits(2), 1);
  EXPECT_EQ(id_bits(3), 2);
  EXPECT_EQ(id_bits(1024), 10);
  EXPECT_EQ(id_bits(1025), 11);
}

TEST(Encoding, RealBitsGrowsWithPrecision) {
  EXPECT_LT(real_bits(100.0, 1e-3), real_bits(100.0, 1e-9));
  EXPECT_LT(real_bits(10.0, 1e-6), real_bits(1e6, 1e-6));
}

TEST(Encoding, RoundsForBits) {
  EXPECT_EQ(rounds_for_bits(0, 16), 0);
  EXPECT_EQ(rounds_for_bits(1, 16), 1);
  EXPECT_EQ(rounds_for_bits(16, 16), 1);
  EXPECT_EQ(rounds_for_bits(17, 16), 2);
  EXPECT_EQ(rounds_for_bits(10, 0), 10);  // degenerate bandwidth clamps to 1
}

TEST(Encoding, MaxWidthEncodings) {
  EXPECT_EQ(bit_width_u64(std::numeric_limits<std::uint64_t>::max()), 64);
  EXPECT_EQ(bit_width_u64(std::uint64_t{1} << 63), 64);
  EXPECT_EQ(bit_width_u64((std::uint64_t{1} << 63) - 1), 63);
  // Signed widths: sign bit + magnitude; INT64_MIN's magnitude is 2^63.
  EXPECT_EQ(bit_width_i64(std::numeric_limits<std::int64_t>::max()), 64);
  EXPECT_EQ(bit_width_i64(std::numeric_limits<std::int64_t>::min()), 65);
}

TEST(Encoding, IdBitsAtExtremes) {
  EXPECT_EQ(id_bits(0), 1);  // degenerate: no ids, still 1 bit
  const auto big = std::size_t{1} << 40;
  EXPECT_EQ(id_bits(big), 40);
  EXPECT_EQ(id_bits(big + 1), 41);
}

TEST(Encoding, RealBitsClampsDegeneratePrecision) {
  // eps outside (0, 1] is clamped, so widths stay finite and positive.
  EXPECT_GT(real_bits(1.0, 0.0), 0);
  EXPECT_LE(real_bits(1.0, 0.0), real_bits(1.0, 1e-30) + 1);
  EXPECT_EQ(real_bits(1.0, 2.0), real_bits(1.0, 1.0));
  // |max_abs| below 1 behaves as 1 (a value range never costs < 1 int bit).
  EXPECT_EQ(real_bits(0.25, 1e-3), real_bits(1.0, 1e-3));
}

TEST(Encoding, EmptyPayloadCostsNoRounds) {
  // Zero-bit payloads are free at every bandwidth, including degenerate
  // ones — the invariant behind zero-message supersteps costing 0 rounds.
  for (std::int64_t bw : {-1, 0, 1, 16, 1024}) {
    EXPECT_EQ(rounds_for_bits(0, bw), 0) << "bandwidth " << bw;
    EXPECT_EQ(rounds_for_bits(-5, bw), 0) << "bandwidth " << bw;
  }
}

}  // namespace
}  // namespace bcclap::enc
