#include "sparsify/verifier.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "support/fixtures.h"

namespace bcclap::sparsify {
namespace {

TEST(Verifier, IdenticalGraphIsPerfectSparsifier) {
  rng::Stream s(1);
  const auto g = graph::random_connected_gnp(20, 0.3, 5, s);
  const auto check = check_sparsifier(g, g);
  ASSERT_TRUE(check.valid);
  EXPECT_NEAR(check.lambda_min, 1.0, 1e-6);
  EXPECT_NEAR(check.lambda_max, 1.0, 1e-6);
  EXPECT_LT(check.achieved_epsilon(), 1e-6);
  EXPECT_TRUE(check.within(0.01));
}

TEST(Verifier, UniformlyScaledWeightsShiftEigenvalues) {
  rng::Stream s(2);
  const auto g = graph::random_connected_gnp(15, 0.4, 3, s);
  const auto h = testsupport::scale_weights(g, 2.0);
  // L_G = 0.5 L_H: all pencil eigenvalues are exactly 0.5.
  const auto check = check_sparsifier(g, h);
  ASSERT_TRUE(check.valid);
  EXPECT_NEAR(check.lambda_min, 0.5, 1e-6);
  EXPECT_NEAR(check.lambda_max, 0.5, 1e-6);
  EXPECT_NEAR(check.achieved_epsilon(), 0.5, 1e-6);
  EXPECT_FALSE(check.within(0.4));
  EXPECT_TRUE(check.within(0.51));
}

TEST(Verifier, DisconnectedSparsifierIsInvalid) {
  const auto g = graph::path(6);
  graph::Graph h(6);
  h.add_edge(0, 1, 1.0);
  h.add_edge(2, 3, 1.0);  // missing bridge 1-2
  h.add_edge(3, 4, 1.0);
  h.add_edge(4, 5, 1.0);
  const auto check = check_sparsifier(g, h);
  EXPECT_FALSE(check.valid);
  EXPECT_TRUE(std::isinf(check.achieved_epsilon()));
}

TEST(Verifier, SubgraphSparsifierDetectsSpread) {
  // Complete graph vs its star subgraph: known-poor sparsifier with a
  // spread pencil spectrum; eigenvalue range must contain 1-ish values.
  rng::Stream s(3);
  const auto g = graph::complete(10, 1, s);
  graph::Graph h(10);
  for (std::size_t v = 1; v < 10; ++v) h.add_edge(0, v, 1.0);
  const auto check = check_sparsifier(g, h);
  ASSERT_TRUE(check.valid);
  EXPECT_GT(check.lambda_max, check.lambda_min + 0.5);
}

TEST(Verifier, SampledLowerBoundNeverExceedsExact) {
  rng::Stream s(4);
  const auto g = graph::random_connected_gnp(18, 0.3, 4, s);
  graph::Graph h(g.num_vertices());
  // Random reweighting.
  auto child = s.child("w");
  for (const auto& e : g.edges()) {
    h.add_edge(e.u, e.v, e.weight * (0.5 + child.next_double()));
  }
  const auto exact = check_sparsifier(g, h);
  ASSERT_TRUE(exact.valid);
  const double sampled = sampled_epsilon_lower_bound(g, h, 200, 5);
  EXPECT_LE(sampled, exact.achieved_epsilon() + 1e-9);
  EXPECT_GT(sampled, 0.0);
}

TEST(Verifier, SampledBoundExactForUniformScaling) {
  // L_G = 0.5 L_H pointwise: every quadratic-form ratio is exactly 0.5,
  // so the sampled bound equals the true epsilon deterministically.
  rng::Stream s(8);
  const auto g = graph::random_connected_gnp(12, 0.4, 2, s);
  const auto h = testsupport::scale_weights(g, 2.0);
  EXPECT_NEAR(sampled_epsilon_lower_bound(g, h, 30, 6), 0.5, 1e-9);
}

}  // namespace
}  // namespace bcclap::sparsify
