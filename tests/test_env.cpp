// common::env (common/env.h): the one environment-variable parsing seam.
// Covers live reads, strict positive-integer parsing, keyword validation,
// and the warn-once-per-(variable, value) latch that keeps a bench loop
// from emitting thousands of identical lines.
#include "common/env.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace bcclap::common::env {
namespace {

// Sets a variable for one test and restores the prior state on exit, so
// suites never leak configuration into each other.
class ScopedEnvVar {
 public:
  ScopedEnvVar(const char* name, const char* value) : name_(name) {
    const char* prev = std::getenv(name);
    if (prev != nullptr) previous_ = prev;
    if (value != nullptr) {
      ::setenv(name, value, /*overwrite=*/1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnvVar() {
    if (previous_) {
      ::setenv(name_.c_str(), previous_->c_str(), /*overwrite=*/1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> previous_;
};

constexpr const char* kVar = "BCCLAP_TEST_ENV_VAR";

TEST(Env, RawReadsLiveValue) {
  {
    ScopedEnvVar unset(kVar, nullptr);
    EXPECT_FALSE(raw(kVar).has_value());
  }
  ScopedEnvVar set(kVar, "hello");
  ASSERT_TRUE(raw(kVar).has_value());
  EXPECT_EQ(*raw(kVar), "hello");
  // Live read: a change is visible on the next call, no caching.
  ::setenv(kVar, "world", 1);
  EXPECT_EQ(*raw(kVar), "world");
}

TEST(Env, PositiveCountAcceptsStrictlyPositiveIntegers) {
  ScopedEnvVar set(kVar, "4");
  ASSERT_TRUE(positive_count(kVar).has_value());
  EXPECT_EQ(*positive_count(kVar), 4u);
}

TEST(Env, PositiveCountRejectsEverythingElse) {
  reset_warnings_for_tests();
  for (const char* bad : {"0", "-3", "7x", "four", "", " 2", "2 "}) {
    ScopedEnvVar set(kVar, bad);
    EXPECT_FALSE(positive_count(kVar).has_value()) << "value \"" << bad
                                                   << "\"";
  }
  ScopedEnvVar unset(kVar, nullptr);
  EXPECT_FALSE(positive_count(kVar).has_value());
}

TEST(Env, KeywordAcceptsListedValuesOnly) {
  reset_warnings_for_tests();
  const std::vector<std::string> accepted = {"auto", "exact-dense"};
  {
    ScopedEnvVar set(kVar, "exact-dense");
    ASSERT_TRUE(keyword(kVar, accepted, "falling back to auto").has_value());
    EXPECT_EQ(*keyword(kVar, accepted, "falling back to auto"),
              "exact-dense");
  }
  {
    ScopedEnvVar set(kVar, "exact-dnese");
    EXPECT_FALSE(keyword(kVar, accepted, "falling back to auto").has_value());
  }
  ScopedEnvVar unset(kVar, nullptr);
  EXPECT_FALSE(keyword(kVar, accepted, "falling back to auto").has_value());
}

TEST(Env, WarnsOncePerDistinctValue) {
  reset_warnings_for_tests();
  ScopedEnvVar set(kVar, "bogus");

  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(positive_count(kVar).has_value());
  const std::string first = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(first.find("bogus"), std::string::npos);

  // Same (variable, value) pair again: the latch holds, nothing emitted.
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(positive_count(kVar).has_value());
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");

  // A different value on the same variable is a fresh sighting.
  ::setenv(kVar, "alsobad", 1);
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(positive_count(kVar).has_value());
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("alsobad"),
            std::string::npos);
}

TEST(Env, ResetRearmsTheLatch) {
  reset_warnings_for_tests();
  ScopedEnvVar set(kVar, "stillbad");
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(positive_count(kVar).has_value());
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("stillbad"),
            std::string::npos);

  reset_warnings_for_tests();
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(positive_count(kVar).has_value());
  EXPECT_NE(::testing::internal::GetCapturedStderr().find("stillbad"),
            std::string::npos);
}

TEST(Env, KeywordWarningListsAcceptedValuesAndFallback) {
  reset_warnings_for_tests();
  ScopedEnvVar set(kVar, "nope");
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(keyword(kVar, {"auto", "cg"}, "falling back to auto")
                   .has_value());
  const std::string msg = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(msg.find("auto, cg"), std::string::npos);
  EXPECT_NE(msg.find("falling back to auto"), std::string::npos);
}

}  // namespace
}  // namespace bcclap::common::env
