#include "sparsify/spectral_sparsify.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sparsify/verifier.h"
#include "spanner/cluster.h"
#include "support/comparators.h"
#include "support/fixtures.h"

namespace bcclap::sparsify {
namespace {

using testsupport::bc_net;

// Bench-scale options (DESIGN.md section 6).
SparsifyOptions test_options() { return testsupport::small_sparsify_options(); }

TEST(Sparsifier, OutputIsSubsetReweighted) {
  rng::Stream gstream(1);
  const auto g = graph::complete(30, 4, gstream);
  auto net = bc_net(g);
  const auto res =
      spectral_sparsify(net.context().with_seed(99), g, test_options(), net);
  EXPECT_TRUE(res.deduction_consistent);
  EXPECT_LE(res.sparsifier.num_edges(), g.num_edges());
  ASSERT_EQ(res.original_edge.size(), res.sparsifier.num_edges());
  for (std::size_t i = 0; i < res.original_edge.size(); ++i) {
    const auto& se = res.sparsifier.edge(i);
    const auto& oe = g.edge(res.original_edge[i]);
    EXPECT_EQ(se.u, oe.u);
    EXPECT_EQ(se.v, oe.v);
    // Weight is the original scaled by a power of 4 (the resampling
    // reweighting of Algorithms 4/5).
    double ratio = se.weight / oe.weight;
    while (ratio > 1.5) ratio /= 4.0;
    EXPECT_NEAR(ratio, 1.0, 1e-9);
  }
}

TEST(Sparsifier, DeterministicInSeed) {
  rng::Stream gstream(2);
  const auto g = graph::complete(24, 3, gstream);
  auto net1 = bc_net(g);
  auto net2 = bc_net(g);
  const auto r1 =
      spectral_sparsify(net1.context().with_seed(7), g, test_options(), net1);
  const auto r2 =
      spectral_sparsify(net2.context().with_seed(7), g, test_options(), net2);
  EXPECT_EQ(r1.original_edge, r2.original_edge);
  EXPECT_EQ(r1.rounds, r2.rounds);
}

TEST(Sparsifier, DifferentSeedsGiveDifferentSamples) {
  rng::Stream gstream(3);
  const auto g = graph::complete(24, 3, gstream);
  auto net1 = bc_net(g);
  auto net2 = bc_net(g);
  const auto r1 =
      spectral_sparsify(net1.context().with_seed(7), g, test_options(), net1);
  const auto r2 =
      spectral_sparsify(net2.context().with_seed(8), g, test_options(), net2);
  EXPECT_NE(r1.original_edge, r2.original_edge);
}

TEST(Sparsifier, SparsifiesDenseGraphs) {
  // With a single-spanner bundle, the last bundle holds O(k n^{1+1/k})
  // edges and the leftovers decay by 1/4 per iteration, so K64 (2016
  // edges) must compress substantially.
  rng::Stream gstream(4);
  const auto g = graph::complete(64, 2, gstream);
  SparsifyOptions opt = test_options();
  opt.t = 1;
  auto net = bc_net(g);
  const auto res = spectral_sparsify(net.context().with_seed(21), g, opt, net);
  EXPECT_LT(res.sparsifier.num_edges(), (3 * g.num_edges()) / 4);
}

TEST(Sparsifier, SpectralQualityOnDenseGraph) {
  rng::Stream gstream(5);
  const auto g = graph::complete(36, 1, gstream);
  SparsifyOptions opt = test_options();
  opt.t = 6;  // more bundles -> better quality
  auto net = bc_net(g);
  const auto res = spectral_sparsify(net.context().with_seed(31), g, opt, net);
  const auto check = check_sparsifier(g, res.sparsifier);
  ASSERT_TRUE(check.valid);
  // With bench-scale t the constant-factor guarantee is loose; assert a
  // sane bound and positivity (connectivity).
  EXPECT_GT(check.lambda_min, 0.05);
  EXPECT_LT(check.achieved_epsilon(), 4.0);
}

TEST(Sparsifier, OrientationMatchesEdges) {
  rng::Stream gstream(6);
  const auto g = graph::complete(20, 2, gstream);
  auto net = bc_net(g);
  const auto res =
      spectral_sparsify(net.context().with_seed(41), g, test_options(), net);
  ASSERT_EQ(res.out_vertex.size(), res.sparsifier.num_edges());
  for (std::size_t i = 0; i < res.out_vertex.size(); ++i) {
    const auto& ed = res.sparsifier.edge(i);
    EXPECT_TRUE(res.out_vertex[i] == ed.u || res.out_vertex[i] == ed.v);
  }
}

TEST(Sparsifier, ResolveOptionsPaperDefaults) {
  rng::Stream gstream(7);
  const auto g = graph::complete(16, 1, gstream);
  SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.t_constant = 400.0;  // paper constant
  const auto resolved = resolve_options(g, opt);
  EXPECT_EQ(resolved.k, 4u);  // ceil(log2 16)
  // t = 400 log^2(n) / eps^2 = 400 * 16 / 0.25 = 25600.
  EXPECT_EQ(resolved.t, 25600u);
  EXPECT_EQ(resolved.iterations, 7u);  // ceil(log2 120)
}

TEST(Sparsifier, ChargesRounds) {
  rng::Stream gstream(8);
  const auto g = graph::complete(20, 3, gstream);
  auto net = bc_net(g);
  const auto res =
      spectral_sparsify(net.context().with_seed(51), g, test_options(), net);
  EXPECT_TRUE(testsupport::RoundsConsistent(res.rounds, net));
}

}  // namespace
}  // namespace bcclap::sparsify
