#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/laplacian.h"
#include "linalg/vector_ops.h"
#include "support/fixtures.h"

namespace bcclap::linalg {
namespace {

using testsupport::test_context;

TEST(Ldlt, SolvesKnownSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 4;
  a(0, 1) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  const auto f = LdltFactor::factor(test_context(), a);
  ASSERT_TRUE(f);
  const Vec x = f->solve(Vec{1, 2});
  // Check A x = b.
  EXPECT_NEAR(4 * x[0] + x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[0] + 3 * x[1], 2.0, 1e-12);
}

TEST(Ldlt, RandomSpdResidual) {
  rng::Stream stream(7);
  for (std::size_t n : {3u, 10u, 40u}) {
    const auto a = testsupport::random_spd(n, stream);
    const auto f = LdltFactor::factor(test_context(), a);
    ASSERT_TRUE(f);
    const auto b = testsupport::gaussian_vector(n, stream);
    const Vec x = f->solve(b);
    const Vec r = sub(a.multiply(test_context(), x), b);
    EXPECT_LT(norm2(r), 1e-8 * norm2(b));
  }
}

TEST(Ldlt, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;  // eigenvalues 3, -1
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 1;
  EXPECT_FALSE(LdltFactor::factor(test_context(), a));
}

TEST(LaplacianFactor, SolvesOnPathGraph) {
  const auto g = graph::path(5);
  const auto lap = graph::laplacian(g);
  const auto f = LaplacianFactor::factor(test_context(), lap);
  ASSERT_TRUE(f);
  Vec b{1, 0, 0, 0, -1};
  const Vec x = f->solve(b);
  const Vec lx = lap.multiply(test_context(), x);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(lx[i], b[i], 1e-9);
  EXPECT_NEAR(mean(x), 0.0, 1e-12);
}

TEST(LaplacianFactor, ProjectsRhs) {
  const auto g = graph::cycle(6);
  const auto lap = graph::laplacian(g);
  const auto f = LaplacianFactor::factor(test_context(), lap);
  ASSERT_TRUE(f);
  // b with nonzero mean: solver projects; solution satisfies L x = proj(b).
  Vec b{2, 0, 0, 0, 0, 0};
  const Vec x = f->solve(b);
  Vec proj = b;
  remove_mean(proj);
  const Vec lx = lap.multiply(test_context(), x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(lx[i], proj[i], 1e-9);
}

TEST(LaplacianFactor, RandomConnectedGraphs) {
  rng::Stream stream(11);
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    auto child = stream.child(trial);
    const auto g = graph::random_connected_gnp(20, 0.2, 10, child);
    const auto lap = graph::laplacian(g);
    const auto f = LaplacianFactor::factor(test_context(), lap);
    ASSERT_TRUE(f);
    const auto b = testsupport::zero_sum_gaussian(20, child);
    const Vec x = f->solve(b);
    const Vec r = sub(lap.multiply(test_context(), x), b);
    EXPECT_LT(norm2(r), 1e-8);
  }
}

TEST(LaplacianFactor, OneAndTwoVertexGraphs) {
  // n = 1: L = 0 is a valid (trivial) system — every rhs projects to zero
  // and the solution is zero. Used to be rejected, turning 1-node graphs
  // into a Release-mode null deref in ExactLaplacianSolver.
  const auto f1 =
      LaplacianFactor::factor(test_context(), graph::laplacian(graph::Graph(1)));
  ASSERT_TRUE(f1);
  EXPECT_EQ(f1->dim(), 1u);
  EXPECT_EQ(f1->path(), FactorKind::kNone);
  const Vec x1 = f1->solve(Vec{7.0});
  ASSERT_EQ(x1.size(), 1u);
  EXPECT_EQ(x1[0], 0.0);
  const DenseMatrix p1 = f1->solve_many(test_context(), DenseMatrix(1, 3));
  EXPECT_EQ(p1.rows(), 1u);
  EXPECT_EQ(p1.cols(), 3u);

  // n = 2: the smallest graph with an actual grounded system.
  graph::Graph two(2);
  two.add_edge(0, 1, 2.0);
  const auto f2 =
      LaplacianFactor::factor(test_context(), graph::laplacian(two));
  ASSERT_TRUE(f2);
  const Vec x2 = f2->solve(Vec{1.0, -1.0});
  EXPECT_NEAR(x2[0] - x2[1], 0.5, 1e-12);  // L x = b with weight 2
  EXPECT_NEAR(x2[0] + x2[1], 0.0, 1e-12);  // mean-zero representative
}

TEST(LaplacianFactor, RejectsWrongSizedRhs) {
  // Public solve surface validates dimensions even in Release builds.
  const auto f = LaplacianFactor::factor(test_context(),
                                         graph::laplacian(graph::path(4)));
  ASSERT_TRUE(f);
  EXPECT_THROW(f->solve(Vec{1.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(f->solve_many(test_context(), DenseMatrix(5, 2)),
               std::invalid_argument);
  const auto cf = ComponentLaplacianFactor::factor(
      test_context(), graph::laplacian(graph::path(4)));
  ASSERT_TRUE(cf);
  EXPECT_THROW(cf->solve(test_context(), Vec(3, 0.0)), std::invalid_argument);
  EXPECT_THROW(cf->solve_many(test_context(), DenseMatrix(3, 1)),
               std::invalid_argument);
}

TEST(LaplacianFactor, FailsOnDisconnected) {
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_FALSE(LaplacianFactor::factor(test_context(), graph::laplacian(g)));
}

TEST(Ldlt, RejectsDegenerateInputs) {
  // All-zero matrix: no positive pivot exists; must be rejected by design,
  // not by racing `0 <= pivot_tol * 1e-300` against double underflow.
  EXPECT_FALSE(LdltFactor::factor(test_context(), DenseMatrix(3, 3)));
  EXPECT_FALSE(LdltFactor::factor(test_context(), DenseMatrix(1, 1)));
  // Even with a pivot tolerance tiny enough that the old relative
  // threshold underflowed to zero.
  EXPECT_FALSE(LdltFactor::factor(test_context(), DenseMatrix(4, 4), 1e-290));
  // A 0x0 system has nothing to factor.
  EXPECT_FALSE(LdltFactor::factor(test_context(), DenseMatrix(0, 0)));
}

TEST(Ldlt, BlockedFactorizationSpansBlockBoundaries) {
  // Sizes straddling the 64-wide internal block edge exercise the panel
  // and trailing-update paths of the blocked factorization.
  rng::Stream stream(19);
  for (std::size_t n : {64u, 65u, 130u, 200u}) {
    const auto a = testsupport::random_spd(n, stream);
    const auto f = LdltFactor::factor(test_context(), a);
    ASSERT_TRUE(f) << n;
    const auto b = testsupport::gaussian_vector(n, stream);
    const Vec x = f->solve(b);
    EXPECT_LT(norm2(sub(a.multiply(test_context(), x), b)), 1e-8 * norm2(b))
        << n;
  }
}

TEST(LaplacianFactor, DuplicateCsrEntriesAccumulate) {
  // Path-graph Laplacian with every entry split into two duplicate halves,
  // as external CSR ingest may deliver. The grounded-matrix scatter must
  // accumulate the duplicates; the old assignment kept only the last one.
  const auto split = CsrMatrix::from_raw(
      3, 3, {0, 4, 10, 14},
      {0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 1, 1, 2, 2},
      {0.5, 0.5, -0.5, -0.5, -0.5, -0.5, 1.0, 1.0, -0.5, -0.5, -0.5, -0.5,
       0.5, 0.5});
  const auto f = LaplacianFactor::factor(test_context(), split);
  ASSERT_TRUE(f);
  const auto ref = LaplacianFactor::factor(
      test_context(), graph::laplacian(graph::path(3)));
  ASSERT_TRUE(ref);
  const Vec b{1.0, 0.0, -1.0};
  const Vec x = f->solve(b);
  const Vec xr = ref->solve(b);
  ASSERT_EQ(x.size(), xr.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], xr[i], 1e-12);
}

// Disconnected graph with a singleton, a 2-vertex component and a larger
// component; checks the per-component grounding and projection.
TEST(ComponentLaplacianFactor, DisconnectedWithSingletonAndPairComponents) {
  graph::Graph g(7);  // vertex 0: singleton
  g.add_edge(1, 2, 2.0);  // pair
  g.add_edge(3, 4, 1.0);  // path of 4
  g.add_edge(4, 5, 3.0);
  g.add_edge(5, 6, 1.0);
  const auto lap = graph::laplacian(g);
  const auto f = ComponentLaplacianFactor::factor(test_context(), lap);
  ASSERT_TRUE(f);
  EXPECT_EQ(f->num_components(), 3u);

  rng::Stream stream(23);
  const auto b = testsupport::gaussian_vector(7, stream);
  const Vec x = f->solve(test_context(), b);

  // Solve-then-apply round trip: L x equals b with the per-component mean
  // removed (the projection of b onto range(L)).
  Vec proj = b;
  proj[0] = 0.0;  // singleton: L's row is zero
  const double m12 = (b[1] + b[2]) / 2.0;
  proj[1] -= m12;
  proj[2] -= m12;
  const double m36 = (b[3] + b[4] + b[5] + b[6]) / 4.0;
  for (std::size_t v = 3; v < 7; ++v) proj[v] -= m36;
  const Vec lx = lap.multiply(test_context(), x);
  for (std::size_t v = 0; v < 7; ++v) EXPECT_NEAR(lx[v], proj[v], 1e-9) << v;

  // The representative is mean-zero per component, and zero on singletons.
  EXPECT_EQ(x[0], 0.0);
  EXPECT_NEAR(x[1] + x[2], 0.0, 1e-12);
  EXPECT_NEAR(x[3] + x[4] + x[5] + x[6], 0.0, 1e-12);

  // Apply-then-solve: solving L y for y already in range(L) with zero
  // component means returns y itself.
  Vec y(7, 0.0);
  y[1] = 0.5;
  y[2] = -0.5;
  y[3] = 1.0;
  y[4] = -2.0;
  y[5] = 0.5;
  y[6] = 0.5;
  const Vec back = f->solve(test_context(), lap.multiply(test_context(), y));
  for (std::size_t v = 0; v < 7; ++v) EXPECT_NEAR(back[v], y[v], 1e-9) << v;
}

TEST(ComponentLaplacianFactor, AllSingletons) {
  // Edgeless graph: every component is a singleton, nothing to factor,
  // and the pseudoinverse is identically zero.
  const auto f =
      ComponentLaplacianFactor::factor(test_context(),
                                       graph::laplacian(graph::Graph(4)));
  ASSERT_TRUE(f);
  EXPECT_EQ(f->num_components(), 4u);
  const Vec x = f->solve(test_context(), Vec{1.0, -2.0, 3.0, 0.5});
  for (double v : x) EXPECT_EQ(v, 0.0);
}

}  // namespace
}  // namespace bcclap::linalg
