#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/laplacian.h"
#include "linalg/vector_ops.h"
#include "support/fixtures.h"

namespace bcclap::linalg {
namespace {

TEST(Ldlt, SolvesKnownSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 4; a(0, 1) = 1; a(1, 0) = 1; a(1, 1) = 3;
  const auto f = LdltFactor::factor(a);
  ASSERT_TRUE(f);
  const Vec x = f->solve(Vec{1, 2});
  // Check A x = b.
  EXPECT_NEAR(4 * x[0] + x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[0] + 3 * x[1], 2.0, 1e-12);
}

TEST(Ldlt, RandomSpdResidual) {
  rng::Stream stream(7);
  for (std::size_t n : {3u, 10u, 40u}) {
    const auto a = testsupport::random_spd(n, stream);
    const auto f = LdltFactor::factor(a);
    ASSERT_TRUE(f);
    const auto b = testsupport::gaussian_vector(n, stream);
    const Vec x = f->solve(b);
    const Vec r = sub(a.multiply(x), b);
    EXPECT_LT(norm2(r), 1e-8 * norm2(b));
  }
}

TEST(Ldlt, RejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 2; a(1, 1) = 1;  // eigenvalues 3, -1
  EXPECT_FALSE(LdltFactor::factor(a));
}

TEST(LaplacianFactor, SolvesOnPathGraph) {
  const auto g = graph::path(5);
  const auto lap = graph::laplacian(g);
  const auto f = LaplacianFactor::factor(lap);
  ASSERT_TRUE(f);
  Vec b{1, 0, 0, 0, -1};
  const Vec x = f->solve(b);
  const Vec lx = lap.multiply(x);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(lx[i], b[i], 1e-9);
  EXPECT_NEAR(mean(x), 0.0, 1e-12);
}

TEST(LaplacianFactor, ProjectsRhs) {
  const auto g = graph::cycle(6);
  const auto lap = graph::laplacian(g);
  const auto f = LaplacianFactor::factor(lap);
  ASSERT_TRUE(f);
  // b with nonzero mean: solver projects; solution satisfies L x = proj(b).
  Vec b{2, 0, 0, 0, 0, 0};
  const Vec x = f->solve(b);
  Vec proj = b;
  remove_mean(proj);
  const Vec lx = lap.multiply(x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(lx[i], proj[i], 1e-9);
}

TEST(LaplacianFactor, RandomConnectedGraphs) {
  rng::Stream stream(11);
  for (std::uint64_t trial = 0; trial < 5; ++trial) {
    auto child = stream.child(trial);
    const auto g = graph::random_connected_gnp(20, 0.2, 10, child);
    const auto lap = graph::laplacian(g);
    const auto f = LaplacianFactor::factor(lap);
    ASSERT_TRUE(f);
    const auto b = testsupport::zero_sum_gaussian(20, child);
    const Vec x = f->solve(b);
    const Vec r = sub(lap.multiply(x), b);
    EXPECT_LT(norm2(r), 1e-8);
  }
}

TEST(LaplacianFactor, FailsOnDisconnected) {
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_FALSE(LaplacianFactor::factor(graph::laplacian(g)));
}

}  // namespace
}  // namespace bcclap::linalg
