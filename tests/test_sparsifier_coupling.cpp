// The constructive Lemma 3.3 test: under a shared seed (survival coins +
// cluster-marking bits), the ad-hoc Broadcast-CONGEST sparsifier
// (Algorithm 5) and the a-priori reference (Algorithm 4) must produce
// *identical* output graphs. This is strictly stronger than the lemma's
// distributional equality and machine-checks its coupling argument.
#include <gtest/gtest.h>

#include "graph/generators.h"
#include "sparsify/spectral_sparsify.h"
#include "support/fixtures.h"

namespace bcclap::sparsify {
namespace {

using testsupport::test_context;

struct Case {
  std::size_t n;
  double p;       // density (1.0 = complete)
  std::int64_t w;
  std::size_t t;
  std::uint64_t seed;
};

class Coupling : public ::testing::TestWithParam<Case> {};

TEST_P(Coupling, AdHocEqualsApriori) {
  const Case c = GetParam();
  rng::Stream gstream(c.seed);
  const graph::Graph g =
      c.p >= 1.0 ? graph::complete(c.n, c.w, gstream)
                 : graph::random_connected_gnp(c.n, c.p, c.w, gstream);
  const auto opt = testsupport::small_sparsify_options(1.0, 2, c.t);
  auto net = testsupport::bc_net(g);
  const auto adhoc = spectral_sparsify(
      net.context().with_seed(c.seed ^ 0x5a5a), g, opt, net);
  const auto apriori =
      spectral_sparsify_apriori(test_context(c.seed ^ 0x5a5a), g, opt);

  ASSERT_TRUE(adhoc.deduction_consistent);
  ASSERT_EQ(adhoc.original_edge, apriori.original_edge)
      << "ad-hoc and a-priori sampled different edge sets";
  ASSERT_EQ(adhoc.sparsifier.num_edges(), apriori.sparsifier.num_edges());
  for (std::size_t i = 0; i < adhoc.sparsifier.num_edges(); ++i) {
    const auto& a = adhoc.sparsifier.edge(i);
    const auto& b = apriori.sparsifier.edge(i);
    EXPECT_EQ(a.u, b.u);
    EXPECT_EQ(a.v, b.v);
    EXPECT_DOUBLE_EQ(a.weight, b.weight);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Coupling,
    ::testing::Values(Case{12, 1.0, 1, 1, 1}, Case{12, 1.0, 1, 2, 2},
                      Case{16, 1.0, 4, 2, 3}, Case{20, 0.5, 3, 2, 4},
                      Case{20, 0.5, 3, 3, 5}, Case{24, 0.3, 8, 2, 6},
                      Case{16, 0.7, 2, 1, 7}, Case{28, 0.25, 5, 2, 8},
                      Case{14, 1.0, 6, 3, 9}, Case{18, 0.4, 1, 2, 10}));

TEST(Coupling, ManySeedsOnOneGraph) {
  rng::Stream gstream(77);
  const auto g = graph::complete(14, 3, gstream);
  const auto opt = testsupport::small_sparsify_options(1.0, 2, 2);
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    auto net = testsupport::bc_net(g);
    const auto adhoc =
        spectral_sparsify(net.context().with_seed(seed), g, opt, net);
    const auto apriori = spectral_sparsify_apriori(test_context(seed), g, opt);
    ASSERT_EQ(adhoc.original_edge, apriori.original_edge)
        << "diverged at seed " << seed;
  }
}

}  // namespace
}  // namespace bcclap::sparsify
