#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/laplacian.h"
#include "linalg/cg.h"
#include "linalg/chebyshev.h"
#include "linalg/cholesky.h"
#include "linalg/vector_ops.h"
#include "support/fixtures.h"

namespace bcclap::linalg {
namespace {

using testsupport::test_context;

// Diagonal SPD operator with controllable condition number.
LinearOperator diag_op(const Vec& d) {
  return [d](const Vec& x) {
    Vec y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = d[i] * x[i];
    return y;
  };
}

TEST(Cg, SolvesDiagonalSystem) {
  const Vec d{1, 2, 3, 4};
  const Vec b{1, 1, 1, 1};
  const auto res = conjugate_gradient(diag_op(d), b, 1e-10, 100);
  EXPECT_TRUE(res.converged);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(res.x[i], 1.0 / d[i], 1e-8);
}

TEST(Cg, ExactInNIterations) {
  const Vec d{1, 10, 100};
  const auto res = conjugate_gradient(diag_op(d), Vec{1, 1, 1}, 1e-12, 10);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 3u);  // CG is exact after n steps
}

TEST(Cg, PreconditionedConvergesFaster) {
  rng::Stream stream(5);
  const std::size_t n = 50;
  Vec d(n);
  for (std::size_t i = 0; i < n; ++i)
    d[i] = 1.0 + 999.0 * static_cast<double>(i) / static_cast<double>(n - 1);
  const auto b = testsupport::gaussian_vector(n, stream);
  const auto plain = conjugate_gradient(diag_op(d), b, 1e-10, 1000);
  LinearOperator precond = diag_op(cw_inv(d));  // perfect preconditioner
  const auto pre = conjugate_gradient(diag_op(d), b, 1e-10, 1000, &precond);
  EXPECT_TRUE(pre.converged);
  EXPECT_LT(pre.iterations, plain.iterations);
  EXPECT_LE(pre.iterations, 3u);
}

TEST(Chebyshev, ExactPreconditionerConvergesImmediately) {
  const Vec d{2, 3, 5};
  const Vec b{1, 2, 3};
  // B = A: kappa = 1.
  const auto res = preconditioned_chebyshev(diag_op(d), diag_op(cw_inv(d)),
                                            b, 1.0, 1e-12);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(res.x[i], b[i] / d[i], 1e-9);
}

TEST(Chebyshev, Kappa3LaplacianPair) {
  // A = L_G, B = (3/2) L_H with H = G: A <= B <= 3A trivially holds.
  rng::Stream stream(9);
  const auto g = graph::random_connected_gnp(24, 0.3, 5, stream);
  const auto lap = graph::laplacian(g);
  const auto factor = LaplacianFactor::factor(test_context(), lap);
  ASSERT_TRUE(factor);
  const auto b = testsupport::zero_sum_gaussian(24, stream);
  const auto apply_a = [&](const Vec& x) {
    return lap.multiply(test_context(), x);
  };
  const auto solve_b = [&](const Vec& r) {
    return scale(factor->solve(r), 2.0 / 3.0);
  };
  const auto res = preconditioned_chebyshev(apply_a, solve_b, b, 3.0, 1e-10);
  const Vec exact = factor->solve(b);
  Vec diff = sub(res.x, exact);
  remove_mean(diff);
  const double err = std::sqrt(
      std::max(0.0, dot(diff, lap.multiply(test_context(), diff))));
  const double ref = std::sqrt(
      std::max(0.0, dot(exact, lap.multiply(test_context(), exact))));
  EXPECT_LT(err, 1e-8 * ref);
}

TEST(Chebyshev, IterationCountScalesWithSqrtKappa) {
  // Theorem 2.3's O(sqrt(kappa) log(1/eps)) shape: the builtin schedule.
  const Vec b{1.0};
  const auto one = [](const Vec& x) { return x; };
  const auto r1 = preconditioned_chebyshev(one, one, b, 4.0, 1e-6);
  const auto r2 = preconditioned_chebyshev(one, one, b, 64.0, 1e-6);
  const double ratio = static_cast<double>(r2.iterations) /
                       static_cast<double>(r1.iterations);
  EXPECT_NEAR(ratio, 4.0, 1.0);  // sqrt(64/4) = 4
}

TEST(Chebyshev, ErrorDecreasesWithIterations) {
  Vec d{1.0, 0.5, 0.34};  // spectrum within [1/3, 1]
  const Vec b{1, 1, 1};
  const auto a_op = diag_op(d);
  const auto id = [](const Vec& x) { return x; };
  double prev = 1e9;
  for (std::size_t iters : {2u, 6u, 12u, 24u}) {
    const auto res = preconditioned_chebyshev_fixed(a_op, id, b, 3.0, iters);
    Vec err(3);
    for (std::size_t i = 0; i < 3; ++i) err[i] = res.x[i] - b[i] / d[i];
    const double e = norm2(err);
    EXPECT_LT(e, prev + 1e-12);
    prev = e;
  }
  EXPECT_LT(prev, 1e-6);
}

TEST(Chebyshev, CountsPrimitiveOperations) {
  const Vec b{1.0, 2.0};
  const auto id = [](const Vec& x) { return x; };
  const auto res = preconditioned_chebyshev_fixed(id, id, b, 2.0, 7);
  EXPECT_EQ(res.iterations, 7u);
  EXPECT_EQ(res.a_multiplies, 7u);
  EXPECT_EQ(res.b_solves, 7u);
}

}  // namespace
}  // namespace bcclap::linalg
