// service::SolverService (service/solver_service.h): the request loop
// multiplexing worker Runtimes over one shared FactorCache.
//
// The deterministic halves run the service caller-driven (workers = 0, so
// requests are served only by explicit drain() calls): backpressure with an
// exact queue capacity, warm-topology queue-jumping, cold-oversized
// admission, same-fingerprint coalescing and its bytes-neutrality. The
// threaded halves (workers >= 1; this suite runs in CI's TSan rerun lane)
// pin the determinism contract — reply bytes equal the direct Runtime
// facade's at any worker count — plus graceful shutdown draining every
// accepted request.
#include "service/solver_service.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/factor_cache.h"
#include "core/runtime.h"
#include "graph/generators.h"
#include "service/request.h"
#include "support/fixtures.h"

namespace bcclap {
namespace {

using linalg::Vec;
using service::Admission;
using service::PendingReply;
using service::ReplyStatus;
using service::Request;
using service::RequestType;
using service::ServiceOptions;
using service::SolverService;
using service::Submission;

::testing::AssertionResult BitwiseEqual(const Vec& a, const Vec& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "size " << a.size() << " vs " << b.size();
  if (!a.empty() &&
      std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) != 0)
    return ::testing::AssertionFailure() << "bytes differ";
  return ::testing::AssertionSuccess();
}

graph::Graph service_test_graph(std::uint64_t seed = 11) {
  rng::Stream stream(seed);
  return graph::random_regularish(48, 4, 8, stream);
}

Vec gaussian_rhs(std::size_t n, std::uint64_t seed) {
  rng::Stream stream(seed);
  Vec b(n);
  for (auto& v : b) v = stream.next_gaussian();
  return b;
}

// The canonical Laplacian request of this suite: the paper pipeline's
// engine at bench-scale sparsifier options, served under seed 19.
Request solve_request(const graph::Graph& g, std::uint64_t rhs_seed,
                      std::uint64_t seed = 19) {
  Request req;
  req.type = RequestType::kSolve;
  req.seed = seed;
  req.engine = "sparsified-chebyshev";
  req.sparsify = testsupport::small_sparsify_options();
  req.graph = g;
  req.b = gaussian_rhs(g.num_vertices(), rhs_seed);
  return req;
}

LaplacianSolveOptions facade_options() {
  LaplacianSolveOptions opt;
  opt.engine = "sparsified-chebyshev";
  opt.sparsify = testsupport::small_sparsify_options();
  return opt;
}

ServiceOptions caller_driven(std::size_t queue_capacity = 64) {
  ServiceOptions opts;
  opts.workers = 0;
  opts.queue_capacity = queue_capacity;
  return opts;
}

// ---- caller-driven (deterministic) half -------------------------------

TEST(SolverService, BackpressureRejectsAtCapacityAndRecovers) {
  const graph::Graph g = service_test_graph();
  SolverService service(caller_driven(/*queue_capacity=*/2));

  Submission a = service.submit(solve_request(g, 1));
  Submission b = service.submit(solve_request(g, 2));
  ASSERT_TRUE(a.accepted());
  ASSERT_TRUE(b.accepted());
  EXPECT_EQ(service.queue_depth(), 2u);

  // The third submission hits the bound: an explicit rejection with a
  // reason, never a silent drop.
  Submission c = service.submit(solve_request(g, 3));
  EXPECT_FALSE(c.accepted());
  EXPECT_EQ(c.admission, Admission::kRejectedQueueFull);
  EXPECT_STREQ(c.reason(), "queue-full");

  // Draining makes room; the resubmission is admitted.
  EXPECT_EQ(service.drain(), 2u);
  Submission retry = service.submit(solve_request(g, 3));
  ASSERT_TRUE(retry.accepted());
  EXPECT_EQ(service.drain(), 1u);
  EXPECT_EQ(retry.reply->wait().status, ReplyStatus::kOk);

  const auto stats = service.stats();
  EXPECT_EQ(stats.accepted, 3u);
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.served, 3u);
  EXPECT_EQ(stats.queue_high_water, 2u);
}

TEST(SolverService, WarmTopologyJumpsTheQueue) {
  const graph::Graph warm_g = service_test_graph(11);
  const graph::Graph cold_g = service_test_graph(12);
  SolverService service(caller_driven());

  // Warm the cache on warm_g's topology.
  Submission first = service.submit(solve_request(warm_g, 1));
  ASSERT_TRUE(first.accepted());
  EXPECT_EQ(first.admission, Admission::kAccepted);
  service.drain();

  // A cold request queued ahead of a warm one is overtaken: the warm
  // request's artifact is resident, so its serve is apply-only.
  Submission cold = service.submit(solve_request(cold_g, 2));
  Submission warm = service.submit(solve_request(warm_g, 3));
  ASSERT_TRUE(cold.accepted());
  ASSERT_TRUE(warm.accepted());
  EXPECT_EQ(warm.admission, Admission::kAcceptedWarm);
  EXPECT_STREQ(warm.reason(), "accepted-warm");

  EXPECT_EQ(service.drain(1), 1u);
  EXPECT_TRUE(warm.reply->ready());
  EXPECT_FALSE(cold.reply->ready());

  service.drain();
  const auto& warm_reply = warm.reply->wait();
  EXPECT_EQ(warm_reply.status, ReplyStatus::kOk);
  EXPECT_GE(warm_reply.stats.cache_hits, 1u);
  EXPECT_EQ(warm_reply.stats.sparsify_count, 0u);
  EXPECT_EQ(service.stats().warm_admissions, 1u);
}

TEST(SolverService, ColdOversizedIsRejectedUntilTheTopologyIsWarm) {
  const graph::Graph g = service_test_graph();
  auto shared = std::make_shared<core::FactorCache>(64u << 20);
  ServiceOptions opts = caller_driven();
  opts.factor_cache = shared;
  opts.max_cold_vertices = 10;  // every cold 48-vertex prepare is oversized
  SolverService service(opts);

  Submission cold = service.submit(solve_request(g, 1));
  EXPECT_FALSE(cold.accepted());
  EXPECT_EQ(cold.admission, Admission::kRejectedColdOversized);
  EXPECT_STREQ(cold.reason(), "cold-oversized");

  // Warm the shared cache from a Runtime with the service's seed and
  // chunking policy — the admission key must mirror the facade's cache
  // key exactly, so the artifact this Runtime prepares is the one the
  // service now finds resident.
  RuntimeOptions ropts;
  ropts.threads = 1;
  ropts.seed = 19;
  ropts.factor_cache = shared;
  Runtime rt(ropts);
  const auto direct = rt.solve_laplacian(g, gaussian_rhs(48, 1),
                                         facade_options());
  ASSERT_TRUE(direct.usable);

  Submission warm = service.submit(solve_request(g, 1));
  ASSERT_TRUE(warm.accepted());
  EXPECT_EQ(warm.admission, Admission::kAcceptedWarm);
  service.drain();
  const auto& reply = warm.reply->wait();
  EXPECT_EQ(reply.status, ReplyStatus::kOk);
  EXPECT_GE(reply.stats.cache_hits, 1u);
  EXPECT_EQ(reply.stats.sparsify_count, 0u);
  EXPECT_TRUE(BitwiseEqual(reply.x, direct.x));
  EXPECT_EQ(service.stats().rejected_cold_oversized, 1u);
}

TEST(SolverService, CoalescesSameFingerprintSinglesBytesNeutrally) {
  const graph::Graph g = service_test_graph();
  SolverService service(caller_driven());

  // Three coalescible singles plus one under a different seed (a different
  // artifact — never batched with the others).
  std::vector<Submission> subs;
  for (std::uint64_t rhs = 1; rhs <= 3; ++rhs) {
    subs.push_back(service.submit(solve_request(g, rhs)));
    ASSERT_TRUE(subs.back().accepted());
  }
  Submission other = service.submit(solve_request(g, 4, /*seed=*/20));
  ASSERT_TRUE(other.accepted());

  // One drain step serves the whole coalesced panel.
  EXPECT_EQ(service.drain(1), 3u);
  service.drain();

  // Reference bytes: the direct facade, uncached, single-RHS.
  RuntimeOptions ropts;
  ropts.threads = 1;
  ropts.seed = 19;
  Runtime rt(ropts);
  for (std::uint64_t rhs = 1; rhs <= 3; ++rhs) {
    const auto& reply = subs[rhs - 1].reply->wait();
    ASSERT_EQ(reply.status, ReplyStatus::kOk);
    EXPECT_TRUE(reply.coalesced);
    EXPECT_EQ(reply.panel_width, 3u);
    const auto direct =
        rt.solve_laplacian(g, gaussian_rhs(48, rhs), facade_options());
    EXPECT_TRUE(BitwiseEqual(reply.x, direct.x)) << "rhs " << rhs;
  }
  const auto& solo = other.reply->wait();
  EXPECT_EQ(solo.status, ReplyStatus::kOk);
  EXPECT_FALSE(solo.coalesced);

  const auto stats = service.stats();
  EXPECT_EQ(stats.coalesced_panels, 1u);
  EXPECT_EQ(stats.coalesced_requests, 3u);
  EXPECT_EQ(stats.served, 4u);
}

TEST(SolverService, MaxCoalesceOneDisablesBatching) {
  const graph::Graph g = service_test_graph();
  ServiceOptions opts = caller_driven();
  opts.max_coalesce = 1;
  SolverService service(opts);

  Submission a = service.submit(solve_request(g, 1));
  Submission b = service.submit(solve_request(g, 2));
  ASSERT_TRUE(a.accepted());
  ASSERT_TRUE(b.accepted());
  EXPECT_EQ(service.drain(1), 1u);
  EXPECT_FALSE(b.reply->ready());
  service.drain();
  EXPECT_FALSE(a.reply->wait().coalesced);
  EXPECT_EQ(service.stats().coalesced_panels, 0u);
}

TEST(SolverService, UnknownEngineKeyThrowsAtTheSubmitBoundary) {
  SolverService service(caller_driven());
  Request req = solve_request(service_test_graph(), 1);
  req.engine = "no-such-engine";
  EXPECT_THROW(service.submit(std::move(req)), std::invalid_argument);
}

TEST(SolverService, AggregatesRunStatsAndCacheSnapshot) {
  const graph::Graph g = service_test_graph();
  SolverService service(caller_driven());
  Submission a = service.submit(solve_request(g, 1));
  Submission b = service.submit(solve_request(g, 2, /*seed=*/20));
  ASSERT_TRUE(a.accepted());
  ASSERT_TRUE(b.accepted());
  service.drain();

  const auto stats = service.stats();
  EXPECT_EQ(stats.served, 2u);
  EXPECT_EQ(stats.failed, 0u);
  // Two distinct (fingerprint, seed) artifacts were prepared and cached.
  EXPECT_EQ(stats.totals.cache_misses, 2u);
  EXPECT_EQ(stats.totals.sparsify_count, 2u);
  EXPECT_GT(stats.totals.iterations, 0u);
  EXPECT_GT(stats.totals.wall_seconds, 0.0);
  EXPECT_EQ(stats.cache.entries, 2u);
  EXPECT_EQ(stats.cache.misses, 2u);
  EXPECT_GT(stats.cache.resident_bytes, 0u);
  EXPECT_LE(stats.cache.resident_bytes, stats.cache.max_bytes);
}

// ---- threaded half (the TSan targets) ---------------------------------

TEST(SolverService, RepliesMatchTheFacadeBytesAtFourWorkers) {
  const graph::Graph g = service_test_graph();
  const std::size_t n = g.num_vertices();
  linalg::DenseMatrix panel(n, 2);
  panel.set_column(0, gaussian_rhs(n, 21));
  panel.set_column(1, gaussian_rhs(n, 22));

  ServiceOptions opts;
  opts.workers = 4;
  SolverService service(opts);

  std::vector<Submission> singles;
  for (std::uint64_t rhs = 1; rhs <= 4; ++rhs) {
    singles.push_back(service.submit(solve_request(g, rhs)));
    ASSERT_TRUE(singles.back().accepted());
  }
  Request many;
  many.type = RequestType::kSolveMany;
  many.seed = 19;
  many.engine = "sparsified-chebyshev";
  many.sparsify = testsupport::small_sparsify_options();
  many.graph = g;
  many.panel = panel;
  Submission panel_sub = service.submit(std::move(many));
  ASSERT_TRUE(panel_sub.accepted());

  RuntimeOptions ropts;
  ropts.threads = 1;
  ropts.seed = 19;
  Runtime rt(ropts);
  for (std::uint64_t rhs = 1; rhs <= 4; ++rhs) {
    const auto& reply = singles[rhs - 1].reply->wait();
    ASSERT_EQ(reply.status, ReplyStatus::kOk);
    const auto direct =
        rt.solve_laplacian(g, gaussian_rhs(n, rhs), facade_options());
    EXPECT_TRUE(BitwiseEqual(reply.x, direct.x)) << "rhs " << rhs;
  }
  const auto& panel_reply = panel_sub.reply->wait();
  ASSERT_EQ(panel_reply.status, ReplyStatus::kOk);
  const auto direct_many = rt.solve_laplacian_many(g, panel, facade_options());
  ASSERT_TRUE(direct_many.usable);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_TRUE(
        BitwiseEqual(panel_reply.panel.column(j), direct_many.x.column(j)));
  }
  service.shutdown();
  EXPECT_EQ(service.stats().served, 5u);
}

TEST(SolverService, SparsifyAndMcmfRideTheService) {
  const graph::Graph g = service_test_graph();
  ServiceOptions opts;
  opts.workers = 2;
  SolverService service(opts);

  Request sp;
  sp.type = RequestType::kSparsify;
  sp.seed = 19;
  sp.sparsify = testsupport::small_sparsify_options();
  sp.graph = g;
  Submission sp_sub = service.submit(std::move(sp));
  ASSERT_TRUE(sp_sub.accepted());

  graph::Digraph net(4);
  net.add_arc(0, 1, 2, 1);
  net.add_arc(1, 3, 2, 1);
  net.add_arc(0, 2, 2, 4);
  net.add_arc(2, 3, 2, 4);
  Request mf;
  mf.type = RequestType::kMcmf;
  mf.seed = 19;
  mf.network = net;
  mf.source = 0;
  mf.sink = 3;
  Submission mf_sub = service.submit(std::move(mf));
  ASSERT_TRUE(mf_sub.accepted());

  RuntimeOptions ropts;
  ropts.threads = 1;
  ropts.seed = 19;
  Runtime rt(ropts);

  const auto& sp_reply = sp_sub.reply->wait();
  ASSERT_EQ(sp_reply.status, ReplyStatus::kOk);
  const auto direct_sp =
      rt.sparsify(g, testsupport::small_sparsify_options());
  const auto& got = sp_reply.sparsify.sparsifier;
  const auto& want = direct_sp.result.sparsifier;
  ASSERT_EQ(got.num_edges(), want.num_edges());
  for (std::size_t e = 0; e < got.num_edges(); ++e) {
    EXPECT_EQ(got.edge(e).u, want.edge(e).u);
    EXPECT_EQ(got.edge(e).v, want.edge(e).v);
    EXPECT_EQ(got.edge(e).weight, want.edge(e).weight);
  }

  const auto& mf_reply = mf_sub.reply->wait();
  ASSERT_EQ(mf_reply.status, ReplyStatus::kOk);
  const auto direct_mf = rt.min_cost_max_flow(net, 0, 3, {});
  ASSERT_TRUE(direct_mf.result.exact);
  EXPECT_EQ(mf_reply.mcmf.flow.value, direct_mf.result.flow.value);
  EXPECT_EQ(mf_reply.mcmf.flow.cost, direct_mf.result.flow.cost);
  EXPECT_EQ(mf_reply.mcmf.flow.flow, direct_mf.result.flow.flow);
}

TEST(FactorCacheDedup, ConcurrentColdPreparesRunOnePrepare) {
  // Prepare-in-flight dedup (core/factor_cache.h): N Runtimes sharing one
  // cache race the same cold key; exactly one runs the prepare (one cache
  // miss, one sparsify), the rest block on the in-flight registration and
  // adopt the published artifact as hits — with bitwise-identical replies.
  const graph::Graph g = service_test_graph();
  const Vec b = gaussian_rhs(g.num_vertices(), 31);
  auto shared = std::make_shared<core::FactorCache>(64u << 20);

  constexpr std::size_t kThreads = 4;
  std::vector<std::unique_ptr<Runtime>> runtimes;
  for (std::size_t i = 0; i < kThreads; ++i) {
    RuntimeOptions ropts;
    ropts.threads = 1;
    ropts.seed = 19;
    ropts.factor_cache = shared;
    runtimes.push_back(std::make_unique<Runtime>(ropts));
  }

  // Start barrier so the solves genuinely overlap — the point is the
  // join path, not N sequential warm hits.
  std::mutex mu;
  std::condition_variable cv;
  std::size_t arrived = 0;
  std::vector<LaplacianRun> runs(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (++arrived == kThreads) cv.notify_all();
        cv.wait(lock, [&] { return arrived == kThreads; });
      }
      runs[i] = runtimes[i]->solve_laplacian(g, b, facade_options());
    });
  }
  for (auto& t : threads) t.join();

  std::size_t total_sparsifies = 0, total_hits = 0, total_misses = 0;
  for (std::size_t i = 0; i < kThreads; ++i) {
    ASSERT_TRUE(runs[i].usable) << "thread " << i;
    total_sparsifies += runs[i].stats.sparsify_count;
    total_hits += runs[i].stats.cache_hits;
    total_misses += runs[i].stats.cache_misses;
    EXPECT_TRUE(BitwiseEqual(runs[i].x, runs[0].x)) << "thread " << i;
  }
  EXPECT_EQ(total_misses, 1u);
  EXPECT_EQ(total_hits, kThreads - 1);
  EXPECT_EQ(total_sparsifies, 1u);
  EXPECT_EQ(shared->misses(), 1u);
  EXPECT_EQ(shared->entries(), 1u);
}

TEST(FactorCacheDedup, FourWorkerColdBurstPreparesOnce) {
  // The bench_service regression this closes: a 4-worker cold burst on
  // one topology used to run four redundant prepares (coalescing only
  // merges requests still queued — once each worker holds one, they raced
  // the full sparsify+factor). max_coalesce = 1 forces that shape
  // deterministically; dedup must reduce it to one prepare.
  const graph::Graph g = service_test_graph();
  ServiceOptions opts;
  opts.workers = 4;
  opts.max_coalesce = 1;
  SolverService service(opts);

  std::vector<Submission> subs;
  for (std::uint64_t rhs = 1; rhs <= 4; ++rhs) {
    subs.push_back(service.submit(solve_request(g, rhs)));
    ASSERT_TRUE(subs.back().accepted());
  }

  RuntimeOptions ropts;
  ropts.threads = 1;
  ropts.seed = 19;
  Runtime rt(ropts);
  for (std::uint64_t rhs = 1; rhs <= 4; ++rhs) {
    const auto& reply = subs[rhs - 1].reply->wait();
    ASSERT_EQ(reply.status, ReplyStatus::kOk);
    const auto direct = rt.solve_laplacian(g, gaussian_rhs(g.num_vertices(), rhs),
                                           facade_options());
    EXPECT_TRUE(BitwiseEqual(reply.x, direct.x)) << "rhs " << rhs;
  }
  service.shutdown();

  const auto stats = service.stats();
  EXPECT_EQ(stats.served, 4u);
  EXPECT_EQ(stats.totals.sparsify_count, 1u);
  EXPECT_EQ(stats.totals.cache_misses, 1u);
  EXPECT_EQ(stats.totals.cache_hits, 3u);
  EXPECT_EQ(stats.cache.misses, 1u);
}

TEST(SolverService, ShutdownDrainsEveryAcceptedRequestThenRejects) {
  const graph::Graph g = service_test_graph();
  ServiceOptions opts;
  opts.workers = 1;
  SolverService service(opts);

  std::vector<Submission> subs;
  for (std::uint64_t rhs = 1; rhs <= 4; ++rhs) {
    subs.push_back(service.submit(solve_request(g, rhs)));
    ASSERT_TRUE(subs.back().accepted());
  }
  service.shutdown();
  // Accepted implies fulfilled: every reply is ready after shutdown.
  for (auto& sub : subs) {
    ASSERT_TRUE(sub.reply->ready());
    EXPECT_EQ(sub.reply->wait().status, ReplyStatus::kOk);
  }

  Submission late = service.submit(solve_request(g, 9));
  EXPECT_FALSE(late.accepted());
  EXPECT_EQ(late.admission, Admission::kRejectedShutdown);
  EXPECT_STREQ(late.reason(), "shutting-down");

  const auto stats = service.stats();
  EXPECT_EQ(stats.served, 4u);
  EXPECT_EQ(stats.rejected_shutdown, 1u);
}

}  // namespace
}  // namespace bcclap
