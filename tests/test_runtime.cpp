// The bcclap::Runtime execution-context API: per-Runtime isolation of the
// determinism contract.
//
// test_network_determinism pins byte-identity between 1-worker and
// N-worker runs; this suite extends the contract to Runtimes: two
// Runtimes with different thread counts, running the n = 56 pipeline
// concurrently from two std::threads, each produce results byte-identical
// to their own single-threaded run. It also pins the historical
// single-configuration contract (one shared process-wide pool, layer
// objects surviving a reset) to Runtime::process_default().
#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/bcclap.h"
#include "graph/generators.h"
#include "support/fixtures.h"

namespace bcclap {
namespace {

bool bitwise_equal(const linalg::Vec& a, const linalg::Vec& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

graph::Graph pipeline_graph() {
  rng::Stream s(2022);
  return graph::random_regularish(56, 24, 4, s);
}

sparsify::SparsifyOptions pipeline_sparsify_options() {
  return testsupport::small_sparsify_options(0.5, 2, 3);
}

// Everything a pipeline run produces, field-for-field comparable.
struct PipelineOut {
  std::vector<graph::EdgeId> sparsifier_edges;
  std::int64_t sparsify_rounds = 0;
  std::size_t sparsify_iterations = 0;
  linalg::Vec x;
  std::int64_t solve_rounds = 0;
  std::size_t solve_iterations = 0;
};

PipelineOut run_pipeline(Runtime& rt, const graph::Graph& g) {
  PipelineOut out;
  const auto sp = rt.sparsify(g, pipeline_sparsify_options());
  out.sparsifier_edges = sp.result.original_edge;
  out.sparsify_rounds = sp.stats.rounds;
  out.sparsify_iterations = sp.stats.iterations;

  linalg::Vec b(g.num_vertices(), 0.0);
  b[0] = 1.0;
  b[g.num_vertices() - 1] = -1.0;
  LaplacianSolveOptions lopt;
  lopt.sparsify = pipeline_sparsify_options();
  const auto solve = rt.solve_laplacian(g, b, lopt);
  EXPECT_TRUE(solve.usable);
  out.x = solve.x;
  out.solve_rounds = solve.stats.rounds;
  out.solve_iterations = solve.stats.iterations;
  return out;
}

void expect_identical(const PipelineOut& a, const PipelineOut& b) {
  EXPECT_EQ(a.sparsifier_edges, b.sparsifier_edges);
  EXPECT_EQ(a.sparsify_rounds, b.sparsify_rounds);
  EXPECT_EQ(a.sparsify_iterations, b.sparsify_iterations);
  EXPECT_TRUE(bitwise_equal(a.x, b.x));
  EXPECT_EQ(a.solve_rounds, b.solve_rounds);
  EXPECT_EQ(a.solve_iterations, b.solve_iterations);
}

TEST(Runtime, TwoConcurrentRuntimesMatchTheirOwnSingleThreadRuns) {
  const auto g = pipeline_graph();

  RuntimeOptions ref_a_opts;
  ref_a_opts.threads = 1;
  ref_a_opts.seed = 7;
  Runtime ref_a(ref_a_opts);
  const PipelineOut want_a = run_pipeline(ref_a, g);

  RuntimeOptions ref_b_opts;
  ref_b_opts.threads = 1;
  ref_b_opts.seed = 9;
  Runtime ref_b(ref_b_opts);
  const PipelineOut want_b = run_pipeline(ref_b, g);

  // Different seeds genuinely produce different pipelines (otherwise the
  // cross-checks below would be vacuous).
  ASSERT_NE(want_a.sparsifier_edges, want_b.sparsifier_edges);

  // Two differently-configured Runtimes, concurrently, each on its own
  // pool. The 2- and 4-worker runs must reproduce their 1-worker
  // references byte for byte.
  RuntimeOptions a_opts;
  a_opts.threads = 2;
  a_opts.seed = 7;
  Runtime rt_a(a_opts);
  RuntimeOptions b_opts;
  b_opts.threads = 4;
  b_opts.seed = 9;
  Runtime rt_b(b_opts);
  ASSERT_EQ(rt_a.num_threads(), 2u);
  ASSERT_EQ(rt_b.num_threads(), 4u);

  PipelineOut got_a, got_b;
  std::thread ta([&] { got_a = run_pipeline(rt_a, g); });
  std::thread tb([&] { got_b = run_pipeline(rt_b, g); });
  ta.join();
  tb.join();

  expect_identical(got_a, want_a);
  expect_identical(got_b, want_b);
}

TEST(Runtime, RepeatedFacadeCallsAreCallOrderIndependent) {
  // Facade randomness derives from the Runtime seed, not from root-stream
  // position: interleaving root_stream() draws or repeating calls does not
  // change any result.
  const auto g = pipeline_graph();
  RuntimeOptions opts;
  opts.threads = 1;
  opts.seed = 21;
  Runtime rt(opts);
  const auto first = rt.sparsify(g, pipeline_sparsify_options());
  (void)rt.root_stream().next_u64();
  const auto second = rt.sparsify(g, pipeline_sparsify_options());
  EXPECT_EQ(first.result.original_edge, second.result.original_edge);
  EXPECT_EQ(first.stats.rounds, second.stats.rounds);
}

TEST(Runtime, FacadeSparsifyCouplesWithAprioriReference) {
  // The Runtime seed is the pipeline seed: the Lemma 3.3 coupling against
  // the centralized a-priori sampler holds through the facade.
  const auto g = pipeline_graph();
  RuntimeOptions opts;
  opts.threads = 2;
  opts.seed = 99;
  Runtime rt(opts);
  const auto adhoc = rt.sparsify(g, pipeline_sparsify_options());
  const auto apriori =
      sparsify::spectral_sparsify_apriori(
          Runtime::process_default().context().with_seed(99), g,
          pipeline_sparsify_options());
  EXPECT_EQ(adhoc.result.original_edge, apriori.original_edge);
}

TEST(Runtime, DirectSolverOnProcessDefaultMatchesRuntimePath) {
  // The historical contract: constructing SparsifiedLaplacianSolver
  // directly on the process-default context (with a facade-matching seed)
  // produces exactly what a Runtime with that seed produces.
  const auto g = pipeline_graph();
  linalg::Vec b(g.num_vertices(), 0.0);
  b[0] = 1.0;
  b[g.num_vertices() - 1] = -1.0;

  RuntimeOptions opts;
  opts.threads = 1;
  opts.seed = 404;
  Runtime rt(opts);
  LaplacianSolveOptions lopt;
  lopt.sparsify = pipeline_sparsify_options();
  const auto facade = rt.solve_laplacian(g, b, lopt);

  laplacian::SparsifiedLaplacianSolver direct(
      Runtime::process_default().context().with_seed(404), g,
      pipeline_sparsify_options());
  ASSERT_TRUE(direct.usable());
  const auto x = direct.solve(b, 1e-8);
  EXPECT_TRUE(bitwise_equal(facade.x, x));
  EXPECT_EQ(facade.preprocessing_rounds, direct.preprocessing_rounds());
}

TEST(Runtime, ResetProcessDefaultRebuildsWorkerCount) {
  const std::size_t before = Runtime::process_default().num_threads();
  Runtime::reset_process_default(3);
  EXPECT_EQ(Runtime::process_default().num_threads(), 3u);
  // 0 = env-resolved, the same resolution a fresh RuntimeOptions{} gets.
  Runtime::reset_process_default(0);
  EXPECT_EQ(Runtime::process_default().num_threads(),
            common::default_thread_count());
  Runtime::reset_process_default(before);
  EXPECT_EQ(Runtime::process_default().num_threads(), before);
}

TEST(Runtime, FactoredObjectsSurviveProcessDefaultReset) {
  // reset_process_default retires (drains) the old default Runtime
  // instead of destroying it: an object factored against the old default
  // keeps a valid pool and keeps producing identical results (inline
  // execution on a drained pool has the same chunk boundaries).
  const auto g = pipeline_graph();
  const auto lap = graph::laplacian(g);
  const auto factor = linalg::ComponentLaplacianFactor::factor(
      Runtime::process_default().context(), lap);
  ASSERT_TRUE(factor.has_value());
  linalg::Vec b(g.num_vertices(), 0.0);
  b[0] = 1.0;
  b[g.num_vertices() - 1] = -1.0;
  const auto before = factor->solve(Runtime::process_default().context(), b);

  const std::size_t prev = Runtime::process_default().num_threads();
  Runtime::reset_process_default(prev + 1);
  // The post-reset default context targets the NEW pool; the factor no
  // longer pins the retired one.
  const auto after = factor->solve(Runtime::process_default().context(), b);
  Runtime::reset_process_default(prev);
  EXPECT_TRUE(bitwise_equal(before, after));
}

TEST(Runtime, MinWorkPerChunkIsPerRuntime) {
  // A tiny min_work_per_chunk changes chunk grains (and the grouping of
  // floating-point partials) but each configuration remains internally
  // deterministic: 1 worker vs 4 workers at the same policy agree bitwise.
  const auto g = pipeline_graph();
  linalg::Vec b(g.num_vertices(), 0.0);
  b[0] = 1.0;
  b[g.num_vertices() - 1] = -1.0;

  const auto run = [&](std::size_t threads, std::size_t min_work) {
    RuntimeOptions opts;
    opts.threads = threads;
    opts.seed = 5;
    opts.min_work_per_chunk = min_work;
    Runtime rt(opts);
    LaplacianSolveOptions lopt;
    lopt.sparsify = pipeline_sparsify_options();
    return rt.solve_laplacian(g, b, lopt).x;
  };
  EXPECT_TRUE(bitwise_equal(run(1, 64), run(4, 64)));
  EXPECT_TRUE(bitwise_equal(run(1, common::kDefaultMinWorkPerChunk),
                            run(4, common::kDefaultMinWorkPerChunk)));
}

TEST(Runtime, FacadeStatsCarryRoundsIterationsAndWallTime) {
  const auto g = pipeline_graph();
  RuntimeOptions opts;
  opts.threads = 1;
  opts.seed = 17;
  Runtime rt(opts);

  const auto sp = rt.sparsify(g, pipeline_sparsify_options());
  EXPECT_GT(sp.stats.rounds, 0);
  EXPECT_EQ(sp.stats.rounds, sp.result.rounds);
  EXPECT_GT(sp.stats.iterations, 0u);
  EXPECT_GE(sp.stats.wall_seconds, 0.0);

  linalg::Vec b(g.num_vertices(), 0.0);
  b[0] = 1.0;
  b[g.num_vertices() - 1] = -1.0;
  LaplacianSolveOptions lopt;
  lopt.sparsify = pipeline_sparsify_options();
  const auto solve = rt.solve_laplacian(g, b, lopt);
  ASSERT_TRUE(solve.usable);
  EXPECT_GT(solve.preprocessing_rounds, 0);
  EXPECT_GT(solve.stats.rounds, solve.preprocessing_rounds);
  EXPECT_GT(solve.stats.iterations, 0u);
  EXPECT_GE(solve.stats.wall_seconds, 0.0);
}

TEST(Runtime, FacadeMinCostMaxFlowMatchesBaseline) {
  rng::Stream gs(3);
  const std::size_t n = 6;
  const auto g = graph::random_flow_network(n, 8, 4, 3, gs);

  RuntimeOptions opts;
  opts.threads = 2;
  opts.seed = 12;
  Runtime rt(opts);
  const auto run = rt.min_cost_max_flow(g, 0, n - 1);
  ASSERT_TRUE(run.result.exact);
  EXPECT_EQ(run.stats.rounds, run.result.rounds);
  EXPECT_EQ(run.stats.iterations, run.result.path_steps);
  EXPECT_EQ(run.stats.steps, run.result.newton_steps);
  EXPECT_GT(run.stats.rounds, 0);
  EXPECT_GE(run.stats.wall_seconds, 0.0);

  const auto baseline = flow::min_cost_max_flow_ssp(g, 0, n - 1);
  EXPECT_EQ(run.result.flow.value, baseline.value);
  EXPECT_EQ(run.result.flow.cost, baseline.cost);
}

TEST(Runtime, ComponentFactorOutlivesFactoringRuntime) {
  // Regression (PR 6 bugfix sweep): the factor used to capture the
  // factoring Runtime's raw ThreadPool* and dereference it at solve time
  // — a dangling pointer once that Runtime was destroyed. The context is
  // now a per-call argument, so solving on a different, live Runtime is
  // well-defined.
  const auto g = pipeline_graph();
  const auto lap = graph::laplacian(g);
  linalg::Vec b(g.num_vertices(), 0.0);
  b[0] = 1.0;
  b[g.num_vertices() - 1] = -1.0;

  std::optional<linalg::ComponentLaplacianFactor> factor;
  {
    RuntimeOptions opts;
    opts.threads = 3;
    opts.seed = 9;
    Runtime short_lived(opts);
    factor = linalg::ComponentLaplacianFactor::factor(short_lived.context(),
                                                      lap);
  }  // the Runtime the factor was built on is gone
  ASSERT_TRUE(factor.has_value());

  RuntimeOptions opts;
  opts.threads = 2;
  opts.seed = 9;
  Runtime rt(opts);
  const auto x = factor->solve(rt.context(), b);
  // The factor is byte-deterministic, so it matches one built on the
  // solving Runtime itself.
  const auto fresh = linalg::ComponentLaplacianFactor::factor(rt.context(),
                                                              lap);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_TRUE(bitwise_equal(x, fresh->solve(rt.context(), b)));
}

TEST(Runtime, FacadeHandlesOneAndTwoVertexGraphs) {
  // Regression (PR 6 bugfix sweep): a 1-node graph used to make
  // LaplacianFactor::factor return nullopt, which Release builds turned
  // into a null deref inside ExactLaplacianSolver. L = 0 solves to x = 0.
  RuntimeOptions opts;
  opts.threads = 2;
  opts.seed = 31;
  Runtime rt(opts);
  LaplacianSolveOptions lopt;
  lopt.sparsify = pipeline_sparsify_options();

  const graph::Graph one(1);
  const auto r1 = rt.solve_laplacian(one, linalg::Vec{4.0}, lopt);
  ASSERT_TRUE(r1.usable);
  ASSERT_EQ(r1.x.size(), 1u);
  EXPECT_EQ(r1.x[0], 0.0);

  graph::Graph two(2);
  two.add_edge(0, 1, 2.0);
  const auto r2 = rt.solve_laplacian(two, linalg::Vec{1.0, -1.0}, lopt);
  ASSERT_TRUE(r2.usable);
  ASSERT_EQ(r2.x.size(), 2u);
  // L x = b with L = [[2,-2],[-2,2]]: x = (0.25, -0.25) + kernel shift.
  EXPECT_NEAR(r2.x[0] - r2.x[1], 0.5, 1e-9);

  const auto rm = rt.solve_laplacian_many(
      two, linalg::DenseMatrix(2, 1), lopt);
  ASSERT_TRUE(rm.usable);
  EXPECT_EQ(rm.x.rows(), 2u);
}

TEST(Runtime, FacadeRejectsWrongSizedRhs) {
  // The facade validates dimensions explicitly (PR 6 bugfix sweep);
  // asserts compile out in Release, so this must be a real check.
  RuntimeOptions opts;
  opts.threads = 1;
  opts.seed = 77;
  Runtime rt(opts);
  const auto g = pipeline_graph();
  LaplacianSolveOptions lopt;
  lopt.sparsify = pipeline_sparsify_options();
  EXPECT_THROW(rt.solve_laplacian(g, linalg::Vec(3, 0.0), lopt),
               std::invalid_argument);
  EXPECT_THROW(
      rt.solve_laplacian_many(g, linalg::DenseMatrix(3, 2), lopt),
      std::invalid_argument);
}

}  // namespace
}  // namespace bcclap
