#include "spanner/probabilistic_spanner.h"

#include <gtest/gtest.h>

#include <set>

#include "graph/generators.h"
#include "spanner/baswana_sen.h"
#include "spanner/cluster.h"
#include "support/fixtures.h"

namespace bcclap::spanner {
namespace {

using testsupport::bc_net;

struct Case {
  std::size_t n;
  double gp;      // graph density
  std::int64_t w; // max weight
  std::size_t k;
  double pe;      // edge existence probability
  std::uint64_t seed;
};

class ProbSpanner : public ::testing::TestWithParam<Case> {};

TEST_P(ProbSpanner, OutputIsSpannerOfSurvivingGraph) {
  const Case c = GetParam();
  rng::Stream gstream(c.seed);
  const auto g = graph::random_connected_gnp(c.n, c.gp, c.w, gstream);
  auto net = bc_net(g);

  rng::Stream edges(c.seed ^ 0x1111);
  rng::Stream marks(c.seed ^ 0x2222);
  ProbabilisticSpannerOptions opt;
  opt.k = c.k;
  const ExistenceOracle oracle = [&](graph::EdgeId) {
    return edges.bernoulli(c.pe);
  };
  const auto res =
      spanner_with_probabilistic_edges(g, opt, oracle, marks, net);

  // Lemma 3.1: S = (V, F+) is a (2k-1)-spanner of (V, F+ u E'') for any
  // E'' of undecided edges; take E'' = all undecided edges.
  std::set<graph::EdgeId> decided(res.f_plus.begin(), res.f_plus.end());
  decided.insert(res.f_minus.begin(), res.f_minus.end());
  graph::Graph survivors(g.num_vertices());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    if (!decided.count(e) ||
        std::count(res.f_plus.begin(), res.f_plus.end(), e)) {
      const auto& ed = g.edge(e);
      survivors.add_edge(ed.u, ed.v, ed.weight);
    }
  }
  // Map spanner edges into the survivors graph.
  std::vector<graph::EdgeId> mapped;
  for (graph::EdgeId e : res.f_plus) {
    const auto& ed = g.edge(e);
    const auto found = survivors.find_edge(ed.u, ed.v);
    ASSERT_TRUE(found.has_value());
    mapped.push_back(*found);
  }
  EXPECT_TRUE(verify_stretch(survivors, mapped,
                             static_cast<double>(2 * c.k - 1)));
  // The implicit-communication claim (Section 3.1): every neighbour's
  // deduced F-set matches the decider's.
  EXPECT_TRUE(res.deduction_consistent);
  // F+ and F- are disjoint.
  for (graph::EdgeId e : res.f_plus) {
    EXPECT_EQ(std::count(res.f_minus.begin(), res.f_minus.end(), e), 0);
  }
  EXPECT_GT(res.rounds, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ProbSpanner,
    ::testing::Values(Case{16, 0.4, 1, 2, 1.0, 1}, Case{16, 0.4, 1, 2, 0.5, 2},
                      Case{24, 0.3, 6, 3, 0.25, 3},
                      Case{24, 0.3, 6, 3, 1.0, 4},
                      Case{32, 0.2, 4, 2, 0.75, 5},
                      Case{32, 0.2, 4, 4, 0.5, 6},
                      Case{20, 0.6, 9, 3, 0.1, 7},
                      Case{40, 0.15, 2, 3, 0.5, 8}));

TEST(ProbSpanner, ProbabilityOneNeverDeletes) {
  rng::Stream gstream(31);
  const auto g = graph::random_connected_gnp(25, 0.3, 5, gstream);
  auto net = bc_net(g);
  rng::Stream marks(32);
  ProbabilisticSpannerOptions opt;
  opt.k = 3;
  const ExistenceOracle always = [](graph::EdgeId) { return true; };
  const auto res = spanner_with_probabilistic_edges(g, opt, always, marks, net);
  EXPECT_TRUE(res.f_minus.empty());
  EXPECT_TRUE(res.deduction_consistent);
  EXPECT_TRUE(verify_stretch(g, res.f_plus, 5.0));
}

TEST(ProbSpanner, ProbabilityZeroAddsNothing) {
  rng::Stream gstream(41);
  const auto g = graph::random_connected_gnp(20, 0.3, 3, gstream);
  auto net = bc_net(g);
  rng::Stream marks(42);
  ProbabilisticSpannerOptions opt;
  opt.k = 2;
  const ExistenceOracle never = [](graph::EdgeId) { return false; };
  const auto res = spanner_with_probabilistic_edges(g, opt, never, marks, net);
  EXPECT_TRUE(res.f_plus.empty());
  EXPECT_TRUE(res.deduction_consistent);
}

TEST(ProbSpanner, RespectsAvailabilityMask) {
  rng::Stream gstream(51);
  const auto g = graph::random_connected_gnp(20, 0.4, 3, gstream);
  auto net = bc_net(g);
  rng::Stream marks(52);
  ProbabilisticSpannerOptions opt;
  opt.k = 2;
  opt.available.assign(g.num_edges(), true);
  // Exclude even edge ids.
  for (std::size_t e = 0; e < g.num_edges(); e += 2) opt.available[e] = false;
  const ExistenceOracle always = [](graph::EdgeId) { return true; };
  const auto res = spanner_with_probabilistic_edges(g, opt, always, marks, net);
  for (graph::EdgeId e : res.f_plus) EXPECT_EQ(e % 2, 1u);
  for (graph::EdgeId e : res.f_minus) EXPECT_EQ(e % 2, 1u);
}

TEST(ProbSpanner, OracleCalledAtMostOncePerEdge) {
  rng::Stream gstream(61);
  const auto g = graph::random_connected_gnp(24, 0.4, 4, gstream);
  auto net = bc_net(g);
  rng::Stream marks(62);
  rng::Stream edges(63);
  std::vector<int> calls(g.num_edges(), 0);
  ProbabilisticSpannerOptions opt;
  opt.k = 3;
  const ExistenceOracle oracle = [&](graph::EdgeId e) {
    ++calls[e];
    return edges.bernoulli(0.5);
  };
  (void)spanner_with_probabilistic_edges(g, opt, oracle, marks, net);
  for (int c : calls) EXPECT_LE(c, 1);
}

TEST(ProbSpanner, OrientationCoversAllSpannerEdges) {
  rng::Stream gstream(71);
  const auto g = graph::random_connected_gnp(30, 0.3, 2, gstream);
  auto net = bc_net(g);
  rng::Stream marks(72);
  ProbabilisticSpannerOptions opt;
  opt.k = 3;
  const ExistenceOracle always = [](graph::EdgeId) { return true; };
  const auto res = spanner_with_probabilistic_edges(g, opt, always, marks, net);
  ASSERT_EQ(res.f_plus.size(), res.out_vertex.size());
  for (std::size_t i = 0; i < res.f_plus.size(); ++i) {
    const auto& ed = g.edge(res.f_plus[i]);
    EXPECT_TRUE(res.out_vertex[i] == ed.u || res.out_vertex[i] == ed.v);
  }
  const auto deg = out_degrees(g.num_vertices(), res.out_vertex);
  std::size_t total = 0;
  for (auto d : deg) total += d;
  EXPECT_EQ(total, res.f_plus.size());
}

TEST(ProbSpanner, RoundsScaleWithWeightBits) {
  // Lemma 3.2: the log W factor. Same graph topology, heavier weights.
  rng::Stream gstream(81);
  auto g1 = graph::random_connected_gnp(24, 0.3, 1, gstream);
  graph::Graph g2(g1.num_vertices());
  for (const auto& e : g1.edges()) {
    g2.add_edge(e.u, e.v, e.weight * (1 << 20));
  }
  const ExistenceOracle always = [](graph::EdgeId) { return true; };
  ProbabilisticSpannerOptions opt;
  opt.k = 3;
  auto net1 = bc_net(g1);
  rng::Stream marks1(82);
  const auto r1 =
      spanner_with_probabilistic_edges(g1, opt, always, marks1, net1);
  auto net2 = bc_net(g2);
  rng::Stream marks2(82);
  const auto r2 =
      spanner_with_probabilistic_edges(g2, opt, always, marks2, net2);
  EXPECT_GT(r2.rounds, r1.rounds);
}

}  // namespace
}  // namespace bcclap::spanner
