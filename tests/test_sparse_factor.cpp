// PR 6 sparse-first factorization stack: CSC symmetric storage, the
// sparse LDL^T factor with its dense Schur tail, the dense/sparse
// dispatch inside LaplacianFactor / ComponentLaplacianFactor, and the
// determinism contract (byte-identical at any thread count) extended to
// the sparse path. Runs under the `runtime` ctest label so CI's TSan
// rerun covers the Schur-band and panel fan-outs.
#include "linalg/sparse_ldlt.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/runtime.h"
#include "graph/generators.h"
#include "graph/laplacian.h"
#include "linalg/cholesky.h"
#include "linalg/vector_ops.h"
#include "support/comparators.h"
#include "support/fixtures.h"

namespace bcclap::linalg {
namespace {

using testsupport::test_context;

// Pins the process-wide dispatch mode for one test body and restores the
// previous mode on every exit path.
class ModeGuard {
 public:
  explicit ModeGuard(FactorMode mode) : prev_(factor_mode()) {
    set_factor_mode(mode);
  }
  ~ModeGuard() { set_factor_mode(prev_); }
  ModeGuard(const ModeGuard&) = delete;
  ModeGuard& operator=(const ModeGuard&) = delete;

 private:
  FactorMode prev_;
};

Vec gaussian(std::size_t n, std::uint64_t seed) {
  rng::Stream stream(seed);
  Vec b(n);
  for (auto& v : b) v = stream.next_gaussian();
  return b;
}

DenseMatrix gaussian_panel(std::size_t n, std::size_t k, std::uint64_t seed) {
  rng::Stream stream(seed);
  DenseMatrix b(n, k);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) b(i, j) = stream.next_gaussian();
  return b;
}

graph::Graph star_graph(std::size_t n) {
  graph::Graph g(n);
  for (std::size_t v = 1; v < n; ++v)
    g.add_edge(0, v, 1.0 + static_cast<double>(v % 3));
  return g;
}

// The equivalence fixtures: one representative of each structure the
// ordering/symbolic phases treat differently (chain, hub, expander-ish,
// grid). All large enough that kAuto would route them to the sparse path.
std::vector<std::pair<const char*, graph::Graph>> equivalence_graphs() {
  std::vector<std::pair<const char*, graph::Graph>> out;
  out.emplace_back("path", graph::path(500));
  out.emplace_back("star", star_graph(450));
  rng::Stream reg(91);
  out.emplace_back("regularish", graph::random_regularish(600, 8, 4, reg));
  rng::Stream gr(92);
  out.emplace_back("grid", graph::grid(22, 23, 3, gr));
  return out;
}

TEST(CscSymmetricMatrix, TripletBuildDropsLowerAndCoalesces) {
  // [[4, 1, 0], [1, 3, 2], [0, 2, 5]] given redundantly: both triangles
  // plus a duplicate (0,1) entry split in halves.
  std::vector<Triplet> t = {
      {0, 0, 4.0}, {0, 1, 0.5}, {1, 0, 0.5}, {1, 1, 3.0},
      {1, 2, 2.0}, {2, 1, 2.0}, {2, 2, 5.0}, {0, 1, 0.5},
  };
  const CscSymmetricMatrix a(3, std::move(t));
  EXPECT_EQ(a.dim(), 3u);
  EXPECT_EQ(a.nnz(), 5u);  // upper triangle only, duplicates merged
  const auto d = a.to_dense();
  EXPECT_EQ(d(0, 0), 4.0);
  EXPECT_EQ(d(0, 1), 1.0);  // 0.5 + 0.5 + the mirrored copy dropped
  EXPECT_EQ(d(1, 0), 1.0);
  EXPECT_EQ(d(1, 2), 2.0);
  EXPECT_EQ(d(0, 2), 0.0);
  const Vec y = a.multiply(Vec{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(y[0], 4.0 + 2.0);
  EXPECT_DOUBLE_EQ(y[1], 1.0 + 6.0 + 6.0);
  EXPECT_DOUBLE_EQ(y[2], 4.0 + 15.0);
}

TEST(CscSymmetricMatrix, FromCsrKeepsDuplicatesAndDropsTrailing) {
  // Path-3 Laplacian with every entry split into two duplicate halves (the
  // external-ingest shape test_cholesky.cpp covers on the dense path).
  const auto split = CsrMatrix::from_raw(
      3, 3, {0, 4, 10, 14},
      {0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 1, 1, 2, 2},
      {0.5, 0.5, -0.5, -0.5, -0.5, -0.5, 1.0, 1.0, -0.5, -0.5, -0.5, -0.5,
       0.5, 0.5});
  const auto full = CscSymmetricMatrix::from_symmetric_csr(split);
  const auto df = full.to_dense();
  EXPECT_DOUBLE_EQ(df(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(df(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(df(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(df(2, 2), 1.0);
  // drop_trailing = 1 is the grounding used by the Laplacian front ends.
  const auto grounded = CscSymmetricMatrix::from_symmetric_csr(split, 1);
  EXPECT_EQ(grounded.dim(), 2u);
  const auto dg = grounded.to_dense();
  EXPECT_DOUBLE_EQ(dg(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(dg(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(dg(1, 1), 2.0);
}

TEST(CscSymmetricMatrix, LaplacianCscMatchesCsrLaplacian) {
  rng::Stream gstream(7);
  const auto g = graph::random_connected_gnp(40, 0.2, 6, gstream);
  const auto csr = graph::laplacian(g);
  const auto csc = graph::laplacian_csc(g);
  ASSERT_EQ(csc.dim(), g.num_vertices());
  const auto dense = csc.to_dense();
  for (std::size_t i = 0; i < csr.rows(); ++i) {
    for (std::size_t k = csr.row_ptr()[i]; k < csr.row_ptr()[i + 1]; ++k) {
      EXPECT_DOUBLE_EQ(dense(i, csr.col_index()[k]), csr.values()[k]);
    }
  }
  // Same quadratic form on a random vector.
  const Vec x = gaussian(g.num_vertices(), 11);
  const Vec a = csc.multiply(x);
  const Vec b = csr.multiply(test_context(), x);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(a[i], b[i], 1e-12);
}

TEST(SparseLdlt, MatchesDenseOnEquivalenceGraphs) {
  for (auto& [name, g] : equivalence_graphs()) {
    const auto lap = graph::laplacian(g);
    std::optional<LaplacianFactor> fs, fd;
    {
      ModeGuard guard(FactorMode::kForceSparse);
      fs = LaplacianFactor::factor(test_context(), lap);
    }
    {
      ModeGuard guard(FactorMode::kForceDense);
      fd = LaplacianFactor::factor(test_context(), lap);
    }
    ASSERT_TRUE(fs) << name;
    ASSERT_TRUE(fd) << name;
    EXPECT_EQ(fs->path(), FactorKind::kSparse) << name;
    EXPECT_EQ(fd->path(), FactorKind::kDense) << name;
    const Vec b = [&] {
      Vec v = gaussian(g.num_vertices(), 101);
      remove_mean(v);
      return v;
    }();
    const Vec xs = fs->solve(b);
    const Vec xd = fd->solve(b);
    ASSERT_EQ(xs.size(), xd.size());
    const double scale = norm2(xd) + 1.0;
    for (std::size_t i = 0; i < xs.size(); ++i)
      EXPECT_NEAR(xs[i], xd[i], 1e-8 * scale) << name << " i=" << i;
    // And the sparse solution actually solves the system.
    const Vec r = sub(lap.multiply(test_context(), xs), b);
    EXPECT_LT(norm2(r), 1e-8 * (norm2(b) + 1.0)) << name;
  }
}

TEST(SparseLdlt, ComponentFactorMatchesDenseOnDisconnectedInput) {
  // Two mid-size components plus a singleton; force-sparse routes even
  // the small blocks through the sparse factor (pure dense-tail there).
  graph::Graph g(451);
  const auto part = graph::path(200);
  for (const auto& e : part.edges()) g.add_edge(e.u, e.v, e.weight);
  rng::Stream gstream(13);
  const auto part2 = graph::random_regularish(250, 6, 3, gstream);
  for (const auto& e : part2.edges())
    g.add_edge(200 + e.u, 200 + e.v, e.weight);
  const auto lap = graph::laplacian(g);  // vertex 450: singleton

  std::optional<ComponentLaplacianFactor> fs, fd;
  {
    ModeGuard guard(FactorMode::kForceSparse);
    fs = ComponentLaplacianFactor::factor(test_context(), lap);
  }
  {
    ModeGuard guard(FactorMode::kForceDense);
    fd = ComponentLaplacianFactor::factor(test_context(), lap);
  }
  ASSERT_TRUE(fs);
  ASSERT_TRUE(fd);
  EXPECT_EQ(fs->num_components(), 3u);
  EXPECT_EQ(fs->sparse_factor_count(), 2u);
  EXPECT_EQ(fs->dense_factor_count(), 0u);
  EXPECT_EQ(fd->dense_factor_count(), 2u);
  EXPECT_EQ(fd->sparse_factor_count(), 0u);

  const Vec b = gaussian(451, 17);
  const Vec xs = fs->solve(test_context(), b);
  const Vec xd = fd->solve(test_context(), b);
  const double scale = norm2(xd) + 1.0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    EXPECT_NEAR(xs[i], xd[i], 1e-8 * scale) << i;
  EXPECT_EQ(xs[450], 0.0);  // singleton row of the pseudoinverse
}

TEST(SparseLdlt, DuplicateCsrEntriesAccumulate) {
  // Duplicate-entry CSR ingest through the forced sparse path must agree
  // with the clean path-graph reference (the dense path's contract).
  const auto split = CsrMatrix::from_raw(
      3, 3, {0, 4, 10, 14},
      {0, 0, 1, 1, 0, 0, 1, 1, 2, 2, 1, 1, 2, 2},
      {0.5, 0.5, -0.5, -0.5, -0.5, -0.5, 1.0, 1.0, -0.5, -0.5, -0.5, -0.5,
       0.5, 0.5});
  ModeGuard guard(FactorMode::kForceSparse);
  const auto f = LaplacianFactor::factor(test_context(), split);
  const auto ref = LaplacianFactor::factor(test_context(),
                                           graph::laplacian(graph::path(3)));
  ASSERT_TRUE(f);
  ASSERT_TRUE(ref);
  const Vec b{1.0, 0.0, -1.0};
  const Vec x = f->solve(b);
  const Vec xr = ref->solve(b);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(x[i], xr[i], 1e-12);
}

TEST(SparseLdlt, SolveManyIsBitwiseEqualToColumnSolves) {
  for (auto& [name, g] : equivalence_graphs()) {
    const auto lap = graph::laplacian(g);
    std::optional<LaplacianFactor> f;
    {
      ModeGuard guard(FactorMode::kForceSparse);
      f = LaplacianFactor::factor(test_context(), lap);
    }
    ASSERT_TRUE(f) << name;
    const auto b = gaussian_panel(g.num_vertices(), 7, 211);
    const auto x = f->solve_many(test_context(), b);
    ASSERT_EQ(x.cols(), 7u);
    for (std::size_t j = 0; j < b.cols(); ++j) {
      const Vec xj = f->solve(b.column(j));
      const Vec pj = x.column(j);
      ASSERT_EQ(xj.size(), pj.size());
      for (std::size_t i = 0; i < xj.size(); ++i)
        EXPECT_EQ(xj[i], pj[i]) << name << " col " << j << " row " << i;
    }
    // Degenerate panel: k = 0 round-trips shape without dispatch.
    EXPECT_EQ(f->solve_many(test_context(),
                            DenseMatrix(g.num_vertices(), 0)).cols(), 0u);
  }
}

TEST(SparseLdlt, FactorAndSolveAreThreadCountInvariant) {
  // The determinism contract of ROADMAP "Determinism as a feature",
  // extended to the sparse path: ordering/symbolic/numeric are
  // sequential, Schur bands and panel columns write disjointly, so 1
  // worker and 4 workers agree bitwise.
  rng::Stream gstream(41);
  const auto g = graph::random_regularish(700, 8, 5, gstream);
  const auto lap = graph::laplacian(g);
  const auto b = gaussian_panel(700, 5, 43);
  const auto run = [&](std::size_t threads) {
    RuntimeOptions opts;
    opts.threads = threads;
    opts.seed = 3;
    Runtime rt(opts);
    ModeGuard guard(FactorMode::kForceSparse);
    const auto f = LaplacianFactor::factor(rt.context(), lap);
    EXPECT_TRUE(f);
    if (!f) return DenseMatrix(0, 0);
    EXPECT_EQ(f->path(), FactorKind::kSparse);
    return f->solve_many(rt.context(), b);
  };
  const auto one = run(1);
  const auto four = run(4);
  ASSERT_EQ(one.rows(), four.rows());
  ASSERT_EQ(one.cols(), four.cols());
  for (std::size_t i = 0; i < one.rows(); ++i)
    for (std::size_t j = 0; j < one.cols(); ++j)
      EXPECT_EQ(one(i, j), four(i, j)) << i << "," << j;
}

TEST(SparseLdlt, RejectsDegenerateInputs) {
  const auto ctx = test_context();
  // Empty and all-zero matrices: same contract as the dense kernel.
  EXPECT_FALSE(SparseLdltFactor::factor(ctx, CscSymmetricMatrix(0, {})));
  EXPECT_FALSE(SparseLdltFactor::factor(ctx, CscSymmetricMatrix(3, {})));
  // Indefinite 2x2 (eigenvalues 3, -1) must fail in the tail pivot check.
  std::vector<Triplet> t = {
      {0, 0, 1.0}, {0, 1, 2.0}, {1, 1, 1.0}};
  EXPECT_FALSE(SparseLdltFactor::factor(ctx, CscSymmetricMatrix(2,
                                                                std::move(t))));
}

TEST(SparseLdlt, FactorModeParserFlagsUnrecognizedValues) {
  // The parser recognizes exactly the documented BCCLAP_FACTOR_PATH
  // values; anything else is flagged so env_factor_mode warns instead of
  // silently treating a misspelling as kAuto.
  bool recognized = false;
  EXPECT_EQ(parse_factor_mode("dense", &recognized), FactorMode::kForceDense);
  EXPECT_TRUE(recognized);
  EXPECT_EQ(parse_factor_mode("sparse", &recognized), FactorMode::kForceSparse);
  EXPECT_TRUE(recognized);
  EXPECT_EQ(parse_factor_mode("auto", &recognized), FactorMode::kAuto);
  EXPECT_TRUE(recognized);
  recognized = true;
  EXPECT_EQ(parse_factor_mode("Dense", &recognized), FactorMode::kAuto);
  EXPECT_FALSE(recognized);
  recognized = true;
  EXPECT_EQ(parse_factor_mode("", &recognized), FactorMode::kAuto);
  EXPECT_FALSE(recognized);
  // Absent (nullptr) is not a misspelling: kAuto, recognized.
  recognized = false;
  EXPECT_EQ(parse_factor_mode(nullptr, &recognized), FactorMode::kAuto);
  EXPECT_TRUE(recognized);
}

TEST(SparseLdlt, ExplicitModeOverridesDensityHeuristic) {
  // The per-request overload pins a backend without touching process
  // state — the seam the engine registry's exact-* keys dispatch through.
  const std::size_t dim = kSparseMinDim;
  EXPECT_TRUE(sparse_path_selected(dim, 3 * dim, FactorMode::kAuto));
  EXPECT_FALSE(sparse_path_selected(dim, dim * dim, FactorMode::kAuto));
  EXPECT_FALSE(sparse_path_selected(dim, 3 * dim, FactorMode::kForceDense));
  EXPECT_TRUE(sparse_path_selected(2, 4, FactorMode::kForceSparse));
  EXPECT_EQ(factor_mode(), FactorMode::kAuto);  // process state untouched
}

TEST(SparseLdlt, AutoDispatchFollowsDimAndDensity) {
  ASSERT_EQ(factor_mode(), FactorMode::kAuto);
  // Below the dimension bar: dense regardless of sparsity.
  EXPECT_FALSE(sparse_path_selected(kSparseMinDim - 1, 10));
  // Above the bar and sparse: sparse path.
  EXPECT_TRUE(sparse_path_selected(kSparseMinDim, 3 * kSparseMinDim));
  // Above the bar but dense: stays on the dense kernel.
  EXPECT_FALSE(sparse_path_selected(1000, 1000 * 900));
  {
    ModeGuard guard(FactorMode::kForceSparse);
    EXPECT_TRUE(sparse_path_selected(2, 4));
  }
  {
    ModeGuard guard(FactorMode::kForceDense);
    EXPECT_FALSE(sparse_path_selected(100000, 100000));
  }
  // The n=256 bench anchors must stay dense under kAuto so historical
  // fingerprints remain byte-identical (PR 6 acceptance criterion).
  EXPECT_FALSE(sparse_path_selected(255, 255 * 17));
}

TEST(SparseLdlt, AutoPathSelectsSparseForLargeSparseLaplacian) {
  rng::Stream gstream(53);
  const auto g = graph::random_regularish(600, 8, 4, gstream);
  ASSERT_EQ(factor_mode(), FactorMode::kAuto);
  const auto f =
      LaplacianFactor::factor(test_context(), graph::laplacian(g));
  ASSERT_TRUE(f);
  EXPECT_EQ(f->path(), FactorKind::kSparse);
  // Small graphs keep the dense kernel under kAuto.
  const auto fsmall = LaplacianFactor::factor(
      test_context(), graph::laplacian(graph::path(100)));
  ASSERT_TRUE(fsmall);
  EXPECT_EQ(fsmall->path(), FactorKind::kDense);
}

TEST(SparseLdlt, RunStatsReportFactorBackend) {
  // The facade surfaces which backend the preconditioner factorization
  // ran on; at n=600 regularish under kAuto that must be the sparse path.
  rng::Stream gstream(59);
  const auto g = graph::random_regularish(600, 8, 4, gstream);
  RuntimeOptions opts;
  opts.threads = 2;
  opts.seed = 71;
  Runtime rt(opts);
  LaplacianSolveOptions lopt;
  lopt.eps = 1e-4;
  lopt.sparsify = testsupport::small_sparsify_options(0.5, 2, 2);
  linalg::Vec b(g.num_vertices(), 0.0);
  b[0] = 1.0;
  b[599] = -1.0;
  const auto run = rt.solve_laplacian(g, b, lopt);
  ASSERT_TRUE(run.usable);
  EXPECT_GE(run.stats.sparse_factors, 1u);
  EXPECT_EQ(run.stats.dense_factors, 0u);
}

// Wrong-sized right-hand sides on the public solve surface must fail
// loudly in Release builds, not read out of bounds (PR 6 satellite).
TEST(SparseLdlt, PublicSolveSurfaceValidatesDimensions) {
  const auto ctx = test_context();
  rng::Stream mstream(61);
  const auto a = testsupport::random_spd(8, mstream);
  const auto dense = LdltFactor::factor(ctx, a);
  ASSERT_TRUE(dense);
  EXPECT_THROW(dense->solve(Vec(7, 0.0)), std::invalid_argument);
  EXPECT_THROW(dense->solve_many(ctx, DenseMatrix(9, 2)),
               std::invalid_argument);

  const auto lap = graph::laplacian(graph::path(6));
  const auto lf = LaplacianFactor::factor(ctx, lap);
  ASSERT_TRUE(lf);
  EXPECT_THROW(lf->solve(Vec(5, 0.0)), std::invalid_argument);
  EXPECT_THROW(lf->solve_many(ctx, DenseMatrix(7, 1)), std::invalid_argument);

  const auto cf = ComponentLaplacianFactor::factor(ctx, lap);
  ASSERT_TRUE(cf);
  EXPECT_THROW(cf->solve(ctx, Vec(5, 0.0)), std::invalid_argument);
  EXPECT_THROW(cf->solve_many(ctx, DenseMatrix(5, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace bcclap::linalg
