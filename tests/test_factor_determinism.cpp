// 1-vs-N-thread byte-identity for the PR 3 parallel factorization stack:
// the blocked LDLT (panel + trailing-tile fan-out), the per-component
// Laplacian factor, and the spanner's pure-oracle sampling fast path the
// sparsifier rides on. These complement test_network_determinism.cpp: the
// network contract says traffic is thread-count invariant; this suite says
// the *numerics* are — factors and solutions compare bitwise, not within
// tolerance.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "core/runtime.h"
#include "graph/generators.h"
#include "graph/laplacian.h"
#include "linalg/cholesky.h"
#include "spanner/probabilistic_spanner.h"
#include "sparsify/spectral_sparsify.h"
#include "support/fixtures.h"

namespace bcclap {
namespace {

// Runs fn with a context drawn from a dedicated `threads`-worker Runtime —
// the scoped replacement for the retired process-wide thread override.
// The pool dies with the Runtime, so suite order does not matter.
template <typename Fn>
auto with_threads(std::size_t threads, Fn&& fn) {
  RuntimeOptions opts;
  opts.threads = threads;
  Runtime rt(opts);
  return fn(rt.context());
}

void expect_bitwise_equal(const linalg::Vec& a, const linalg::Vec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]) << i;
}

TEST(FactorDeterminism, BlockedLdltIsThreadCountInvariant) {
  // n = 200 spans four 64-wide block columns, so every panel and trailing
  // tile shape occurs. The factor is observed through solves against
  // several right-hand sides (solve itself is sequential, so bitwise-equal
  // solutions mean bitwise-equal factors).
  const std::size_t n = 200;
  const auto run = [&](std::size_t threads) {
    return with_threads(threads, [&](const common::Context& ctx) {
      rng::Stream stream(41);
      const auto a = testsupport::random_spd(n, stream);
      const auto f = linalg::LdltFactor::factor(ctx, a);
      EXPECT_TRUE(f);
      std::vector<linalg::Vec> solutions;
      if (!f) return solutions;  // EXPECT above reports; avoid bad deref
      for (int trial = 0; trial < 3; ++trial) {
        solutions.push_back(f->solve(testsupport::gaussian_vector(n, stream)));
      }
      return solutions;
    });
  };
  const auto one = run(1);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    const auto many = run(threads);
    ASSERT_EQ(one.size(), many.size());
    for (std::size_t i = 0; i < one.size(); ++i)
      expect_bitwise_equal(one[i], many[i]);
  }
}

TEST(FactorDeterminism, ComponentFactorIsThreadCountInvariant) {
  // Three unevenly-sized components plus a singleton: the per-component
  // fan-out must not let scheduling order leak into the factors.
  const auto build = [] {
    rng::Stream gstream(17);
    graph::Graph g(91);
    const auto add_shifted = [&g](const graph::Graph& part,
                                  std::size_t offset) {
      for (std::size_t e = 0; e < part.num_edges(); ++e) {
        const auto& ed = part.edge(e);
        g.add_edge(ed.u + offset, ed.v + offset, ed.weight);
      }
    };
    add_shifted(graph::random_connected_gnp(40, 0.2, 8, gstream), 0);
    add_shifted(graph::random_connected_gnp(30, 0.3, 5, gstream), 40);
    add_shifted(graph::path(20), 70);  // vertex 90: singleton
    return g;
  };
  const auto run = [&](std::size_t threads) {
    return with_threads(threads, [&](const common::Context& ctx) {
      const auto g = build();
      const auto f =
          linalg::ComponentLaplacianFactor::factor(ctx, graph::laplacian(g));
      EXPECT_TRUE(f);
      if (!f) return linalg::Vec{};  // EXPECT above reports; avoid bad deref
      EXPECT_EQ(f->num_components(), 4u);
      rng::Stream rhs(5);
      return f->solve(ctx, testsupport::gaussian_vector(91, rhs));
    });
  };
  const auto one = run(1);
  for (const std::size_t threads : {2u, 4u}) {
    expect_bitwise_equal(one, run(threads));
  }
}

TEST(FactorDeterminism, PureOracleFastPathMatchesSequentialWalk) {
  // The same pure oracle driven through both phase-B strategies — the
  // pinned sequential node walk and the parallel fast path — must yield
  // identical spanner output. Run under 4 workers so the fast path
  // actually fans out.
  rng::Stream gstream(7);
  const auto g = graph::random_connected_gnp(32, 0.3, 6, gstream);
  const auto run = [&](bool pure) {
    return with_threads(4, [&](const common::Context& ctx) {
      auto net = testsupport::bc_net(ctx, g);
      rng::Stream marks(3);
      const std::uint64_t base = rng::derive_seed(99, "pure-oracle-test");
      const spanner::ExistenceOracle oracle = [base](graph::EdgeId e) {
        rng::Stream s(rng::derive_seed(base, e));
        return s.next_double() < 0.5;
      };
      spanner::ProbabilisticSpannerOptions opt;
      opt.k = 3;
      opt.pure_oracle = pure;
      return spanner::spanner_with_probabilistic_edges(g, opt, oracle, marks,
                                                       net);
    });
  };
  const auto seq = run(false);
  const auto fast = run(true);
  EXPECT_EQ(seq.f_plus, fast.f_plus);
  EXPECT_EQ(seq.f_minus, fast.f_minus);
  EXPECT_EQ(seq.out_vertex, fast.out_vertex);
  EXPECT_EQ(seq.rounds, fast.rounds);
  EXPECT_TRUE(seq.deduction_consistent);
  EXPECT_TRUE(fast.deduction_consistent);
  // The run must have decided something for the comparison to mean much.
  EXPECT_FALSE(seq.f_plus.empty());
}

TEST(FactorDeterminism, SparsifierFastPathIsThreadCountInvariant) {
  // End-to-end: the sparsifier enables the pure-oracle fast path
  // internally; edges, orientations, weights and rounds must be
  // byte-identical at odd and even worker counts alike.
  rng::Stream gstream(33);
  const auto g = graph::complete(26, 4, gstream);
  const auto run = [&](std::size_t threads) {
    return with_threads(threads, [&](const common::Context& ctx) {
      auto net = testsupport::bc_net(ctx, g);
      return sparsify::spectral_sparsify(ctx.with_seed(1234), g,
                                         testsupport::small_sparsify_options(),
                                         net);
    });
  };
  const auto one = run(1);
  for (const std::size_t threads : {3u, 5u}) {
    const auto many = run(threads);
    EXPECT_EQ(one.rounds, many.rounds);
    EXPECT_EQ(one.original_edge, many.original_edge);
    EXPECT_EQ(one.out_vertex, many.out_vertex);
    ASSERT_EQ(one.sparsifier.num_edges(), many.sparsifier.num_edges());
    for (std::size_t e = 0; e < one.sparsifier.num_edges(); ++e) {
      EXPECT_EQ(one.sparsifier.edge(e).u, many.sparsifier.edge(e).u);
      EXPECT_EQ(one.sparsifier.edge(e).v, many.sparsifier.edge(e).v);
      EXPECT_EQ(one.sparsifier.edge(e).weight, many.sparsifier.edge(e).weight);
    }
  }
}

}  // namespace
}  // namespace bcclap
