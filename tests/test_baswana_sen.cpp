#include "spanner/baswana_sen.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "support/fixtures.h"

namespace bcclap::spanner {
namespace {

class BaswanaSenTest : public testsupport::SeededTest {};

struct Case {
  std::size_t n;
  double p;
  std::int64_t w;
  std::size_t k;
  std::uint64_t seed;
};

class BaswanaSenStretch : public ::testing::TestWithParam<Case> {};

TEST_P(BaswanaSenStretch, ProducesValidSpanner) {
  const Case c = GetParam();
  rng::Stream gstream(c.seed);
  const auto g = graph::random_connected_gnp(c.n, c.p, c.w, gstream);
  rng::Stream astream(c.seed ^ 0xabcdef);
  const auto res = baswana_sen(g, c.k, astream);
  EXPECT_TRUE(verify_stretch(g, res.spanner_edges,
                             static_cast<double>(2 * c.k - 1)));
  EXPECT_LE(res.spanner_edges.size(), g.num_edges());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BaswanaSenStretch,
    ::testing::Values(Case{20, 0.3, 1, 2, 1}, Case{20, 0.3, 1, 3, 2},
                      Case{40, 0.2, 8, 2, 3}, Case{40, 0.2, 8, 3, 4},
                      Case{60, 0.15, 5, 4, 5}, Case{30, 0.5, 10, 2, 6},
                      Case{30, 0.5, 10, 5, 7}, Case{50, 0.1, 3, 3, 8}));

TEST_F(BaswanaSenTest, SpannerSparsifiesDenseGraphs) {
  auto gstream = graphs();
  const auto g = graph::complete(60, 4, gstream);
  auto astream = stream("algo");
  const auto res = baswana_sen(g, 3, astream);
  // |F| = O(k n^{1+1/k}): for n=60, k=3 that's ~ 3*60^{4/3} ~ 700, far
  // below the 1770 edges of K60. Use a loose factor for randomness.
  EXPECT_LT(res.spanner_edges.size(), g.num_edges());
  EXPECT_LT(res.spanner_edges.size(), 1200u);
}

TEST_F(BaswanaSenTest, K1WouldBeWholeGraphSoPathIsPreserved) {
  // On a path, every edge is a bridge: any spanner must keep all edges.
  const auto g = graph::path(12);
  auto astream = stream("algo");
  const auto res = baswana_sen(g, 3, astream);
  EXPECT_EQ(res.spanner_edges.size(), g.num_edges());
}

TEST_F(BaswanaSenTest, DeterministicGivenStream) {
  auto gstream = graphs();
  const auto g = graph::random_connected_gnp(25, 0.3, 6, gstream);
  auto a1 = stream("algo"), a2 = stream("algo");
  const auto r1 = baswana_sen(g, 3, a1);
  const auto r2 = baswana_sen(g, 3, a2);
  EXPECT_EQ(r1.spanner_edges, r2.spanner_edges);
  EXPECT_EQ(r1.final_cluster, r2.final_cluster);
}

TEST(BaswanaSen, VerifyStretchDetectsBadSpanner) {
  // Missing bridge: not a spanner at any stretch.
  graph::Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 1.0);
  g.add_edge(2, 3, 1.0);
  EXPECT_FALSE(verify_stretch(g, {0, 2}, 100.0));
  EXPECT_TRUE(verify_stretch(g, {0, 1, 2}, 1.0));
}

}  // namespace
}  // namespace bcclap::spanner
