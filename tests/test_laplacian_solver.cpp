#include "laplacian/solver.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.h"
#include "linalg/vector_ops.h"
#include "support/comparators.h"
#include "support/fixtures.h"

namespace bcclap::laplacian {
namespace {

using testsupport::test_context;

sparsify::SparsifyOptions solver_opts() {
  return testsupport::small_sparsify_options(0.5, 2, 4);
}

class LaplacianSolverEps : public ::testing::TestWithParam<double> {};

TEST_P(LaplacianSolverEps, MeetsEnergyNormError) {
  const double eps = GetParam();
  rng::Stream gstream(17);
  const auto g = graph::complete(28, 5, gstream);
  SparsifiedLaplacianSolver solver(test_context(1234), g, solver_opts());

  rng::Stream bstream(18);
  const auto b = testsupport::zero_sum_gaussian(g.num_vertices(), bstream);

  SolveStats stats;
  const auto y = solver.solve(b, eps, &stats);
  const auto x = exact_laplacian_solve(test_context(), g, b);
  EXPECT_TRUE(testsupport::EnergyNormWithin(g, y, x, eps)) << "eps = " << eps;
  EXPECT_GT(stats.iterations, 0u);
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, LaplacianSolverEps,
                         ::testing::Values(0.5, 1e-2, 1e-4, 1e-6, 1e-8,
                                           1e-10));

TEST(LaplacianSolver, IterationCountIsLogOneOverEps) {
  // Corollary 2.4: O(log(1/eps)) iterations with kappa = 3.
  rng::Stream gstream(19);
  const auto g = graph::complete(24, 3, gstream);
  SparsifiedLaplacianSolver solver(test_context(55), g, solver_opts());
  linalg::Vec b(g.num_vertices(), 0.0);
  b[0] = 1.0;
  b[5] = -1.0;
  SolveStats s1, s2;
  solver.solve(b, 1e-2, &s1);
  solver.solve(b, 1e-8, &s2);
  // 4x more digits should cost ~4x iterations (linear in log(1/eps)).
  const double ratio =
      static_cast<double>(s2.iterations) / static_cast<double>(s1.iterations);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 8.0);
}

TEST(LaplacianSolver, PreprocessingVsInstanceRounds) {
  // Theorem 1.3's split: preprocessing dominates a single solve.
  rng::Stream gstream(23);
  const auto g = graph::complete(24, 3, gstream);
  SparsifiedLaplacianSolver solver(test_context(77), g, solver_opts());
  EXPECT_GT(solver.preprocessing_rounds(), 0);
  linalg::Vec b(g.num_vertices(), 0.0);
  b[1] = 1.0;
  b[2] = -1.0;
  SolveStats stats;
  solver.solve(b, 1e-6, &stats);
  EXPECT_GT(stats.rounds, 0);
  EXPECT_LT(stats.rounds, solver.preprocessing_rounds());
}

TEST(LaplacianSolver, SparsifierIsSparserOnDenseInput) {
  rng::Stream gstream(29);
  const auto g = graph::complete(64, 2, gstream);
  auto opt = solver_opts();
  opt.t = 1;  // single-spanner bundles so K64 actually compresses
  SparsifiedLaplacianSolver solver(test_context(91), g, opt);
  EXPECT_LT(solver.sparsifier().num_edges(), g.num_edges());
}

TEST(LaplacianSolver, WorksOnSparseGraphs) {
  rng::Stream gstream(31);
  const auto g = graph::random_connected_gnp(30, 0.15, 4, gstream);
  SparsifiedLaplacianSolver solver(test_context(101), g, solver_opts());
  rng::Stream bstream(32);
  const auto b = testsupport::zero_sum_gaussian(g.num_vertices(), bstream);
  const auto y = solver.solve(b, 1e-8);
  const auto x = exact_laplacian_solve(test_context(), g, b);
  EXPECT_TRUE(testsupport::EnergyNormWithin(g, y, x, 1e-8));
}

TEST(LaplacianSolver, NonZeroMeanRhsIsProjected) {
  rng::Stream gstream(37);
  const auto g = graph::complete(16, 1, gstream);
  SparsifiedLaplacianSolver solver(test_context(111), g, solver_opts());
  linalg::Vec b(16, 1.0);  // pure kernel component
  b[0] = 2.0;
  const auto y = solver.solve(b, 1e-8);
  linalg::Vec proj = b;
  linalg::remove_mean(proj);
  const auto x = exact_laplacian_solve(test_context(), g, proj);
  EXPECT_LE(laplacian_norm(test_context(), g, linalg::sub(x, y)),
            1e-7 * (laplacian_norm(test_context(), g, x) + 1.0));
}

TEST(ExactLaplacianSolver, OneAndTwoVertexGraphs) {
  // PR 6 bugfix sweep: a 1-node graph must be usable (L = 0, x = 0), not
  // a null deref behind a failed factorization.
  const ExactLaplacianSolver one(test_context(), graph::Graph(1));
  ASSERT_TRUE(one.usable());
  EXPECT_EQ(one.factor_path(), linalg::FactorKind::kNone);
  const auto x1 = one.solve(linalg::Vec{3.0});
  ASSERT_EQ(x1.size(), 1u);
  EXPECT_EQ(x1[0], 0.0);
  EXPECT_EQ(one.solve_many(linalg::DenseMatrix(1, 2)).cols(), 2u);

  graph::Graph g2(2);
  g2.add_edge(0, 1, 4.0);
  const ExactLaplacianSolver two(test_context(), g2);
  ASSERT_TRUE(two.usable());
  EXPECT_EQ(two.factor_path(), linalg::FactorKind::kDense);
  const auto x2 = two.solve(linalg::Vec{1.0, -1.0});
  EXPECT_NEAR(x2[0] - x2[1], 0.25, 1e-12);
}

TEST(LaplacianSolver, OneAndTwoVertexGraphs) {
  // The sparsifier-preconditioned path through the same degenerate sizes.
  const graph::Graph one(1);
  SparsifiedLaplacianSolver s1(test_context(7), one, solver_opts());
  ASSERT_TRUE(s1.usable());
  const auto x1 = s1.solve(linalg::Vec{5.0}, 1e-8);
  ASSERT_EQ(x1.size(), 1u);
  EXPECT_EQ(x1[0], 0.0);

  graph::Graph two(2);
  two.add_edge(0, 1, 2.0);
  SparsifiedLaplacianSolver s2(test_context(8), two, solver_opts());
  ASSERT_TRUE(s2.usable());
  const auto x2 = s2.solve(linalg::Vec{1.0, -1.0}, 1e-10);
  EXPECT_NEAR(x2[0] - x2[1], 0.5, 1e-8);
}

TEST(LaplacianSolver, RejectsWrongSizedRhs) {
  rng::Stream gstream(43);
  const auto g = graph::complete(12, 2, gstream);
  SparsifiedLaplacianSolver solver(test_context(9), g, solver_opts());
  ASSERT_TRUE(solver.usable());
  EXPECT_THROW(solver.solve(linalg::Vec(5, 0.0), 1e-6),
               std::invalid_argument);
  EXPECT_THROW(solver.solve_many(linalg::DenseMatrix(5, 2), 1e-6),
               std::invalid_argument);
}

}  // namespace
}  // namespace bcclap::laplacian
