#include "laplacian/solver.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "linalg/vector_ops.h"
#include "support/comparators.h"
#include "support/fixtures.h"

namespace bcclap::laplacian {
namespace {

using testsupport::test_context;

sparsify::SparsifyOptions solver_opts() {
  return testsupport::small_sparsify_options(0.5, 2, 4);
}

class LaplacianSolverEps : public ::testing::TestWithParam<double> {};

TEST_P(LaplacianSolverEps, MeetsEnergyNormError) {
  const double eps = GetParam();
  rng::Stream gstream(17);
  const auto g = graph::complete(28, 5, gstream);
  SparsifiedLaplacianSolver solver(test_context(1234), g, solver_opts());

  rng::Stream bstream(18);
  const auto b = testsupport::zero_sum_gaussian(g.num_vertices(), bstream);

  SolveStats stats;
  const auto y = solver.solve(b, eps, &stats);
  const auto x = exact_laplacian_solve(test_context(), g, b);
  EXPECT_TRUE(testsupport::EnergyNormWithin(g, y, x, eps)) << "eps = " << eps;
  EXPECT_GT(stats.iterations, 0u);
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, LaplacianSolverEps,
                         ::testing::Values(0.5, 1e-2, 1e-4, 1e-6, 1e-8,
                                           1e-10));

TEST(LaplacianSolver, IterationCountIsLogOneOverEps) {
  // Corollary 2.4: O(log(1/eps)) iterations with kappa = 3.
  rng::Stream gstream(19);
  const auto g = graph::complete(24, 3, gstream);
  SparsifiedLaplacianSolver solver(test_context(55), g, solver_opts());
  linalg::Vec b(g.num_vertices(), 0.0);
  b[0] = 1.0;
  b[5] = -1.0;
  SolveStats s1, s2;
  solver.solve(b, 1e-2, &s1);
  solver.solve(b, 1e-8, &s2);
  // 4x more digits should cost ~4x iterations (linear in log(1/eps)).
  const double ratio =
      static_cast<double>(s2.iterations) / static_cast<double>(s1.iterations);
  EXPECT_GT(ratio, 1.5);
  EXPECT_LT(ratio, 8.0);
}

TEST(LaplacianSolver, PreprocessingVsInstanceRounds) {
  // Theorem 1.3's split: preprocessing dominates a single solve.
  rng::Stream gstream(23);
  const auto g = graph::complete(24, 3, gstream);
  SparsifiedLaplacianSolver solver(test_context(77), g, solver_opts());
  EXPECT_GT(solver.preprocessing_rounds(), 0);
  linalg::Vec b(g.num_vertices(), 0.0);
  b[1] = 1.0;
  b[2] = -1.0;
  SolveStats stats;
  solver.solve(b, 1e-6, &stats);
  EXPECT_GT(stats.rounds, 0);
  EXPECT_LT(stats.rounds, solver.preprocessing_rounds());
}

TEST(LaplacianSolver, SparsifierIsSparserOnDenseInput) {
  rng::Stream gstream(29);
  const auto g = graph::complete(64, 2, gstream);
  auto opt = solver_opts();
  opt.t = 1;  // single-spanner bundles so K64 actually compresses
  SparsifiedLaplacianSolver solver(test_context(91), g, opt);
  EXPECT_LT(solver.sparsifier().num_edges(), g.num_edges());
}

TEST(LaplacianSolver, WorksOnSparseGraphs) {
  rng::Stream gstream(31);
  const auto g = graph::random_connected_gnp(30, 0.15, 4, gstream);
  SparsifiedLaplacianSolver solver(test_context(101), g, solver_opts());
  rng::Stream bstream(32);
  const auto b = testsupport::zero_sum_gaussian(g.num_vertices(), bstream);
  const auto y = solver.solve(b, 1e-8);
  const auto x = exact_laplacian_solve(test_context(), g, b);
  EXPECT_TRUE(testsupport::EnergyNormWithin(g, y, x, 1e-8));
}

TEST(LaplacianSolver, NonZeroMeanRhsIsProjected) {
  rng::Stream gstream(37);
  const auto g = graph::complete(16, 1, gstream);
  SparsifiedLaplacianSolver solver(test_context(111), g, solver_opts());
  linalg::Vec b(16, 1.0);  // pure kernel component
  b[0] = 2.0;
  const auto y = solver.solve(b, 1e-8);
  linalg::Vec proj = b;
  linalg::remove_mean(proj);
  const auto x = exact_laplacian_solve(test_context(), g, proj);
  EXPECT_LE(laplacian_norm(test_context(), g, linalg::sub(x, y)),
            1e-7 * (laplacian_norm(test_context(), g, x) + 1.0));
}

}  // namespace
}  // namespace bcclap::laplacian
