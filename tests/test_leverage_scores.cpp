#include "lp/leverage_scores.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/laplacian.h"
#include "support/fixtures.h"

namespace bcclap::lp {
namespace {

using testsupport::test_context;

TEST(LeverageScores, SumEqualsRank) {
  rng::Stream stream(1);
  const auto a = testsupport::gaussian_matrix(40, 7, stream);
  const auto sigma = leverage_scores_exact(test_context(), a);
  double sum = 0.0;
  for (double s : sigma) {
    EXPECT_GE(s, -1e-10);
    EXPECT_LE(s, 1.0 + 1e-10);
    sum += s;
  }
  EXPECT_NEAR(sum, 7.0, 1e-8);  // sum sigma = rank(A)
}

TEST(LeverageScores, OrthogonalMatrixUniformScores) {
  // For A with orthonormal columns scaled rows... identity block: scores
  // are exactly 1 on the identity rows, 0 elsewhere.
  linalg::DenseMatrix a(5, 2);
  a(0, 0) = 1.0;
  a(1, 1) = 1.0;
  const auto sigma = leverage_scores_exact(test_context(), a);
  EXPECT_NEAR(sigma[0], 1.0, 1e-10);
  EXPECT_NEAR(sigma[1], 1.0, 1e-10);
  EXPECT_NEAR(sigma[2], 0.0, 1e-10);
}

TEST(LeverageScores, IncidenceMatrixScoresAreEffectiveResistances) {
  // For the incidence matrix B of an unweighted graph,
  // sigma_e = effective resistance of e. On a tree every edge has
  // resistance 1; on a cycle of length L, 1 - 1/L... = (L-1)/L.
  const auto tree = graph::path(6);
  const auto bt = graph::incidence(tree).to_dense();
  // Grounded: drop a column to make full rank.
  linalg::DenseMatrix btg(bt.rows(), bt.cols() - 1);
  for (std::size_t r = 0; r < bt.rows(); ++r)
    for (std::size_t c = 0; c + 1 < bt.cols(); ++c) btg(r, c) = bt(r, c);
  const auto sigma_tree = leverage_scores_exact(test_context(), btg);
  for (double s : sigma_tree) EXPECT_NEAR(s, 1.0, 1e-9);

  const auto cyc = graph::cycle(5);
  const auto bc = graph::incidence(cyc).to_dense();
  linalg::DenseMatrix bcg(bc.rows(), bc.cols() - 1);
  for (std::size_t r = 0; r < bc.rows(); ++r)
    for (std::size_t c = 0; c + 1 < bc.cols(); ++c) bcg(r, c) = bc(r, c);
  const auto sigma_cyc = leverage_scores_exact(test_context(), bcg);
  for (double s : sigma_cyc) EXPECT_NEAR(s, 4.0 / 5.0, 1e-9);
}

class JlLeverage : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JlLeverage, ApproximatesExactScores) {
  rng::Stream stream(GetParam());
  const auto a = testsupport::gaussian_matrix(80, 6, stream);
  const auto exact = leverage_scores_exact(test_context(), a);
  LeverageOptions opt;
  opt.eta = 0.5;
  opt.jl_constant = 24.0;  // generous k for a deterministic test bound
  opt.seed = GetParam() * 31 + 7;
  const auto approx =
      leverage_scores_jl(test_context(), dense_oracle(test_context(), a), opt);
  int good = 0;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    if (approx[i] >= (1 - 0.6) * exact[i] && approx[i] <= (1 + 0.6) * exact[i])
      ++good;
  }
  // Allow a few outliers (JL is probabilistic per coordinate).
  EXPECT_GE(good, static_cast<int>(exact.size()) - 4);
}

INSTANTIATE_TEST_SUITE_P(Seeds, JlLeverage, ::testing::Values(1, 2, 3, 4));

TEST(LeverageScores, JlChargesSeedBroadcastRounds) {
  rng::Stream stream(9);
  const auto a = testsupport::gaussian_matrix(30, 4, stream);
  bcc::RoundAccountant acct;
  LeverageOptions opt;
  opt.eta = 0.9;
  (void)leverage_scores_jl(test_context(), dense_oracle(test_context(), a),
                           opt, &acct);
  EXPECT_GT(acct.total_for("leverage/seed"), 0);
  EXPECT_GT(acct.total_for("leverage/matvec"), 0);
  EXPECT_GT(acct.total_for("leverage/gram-solve"), 0);
}

TEST(LeverageScores, JlFullWidthPanelMatchesBatchedBitwise) {
  // probe_batch = 0 (one full-width panel, the default) against the PR 9
  // fixed 16-probe batching — and an awkward width that doesn't divide
  // the sketch dimension. The panel ops are column-wise independent and
  // sigma accumulates sequentially in probe order, so every batch width
  // must produce the same bytes.
  rng::Stream stream(12);
  const auto a = testsupport::gaussian_matrix(60, 5, stream);
  const auto o = dense_oracle(test_context(), a);
  LeverageOptions opt;
  opt.seed = 41;
  opt.probe_batch = 16;  // the old fixed batch width: the reference
  const auto batched = leverage_scores_jl(test_context(), o, opt);
  opt.probe_batch = 0;
  const auto full = leverage_scores_jl(test_context(), o, opt);
  opt.probe_batch = 7;
  const auto odd = leverage_scores_jl(test_context(), o, opt);
  ASSERT_EQ(full.size(), batched.size());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(full[i], batched[i]) << "i=" << i;
    EXPECT_EQ(odd[i], batched[i]) << "i=" << i;
  }
}

TEST(LeverageScores, JlDeterministicInSeed) {
  rng::Stream stream(10);
  const auto a = testsupport::gaussian_matrix(25, 3, stream);
  LeverageOptions opt;
  opt.seed = 77;
  const auto o = dense_oracle(test_context(), a);
  EXPECT_EQ(leverage_scores_jl(test_context(), o, opt),
            leverage_scores_jl(test_context(), o, opt));
}

}  // namespace
}  // namespace bcclap::lp
