// Determinism of the thread-parallel superstep engine: a run with one
// worker and a run with many workers must produce byte-identical message
// traffic, equal round accounting, and identical downstream results —
// including under stateful (sequential-RNG) existence oracles, whose call
// order the engine pins in the sequential sampling phase.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include "bcc/network.h"
#include "core/runtime.h"
#include "graph/generators.h"
#include "lp/leverage_scores.h"
#include "spanner/probabilistic_spanner.h"
#include "sparsify/spectral_sparsify.h"
#include "support/fixtures.h"

namespace bcclap {
namespace {

using bcc::Message;
using bcc::ReceivedMessage;

// Runs fn with a context drawn from a dedicated `threads`-worker Runtime —
// the scoped replacement for the retired process-wide thread override.
// The pool dies with the Runtime, so suite order does not matter.
template <typename Fn>
auto with_threads(std::size_t threads, Fn&& fn) {
  RuntimeOptions opts;
  opts.threads = threads;
  Runtime rt(opts);
  return fn(rt.context());
}

bool same_message(const Message& a, const Message& b) {
  if (a.num_fields() != b.num_fields() || a.total_bits() != b.total_bits())
    return false;
  for (std::size_t i = 0; i < a.num_fields(); ++i) {
    if (a.field(i) != b.field(i)) return false;
  }
  return true;
}

::testing::AssertionResult same_inboxes(
    const std::vector<std::vector<ReceivedMessage>>& a,
    const std::vector<std::vector<ReceivedMessage>>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure() << "node count differs";
  for (std::size_t v = 0; v < a.size(); ++v) {
    if (a[v].size() != b[v].size())
      return ::testing::AssertionFailure()
             << "inbox size differs at node " << v;
    for (std::size_t i = 0; i < a[v].size(); ++i) {
      if (a[v][i].sender != b[v][i].sender)
        return ::testing::AssertionFailure()
               << "sender order differs at node " << v << " slot " << i;
      if (!same_message(a[v][i].message, b[v][i].message))
        return ::testing::AssertionFailure()
               << "message bytes differ at node " << v << " slot " << i;
    }
  }
  return ::testing::AssertionSuccess();
}

// Deterministic mixed-size outboxes: node v broadcasts v % 3 messages.
std::vector<std::vector<Message>> make_outboxes(std::size_t n) {
  std::vector<std::vector<Message>> out(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t j = 0; j < v % 3; ++j) {
      Message m;
      m.push_flag(j % 2 == 0).push_id(v, n).push(v * 31 + j, 13);
      out[v].push_back(m);
    }
  }
  return out;
}

struct ExchangeRun {
  std::vector<std::vector<ReceivedMessage>> inboxes;
  std::int64_t total;
  std::map<std::string, std::int64_t> breakdown;
};

TEST(NetworkDeterminism, BccExchangeIsThreadCountInvariant) {
  const std::size_t n = 37;
  const auto run = [&](std::size_t threads) {
    return with_threads(threads, [&](const common::Context& ctx) {
      auto net = testsupport::bcc_net(ctx, n);
      ExchangeRun r;
      r.inboxes = net.exchange(make_outboxes(n), "step");
      r.total = net.accountant().total();
      r.breakdown = net.accountant().breakdown();
      return r;
    });
  };
  const ExchangeRun one = run(1);
  for (const std::size_t threads : {2u, 4u, 7u}) {
    const ExchangeRun many = run(threads);
    EXPECT_TRUE(same_inboxes(one.inboxes, many.inboxes)) << threads;
    EXPECT_EQ(one.total, many.total);
    EXPECT_EQ(one.breakdown, many.breakdown);
  }
}

TEST(NetworkDeterminism, BcExchangeIsThreadCountInvariant) {
  rng::Stream gstream(77);
  const auto g = graph::random_connected_gnp(41, 0.2, 6, gstream);
  const auto run = [&](std::size_t threads) {
    return with_threads(threads, [&](const common::Context& ctx) {
      auto net = testsupport::bc_net(ctx, g);
      ExchangeRun r;
      r.inboxes = net.exchange(make_outboxes(g.num_vertices()), "step");
      r.total = net.accountant().total();
      r.breakdown = net.accountant().breakdown();
      return r;
    });
  };
  const ExchangeRun one = run(1);
  const ExchangeRun many = run(4);
  EXPECT_TRUE(same_inboxes(one.inboxes, many.inboxes));
  EXPECT_EQ(one.total, many.total);
  EXPECT_EQ(one.breakdown, many.breakdown);
}

TEST(NetworkDeterminism, RunSuperstepMatchesManualExchange) {
  const std::size_t n = 25;
  const auto outboxes = make_outboxes(n);
  auto net_a = testsupport::bcc_net(n);
  const auto manual = net_a.exchange(outboxes, "step");
  const auto driven = with_threads(4, [&](const common::Context& ctx) {
    auto net_b = testsupport::bcc_net(ctx, n);
    return net_b.run_superstep(
        [&](std::size_t v) { return outboxes[v]; }, "step");
  });
  EXPECT_TRUE(same_inboxes(manual, driven));
}

TEST(NetworkDeterminism, SpannerWithStatefulOracleIsThreadCountInvariant) {
  rng::Stream gstream(5);
  const auto g = graph::random_connected_gnp(30, 0.3, 5, gstream);
  struct Run {
    spanner::ProbabilisticSpannerResult res;
    std::int64_t total;
  };
  const auto run = [&](std::size_t threads) {
    return with_threads(threads, [&](const common::Context& ctx) {
      auto net = testsupport::bc_net(ctx, g);
      rng::Stream marks(11);
      rng::Stream edges(13);
      spanner::ProbabilisticSpannerOptions opt;
      opt.k = 3;
      // Stateful oracle: draws from a sequential stream, so any change in
      // call order across thread counts would change the outcome.
      const spanner::ExistenceOracle oracle = [&](graph::EdgeId) {
        return edges.bernoulli(0.5);
      };
      Run r{spanner::spanner_with_probabilistic_edges(g, opt, oracle, marks,
                                                      net),
            net.accountant().total()};
      return r;
    });
  };
  const Run one = run(1);
  const Run many = run(4);
  EXPECT_EQ(one.res.f_plus, many.res.f_plus);
  EXPECT_EQ(one.res.f_minus, many.res.f_minus);
  EXPECT_EQ(one.res.out_vertex, many.res.out_vertex);
  EXPECT_EQ(one.res.rounds, many.res.rounds);
  EXPECT_EQ(one.total, many.total);
  EXPECT_TRUE(one.res.deduction_consistent);
  EXPECT_TRUE(many.res.deduction_consistent);
}

TEST(NetworkDeterminism, SparsifierIsThreadCountInvariant) {
  rng::Stream gstream(21);
  const auto g = graph::complete(24, 4, gstream);
  const auto run = [&](std::size_t threads) {
    return with_threads(threads, [&](const common::Context& ctx) {
      auto net = testsupport::bc_net(ctx, g);
      return sparsify::spectral_sparsify(ctx.with_seed(99), g,
                                         testsupport::small_sparsify_options(),
                                         net);
    });
  };
  const auto one = run(1);
  const auto many = run(4);
  EXPECT_EQ(one.rounds, many.rounds);
  EXPECT_EQ(one.original_edge, many.original_edge);
  EXPECT_EQ(one.out_vertex, many.out_vertex);
  ASSERT_EQ(one.sparsifier.num_edges(), many.sparsifier.num_edges());
  for (std::size_t e = 0; e < one.sparsifier.num_edges(); ++e) {
    EXPECT_EQ(one.sparsifier.edge(e).u, many.sparsifier.edge(e).u);
    EXPECT_EQ(one.sparsifier.edge(e).v, many.sparsifier.edge(e).v);
    // Byte-identical reweighting, not just approximately equal.
    EXPECT_EQ(one.sparsifier.edge(e).weight, many.sparsifier.edge(e).weight);
  }
}

TEST(NetworkDeterminism, LeverageScoresAreThreadCountInvariant) {
  rng::Stream mstream(31);
  const auto m = testsupport::gaussian_matrix(40, 6, mstream);
  const auto run = [&](std::size_t threads) {
    return with_threads(threads, [&](const common::Context& ctx) {
      lp::LeverageOptions opt;
      opt.seed = 7;
      bcc::RoundAccountant acct;
      const auto jl =
          lp::leverage_scores_jl(ctx, lp::dense_oracle(ctx, m), opt, &acct);
      const auto exact = lp::leverage_scores_exact(ctx, m);
      return std::make_pair(jl, exact);
    });
  };
  const auto one = run(1);
  const auto many = run(4);
  ASSERT_EQ(one.first.size(), many.first.size());
  for (std::size_t i = 0; i < one.first.size(); ++i) {
    EXPECT_EQ(one.first[i], many.first[i]);   // bitwise, not approximate
    EXPECT_EQ(one.second[i], many.second[i]);
  }
}

}  // namespace
}  // namespace bcclap
