// E8 (Lemma 4.6): Lewis-weight approximation — convergence of Algorithm 7
// vs iteration count, homotopy (Algorithm 8) landing error vs step scale.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/runtime.h"
#include "lp/lewis_weights.h"

namespace {

using namespace bcclap;

// Execution context for the micro-benches: the process-default Runtime's
// context (BCCLAP_THREADS-sized) with the given seed — what the retired
// context-less wrappers resolved to.
common::Context gb_context(std::uint64_t seed = 0) {
  return Runtime::process_default().context().with_seed(seed);
}

linalg::DenseMatrix random_tall(std::size_t m, std::size_t n,
                                std::uint64_t seed) {
  rng::Stream stream(seed);
  linalg::DenseMatrix a(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = stream.next_gaussian();
  return a;
}

void BM_LewisFixedPointConvergence(benchmark::State& state) {
  const std::size_t iters = static_cast<std::size_t>(state.range(0));
  const auto a = random_tall(60, 8, 3);
  const double p = lp::lewis_p_for(60);
  double err = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto w = lp::lewis_fixed_point(gb_context(), a, p, iters);
    err += lp::lewis_relative_error(gb_context(), a, p, w);
    ++runs;
  }
  state.counters["iterations"] = static_cast<double>(iters);
  state.counters["rel_err"] = err / static_cast<double>(runs);
}

BENCHMARK(BM_LewisFixedPointConvergence)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond);

void BM_LewisApxWarmStart(benchmark::State& state) {
  // Algorithm 7 from a multiplicatively perturbed warm start.
  const double perturb = static_cast<double>(state.range(0)) / 100.0;
  const auto a = random_tall(50, 6, 5);
  const double p = lp::lewis_p_for(50);
  const auto truth = lp::lewis_fixed_point(gb_context(), a, p, 200);
  double err = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    rng::Stream noise(runs + 11);
    linalg::Vec warm = truth;
    for (auto& v : warm) v *= (1.0 + perturb * noise.next_gaussian());
    lp::LewisOptions opt;
    opt.max_iterations = 24;
    const auto w =
        lp::compute_apx_weights(gb_context(), a, p, warm, 0.05, opt);
    double e = 0;
    for (std::size_t i = 0; i < truth.size(); ++i)
      e = std::max(e, std::abs(w[i] - truth[i]) / std::max(truth[i], 1e-12));
    err += e;
    ++runs;
  }
  state.counters["perturbation"] = perturb;
  state.counters["rel_err"] = err / static_cast<double>(runs);
}

BENCHMARK(BM_LewisApxWarmStart)
    ->Arg(2)->Arg(5)->Arg(10)->Arg(20)
    ->Unit(benchmark::kMillisecond);

void BM_LewisHomotopy(benchmark::State& state) {
  // Algorithm 8 landing error for different p sweeps (p in [1, 2]).
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  const auto a = random_tall(rows, 5, rows);
  const double p = lp::lewis_p_for(rows);
  double err = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    lp::LewisOptions opt;
    const auto w = lp::compute_initial_weights(gb_context(), a, p, 0.05, opt);
    err += lp::lewis_relative_error(gb_context(), a, p, w);
    ++runs;
  }
  state.counters["m"] = static_cast<double>(rows);
  state.counters["rel_err"] = err / static_cast<double>(runs);
}

BENCHMARK(BM_LewisHomotopy)
    ->Arg(24)->Arg(48)->Arg(96)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
