// E10 (Theorem 1.4): LP solver iteration counts. The headline comparison:
// vanilla (g == 1) path following needs ~ sqrt(m)-scaled steps, the
// Lewis-weighted version ~ sqrt(n)-scaled steps — on flow LPs where m
// (arcs + slacks) greatly exceeds n (vertices), the weighted solver's
// short-step schedule takes measurably fewer path steps.
#include <benchmark/benchmark.h>

#include "core/runtime.h"

#include <cmath>

#include "flow/mcmf_lp.h"
#include "graph/generators.h"
#include "lp/lp_solver.h"

namespace {

using namespace bcclap;

// Execution context for the micro-benches: the process-default Runtime's
// context (BCCLAP_THREADS-sized) with the given seed — what the retired
// context-less wrappers resolved to.
common::Context gb_context(std::uint64_t seed = 0) {
  return Runtime::process_default().context().with_seed(seed);
}

// Simple structured LP with m >> n: x in R^m, n block-sum constraints.
lp::LpProblem block_lp(std::size_t blocks, std::size_t per_block,
                       std::uint64_t seed, linalg::Vec* x0) {
  rng::Stream stream(seed);
  const std::size_t m = blocks * per_block;
  std::vector<linalg::Triplet> trips;
  for (std::size_t i = 0; i < m; ++i) trips.push_back({i, i / per_block, 1.0});
  lp::LpProblem p;
  p.a = linalg::CsrMatrix(m, blocks, std::move(trips));
  p.b.assign(blocks, 1.0);
  p.c.resize(m);
  for (auto& v : p.c) v = 1.0 + stream.next_double();
  p.lower.assign(m, 0.0);
  p.upper.assign(m, 1.0);
  x0->assign(m, 1.0 / static_cast<double>(per_block));
  return p;
}

void BM_LpShortStepModes(benchmark::State& state) {
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  const std::size_t per_block = static_cast<std::size_t>(state.range(1));
  const bool lewis = state.range(2) != 0;
  linalg::Vec x0;
  const auto prob = block_lp(blocks, per_block, blocks * 100 + per_block, &x0);

  double steps = 0, newton = 0, obj = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    lp::LpOptions opt;
    opt.weights = lewis ? lp::WeightMode::kLewis : lp::WeightMode::kVanilla;
    opt.steps = lp::StepMode::kShortStep;
    opt.alpha_constant = 2.0;
    opt.epsilon = 1e-3;
    const auto res = lp::lp_solve(gb_context(opt.seed), prob, x0,
                                  opt);
    steps += static_cast<double>(res.path_steps);
    newton += static_cast<double>(res.newton_steps);
    obj += res.objective;
    ++runs;
  }
  const double r = static_cast<double>(runs);
  state.counters["n"] = static_cast<double>(blocks);
  state.counters["m"] = static_cast<double>(blocks * per_block);
  state.counters["lewis"] = lewis ? 1 : 0;
  state.counters["path_steps"] = steps / r;
  state.counters["newton_steps"] = newton / r;
  state.counters["objective"] = obj / r;
}

BENCHMARK(BM_LpShortStepModes)
    ->ArgsProduct({{4, 8}, {8, 32}, {0, 1}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Adaptive mode on min-cost-flow LPs: path steps and rounds vs n.
void BM_LpFlowAdaptive(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  rng::Stream gstream(n * 3 + 1);
  const auto g = graph::random_flow_network(n, 2 * n, 5, 4, gstream);
  auto pert = gstream.child("pert");
  const auto mlp = flow::build_mcmf_lp(g, 0, n - 1, pert);

  double steps = 0, newton = 0, rounds = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    lp::LpOptions opt;
    opt.epsilon = 1e-2;
    const auto res = lp::lp_solve(gb_context(opt.seed), mlp.problem,
                                  mlp.interior_point, opt);
    steps += static_cast<double>(res.path_steps);
    newton += static_cast<double>(res.newton_steps);
    rounds += static_cast<double>(res.rounds);
    ++runs;
  }
  const double r = static_cast<double>(runs);
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(mlp.problem.a.rows());
  state.counters["path_steps"] = steps / r;
  state.counters["newton_steps"] = newton / r;
  state.counters["rounds"] = rounds / r;
}

BENCHMARK(BM_LpFlowAdaptive)
    ->Arg(6)->Arg(10)->Arg(14)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
