// E7 (Lemma 4.5 / Theorem 4.4): JL leverage scores — accuracy vs sketch
// dimension k = Theta(log m / eta^2), seed-broadcast round cost.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/runtime.h"
#include "graph/generators.h"
#include "graph/laplacian.h"
#include "linalg/jl_transform.h"
#include "lp/leverage_scores.h"

namespace {

using namespace bcclap;

// Execution context for the micro-benches: the process-default Runtime's
// context (BCCLAP_THREADS-sized) with the given seed — what the retired
// context-less wrappers resolved to.
common::Context gb_context(std::uint64_t seed = 0) {
  return Runtime::process_default().context().with_seed(seed);
}

linalg::DenseMatrix incidence_grounded(const graph::Graph& g) {
  const auto b = graph::incidence(g).to_dense();
  linalg::DenseMatrix out(b.rows(), b.cols() - 1);
  for (std::size_t r = 0; r < b.rows(); ++r)
    for (std::size_t c = 0; c + 1 < b.cols(); ++c) out(r, c) = b(r, c);
  return out;
}

void BM_LeverageAccuracy(benchmark::State& state) {
  const double eta = static_cast<double>(state.range(0)) / 100.0;
  rng::Stream gstream(11);
  const auto g = graph::random_connected_gnp(40, 0.2, 5, gstream);
  const auto m = incidence_grounded(g);
  const auto exact = lp::leverage_scores_exact(gb_context(), m);

  double worst = 0, median_err = 0, rounds = 0, kdim = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    bcc::RoundAccountant acct;
    lp::LeverageOptions opt;
    opt.eta = eta;
    opt.seed = runs * 131 + 7;
    const auto ctx = gb_context();
    const auto approx =
        lp::leverage_scores_jl(ctx, lp::dense_oracle(ctx, m), opt, &acct);
    std::vector<double> errs(exact.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      errs[i] = std::abs(approx[i] - exact[i]) / std::max(exact[i], 1e-12);
    }
    std::sort(errs.begin(), errs.end());
    worst += errs.back();
    median_err += errs[errs.size() / 2];
    rounds += static_cast<double>(acct.total());
    kdim = static_cast<double>(linalg::jl_dimension(m.rows(), eta,
                                                    opt.jl_constant));
    ++runs;
  }
  const double r = static_cast<double>(runs);
  state.counters["eta"] = eta;
  state.counters["sketch_k"] = kdim;
  state.counters["median_rel_err"] = median_err / r;
  state.counters["worst_rel_err"] = worst / r;
  state.counters["rounds"] = rounds / r;
}

BENCHMARK(BM_LeverageAccuracy)
    ->Arg(100)->Arg(50)->Arg(25)->Arg(12)
    ->Unit(benchmark::kMillisecond);

// Scaling with matrix height m (random Gaussian matrices).
void BM_LeverageHeight(benchmark::State& state) {
  const std::size_t rows = static_cast<std::size_t>(state.range(0));
  rng::Stream stream(rows);
  linalg::DenseMatrix a(rows, 8);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < 8; ++j) a(i, j) = stream.next_gaussian();
  const auto exact = lp::leverage_scores_exact(gb_context(), a);
  double worst = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    lp::LeverageOptions opt;
    opt.eta = 0.5;
    opt.seed = runs * 17 + 3;
    const auto ctx = gb_context();
    const auto approx = lp::leverage_scores_jl(ctx, lp::dense_oracle(ctx, a),
                                               opt);
    double w = 0;
    for (std::size_t i = 0; i < exact.size(); ++i)
      w = std::max(w, std::abs(approx[i] - exact[i]) /
                          std::max(exact[i], 1e-12));
    worst += w;
    ++runs;
  }
  state.counters["m"] = static_cast<double>(rows);
  state.counters["worst_rel_err"] = worst / static_cast<double>(runs);
}

BENCHMARK(BM_LeverageHeight)
    ->Arg(50)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
