// E6 (Theorem 2.3): preconditioned Chebyshev iteration count ~
// sqrt(kappa) * log(1/eps), against CG on the same pencils.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/cg.h"
#include "linalg/chebyshev.h"
#include "linalg/vector_ops.h"

namespace {

using namespace bcclap;
using linalg::Vec;

// Diagonal operator with spectrum [1/kappa, 1] (exactly the pencil B^{-1}A
// normalized by Theorem 2.3's assumption A <= B <= kappa A).
Vec make_spectrum(std::size_t n, double kappa, rng::Stream& stream) {
  Vec d(n);
  for (std::size_t i = 0; i < n; ++i) {
    d[i] = 1.0 / kappa +
           (1.0 - 1.0 / kappa) * static_cast<double>(i) /
               static_cast<double>(n - 1);
  }
  for (std::size_t i = n; i > 1; --i)
    std::swap(d[i - 1], d[stream.next_below(i)]);
  return d;
}

void BM_ChebyshevKappa(benchmark::State& state) {
  const double kappa = static_cast<double>(state.range(0));
  const std::size_t n = 400;
  rng::Stream stream(3);
  const Vec d = make_spectrum(n, kappa, stream);
  Vec b(n);
  for (auto& v : b) v = stream.next_gaussian();
  const auto op = [&d](const Vec& x) {
    Vec y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = d[i] * x[i];
    return y;
  };
  const auto id = [](const Vec& x) { return x; };
  double cheb_iters = 0, cg_iters = 0, cheb_err = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto cheb = linalg::preconditioned_chebyshev(op, id, b, kappa, 1e-8);
    cheb_iters += static_cast<double>(cheb.iterations);
    Vec err(n);
    for (std::size_t i = 0; i < n; ++i) err[i] = cheb.x[i] - b[i] / d[i];
    cheb_err += linalg::norm2(err) / linalg::norm2(b);
    const auto cg = linalg::conjugate_gradient(op, b, 1e-8, 100000);
    cg_iters += static_cast<double>(cg.iterations);
    ++runs;
  }
  const double r = static_cast<double>(runs);
  state.counters["kappa"] = kappa;
  state.counters["sqrt_kappa"] = std::sqrt(kappa);
  state.counters["cheb_iters"] = cheb_iters / r;
  state.counters["cg_iters"] = cg_iters / r;
  state.counters["cheb_rel_err"] = cheb_err / r;
}

BENCHMARK(BM_ChebyshevKappa)
    ->Arg(3)->Arg(9)->Arg(27)->Arg(81)->Arg(243)
    ->Unit(benchmark::kMicrosecond);

void BM_ChebyshevEps(benchmark::State& state) {
  const double eps = std::pow(10.0, -static_cast<double>(state.range(0)));
  const std::size_t n = 200;
  rng::Stream stream(7);
  const Vec d = make_spectrum(n, 3.0, stream);  // the Corollary 2.4 kappa
  Vec b(n);
  for (auto& v : b) v = stream.next_gaussian();
  const auto op = [&d](const Vec& x) {
    Vec y(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = d[i] * x[i];
    return y;
  };
  const auto id = [](const Vec& x) { return x; };
  double iters = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto res = linalg::preconditioned_chebyshev(op, id, b, 3.0, eps);
    iters += static_cast<double>(res.iterations);
    ++runs;
  }
  state.counters["eps"] = eps;
  state.counters["iterations"] = iters / static_cast<double>(runs);
}

BENCHMARK(BM_ChebyshevEps)->DenseRange(2, 12, 2)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
