// PR 9: solver-service throughput — a burst of same-topology single-RHS
// solve requests pushed through service::SolverService at 1 and 4 workers,
// against a cold and a (persistently) warm shared FactorCache.
//
// Counters are deterministic across thread configurations (the bench.sh
// gate): request/served counts, reply-byte identity against the direct
// facade's batched solve (the PR 5 panel contract makes the reference
// column-exact), the warm-cache residency check (no misses, at least one
// hit, zero prepare work) and a solution-norm fingerprint. Coalescing
// widths and per-run hit tallies are timing-dependent under concurrent
// workers, so they are deliberately NOT counters — the warm/cold checks
// are phrased as residency predicates instead.
#include "support/harness.h"

#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "core/factor_cache.h"
#include "core/runtime.h"
#include "graph/generators.h"
#include "linalg/vector_ops.h"
#include "service/solver_service.h"

namespace {

using namespace bcclap;

constexpr std::size_t kN = 256;
constexpr std::size_t kRequests = 16;
constexpr std::uint64_t kSeed = 77;

const graph::Graph& service_graph() {
  static const graph::Graph g = [] {
    rng::Stream stream(kN * 3 + 1);
    return graph::random_regularish(kN, 8, 4, stream);
  }();
  return g;
}

LaplacianSolveOptions service_lopt() {
  LaplacianSolveOptions lopt;
  lopt.eps = 1e-4;
  lopt.sparsify.epsilon = 0.5;
  lopt.sparsify.k = 2;
  lopt.sparsify.t = 2;
  lopt.engine = "sparsified-chebyshev";
  return lopt;
}

linalg::Vec request_rhs(std::size_t i) {
  rng::Stream stream(1000 + i);
  linalg::Vec b(kN);
  for (auto& v : b) v = stream.next_gaussian();
  return b;
}

service::Request nth_request(std::size_t i) {
  const LaplacianSolveOptions lopt = service_lopt();
  service::Request req;
  req.type = service::RequestType::kSolve;
  req.seed = kSeed;
  req.engine = lopt.engine;
  req.eps = lopt.eps;
  req.sparsify = lopt.sparsify;
  req.graph = service_graph();
  req.b = request_rhs(i);
  return req;
}

// Reference bytes: one facade panel solve outside any service. Computed
// once (the first call pays it — during a warmup iteration), then reused
// by every case as the byte-compare target.
const linalg::DenseMatrix& reference_panel() {
  static const linalg::DenseMatrix ref = [] {
    RuntimeOptions opts;
    opts.threads = 0;  // BCCLAP_THREADS / hardware
    opts.seed = kSeed;
    Runtime rt(opts);
    linalg::DenseMatrix b(kN, kRequests);
    for (std::size_t j = 0; j < kRequests; ++j) {
      b.set_column(j, request_rhs(j));
    }
    return rt.solve_laplacian_many(service_graph(), b, service_lopt()).x;
  }();
  return ref;
}

void service_solve(bench::State& s, std::size_t workers, bool warm) {
  // Warm cases share one FactorCache across repetitions (the warmup
  // iteration populates it); cold cases get a fresh cache every time.
  std::shared_ptr<core::FactorCache> cache;
  if (warm) {
    static std::map<std::size_t, std::shared_ptr<core::FactorCache>>
        persistent;
    auto& slot = persistent[workers];
    if (!slot) slot = std::make_shared<core::FactorCache>(256u << 20);
    cache = slot;
  } else {
    cache = std::make_shared<core::FactorCache>(256u << 20);
  }
  const auto cache_before = cache->stats();
  const linalg::DenseMatrix& reference = reference_panel();

  service::ServiceOptions opts;
  opts.workers = workers;
  opts.runtime_threads = 0;  // BCCLAP_THREADS / hardware
  opts.factor_cache = cache;
  service::SolverService svc(opts);

  std::vector<std::shared_ptr<service::PendingReply>> pending;
  pending.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    service::Submission sub = svc.submit(nth_request(i));
    if (!sub.accepted()) continue;  // cannot happen at this queue depth
    pending.push_back(sub.reply);
  }

  bool identical = pending.size() == kRequests;
  double fingerprint = 0.0;
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const service::Reply& reply = pending[i]->wait();
    if (reply.status != service::ReplyStatus::kOk ||
        reply.x.size() != kN) {
      identical = false;
      continue;
    }
    const linalg::Vec want = reference.column(i);
    if (std::memcmp(reply.x.data(), want.data(), kN * sizeof(double)) != 0) {
      identical = false;
    }
    if (i == 0) fingerprint = linalg::norm2(reply.x);
  }
  svc.shutdown();
  const auto stats = svc.stats();
  const auto cache_after = cache->stats();

  s.counter("n", static_cast<double>(kN));
  s.counter("requests", static_cast<double>(kRequests));
  s.counter("served", static_cast<double>(stats.served));
  s.counter("failed", static_cast<double>(stats.failed));
  s.counter("identical_to_reference", identical ? 1.0 : 0.0);
  s.counter("fingerprint_xnorm", fingerprint);
  if (warm) {
    // Residency predicates (deterministic; raw hit counts are not — the
    // coalescing width under concurrent workers is timing-dependent):
    // a warm burst never misses, hits at least once, and runs zero
    // sparsify/factor prepare work.
    const bool all_hits = cache_after.misses == cache_before.misses &&
                          cache_after.hits > cache_before.hits;
    const std::size_t prepare_work = stats.totals.sparsify_count +
                                     stats.totals.dense_factors +
                                     stats.totals.sparse_factors;
    s.counter("warm_all_hits", all_hits ? 1.0 : 0.0);
    s.counter("warm_prepare_work", static_cast<double>(prepare_work));
  } else {
    s.counter("cold_prepared",
              cache_after.misses > cache_before.misses ? 1.0 : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bcclap::bench::Harness h("bench_service");
  h.add("service_solve/n=256/workers=1/cold",
        [](bcclap::bench::State& s) { service_solve(s, 1, false); });
  h.add("service_solve/n=256/workers=1/warm",
        [](bcclap::bench::State& s) { service_solve(s, 1, true); });
  h.add("service_solve/n=256/workers=4/cold",
        [](bcclap::bench::State& s) { service_solve(s, 4, false); });
  h.add("service_solve/n=256/workers=4/warm",
        [](bcclap::bench::State& s) { service_solve(s, 4, true); });
  return h.run(argc, argv);
}
