// E9 (Lemma 4.10): mixed-norm-ball projection — probe count (round cost
// driver) vs tolerance, accuracy vs the grid reference, scaling in m.
#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "lp/project_mixed_ball.h"

namespace {

using namespace bcclap;

void make_instance(std::size_t m, std::uint64_t seed, linalg::Vec& a,
                   linalg::Vec& l) {
  rng::Stream stream(seed);
  a.resize(m);
  l.resize(m);
  for (auto& v : a) v = stream.next_gaussian();
  for (auto& v : l) v = 0.05 + stream.next_double();
}

void BM_ProjectionSize(benchmark::State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  linalg::Vec a, l;
  make_instance(m, m, a, l);
  double probes = 0, rounds = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    bcc::RoundAccountant acct;
    const auto res = lp::project_mixed_ball(a, l, 1e-10, &acct);
    benchmark::DoNotOptimize(res.value);
    probes += static_cast<double>(res.probes);
    rounds += static_cast<double>(acct.total());
    ++runs;
  }
  state.counters["m"] = static_cast<double>(m);
  state.counters["probes"] = probes / static_cast<double>(runs);
  state.counters["rounds"] = rounds / static_cast<double>(runs);
}

BENCHMARK(BM_ProjectionSize)
    ->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

void BM_ProjectionAccuracy(benchmark::State& state) {
  const std::size_t m = 64;
  double max_gap = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    linalg::Vec a, l;
    make_instance(m, runs + 31, a, l);
    const auto fast = lp::project_mixed_ball(a, l);
    const auto ref = lp::project_mixed_ball_reference(a, l, 20000);
    max_gap = std::max(max_gap,
                       std::abs(fast.value - ref.value) /
                           std::max(std::abs(ref.value), 1e-12));
    ++runs;
  }
  state.counters["max_rel_gap_vs_ref"] = max_gap;
}

BENCHMARK(BM_ProjectionAccuracy)->Iterations(20)->Unit(benchmark::kMillisecond);

void BM_ProjectionTolerance(benchmark::State& state) {
  const double tol = std::pow(10.0, -static_cast<double>(state.range(0)));
  linalg::Vec a, l;
  make_instance(128, 77, a, l);
  double probes = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    const auto res = lp::project_mixed_ball(a, l, tol);
    probes += static_cast<double>(res.probes);
    ++runs;
  }
  state.counters["log10_inv_tol"] = static_cast<double>(state.range(0));
  state.counters["probes"] = probes / static_cast<double>(runs);
}

BENCHMARK(BM_ProjectionTolerance)
    ->DenseRange(2, 12, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
