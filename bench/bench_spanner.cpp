// E1 + E2 (Lemmas 3.1, 3.2): spanner size O(k n^{1+1/k}), out-degree
// O(k n^{1/k}), rounds O(k n^{1/k} (log n + log W)).
//
// Counters reported per configuration:
//   edges       spanner size |F+|
//   size_bound  k * n^{1+1/k} (the paper's bound, for shape comparison)
//   max_outdeg  max out-degree of the Lemma 3.1 orientation
//   rounds      BC rounds charged by the simulator
#include <benchmark/benchmark.h>

#include "core/runtime.h"

#include <cmath>

#include "graph/generators.h"
#include "spanner/cluster.h"
#include "spanner/probabilistic_spanner.h"

namespace {

using namespace bcclap;

// Execution context for the micro-benches: the process-default Runtime's
// context (BCCLAP_THREADS-sized) with the given seed — what the retired
// context-less wrappers resolved to.
common::Context gb_context(std::uint64_t seed = 0) {
  return Runtime::process_default().context().with_seed(seed);
}

void BM_SpannerSweep(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t k = static_cast<std::size_t>(state.range(1));
  const std::int64_t w = state.range(2);
  rng::Stream gstream(n * 1000 + k);
  const auto g = graph::random_connected_gnp(n, 8.0 / std::sqrt((double)n), w,
                                             gstream);
  double edges = 0, outdeg = 0, rounds = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    bcc::Network net(bcc::Model::kBroadcastCongest, g,
                     bcc::Network::default_bandwidth(n), gb_context());
    rng::Stream marks(runs + 17);
    rng::Stream coin(runs + 29);
    spanner::ProbabilisticSpannerOptions opt;
    opt.k = k;
    const spanner::ExistenceOracle oracle = [&](graph::EdgeId) {
      return coin.bernoulli(0.5);
    };
    const auto res =
        spanner::spanner_with_probabilistic_edges(g, opt, oracle, marks, net);
    benchmark::DoNotOptimize(res.f_plus.size());
    edges += static_cast<double>(res.f_plus.size());
    const auto deg = spanner::out_degrees(n, res.out_vertex);
    std::size_t mx = 0;
    for (auto d : deg) mx = std::max(mx, d);
    outdeg += static_cast<double>(mx);
    rounds += static_cast<double>(res.rounds);
    ++runs;
  }
  const double r = static_cast<double>(runs);
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(g.num_edges());
  state.counters["edges"] = edges / r;
  state.counters["size_bound"] =
      static_cast<double>(k) *
      std::pow(static_cast<double>(n), 1.0 + 1.0 / static_cast<double>(k));
  state.counters["max_outdeg"] = outdeg / r;
  state.counters["outdeg_bound"] =
      static_cast<double>(k) *
      std::pow(static_cast<double>(n), 1.0 / static_cast<double>(k));
  state.counters["rounds"] = rounds / r;
}

BENCHMARK(BM_SpannerSweep)
    ->ArgsProduct({{32, 64, 128, 256}, {2, 3, 5}, {8}})
    ->Unit(benchmark::kMillisecond);

// E2: the log W factor in the round complexity (Lemma 3.2).
void BM_SpannerWeightBits(benchmark::State& state) {
  const std::int64_t wmax = state.range(0);
  const std::size_t n = 64;
  rng::Stream gstream(7);
  const auto g = graph::random_connected_gnp(n, 0.15, wmax, gstream);
  double rounds = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    bcc::Network net(bcc::Model::kBroadcastCongest, g,
                     bcc::Network::default_bandwidth(n), gb_context());
    rng::Stream marks(runs + 3);
    spanner::ProbabilisticSpannerOptions opt;
    opt.k = 3;
    const spanner::ExistenceOracle always = [](graph::EdgeId) { return true; };
    const auto res =
        spanner::spanner_with_probabilistic_edges(g, opt, always, marks, net);
    rounds += static_cast<double>(res.rounds);
    ++runs;
  }
  state.counters["log2_W"] = std::log2(static_cast<double>(wmax));
  state.counters["rounds"] = rounds / static_cast<double>(runs);
}

BENCHMARK(BM_SpannerWeightBits)
    ->Arg(2)->Arg(1 << 8)->Arg(1 << 16)->Arg(1 << 30)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
