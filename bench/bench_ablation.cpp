// Ablations (DESIGN.md A1-A3):
//  A1: fixed bundle size (Kyng et al.) vs growing (Koutis-Xu style).
//  A2: sparsifier-preconditioned Chebyshev vs unpreconditioned CG on L_G.
//  A3: ad-hoc vs a-priori sampling — coupling match rate over seeds.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/runtime.h"
#include "graph/generators.h"
#include "graph/laplacian.h"
#include "laplacian/solver.h"
#include "linalg/cg.h"
#include "sparsify/spectral_sparsify.h"
#include "sparsify/verifier.h"

namespace {

using namespace bcclap;

// Execution context for the micro-benches: the process-default Runtime's
// context (BCCLAP_THREADS-sized) with the given seed — what the retired
// context-less wrappers resolved to.
common::Context gb_context(std::uint64_t seed = 0) {
  return Runtime::process_default().context().with_seed(seed);
}

void BM_AblationBundleGrowth(benchmark::State& state) {
  const bool growing = state.range(0) != 0;
  const std::size_t n = 48;
  rng::Stream gstream(2);
  const auto g = graph::complete(n, 3, gstream);
  double size = 0, eps = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    bcc::Network net(bcc::Model::kBroadcastCongest, g,
                     bcc::Network::default_bandwidth(n), gb_context());
    sparsify::SparsifyOptions opt;
    opt.epsilon = 0.5;
    opt.k = 2;
    opt.t = 1;
    opt.growing_t = growing;
    const auto res = sparsify::spectral_sparsify(
        net.context().with_seed(runs + 3), g, opt, net);
    size += static_cast<double>(res.sparsifier.num_edges());
    const auto check = sparsify::check_sparsifier(g, res.sparsifier);
    eps += check.valid ? check.achieved_epsilon() : 99.0;
    ++runs;
  }
  const double r = static_cast<double>(runs);
  state.counters["growing_t"] = growing ? 1 : 0;
  state.counters["size"] = size / r;
  state.counters["achieved_eps"] = eps / r;
}

BENCHMARK(BM_AblationBundleGrowth)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_AblationPreconditioning(benchmark::State& state) {
  // Wide weight spread: large condition number with a rich spectrum, the
  // regime where unpreconditioned Krylov methods pay sqrt(kappa).
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  rng::Stream gstream(n * 5 + 1);
  const auto g = graph::random_connected_gnp(n, 0.3, 1 << 20, gstream);
  const auto lap = graph::laplacian(g);
  rng::Stream bstream(n);
  linalg::Vec b(g.num_vertices());
  for (auto& v : b) v = bstream.next_gaussian();
  linalg::remove_mean(b);

  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = 3;
  laplacian::SparsifiedLaplacianSolver solver(gb_context(11), g,
                                              opt);

  double cheb_iters = 0, cg_iters = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    laplacian::SolveStats stats;
    benchmark::DoNotOptimize(solver.solve(b, 1e-8, &stats));
    cheb_iters += static_cast<double>(stats.iterations);
    const auto ctx = gb_context();
    const auto cg = linalg::conjugate_gradient(
        [&lap, ctx](const linalg::Vec& x) { return lap.multiply(ctx, x); }, b,
        1e-8, 20000);
    cg_iters += static_cast<double>(cg.iterations);
    ++runs;
  }
  const double r = static_cast<double>(runs);
  state.counters["n"] = static_cast<double>(n);
  state.counters["precond_cheb_iters"] = cheb_iters / r;
  state.counters["plain_cg_iters"] = cg_iters / r;
}

BENCHMARK(BM_AblationPreconditioning)->Arg(16)->Arg(32)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_AblationCouplingMatchRate(benchmark::State& state) {
  // Lemma 3.3: under shared coins the two algorithms must coincide on
  // every seed. Reported as a rate so a regression is visible as < 1.
  const std::size_t n = 16;
  rng::Stream gstream(4);
  const auto g = graph::complete(n, 3, gstream);
  double match = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    sparsify::SparsifyOptions opt;
    opt.epsilon = 1.0;
    opt.k = 2;
    opt.t = 2;
    bcc::Network net(bcc::Model::kBroadcastCongest, g,
                     bcc::Network::default_bandwidth(n), gb_context());
    const auto adhoc = sparsify::spectral_sparsify(
        net.context().with_seed(runs + 1), g, opt, net);
    const auto apriori = sparsify::spectral_sparsify_apriori(
        gb_context(runs + 1), g, opt);
    match += (adhoc.original_edge == apriori.original_edge) ? 1 : 0;
    ++runs;
  }
  state.counters["coupling_match_rate"] = match / static_cast<double>(runs);
}

BENCHMARK(BM_AblationCouplingMatchRate)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
