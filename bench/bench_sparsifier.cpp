// E3 + E4 (Theorem 1.2): sparsifier size vs n * eps^-2 * log^4 n, spectral
// quality, out-degree of the orientation, and BC round complexity.
// Runs on the shared harness; counters are thread-count-invariant.
#include "support/harness.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "graph/generators.h"
#include "spanner/cluster.h"
#include "sparsify/spectral_sparsify.h"
#include "sparsify/verifier.h"

namespace {

using namespace bcclap;

void sparsifier_size(bench::State& s, std::size_t n, std::size_t t) {
  rng::Stream gstream(n);
  const auto g = graph::complete(n, 4, gstream);
  bcc::Network net(bcc::Model::kBroadcastCongest, g,
                   bcc::Network::default_bandwidth(n),
                   bench::bench_context());
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = t;
  const auto res = sparsify::spectral_sparsify(
      net.context().with_seed(s.iteration() + 1), g, opt, net);
  const auto deg = spanner::out_degrees(n, res.out_vertex);
  std::size_t mx = 0;
  for (auto d : deg) mx = std::max(mx, d);

  const double logn = std::log2(static_cast<double>(n));
  const double size = static_cast<double>(res.sparsifier.num_edges());
  s.counter("n", static_cast<double>(n));
  s.counter("m", static_cast<double>(g.num_edges()));
  s.counter("size", size);
  s.counter("size_per_nlog", size / (static_cast<double>(n) * logn));
  s.counter("rounds", static_cast<double>(res.rounds));
  s.counter("max_outdeg", static_cast<double>(mx));
}

void sparsifier_quality(bench::State& s, std::size_t n, std::size_t t) {
  rng::Stream gstream(n * 13);
  const auto g = graph::complete(n, 2, gstream);
  bcc::Network net(bcc::Model::kBroadcastCongest, g,
                   bcc::Network::default_bandwidth(n),
                   bench::bench_context());
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = t;
  const auto res = sparsify::spectral_sparsify(
      net.context().with_seed(s.iteration() + 7), g, opt, net);
  const auto check = sparsify::check_sparsifier(g, res.sparsifier);
  s.counter("n", static_cast<double>(n));
  s.counter("t", static_cast<double>(t));
  s.counter("achieved_eps", check.valid ? check.achieved_epsilon() : 99.0);
  s.counter("lambda_min", check.valid ? check.lambda_min : 0.0);
}

std::string case_name(const char* base, std::size_t n, std::size_t t) {
  return std::string(base) + "/n=" + std::to_string(n) +
         "/t=" + std::to_string(t);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_sparsifier");
  for (const std::size_t n : {24u, 32u, 48u, 64u, 96u}) {
    for (const std::size_t t : {1u, 2u, 4u}) {
      h.add(case_name("sparsifier_size", n, t),
            [n, t](bench::State& s) { sparsifier_size(s, n, t); });
    }
  }
  for (const std::size_t n : {24u, 36u, 48u}) {
    for (const std::size_t t : {1u, 2u, 4u, 8u}) {
      h.add(case_name("sparsifier_quality", n, t),
            [n, t](bench::State& s) { sparsifier_quality(s, n, t); });
    }
  }
  return h.run(argc, argv);
}
