// E3 + E4 (Theorem 1.2): sparsifier size vs n * eps^-2 * log^4 n, spectral
// quality, out-degree of the orientation, and BC round complexity.
#include <benchmark/benchmark.h>

#include <cmath>

#include "graph/generators.h"
#include "sparsify/spectral_sparsify.h"
#include "sparsify/verifier.h"
#include "spanner/cluster.h"

namespace {

using namespace bcclap;

void BM_SparsifierSize(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = static_cast<std::size_t>(state.range(1));
  rng::Stream gstream(n);
  const auto g = graph::complete(n, 4, gstream);
  double size = 0, rounds = 0, outdeg = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    bcc::Network net(bcc::Model::kBroadcastCongest, g,
                     bcc::Network::default_bandwidth(n));
    sparsify::SparsifyOptions opt;
    opt.epsilon = 0.5;
    opt.k = 2;
    opt.t = t;
    const auto res = sparsify::spectral_sparsify(g, opt, runs + 1, net);
    size += static_cast<double>(res.sparsifier.num_edges());
    rounds += static_cast<double>(res.rounds);
    const auto deg = spanner::out_degrees(n, res.out_vertex);
    std::size_t mx = 0;
    for (auto d : deg) mx = std::max(mx, d);
    outdeg += static_cast<double>(mx);
    ++runs;
  }
  const double r = static_cast<double>(runs);
  const double logn = std::log2(static_cast<double>(n));
  state.counters["n"] = static_cast<double>(n);
  state.counters["m"] = static_cast<double>(g.num_edges());
  state.counters["size"] = size / r;
  state.counters["size_per_nlog"] = size / r / (static_cast<double>(n) * logn);
  state.counters["rounds"] = rounds / r;
  state.counters["max_outdeg"] = outdeg / r;
}

BENCHMARK(BM_SparsifierSize)
    ->ArgsProduct({{24, 32, 48, 64, 96}, {1, 2, 4}})
    ->Unit(benchmark::kMillisecond);

// E3 quality: achieved spectral epsilon (exact pencil eigenvalues).
void BM_SparsifierQuality(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::size_t t = static_cast<std::size_t>(state.range(1));
  rng::Stream gstream(n * 13);
  const auto g = graph::complete(n, 2, gstream);
  double eps = 0, lmin = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    bcc::Network net(bcc::Model::kBroadcastCongest, g,
                     bcc::Network::default_bandwidth(n));
    sparsify::SparsifyOptions opt;
    opt.epsilon = 0.5;
    opt.k = 2;
    opt.t = t;
    const auto res = sparsify::spectral_sparsify(g, opt, runs + 7, net);
    const auto check = sparsify::check_sparsifier(g, res.sparsifier);
    eps += check.valid ? check.achieved_epsilon() : 99.0;
    lmin += check.valid ? check.lambda_min : 0.0;
    ++runs;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["t"] = static_cast<double>(t);
  state.counters["achieved_eps"] = eps / static_cast<double>(runs);
  state.counters["lambda_min"] = lmin / static_cast<double>(runs);
}

BENCHMARK(BM_SparsifierQuality)
    ->ArgsProduct({{24, 36, 48}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
