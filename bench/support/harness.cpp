#include "support/harness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/runtime.h"

namespace bcclap::bench {

common::Context bench_context(std::uint64_t seed) {
  return Runtime::process_default().context().with_seed(seed);
}

namespace {

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Fixed-precision double formatting that round-trips cleanly for the
// counter values we emit (round counts, sizes, epsilons). JSON has no
// NaN/Inf literals; non-finite values (e.g. a diverged error ratio) emit
// null so the trajectory file stays parseable.
std::string fmt_double(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream os;
  os.precision(17);
  os << v;
  return os.str();
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Harness::Harness(std::string binary_name)
    : binary_name_(std::move(binary_name)) {}

void Harness::add(const std::string& name, std::function<void(State&)> body,
                  std::size_t repeats_override,
                  std::size_t warmup_override) {
  cases_.push_back({name, std::move(body), repeats_override, warmup_override});
}

int Harness::run(int argc, char** argv) {
  std::size_t repeats = 3;
  std::size_t warmup = 1;
  std::string json_path;
  std::string filter;
  for (int i = 1; i < argc; ++i) {
    const auto needs_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--json") == 0) {
      json_path = needs_value("--json");
    } else if (std::strcmp(argv[i], "--repeats") == 0) {
      repeats = static_cast<std::size_t>(
          std::max(1L, std::atol(needs_value("--repeats"))));
    } else if (std::strcmp(argv[i], "--warmup") == 0) {
      warmup = static_cast<std::size_t>(
          std::max(0L, std::atol(needs_value("--warmup"))));
    } else if (std::strcmp(argv[i], "--filter") == 0) {
      filter = needs_value("--filter");
    } else {
      std::cerr << "unknown flag: " << argv[i] << "\n"
                << "usage: " << binary_name_
                << " [--json path] [--repeats n] [--warmup n]"
                   " [--filter substring]\n";
      return 2;
    }
  }

  const std::size_t threads = Runtime::process_default().num_threads();
  // (bench_context resolves through the same process-default Runtime, so
  // this is also the thread count every case ran with.)
  std::vector<CaseResult> results;
  std::printf("%-44s %10s %10s %10s  (threads=%zu)\n", "case", "mean_ms",
              "min_ms", "max_ms", threads);
  for (const Case& c : cases_) {
    if (!filter.empty() && c.name.find(filter) == std::string::npos) continue;
    const std::size_t reps =
        c.repeats_override > 0 ? c.repeats_override : repeats;
    const std::size_t warmups =
        c.warmup_override != kNoOverride ? c.warmup_override : warmup;

    CaseResult r;
    r.name = c.name;
    r.repeats = reps;
    r.wall_ms_min = 0.0;
    std::size_t iteration = 0;
    for (std::size_t w = 0; w < warmups; ++w) {
      State s(iteration++, /*warmup=*/true);
      c.body(s);
    }
    double total = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      State s(iteration++, /*warmup=*/false);
      const double t0 = now_ms();
      c.body(s);
      const double elapsed = now_ms() - t0;
      total += elapsed;
      if (rep == 0 || elapsed < r.wall_ms_min) r.wall_ms_min = elapsed;
      if (rep == 0 || elapsed > r.wall_ms_max) r.wall_ms_max = elapsed;
      if (rep + 1 == reps) {
        r.counters = s.counters();
        r.timings = s.timings();
      }
    }
    r.wall_ms_mean = total / static_cast<double>(reps);
    std::printf("%-44s %10.3f %10.3f %10.3f\n", r.name.c_str(),
                r.wall_ms_mean, r.wall_ms_min, r.wall_ms_max);
    for (const auto& [k, v] : r.counters) {
      std::printf("    %-24s %.6g\n", k.c_str(), v);
    }
    for (const auto& [k, v] : r.timings) {
      std::printf("    %-24s %.3f ms\n", k.c_str(), v);
    }
    results.push_back(std::move(r));
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << "{\n";
    out << "  \"binary\": \"" << json_escape(binary_name_) << "\",\n";
    out << "  \"threads\": " << threads << ",\n";
    out << "  \"repeats\": " << repeats << ",\n";
    out << "  \"warmup\": " << warmup << ",\n";
    out << "  \"results\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CaseResult& r = results[i];
      out << "    {\"name\": \"" << json_escape(r.name) << "\", "
          << "\"repeats\": " << r.repeats << ", "
          << "\"wall_ms\": {\"mean\": " << fmt_double(r.wall_ms_mean)
          << ", \"min\": " << fmt_double(r.wall_ms_min)
          << ", \"max\": " << fmt_double(r.wall_ms_max) << "}, "
          << "\"counters\": {";
      bool first = true;
      for (const auto& [k, v] : r.counters) {
        if (!first) out << ", ";
        first = false;
        out << "\"" << json_escape(k) << "\": " << fmt_double(v);
      }
      // "timings" comes after the closed "counters" object on purpose:
      // the determinism gate extracts counters up to their closing brace,
      // so clock readings here never enter the cross-config diff.
      out << "}, \"timings\": {";
      first = true;
      for (const auto& [k, v] : r.timings) {
        if (!first) out << ", ";
        first = false;
        out << "\"" << json_escape(k) << "\": " << fmt_double(v);
      }
      out << "}}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  return 0;
}

}  // namespace bcclap::bench
