// Shared bench harness: warmup/repeat wall-clock timing with named
// counters and machine-readable JSON emission.
//
// The Google Benchmark binaries remain for micro-benchmarks; this harness
// exists so the repo's *benchmark trajectory* (BENCH_*.json) is produced by
// code the repo owns: fixed warmup/repeat counts, deterministic
// per-iteration seeds, and a JSON schema that records the thread count —
// the quantity this PR's engine varies.
//
// Usage:
//   int main(int argc, char** argv) {
//     bcclap::bench::Harness h("bench_pipeline");
//     h.add("pipeline/n=24", [](bcclap::bench::State& s) { ... });
//     return h.run(argc, argv);
//   }
//
// Flags: --json <path>   write results as JSON
//        --repeats <n>   measured repetitions per case (default 3)
//        --warmup <n>    unmeasured repetitions per case (default 1)
//        --filter <sub>  run only cases whose name contains <sub>
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/context.h"

namespace bcclap::bench {

// Execution context bench bodies hand to the layer APIs: the
// process-default Runtime's context (sized by BCCLAP_THREADS — the knob
// scripts/bench.sh varies) with the given seed. Byte-identical to what
// the retired context-less wrappers resolved to, so counters stay
// comparable across the recorded trajectory.
common::Context bench_context(std::uint64_t seed = 0);

// Passed to the case body once per repetition (warmup and measured).
class State {
 public:
  State(std::size_t iteration, bool warmup)
      : iteration_(iteration), warmup_(warmup) {}

  // Global 0-based repetition index (warmups first). Deterministic, so
  // bodies can derive per-iteration seeds from it and produce identical
  // results in every run of the same configuration.
  std::size_t iteration() const { return iteration_; }
  bool is_warmup() const { return warmup_; }

  // Named result counter; the value from the last measured repetition is
  // reported. Counters double as determinism fingerprints: two configs
  // (e.g. 1 vs 4 threads) must report identical counters.
  void counter(const std::string& name, double value) {
    counters_[name] = value;
  }

  // Named wall-clock reading in milliseconds (e.g. a phase split of the
  // case's own wall time). Emitted as a separate "timings" JSON object,
  // NEVER under "counters": timings are real clocks and legitimately
  // differ run to run, so they must stay outside the counter-determinism
  // gate scripts/bench.sh diffs across thread counts.
  void timing(const std::string& name, double ms) { timings_[name] = ms; }

  const std::map<std::string, double>& counters() const { return counters_; }
  const std::map<std::string, double>& timings() const { return timings_; }

 private:
  std::size_t iteration_;
  bool warmup_;
  std::map<std::string, double> counters_;
  std::map<std::string, double> timings_;
};

struct CaseResult {
  std::string name;
  std::size_t repeats = 0;
  double wall_ms_mean = 0.0;
  double wall_ms_min = 0.0;
  double wall_ms_max = 0.0;
  std::map<std::string, double> counters;
  std::map<std::string, double> timings;  // last measured repetition's
};

class Harness {
 public:
  explicit Harness(std::string binary_name);

  // Registers a case. repeats_override > 0 pins the measured repetitions
  // for this case regardless of --repeats, and warmup_override (when not
  // kNoOverride) pins the warmup count — together they let an expensive
  // end-to-end case run exactly once per invocation.
  static constexpr std::size_t kNoOverride =
      static_cast<std::size_t>(-1);
  void add(const std::string& name, std::function<void(State&)> body,
           std::size_t repeats_override = 0,
           std::size_t warmup_override = kNoOverride);

  // Parses flags, runs every (filtered) case, prints a table to stdout and
  // optionally writes JSON. Returns a process exit code.
  int run(int argc, char** argv);

 private:
  struct Case {
    std::string name;
    std::function<void(State&)> body;
    std::size_t repeats_override;
    std::size_t warmup_override;
  };
  std::string binary_name_;
  std::vector<Case> cases_;
};

// JSON string escaping for names/labels (quotes, backslashes, control
// characters). Exposed for the emitter and its tests.
std::string json_escape(const std::string& s);

}  // namespace bcclap::bench
