// E5 (Theorem 1.3 / Corollary 2.4): Laplacian solver — iterations ~
// log(1/eps), measured energy-norm error <= eps, preprocessing vs
// per-instance round split. Runs on the shared harness.
#include "support/harness.h"

#include <cmath>
#include <string>

#include "graph/generators.h"
#include "laplacian/solver.h"

namespace {

using namespace bcclap;

void laplacian_solve_eps(bench::State& s, int eps_exp) {
  const double eps = std::pow(10.0, -static_cast<double>(eps_exp));
  const std::size_t n = 48;
  rng::Stream gstream(5);
  const auto g = graph::complete(n, 6, gstream);
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = 4;
  laplacian::SparsifiedLaplacianSolver solver(g, opt, 1001);
  rng::Stream bstream(6);
  linalg::Vec b(n);
  for (auto& v : b) v = bstream.next_gaussian();
  linalg::remove_mean(b);
  const auto exact = laplacian::exact_laplacian_solve(g, b);
  const double ref = laplacian::laplacian_norm(g, exact);

  laplacian::SolveStats stats;
  const auto y = solver.solve(b, eps, &stats);
  s.counter("eps", eps);
  s.counter("iterations", static_cast<double>(stats.iterations));
  s.counter("instance_rounds", static_cast<double>(stats.rounds));
  s.counter("preproc_rounds",
            static_cast<double>(solver.preprocessing_rounds()));
  s.counter("measured_err",
            laplacian::laplacian_norm(g, linalg::sub(exact, y)) / ref);
}

void laplacian_solve_n(bench::State& s, std::size_t n) {
  rng::Stream gstream(n);
  const auto g = graph::complete(n, 4, gstream);
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = 2;
  laplacian::SparsifiedLaplacianSolver solver(g, opt, n * 7);
  linalg::Vec b(n, 0.0);
  b[0] = 1.0;
  b[n - 1] = -1.0;
  laplacian::SolveStats stats;
  const auto y = solver.solve(b, 1e-8, &stats);
  s.counter("n", static_cast<double>(n));
  s.counter("instance_rounds", static_cast<double>(stats.rounds));
  s.counter("preproc_rounds",
            static_cast<double>(solver.preprocessing_rounds()));
  s.counter("fingerprint_ynorm", linalg::norm2(y));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_laplacian");
  for (int e = 1; e <= 10; ++e) {
    h.add("laplacian_solve_eps/eps=1e-" + std::to_string(e),
          [e](bench::State& s) { laplacian_solve_eps(s, e); });
  }
  for (const std::size_t n : {16u, 32u, 64u, 96u}) {
    h.add("laplacian_solve_n/n=" + std::to_string(n),
          [n](bench::State& s) { laplacian_solve_n(s, n); });
  }
  return h.run(argc, argv);
}
