// E5 (Theorem 1.3 / Corollary 2.4): Laplacian solver — iterations ~
// log(1/eps), measured energy-norm error <= eps, preprocessing vs
// per-instance round split. Runs on the shared harness.
#include "support/harness.h"

#include <cmath>
#include <memory>
#include <string>

#include "graph/generators.h"
#include "graph/laplacian.h"
#include "laplacian/solver.h"
#include "linalg/cholesky.h"

namespace {

using namespace bcclap;

// Deterministic diagonally-dominant SPD matrix: symmetric uniform noise
// with diagonal n. Built once per case so the measured body is the
// factorization itself, not the generator.
linalg::DenseMatrix make_spd(std::size_t n, std::uint64_t seed) {
  rng::Stream stream(seed);
  linalg::DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = i == j ? static_cast<double>(n)
                              : stream.next_double() - 0.5;
      a(i, j) = v;
      a(j, i) = v;
    }
  }
  return a;
}

// E5b (PR 3): blocked LDLT factorization throughput — the last O(n^3)
// kernel on the hot path, now fanned out over the worker pool. The
// fingerprint counter is a bitwise function of the factor (solve is
// sequential), so the bench doubles as a cross-thread determinism gate.
void ldlt_factor_n(bench::State& s, const linalg::DenseMatrix& a) {
  const std::size_t n = a.rows();
  const auto f = linalg::LdltFactor::factor(bench::bench_context(), a);
  if (!f) {
    s.counter("factor_ok", 0.0);
    return;
  }
  linalg::Vec b(n, 0.0);
  b[0] = 1.0;
  b[n - 1] = -1.0;
  s.counter("n", static_cast<double>(n));
  s.counter("factor_ok", 1.0);
  s.counter("fingerprint_xnorm", linalg::norm2(f->solve(b)));
}

// Per-component factorization fan-out on a disconnected union of random
// components (the Gremban-reduction workload shape).
void component_factor_n(bench::State& s, std::size_t n_per_comp,
                        std::size_t comps) {
  rng::Stream gstream(n_per_comp * 31 + comps);
  graph::Graph g(n_per_comp * comps);
  for (std::size_t c = 0; c < comps; ++c) {
    const auto part = graph::random_connected_gnp(
        n_per_comp, 0.3, static_cast<std::int64_t>(c + 2), gstream);
    for (std::size_t e = 0; e < part.num_edges(); ++e) {
      const auto& ed = part.edge(e);
      g.add_edge(ed.u + c * n_per_comp, ed.v + c * n_per_comp, ed.weight);
    }
  }
  const auto f =
      linalg::ComponentLaplacianFactor::factor(bench::bench_context(),
                                               graph::laplacian(g));
  if (!f) {
    s.counter("factor_ok", 0.0);
    return;
  }
  linalg::Vec b(g.num_vertices(), 0.0);
  for (std::size_t v = 0; v < g.num_vertices(); ++v)
    b[v] = (v % 2 == 0) ? 1.0 : -1.0;
  s.counter("n", static_cast<double>(g.num_vertices()));
  s.counter("components", static_cast<double>(f->num_components()));
  s.counter("factor_ok", 1.0);
  s.counter("fingerprint_xnorm",
            linalg::norm2(f->solve(bench::bench_context(), b)));
}

// PR 5: batched multi-RHS panels — "factor once, solve many". The body
// pays sparsify + factor once, then solves a k-wide panel through one
// shared Chebyshev loop; per-RHS cost is wall / k. scripts/bench.sh gates
// on the k = 32 per-RHS cost landing strictly below k = 1 (amortization).
// The instance is the bounded-degree sparse generator at n = 256
// (ROADMAP "Larger workloads"): batched cases scale n without inheriting
// the dense n = 256 pipeline case's wall time.
void batched_solve_k(bench::State& s, const graph::Graph& g, std::size_t k) {
  const std::size_t n = g.num_vertices();
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = 2;
  laplacian::SparsifiedLaplacianSolver solver(bench::bench_context(4242), g,
                                              opt);
  rng::Stream bstream(n * 13 + k);
  linalg::DenseMatrix b(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) b(i, j) = bstream.next_gaussian();
  }
  laplacian::SolveStats stats;
  const auto x = solver.solve_many(b, 1e-8, &stats);
  s.counter("n", static_cast<double>(n));
  s.counter("k", static_cast<double>(k));
  s.counter("iterations", static_cast<double>(stats.iterations));
  s.counter("panel_rounds", static_cast<double>(stats.rounds));
  s.counter("preproc_rounds",
            static_cast<double>(solver.preprocessing_rounds()));
  double frob = 0.0;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const double* xi = x.row_data(i);
    for (std::size_t j = 0; j < x.cols(); ++j) frob += xi[j] * xi[j];
  }
  s.counter("fingerprint_xfrob", std::sqrt(frob));
}

void laplacian_solve_eps(bench::State& s, int eps_exp) {
  const double eps = std::pow(10.0, -static_cast<double>(eps_exp));
  const std::size_t n = 48;
  rng::Stream gstream(5);
  const auto g = graph::complete(n, 6, gstream);
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = 4;
  laplacian::SparsifiedLaplacianSolver solver(bench::bench_context(1001), g,
                                              opt);
  rng::Stream bstream(6);
  linalg::Vec b(n);
  for (auto& v : b) v = bstream.next_gaussian();
  linalg::remove_mean(b);
  const auto exact =
      laplacian::exact_laplacian_solve(bench::bench_context(), g, b);
  const double ref = laplacian::laplacian_norm(bench::bench_context(), g,
                                               exact);

  laplacian::SolveStats stats;
  const auto y = solver.solve(b, eps, &stats);
  s.counter("eps", eps);
  s.counter("iterations", static_cast<double>(stats.iterations));
  s.counter("instance_rounds", static_cast<double>(stats.rounds));
  s.counter("preproc_rounds",
            static_cast<double>(solver.preprocessing_rounds()));
  s.counter("measured_err",
            laplacian::laplacian_norm(bench::bench_context(), g,
                                      linalg::sub(exact, y)) /
                ref);
}

void laplacian_solve_n(bench::State& s, std::size_t n) {
  rng::Stream gstream(n);
  const auto g = graph::complete(n, 4, gstream);
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = 2;
  laplacian::SparsifiedLaplacianSolver solver(bench::bench_context(n * 7), g,
                                              opt);
  linalg::Vec b(n, 0.0);
  b[0] = 1.0;
  b[n - 1] = -1.0;
  laplacian::SolveStats stats;
  const auto y = solver.solve(b, 1e-8, &stats);
  s.counter("n", static_cast<double>(n));
  s.counter("instance_rounds", static_cast<double>(stats.rounds));
  s.counter("preproc_rounds",
            static_cast<double>(solver.preprocessing_rounds()));
  s.counter("fingerprint_ynorm", linalg::norm2(y));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_laplacian");
  for (int e = 1; e <= 10; ++e) {
    h.add("laplacian_solve_eps/eps=1e-" + std::to_string(e),
          [e](bench::State& s) { laplacian_solve_eps(s, e); });
  }
  for (const std::size_t n : {16u, 32u, 64u, 96u}) {
    h.add("laplacian_solve_n/n=" + std::to_string(n),
          [n](bench::State& s) { laplacian_solve_n(s, n); });
  }
  // PR 3: n >= 256 factorization instances — per-node compute dominates
  // dispatch at these sizes, so multi-core speedups become observable.
  for (const std::size_t n : {256u, 384u, 512u}) {
    auto a = std::make_shared<linalg::DenseMatrix>(make_spd(n, n * 7 + 3));
    h.add("ldlt_factor/n=" + std::to_string(n),
          [a](bench::State& s) { ldlt_factor_n(s, *a); });
  }
  h.add("component_factor/n=256/comps=4",
        [](bench::State& s) { component_factor_n(s, 64, 4); });
  // PR 5: batched multi-RHS panels on the bounded-degree sparse generator
  // (degree <= 2 + 2*8) — n = 256 without the dense case's wall time.
  {
    rng::Stream gstream(256 * 5 + 1);
    auto g = std::make_shared<graph::Graph>(
        graph::random_regularish(256, 8, 4, gstream));
    for (const std::size_t k : {1u, 8u, 32u}) {
      h.add("batched_solve/n=256/k=" + std::to_string(k),
            [g, k](bench::State& s) { batched_solve_k(s, *g, k); });
    }
  }
  return h.run(argc, argv);
}
