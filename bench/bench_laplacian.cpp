// E5 (Theorem 1.3 / Corollary 2.4): Laplacian solver — iterations ~
// log(1/eps), measured energy-norm error <= eps, preprocessing vs
// per-instance round split.
#include <benchmark/benchmark.h>

#include <cmath>

#include "graph/generators.h"
#include "laplacian/solver.h"

namespace {

using namespace bcclap;

void BM_LaplacianSolveEps(benchmark::State& state) {
  const double eps = std::pow(10.0, -static_cast<double>(state.range(0)));
  const std::size_t n = 48;
  rng::Stream gstream(5);
  const auto g = graph::complete(n, 6, gstream);
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = 4;
  laplacian::SparsifiedLaplacianSolver solver(g, opt, 1001);
  rng::Stream bstream(6);
  linalg::Vec b(n);
  for (auto& v : b) v = bstream.next_gaussian();
  linalg::remove_mean(b);
  const auto exact = laplacian::exact_laplacian_solve(g, b);
  const double ref = laplacian::laplacian_norm(g, exact);

  double iters = 0, rounds = 0, err = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    laplacian::SolveStats stats;
    const auto y = solver.solve(b, eps, &stats);
    iters += static_cast<double>(stats.iterations);
    rounds += static_cast<double>(stats.rounds);
    err += laplacian::laplacian_norm(g, linalg::sub(exact, y)) / ref;
    ++runs;
  }
  const double r = static_cast<double>(runs);
  state.counters["eps"] = eps;
  state.counters["iterations"] = iters / r;
  state.counters["instance_rounds"] = rounds / r;
  state.counters["preproc_rounds"] =
      static_cast<double>(solver.preprocessing_rounds());
  state.counters["measured_err"] = err / r;
}

BENCHMARK(BM_LaplacianSolveEps)
    ->DenseRange(1, 10, 1)
    ->Unit(benchmark::kMicrosecond);

// Rounds vs n at fixed eps (the Theta(polylog) per-instance claim).
void BM_LaplacianSolveN(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  rng::Stream gstream(n);
  const auto g = graph::complete(n, 4, gstream);
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = 2;
  laplacian::SparsifiedLaplacianSolver solver(g, opt, n * 7);
  linalg::Vec b(n, 0.0);
  b[0] = 1.0;
  b[n - 1] = -1.0;
  double rounds = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    laplacian::SolveStats stats;
    benchmark::DoNotOptimize(solver.solve(b, 1e-8, &stats));
    rounds += static_cast<double>(stats.rounds);
    ++runs;
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["instance_rounds"] = rounds / static_cast<double>(runs);
  state.counters["preproc_rounds"] =
      static_cast<double>(solver.preprocessing_rounds());
}

BENCHMARK(BM_LaplacianSolveN)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(96)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
