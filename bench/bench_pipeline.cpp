// E12 (Figure 1): the full pipeline on one network —
// spanner -> sparsifier -> Laplacian solver -> Gremban SDD engine ->
// LP solver -> exact min-cost max-flow, with cumulative round accounting.
#include <benchmark/benchmark.h>

#include "flow/mcmf_solver.h"
#include "flow/ssp.h"
#include "graph/generators.h"
#include "laplacian/bcc_solver.h"
#include "laplacian/solver.h"
#include "sparsify/verifier.h"

namespace {

using namespace bcclap;

void BM_PipelineSparsifyAndSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  rng::Stream gstream(n);
  const auto g = graph::complete(n, 4, gstream);
  double eps_achieved = 0, solve_rounds = 0, preproc = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    sparsify::SparsifyOptions opt;
    opt.epsilon = 0.5;
    opt.k = 2;
    opt.t = 3;
    laplacian::SparsifiedLaplacianSolver solver(g, opt, runs + 1);
    preproc += static_cast<double>(solver.preprocessing_rounds());
    const auto check = sparsify::check_sparsifier(g, solver.sparsifier());
    eps_achieved += check.valid ? check.achieved_epsilon() : 99.0;
    linalg::Vec b(n, 0.0);
    b[0] = 1.0;
    b[n - 1] = -1.0;
    laplacian::SolveStats stats;
    benchmark::DoNotOptimize(solver.solve(b, 1e-8, &stats));
    solve_rounds += static_cast<double>(stats.rounds);
    ++runs;
  }
  const double r = static_cast<double>(runs);
  state.counters["n"] = static_cast<double>(n);
  state.counters["achieved_eps"] = eps_achieved / r;
  state.counters["preproc_rounds"] = preproc / r;
  state.counters["solve_rounds"] = solve_rounds / r;
}

BENCHMARK(BM_PipelineSparsifyAndSolve)
    ->Arg(24)->Arg(40)->Arg(56)
    ->Unit(benchmark::kMillisecond);

// End-to-end flow with the *sparsified* SDD engine inside the IPM — every
// box of Figure 1 exercised in one run.
void BM_PipelineFlowFullStack(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double exact = 0, rounds = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    rng::Stream gstream(runs * 37 + n);
    const auto g = graph::random_flow_network(n, n + 4, 3, 3, gstream);
    const auto baseline = flow::min_cost_max_flow_ssp(g, 0, n - 1);
    flow::McmfOptions opt;
    opt.seed = runs + 9;
    std::uint64_t engine_seed = 5000;
    opt.lp.gram_factory = [&engine_seed](const linalg::DenseMatrix& gram) {
      return laplacian::make_sparsified_sdd_engine(gram, engine_seed++);
    };
    // The sparsified engine is expensive per solve; bound the centering
    // work and skip boosting retries.
    opt.lp.epsilon = 1e-2;
    opt.lp.max_center_steps = 25;
    opt.max_retries = 0;
    const auto ipm = flow::min_cost_max_flow_ipm(g, 0, n - 1, opt);
    exact += (ipm.exact && ipm.flow.value == baseline.value &&
              ipm.flow.cost == baseline.cost)
                 ? 1
                 : 0;
    rounds += static_cast<double>(ipm.rounds);
    ++runs;
  }
  const double r = static_cast<double>(runs);
  state.counters["n"] = static_cast<double>(n);
  state.counters["exact_match_rate"] = exact / r;
  state.counters["rounds"] = rounds / r;
}

BENCHMARK(BM_PipelineFlowFullStack)
    ->Arg(5)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace

BENCHMARK_MAIN();
