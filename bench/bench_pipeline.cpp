// E12 (Figure 1): the full pipeline on one network —
// spanner -> sparsifier -> Laplacian solver -> Gremban SDD engine ->
// LP solver -> exact min-cost max-flow, with cumulative round accounting.
//
// Runs on the shared harness (bench/support/harness.h) and is the binary
// scripts/bench.sh uses for the thread-scaling trajectory: the counters
// (rounds, sizes, epsilons, fingerprint) must be identical between
// BCCLAP_THREADS=1 and BCCLAP_THREADS=N runs — only wall time may differ.
#include "support/harness.h"

#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "core/runtime.h"
#include "flow/mcmf_solver.h"
#include "flow/ssp.h"
#include "graph/generators.h"
#include "graph/laplacian.h"
#include "laplacian/bcc_solver.h"
#include "laplacian/engine.h"
#include "laplacian/solver.h"
#include "linalg/amd.h"
#include "linalg/vector_ops.h"
#include "sparsify/verifier.h"

namespace {

using namespace bcclap;

void pipeline_sparsify_and_solve(bench::State& s, std::size_t n) {
  rng::Stream gstream(n);
  const auto g = graph::complete(n, 4, gstream);
  sparsify::SparsifyOptions opt;
  opt.epsilon = 0.5;
  opt.k = 2;
  opt.t = 3;
  laplacian::SparsifiedLaplacianSolver solver(
      bench::bench_context(s.iteration() + 1), g, opt);
  const auto check = sparsify::check_sparsifier(g, solver.sparsifier());
  linalg::Vec b(n, 0.0);
  b[0] = 1.0;
  b[n - 1] = -1.0;
  laplacian::SolveStats stats;
  const auto x = solver.solve(b, 1e-8, &stats);

  s.counter("n", static_cast<double>(n));
  s.counter("achieved_eps", check.valid ? check.achieved_epsilon() : 99.0);
  s.counter("preproc_rounds",
            static_cast<double>(solver.preprocessing_rounds()));
  s.counter("solve_rounds", static_cast<double>(stats.rounds));
  s.counter("sparsifier_edges",
            static_cast<double>(solver.sparsifier().num_edges()));
  // Determinism fingerprint: solution norm is a function of every upstream
  // choice (spanner, sampling, solver iterations).
  s.counter("fingerprint_xnorm", linalg::norm2(x));
}

// PR 4: two Runtimes — one pinned to 1 worker, one on the env-resolved
// count — running the same n-node pipeline concurrently from two threads.
// The `identical` counter asserts the per-Runtime determinism contract
// in-run (byte-identical solutions and equal rounds across the two
// differently-threaded Runtimes), so the cross-config counter gate of
// scripts/bench.sh doubles as a concurrency determinism check.
void pipeline_concurrent_runtimes(bench::State& s, std::size_t n) {
  rng::Stream gstream(n);
  const auto g = graph::complete(n, 4, gstream);
  LaplacianSolveOptions lopt;
  lopt.sparsify.epsilon = 0.5;
  lopt.sparsify.k = 2;
  lopt.sparsify.t = 3;
  linalg::Vec b(n, 0.0);
  b[0] = 1.0;
  b[n - 1] = -1.0;

  RuntimeOptions a_opts;
  a_opts.threads = 1;
  a_opts.seed = 11;
  Runtime rt_a(a_opts);
  RuntimeOptions b_opts;
  b_opts.threads = 0;  // BCCLAP_THREADS / hardware
  b_opts.seed = 11;
  Runtime rt_b(b_opts);

  LaplacianRun ra, rb;
  std::thread ta([&] { ra = rt_a.solve_laplacian(g, b, lopt); });
  std::thread tb([&] { rb = rt_b.solve_laplacian(g, b, lopt); });
  ta.join();
  tb.join();

  const bool identical =
      ra.usable && rb.usable && !ra.x.empty() &&
      ra.x.size() == rb.x.size() &&
      std::memcmp(ra.x.data(), rb.x.data(),
                  ra.x.size() * sizeof(double)) == 0 &&
      ra.stats.rounds == rb.stats.rounds &&
      ra.stats.iterations == rb.stats.iterations;
  s.counter("n", static_cast<double>(n));
  s.counter("identical", identical ? 1.0 : 0.0);
  s.counter("rounds", static_cast<double>(ra.stats.rounds));
  s.counter("fingerprint_xnorm", linalg::norm2(ra.x));
}

// PR 5: the batched facade — one rt.solve_laplacian_many call sparsifies
// and factors once for a whole k-wide panel. Bounded-degree sparse
// generator, so the n = 256 batched cases do not inherit the dense
// pipeline case's wall time.
void pipeline_batched_solve(bench::State& s, std::size_t n, std::size_t k) {
  rng::Stream gstream(n * 3 + 1);
  const auto g = graph::random_regularish(n, 8, 4, gstream);
  RuntimeOptions opts;
  opts.threads = 0;  // BCCLAP_THREADS / hardware
  opts.seed = 77;
  Runtime rt(opts);
  LaplacianSolveOptions lopt;
  lopt.sparsify.epsilon = 0.5;
  lopt.sparsify.k = 2;
  lopt.sparsify.t = 2;
  rng::Stream bstream(n * 17 + k);
  linalg::DenseMatrix b(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) b(i, j) = bstream.next_gaussian();
  }
  const auto run = rt.solve_laplacian_many(g, b, lopt);
  s.counter("n", static_cast<double>(n));
  s.counter("k", static_cast<double>(k));
  s.counter("usable", run.usable ? 1.0 : 0.0);
  s.counter("rounds", static_cast<double>(run.stats.rounds));
  s.counter("panels", static_cast<double>(run.stats.panels));
  double frob = 0.0;
  for (std::size_t i = 0; i < run.x.rows(); ++i) {
    const double* xi = run.x.row_data(i);
    for (std::size_t j = 0; j < run.x.cols(); ++j) frob += xi[j] * xi[j];
  }
  s.counter("fingerprint_xfrob", std::sqrt(frob));
}

// PR 6: the sparse-first factorization stack at scales the dense kernel
// cannot reach (n = 10^4 would need two 800 MB dense triangles and ~3x
// the arithmetic). Bounded-degree sparse generator; the facade's
// sparse_factors counter doubles as the dispatch gate in scripts/bench.sh
// — the preconditioner factorization must actually run on the sparse
// path at these sizes. eps = 1e-4 bounds the Chebyshev iteration count
// so the case measures the factorization stack, not iteration volume.
void pipeline_sparse_solve(bench::State& s, std::size_t n, std::size_t k) {
  rng::Stream gstream(n * 3 + 1);
  const auto g = graph::random_regularish(n, 8, 4, gstream);
  RuntimeOptions opts;
  opts.threads = 0;  // BCCLAP_THREADS / hardware
  opts.seed = 77;
  Runtime rt(opts);
  LaplacianSolveOptions lopt;
  lopt.eps = 1e-4;
  lopt.sparsify.epsilon = 0.5;
  lopt.sparsify.k = 2;
  lopt.sparsify.t = 2;
  // Pinned: at these sizes "auto" now resolves to exact-sparse (PR 7 —
  // see pipeline_engine_auto below); this trajectory case keeps measuring
  // the sparsified pipeline's factorization stack, fingerprints unchanged.
  lopt.engine = "sparsified-chebyshev";
  s.counter("n", static_cast<double>(n));
  s.counter("k", static_cast<double>(k));
  // Factor-phase split (PR 10): supernode/fill counts are functions of
  // the pattern (counter-gated); the phase walls are clocks and report
  // through the timings channel only.
  const auto report_phases = [&s](const core::RunStats& st) {
    s.counter("supernodes", static_cast<double>(st.supernodes));
    s.counter("factor_fill_nnz", static_cast<double>(st.factor_fill_nnz));
    s.timing("ordering_ms", st.ordering_seconds * 1e3);
    s.timing("symbolic_ms", st.symbolic_seconds * 1e3);
    s.timing("numeric_ms", st.numeric_seconds * 1e3);
  };
  if (k == 1) {
    linalg::Vec b(n, 0.0);
    b[0] = 1.0;
    b[n - 1] = -1.0;
    const auto run = rt.solve_laplacian(g, b, lopt);
    s.counter("usable", run.usable ? 1.0 : 0.0);
    s.counter("iterations", static_cast<double>(run.stats.iterations));
    s.counter("sparse_factors", static_cast<double>(run.stats.sparse_factors));
    s.counter("dense_factors", static_cast<double>(run.stats.dense_factors));
    s.counter("fingerprint_xnorm", linalg::norm2(run.x));
    report_phases(run.stats);
    return;
  }
  rng::Stream bstream(n * 17 + k);
  linalg::DenseMatrix b(n, k);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) b(i, j) = bstream.next_gaussian();
  }
  const auto run = rt.solve_laplacian_many(g, b, lopt);
  s.counter("usable", run.usable ? 1.0 : 0.0);
  s.counter("iterations", static_cast<double>(run.stats.iterations));
  s.counter("sparse_factors", static_cast<double>(run.stats.sparse_factors));
  s.counter("dense_factors", static_cast<double>(run.stats.dense_factors));
  double frob = 0.0;
  for (std::size_t i = 0; i < run.x.rows(); ++i) {
    const double* xi = run.x.row_data(i);
    for (std::size_t j = 0; j < run.x.cols(); ++j) frob += xi[j] * xi[j];
  }
  s.counter("fingerprint_xfrob", std::sqrt(frob));
  report_phases(run.stats);
}

// PR 10: the AMD rewrite measured against the retained exact-MD reference
// on the n = 10^4 instance's sparsified preconditioner topology. Wall
// readings go in the timings channel; the orderings' cutoffs and fill
// counts are pattern-determined and ride the counter gate.
void ordering_amd_vs_exact(bench::State& s, std::size_t n) {
  rng::Stream gstream(n * 3 + 1);
  const auto g = graph::random_regularish(n, 8, 4, gstream);
  const auto a = graph::laplacian_csc(g);
  const auto t0 = std::chrono::steady_clock::now();
  const auto amd = linalg::amd_order(a);
  const auto t1 = std::chrono::steady_clock::now();
  const auto exact = linalg::exact_min_degree_order(a);
  const auto t2 = std::chrono::steady_clock::now();
  s.timing("amd_ms",
           std::chrono::duration<double, std::milli>(t1 - t0).count());
  s.timing("exact_md_ms",
           std::chrono::duration<double, std::milli>(t2 - t1).count());
  s.counter("n", static_cast<double>(n));
  s.counter("amd_t", static_cast<double>(amd.t));
  s.counter("exact_t", static_cast<double>(exact.t));
  s.counter("amd_fill", static_cast<double>(linalg::ordering_fill_nnz(a, amd)));
  s.counter("exact_fill",
            static_cast<double>(linalg::ordering_fill_nnz(a, exact)));
}

// PR 7: the engine registry's auto-tuner end to end — "auto" (the facade
// default) must route this large sparse instance to the exact-sparse
// engine. The engine_is_exact_sparse counter doubles as a selection gate:
// a tuner regression that sends it back to the sparsified pipeline (or
// anywhere else) flips the counter and trips the bench determinism check.
void pipeline_engine_auto(bench::State& s, std::size_t n) {
  rng::Stream gstream(n * 3 + 1);
  const auto g = graph::random_regularish(n, 8, 4, gstream);
  RuntimeOptions opts;
  opts.threads = 0;  // BCCLAP_THREADS / hardware
  opts.seed = 77;
  Runtime rt(opts);
  LaplacianSolveOptions lopt;
  lopt.eps = 1e-4;
  linalg::Vec b(n, 0.0);
  b[0] = 1.0;
  b[n - 1] = -1.0;
  const auto run = rt.solve_laplacian(g, b, lopt);
  s.counter("n", static_cast<double>(n));
  s.counter("usable", run.usable ? 1.0 : 0.0);
  s.counter("engine_is_exact_sparse",
            run.stats.engine == "exact-sparse" ? 1.0 : 0.0);
  s.counter("sparse_factors", static_cast<double>(run.stats.sparse_factors));
  s.counter("dense_factors", static_cast<double>(run.stats.dense_factors));
  s.counter("fingerprint_xnorm", linalg::norm2(run.x));
}

// PR 8: the factorization cache end to end — one Runtime with a private
// cache solves the same instance cold then warm. The warm run must hit
// the cache and skip every unit of prepare work (warm_sparsify_count = 0)
// while reproducing the uncached facade's bytes exactly
// (identical_to_uncached = 1). All counters are thread-count invariant,
// so the case rides the scripts/bench.sh cross-config gate.
void pipeline_cached_solve(bench::State& s, std::size_t n) {
  rng::Stream gstream(n * 3 + 1);
  const auto g = graph::random_regularish(n, 8, 4, gstream);
  LaplacianSolveOptions lopt;
  lopt.eps = 1e-4;
  lopt.sparsify.epsilon = 0.5;
  lopt.sparsify.k = 2;
  lopt.sparsify.t = 2;
  lopt.engine = "sparsified-chebyshev";
  linalg::Vec b(n, 0.0);
  b[0] = 1.0;
  b[n - 1] = -1.0;

  RuntimeOptions opts;
  opts.threads = 0;  // BCCLAP_THREADS / hardware
  opts.seed = 77;
  opts.factor_cache_bytes = 256u << 20;
  Runtime rt(opts);
  const auto cold = rt.solve_laplacian(g, b, lopt);
  const auto warm = rt.solve_laplacian(g, b, lopt);

  RuntimeOptions plain = opts;
  plain.factor_cache_bytes = 0;
  Runtime uncached_rt(plain);
  const auto uncached = uncached_rt.solve_laplacian(g, b, lopt);

  const bool identical =
      cold.usable && warm.usable && uncached.usable && !cold.x.empty() &&
      cold.x.size() == warm.x.size() && cold.x.size() == uncached.x.size() &&
      std::memcmp(cold.x.data(), warm.x.data(),
                  cold.x.size() * sizeof(double)) == 0 &&
      std::memcmp(cold.x.data(), uncached.x.data(),
                  cold.x.size() * sizeof(double)) == 0;
  s.counter("n", static_cast<double>(n));
  s.counter("cold_cache_misses",
            static_cast<double>(cold.stats.cache_misses));
  s.counter("warm_cache_hits", static_cast<double>(warm.stats.cache_hits));
  s.counter("warm_sparsify_count",
            static_cast<double>(warm.stats.sparsify_count));
  s.counter("identical_to_uncached", identical ? 1.0 : 0.0);
  s.counter("fingerprint_xnorm", linalg::norm2(warm.x));
}

void pipeline_flow_full_stack(bench::State& s, std::size_t n) {
  rng::Stream gstream(s.iteration() * 37 + n);
  const auto g = graph::random_flow_network(n, n + 4, 3, 3, gstream);
  const auto baseline = flow::min_cost_max_flow_ssp(g, 0, n - 1);
  flow::McmfOptions opt;
  opt.seed = s.iteration() + 9;
  std::uint64_t engine_seed = 5000;
  opt.lp.gram_factory = [&engine_seed](const linalg::DenseMatrix& gram) {
    return laplacian::EngineRegistry::instance().create_sdd(
        "sparsified-chebyshev", bench::bench_context(engine_seed++), gram, {});
  };
  // The sparsified engine is expensive per solve; bound the centering
  // work and skip boosting retries.
  opt.lp.epsilon = 1e-2;
  opt.lp.max_center_steps = 25;
  opt.max_retries = 0;
  const auto ipm = flow::min_cost_max_flow_ipm(bench::bench_context(opt.seed),
                                               g, 0, n - 1, opt);
  s.counter("n", static_cast<double>(n));
  s.counter("exact_match",
            (ipm.exact && ipm.flow.value == baseline.value &&
             ipm.flow.cost == baseline.cost)
                ? 1.0
                : 0.0);
  s.counter("rounds", static_cast<double>(ipm.rounds));
}

}  // namespace

int main(int argc, char** argv) {
  bench::Harness h("bench_pipeline");
  for (const std::size_t n : {24u, 40u, 56u}) {
    h.add("pipeline_sparsify_and_solve/n=" + std::to_string(n),
          [n](bench::State& s) { pipeline_sparsify_and_solve(s, n); });
  }
  // PR 3: n >= 256 pipeline instance, where per-node compute (not pool
  // dispatch) dominates. Run exactly once per invocation — the sparsifier
  // broadcasts O(n^2) words per superstep at this size.
  h.add(
      "pipeline_sparsify_and_solve/n=256",
      [](bench::State& s) { pipeline_sparsify_and_solve(s, 256); },
      /*repeats_override=*/1, /*warmup_override=*/0);
  // PR 4: 2 Runtimes x n=128 pipeline, concurrently. Quadratic broadcast
  // volume at this size — run exactly once per invocation.
  h.add(
      "pipeline_concurrent_runtimes/n=128",
      [](bench::State& s) { pipeline_concurrent_runtimes(s, 128); },
      /*repeats_override=*/1, /*warmup_override=*/0);
  // The full-stack IPM case is multi-second; run it exactly once.
  h.add(
      "pipeline_flow_full_stack/n=5",
      [](bench::State& s) { pipeline_flow_full_stack(s, 5); },
      /*repeats_override=*/1, /*warmup_override=*/0);
  // PR 5: batched facade at n = 256 (sparse generator), k = 1 / 8 / 32.
  // Each call re-sparsifies (that is the amortization being measured);
  // run each exactly once.
  for (const std::size_t k : {1u, 8u, 32u}) {
    h.add(
        "pipeline_batched_solve/n=256/k=" + std::to_string(k),
        [k](bench::State& s) { pipeline_batched_solve(s, 256, k); },
        /*repeats_override=*/1, /*warmup_override=*/0);
  }
  // PR 6: sparse-first factorization at n far past the dense wall
  // (single solve and a k = 32 panel per size). Multi-second bodies —
  // run each exactly once.
  for (const std::size_t n : {1024u, 4096u, 10000u}) {
    h.add(
        "pipeline_sparse_solve/n=" + std::to_string(n),
        [n](bench::State& s) { pipeline_sparse_solve(s, n, 1); },
        /*repeats_override=*/1, /*warmup_override=*/0);
    h.add(
        "pipeline_sparse_batched/n=" + std::to_string(n) + "/k=32",
        [n](bench::State& s) { pipeline_sparse_solve(s, n, 32); },
        /*repeats_override=*/1, /*warmup_override=*/0);
  }
  // PR 10: AMD vs the exact-MD reference on the n = 10^4 topology —
  // the ordering-speedup gate of scripts/bench.sh reads this case's
  // timings. The exact ordering is multi-second; run exactly once.
  h.add(
      "ordering_amd_vs_exact/n=10000",
      [](bench::State& s) { ordering_amd_vs_exact(s, 10000); },
      /*repeats_override=*/1, /*warmup_override=*/0);
  // PR 8: cold + warm cached solve at n = 1024 (three full solves per
  // body, two of them prepare) — run exactly once.
  h.add(
      "pipeline_cached_solve/n=1024",
      [](bench::State& s) { pipeline_cached_solve(s, 1024); },
      /*repeats_override=*/1, /*warmup_override=*/0);
  // PR 7: the auto-tuner routing the n = 1024 sparse instance to the
  // exact-sparse engine (one direct factorization instead of the
  // sparsify + Chebyshev pipeline).
  h.add(
      "pipeline_engine_auto/n=1024",
      [](bench::State& s) { pipeline_engine_auto(s, 1024); },
      /*repeats_override=*/1, /*warmup_override=*/0);
  return h.run(argc, argv);
}
