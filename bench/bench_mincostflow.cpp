// E11 (Theorem 1.1): exact min-cost max-flow via the LP pipeline — exact-
// match rate against the combinatorial baseline, path steps and rounds vs
// n and vs the magnitude bound M.
#include <benchmark/benchmark.h>

#include "core/runtime.h"

#include <cmath>

#include "flow/mcmf_solver.h"
#include "flow/ssp.h"
#include "graph/generators.h"

namespace {

using namespace bcclap;

// Execution context for the micro-benches: the process-default Runtime's
// context (BCCLAP_THREADS-sized) with the given seed — what the retired
// context-less wrappers resolved to.
common::Context gb_context(std::uint64_t seed = 0) {
  return Runtime::process_default().context().with_seed(seed);
}

void BM_McmfVsN(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  double exact = 0, value_match = 0, cost_match = 0, steps = 0, rounds = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    rng::Stream gstream(runs * 7919 + n);
    const auto g = graph::random_flow_network(n, 2 * n, 5, 4, gstream);
    const auto baseline = flow::min_cost_max_flow_ssp(g, 0, n - 1);
    flow::McmfOptions opt;
    opt.seed = runs * 31 + 5;
    const auto ipm = flow::min_cost_max_flow_ipm(
        gb_context(opt.seed), g, 0, n - 1, opt);
    exact += ipm.exact ? 1 : 0;
    value_match += (ipm.exact && ipm.flow.value == baseline.value) ? 1 : 0;
    cost_match += (ipm.exact && ipm.flow.cost == baseline.cost) ? 1 : 0;
    steps += static_cast<double>(ipm.path_steps);
    rounds += static_cast<double>(ipm.rounds);
    ++runs;
  }
  const double r = static_cast<double>(runs);
  state.counters["n"] = static_cast<double>(n);
  state.counters["feasible_rate"] = exact / r;
  state.counters["value_match_rate"] = value_match / r;
  state.counters["cost_match_rate"] = cost_match / r;
  state.counters["path_steps"] = steps / r;
  state.counters["rounds"] = rounds / r;
  state.counters["sqrt_n"] = std::sqrt(static_cast<double>(n));
}

BENCHMARK(BM_McmfVsN)
    ->Arg(6)->Arg(8)->Arg(10)->Arg(12)->Arg(16)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_McmfVsM(benchmark::State& state) {
  // Magnitude sweep (the log^3 M factor of Theorem 1.1).
  const std::int64_t mag = state.range(0);
  const std::size_t n = 8;
  double cost_match = 0, rounds = 0;
  std::size_t runs = 0;
  for (auto _ : state) {
    rng::Stream gstream(runs * 101 + static_cast<std::uint64_t>(mag));
    const auto g = graph::random_flow_network(n, 2 * n, mag, mag, gstream);
    const auto baseline = flow::min_cost_max_flow_ssp(g, 0, n - 1);
    flow::McmfOptions opt;
    opt.seed = runs * 13 + 1;
    const auto ipm = flow::min_cost_max_flow_ipm(
        gb_context(opt.seed), g, 0, n - 1, opt);
    cost_match += (ipm.exact && ipm.flow.cost == baseline.cost &&
                   ipm.flow.value == baseline.value)
                      ? 1
                      : 0;
    rounds += static_cast<double>(ipm.rounds);
    ++runs;
  }
  const double r = static_cast<double>(runs);
  state.counters["M"] = static_cast<double>(mag);
  state.counters["exact_match_rate"] = cost_match / r;
  state.counters["rounds"] = rounds / r;
}

BENCHMARK(BM_McmfVsM)
    ->Arg(2)->Arg(8)->Arg(32)->Arg(128)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
