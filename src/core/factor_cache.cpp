#include "core/factor_cache.h"

#include <cstring>
#include <utility>

namespace bcclap::core {

namespace {

// splitmix64 finalizer — same mixer as graph::fingerprint, applied to the
// option fields' exact bit patterns.
std::uint64_t mix(std::uint64_t h, std::uint64_t token) {
  std::uint64_t z = h ^ token;
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t double_bits(double v) {
  if (v == 0.0) v = 0.0;  // normalize -0.0
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

std::uint64_t prepare_options_hash(const laplacian::EngineOptions& opt) {
  std::uint64_t h = 0x6a09e667f3bcc908ULL;
  h = mix(h, double_bits(opt.sparsify.epsilon));
  h = mix(h, opt.sparsify.k);
  h = mix(h, opt.sparsify.t);
  h = mix(h, double_bits(opt.sparsify.t_constant));
  h = mix(h, opt.sparsify.iterations);
  h = mix(h, opt.sparsify.growing_t ? 1 : 0);
  return h;
}

std::shared_ptr<const laplacian::PreparedLaplacian> FactorCache::find_locked(
    const FactorCacheKey& key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->key == key) {
      entries_.splice(entries_.begin(), entries_, it);
      return entries_.front().artifact;
    }
  }
  return nullptr;
}

std::shared_ptr<const laplacian::PreparedLaplacian> FactorCache::lookup(
    const FactorCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (auto found = find_locked(key)) {
    ++hits_;
    return found;
  }
  ++misses_;
  return nullptr;
}

std::shared_ptr<const laplacian::PreparedLaplacian> FactorCache::peek(
    const FactorCacheKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& entry : entries_) {
    if (entry.key == key) return entry.artifact;
  }
  return nullptr;
}

std::shared_ptr<const laplacian::PreparedLaplacian> FactorCache::insert_locked(
    const FactorCacheKey& key,
    std::shared_ptr<const laplacian::PreparedLaplacian> artifact) {
  // First-wins dedupe: a concurrent preparer may have beaten us here; the
  // entry already resident is the canonical artifact for this key.
  if (auto existing = find_locked(key)) return existing;
  const std::size_t bytes = artifact->resident_bytes();
  if (bytes > max_bytes_) return artifact;  // larger than the whole budget
  entries_.push_front(Entry{key, artifact, bytes});
  resident_bytes_ += bytes;
  while (resident_bytes_ > max_bytes_ && entries_.size() > 1) {
    resident_bytes_ -= entries_.back().bytes;
    entries_.pop_back();
    ++evictions_;
  }
  return artifact;
}

std::shared_ptr<const laplacian::PreparedLaplacian> FactorCache::insert(
    const FactorCacheKey& key,
    std::shared_ptr<const laplacian::PreparedLaplacian> artifact) {
  std::lock_guard<std::mutex> lock(mu_);
  return insert_locked(key, std::move(artifact));
}

std::shared_ptr<const laplacian::PreparedLaplacian> FactorCache::lookup_or_join(
    const FactorCacheKey& key, bool* leader) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (auto found = find_locked(key)) {
      ++hits_;
      *leader = false;
      return found;
    }
    std::shared_ptr<Inflight> slot;
    for (const auto& fl : inflight_) {
      if (fl->key == key) {
        slot = fl;
        break;
      }
    }
    if (!slot) {
      // No prepare in flight: this caller is elected leader. The miss is
      // counted here — followers joining the same prepare count hits, so
      // N deduped cold requests tally exactly one miss.
      inflight_.push_back(std::make_shared<Inflight>());
      inflight_.back()->key = key;
      ++misses_;
      *leader = true;
      return nullptr;
    }
    slot->cv.wait(lock, [&] { return slot->resolved; });
    if (slot->artifact) {
      ++hits_;
      *leader = false;
      return slot->artifact;
    }
    // Withdrawn: the leader's prepare failed. Loop to re-elect — this
    // caller may find a new leader already registered, or become one.
  }
}

std::shared_ptr<const laplacian::PreparedLaplacian> FactorCache::publish(
    const FactorCacheKey& key,
    std::shared_ptr<const laplacian::PreparedLaplacian> artifact) {
  std::lock_guard<std::mutex> lock(mu_);
  // Waiters adopt the canonical artifact — identical bytes to what any
  // later lookup() of this key returns.
  auto canonical = insert_locked(key, std::move(artifact));
  for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
    if ((*it)->key == key) {
      (*it)->resolved = true;
      (*it)->artifact = canonical;
      (*it)->cv.notify_all();
      inflight_.erase(it);
      break;
    }
  }
  return canonical;
}

void FactorCache::withdraw(const FactorCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
    if ((*it)->key == key) {
      (*it)->resolved = true;
      (*it)->cv.notify_all();
      inflight_.erase(it);
      break;
    }
  }
}

FactorCache::Stats FactorCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.max_bytes = max_bytes_;
  s.resident_bytes = resident_bytes_;
  s.entries = entries_.size();
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  return s;
}

std::size_t FactorCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return resident_bytes_;
}

std::size_t FactorCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::uint64_t FactorCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t FactorCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t FactorCache::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

}  // namespace bcclap::core
