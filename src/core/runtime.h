// bcclap::Runtime — the execution context an entire pipeline runs inside.
//
// A Runtime owns the three things the layers used to reach for globally or
// receive ad hoc: a worker pool (common/thread_pool.h), the root of the
// deterministic RNG stream tree (common/rng.h), and the chunking policy.
// Layers receive a lightweight common::Context view of it; two Runtimes
// with different worker counts run two independently-configured pipelines
// concurrently in one process, each keeping the byte-identical-determinism
// contract against its own 1-thread configuration
// (tests/test_runtime.cpp).
//
//   bcclap::RuntimeOptions opts;
//   opts.threads = 4;
//   opts.seed = 7;
//   bcclap::Runtime rt(opts);
//   auto res = rt.solve_laplacian(g, b);
//   // res.x, res.stats.rounds / .iterations / .wall_seconds
//
// Runtime::process_default() is the lazily-created Runtime for callers
// that want a shared, process-wide configuration (tests of the historical
// single-configuration contract, quick scripts); it resolves its worker
// count from BCCLAP_THREADS / hardware_concurrency.
//
// Optional factorization cache: set RuntimeOptions::factor_cache_bytes
// (or share a core::FactorCache across Runtimes via ::factor_cache) and
// repeat solve_laplacian{,_many} calls on the same topology skip the
// sparsify+factor prepare phase, with bitwise-identical solutions —
// see core/factor_cache.h.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/context.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/stats.h"
#include "flow/mcmf_solver.h"
#include "graph/digraph.h"
#include "graph/graph.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"
#include "sparsify/spectral_sparsify.h"

namespace bcclap {

namespace core {
class FactorCache;
}
namespace laplacian {
class LaplacianEngine;
}

struct RuntimeOptions {
  // Worker threads (including the calling thread). 0 resolves via
  // common::default_thread_count(): BCCLAP_THREADS env if set, else the
  // BCCLAP_DEFAULT_THREADS compile-time knob, else hardware_concurrency.
  std::size_t threads = 0;
  // Root seed of the Runtime's deterministic stream tree. Facade calls
  // derive their randomness from this seed (not from the root stream's
  // position), so results are independent of call order. One documented
  // exception: min_cost_max_flow's Daitch-Spielman perturbation draws
  // from McmfOptions::seed (so a fixed McmfOptions reproduces across
  // Runtimes); this seed still governs every layer beneath it that a
  // context-built gram_factory reaches.
  std::uint64_t seed = 0;
  // Minimum scalar operations per chunk before a kernel fans out to the
  // pool; the knob behind common::Context::grain.
  std::size_t min_work_per_chunk = common::kDefaultMinWorkPerChunk;
  // Factorization-cache budget in resident bytes (core/factor_cache.h).
  // 0 (the default) disables caching: every facade solve prepares its own
  // artifact, byte-identical to the pre-cache behavior. Nonzero gives
  // this Runtime a private cache of that size.
  std::size_t factor_cache_bytes = 0;
  // A cache shared across Runtimes (takes precedence over
  // factor_cache_bytes when set): two Runtimes with the same seed and
  // chunking policy pointed at one cache share prepare work — safe at any
  // thread counts, since artifacts are immutable and thread count is not
  // part of the cache key.
  std::shared_ptr<core::FactorCache> factor_cache;
};

// ---- facade option/result shapes (stats unified on core::RunStats) ----

struct LaplacianSolveOptions {
  double eps = 1e-8;                    // energy-norm accuracy target
  sparsify::SparsifyOptions sparsify;   // preconditioner construction
  // Engine registry key (laplacian/engine.h): "auto" lets the tuner pick
  // per instance from (n, density, eps) — respecting BCCLAP_ENGINE — and
  // a concrete key ("exact-dense", "exact-sparse", "sparsified-chebyshev",
  // "cg") pins the backend. Unknown keys throw std::invalid_argument.
  std::string engine = "auto";
};

struct LaplacianRun {
  linalg::Vec x;
  bool usable = false;       // false: engine factorization failed
  bool tree_patched = false; // sparsifier lost connectivity, forest unioned
  graph::Graph sparsifier;   // the preconditioner H used (empty: engine
                             // builds none — the exact and cg engines)
  std::int64_t preprocessing_rounds = 0;
  // rounds = preprocessing + solve; iterations = the engine's outer
  // iterations; engine = the concrete registry key that served the run.
  core::RunStats stats;
};

struct LaplacianManyRun {
  linalg::DenseMatrix x;  // n x k, one solution per column of the panel
  bool usable = false;
  bool tree_patched = false;
  graph::Graph sparsifier;
  std::int64_t preprocessing_rounds = 0;
  // Per-panel stats: rounds = preprocessing + the whole panel's solve,
  // iterations = per-column iterations, panels = 1, engine = the concrete
  // registry key that served the run.
  core::RunStats stats;
};

struct SparsifyRun {
  sparsify::SparsifyResult result;
  // rounds = BC rounds of the run; iterations = resolved outer iterations.
  core::RunStats stats;
};

struct McmfRun {
  flow::McmfIpmResult result;
  // rounds = accounted BCC rounds; iterations = IPM path steps;
  // steps = Newton centering steps.
  core::RunStats stats;
};

class Runtime {
 public:
  explicit Runtime(const RuntimeOptions& opts = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const RuntimeOptions& options() const { return opts_; }
  common::ThreadPool& pool() const { return *pool_; }
  std::size_t num_threads() const { return pool_->num_threads(); }
  std::uint64_t seed() const { return opts_.seed; }

  // Root of the stream tree, for callers that need sequential draws (e.g.
  // workload generation). The facade methods never consume it — they
  // derive from seed() — so drawing here does not perturb pipeline
  // results.
  rng::Stream& root_stream() { return root_; }

  // The view handed to the layer APIs. Valid as long as this Runtime
  // lives.
  common::Context context() const {
    return common::Context(*pool_, opts_.seed, opts_.min_work_per_chunk);
  }

  // ---- pipeline facade -------------------------------------------------
  // Each call is a self-contained run on this Runtime's pool and seed,
  // with wall time and per-layer counters folded into RunStats.

  // Theorem 1.3: sparsifier-preconditioned solve of L_G x = b.
  LaplacianRun solve_laplacian(const graph::Graph& g, const linalg::Vec& b,
                               const LaplacianSolveOptions& opt = {});

  // Batched multi-RHS form: b is n x k, one right-hand side per column.
  // The sparsifier is built and factored once for the whole panel — the
  // "factor once, solve many" amortization the repeated-solve workloads
  // (JL probes, IPM re-solves) are built on. Column j of the result is
  // byte-identical to solve_laplacian(g, column j, opt).x.
  LaplacianManyRun solve_laplacian_many(const graph::Graph& g,
                                        const linalg::DenseMatrix& b,
                                        const LaplacianSolveOptions& opt = {});

  // Theorem 1.2: Algorithm 5 spectral sparsification over a Broadcast
  // CONGEST network on g's topology. Seeded by seed() — couple with
  // spectral_sparsify_apriori(g, opt, rt.seed()) for the Lemma 3.3 check.
  SparsifyRun sparsify(const graph::Graph& g,
                       const sparsify::SparsifyOptions& opt = {});

  // Theorem 1.1: exact min-cost max-flow via the IPM pipeline. The cost
  // perturbation is seeded by opt.seed (see RuntimeOptions::seed).
  McmfRun min_cost_max_flow(const graph::Digraph& g, std::size_t s,
                            std::size_t t, const flow::McmfOptions& opt = {});

  // The cache behind this Runtime's facade solves: the shared cache from
  // RuntimeOptions::factor_cache, a private one sized by
  // factor_cache_bytes, or null (caching off, the default).
  const std::shared_ptr<core::FactorCache>& factor_cache() const {
    return cache_;
  }

  // The process-default Runtime: created on first use with RuntimeOptions{}
  // (env-resolved thread count) and shared by callers that want one
  // process-wide configuration. Lives for the whole process unless reset
  // via reset_process_default.
  static Runtime& process_default();

  // Rebuilds the process-default Runtime with `threads` workers (0 =
  // env-resolved), preserving seed and chunking policy. The old Runtime
  // is *retired*, not destroyed: its pool is drained (workers joined;
  // later dispatches run inline with identical results) and the instance
  // kept alive, so objects created against the old default never dangle.
  // Precondition: no parallel_for in flight on the default pool —
  // violations abort with a diagnostic.
  static void reset_process_default(std::size_t threads);

 private:
  // Installs an artifact into `engine` for graph g: from the cache when
  // one is configured (counting hits/misses/evictions into *stats),
  // otherwise by running the engine's own prepare phase. Returns
  // engine.factor()'s usability.
  bool prepare_engine(laplacian::LaplacianEngine& engine,
                      const graph::Graph& g, core::RunStats* stats);

  RuntimeOptions opts_;
  std::unique_ptr<common::ThreadPool> pool_;
  rng::Stream root_;
  std::shared_ptr<core::FactorCache> cache_;
};

}  // namespace bcclap
