// Fingerprint-keyed factorization cache: "factor once, solve many across
// requests" (ROADMAP: solver-service economics).
//
// The prepare/apply split (laplacian/prepared.h) makes the expensive half
// of every solve an immutable, context-free artifact. This cache retains
// those artifacts keyed by everything that determines their bytes:
//
//   engine              concrete registry key that prepared the artifact
//   fingerprint         graph topology + exact weight bits
//                       (graph/fingerprint.h)
//   seed                ctx.seed() — the sparsifier's randomness root
//   min_work_per_chunk  chunk-boundary policy (chunk boundaries feed the
//                       deterministic reduction order, so factor bytes
//                       depend on it)
//   options_hash        prepare-time option fields (the sparsify knobs)
//
// Thread count is deliberately NOT part of the key: the determinism
// contract guarantees identical bytes at any worker count, so a 1-thread
// and a 4-thread Runtime share entries. Apply-time fields (eps,
// max_iterations) are not part of the key either — one artifact serves
// requests at any accuracy.
//
// Bounded LRU by resident bytes: each entry is charged its artifact's
// resident_bytes(); inserting past max_bytes evicts least-recently-used
// entries until the budget holds. An artifact larger than the whole
// budget is simply not cached. Hits, misses and evictions are counted for
// RunStats (cache_hits / cache_misses / cache_evictions).
//
// Thread safety: all methods are safe to call concurrently (one mutex);
// the artifacts themselves are immutable and applied outside the lock, so
// two Runtimes sharing a cache never serialize their solves — only their
// lookups.
//
// Prepare-in-flight dedup (lookup_or_join / publish / withdraw): without
// it, N cold requests for the same key race N redundant prepares — the
// bench_service 4-worker cold case burned ~2.5x the 1-worker wall doing
// the same sparsify+factor four times. The registry keyed on the exact
// cache key makes the first caller the leader (it runs the prepare) and
// blocks followers on a condition variable until the leader publishes
// the artifact (followers adopt it and count hits) or withdraws
// (followers wake and re-elect a leader, so a failed or throwing prepare
// never strands waiters).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>

#include "graph/fingerprint.h"
#include "laplacian/prepared.h"

namespace bcclap::core {

struct FactorCacheKey {
  std::string engine;
  graph::Fingerprint fingerprint;
  std::uint64_t seed = 0;
  std::size_t min_work_per_chunk = 0;
  std::uint64_t options_hash = 0;

  friend bool operator==(const FactorCacheKey& a, const FactorCacheKey& b) {
    return a.engine == b.engine && a.fingerprint == b.fingerprint &&
           a.seed == b.seed && a.min_work_per_chunk == b.min_work_per_chunk &&
           a.options_hash == b.options_hash;
  }
  friend bool operator!=(const FactorCacheKey& a, const FactorCacheKey& b) {
    return !(a == b);
  }
};

// Hash of the prepare-time fields of EngineOptions — exactly the
// sparsify knobs (epsilon, k, t, t_constant, iterations, growing_t), each
// mixed by exact value (doubles by bit pattern). Apply-time fields (eps,
// max_iterations) are excluded on purpose; see the header comment.
std::uint64_t prepare_options_hash(const laplacian::EngineOptions& opt);

class FactorCache {
 public:
  // One consistent snapshot of the cache's size and traffic counters,
  // taken under a single lock acquisition. Admission control and the
  // solver service's ServiceStats read this instead of plumbing counters
  // through RunStats or holding friend access.
  struct Stats {
    std::size_t max_bytes = 0;
    std::size_t resident_bytes = 0;
    std::size_t entries = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  // max_bytes = 0 means "cache nothing" (every insert is a no-op); the
  // facade treats 0 as "off" and never constructs one.
  explicit FactorCache(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  FactorCache(const FactorCache&) = delete;
  FactorCache& operator=(const FactorCache&) = delete;

  // Returns the cached artifact and refreshes its LRU position, or null.
  // Counts one hit or one miss.
  std::shared_ptr<const laplacian::PreparedLaplacian> lookup(
      const FactorCacheKey& key);

  // Residency probe: returns the cached artifact WITHOUT refreshing its
  // LRU position or counting a hit/miss — admission decisions must not
  // perturb the replacement order or the traffic statistics the decisions
  // are based on.
  std::shared_ptr<const laplacian::PreparedLaplacian> peek(
      const FactorCacheKey& key) const;

  // Inserts `artifact` under `key` and returns the canonical artifact for
  // that key: if another thread inserted first, the existing entry wins
  // (first-wins dedupe — both callers then apply the same bytes) and is
  // returned instead. Entries larger than the whole budget are not cached
  // (the artifact is still returned). Evicts LRU entries as needed.
  std::shared_ptr<const laplacian::PreparedLaplacian> insert(
      const FactorCacheKey& key,
      std::shared_ptr<const laplacian::PreparedLaplacian> artifact);

  // Deduplicating lookup. Resident key: returns the artifact (one hit,
  // LRU refreshed), *leader = false. Unknown key with no prepare in
  // flight: registers the caller as the key's preparer and returns null
  // with *leader = true — the caller MUST follow up with publish() (on
  // success) or withdraw() (on failure/exception), or waiters block
  // forever. Prepare already in flight: blocks until that prepare
  // resolves; a published artifact is returned as a hit, a withdrawal
  // re-runs the election (the caller may then come back as the leader).
  std::shared_ptr<const laplacian::PreparedLaplacian> lookup_or_join(
      const FactorCacheKey& key, bool* leader);

  // Leader success path: inserts under the first-wins/budget rules of
  // insert(), hands the canonical artifact to every waiter (each counts a
  // hit — they adopted work someone else did), and returns it.
  std::shared_ptr<const laplacian::PreparedLaplacian> publish(
      const FactorCacheKey& key,
      std::shared_ptr<const laplacian::PreparedLaplacian> artifact);

  // Leader failure path: drops the in-flight registration and wakes the
  // waiters empty-handed to re-elect. No-op if the key is not in flight.
  void withdraw(const FactorCacheKey& key);

  std::size_t max_bytes() const { return max_bytes_; }
  Stats stats() const;
  std::size_t resident_bytes() const;
  std::size_t entries() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t evictions() const;

 private:
  struct Entry {
    FactorCacheKey key;
    std::shared_ptr<const laplacian::PreparedLaplacian> artifact;
    std::size_t bytes = 0;
  };
  // One in-flight prepare. Waiters hold the shared_ptr, so the slot
  // outlives its removal from inflight_; `resolved` flips exactly once
  // (publish or withdraw), under mu_.
  struct Inflight {
    FactorCacheKey key;
    std::condition_variable cv;
    bool resolved = false;
    std::shared_ptr<const laplacian::PreparedLaplacian> artifact;  // publish
  };

  // Both require mu_ held.
  std::shared_ptr<const laplacian::PreparedLaplacian> find_locked(
      const FactorCacheKey& key);
  std::shared_ptr<const laplacian::PreparedLaplacian> insert_locked(
      const FactorCacheKey& key,
      std::shared_ptr<const laplacian::PreparedLaplacian> artifact);

  const std::size_t max_bytes_;
  mutable std::mutex mu_;
  std::list<Entry> entries_;  // front = most recently used
  std::list<std::shared_ptr<Inflight>> inflight_;
  std::size_t resident_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace bcclap::core
