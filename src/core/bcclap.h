// Umbrella header: the public API of the BCC Laplacian-paradigm library.
//
// Layering (Figure 1 of the paper):
//   spanner  ->  sparsify  ->  laplacian  ->  lp  ->  flow
// on top of the substrates bcc (model simulator), graph, linalg. The
// service layer (service/solver_service.h) sits above the Runtime facade:
// a request loop multiplexing worker Runtimes over a shared FactorCache.
//
// Typical usage (the Runtime facade, core/runtime.h):
//   #include "core/bcclap.h"
//   bcclap::RuntimeOptions opts;
//   opts.threads = 4;
//   opts.seed = 7;
//   bcclap::Runtime rt(opts);
//   auto g = bcclap::graph::random_connected_gnp(...);
//   auto res = rt.solve_laplacian(g, b);
//   // res.x, res.stats.rounds / .iterations / .wall_seconds
// Layer APIs remain available for fine-grained control; pass them
// rt.context(). The pre-Runtime signatures (bare seeds, no context) are
// deprecated shims over Runtime::process_default().
#pragma once

#include "bcc/message.h"          // IWYU pragma: export
#include "bcc/network.h"          // IWYU pragma: export
#include "bcc/round_accountant.h" // IWYU pragma: export
#include "common/context.h"       // IWYU pragma: export
#include "common/rng.h"           // IWYU pragma: export
#include "core/runtime.h"         // IWYU pragma: export
#include "core/stats.h"           // IWYU pragma: export
#include "flow/dinic.h"           // IWYU pragma: export
#include "flow/mcmf_lp.h"         // IWYU pragma: export
#include "flow/mcmf_solver.h"     // IWYU pragma: export
#include "flow/ssp.h"             // IWYU pragma: export
#include "graph/digraph.h"        // IWYU pragma: export
#include "graph/generators.h"     // IWYU pragma: export
#include "graph/graph.h"          // IWYU pragma: export
#include "graph/laplacian.h"      // IWYU pragma: export
#include "laplacian/bcc_solver.h" // IWYU pragma: export
#include "laplacian/sdd_reduction.h"  // IWYU pragma: export
#include "laplacian/solver.h"     // IWYU pragma: export
#include "linalg/chebyshev.h"     // IWYU pragma: export
#include "linalg/jl_transform.h"  // IWYU pragma: export
#include "lp/lp_solver.h"         // IWYU pragma: export
#include "lp/project_mixed_ball.h"  // IWYU pragma: export
#include "service/journal.h"      // IWYU pragma: export
#include "service/solver_service.h"  // IWYU pragma: export
#include "sparsify/spectral_sparsify.h"  // IWYU pragma: export
#include "sparsify/verifier.h"    // IWYU pragma: export
#include "spanner/baswana_sen.h"  // IWYU pragma: export
#include "spanner/bundle.h"       // IWYU pragma: export
#include "spanner/probabilistic_spanner.h"  // IWYU pragma: export
