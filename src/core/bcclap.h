// Umbrella header: the public API of the BCC Laplacian-paradigm library.
//
// Layering (Figure 1 of the paper):
//   spanner  ->  sparsify  ->  laplacian  ->  lp  ->  flow
// on top of the substrates bcc (model simulator), graph, linalg.
//
// Typical usage:
//   #include "core/bcclap.h"
//   auto g = bcclap::graph::random_connected_gnp(...);
//   bcclap::laplacian::SparsifiedLaplacianSolver solver(g, {}, seed);
//   auto x = solver.solve(b, 1e-8);
#pragma once

#include "bcc/message.h"          // IWYU pragma: export
#include "bcc/network.h"          // IWYU pragma: export
#include "bcc/round_accountant.h" // IWYU pragma: export
#include "common/rng.h"           // IWYU pragma: export
#include "flow/dinic.h"           // IWYU pragma: export
#include "flow/mcmf_lp.h"         // IWYU pragma: export
#include "flow/mcmf_solver.h"     // IWYU pragma: export
#include "flow/ssp.h"             // IWYU pragma: export
#include "graph/digraph.h"        // IWYU pragma: export
#include "graph/generators.h"     // IWYU pragma: export
#include "graph/graph.h"          // IWYU pragma: export
#include "graph/laplacian.h"      // IWYU pragma: export
#include "laplacian/bcc_solver.h" // IWYU pragma: export
#include "laplacian/sdd_reduction.h"  // IWYU pragma: export
#include "laplacian/solver.h"     // IWYU pragma: export
#include "linalg/chebyshev.h"     // IWYU pragma: export
#include "linalg/jl_transform.h"  // IWYU pragma: export
#include "lp/lp_solver.h"         // IWYU pragma: export
#include "lp/project_mixed_ball.h"  // IWYU pragma: export
#include "sparsify/spectral_sparsify.h"  // IWYU pragma: export
#include "sparsify/verifier.h"    // IWYU pragma: export
#include "spanner/baswana_sen.h"  // IWYU pragma: export
#include "spanner/bundle.h"       // IWYU pragma: export
#include "spanner/probabilistic_spanner.h"  // IWYU pragma: export
