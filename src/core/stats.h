// Unified execution statistics for every layer of the pipeline.
//
// Before the Runtime API each layer reported progress in its own shape
// (laplacian::SolveStats, the rounds/steps fields of LpResult and
// McmfIpmResult, the sparsifier's bare round count). RunStats is the one
// struct they all map onto, so the facade (core/runtime.h) can return a
// single result shape and callers can aggregate across layers with +=.
//
// Field conventions:
//   rounds      — BC/BCC rounds charged by the model simulator;
//   iterations  — outer iterations of the layer (Chebyshev iterations,
//                 IPM path steps, sparsifier outer iterations);
//   steps       — inner steps where the layer has a second counter
//                 (Newton centering steps); 0 when not applicable;
//   panels      — multi-RHS panels solved through the batched solve_many
//                 interfaces (a single-RHS solve routed through the panel
//                 path counts as one k = 1 panel); 0 when the layer never
//                 touched the batched stack;
//   dense_factors / sparse_factors
//               — Laplacian factorizations executed on the dense blocked
//                 kernel vs. the sparse CSC path (the dispatch inside
//                 linalg/cholesky.h), counted per grounded component;
//                 0 / 0 when the layer never factored a Laplacian;
//   sparsify_count
//               — spectral-sparsifier constructions executed by the run
//                 (the expensive half of the sparsified engine's prepare
//                 phase); 0 for exact/CG engines and for runs served from
//                 the factorization cache;
//   cache_hits / cache_misses / cache_evictions
//               — factorization-cache traffic (core/factor_cache.h) of
//                 the run: artifacts adopted from the cache, prepare
//                 phases executed because the cache had no entry, and
//                 entries evicted to fit the byte budget. All 0 when
//                 caching is off (the default);
//   supernodes / factor_fill_nnz
//               — sparse-factorization shape of the run's prepare work:
//                 supernode panels detected and off-diagonal fill
//                 nnz(L11) + nnz(L21), summed over sparse factors (0 when
//                 every factor ran dense, or the run was served from the
//                 cache);
//   ordering_seconds / symbolic_seconds / numeric_seconds
//               — per-phase wall clocks of the sparse factorizations the
//                 run executed (linalg::SparseFactorPhases). Unlike every
//                 other counter these are timings, so they are NOT
//                 byte-deterministic across runs — benches report them in
//                 the "timings" channel, never as gated counters;
//   engine      — registry key of the solver engine that served the run
//                 (laplacian/engine.h): "exact-dense", "exact-sparse",
//                 "sparsified-chebyshev", "cg" — the concrete key the
//                 auto-tuner or the caller picked. Empty when the layer
//                 never went through the engine registry;
//   wall_seconds — wall-clock time, filled by the Runtime facade (the
//                 layers themselves never look at the clock; the sparse
//                 factor's phase clocks above are the one exception — the
//                 factorization is the only layer that can split its own
//                 phases).
//
// This header is dependency-free on purpose: every layer may include it
// without inverting the spanner -> sparsify -> laplacian -> lp -> flow
// layering that core/bcclap.h sits on top of.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace bcclap::core {

struct RunStats {
  std::int64_t rounds = 0;
  std::size_t iterations = 0;
  std::size_t steps = 0;
  std::size_t panels = 0;
  std::size_t dense_factors = 0;
  std::size_t sparse_factors = 0;
  std::size_t sparsify_count = 0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;
  std::size_t supernodes = 0;
  std::size_t factor_fill_nnz = 0;
  double ordering_seconds = 0.0;
  double symbolic_seconds = 0.0;
  double numeric_seconds = 0.0;
  std::string engine;
  double wall_seconds = 0.0;

  RunStats& operator+=(const RunStats& o) {
    rounds += o.rounds;
    iterations += o.iterations;
    steps += o.steps;
    panels += o.panels;
    dense_factors += o.dense_factors;
    sparse_factors += o.sparse_factors;
    sparsify_count += o.sparsify_count;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_evictions += o.cache_evictions;
    supernodes += o.supernodes;
    factor_fill_nnz += o.factor_fill_nnz;
    ordering_seconds += o.ordering_seconds;
    symbolic_seconds += o.symbolic_seconds;
    numeric_seconds += o.numeric_seconds;
    // Counters add; the engine label adopts the most recent non-empty key
    // (an aggregate over runs on different engines keeps the last one).
    if (!o.engine.empty()) engine = o.engine;
    wall_seconds += o.wall_seconds;
    return *this;
  }
};

}  // namespace bcclap::core
