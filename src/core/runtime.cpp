#include "core/runtime.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "bcc/network.h"
#include "core/factor_cache.h"
#include "graph/fingerprint.h"
#include "laplacian/engine.h"

namespace bcclap {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Resolve-and-build for the facade's Laplacian calls: one registry lookup
// per run, with the tuner (or BCCLAP_ENGINE, or an explicit options key)
// deciding the concrete engine.
std::unique_ptr<laplacian::LaplacianEngine> build_engine(
    const graph::Graph& g, const LaplacianSolveOptions& opt) {
  auto& registry = laplacian::EngineRegistry::instance();
  const std::string key = registry.resolve(
      opt.engine, g.num_vertices(),
      laplacian::EngineRegistry::laplacian_density(g), opt.eps);
  laplacian::EngineOptions eopt;
  eopt.eps = opt.eps;
  eopt.sparsify = opt.sparsify;
  return registry.create(key, eopt);
}

// Process-default Runtime storage. The atomic pointer is the lock-free
// fast path; creation and reset serialize on the mutex, and the pointer
// is published only under it.
std::mutex g_default_mu;
std::unique_ptr<Runtime> g_default;
std::atomic<Runtime*> g_default_ptr{nullptr};
// Past default Runtimes, retired (pool drained) but never destroyed:
// objects built against the old default before a reset — Networks,
// solvers, factors — hold pointers into the old Runtime's pool, so
// destroying the old instance would introduce a use-after-free.
// Retirement is bounded by the number of reset_process_default calls (a
// test/bench escape hatch), and a drained pool executes inline, so a
// retired pool costs memory only, not threads.
std::vector<std::unique_ptr<Runtime>> g_retired;  // under g_default_mu

}  // namespace

Runtime::Runtime(const RuntimeOptions& opts)
    : opts_(opts),
      pool_(std::make_unique<common::ThreadPool>(
          opts.threads == 0 ? common::default_thread_count() : opts.threads)),
      root_(opts.seed) {
  if (opts.factor_cache) {
    cache_ = opts.factor_cache;
  } else if (opts.factor_cache_bytes > 0) {
    cache_ = std::make_shared<core::FactorCache>(opts.factor_cache_bytes);
  }
}

Runtime::~Runtime() = default;

Runtime& Runtime::process_default() {
  if (Runtime* rt = g_default_ptr.load(std::memory_order_acquire)) {
    return *rt;
  }
  std::lock_guard<std::mutex> lock(g_default_mu);
  if (!g_default) {
    g_default = std::make_unique<Runtime>(RuntimeOptions{});
    g_default_ptr.store(g_default.get(), std::memory_order_release);
  }
  return *g_default;
}

void Runtime::reset_process_default(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_default_mu);
  RuntimeOptions opts;
  opts.threads = threads;
  if (g_default) {
    // The precondition ("no parallel_for in flight on the default pool")
    // used to be unenforced: a racing kernel would dispatch onto a pool
    // being destroyed. Make the violation detectable instead of UB.
    if (g_default->pool().busy()) {
      std::fprintf(stderr,
                   "bcclap: Runtime::reset_process_default called while a "
                   "parallel_for is in flight on the default pool\n");
      std::abort();
    }
    opts.seed = g_default->opts_.seed;
    opts.min_work_per_chunk = g_default->opts_.min_work_per_chunk;
  }
  // Publish the replacement first so a concurrent process_default()
  // fast-path load never observes a pointer to a dead instance, then
  // retire the old Runtime: drain its workers (a dispatch that slipped
  // past the busy() check falls back to inline execution — byte-identical
  // results, no use-after-free) and keep the instance alive for the
  // deprecated-path objects that still point into it.
  auto next = std::make_unique<Runtime>(opts);
  g_default_ptr.store(next.get(), std::memory_order_release);
  std::swap(g_default, next);
  if (next) {
    next->pool().drain();
    g_retired.push_back(std::move(next));
  }
}

bool Runtime::prepare_engine(laplacian::LaplacianEngine& engine,
                             const graph::Graph& g, core::RunStats* stats) {
  if (!cache_) return engine.factor(context(), g);
  core::FactorCacheKey key;
  key.engine = std::string(engine.key());
  key.fingerprint = graph::fingerprint(g);
  key.seed = opts_.seed;
  key.min_work_per_chunk = opts_.min_work_per_chunk;
  key.options_hash = core::prepare_options_hash(engine.options());
  // Deduplicating lookup: N concurrent cold requests for the same key run
  // ONE prepare — the first caller leads, the rest block on the in-flight
  // registration and adopt the published artifact as cache hits.
  bool leader = false;
  if (auto artifact = cache_->lookup_or_join(key, &leader)) {
    engine.adopt(std::move(artifact));
    stats->cache_hits += 1;
    return true;
  }
  stats->cache_misses += 1;
  bool usable = false;
  try {
    usable = engine.factor(context(), g);
  } catch (...) {
    cache_->withdraw(key);
    throw;
  }
  if (!usable) {
    // Waiters must not adopt an unusable artifact; wake them to re-elect
    // (their own prepare will fail the same way, but independently).
    cache_->withdraw(key);
    return false;
  }
  const std::uint64_t evictions_before = cache_->evictions();
  auto canonical = cache_->publish(key, engine.prepared());
  // A concurrent preparer may have raced us past the in-flight slot (e.g.
  // via a plain insert); its entry is canonical, so later applies on this
  // engine use the same bytes every cached run sees.
  if (canonical != engine.prepared()) engine.adopt(std::move(canonical));
  stats->cache_evictions +=
      static_cast<std::size_t>(cache_->evictions() - evictions_before);
  return usable;
}

LaplacianRun Runtime::solve_laplacian(const graph::Graph& g,
                                      const linalg::Vec& b,
                                      const LaplacianSolveOptions& opt) {
  if (b.size() != g.num_vertices()) {
    throw std::invalid_argument(
        "Runtime::solve_laplacian: right-hand side has " +
        std::to_string(b.size()) + " rows, graph has " +
        std::to_string(g.num_vertices()) + " vertices");
  }
  const auto start = std::chrono::steady_clock::now();
  LaplacianRun out;
  auto engine = build_engine(g, opt);
  out.stats.engine = std::string(engine->key());
  out.usable = prepare_engine(*engine, g, &out.stats);
  if (out.usable) {
    out.x = engine->solve(context(), b);
    engine->report(&out.stats);
  }
  out.tree_patched = engine->tree_patched();
  if (const graph::Graph* h = engine->sparsifier()) out.sparsifier = *h;
  out.preprocessing_rounds = engine->preprocessing_rounds();
  out.stats.rounds += out.preprocessing_rounds;
  out.stats.wall_seconds = seconds_since(start);
  return out;
}

LaplacianManyRun Runtime::solve_laplacian_many(
    const graph::Graph& g, const linalg::DenseMatrix& b,
    const LaplacianSolveOptions& opt) {
  if (b.rows() != g.num_vertices()) {
    throw std::invalid_argument(
        "Runtime::solve_laplacian_many: right-hand side has " +
        std::to_string(b.rows()) + " rows, graph has " +
        std::to_string(g.num_vertices()) + " vertices");
  }
  const auto start = std::chrono::steady_clock::now();
  LaplacianManyRun out;
  auto engine = build_engine(g, opt);
  out.stats.engine = std::string(engine->key());
  out.usable = prepare_engine(*engine, g, &out.stats);
  if (out.usable) {
    out.x = engine->solve_many(context(), b);
    engine->report(&out.stats);
  }
  out.tree_patched = engine->tree_patched();
  if (const graph::Graph* h = engine->sparsifier()) out.sparsifier = *h;
  out.preprocessing_rounds = engine->preprocessing_rounds();
  out.stats.rounds += out.preprocessing_rounds;
  out.stats.wall_seconds = seconds_since(start);
  return out;
}

SparsifyRun Runtime::sparsify(const graph::Graph& g,
                              const sparsify::SparsifyOptions& opt) {
  const auto start = std::chrono::steady_clock::now();
  SparsifyRun out;
  bcc::Network net(bcc::Model::kBroadcastCongest, g,
                   bcc::Network::default_bandwidth(g.num_vertices()),
                   context());
  out.result = sparsify::spectral_sparsify(context(), g, opt, net);
  out.stats = out.result.stats;
  out.stats.wall_seconds = seconds_since(start);
  return out;
}

McmfRun Runtime::min_cost_max_flow(const graph::Digraph& g, std::size_t s,
                                   std::size_t t,
                                   const flow::McmfOptions& opt) {
  const auto start = std::chrono::steady_clock::now();
  McmfRun out;
  out.result = flow::min_cost_max_flow_ipm(context(), g, s, t, opt);
  out.stats = out.result.stats;
  out.stats.wall_seconds = seconds_since(start);
  return out;
}

}  // namespace bcclap
