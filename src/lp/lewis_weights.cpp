#include "lp/lewis_weights.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bcclap::lp {

namespace {

linalg::Vec leverage_of(const common::Context& ctx,
                        const linalg::DenseMatrix& m, const LewisOptions& opt,
                        double eta) {
  if (!opt.use_jl) return leverage_scores_exact(ctx, m);
  LeverageOptions lev = opt.leverage;
  lev.eta = eta;
  const MatrixOracle oracle = dense_oracle(ctx, m);
  return leverage_scores_jl(ctx, oracle, lev);
}

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

}  // namespace

double lewis_p_for(std::size_t m_rows) {
  const double lg =
      std::log(4.0 * static_cast<double>(std::max<std::size_t>(m_rows, 2)));
  return 1.0 - 1.0 / lg;
}

linalg::DenseMatrix row_scaled(const linalg::DenseMatrix& m,
                               const linalg::Vec& w, double p) {
  assert(w.size() == m.rows());
  const double expo = 0.5 - 1.0 / p;
  linalg::DenseMatrix out(m.rows(), m.cols());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double s = std::pow(std::max(w[i], 1e-300), expo);
    for (std::size_t j = 0; j < m.cols(); ++j) out(i, j) = s * m(i, j);
  }
  return out;
}

linalg::Vec lewis_fixed_point(const common::Context& ctx,
                              const linalg::DenseMatrix& m, double p,
                              std::size_t iterations) {
  linalg::Vec w(m.rows(), 1.0);
  for (std::size_t it = 0; it < iterations; ++it) {
    auto sigma = leverage_scores_exact(ctx, row_scaled(m, w, p));
    // Cohen-Peng damped update: w <- (w^{... } sigma)^{p/2}; the plain
    // sigma map converges for p < 4 but the half-log step is more robust.
    for (std::size_t i = 0; i < w.size(); ++i) {
      w[i] = std::sqrt(std::max(w[i], 1e-300) * std::max(sigma[i], 1e-300));
    }
  }
  return w;
}

linalg::Vec compute_apx_weights(const common::Context& ctx,
                                const linalg::DenseMatrix& m, double p,
                                const linalg::Vec& w0, double eta,
                                const LewisOptions& opt) {
  const std::size_t n = m.cols();
  const double big_l = std::max(4.0, 8.0 / p);
  const double r = opt.trust_constant * p * p * (4.0 - p);
  const double delta = (4.0 - p) * eta / 256.0;

  std::size_t t_iters = static_cast<std::size_t>(std::ceil(
      opt.iter_constant * (p / 2.0 + 2.0 / p) *
      std::log(std::max(2.0, p * static_cast<double>(n) / (32.0 * eta)))));
  t_iters = std::clamp<std::size_t>(t_iters, 2, opt.max_iterations);

  linalg::Vec w = w0;
  for (std::size_t j = 0; j + 1 < t_iters; ++j) {
    const auto sigma =
        leverage_of(ctx, row_scaled(m, w, p), opt, delta / 2.0);
    for (std::size_t i = 0; i < w.size(); ++i) {
      const double mid =
          w[i] - (1.0 / big_l) * (w0[i] - (w0[i] / w[i]) * sigma[i]);
      w[i] = median3((1.0 - r) * w0[i], mid, (1.0 + r) * w0[i]);
    }
  }
  return w;
}

linalg::Vec compute_initial_weights(const common::Context& ctx,
                                    const linalg::DenseMatrix& m,
                                    double p_target, double eta,
                                    const LewisOptions& opt) {
  const std::size_t rows = m.rows();
  const std::size_t n = m.cols();
  const double logm =
      std::log(static_cast<double>(std::max<std::size_t>(rows, 3)));
  const double ck = 2.0 * std::log(4.0 * static_cast<double>(rows));

  double p = 2.0;
  linalg::Vec w(rows, 1.0 / (2.0 * ck));
  // Homotopy: move p toward p_target in trust-region-compatible steps.
  std::size_t guard = 0;
  while (p != p_target && guard++ < 100000) {
    const double r = (1.0 / (1u << 20)) * p * p * (4.0 - p);
    const double h = opt.step_constant * std::min(2.0, p) * r /
                     (std::sqrt(static_cast<double>(n)) * logm * M_E * M_E);
    const double p_new = median3(p - h, p_target, p + h);
    linalg::Vec warm(rows);
    for (std::size_t i = 0; i < rows; ++i)
      warm[i] = std::pow(std::max(w[i], 1e-300), p_new / p);
    const double call_eta = opt.trust_constant * p * p * (4.0 - p) / 4.0;
    w = compute_apx_weights(ctx, m, p_new, warm, std::max(call_eta, 1e-3),
                            opt);
    p = p_new;
  }
  return compute_apx_weights(ctx, m, p_target, w, eta, opt);
}

double lewis_relative_error(const common::Context& ctx,
                            const linalg::DenseMatrix& m, double p,
                            const linalg::Vec& w) {
  const auto ref = lewis_fixed_point(ctx, m, p, 200);
  double worst = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    worst = std::max(worst, std::abs(ref[i] - w[i]) / std::max(ref[i], 1e-12));
  }
  return worst;
}

}  // namespace bcclap::lp
