// Leverage scores sigma(M) = diag(M (M^T M)^{-1} M^T) and their
// Johnson-Lindenstrauss approximation (Algorithm 6 / Lemma 4.5).
//
// The BCC twist: the sketch Q is reconstructed by every node from a short
// leader-broadcast seed (Kane-Nelson, Theorem 4.4) instead of per-edge
// coin flips, which a broadcast model cannot deliver.
#pragma once

#include <cstdint>
#include <functional>

#include "bcc/round_accountant.h"
#include "common/context.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace bcclap::lp {

// Abstract access to M (m x n): multiplies and a solver for (M^T M) z = y.
// The panel forms are column-wise multi-RHS counterparts; oracles with a
// real batched path (dense_oracle below) fill them, and leverage_scores_jl
// pushes a whole JL probe batch through one panel per outer iteration when
// they are present (falling back to per-probe calls otherwise).
struct MatrixOracle {
  std::size_t m = 0;
  std::size_t n = 0;
  std::function<linalg::Vec(const linalg::Vec&)> apply;        // M x
  std::function<linalg::Vec(const linalg::Vec&)> apply_t;      // M^T y
  std::function<linalg::Vec(const linalg::Vec&)> solve_gram;   // (M^T M)^{-1} y
  linalg::PanelOperator apply_many;       // M X, column-wise
  linalg::PanelOperator apply_t_many;     // M^T Y, column-wise
  linalg::PanelOperator solve_gram_many;  // (M^T M)^{-1} Y, column-wise

  bool batched() const {
    return apply_many && apply_t_many && solve_gram_many;
  }
};

// Builds an oracle for a dense M with an exact dense Gram solve; the
// closures run their matvecs and the Gram factorization on ctx's pool.
MatrixOracle dense_oracle(const common::Context& ctx,
                          const linalg::DenseMatrix& m);

// Exact leverage scores (dense reference); the Gram factorization is paid
// once and the rows stream through it in batched solve_many panels.
linalg::Vec leverage_scores_exact(const common::Context& ctx,
                                  const linalg::DenseMatrix& m);

struct LeverageOptions {
  double eta = 0.5;          // multiplicative accuracy target
  double jl_constant = 8.0;  // k = jl_constant * log(m) / eta^2
  std::size_t sparsity = 4;  // Kane-Nelson column sparsity s
  std::uint64_t seed = 1;
  // JL probes per outer batch; 0 (the default) pushes the full sketch
  // width through one panel, paying the Gram substitution fan-out once
  // instead of per 16 probes. Bitwise identical to any batched width: the
  // panel ops are column-independent and sigma accumulates sequentially
  // in probe order either way. Set >0 to cap the panel's memory footprint
  // (m x probe_batch doubles).
  std::size_t probe_batch = 0;
};

// Algorithm 6: sigma_apx = sum_j (M (M^T M)^{-1} M^T Q^(j))^2. Charges the
// leader's seed broadcast and the per-probe communication to `acct` when
// provided (Lemma 4.5's round accounting). Probe batches fan out on ctx's
// pool; the sketch seed stays opt.seed (the leader broadcast of the
// model), independent of ctx.seed().
linalg::Vec leverage_scores_jl(const common::Context& ctx,
                               const MatrixOracle& oracle,
                               const LeverageOptions& opt,
                               bcc::RoundAccountant* acct = nullptr);

}  // namespace bcclap::lp
