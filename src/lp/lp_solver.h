// Interior-point LP solver in the Broadcast Congested Clique
// (Section 4.2, Theorem 1.4; Lee-Sidford weighted path finding).
//
// Solves   min c^T x  s.t.  A^T x = b,  l <= x <= u   (A is m x n, m >= n)
// by weighted path following: x_t = argmin_{A^T x = b} t c^T x + sum_i
// g_i(x) phi_i(x_i). Each step is a projected Newton step whose linear
// system is A^T D A for positive diagonal D — the primitive the BCC
// Laplacian solver provides for flow-structured A (Lemma 5.1).
//
// Weight modes:
//  - kVanilla: g == 1 (classical log-barrier path following, O(sqrt(m))
//    iterations) — the baseline the paper improves on.
//  - kLewis: g = regularized ell_p Lewis weights (Definition 4.3),
//    recomputed each step via Algorithm 7 with warm start and moved through
//    the mixed-norm-ball projection (Algorithm 11) — O(sqrt(n) polylog)
//    iterations.
//
// Step modes:
//  - kShortStep: fixed multiplicative t-step alpha = alpha_constant /
//    (sqrt(scale) * log m), scale = n (Lewis) or m (vanilla): the paper's
//    schedule shape with a bench-tunable constant.
//  - kAdaptive: doubling/halving t-steps gated on centering success; used
//    when the goal is the answer, not the iteration-count experiment.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "bcc/round_accountant.h"
#include "common/context.h"
#include "core/stats.h"
#include "laplacian/bcc_solver.h"
#include "linalg/csr_matrix.h"
#include "linalg/vector_ops.h"
#include "lp/barrier.h"
#include "lp/lewis_weights.h"

namespace bcclap::lp {

struct LpProblem {
  linalg::CsrMatrix a;  // m x n, full column rank
  linalg::Vec b;        // n
  linalg::Vec c;        // m
  linalg::Vec lower;    // m (may contain -inf)
  linalg::Vec upper;    // m (may contain +inf)
};

enum class WeightMode { kVanilla, kLewis };
enum class StepMode { kShortStep, kAdaptive };

// Hook for callers that need full control over the (A^T D A)-system
// solver (custom contexts, instrumented engines). When empty, engines
// are built by LpOptions::engine through the registry
// (laplacian/engine.h).
using GramSolverFactory =
    std::function<std::unique_ptr<laplacian::SddEngine>(
        const linalg::DenseMatrix& gram)>;

struct LpOptions {
  WeightMode weights = WeightMode::kVanilla;
  StepMode steps = StepMode::kAdaptive;
  double epsilon = 1e-6;         // additive objective error target
  double alpha_constant = 0.5;   // short-step scale (paper: R/1600)
  double centering_tol = 0.25;   // Newton decrement target
  std::size_t max_center_steps = 60;
  std::size_t max_path_steps = 100000;
  double t_start_scale = 1e-4;   // t1 = t_start_scale / (m^{3/2} U^2)
  bool use_mixed_ball_update = true;
  LewisOptions lewis;
  GramSolverFactory gram_factory;  // empty = registry engine (below)
  // Engine registry key for the Gram systems when gram_factory is empty:
  // "auto" tunes per system from (n, density, eps_hint = 1e-12) — small
  // dense grams resolve to "exact-dense", reproducing the historical
  // exact engine — and a concrete key pins the backend for every Newton
  // step. Ignored when gram_factory is set.
  std::string engine = "auto";
  std::uint64_t seed = 7;
};

struct LpResult {
  linalg::Vec x;
  double objective = 0.0;
  bool converged = false;
  std::size_t path_steps = 0;    // t-updates across both phases
  std::size_t newton_steps = 0;  // total centering steps
  std::int64_t rounds = 0;       // accounted BCC rounds
  // Unified shape (core/stats.h): iterations = path_steps, steps =
  // newton_steps, rounds as above. Kept in sync with the legacy fields.
  core::RunStats stats;
};

// LPSolve (Algorithm 9): phase 1 re-centers x0, phase 2 follows the real
// cost to t2 ~ m/epsilon. x0 must satisfy A^T x0 = b strictly inside the
// box. Linear-algebra kernels run on ctx's pool; the default Gram engine
// is built with ctx (a custom opt.gram_factory captures its own context).
LpResult lp_solve(const common::Context& ctx, const LpProblem& prob,
                  const linalg::Vec& x0, const LpOptions& opt);

// Assembles A^T D A (n x n dense) for diagonal D given as a vector.
linalg::DenseMatrix assemble_gram(const linalg::CsrMatrix& a,
                                  const linalg::Vec& d);

}  // namespace bcclap::lp
