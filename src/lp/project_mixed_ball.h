// Projection onto a mixed-norm ball (Section 4.3, Lemma 4.10):
//
//     argmax { a^T x  :  ||x||_2 + || l^{-1} x ||_inf <= 1 },   l > 0.
//
// Decomposition used by the paper: split the budget t between the two
// norms; for fixed t the inner solution saturates a prefix (in the order of
// |a_i| / l_i descending) at |x_i| = t l_i and spends the remaining 2-norm
// budget along the unsaturated part of a. g(t) is concave, so the outer
// search is a ternary search; the saturated-prefix boundary i_t is found by
// a monotone search over prefix sums — in the BCC each probe costs O(1)
// aggregate broadcasts, giving the Lemma's ~log^2 round bound.
#pragma once

#include <cstdint>

#include "bcc/round_accountant.h"
#include "linalg/vector_ops.h"

namespace bcclap::lp {

struct MixedBallResult {
  linalg::Vec x;
  double value = 0.0;     // a^T x at the optimum
  double t = 0.0;         // optimal norm split
  std::size_t probes = 0; // outer-search evaluations (round-cost driver)
};

// Fast solver (the BCC algorithm). Charges aggregate-broadcast rounds per
// probe to `acct` when provided.
MixedBallResult project_mixed_ball(const linalg::Vec& a, const linalg::Vec& l,
                                   double tol = 1e-12,
                                   bcc::RoundAccountant* acct = nullptr);

// Brute-force reference: dense grid over t with exact waterfilling per t.
// Test oracle only.
MixedBallResult project_mixed_ball_reference(const linalg::Vec& a,
                                             const linalg::Vec& l,
                                             std::size_t grid = 20000);

// Feasibility of a point for the mixed ball (used by tests).
double mixed_norm(const linalg::Vec& x, const linalg::Vec& l);

}  // namespace bcclap::lp
