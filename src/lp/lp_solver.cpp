#include "lp/lp_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <string>

#include "common/encoding.h"
#include "laplacian/engine.h"
#include "lp/project_mixed_ball.h"

namespace bcclap::lp {

namespace {

double median3(double a, double b, double c) {
  return std::max(std::min(a, b), std::min(std::max(a, b), c));
}

// One path-following run (Algorithm 10) shared by both phases.
class PathFollower {
 public:
  PathFollower(const common::Context& ctx, const LpProblem& prob,
               const LpOptions& opt, const linalg::Vec& cost,
               bcc::RoundAccountant& acct)
      : ctx_(ctx),
        prob_(prob),
        opt_(opt),
        cost_(cost),
        acct_(acct),
        barrier_(prob.lower, prob.upper),
        m_(prob.a.rows()),
        n_(prob.a.cols()) {
    p_lewis_ = lewis_p_for(m_);
    c0_ = static_cast<double>(n_) / (2.0 * static_cast<double>(m_));
  }

  // Follows the path from t_start to t_end; x and w updated in place.
  // Returns false if centering stalls irrecoverably.
  bool follow(linalg::Vec& x, linalg::Vec& w, double t_start, double t_end,
              double final_tol, std::size_t* path_steps,
              std::size_t* newton_steps) {
    double t = t_start;
    double alpha = base_alpha();
    std::size_t steps = 0;
    while (t != t_end && steps < opt_.max_path_steps) {
      if (!center(x, w, t, opt_.centering_tol, newton_steps)) return false;
      const double t_next = median3((1.0 - alpha) * t, t_end,
                                    (1.0 + alpha) * t);
      if (opt_.steps == StepMode::kAdaptive) {
        // Probe the larger step; on centering failure halve and retry.
        double trial_alpha = alpha;
        double t_trial = t_next;
        linalg::Vec x_save = x, w_save = w;
        bool ok = center(x, w, t_trial, opt_.centering_tol, newton_steps);
        while (!ok && trial_alpha > 1e-7) {
          x = x_save;
          w = w_save;
          trial_alpha /= 2.0;
          t_trial = median3((1.0 - trial_alpha) * t, t_end,
                            (1.0 + trial_alpha) * t);
          ok = center(x, w, t_trial, opt_.centering_tol, newton_steps);
        }
        if (!ok) return false;
        t = t_trial;
        alpha = std::min(trial_alpha * 2.0, 0.5);
      } else {
        t = t_next;
      }
      ++steps;
      charge_step_rounds();
    }
    if (path_steps) *path_steps += steps;
    // Final polish (Algorithm 10's trailing centering loop).
    for (std::size_t i = 0; i < 4; ++i) {
      if (center(x, w, t_end, final_tol, newton_steps)) break;
    }
    return t == t_end;
  }

  // Gram panels this follower routed through SddEngine::solve_many
  // (RunStats::panels bookkeeping).
  std::size_t panels_solved() const { return panels_solved_; }

  linalg::Vec initial_weights() {
    if (opt_.weights == WeightMode::kVanilla) return linalg::ones(m_);
    // ComputeInitialWeights would be exact here; for the solver we start
    // from leverage scores of A (the p = 2 point of the homotopy) and let
    // the per-step warm-started refinement track the path, which is the
    // same fixed-point machinery with a cheaper entry point.
    linalg::Vec w = lewis_fixed_point(ctx_, prob_.a.to_dense(), p_lewis_, 12);
    for (double& v : w) v = std::max(v + c0_, c0_);
    return w;
  }

 private:
  double base_alpha() const {
    const double scale = opt_.weights == WeightMode::kLewis
                             ? static_cast<double>(n_)
                             : static_cast<double>(m_);
    const double logm =
        std::log2(static_cast<double>(std::max<std::size_t>(m_, 4)));
    return opt_.alpha_constant / (std::sqrt(scale) * logm);
  }

  // Newton-centers x for f_t(x) = t cost^T x + sum_i w_i phi_i(x_i) over
  // A^T x = b, refreshing w each step in Lewis mode (Algorithm 11).
  bool center(linalg::Vec& x, linalg::Vec& w, double t, double tol,
              std::size_t* newton_steps) {
    for (std::size_t it = 0; it < opt_.max_center_steps; ++it) {
      const linalg::Vec phi1 = barrier_.gradient(x);
      const linalg::Vec phi2 = barrier_.hessian_diag(x);
      linalg::Vec grad(m_), hd(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        grad[i] = t * cost_[i] + w[i] * phi1[i];
        hd[i] = w[i] * phi2[i];
      }
      // Newton direction with equality constraints and infeasibility
      // correction (keeps A^T x = b against roundoff drift):
      //   solve (A^T Hd^{-1} A) lam = A^T Hd^{-1} grad + (b - A^T x),
      //   dx = Hd^{-1} (A lam - grad), so A^T dx = b - A^T x.
      linalg::Vec hinv_grad(m_);
      linalg::Vec d(m_);
      for (std::size_t i = 0; i < m_; ++i) {
        d[i] = 1.0 / hd[i];
        hinv_grad[i] = grad[i] * d[i];
      }
      linalg::Vec rhs = prob_.a.multiply_transpose(hinv_grad);
      const linalg::Vec ax = prob_.a.multiply_transpose(x);
      for (std::size_t j = 0; j < n_; ++j) rhs[j] += prob_.b[j] - ax[j];
      auto engine = make_engine(assemble_gram(prob_.a, d));
      // Newton systems route through the batched interface (one k = 1
      // panel per centering step) so every Gram solve in the pipeline is
      // a counted panel; per-column the engines are byte-identical to
      // their single-RHS path.
      const linalg::Vec lam =
          engine->solve_many(linalg::DenseMatrix::from_columns({rhs}), 1e-12)
              .column(0);
      ++panels_solved_;
      acct_.charge("lp/gram-solve", engine->rounds_charged());
      const linalg::Vec a_lam = prob_.a.multiply(ctx_, lam);
      linalg::Vec dx(m_);
      for (std::size_t i = 0; i < m_; ++i)
        dx[i] = d[i] * (a_lam[i] - grad[i]);

      const double delta =
          std::sqrt(std::max(0.0, -linalg::dot(dx, grad)));
      if (newton_steps) ++*newton_steps;
      if (delta <= tol) {
        if (opt_.weights == WeightMode::kLewis) refresh_weights(x, w, delta);
        return true;
      }
      double step = std::min(1.0, 1.0 / (1.0 + delta));
      step = std::min(step, barrier_.max_feasible_step(x, dx));
      if (step <= 1e-14) return false;
      linalg::axpy(x, step, dx);
      if (opt_.weights == WeightMode::kLewis) refresh_weights(x, w, delta);
    }
    return false;
  }

  // Algorithm 11 lines 4-6: pull w toward the Lewis weights of A_x with a
  // mixed-norm-ball-projected move in log space.
  void refresh_weights(const linalg::Vec& x, linalg::Vec& w, double delta) {
    const linalg::Vec phi2 = barrier_.hessian_diag(x);
    // A_x = Phi''(x)^{-1/2} A, dense for the weight computation.
    linalg::DenseMatrix ax(m_, n_);
    const auto& rp = prob_.a.row_ptr();
    const auto& ci = prob_.a.col_index();
    const auto& vals = prob_.a.values();
    for (std::size_t r = 0; r < m_; ++r) {
      const double s = 1.0 / std::sqrt(phi2[r]);
      for (std::size_t kk = rp[r]; kk < rp[r + 1]; ++kk)
        ax(r, ci[kk]) = s * vals[kk];
    }
    LewisOptions lw = opt_.lewis;
    lw.max_iterations = std::min<std::size_t>(lw.max_iterations, 6);
    const linalg::Vec target =
        compute_apx_weights(ctx_, ax, p_lewis_, w, 0.1, lw);

    const double ck = 2.0 * std::log(4.0 * static_cast<double>(m_));
    if (!opt_.use_mixed_ball_update) {
      for (std::size_t i = 0; i < m_; ++i)
        w[i] = std::max(target[i] + 0.0, c0_);
      return;
    }
    const double big_r = 1.0 / (768.0 * ck * ck *
                                std::log(36.0 * 4.0 * ck *
                                         static_cast<double>(m_)));
    const double cnorm = 24.0 * std::sqrt(4.0 * ck);
    linalg::Vec v(m_), ball_l(m_);
    for (std::size_t i = 0; i < m_; ++i) {
      v[i] = std::log(std::max(target[i], c0_)) -
             std::log(std::max(w[i], c0_));
      ball_l[i] = 1.0 / (cnorm * std::sqrt(std::max(w[i], c0_)));
    }
    // Potential gradient of Phi_eta (soft-max direction), eta = 1/(12R).
    const double eta = std::min(1.0 / (12.0 * big_r), 50.0);
    linalg::Vec a(m_);
    for (std::size_t i = 0; i < m_; ++i)
      a[i] = std::sinh(std::clamp(eta * v[i], -30.0, 30.0));
    const auto proj = project_mixed_ball(a, ball_l, 1e-10, &acct_);
    const double scale = (1.0 - 6.0 / (7.0 * ck)) * std::max(delta, 0.05);
    for (std::size_t i = 0; i < m_; ++i) {
      const double nw = std::exp(std::log(std::max(w[i], c0_)) +
                                 scale * proj.x[i]);
      w[i] = std::clamp(nw, c0_, 2.0);
    }
  }

  std::unique_ptr<laplacian::SddEngine> make_engine(
      linalg::DenseMatrix gram) const {
    if (opt_.gram_factory) return opt_.gram_factory(gram);
    laplacian::SddEngineOptions eopt;
    eopt.network_n = n_ + 1;
    eopt.eps_hint = 1e-12;  // the accuracy the Newton solves request below
    return laplacian::EngineRegistry::instance().create_sdd(
        opt_.engine, ctx_, std::move(gram), eopt);
  }

  void charge_step_rounds() {
    // Per path step: O(1) vector broadcasts at O(log(mU/eps)) bits.
    const std::int64_t bw = 2 * enc::id_bits(std::max<std::size_t>(n_, 2)) + 2;
    const int bits = enc::real_bits(static_cast<double>(m_) / opt_.epsilon,
                                    opt_.epsilon);
    acct_.charge_broadcast_bits("lp/path-step", 4 * bits, bw);
  }

  common::Context ctx_;
  const LpProblem& prob_;
  const LpOptions& opt_;
  const linalg::Vec& cost_;
  bcc::RoundAccountant& acct_;
  BarrierSet barrier_;
  std::size_t m_;
  std::size_t n_;
  double p_lewis_ = 1.0;
  double c0_ = 0.0;
  std::size_t panels_solved_ = 0;
};

}  // namespace

linalg::DenseMatrix assemble_gram(const linalg::CsrMatrix& a,
                                  const linalg::Vec& d) {
  const std::size_t n = a.cols();
  linalg::DenseMatrix gram(n, n);
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_index();
  const auto& vals = a.values();
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t i = rp[r]; i < rp[r + 1]; ++i) {
      for (std::size_t j = rp[r]; j < rp[r + 1]; ++j) {
        gram(ci[i], ci[j]) += d[r] * vals[i] * vals[j];
      }
    }
  }
  return gram;
}

LpResult lp_solve(const common::Context& ctx, const LpProblem& prob,
                  const linalg::Vec& x0, const LpOptions& opt) {
  const std::size_t m = prob.a.rows();
  LpResult out;
  out.x = x0;

  bcc::RoundAccountant acct;
  double u_bound = 1.0;
  for (double v : prob.c) u_bound = std::max(u_bound, std::abs(v));
  for (std::size_t i = 0; i < m; ++i) {
    if (std::isfinite(prob.lower[i]))
      u_bound = std::max(u_bound, std::abs(prob.lower[i]));
    if (std::isfinite(prob.upper[i]))
      u_bound = std::max(u_bound, std::abs(prob.upper[i]));
  }

  // Initial weights (Algorithm 9 line 1). A dummy-cost follower is used
  // only to access the weight initializer; it charges no rounds.
  const linalg::Vec zero_cost(m, 0.0);
  linalg::Vec w =
      PathFollower(ctx, prob, opt, zero_cost, acct).initial_weights();

  // Phase 1: recenter x0. With d = -w .* phi'(x0), x0 is the exact t = 1
  // minimizer of t d^T x + sum w_i phi_i; following d's path down to t1
  // lands near the weighted analytic center (Algorithm 9 lines 2-3).
  const double t1 =
      opt.t_start_scale /
      (std::pow(static_cast<double>(m), 1.5) * u_bound * u_bound);
  BarrierSet barrier0(prob.lower, prob.upper);
  const linalg::Vec phi1_x0 = barrier0.gradient(x0);
  linalg::Vec d_cost(m);
  for (std::size_t i = 0; i < m; ++i) d_cost[i] = -w[i] * phi1_x0[i];

  PathFollower phase1(ctx, prob, opt, d_cost, acct);
  if (!phase1.follow(out.x, w, 1.0, t1, opt.centering_tol, &out.path_steps,
                     &out.newton_steps)) {
    out.rounds = acct.total();
    out.stats.rounds = out.rounds;
    out.stats.iterations = out.path_steps;
    out.stats.steps = out.newton_steps;
    out.stats.panels = phase1.panels_solved();
    return out;
  }

  // Phase 2: follow the true cost from t1 to t2 = 4 * sum(w) / epsilon.
  double w_sum = 0.0;
  for (double v : w) w_sum += v;
  const double t2 = 4.0 * std::max(w_sum, 1.0) / opt.epsilon;
  PathFollower phase2(ctx, prob, opt, prob.c, acct);
  const bool ok = phase2.follow(out.x, w, t1, t2, opt.centering_tol / 4.0,
                                &out.path_steps, &out.newton_steps);

  // Final feasibility restoration: centering can stop with a residual
  // A^T x - b of the order of the last Newton decrement; one weighted
  // least-squares correction removes it without leaving the barrier domain.
  {
    BarrierSet barrier(prob.lower, prob.upper);
    const linalg::Vec phi2 = barrier.hessian_diag(out.x);
    linalg::Vec d(m);
    for (std::size_t i = 0; i < m; ++i) d[i] = 1.0 / (w[i] * phi2[i]);
    auto gram = assemble_gram(prob.a, d);
    std::unique_ptr<laplacian::SddEngine> engine;
    if (opt.gram_factory) {
      engine = opt.gram_factory(gram);
    } else {
      laplacian::SddEngineOptions eopt;
      eopt.network_n = prob.a.cols() + 1;
      eopt.eps_hint = 1e-12;
      engine = laplacian::EngineRegistry::instance().create_sdd(
          opt.engine, ctx, std::move(gram), eopt);
    }
    // The concrete key that served the Gram systems (every step resolves
    // the same (shape, eps) inputs, so this engine's key is the run's).
    out.stats.engine = std::string(engine->key());
    linalg::Vec resid = prob.b;
    const auto ax = prob.a.multiply_transpose(out.x);
    for (std::size_t j = 0; j < resid.size(); ++j) resid[j] -= ax[j];
    const auto lam =
        engine->solve_many(linalg::DenseMatrix::from_columns({resid}), 1e-12)
            .column(0);
    const auto a_lam = prob.a.multiply(ctx, lam);
    linalg::Vec dx(m);
    for (std::size_t i = 0; i < m; ++i) dx[i] = d[i] * a_lam[i];
    const double step = barrier.max_feasible_step(out.x, dx, 0.999);
    linalg::axpy(out.x, step, dx);
  }

  out.converged = ok;
  out.objective = linalg::dot(prob.c, out.x);
  out.rounds = acct.total();
  out.stats.rounds = out.rounds;
  out.stats.iterations = out.path_steps;
  out.stats.steps = out.newton_steps;
  // Every Gram system went through the batched interface: phase panels
  // plus the final feasibility-restoration panel.
  out.stats.panels = phase1.panels_solved() + phase2.panels_solved() + 1;
  return out;
}

}  // namespace bcclap::lp
