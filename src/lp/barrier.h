// Self-concordant barrier functions (Definition 4.1, Section 4.1).
//
// Per coordinate domain [l_i, u_i]:
//  - l finite, u = +inf : phi(x) = -log(x - l)
//  - l = -inf, u finite : phi(x) = -log(u - x)
//  - both finite        : phi(x) = -log cos(a x + b), the paper's
//    trigonometric barrier with a = pi/(u-l), b = -pi/2 (u+l)/(u-l).
#pragma once

#include <limits>
#include <vector>

#include "linalg/vector_ops.h"

namespace bcclap::lp {

inline constexpr double kNegInf = -std::numeric_limits<double>::infinity();
inline constexpr double kPosInf = std::numeric_limits<double>::infinity();

struct CoordinateBarrier {
  double l = kNegInf;
  double u = kPosInf;

  bool in_domain(double x) const;
  double value(double x) const;
  double d1(double x) const;  // phi'
  double d2(double x) const;  // phi'' (> 0 on the domain)
};

// Barrier over R^m with per-coordinate bounds.
class BarrierSet {
 public:
  BarrierSet(linalg::Vec lower, linalg::Vec upper);

  std::size_t dim() const { return coords_.size(); }
  const CoordinateBarrier& coord(std::size_t i) const { return coords_[i]; }

  bool in_domain(const linalg::Vec& x) const;
  double value(const linalg::Vec& x) const;
  linalg::Vec gradient(const linalg::Vec& x) const;   // phi'(x) coordinate-wise
  linalg::Vec hessian_diag(const linalg::Vec& x) const;  // phi''(x)

  // Largest step s in [0, 1] such that x + s*dx stays strictly inside the
  // domain (with a safety margin); used by the IPM line search.
  double max_feasible_step(const linalg::Vec& x, const linalg::Vec& dx,
                           double margin = 0.99) const;

 private:
  std::vector<CoordinateBarrier> coords_;
};

}  // namespace bcclap::lp
