#include "lp/leverage_scores.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "common/encoding.h"
#include "linalg/cholesky.h"
#include "linalg/jl_transform.h"

namespace bcclap::lp {

MatrixOracle dense_oracle(const common::Context& ctx,
                          const linalg::DenseMatrix& m) {
  MatrixOracle o;
  o.m = m.rows();
  o.n = m.cols();
  // Gram matrix and its factorization are shared by the three closures.
  auto gram = std::make_shared<linalg::DenseMatrix>(
      m.transpose().multiply(ctx, m));
  auto factor = std::make_shared<std::optional<linalg::LdltFactor>>(
      linalg::LdltFactor::factor(ctx, *gram));
  if (!factor->has_value()) {
    // Semi-definite guard: tiny ridge.
    for (std::size_t i = 0; i < gram->rows(); ++i)
      (*gram)(i, i) += 1e-12 * ((*gram)(i, i) + 1.0);
    *factor = linalg::LdltFactor::factor(ctx, *gram);
  }
  assert(factor->has_value());
  auto mat = std::make_shared<linalg::DenseMatrix>(m);
  o.apply = [mat, ctx](const linalg::Vec& x) {
    return mat->multiply(ctx, x);
  };
  o.apply_t = [mat, ctx](const linalg::Vec& y) {
    return mat->multiply_transpose(ctx, y);
  };
  o.solve_gram = [factor](const linalg::Vec& y) {
    return (*factor)->solve(y);
  };
  return o;
}

linalg::Vec leverage_scores_exact(const common::Context& ctx,
                                  const linalg::DenseMatrix& m) {
  const MatrixOracle o = dense_oracle(ctx, m);
  linalg::Vec sigma(o.m, 0.0);
  // sigma_i = row_i (M^T M)^{-1} row_i^T: one Gram solve per row, each
  // writing only sigma[i] — rows fan out across the pool.
  ctx.parallel_for(0, o.m, [&](std::size_t i) {
    linalg::Vec row(o.n);
    for (std::size_t j = 0; j < o.n; ++j) row[j] = m(i, j);
    const auto z = o.solve_gram(row);
    sigma[i] = linalg::dot(row, z);
  });
  return sigma;
}

linalg::Vec leverage_scores_jl(const common::Context& ctx,
                               const MatrixOracle& oracle,
                               const LeverageOptions& opt,
                               bcc::RoundAccountant* acct) {
  const std::size_t k = linalg::jl_dimension(oracle.m, opt.eta,
                                             opt.jl_constant);
  const linalg::KaneNelsonSketch sketch(k, oracle.m, opt.sparsity, opt.seed);

  if (acct) {
    // Leader election (1 round) + seed broadcast: O(log^2 m) random bits.
    const std::int64_t bw = 2 * enc::id_bits(oracle.n) + 2;
    acct->charge("leverage/leader", 1);
    acct->charge_broadcast_bits(
        "leverage/seed",
        static_cast<std::int64_t>(sketch.seed_bits()), bw);
  }

  linalg::Vec sigma(oracle.m, 0.0);
  // The probes are independent; they run in fixed-size batches whose
  // boundaries never depend on the thread count, and each batch's results
  // accumulate into sigma sequentially in probe order — bitwise identical
  // at any thread count.
  constexpr std::size_t kProbeBatch = 16;
  const std::size_t dim = sketch.sketch_dim();
  std::vector<linalg::Vec> batch(std::min<std::size_t>(kProbeBatch, dim));
  for (std::size_t base = 0; base < dim; base += kProbeBatch) {
    const std::size_t count = std::min(kProbeBatch, dim - base);
    ctx.parallel_for(0, count, [&](std::size_t b) {
      // p^(j) = M (M^T M)^{-1} M^T Q^(j)  (Algorithm 6 line 5).
      const linalg::Vec qj = sketch.row(base + b);
      const linalg::Vec mt_q = oracle.apply_t(qj);
      const linalg::Vec z = oracle.solve_gram(mt_q);
      batch[b] = oracle.apply(z);
    });
    for (std::size_t b = 0; b < count; ++b) {
      const linalg::Vec& pj = batch[b];
      for (std::size_t i = 0; i < oracle.m; ++i) sigma[i] += pj[i] * pj[i];
      if (acct) {
        // Two matvecs (vector broadcasts) + one Gram solve per probe.
        const std::int64_t bw = 2 * enc::id_bits(oracle.n) + 2;
        const int bits = enc::real_bits(static_cast<double>(oracle.m), 1e-9);
        acct->charge_broadcast_bits("leverage/matvec", 2 * bits, bw);
        acct->charge("leverage/gram-solve", 1);
      }
    }
  }
  return sigma;
}

}  // namespace bcclap::lp
