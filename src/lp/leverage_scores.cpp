#include "lp/leverage_scores.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "common/encoding.h"
#include "linalg/cholesky.h"
#include "linalg/jl_transform.h"

namespace bcclap::lp {

MatrixOracle dense_oracle(const common::Context& ctx,
                          const linalg::DenseMatrix& m) {
  MatrixOracle o;
  o.m = m.rows();
  o.n = m.cols();
  // Gram matrix, its factorization, M and M^T are shared by the closures;
  // the transpose is formed once (it also builds the Gram) and the
  // factorization is paid once, reused by every solve and panel.
  auto mat_t = std::make_shared<linalg::DenseMatrix>(m.transpose());
  auto gram =
      std::make_shared<linalg::DenseMatrix>(mat_t->multiply(ctx, m));
  auto factor = std::make_shared<std::optional<linalg::LdltFactor>>(
      linalg::LdltFactor::factor(ctx, *gram));
  if (!factor->has_value()) {
    // Semi-definite guard: tiny ridge.
    for (std::size_t i = 0; i < gram->rows(); ++i)
      (*gram)(i, i) += 1e-12 * ((*gram)(i, i) + 1.0);
    *factor = linalg::LdltFactor::factor(ctx, *gram);
  }
  assert(factor->has_value());
  auto mat = std::make_shared<linalg::DenseMatrix>(m);
  o.apply = [mat, ctx](const linalg::Vec& x) {
    return mat->multiply(ctx, x);
  };
  o.apply_t = [mat, ctx](const linalg::Vec& y) {
    return mat->multiply_transpose(ctx, y);
  };
  o.solve_gram = [factor](const linalg::Vec& y) {
    return (*factor)->solve(y);
  };
  o.apply_many = [mat, ctx](const linalg::DenseMatrix& x) {
    return mat->multiply(ctx, x);
  };
  o.apply_t_many = [mat_t, ctx](const linalg::DenseMatrix& y) {
    return mat_t->multiply(ctx, y);
  };
  o.solve_gram_many = [factor, ctx](const linalg::DenseMatrix& y) {
    return (*factor)->solve_many(ctx, y);
  };
  return o;
}

linalg::Vec leverage_scores_exact(const common::Context& ctx,
                                  const linalg::DenseMatrix& m) {
  const MatrixOracle o = dense_oracle(ctx, m);
  linalg::Vec sigma(o.m, 0.0);
  // sigma_i = row_i (M^T M)^{-1} row_i^T. Rows go through the factored
  // Gram in fixed-width panels — one batched substitution fan-out per
  // panel instead of one dispatch per row.
  constexpr std::size_t kRowPanel = 32;
  for (std::size_t base = 0; base < o.m; base += kRowPanel) {
    const std::size_t width = std::min(kRowPanel, o.m - base);
    linalg::DenseMatrix rows(o.n, width);
    for (std::size_t b = 0; b < width; ++b) {
      for (std::size_t j = 0; j < o.n; ++j) rows(j, b) = m(base + b, j);
    }
    const linalg::DenseMatrix z = o.solve_gram_many(rows);
    for (std::size_t b = 0; b < width; ++b) {
      double s = 0.0;
      for (std::size_t j = 0; j < o.n; ++j) s += rows(j, b) * z(j, b);
      sigma[base + b] = s;
    }
  }
  return sigma;
}

linalg::Vec leverage_scores_jl(const common::Context& ctx,
                               const MatrixOracle& oracle,
                               const LeverageOptions& opt,
                               bcc::RoundAccountant* acct) {
  const std::size_t k = linalg::jl_dimension(oracle.m, opt.eta,
                                             opt.jl_constant);
  const linalg::KaneNelsonSketch sketch(k, oracle.m, opt.sparsity, opt.seed);

  if (acct) {
    // Leader election (1 round) + seed broadcast: O(log^2 m) random bits.
    const std::int64_t bw = 2 * enc::id_bits(oracle.n) + 2;
    acct->charge("leverage/leader", 1);
    acct->charge_broadcast_bits(
        "leverage/seed",
        static_cast<std::int64_t>(sketch.seed_bits()), bw);
  }

  linalg::Vec sigma(oracle.m, 0.0);
  // The probes are independent; they run in batches whose boundaries
  // never depend on the thread count, and each batch's results accumulate
  // into sigma sequentially in probe order — bitwise identical at any
  // thread count AND at any batch width (the panel ops are column-wise
  // independent). A batched oracle pushes the whole batch through one
  // solve_many panel per outer iteration (p^(j) = M (M^T M)^{-1} M^T
  // Q^(j), Algorithm 6 line 5, columns j of one panel); otherwise probes
  // run one at a time fanned over the pool. probe_batch = 0 means one
  // full-width panel: a single Gram substitution fan-out for the whole
  // sketch instead of one per 16 probes.
  const std::size_t dim = sketch.sketch_dim();
  const std::size_t probe_batch =
      opt.probe_batch == 0 ? std::max<std::size_t>(dim, 1) : opt.probe_batch;
  const bool batched = oracle.batched();
  std::vector<linalg::Vec> batch(
      batched ? 0 : std::min<std::size_t>(probe_batch, dim));
  for (std::size_t base = 0; base < dim; base += probe_batch) {
    const std::size_t count = std::min(probe_batch, dim - base);
    linalg::DenseMatrix panel;
    if (batched) {
      linalg::DenseMatrix q(oracle.m, count);
      for (std::size_t b = 0; b < count; ++b)
        q.set_column(b, sketch.row(base + b));
      panel = oracle.apply_many(
          oracle.solve_gram_many(oracle.apply_t_many(q)));
    } else {
      ctx.parallel_for(0, count, [&](std::size_t b) {
        const linalg::Vec qj = sketch.row(base + b);
        const linalg::Vec mt_q = oracle.apply_t(qj);
        const linalg::Vec z = oracle.solve_gram(mt_q);
        batch[b] = oracle.apply(z);
      });
    }
    for (std::size_t b = 0; b < count; ++b) {
      for (std::size_t i = 0; i < oracle.m; ++i) {
        const double pji = batched ? panel(i, b) : batch[b][i];
        sigma[i] += pji * pji;
      }
      if (acct) {
        // Two matvecs (vector broadcasts) + one Gram solve per probe.
        const std::int64_t bw = 2 * enc::id_bits(oracle.n) + 2;
        const int bits = enc::real_bits(static_cast<double>(oracle.m), 1e-9);
        acct->charge_broadcast_bits("leverage/matvec", 2 * bits, bw);
        acct->charge("leverage/gram-solve", 1);
      }
    }
  }
  return sigma;
}

}  // namespace bcclap::lp
