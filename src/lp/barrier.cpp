#include "lp/barrier.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bcclap::lp {

namespace {
bool finite(double v) { return std::isfinite(v); }
}  // namespace

bool CoordinateBarrier::in_domain(double x) const {
  return x > l && x < u;
}

double CoordinateBarrier::value(double x) const {
  assert(in_domain(x));
  if (finite(l) && !finite(u)) return -std::log(x - l);
  if (!finite(l) && finite(u)) return -std::log(u - x);
  const double a = M_PI / (u - l);
  const double b = -M_PI_2 * (u + l) / (u - l);
  return -std::log(std::cos(a * x + b));
}

double CoordinateBarrier::d1(double x) const {
  assert(in_domain(x));
  if (finite(l) && !finite(u)) return -1.0 / (x - l);
  if (!finite(l) && finite(u)) return 1.0 / (u - x);
  const double a = M_PI / (u - l);
  const double b = -M_PI_2 * (u + l) / (u - l);
  return a * std::tan(a * x + b);
}

double CoordinateBarrier::d2(double x) const {
  assert(in_domain(x));
  if (finite(l) && !finite(u)) return 1.0 / ((x - l) * (x - l));
  if (!finite(l) && finite(u)) return 1.0 / ((u - x) * (u - x));
  const double a = M_PI / (u - l);
  const double b = -M_PI_2 * (u + l) / (u - l);
  const double c = std::cos(a * x + b);
  return a * a / (c * c);
}

BarrierSet::BarrierSet(linalg::Vec lower, linalg::Vec upper) {
  assert(lower.size() == upper.size());
  coords_.resize(lower.size());
  for (std::size_t i = 0; i < lower.size(); ++i) {
    assert((finite(lower[i]) || finite(upper[i])) &&
           "dom(x_i) must not be the whole line (Section 4 assumption)");
    coords_[i] = {lower[i], upper[i]};
  }
}

bool BarrierSet::in_domain(const linalg::Vec& x) const {
  assert(x.size() == coords_.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (!coords_[i].in_domain(x[i])) return false;
  }
  return true;
}

double BarrierSet::value(const linalg::Vec& x) const {
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += coords_[i].value(x[i]);
  return s;
}

linalg::Vec BarrierSet::gradient(const linalg::Vec& x) const {
  linalg::Vec g(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) g[i] = coords_[i].d1(x[i]);
  return g;
}

linalg::Vec BarrierSet::hessian_diag(const linalg::Vec& x) const {
  linalg::Vec h(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) h[i] = coords_[i].d2(x[i]);
  return h;
}

double BarrierSet::max_feasible_step(const linalg::Vec& x,
                                     const linalg::Vec& dx,
                                     double margin) const {
  double step = 1.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const auto& c = coords_[i];
    if (dx[i] > 0.0 && finite(c.u)) {
      step = std::min(step, margin * (c.u - x[i]) / dx[i]);
    } else if (dx[i] < 0.0 && finite(c.l)) {
      step = std::min(step, margin * (c.l - x[i]) / dx[i]);
    }
  }
  return std::max(step, 0.0);
}

}  // namespace bcclap::lp
