#include "lp/project_mixed_ball.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "common/encoding.h"

namespace bcclap::lp {

namespace {

// Inner problem for a fixed norm split t:
//   max a^T x  s.t.  ||x||_2 <= 1 - t,  |x_i| <= t * l_i.
// Exact waterfilling: x = clip(mu * a, +- t l) with mu >= 0 chosen so that
// ||x||_2 = 1 - t (or mu = inf if everything saturates first).
struct InnerSolution {
  linalg::Vec x;
  double value = 0.0;
};

InnerSolution inner_solve(const linalg::Vec& a, const linalg::Vec& l,
                          double t) {
  const std::size_t m = a.size();
  InnerSolution out;
  out.x.assign(m, 0.0);
  const double budget = 1.0 - t;
  if (budget <= 0.0) {
    // ||x||_2 <= 0 forces x = 0 regardless of the box.
    return out;
  }
  // phi(mu) = || clip(mu a, t l) ||_2 is nondecreasing; bisection for
  // phi(mu) = budget. Upper bound: all saturated.
  double full_sat_norm2 = 0.0;
  for (std::size_t i = 0; i < m; ++i) full_sat_norm2 += t * t * l[i] * l[i];
  auto norm_at = [&](double mu) {
    double s = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double v = std::min(std::abs(mu * a[i]), t * l[i]);
      s += v * v;
    }
    return std::sqrt(s);
  };
  double mu;
  if (std::sqrt(full_sat_norm2) <= budget) {
    mu = std::numeric_limits<double>::infinity();
  } else {
    double lo = 0.0, hi = 1.0;
    while (norm_at(hi) < budget) hi *= 2.0;
    for (int it = 0; it < 200; ++it) {
      const double mid = 0.5 * (lo + hi);
      (norm_at(mid) < budget ? lo : hi) = mid;
    }
    mu = 0.5 * (lo + hi);
  }
  for (std::size_t i = 0; i < m; ++i) {
    if (a[i] == 0.0) continue;  // mu may be +inf; 0 * inf would be NaN
    const double mag = std::min(std::abs(mu * a[i]), t * l[i]);
    out.x[i] = (a[i] > 0 ? mag : -mag);
    out.value += a[i] * out.x[i];
  }
  return out;
}

}  // namespace

double mixed_norm(const linalg::Vec& x, const linalg::Vec& l) {
  double inf = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    inf = std::max(inf, std::abs(x[i]) / l[i]);
  return linalg::norm2(x) + inf;
}

MixedBallResult project_mixed_ball_reference(const linalg::Vec& a,
                                             const linalg::Vec& l,
                                             std::size_t grid) {
  MixedBallResult best;
  best.x.assign(a.size(), 0.0);
  for (std::size_t s = 0; s <= grid; ++s) {
    const double t = static_cast<double>(s) / static_cast<double>(grid);
    const auto inner = inner_solve(a, l, t);
    if (inner.value > best.value) {
      best.value = inner.value;
      best.x = inner.x;
      best.t = t;
    }
  }
  best.probes = grid + 1;
  return best;
}

MixedBallResult project_mixed_ball(const linalg::Vec& a, const linalg::Vec& l,
                                   double tol, bcc::RoundAccountant* acct) {
  assert(a.size() == l.size());
  MixedBallResult out;
  out.x.assign(a.size(), 0.0);
  if (linalg::norm2(a) == 0.0) return out;

  // g(t) = value of the inner problem; concave on [0, 1] (Lemma 4.10), so
  // ternary search converges. Each probe needs only the three aggregate
  // prefix sums, which in the BCC are computed by one broadcast per node of
  // its partial sums; we charge O(1) aggregate broadcasts per probe.
  auto g = [&](double t) { return inner_solve(a, l, t).value; };
  double lo = 0.0, hi = 1.0;
  std::size_t probes = 0;
  while (hi - lo > tol) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (g(m1) < g(m2)) {
      lo = m1;
    } else {
      hi = m2;
    }
    probes += 2;
    if (acct) {
      const std::int64_t bw =
          2 * enc::id_bits(std::max<std::size_t>(a.size(), 2)) + 2;
      const int bits = enc::real_bits(1.0, tol);
      // Three aggregate sums + one comparison broadcast per probe pair.
      acct->charge_broadcast_bits("mixed-ball/probe", 4 * bits, bw);
    }
    if (probes > 4096) break;  // tol below double resolution
  }
  const double t = 0.5 * (lo + hi);
  auto inner = inner_solve(a, l, t);
  out.x = std::move(inner.x);
  out.value = inner.value;
  out.t = t;
  out.probes = probes;
  return out;
}

}  // namespace bcclap::lp
