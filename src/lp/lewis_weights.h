// Regularized ell_p Lewis weights (Definition 4.3) and their approximation
// (Algorithms 7 and 8, Lemma 4.6).
//
// The Lewis weight w_p(M) is the unique fixed point w = sigma(W^{1/2-1/p} M).
// Algorithm 7 refines a warm start w0 by damped fixed-point iteration with
// a trust region around w0; Algorithm 8 produces the warm start by a
// homotopy in p from 2 (where Lewis weights = leverage scores) down to
// p_target = 1 - 1/log(4m).
//
// The paper's iteration/step constants (80..., r = p^2(4-p)/2^20) are
// worst-case and make laptop runs take millions of homotopy steps; they are
// exposed as options with practical defaults, and the asymptotic schedules
// are unchanged (bench E8 sweeps them).
#pragma once

#include <cstdint>

#include "common/context.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"
#include "lp/leverage_scores.h"

namespace bcclap::lp {

struct LewisOptions {
  // Algorithm 7 iteration count: iter_constant*(p/2+2/p)*log(p*n/(32 eta)).
  double iter_constant = 4.0;   // paper: 80
  std::size_t max_iterations = 64;
  // Trust-region radius factor: r = trust_constant * p^2 (4-p). Paper:
  // 2^-20; that pins w to w0 so hard that warm starts must be exquisite.
  double trust_constant = 1.0 / 16.0;
  // Algorithm 8 homotopy step scale (paper value corresponds to 1).
  double step_constant = static_cast<double>(1u << 18);
  bool use_jl = false;  // exact leverage scores by default
  LeverageOptions leverage;
};

// Row-scaled matrix W^{1/2 - 1/p} M.
linalg::DenseMatrix row_scaled(const linalg::DenseMatrix& m,
                               const linalg::Vec& w, double p);

// One exact fixed-point map w -> sigma(W^{1/2-1/p} M); reference oracle
// (Cohen-Peng: converges for p in (0,4)). The leverage-score passes run on
// ctx's pool through the batched Gram panels.
linalg::Vec lewis_fixed_point(const common::Context& ctx,
                              const linalg::DenseMatrix& m, double p,
                              std::size_t iterations);

// Algorithm 7.
linalg::Vec compute_apx_weights(const common::Context& ctx,
                                const linalg::DenseMatrix& m, double p,
                                const linalg::Vec& w0, double eta,
                                const LewisOptions& opt);

// Algorithm 8 (includes the final refinement call).
linalg::Vec compute_initial_weights(const common::Context& ctx,
                                    const linalg::DenseMatrix& m,
                                    double p_target, double eta,
                                    const LewisOptions& opt);

// ||w_p(M)^{-1} (w_p(M) - w)||_inf against the fixed-point reference.
double lewis_relative_error(const common::Context& ctx,
                            const linalg::DenseMatrix& m, double p,
                            const linalg::Vec& w);

// The paper's p for the IPM: 1 - 1/log(4m).
double lewis_p_for(std::size_t m_rows);

}  // namespace bcclap::lp
