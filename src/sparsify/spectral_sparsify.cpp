#include "sparsify/spectral_sparsify.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/context.h"
#include "common/rng.h"
#include "spanner/bundle.h"

namespace bcclap::sparsify {

namespace {

// Survival coin of edge e at outer iteration j (1-based): a pure function
// of (seed, j, e). Both algorithm variants consult the same coins, which is
// what makes the Lemma 3.3 coupling exact.
class CoinSource {
 public:
  CoinSource(std::uint64_t seed, std::size_t m)
      : base_(rng::derive_seed(seed, "survival-coins")), m_(m) {}

  bool survives(std::size_t iteration, graph::EdgeId e) const {
    rng::Stream s(rng::derive_seed(base_, iteration * m_ + e));
    return s.next_double() < 0.25;
  }

 private:
  std::uint64_t base_;
  std::size_t m_;
};

std::size_t resolved_iterations(const graph::Graph& g,
                                const SparsifyOptions& opt) {
  if (opt.iterations != 0) return opt.iterations;
  const double m = static_cast<double>(std::max<std::size_t>(g.num_edges(), 2));
  return static_cast<std::size_t>(std::ceil(std::log2(m)));
}

std::size_t bundle_size_at(const SparsifyOptions& opt, std::size_t t_base,
                           std::size_t iteration) {
  return opt.growing_t ? t_base * iteration : t_base;
}

}  // namespace

SparsifyOptions resolve_options(const graph::Graph& g,
                                const SparsifyOptions& opt) {
  SparsifyOptions out = opt;
  const double n =
      static_cast<double>(std::max<std::size_t>(g.num_vertices(), 2));
  if (out.k == 0)
    out.k = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::ceil(std::log2(n))));
  if (out.t == 0) {
    const double logn = std::log2(n);
    out.t = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               out.t_constant * logn * logn / (out.epsilon * out.epsilon))));
  }
  if (out.iterations == 0) out.iterations = resolved_iterations(g, opt);
  return out;
}

SparsifyResult spectral_sparsify(const common::Context& ctx,
                                 const graph::Graph& g,
                                 const SparsifyOptions& opt_in,
                                 bcc::Network& net) {
  const SparsifyOptions opt = resolve_options(g, opt_in);
  const std::size_t m = g.num_edges();
  const std::size_t L = opt.iterations;
  const CoinSource coins(ctx.seed(), m);
  rng::Stream mark_stream = ctx.stream("cluster-marks");

  std::vector<bool> avail(m, true);
  std::vector<double> weight(m);
  for (std::size_t e = 0; e < m; ++e) weight[e] = g.edge(e).weight;
  // last_reset[e]: last iteration at whose end p(e) was reset to 1 (bundle
  // membership), 0 initially. The maintained probability at iteration i is
  // 4^-(i-1-last_reset), realized by checking the pending survival coins.
  std::vector<std::size_t> last_reset(m, 0);

  SparsifyResult result;
  const std::int64_t start = net.accountant().mark();

  std::vector<graph::EdgeId> last_bundle;
  std::vector<graph::VertexId> last_bundle_out;
  for (std::size_t i = 1; i <= L; ++i) {
    const spanner::ExistenceOracle oracle = [&](graph::EdgeId e) {
      for (std::size_t j = last_reset[e] + 1; j < i; ++j) {
        if (!coins.survives(j, e)) return false;
      }
      return true;
    };
    // The survival coins are a pure function of (seed, iteration, edge)
    // and last_reset_ only changes between bundle calls, so the oracle is
    // pure for the duration of each bundle: the spanner's sampling phase
    // may fan out across the pool (the general stateful-oracle contract
    // would pin it to the sequential node walk).
    const auto bundle = spanner::bundle_spanner(
        g, avail, weight, opt.k, bundle_size_at(opt, opt.t, i), oracle,
        mark_stream, net, /*pure_oracle=*/true);
    result.deduction_consistent &= bundle.deduction_consistent;
    for (graph::EdgeId e : bundle.deleted_edges) avail[e] = false;
    std::vector<bool> in_bundle(m, false);
    for (graph::EdgeId e : bundle.bundle_edges) in_bundle[e] = true;
    // Per-edge probability bookkeeping: every slot is written by exactly
    // one index, so the loop fans out across the pool deterministically.
    ctx.parallel_for_chunks(0, m, 4096, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t e = lo; e < hi; ++e) {
        if (!avail[e]) continue;
        if (in_bundle[e]) {
          last_reset[e] = i;  // p(e) <- 1
        } else {
          weight[e] *= 4.0;   // p(e) <- p(e)/4 (tracked via last_reset)
        }
      }
    });
    last_bundle = bundle.bundle_edges;
    last_bundle_out = bundle.out_vertex;
  }

  // Final step: keep the last bundle, sample each other maintained edge
  // with its current probability. The lower-id endpoint samples and
  // broadcasts additions (Algorithm 5 lines 12-15).
  graph::Graph h(g.num_vertices());
  std::vector<bool> in_last_bundle(m, false);
  for (std::size_t j = 0; j < last_bundle.size(); ++j) {
    const graph::EdgeId e = last_bundle[j];
    in_last_bundle[e] = true;
    const auto& ed = g.edge(e);
    h.add_edge(ed.u, ed.v, weight[e]);
    result.original_edge.push_back(e);
    result.out_vertex.push_back(last_bundle_out[j]);
  }
  // The pending survival coins of every maintained edge are a pure function
  // of (seed, iteration, edge), so they evaluate in parallel; the graph and
  // result assembly below then walks edges in id order as before.
  std::vector<std::uint8_t> sampled(m, 0);
  ctx.parallel_for_chunks(0, m, 1024, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t e = lo; e < hi; ++e) {
      if (!avail[e] || in_last_bundle[e]) continue;
      bool exists = true;
      for (std::size_t j = last_reset[e] + 1; j <= L; ++j) {
        if (!coins.survives(j, e)) {
          exists = false;
          break;
        }
      }
      sampled[e] = exists ? 1 : 0;
    }
  });
  for (std::size_t e = 0; e < m; ++e) {
    if (!sampled[e]) continue;
    const auto& ed = g.edge(e);
    h.add_edge(ed.u, ed.v, weight[e]);
    result.original_edge.push_back(e);
    result.out_vertex.push_back(ed.u);  // oriented towards the higher id
  }
  // Broadcast the additions through the superstep driver: the lower-id
  // endpoint announces each sampled edge (Algorithm 5 lines 12-15). Edges
  // are stored with u < v and adjacency lists grow in edge-id order, so
  // node u's outbox matches the edge-id-ordered messages of the sequential
  // engine.
  net.run_superstep(
      [&](std::size_t v) {
        std::vector<bcc::Message> out;
        for (graph::EdgeId e : g.incident(v)) {
          if (!sampled[e] || g.edge(e).u != v) continue;
          bcc::Message msg;
          msg.push_id(g.edge(e).v, g.num_vertices());
          out.push_back(msg);
        }
        return out;
      },
      "sparsify/final-sample");

  result.sparsifier = std::move(h);
  result.rounds = net.accountant().since(start);
  result.resolved_t = opt.t;
  result.resolved_k = opt.k;
  result.stats.rounds = result.rounds;
  result.stats.iterations = L;
  return result;
}

SparsifyResult spectral_sparsify_apriori(const common::Context& ctx,
                                         const graph::Graph& g,
                                         const SparsifyOptions& opt_in) {
  const SparsifyOptions opt = resolve_options(g, opt_in);
  const std::size_t m = g.num_edges();
  const std::size_t L = opt.iterations;
  const CoinSource coins(ctx.seed(), m);
  rng::Stream mark_stream = ctx.stream("cluster-marks");
  // Scratch network: the a-priori variant is the centralized reference;
  // its rounds are not meaningful (it is not BC-implementable).
  bcc::Network scratch(bcc::Model::kBroadcastCongest, g,
                       bcc::Network::default_bandwidth(g.num_vertices()),
                       ctx);

  std::vector<bool> exists(m, true);  // E_i, sampled a priori
  std::vector<double> weight(m);
  for (std::size_t e = 0; e < m; ++e) weight[e] = g.edge(e).weight;

  SparsifyResult result;
  std::vector<graph::EdgeId> last_bundle;
  std::vector<graph::VertexId> last_bundle_out;
  std::vector<graph::EdgeId> final_sampled;

  const spanner::ExistenceOracle always = [](graph::EdgeId) { return true; };
  for (std::size_t i = 1; i <= L; ++i) {
    const auto bundle = spanner::bundle_spanner(
        g, exists, weight, opt.k, bundle_size_at(opt, opt.t, i), always,
        mark_stream, scratch, /*pure_oracle=*/true);
    result.deduction_consistent &= bundle.deduction_consistent;
    assert(bundle.deleted_edges.empty());  // p == 1 never rejects
    std::vector<bool> in_bundle(m, false);
    for (graph::EdgeId e : bundle.bundle_edges) in_bundle[e] = true;
    for (std::size_t e = 0; e < m; ++e) {
      if (!exists[e] || in_bundle[e]) continue;
      if (coins.survives(i, e)) {
        weight[e] *= 4.0;
      } else {
        exists[e] = false;
      }
    }
    last_bundle = bundle.bundle_edges;
    last_bundle_out = bundle.out_vertex;
  }

  graph::Graph h(g.num_vertices());
  std::vector<bool> in_last_bundle(m, false);
  for (std::size_t j = 0; j < last_bundle.size(); ++j) {
    const graph::EdgeId e = last_bundle[j];
    in_last_bundle[e] = true;
    const auto& ed = g.edge(e);
    h.add_edge(ed.u, ed.v, weight[e]);
    result.original_edge.push_back(e);
    result.out_vertex.push_back(last_bundle_out[j]);
  }
  for (std::size_t e = 0; e < m; ++e) {
    if (!exists[e] || in_last_bundle[e]) continue;
    const auto& ed = g.edge(e);
    h.add_edge(ed.u, ed.v, weight[e]);
    result.original_edge.push_back(e);
    result.out_vertex.push_back(ed.u);
  }
  result.sparsifier = std::move(h);
  result.rounds = 0;
  result.resolved_t = opt.t;
  result.resolved_k = opt.k;
  result.stats.iterations = L;
  return result;
}

}  // namespace bcclap::sparsify
