// Spectral sparsification in the Broadcast CONGEST model (Section 3.2,
// Theorem 1.2), following Koutis-Xu with Kyng et al.'s fixed bundle size.
//
// Two variants are provided:
//  - spectral_sparsify        : Algorithm 5, the paper's contribution.
//    Edge sampling happens *ad hoc inside the spanner's Connect calls* and
//    is communicated implicitly; per-edge survival probabilities are
//    maintained as powers of 1/4.
//  - spectral_sparsify_apriori: Algorithm 4 (the Koutis-Xu/KPPS original),
//    which samples surviving edges up front each iteration. Not
//    implementable in Broadcast CONGEST; runs here as the correctness
//    reference.
//
// Coupling (Lemma 3.3): both variants draw the per-iteration survival coin
// of edge e from the same seed-derived stream, and cluster-marking bits
// from the same stream. Under a shared seed the two algorithms therefore
// produce *identical* output graphs — the constructive counterpart of the
// lemma's distributional equality, and a property test in the suite.
#pragma once

#include <cstdint>
#include <vector>

#include "bcc/network.h"
#include "common/context.h"
#include "core/stats.h"
#include "graph/graph.h"

namespace bcclap::sparsify {

struct SparsifyOptions {
  double epsilon = 0.5;
  // Stretch parameter k; 0 = ceil(log2 n) (paper default).
  std::size_t k = 0;
  // Spanners per bundle; 0 = t_constant * log^2(n) / eps^2 (paper form).
  std::size_t t = 0;
  // The paper's constant is 400, which is vacuous below n ~ 10^6 (the
  // "sparsifier" would be denser than G). Benches default to a small
  // constant and report it; the asymptotic form is unchanged.
  double t_constant = 1.0;
  // Outer iterations; 0 = ceil(log2 m) (paper default).
  std::size_t iterations = 0;
  // Ablation A1: grow the bundle size linearly over iterations (Koutis-Xu
  // style) instead of keeping it fixed (Kyng et al.).
  bool growing_t = false;
};

struct SparsifyResult {
  graph::Graph sparsifier;  // reweighted subgraph on the same vertex set
  // For each sparsifier edge: the source edge id in the input graph.
  std::vector<graph::EdgeId> original_edge;
  // Orientation: out-vertex per sparsifier edge (Theorem 1.2's bounded
  // out-degree claim).
  std::vector<graph::VertexId> out_vertex;
  bool deduction_consistent = true;
  std::int64_t rounds = 0;  // kept in sync with stats.rounds (legacy field)
  std::size_t resolved_t = 0;  // the t actually used
  std::size_t resolved_k = 0;
  // Unified shape: rounds = BC rounds of the run, iterations = resolved
  // outer iterations (core/stats.h).
  core::RunStats stats;
};

// Algorithm 5 on a Broadcast CONGEST network over g's topology. All
// randomness (survival coins, cluster marks) derives from ctx.seed(); all
// parallel phases run on ctx's pool (which should be the pool `net` was
// built with — both normally come from the same Runtime).
SparsifyResult spectral_sparsify(const common::Context& ctx,
                                 const graph::Graph& g,
                                 const SparsifyOptions& opt,
                                 bcc::Network& net);

// Algorithm 4 (a-priori sampling); centralized reference. Uses the same
// seed-derived coin and marking streams as spectral_sparsify.
SparsifyResult spectral_sparsify_apriori(const common::Context& ctx,
                                         const graph::Graph& g,
                                         const SparsifyOptions& opt);

// Resolves defaulted (0) option fields against a concrete graph.
SparsifyOptions resolve_options(const graph::Graph& g,
                                const SparsifyOptions& opt);

}  // namespace bcclap::sparsify
