#include "sparsify/verifier.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/rng.h"
#include "graph/laplacian.h"
#include "linalg/dense_matrix.h"
#include "linalg/eigen.h"
#include "linalg/vector_ops.h"

namespace bcclap::sparsify {

namespace {

// Sequential edge sweep: the verifier is a context-free oracle by design,
// so it applies L_G without touching any worker pool.
linalg::Vec apply_laplacian_seq(const graph::Graph& g, const linalg::Vec& x) {
  linalg::Vec y(x.size(), 0.0);
  for (const auto& e : g.edges()) {
    const double d = e.weight * (x[e.u] - x[e.v]);
    y[e.u] += d;
    y[e.v] -= d;
  }
  return y;
}

// Grounded dense Laplacian (drop last row/column).
linalg::DenseMatrix grounded_laplacian(const graph::Graph& g) {
  const std::size_t n = g.num_vertices();
  linalg::DenseMatrix l(n - 1, n - 1);
  for (const auto& e : g.edges()) {
    if (e.u < n - 1) l(e.u, e.u) += e.weight;
    if (e.v < n - 1) l(e.v, e.v) += e.weight;
    if (e.u < n - 1 && e.v < n - 1) {
      l(e.u, e.v) -= e.weight;
      l(e.v, e.u) -= e.weight;
    }
  }
  return l;
}

// Plain dense Cholesky A = R R^T (lower R); nullopt if not PD.
std::optional<linalg::DenseMatrix> cholesky(const linalg::DenseMatrix& a) {
  const std::size_t n = a.rows();
  linalg::DenseMatrix r(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= r(j, k) * r(j, k);
    if (d <= 1e-12) return std::nullopt;
    r(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= r(i, k) * r(j, k);
      r(i, j) = v / r(j, j);
    }
  }
  return r;
}

// Solves R x = b (forward substitution, lower triangular R).
linalg::Vec forward_solve(const linalg::DenseMatrix& r, linalg::Vec b) {
  const std::size_t n = r.rows();
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= r(i, k) * b[k];
    b[i] = v / r(i, i);
  }
  return b;
}

}  // namespace

double SpectralCheck::achieved_epsilon() const {
  if (!valid) return std::numeric_limits<double>::infinity();
  return std::max(lambda_max - 1.0, 1.0 - lambda_min);
}

bool SpectralCheck::within(double eps) const {
  return valid && achieved_epsilon() <= eps + 1e-9;
}

SpectralCheck check_sparsifier(const graph::Graph& g, const graph::Graph& h) {
  SpectralCheck out;
  if (g.num_vertices() != h.num_vertices() || g.num_vertices() < 2) return out;
  const auto lg = grounded_laplacian(g);
  const auto lh = grounded_laplacian(h);
  const auto r = cholesky(lh);
  if (!r) return out;  // H disconnected: infinitely bad sparsifier
  const std::size_t n = lg.rows();
  // S = R^{-1} L_G R^{-T}: column c of Y = R^{-1} L_G, then S = Y R^{-T}
  // computed as rows of R^{-1} Y^T.
  linalg::DenseMatrix y(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    linalg::Vec col(n);
    for (std::size_t i = 0; i < n; ++i) col[i] = lg(i, c);
    const auto sol = forward_solve(*r, std::move(col));
    for (std::size_t i = 0; i < n; ++i) y(i, c) = sol[i];
  }
  linalg::DenseMatrix s(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    linalg::Vec row(n);
    for (std::size_t i = 0; i < n; ++i) row[i] = y(c, i);  // row c of Y
    const auto sol = forward_solve(*r, std::move(row));
    for (std::size_t i = 0; i < n; ++i) s(c, i) = sol[i];
  }
  // Symmetrize against roundoff before the eigensolve.
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j) {
      const double v = 0.5 * (s(i, j) + s(j, i));
      s(i, j) = v;
      s(j, i) = v;
    }
  const auto eigs = linalg::symmetric_eigenvalues(std::move(s));
  out.lambda_min = eigs.front();
  out.lambda_max = eigs.back();
  out.valid = true;
  return out;
}

double sampled_epsilon_lower_bound(const graph::Graph& g,
                                   const graph::Graph& h,
                                   std::size_t samples, std::uint64_t seed) {
  rng::Stream stream(seed);
  double worst = 0.0;
  const std::size_t n = g.num_vertices();
  for (std::size_t s = 0; s < samples; ++s) {
    linalg::Vec x(n);
    for (double& v : x) v = stream.next_gaussian();
    linalg::remove_mean(x);
    const double qg = linalg::dot(x, apply_laplacian_seq(g, x));
    const double qh = linalg::dot(x, apply_laplacian_seq(h, x));
    if (qh <= 0.0) return std::numeric_limits<double>::infinity();
    const double ratio = qg / qh;
    worst = std::max({worst, ratio - 1.0, 1.0 - ratio});
  }
  return worst;
}

}  // namespace bcclap::sparsify
