// Spectral-quality verification (Definition 2.1).
//
// H is a (1 +- eps) spectral sparsifier of G iff every generalized
// eigenvalue of the pencil (L_G, L_H) restricted to range(L_H) lies in
// [1-eps, 1+eps]. For connected G, grounding one vertex reduces this to an
// ordinary symmetric eigenproblem on R^{-1} L_G' R^{-T}, where R is a
// Cholesky factor of the grounded L_H'.
#pragma once

#include "graph/graph.h"

namespace bcclap::sparsify {

struct SpectralCheck {
  // Extreme generalized eigenvalues of (L_G, L_H).
  double lambda_min = 0.0;
  double lambda_max = 0.0;
  bool valid = false;  // false if H is disconnected / not factorizable

  // The smallest eps for which Definition 2.1 holds:
  // (1-eps) x'L_H x <= x'L_G x <= (1+eps) x'L_H x.
  double achieved_epsilon() const;
  bool within(double eps) const;
};

// Exact (dense) verification; intended for n up to a few hundred.
SpectralCheck check_sparsifier(const graph::Graph& g, const graph::Graph& h);

// Monte-Carlo lower bound on achieved epsilon via random quadratic forms
// x'L_G x / x'L_H x (cheap; any violation it finds is a real violation).
double sampled_epsilon_lower_bound(const graph::Graph& g,
                                   const graph::Graph& h,
                                   std::size_t samples, std::uint64_t seed);

}  // namespace bcclap::sparsify
