// Conjugate gradient solver (optionally preconditioned) against an abstract
// linear operator. Baseline for the ablation A2 and the fallback solver for
// sparsifier systems when the dense factorization is too large.
#pragma once

#include <cstddef>
#include <functional>

#include "linalg/vector_ops.h"

namespace bcclap::linalg {

using LinearOperator = std::function<Vec(const Vec&)>;

struct CgResult {
  Vec x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

// Solves A x = b for symmetric PSD `apply_a`, stopping when
// ||A x - b||_2 <= tol * ||b||_2 or after max_iter iterations.
// `precond` (if given) must apply an SPD approximation of A^{-1}.
CgResult conjugate_gradient(const LinearOperator& apply_a, const Vec& b,
                            double tol, std::size_t max_iter,
                            const LinearOperator* precond = nullptr);

}  // namespace bcclap::linalg
