// Conjugate gradient solver (optionally preconditioned) against an abstract
// linear operator. Baseline for the ablation A2 and the fallback solver for
// sparsifier systems when the dense factorization is too large.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace bcclap::linalg {

using LinearOperator = std::function<Vec(const Vec&)>;

struct CgResult {
  Vec x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

// Solves A x = b for symmetric PSD `apply_a`, stopping when
// ||A x - b||_2 <= tol * ||b||_2 or after max_iter iterations.
// `precond` (if given) must apply an SPD approximation of A^{-1}.
CgResult conjugate_gradient(const LinearOperator& apply_a, const Vec& b,
                            double tol, std::size_t max_iter,
                            const LinearOperator* precond = nullptr);

struct CgPanelResult {
  DenseMatrix x;  // n x k, one solution per column
  std::vector<std::size_t> iterations;  // per column
  std::vector<double> residual_norm;    // per column
  std::vector<bool> converged;          // per column
  // Panel A-applications (each covers every still-active column).
  std::size_t a_multiplies = 0;
};

// Batched multi-RHS CG: the panel's columns run in lockstep sharing one
// A-application and one preconditioner application per iteration; CG's
// scalars (alpha, beta, residuals) are tracked per column, and a column
// that converges (or loses positive-definiteness) is frozen — its state
// stops updating at exactly the iteration its sequential run would have
// stopped. With column-wise operators (dense_matrix.h) the result is
// byte-identical per column to conjugate_gradient on that column.
CgPanelResult conjugate_gradient_many(const PanelOperator& apply_a,
                                      const DenseMatrix& b, double tol,
                                      std::size_t max_iter,
                                      const PanelOperator* precond = nullptr);

}  // namespace bcclap::linalg
