// Row-major dense matrix with the handful of operations the reproduction
// needs: products, transposes, LDL^T solves (via cholesky.h) and symmetric
// eigensolves (via eigen.h). Used for exact baselines and verification; the
// distributed algorithms themselves operate on CSR matrices.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "common/context.h"
#include "linalg/vector_ops.h"

namespace bcclap::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static DenseMatrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  // Contiguous row access for the blocked kernels (row-major storage);
  // row r is data()[r * cols() .. r * cols() + cols()).
  double* row_data(std::size_t r) { return &data_[r * cols_]; }
  const double* row_data(std::size_t r) const { return &data_[r * cols_]; }

  // Column extraction/insertion for the multi-RHS panel APIs (a panel is a
  // rows x k matrix whose columns are independent right-hand sides; the
  // storage is row-major, so the triangular solves gather a column into a
  // contiguous vector, solve, and scatter it back).
  Vec column(std::size_t c) const;
  void set_column(std::size_t c, const Vec& v);
  static DenseMatrix from_columns(const std::vector<Vec>& cols);

  // Parallel kernels, dispatched on ctx's pool with ctx's chunking policy
  // (chunk boundaries stay a pure function of the shape and the policy, so
  // results are bit-identical at any worker count of the same context).
  Vec multiply(const common::Context& ctx, const Vec& x) const;
  Vec multiply_transpose(const common::Context& ctx, const Vec& x) const;
  DenseMatrix multiply(const common::Context& ctx,
                       const DenseMatrix& other) const;

  DenseMatrix transpose() const;

  // Frobenius norm of (this - other); used by tests.
  double diff_frobenius(const DenseMatrix& other) const;

  bool is_symmetric(double tol = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Column-wise multi-RHS panel operator: maps an n x k panel to an n x k
// panel with column j of the output a function of column j of the input
// only. The batched iterative drivers (cg.h, chebyshev.h) are built on
// operators of this shape.
using PanelOperator = std::function<DenseMatrix(const DenseMatrix&)>;

}  // namespace bcclap::linalg
