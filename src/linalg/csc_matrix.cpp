#include "linalg/csc_matrix.h"

#include <algorithm>
#include <cassert>

namespace bcclap::linalg {

CscSymmetricMatrix::CscSymmetricMatrix(std::size_t n,
                                       std::vector<Triplet> triplets) {
  n_ = n;
  // Keep the upper triangle only; a symmetric triplet list carries every
  // off-diagonal twice and the mirror copy is redundant.
  auto end = std::remove_if(triplets.begin(), triplets.end(),
                            [](const Triplet& t) { return t.row > t.col; });
  triplets.erase(end, triplets.end());
  // Column-major, row-minor order groups duplicates adjacently for the
  // coalescing pass.
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.col != b.col ? a.col < b.col : a.row < b.row;
            });
  col_ptr_.assign(n + 1, 0);
  for (std::size_t k = 0; k < triplets.size(); ++k) {
    const Triplet& t = triplets[k];
    assert(t.row < n && t.col < n);
    if (k > 0 && triplets[k - 1].row == t.row && triplets[k - 1].col == t.col) {
      values_.back() += t.value;
      continue;
    }
    ++col_ptr_[t.col + 1];
    row_index_.push_back(t.row);
    values_.push_back(t.value);
  }
  for (std::size_t j = 0; j < n; ++j) col_ptr_[j + 1] += col_ptr_[j];
}

CscSymmetricMatrix CscSymmetricMatrix::from_symmetric_csr(
    const CsrMatrix& a, std::size_t drop_trailing) {
  assert(a.rows() == a.cols());
  assert(drop_trailing <= a.rows());
  const std::size_t n = a.rows() - drop_trailing;
  const auto& rp = a.row_ptr();
  const auto& ci = a.col_index();
  const auto& vals = a.values();
  CscSymmetricMatrix m;
  m.n_ = n;
  m.col_ptr_.assign(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = rp[j]; k < rp[j + 1]; ++k) {
      if (ci[k] <= j) ++m.col_ptr_[j + 1];
    }
  }
  for (std::size_t j = 0; j < n; ++j) m.col_ptr_[j + 1] += m.col_ptr_[j];
  m.row_index_.resize(m.col_ptr_[n]);
  m.values_.resize(m.col_ptr_[n]);
  std::size_t out = 0;
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = rp[j]; k < rp[j + 1]; ++k) {
      if (ci[k] <= j) {
        m.row_index_[out] = ci[k];
        m.values_[out] = vals[k];
        ++out;
      }
    }
  }
  return m;
}

Vec CscSymmetricMatrix::diagonal() const {
  Vec d(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    for (std::size_t k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      if (row_index_[k] == j) d[j] += values_[k];
    }
  }
  return d;
}

Vec CscSymmetricMatrix::multiply(const Vec& x) const {
  assert(x.size() == n_);
  Vec y(n_, 0.0);
  for (std::size_t j = 0; j < n_; ++j) {
    for (std::size_t k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      const std::size_t i = row_index_[k];
      const double v = values_[k];
      y[i] += v * x[j];
      if (i != j) y[j] += v * x[i];
    }
  }
  return y;
}

DenseMatrix CscSymmetricMatrix::to_dense() const {
  DenseMatrix a(n_, n_);
  for (std::size_t j = 0; j < n_; ++j) {
    for (std::size_t k = col_ptr_[j]; k < col_ptr_[j + 1]; ++k) {
      const std::size_t i = row_index_[k];
      a(i, j) += values_[k];
      if (i != j) a(j, i) += values_[k];
    }
  }
  return a;
}

}  // namespace bcclap::linalg
