// Symmetric eigensolvers used for spectral verification.
//
// The sparsifier quality check (Definition 2.1) needs the extreme
// generalized eigenvalues of the pencil (L_G, L_H); we compute them exactly
// with a cyclic Jacobi sweep on the (small, dense) whitened matrix.
#pragma once

#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace bcclap::linalg {

// Eigenvalues of a symmetric matrix, ascending. Cyclic Jacobi; O(n^3) per
// sweep, fine for the verification sizes (n <= ~600).
Vec symmetric_eigenvalues(DenseMatrix a, int max_sweeps = 64,
                          double tol = 1e-12);

struct ExtremeEigs {
  double min = 0.0;
  double max = 0.0;
};

// Largest / smallest eigenvalue estimates via power iteration with
// deflation-free shifting; used when n is too large for Jacobi.
ExtremeEigs extreme_eigenvalues_power(const DenseMatrix& a,
                                      std::size_t iterations = 200);

}  // namespace bcclap::linalg
