#include "linalg/amd.h"

#include <algorithm>
#include <cstdint>
#include <set>
#include <unordered_map>
#include <utility>

namespace bcclap::linalg {

namespace {

constexpr std::size_t kNoneIdx = static_cast<std::size_t>(-1);

// Deduplicated off-diagonal adjacency lists of the pattern, sorted
// ascending. Shared setup of both orderings.
std::vector<std::vector<std::size_t>> build_adjacency(
    const CscSymmetricMatrix& a) {
  const std::size_t n = a.dim();
  std::vector<std::vector<std::size_t>> adj(n);
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_index();
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = cp[j]; k < cp[j + 1]; ++k) {
      const std::size_t i = ri[k];
      if (i == j) continue;
      adj[i].push_back(j);
      adj[j].push_back(i);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  return adj;
}

// splitmix64 finalizer — filter hash for indistinguishable-variable
// detection (candidates still compare their lists exactly).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Ordering amd_order(const CscSymmetricMatrix& a) {
  const std::size_t n = a.dim();
  // Quotient-graph state. Vertex ids double as element ids: eliminating
  // the supervariable represented by p turns p into the element whose
  // boundary is the new clique — no separate id space needed.
  //
  //  vadj[v]  surviving explicit variable neighbours of rep v (sorted
  //           ascending; only pruned, never extended — new connections
  //           arise exclusively through elements);
  //  eadj[v]  elements whose boundary contains v, in creation order;
  //  ebound[e] boundary supervariables of element e (pruned lazily);
  //  nv[v]    vertex weight of supervariable v (0 once absorbed);
  //  members[v] original vertices merged into rep v; empty means {v}.
  std::vector<std::vector<std::size_t>> vadj = build_adjacency(a);
  std::vector<std::vector<std::size_t>> eadj(n);
  std::vector<std::vector<std::size_t>> ebound(n);
  std::vector<std::vector<std::size_t>> members(n);
  std::vector<std::size_t> nv(n, 1);
  enum : char { kLiveVar = 0, kElement = 1, kDeadElement = 2, kAbsorbed = 3 };
  std::vector<char> state(n, kLiveVar);
  std::vector<std::size_t> deg(n);
  std::vector<std::uint64_t> vhash(n, 0);
  std::vector<std::size_t> mark(n, 0);
  std::size_t tag = 0;
  std::vector<std::size_t> wstamp(n, 0);
  std::vector<std::size_t> wval(n, 0);
  std::size_t wtag = 0;
  std::vector<char> ordered(n, 0);

  // Degrees start exact (all weights are 1); the pq keys on
  // (approximate external degree in vertex units, representative id),
  // which preserves the exact-MD lowest-original-id tie-break.
  std::set<std::pair<std::size_t, std::size_t>> pq;
  for (std::size_t v = 0; v < n; ++v) {
    deg[v] = vadj[v].size();
    pq.insert({deg[v], v});
  }

  // Live weight of element e's boundary; prunes dead members in passing.
  auto element_weight = [&](std::size_t e) {
    auto& bd = ebound[e];
    std::size_t out = 0;
    std::size_t weight = 0;
    for (std::size_t u : bd) {
      if (state[u] != kLiveVar) continue;
      bd[out++] = u;
      weight += nv[u];
    }
    bd.resize(out);
    return weight;
  };
  auto emit_members = [&](std::size_t v, std::vector<std::size_t>& out) {
    if (members[v].empty()) {
      out.push_back(v);
      ordered[v] = 1;
      return;
    }
    for (std::size_t m : members[v]) {
      out.push_back(m);
      ordered[m] = 1;
    }
  };

  Ordering ord;
  ord.perm.reserve(n);
  std::vector<std::size_t> lp;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  std::size_t remaining = n;
  while (remaining > kOrderingMinTailDim) {
    const std::size_t dmin = pq.begin()->first;
    const std::size_t p = pq.begin()->second;
    if (2 * dmin >= remaining) break;
    pq.erase(pq.begin());

    // Form the pivot element: Lp = (A_p ∪ ⋃_{e ∈ E_p} L_e) \ {p}.
    // Every element reachable from p has its boundary inside Lp ∪ {p}
    // afterwards, so it is absorbed into the new element outright.
    ++tag;
    mark[p] = tag;
    lp.clear();
    for (std::size_t u : vadj[p]) {
      if (state[u] != kLiveVar) continue;
      if (mark[u] != tag) {
        mark[u] = tag;
        lp.push_back(u);
      }
    }
    for (std::size_t e : eadj[p]) {
      if (state[e] != kElement) continue;
      for (std::size_t u : ebound[e]) {
        if (state[u] != kLiveVar) continue;
        if (mark[u] != tag) {
          mark[u] = tag;
          lp.push_back(u);
        }
      }
      state[e] = kDeadElement;
      ebound[e].clear();
      ebound[e].shrink_to_fit();
    }
    emit_members(p, ord.perm);
    remaining -= nv[p];
    std::size_t lp_weight = 0;
    for (std::size_t v : lp) lp_weight += nv[v];
    vadj[p].clear();
    vadj[p].shrink_to_fit();
    eadj[p].clear();
    eadj[p].shrink_to_fit();
    if (lp.empty()) {
      state[p] = kDeadElement;
      continue;
    }
    state[p] = kElement;
    ebound[p] = lp;

    // Pass 1 — the set-difference trick: one sweep over the element
    // lists of Lp leaves wval[e] = |L_e \ Lp| in vertex-weight units for
    // every element touching Lp (each boundary member of e that lies in
    // Lp subtracts its weight exactly once). Dead elements are pruned
    // from the eadj lists in passing.
    ++wtag;
    for (std::size_t v : lp) {
      auto& ev = eadj[v];
      std::size_t out = 0;
      for (std::size_t e : ev) {
        if (state[e] != kElement) continue;
        ev[out++] = e;
        if (wstamp[e] != wtag) {
          wstamp[e] = wtag;
          wval[e] = element_weight(e);
        }
        wval[e] -= nv[v];
      }
      ev.resize(out);
    }

    // Pass 2 — approximate external degrees:
    //   d_v = |Lp \ v| + Σ_{u ∈ A_v \ Lp} nv[u] + Σ_{e ∈ E_v} |L_e \ Lp|
    // clamped by the old degree bound and the remaining weight. Variable
    // neighbours inside Lp are dropped from A_v (they are now reached
    // through element p — this is what keeps the lists from growing),
    // and elements with wval == 0 have L_e ⊆ Lp, so they are absorbed
    // aggressively. The surviving lists feed the supervariable hash.
    for (std::size_t v : lp) {
      auto& av = vadj[v];
      std::size_t out = 0;
      std::size_t dv = lp_weight - nv[v];
      std::uint64_t h = 0;
      for (std::size_t u : av) {
        if (state[u] != kLiveVar || mark[u] == tag) continue;
        av[out++] = u;
        dv += nv[u];
        h += mix64(u);
      }
      av.resize(out);
      auto& ev = eadj[v];
      std::size_t eo = 0;
      for (std::size_t e : ev) {
        if (state[e] != kElement) continue;
        if (wval[e] == 0) {
          state[e] = kDeadElement;
          ebound[e].clear();
          ebound[e].shrink_to_fit();
          continue;
        }
        ev[eo++] = e;
        dv += wval[e];
        h += mix64(e + n);
      }
      ev.resize(eo);
      ev.push_back(p);
      h += mix64(p + n);
      dv = std::min(dv, remaining - nv[v]);
      dv = std::min(dv, deg[v] + lp_weight - nv[v]);
      pq.erase({deg[v], v});
      deg[v] = dv;
      vhash[v] = h ^ mix64((av.size() << 20) | (ev.size() + 1));
    }

    // Pass 3 — mass elimination setup: supervariables of Lp with
    // identical quotient-graph adjacency (same pruned variable list and
    // same element list — all include the new element p) are
    // indistinguishable: they will be eliminated together, so they merge
    // now into the earliest-seen representative. The merged rep's
    // external degree drops by the absorbed weight. Hash buckets keep
    // this linear; candidates still compare lists exactly (both lists
    // are canonical: vadj stays sorted because it is only ever pruned,
    // eadj holds live elements in creation order for every rep).
    buckets.clear();
    for (std::size_t v : lp) {
      auto& cand = buckets[vhash[v]];
      bool absorbed = false;
      for (std::size_t u : cand) {
        if (state[u] != kLiveVar) continue;
        if (vadj[u] != vadj[v] || eadj[u] != eadj[v]) continue;
        nv[u] += nv[v];
        deg[u] -= nv[v];
        state[v] = kAbsorbed;
        nv[v] = 0;
        if (members[u].empty()) members[u].push_back(u);
        if (members[v].empty()) {
          members[u].push_back(v);
        } else {
          members[u].insert(members[u].end(), members[v].begin(),
                            members[v].end());
          members[v].clear();
          members[v].shrink_to_fit();
        }
        vadj[v].clear();
        vadj[v].shrink_to_fit();
        eadj[v].clear();
        eadj[v].shrink_to_fit();
        absorbed = true;
        break;
      }
      if (!absorbed) cand.push_back(v);
    }
    for (std::size_t v : lp) {
      if (state[v] == kLiveVar) pq.insert({deg[v], v});
    }
  }
  ord.t = ord.perm.size();
  // Tail vertices in ascending original id — deterministic, and keeps
  // the permuted tail block in a stable layout for the dense kernel.
  for (std::size_t v = 0; v < n; ++v) {
    if (ordered[v] == 0) ord.perm.push_back(v);
  }
  return ord;
}

// Minimum-degree ordering on the explicit elimination graph (PR 6
// implementation, verbatim): eliminating v fuses its neighbourhood into a
// clique, so every neighbour's list unions in the others. Exact degrees,
// but the clique materialization is what amd_order exists to avoid.
Ordering exact_min_degree_order(const CscSymmetricMatrix& a) {
  const std::size_t n = a.dim();
  std::vector<std::vector<std::size_t>> adj = build_adjacency(a);
  std::set<std::pair<std::size_t, std::size_t>> pq;  // (degree, vertex)
  for (std::size_t v = 0; v < n; ++v) pq.insert({adj[v].size(), v});
  std::vector<char> eliminated(n, 0);
  Ordering ord;
  ord.perm.reserve(n);
  std::size_t remaining = n;
  std::vector<std::size_t> merged;
  while (remaining > kOrderingMinTailDim) {
    const std::size_t deg = pq.begin()->first;
    const std::size_t v = pq.begin()->second;
    if (2 * deg >= remaining) break;
    pq.erase(pq.begin());
    eliminated[v] = 1;
    ord.perm.push_back(v);
    --remaining;
    const std::vector<std::size_t> nb = std::move(adj[v]);
    adj[v] = {};
    for (std::size_t u : nb) {
      std::vector<std::size_t>& au = adj[u];
      merged.clear();
      merged.reserve(au.size() + nb.size());
      std::size_t x = 0;
      std::size_t y = 0;
      while (x < au.size() && y < nb.size()) {
        if (au[x] == v) {
          ++x;
        } else if (nb[y] == u) {
          ++y;
        } else if (au[x] < nb[y]) {
          merged.push_back(au[x++]);
        } else if (nb[y] < au[x]) {
          merged.push_back(nb[y++]);
        } else {
          merged.push_back(au[x]);
          ++x;
          ++y;
        }
      }
      for (; x < au.size(); ++x)
        if (au[x] != v) merged.push_back(au[x]);
      for (; y < nb.size(); ++y)
        if (nb[y] != u) merged.push_back(nb[y]);
      pq.erase({au.size(), u});
      au = merged;
      pq.insert({au.size(), u});
    }
  }
  ord.t = ord.perm.size();
  for (std::size_t v = 0; v < n; ++v)
    if (eliminated[v] == 0) ord.perm.push_back(v);
  return ord;
}

std::size_t ordering_fill_nnz(const CscSymmetricMatrix& a,
                              const Ordering& ord) {
  const std::size_t n = a.dim();
  const std::size_t t = ord.t;
  std::vector<std::size_t> iperm(n);
  for (std::size_t k = 0; k < n; ++k) iperm[ord.perm[k]] = k;
  // Permuted upper-triangle pattern (entries unordered within a column,
  // duplicates kept — the flag guard below is immune to both).
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_index();
  std::vector<std::size_t> pcp(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = cp[j]; k < cp[j + 1]; ++k)
      ++pcp[std::max(iperm[ri[k]], iperm[j]) + 1];
  }
  for (std::size_t j = 0; j < n; ++j) pcp[j + 1] += pcp[j];
  std::vector<std::size_t> pri(pcp[n]);
  {
    std::vector<std::size_t> fill(pcp.begin(), pcp.end() - 1);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = cp[j]; k < cp[j + 1]; ++k) {
        std::size_t r = iperm[ri[k]];
        std::size_t c = iperm[j];
        if (r > c) std::swap(r, c);
        pri[fill[c]++] = r;
      }
    }
  }
  // Truncated-etree symbolic count — the same row-subtree traversal
  // SparseLdltFactor::factor runs (see sparse_ldlt.cpp for the contract).
  std::vector<std::size_t> parent(n, kNoneIdx);
  std::vector<std::size_t> flag(n, kNoneIdx);
  std::size_t nnz = 0;
  for (std::size_t k = 0; k < n; ++k) {
    flag[k] = k;
    for (std::size_t p = pcp[k]; p < pcp[k + 1]; ++p) {
      std::size_t i = pri[p];
      if (i >= k || i >= t) continue;
      while (flag[i] != k) {
        if (parent[i] == kNoneIdx) parent[i] = k;
        flag[i] = k;
        ++nnz;
        if (parent[i] >= t) break;
        i = parent[i];
      }
    }
  }
  return nnz;
}

}  // namespace bcclap::linalg
