#include "linalg/csr_matrix.h"

#include <algorithm>
#include <cassert>

namespace bcclap::linalg {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows_ + 1, 0);
  for (std::size_t i = 0; i < triplets.size();) {
    const std::size_t r = triplets[i].row;
    const std::size_t c = triplets[i].col;
    assert(r < rows_ && c < cols_);
    double v = 0.0;
    while (i < triplets.size() && triplets[i].row == r &&
           triplets[i].col == c) {
      v += triplets[i].value;
      ++i;
    }
    col_index_.push_back(c);
    values_.push_back(v);
    ++row_ptr_[r + 1];
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

CsrMatrix CsrMatrix::from_raw(std::size_t rows, std::size_t cols,
                              std::vector<std::size_t> row_ptr,
                              std::vector<std::size_t> col_index,
                              std::vector<double> values) {
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_index_ = std::move(col_index);
  m.values_ = std::move(values);
  assert(m.row_ptr_.size() == rows + 1);
  assert(m.row_ptr_.front() == 0 && m.row_ptr_.back() == m.values_.size());
  assert(m.col_index_.size() == m.values_.size());
#ifndef NDEBUG
  for (std::size_t r = 0; r < rows; ++r)
    assert(m.row_ptr_[r] <= m.row_ptr_[r + 1]);
  for (std::size_t c : m.col_index_) assert(c < cols);
#endif
  return m;
}

Vec CsrMatrix::multiply(const common::Context& ctx, const Vec& x) const {
  assert(x.size() == cols_);
  Vec y(rows_, 0.0);
  // Row-parallel and bitwise deterministic: y[r] depends only on row r.
  // Grain uses the average row cost nnz/rows (shared helper with the dense
  // kernels).
  const std::size_t grain =
      ctx.grain(rows_, nnz() / std::max<std::size_t>(rows_, 1));
  ctx.parallel_for_chunks(
      0, rows_, grain, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          double s = 0.0;
          for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
            s += values_[k] * x[col_index_[k]];
          y[r] = s;
        }
      });
  return y;
}

Vec CsrMatrix::multiply_transpose(const Vec& x) const {
  assert(x.size() == rows_);
  Vec y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      y[col_index_[k]] += values_[k] * xr;
  }
  return y;
}

Vec CsrMatrix::diagonal() const {
  Vec d(std::min(rows_, cols_), 0.0);
  for (std::size_t r = 0; r < d.size(); ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_index_[k] == r) d[r] = values_[k];
    }
  }
  return d;
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<Triplet> trips;
  trips.reserve(nnz());
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      trips.push_back({col_index_[k], r, values_[k]});
  return CsrMatrix(cols_, rows_, std::move(trips));
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      m(r, col_index_[k]) = values_[k];
  return m;
}

}  // namespace bcclap::linalg
