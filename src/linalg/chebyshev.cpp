#include "linalg/chebyshev.h"

#include <cmath>

namespace bcclap::linalg {

// Standard preconditioned Chebyshev semi-iteration on the pencil B^{-1}A,
// whose spectrum lies in [1/kappa, 1] when A <= B <= kappa A.
ChebyshevResult preconditioned_chebyshev_fixed(
    const std::function<Vec(const Vec&)>& apply_a,
    const std::function<Vec(const Vec&)>& solve_b, const Vec& b, double kappa,
    std::size_t iterations) {
  ChebyshevResult out;
  const std::size_t n = b.size();
  const double lmin = 1.0 / kappa;
  const double lmax = 1.0;
  const double theta = 0.5 * (lmax + lmin);
  const double delta = 0.5 * (lmax - lmin);

  out.x = zeros(n);
  Vec r = b;  // r = b - A x, x = 0
  Vec p;
  double alpha = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    Vec z = solve_b(r);
    ++out.b_solves;
    if (it == 0) {
      p = z;
      alpha = 1.0 / theta;
    } else {
      double beta;
      if (it == 1) {
        beta = 0.5 * (delta * alpha) * (delta * alpha);
      } else {
        beta = (delta * alpha / 2.0) * (delta * alpha / 2.0);
      }
      alpha = 1.0 / (theta - beta / alpha);
      for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    }
    axpy(out.x, alpha, p);
    const Vec ap = apply_a(p);
    ++out.a_multiplies;
    axpy(r, -alpha, ap);
    ++out.iterations;
  }
  return out;
}

ChebyshevResult preconditioned_chebyshev(
    const std::function<Vec(const Vec&)>& apply_a,
    const std::function<Vec(const Vec&)>& solve_b, const Vec& b, double kappa,
    double eps) {
  const double safe_eps = std::max(eps, 1e-16);
  const auto iters = static_cast<std::size_t>(
      std::ceil(std::sqrt(kappa) * std::log(2.0 / safe_eps))) + 1;
  return preconditioned_chebyshev_fixed(apply_a, solve_b, b, kappa, iters);
}

}  // namespace bcclap::linalg
