#include "linalg/chebyshev.h"

#include <cmath>

namespace bcclap::linalg {

// Standard preconditioned Chebyshev semi-iteration on the pencil B^{-1}A,
// whose spectrum lies in [1/kappa, 1] when A <= B <= kappa A.
ChebyshevResult preconditioned_chebyshev_fixed(
    const std::function<Vec(const Vec&)>& apply_a,
    const std::function<Vec(const Vec&)>& solve_b, const Vec& b, double kappa,
    std::size_t iterations) {
  ChebyshevResult out;
  const std::size_t n = b.size();
  const double lmin = 1.0 / kappa;
  const double lmax = 1.0;
  const double theta = 0.5 * (lmax + lmin);
  const double delta = 0.5 * (lmax - lmin);

  out.x = zeros(n);
  Vec r = b;  // r = b - A x, x = 0
  Vec p;
  double alpha = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    Vec z = solve_b(r);
    ++out.b_solves;
    if (it == 0) {
      p = z;
      alpha = 1.0 / theta;
    } else {
      double beta;
      if (it == 1) {
        beta = 0.5 * (delta * alpha) * (delta * alpha);
      } else {
        beta = (delta * alpha / 2.0) * (delta * alpha / 2.0);
      }
      alpha = 1.0 / (theta - beta / alpha);
      for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
    }
    axpy(out.x, alpha, p);
    const Vec ap = apply_a(p);
    ++out.a_multiplies;
    axpy(r, -alpha, ap);
    ++out.iterations;
  }
  return out;
}

ChebyshevResult preconditioned_chebyshev(
    const std::function<Vec(const Vec&)>& apply_a,
    const std::function<Vec(const Vec&)>& solve_b, const Vec& b, double kappa,
    double eps) {
  const double safe_eps = std::max(eps, 1e-16);
  const auto iters = static_cast<std::size_t>(
      std::ceil(std::sqrt(kappa) * std::log(2.0 / safe_eps))) + 1;
  return preconditioned_chebyshev_fixed(apply_a, solve_b, b, kappa, iters);
}

// Panel driver: identical recurrence, every vector op widened to an n x k
// panel. The elementwise updates touch each (row, column) slot with the
// same multiply-add the single-vector driver applies to that column, so
// per-column results match the single-RHS driver bit for bit.
ChebyshevPanelResult preconditioned_chebyshev_many_fixed(
    const PanelOperator& apply_a, const PanelOperator& solve_b,
    const DenseMatrix& b, double kappa, std::size_t iterations) {
  ChebyshevPanelResult out;
  const std::size_t n = b.rows();
  const std::size_t k = b.cols();
  out.x = DenseMatrix(n, k);
  if (k == 0) return out;
  const double lmin = 1.0 / kappa;
  const double lmax = 1.0;
  const double theta = 0.5 * (lmax + lmin);
  const double delta = 0.5 * (lmax - lmin);

  DenseMatrix r = b;  // R = B - A X, X = 0
  DenseMatrix p;
  double alpha = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    DenseMatrix z = solve_b(r);
    ++out.b_solves;
    if (it == 0) {
      p = std::move(z);
      alpha = 1.0 / theta;
    } else {
      double beta;
      if (it == 1) {
        beta = 0.5 * (delta * alpha) * (delta * alpha);
      } else {
        beta = (delta * alpha / 2.0) * (delta * alpha / 2.0);
      }
      alpha = 1.0 / (theta - beta / alpha);
      for (std::size_t i = 0; i < n; ++i) {
        double* pi = p.row_data(i);
        const double* zi = z.row_data(i);
        for (std::size_t j = 0; j < k; ++j) pi[j] = zi[j] + beta * pi[j];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      double* xi = out.x.row_data(i);
      const double* pi = p.row_data(i);
      for (std::size_t j = 0; j < k; ++j) xi[j] += alpha * pi[j];
    }
    const DenseMatrix ap = apply_a(p);
    ++out.a_multiplies;
    for (std::size_t i = 0; i < n; ++i) {
      double* ri = r.row_data(i);
      const double* api = ap.row_data(i);
      for (std::size_t j = 0; j < k; ++j) ri[j] -= alpha * api[j];
    }
    ++out.iterations;
  }
  return out;
}

ChebyshevPanelResult preconditioned_chebyshev_many(
    const PanelOperator& apply_a, const PanelOperator& solve_b,
    const DenseMatrix& b, double kappa, double eps) {
  const double safe_eps = std::max(eps, 1e-16);
  const auto iters = static_cast<std::size_t>(
      std::ceil(std::sqrt(kappa) * std::log(2.0 / safe_eps))) + 1;
  return preconditioned_chebyshev_many_fixed(apply_a, solve_b, b, kappa,
                                             iters);
}

}  // namespace bcclap::linalg
