#include "linalg/cg.h"

#include <cmath>

namespace bcclap::linalg {

CgResult conjugate_gradient(const LinearOperator& apply_a, const Vec& b,
                            double tol, std::size_t max_iter,
                            const LinearOperator* precond) {
  CgResult out;
  const std::size_t n = b.size();
  out.x = zeros(n);
  Vec r = b;
  Vec z = precond ? (*precond)(r) : r;
  Vec p = z;
  double rz = dot(r, z);
  const double b_norm = norm2(b);
  const double target = tol * (b_norm > 0 ? b_norm : 1.0);
  out.residual_norm = norm2(r);
  if (out.residual_norm <= target) {
    out.converged = true;
    return out;
  }
  for (std::size_t it = 0; it < max_iter; ++it) {
    const Vec ap = apply_a(p);
    const double pap = dot(p, ap);
    if (pap <= 0.0 || !std::isfinite(pap)) break;  // lost positive-definiteness
    const double alpha = rz / pap;
    axpy(out.x, alpha, p);
    axpy(r, -alpha, ap);
    out.iterations = it + 1;
    out.residual_norm = norm2(r);
    if (out.residual_norm <= target) {
      out.converged = true;
      break;
    }
    z = precond ? (*precond)(r) : r;
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return out;
}

}  // namespace bcclap::linalg
