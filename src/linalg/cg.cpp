#include "linalg/cg.h"

#include <cmath>

namespace bcclap::linalg {

CgResult conjugate_gradient(const LinearOperator& apply_a, const Vec& b,
                            double tol, std::size_t max_iter,
                            const LinearOperator* precond) {
  CgResult out;
  const std::size_t n = b.size();
  out.x = zeros(n);
  Vec r = b;
  Vec z = precond ? (*precond)(r) : r;
  Vec p = z;
  double rz = dot(r, z);
  const double b_norm = norm2(b);
  const double target = tol * (b_norm > 0 ? b_norm : 1.0);
  out.residual_norm = norm2(r);
  if (out.residual_norm <= target) {
    out.converged = true;
    return out;
  }
  for (std::size_t it = 0; it < max_iter; ++it) {
    const Vec ap = apply_a(p);
    const double pap = dot(p, ap);
    if (pap <= 0.0 || !std::isfinite(pap)) break;  // lost positive-definiteness
    const double alpha = rz / pap;
    axpy(out.x, alpha, p);
    axpy(r, -alpha, ap);
    out.iterations = it + 1;
    out.residual_norm = norm2(r);
    if (out.residual_norm <= target) {
      out.converged = true;
      break;
    }
    z = precond ? (*precond)(r) : r;
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return out;
}

CgPanelResult conjugate_gradient_many(const PanelOperator& apply_a,
                                      const DenseMatrix& b, double tol,
                                      std::size_t max_iter,
                                      const PanelOperator* precond) {
  const std::size_t n = b.rows();
  const std::size_t k = b.cols();
  CgPanelResult out;
  out.x = DenseMatrix(n, k);
  out.iterations.assign(k, 0);
  out.residual_norm.assign(k, 0.0);
  out.converged.assign(k, false);
  if (k == 0) return out;

  // Per-column dot product in the same ascending-index order as dot() so
  // each column's scalars match its sequential run bit for bit.
  const auto col_dot = [n](const DenseMatrix& a, const DenseMatrix& c,
                           std::size_t j) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += a(i, j) * c(i, j);
    return s;
  };

  DenseMatrix r = b;
  DenseMatrix z = precond ? (*precond)(r) : r;
  DenseMatrix p = z;
  std::vector<double> rz(k), target(k);
  std::vector<bool> active(k, true);
  std::size_t num_active = k;
  for (std::size_t j = 0; j < k; ++j) {
    rz[j] = col_dot(r, z, j);
    const double b_norm = std::sqrt(col_dot(b, b, j));
    target[j] = tol * (b_norm > 0 ? b_norm : 1.0);
    out.residual_norm[j] = std::sqrt(col_dot(r, r, j));
    if (out.residual_norm[j] <= target[j]) {
      out.converged[j] = true;
      active[j] = false;
      --num_active;
    }
  }

  for (std::size_t it = 0; it < max_iter && num_active > 0; ++it) {
    const DenseMatrix ap = apply_a(p);
    ++out.a_multiplies;
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;
      const double pap = col_dot(p, ap, j);
      if (pap <= 0.0 || !std::isfinite(pap)) {  // lost positive-definiteness
        active[j] = false;
        --num_active;
        continue;
      }
      const double alpha = rz[j] / pap;
      for (std::size_t i = 0; i < n; ++i) {
        out.x(i, j) += alpha * p(i, j);
        r(i, j) += -alpha * ap(i, j);
      }
      out.iterations[j] = it + 1;
      out.residual_norm[j] = std::sqrt(col_dot(r, r, j));
      if (out.residual_norm[j] <= target[j]) {
        out.converged[j] = true;
        active[j] = false;
        --num_active;
      }
    }
    if (num_active == 0 || it + 1 >= max_iter) break;
    z = precond ? (*precond)(r) : r;
    for (std::size_t j = 0; j < k; ++j) {
      if (!active[j]) continue;
      const double rz_new = col_dot(r, z, j);
      const double beta = rz_new / rz[j];
      rz[j] = rz_new;
      for (std::size_t i = 0; i < n; ++i) p(i, j) = z(i, j) + beta * p(i, j);
    }
  }
  return out;
}

}  // namespace bcclap::linalg
