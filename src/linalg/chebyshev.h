// Preconditioned Chebyshev iteration (Theorem 2.3).
//
// Given symmetric PSD A, B with A <= B <= kappa*A (Loewner order), solves
// A x = b to relative A-norm error eps in O(sqrt(kappa) * log(1/eps))
// iterations, each consisting of one multiply by A, one solve with B, and
// O(1) vector operations — exactly the primitive the BCC Laplacian solver
// is built on (Corollary 2.4 instantiates B = (1 + 1/2) L_H, kappa = 3).
#pragma once

#include <cstddef>
#include <functional>

#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace bcclap::linalg {

struct ChebyshevResult {
  Vec x;
  std::size_t iterations = 0;
  // Count of A-multiplies and B-solves (they are 1 per iteration; kept
  // separate so round accounting can charge them differently).
  std::size_t a_multiplies = 0;
  std::size_t b_solves = 0;
};

// The batched drivers below take column-wise PanelOperators
// (dense_matrix.h) whose per-column arithmetic matches the single-vector
// operator exactly; then the batched solve is byte-identical to k
// single-RHS solves.
struct ChebyshevPanelResult {
  DenseMatrix x;  // n x k, one solution per column
  std::size_t iterations = 0;
  // Panel applications (each covers every column at once).
  std::size_t a_multiplies = 0;
  std::size_t b_solves = 0;
};

// apply_a : x -> A x. solve_b : r -> B^{-1} r (to working precision).
// kappa   : bound with A <= B <= kappa A.
// The iteration count is ceil(sqrt(kappa) * log(2/eps)) + 1, the explicit
// form of Theorem 2.3's O(sqrt(kappa) log(1/eps)).
ChebyshevResult preconditioned_chebyshev(
    const std::function<Vec(const Vec&)>& apply_a,
    const std::function<Vec(const Vec&)>& solve_b, const Vec& b, double kappa,
    double eps);

// Same primitive with an explicit iteration count (used by benches that
// sweep the iteration budget).
ChebyshevResult preconditioned_chebyshev_fixed(
    const std::function<Vec(const Vec&)>& apply_a,
    const std::function<Vec(const Vec&)>& solve_b, const Vec& b, double kappa,
    std::size_t iterations);

// Batched multi-RHS drivers: one shared iteration loop drives every column
// of the panel through the same recurrence — the scalar schedule (alpha,
// beta) depends only on kappa, never on the data, so all columns take the
// same iteration count and one A-multiply / B-solve per iteration covers
// the whole panel. With column-wise operators the result is byte-identical
// per column to the single-RHS driver on that column. A k = 0 panel
// returns immediately.
ChebyshevPanelResult preconditioned_chebyshev_many(
    const PanelOperator& apply_a, const PanelOperator& solve_b,
    const DenseMatrix& b, double kappa, double eps);

ChebyshevPanelResult preconditioned_chebyshev_many_fixed(
    const PanelOperator& apply_a, const PanelOperator& solve_b,
    const DenseMatrix& b, double kappa, std::size_t iterations);

}  // namespace bcclap::linalg
