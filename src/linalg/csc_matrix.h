// Compressed sparse column storage for symmetric matrices.
//
// Only the upper triangle is stored: column j holds the entries (i, j)
// with i <= j, which by symmetry is also row j of the lower triangle.
// This is the input format of the sparse LDL^T factorization
// (linalg/sparse_ldlt.h) — the same layout Uno's CSCSymmetricMatrix and
// the classic LDL/CHOLMOD interfaces use — and it is built straight from
// a graph Laplacian or a symmetric CSR matrix without ever materializing
// a dense n x n array.
//
// Duplicate entries are additive everywhere in this library (see
// CsrMatrix::from_raw); the builders here either keep duplicates (CSR
// ingest) or coalesce them by summation (triplet ingest) — both describe
// the same matrix to every consumer.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace bcclap::linalg {

class CscSymmetricMatrix {
 public:
  CscSymmetricMatrix() = default;

  // Builds from triplets describing a symmetric matrix. Entries may carry
  // one triangle or both: every (i, j, v) with i > j is dropped (its
  // mirror (j, i, v) carries the value), so feeding a full symmetric
  // triplet list yields the same matrix as feeding only its upper
  // triangle. Duplicates are coalesced by summation.
  CscSymmetricMatrix(std::size_t n, std::vector<Triplet> triplets);

  // Upper triangle of a symmetric CSR matrix: row j of the CSR is column
  // j of the CSC by symmetry, so entries of row j with column <= j land
  // in CSC column j. Duplicate CSR entries are preserved (additive).
  // `drop_trailing` takes the leading (n - drop) x (n - drop) principal
  // submatrix instead — the grounding step of the Laplacian factors.
  static CscSymmetricMatrix from_symmetric_csr(const CsrMatrix& a,
                                               std::size_t drop_trailing = 0);

  std::size_t dim() const { return n_; }
  // Stored upper-triangle entries (duplicates counted as stored).
  std::size_t nnz() const { return values_.size(); }

  // Column access: entries of column j are (row_index_[k], values_[k])
  // for k in [col_ptr_[j], col_ptr_[j+1]), rows <= j, unordered.
  const std::vector<std::size_t>& col_ptr() const { return col_ptr_; }
  const std::vector<std::size_t>& row_index() const { return row_index_; }
  const std::vector<double>& values() const { return values_; }

  // Diagonal with duplicates summed.
  Vec diagonal() const;

  // Symmetric matvec y = A x (sequential; test/verification helper).
  Vec multiply(const Vec& x) const;

  // Full symmetric dense image (test helper; defeats the point otherwise).
  DenseMatrix to_dense() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> col_ptr_;
  std::vector<std::size_t> row_index_;
  std::vector<double> values_;
};

}  // namespace bcclap::linalg
