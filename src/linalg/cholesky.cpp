#include "linalg/cholesky.h"

#include <cassert>
#include <cmath>

namespace bcclap::linalg {

std::optional<LdltFactor> LdltFactor::factor(const DenseMatrix& a,
                                             double pivot_tol) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  // Relative pivot threshold: matrices arriving here can be scaled by
  // anything from barrier Hessians (1e-16 .. 1e16), so an absolute
  // tolerance would reject legitimately tiny-but-positive pivots.
  double diag_scale = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    diag_scale = std::max(diag_scale, std::abs(a(j, j)));
  const double threshold = pivot_tol * std::max(diag_scale, 1e-300);
  LdltFactor f;
  f.n_ = n;
  f.l_ = DenseMatrix(n, n);
  f.d_.assign(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double dj = a(j, j);
    for (std::size_t k = 0; k < j; ++k)
      dj -= f.l_(j, k) * f.l_(j, k) * f.d_[k];
    if (dj <= threshold) return std::nullopt;
    f.d_[j] = dj;
    f.l_(j, j) = 1.0;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k)
        v -= f.l_(i, k) * f.l_(j, k) * f.d_[k];
      f.l_(i, j) = v / dj;
    }
  }
  return f;
}

Vec LdltFactor::solve(const Vec& b) const {
  assert(b.size() == n_);
  Vec y(b);
  // Forward: L y = b
  for (std::size_t i = 0; i < n_; ++i) {
    double v = y[i];
    for (std::size_t k = 0; k < i; ++k) v -= l_(i, k) * y[k];
    y[i] = v;
  }
  // Diagonal: D z = y
  for (std::size_t i = 0; i < n_; ++i) y[i] /= d_[i];
  // Backward: L^T x = z
  for (std::size_t i = n_; i-- > 0;) {
    double v = y[i];
    for (std::size_t k = i + 1; k < n_; ++k) v -= l_(k, i) * y[k];
    y[i] = v;
  }
  return y;
}

std::optional<LaplacianFactor> LaplacianFactor::factor(
    const CsrMatrix& laplacian) {
  assert(laplacian.rows() == laplacian.cols());
  const std::size_t n = laplacian.rows();
  if (n < 2) return std::nullopt;
  // Grounded matrix: drop last row/column.
  DenseMatrix g(n - 1, n - 1);
  const auto& rp = laplacian.row_ptr();
  const auto& ci = laplacian.col_index();
  const auto& vals = laplacian.values();
  for (std::size_t r = 0; r + 1 < n; ++r) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] + 1 < n) g(r, ci[k]) = vals[k];
    }
  }
  auto f = LdltFactor::factor(g);
  if (!f) return std::nullopt;
  return LaplacianFactor(n, std::move(*f));
}

Vec LaplacianFactor::solve(const Vec& b) const {
  assert(b.size() == n_);
  Vec rhs(b);
  remove_mean(rhs);
  Vec reduced(rhs.begin(), rhs.end() - 1);
  Vec xr = reduced_.solve(reduced);
  Vec x(n_, 0.0);
  for (std::size_t i = 0; i + 1 < n_; ++i) x[i] = xr[i];
  remove_mean(x);
  return x;
}

std::optional<ComponentLaplacianFactor> ComponentLaplacianFactor::factor(
    const CsrMatrix& laplacian) {
  assert(laplacian.rows() == laplacian.cols());
  const std::size_t n = laplacian.rows();
  ComponentLaplacianFactor f;
  f.n_ = n;
  // Connected components over the nonzero off-diagonal pattern.
  f.component_of_.assign(n, static_cast<std::size_t>(-1));
  const auto& rp = laplacian.row_ptr();
  const auto& ci = laplacian.col_index();
  const auto& vals = laplacian.values();
  for (std::size_t start = 0; start < n; ++start) {
    if (f.component_of_[start] != static_cast<std::size_t>(-1)) continue;
    const std::size_t comp = f.component_vertices_.size();
    f.component_vertices_.emplace_back();
    std::vector<std::size_t> stack{start};
    f.component_of_[start] = comp;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      f.component_vertices_[comp].push_back(v);
      for (std::size_t k = rp[v]; k < rp[v + 1]; ++k) {
        const std::size_t u = ci[k];
        if (u == v || vals[k] == 0.0) continue;
        if (f.component_of_[u] == static_cast<std::size_t>(-1)) {
          f.component_of_[u] = comp;
          stack.push_back(u);
        }
      }
    }
  }
  // Factor each component (grounded on its last local vertex).
  for (auto& verts : f.component_vertices_) {
    if (verts.size() < 2) {
      f.factors_.emplace_back(std::nullopt);
      continue;
    }
    std::vector<std::size_t> local(n, static_cast<std::size_t>(-1));
    for (std::size_t i = 0; i < verts.size(); ++i) local[verts[i]] = i;
    const std::size_t dim = verts.size() - 1;
    DenseMatrix g(dim, dim);
    for (std::size_t i = 0; i + 1 < verts.size(); ++i) {
      const std::size_t v = verts[i];
      for (std::size_t k = rp[v]; k < rp[v + 1]; ++k) {
        const std::size_t lu = local[ci[k]];
        if (lu == static_cast<std::size_t>(-1) || lu >= dim) continue;
        g(i, lu) += vals[k];
      }
    }
    auto ldlt = LdltFactor::factor(g);
    if (!ldlt) return std::nullopt;
    f.factors_.emplace_back(std::move(*ldlt));
  }
  return f;
}

Vec ComponentLaplacianFactor::solve(const Vec& b) const {
  assert(b.size() == n_);
  Vec x(n_, 0.0);
  for (std::size_t c = 0; c < component_vertices_.size(); ++c) {
    const auto& verts = component_vertices_[c];
    if (verts.size() < 2) continue;  // singleton: L row is zero, x = 0
    // Project rhs onto the component's zero-sum subspace.
    double mean = 0.0;
    for (std::size_t v : verts) mean += b[v];
    mean /= static_cast<double>(verts.size());
    Vec local(verts.size() - 1);
    for (std::size_t i = 0; i + 1 < verts.size(); ++i)
      local[i] = b[verts[i]] - mean;
    const Vec sol = factors_[c]->solve(local);
    double xmean = 0.0;
    for (double v : sol) xmean += v;
    xmean /= static_cast<double>(verts.size());
    for (std::size_t i = 0; i + 1 < verts.size(); ++i)
      x[verts[i]] = sol[i] - xmean;
    x[verts.back()] = -xmean;
  }
  return x;
}

}  // namespace bcclap::linalg
