#include "linalg/cholesky.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "linalg/csc_matrix.h"

namespace bcclap::linalg {

namespace {

// Tile edge of the blocked right-looking factorization. Fixed — never
// derived from the worker count — so tile boundaries, and with them the
// floating-point grouping of every trailing update, are identical at any
// thread count. For n <= kLdltBlock the whole matrix is one diagonal
// block and the arithmetic is exactly the classic unblocked sweep.
constexpr std::size_t kLdltBlock = 64;

[[noreturn]] void throw_dim_mismatch(const char* where, std::size_t got,
                                     std::size_t want) {
  throw std::invalid_argument(std::string(where) + ": right-hand side has " +
                              std::to_string(got) + " rows, factor expects " +
                              std::to_string(want));
}

}  // namespace

std::optional<LdltFactor> LdltFactor::factor(const common::Context& ctx,
                                             const DenseMatrix& a,
                                             double pivot_tol) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  // Relative pivot threshold: matrices arriving here can be scaled by
  // anything from barrier Hessians (1e-16 .. 1e16), so an absolute
  // tolerance would reject legitimately tiny-but-positive pivots.
  double diag_scale = 0.0;
  for (std::size_t j = 0; j < n; ++j)
    diag_scale = std::max(diag_scale, std::abs(a(j, j)));
  // Degenerate inputs are "not PD" explicitly: a 0x0 system has nothing to
  // factor, and an all-zero diagonal admits no positive pivot — without
  // this guard the zero matrix would race `0 <= pivot_tol * 1e-300`
  // against double underflow instead of being rejected by design.
  if (n == 0 || diag_scale == 0.0) return std::nullopt;
  const double threshold = pivot_tol * diag_scale;

  LdltFactor f;
  f.n_ = n;
  f.l_ = DenseMatrix(n, n);
  f.d_.assign(n, 0.0);
  DenseMatrix& l = f.l_;
  Vec& d = f.d_;

  // Working storage: the lower triangle of `l` starts as the lower
  // triangle of `a` and is transformed block column by block column into
  // the unit-lower factor. The strict upper triangle stays zero; the
  // diagonal slots hold trailing-matrix values until the final pass pins
  // them to 1.
  ctx.parallel_for_chunks(
      0, n, ctx.grain(n, n / 2 + 1), [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          double* li = l.row_data(i);
          const double* ai = a.row_data(i);
          for (std::size_t j = 0; j <= i; ++j) li[j] = ai[j];
        }
      });

  // Scaled-panel scratch for the trailing GEMM, sized once for the first
  // (largest) panel: every block column that reaches the trailing update
  // has bw == kLdltBlock (the final, possibly ragged block breaks out
  // before using it), so one buffer serves the whole factorization.
  std::vector<double> scaled(
      n > kLdltBlock ? (n - kLdltBlock) * kLdltBlock : 0);

  for (std::size_t kb = 0; kb < n; kb += kLdltBlock) {
    const std::size_t ke = std::min(n, kb + kLdltBlock);
    const std::size_t bw = ke - kb;

    // (1) Unblocked LDLT of the diagonal block. Contributions of earlier
    // block columns were already applied by their trailing updates, so
    // only within-block corrections remain.
    for (std::size_t j = kb; j < ke; ++j) {
      const double* lj = l.row_data(j);
      double dj = lj[j];
      for (std::size_t k = kb; k < j; ++k) dj -= lj[k] * lj[k] * d[k];
      if (dj <= threshold) return std::nullopt;
      d[j] = dj;
      for (std::size_t i = j + 1; i < ke; ++i) {
        double* li = l.row_data(i);
        double v = li[j];
        for (std::size_t k = kb; k < j; ++k) v -= li[k] * lj[k] * d[k];
        li[j] = v / dj;
      }
    }
    if (ke == n) break;

    // (2) Panel: every row below the block receives its final L entries
    // for columns [kb, ke). Rows are independent, so they fan out across
    // the pool; each row also records its D-scaled copy, the right-hand
    // operand of the trailing GEMM below.
    const std::size_t rows_below = n - ke;
    ctx.parallel_for_chunks(
        ke, n, ctx.grain(rows_below, bw * bw / 2 + bw),
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) {
            double* li = l.row_data(i);
            double* si = scaled.data() + (i - ke) * bw;
            for (std::size_t j = kb; j < ke; ++j) {
              const double* lj = l.row_data(j);
              double v = li[j];
              for (std::size_t k = kb; k < j; ++k) v -= li[k] * lj[k] * d[k];
              li[j] = v / d[j];
              si[j - kb] = li[j] * d[j];
            }
          }
        });

    // (3) Trailing update: W(i, j) -= sum_k L(i, k) D(k) L(j, k) over the
    // block's columns, for ke <= j <= i < n. The trailing triangle is cut
    // into kLdltBlock-square tiles; every tile is one unit of work with a
    // fixed interior loop order and a disjoint write range, so the fan-out
    // needs no merge step to stay deterministic.
    struct Tile {
      std::size_t ilo, jlo;
    };
    std::vector<Tile> tiles;
    for (std::size_t ilo = ke; ilo < n; ilo += kLdltBlock)
      for (std::size_t jlo = ke; jlo <= ilo; jlo += kLdltBlock)
        tiles.push_back({ilo, jlo});
    ctx.parallel_for_chunks(
        0, tiles.size(), 1, [&](std::size_t lo, std::size_t hi) {
          for (std::size_t t = lo; t < hi; ++t) {
            const std::size_t ihi = std::min(n, tiles[t].ilo + kLdltBlock);
            const std::size_t jcap = std::min(n, tiles[t].jlo + kLdltBlock);
            for (std::size_t i = tiles[t].ilo; i < ihi; ++i) {
              double* li = l.row_data(i);
              const std::size_t jhi = std::min(jcap, i + 1);
              for (std::size_t j = tiles[t].jlo; j < jhi; ++j) {
                const double* sj = scaled.data() + (j - ke) * bw;
                double s = 0.0;
                for (std::size_t k = 0; k < bw; ++k) s += li[kb + k] * sj[k];
                li[j] -= s;
              }
            }
          }
        });
  }

  for (std::size_t j = 0; j < n; ++j) l(j, j) = 1.0;
  return f;
}

void LdltFactor::forward_solve_in_place(Vec& y) const {
  assert(y.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    double v = y[i];
    for (std::size_t k = 0; k < i; ++k) v -= l_(i, k) * y[k];
    y[i] = v;
  }
}

void LdltFactor::diag_solve_in_place(Vec& y) const {
  assert(y.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) y[i] /= d_[i];
}

void LdltFactor::backward_solve_in_place(Vec& y) const {
  assert(y.size() == n_);
  for (std::size_t i = n_; i-- > 0;) {
    double v = y[i];
    for (std::size_t k = i + 1; k < n_; ++k) v -= l_(k, i) * y[k];
    y[i] = v;
  }
}

void LdltFactor::solve_in_place(Vec& y) const {
  forward_solve_in_place(y);
  diag_solve_in_place(y);
  backward_solve_in_place(y);
}

Vec LdltFactor::solve(const Vec& b) const {
  if (b.size() != n_) throw_dim_mismatch("LdltFactor::solve", b.size(), n_);
  Vec y(b);
  solve_in_place(y);
  return y;
}

DenseMatrix LdltFactor::solve_many(const common::Context& ctx,
                                   const DenseMatrix& b) const {
  if (b.rows() != n_)
    throw_dim_mismatch("LdltFactor::solve_many", b.rows(), n_);
  DenseMatrix x(n_, b.cols());
  // Columns are independent single-vector substitutions with disjoint
  // column writes: byte-identical to sequential solve() calls per column.
  ctx.parallel_for(0, b.cols(), [&](std::size_t j) {
    Vec y = b.column(j);
    solve_in_place(y);
    x.set_column(j, y);
  });
  return x;
}

// GCC 12 flags the bytes of the variant's *inactive* alternatives when the
// LaplacianFactor temporary is moved into the optional return (visible only
// under the sanitizer build's inlining) — a known false positive for
// std::variant inside std::optional; every alternative is fully constructed
// before the move.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
std::optional<LaplacianFactor> LaplacianFactor::factor(
    const common::Context& ctx, const CsrMatrix& laplacian) {
  return factor(ctx, laplacian, factor_mode());
}

std::optional<LaplacianFactor> LaplacianFactor::factor(
    const common::Context& ctx, const CsrMatrix& laplacian, FactorMode mode) {
  assert(laplacian.rows() == laplacian.cols());
  const std::size_t n = laplacian.rows();
  if (n == 0) return std::nullopt;
  // One vertex: L = 0, every rhs projects to zero and x = 0. A valid
  // factor with nothing to hold — previously rejected, which turned
  // 1-node graphs into a null deref downstream (ExactLaplacianSolver).
  if (n == 1) return LaplacianFactor(1);
  const auto& rp = laplacian.row_ptr();
  const auto& ci = laplacian.col_index();
  const auto& vals = laplacian.values();
  // Stored-entry count of the grounded matrix, for the backend dispatch.
  std::size_t grounded_nnz = 0;
  for (std::size_t r = 0; r + 1 < n; ++r) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] + 1 < n) ++grounded_nnz;
    }
  }
  if (sparse_path_selected(n - 1, grounded_nnz, mode)) {
    // Grounded upper triangle straight from the symmetric CSR — no dense
    // detour on this path.
    auto sf = SparseLdltFactor::factor(
        ctx, CscSymmetricMatrix::from_symmetric_csr(laplacian, 1));
    if (!sf) return std::nullopt;
    return LaplacianFactor(n, Reduced{std::move(*sf)});
  }
  // Grounded matrix: drop last row/column. Accumulate (rather than assign)
  // so duplicate CSR entries sum exactly as CsrMatrix::multiply applies
  // them; assignment would silently drop all but the last duplicate.
  DenseMatrix g(n - 1, n - 1);
  for (std::size_t r = 0; r + 1 < n; ++r) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] + 1 < n) g(r, ci[k]) += vals[k];
    }
  }
  auto f = LdltFactor::factor(ctx, g);
  if (!f) return std::nullopt;
  return LaplacianFactor(n, Reduced{std::move(*f)});
}
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

FactorKind LaplacianFactor::path() const {
  if (std::holds_alternative<LdltFactor>(reduced_)) return FactorKind::kDense;
  if (std::holds_alternative<SparseLdltFactor>(reduced_))
    return FactorKind::kSparse;
  return FactorKind::kNone;
}

Vec LaplacianFactor::solve(const Vec& b) const {
  if (b.size() != n_) throw_dim_mismatch("LaplacianFactor::solve", b.size(), n_);
  if (n_ == 1) return Vec{0.0};  // L = 0: projected rhs is 0, x = 0
  Vec rhs(b);
  remove_mean(rhs);
  Vec reduced(rhs.begin(), rhs.end() - 1);
  Vec xr = std::holds_alternative<LdltFactor>(reduced_)
               ? std::get<LdltFactor>(reduced_).solve(reduced)
               : std::get<SparseLdltFactor>(reduced_).solve(reduced);
  Vec x(n_, 0.0);
  for (std::size_t i = 0; i + 1 < n_; ++i) x[i] = xr[i];
  remove_mean(x);
  return x;
}

DenseMatrix LaplacianFactor::solve_many(const common::Context& ctx,
                                        const DenseMatrix& b) const {
  if (b.rows() != n_)
    throw_dim_mismatch("LaplacianFactor::solve_many", b.rows(), n_);
  DenseMatrix x(n_, b.cols());
  // Each column runs the exact single-vector path (projection, grounded
  // substitution, re-projection) and owns its output column.
  ctx.parallel_for(0, b.cols(),
                   [&](std::size_t j) { x.set_column(j, solve(b.column(j))); });
  return x;
}

std::optional<ComponentLaplacianFactor> ComponentLaplacianFactor::factor(
    const common::Context& ctx, const CsrMatrix& laplacian) {
  return factor(ctx, laplacian, factor_mode());
}

std::optional<ComponentLaplacianFactor> ComponentLaplacianFactor::factor(
    const common::Context& ctx, const CsrMatrix& laplacian, FactorMode mode) {
  assert(laplacian.rows() == laplacian.cols());
  const std::size_t n = laplacian.rows();
  ComponentLaplacianFactor f;
  f.n_ = n;
  // Connected components over the nonzero off-diagonal pattern.
  f.component_of_.assign(n, static_cast<std::size_t>(-1));
  const auto& rp = laplacian.row_ptr();
  const auto& ci = laplacian.col_index();
  const auto& vals = laplacian.values();
  for (std::size_t start = 0; start < n; ++start) {
    if (f.component_of_[start] != static_cast<std::size_t>(-1)) continue;
    const std::size_t comp = f.component_vertices_.size();
    f.component_vertices_.emplace_back();
    std::vector<std::size_t> stack{start};
    f.component_of_[start] = comp;
    while (!stack.empty()) {
      const std::size_t v = stack.back();
      stack.pop_back();
      f.component_vertices_[comp].push_back(v);
      for (std::size_t k = rp[v]; k < rp[v + 1]; ++k) {
        const std::size_t u = ci[k];
        if (u == v || vals[k] == 0.0) continue;
        if (f.component_of_[u] == static_cast<std::size_t>(-1)) {
          f.component_of_[u] = comp;
          stack.push_back(u);
        }
      }
    }
  }
  // Local index of every vertex within its component's vertex list,
  // computed in one O(n) pass (the old per-component rebuild was O(n)
  // per component and would serialize the fan-out below).
  const std::size_t num_comps = f.component_vertices_.size();
  std::vector<std::size_t> local(n, 0);
  for (std::size_t c = 0; c < num_comps; ++c) {
    const auto& verts = f.component_vertices_[c];
    for (std::size_t i = 0; i < verts.size(); ++i) local[verts[i]] = i;
  }
  // Factor each component (grounded on its last local vertex) on the
  // backend the dispatch heuristic picks for its size and fill. Components
  // are independent and every slot of factors_ is written by exactly one
  // index, so the fan-out is race-free and byte-deterministic; a failed
  // component leaves its slot empty and is distinguished from a singleton
  // by size below.
  f.factors_.resize(num_comps);
  ctx.parallel_for(0, num_comps, [&](std::size_t c) {
    const auto& verts = f.component_vertices_[c];
    if (verts.size() < 2) return;
    const std::size_t dim = verts.size() - 1;
    // Stored entries of the grounded component matrix (one scan; vertices
    // whose local index is dim are the grounded one, and zero-valued
    // entries may reference other components — invisible to the BFS).
    std::size_t grounded_nnz = 0;
    for (std::size_t i = 0; i + 1 < verts.size(); ++i) {
      const std::size_t v = verts[i];
      for (std::size_t k = rp[v]; k < rp[v + 1]; ++k) {
        const std::size_t u = ci[k];
        if (f.component_of_[u] == c && local[u] < dim) ++grounded_nnz;
      }
    }
    if (sparse_path_selected(dim, grounded_nnz, mode)) {
      // Symmetric triplets in component-local indices; the CSC builder
      // keeps the upper triangle and coalesces duplicates additively.
      std::vector<Triplet> trips;
      trips.reserve(grounded_nnz);
      for (std::size_t i = 0; i + 1 < verts.size(); ++i) {
        const std::size_t v = verts[i];
        for (std::size_t k = rp[v]; k < rp[v + 1]; ++k) {
          const std::size_t u = ci[k];
          if (f.component_of_[u] != c || local[u] >= dim) continue;
          trips.push_back({i, local[u], vals[k]});
        }
      }
      auto sf = SparseLdltFactor::factor(
          ctx, CscSymmetricMatrix(dim, std::move(trips)));
      if (sf) f.factors_[c] = Grounded{std::move(*sf)};
      return;
    }
    DenseMatrix g(dim, dim);
    for (std::size_t i = 0; i + 1 < verts.size(); ++i) {
      const std::size_t v = verts[i];
      for (std::size_t k = rp[v]; k < rp[v + 1]; ++k) {
        const std::size_t u = ci[k];
        if (f.component_of_[u] != c || local[u] >= dim) continue;
        g(i, local[u]) += vals[k];
      }
    }
    auto ldlt = LdltFactor::factor(ctx, g);
    if (ldlt) f.factors_[c] = Grounded{std::move(*ldlt)};
  });
  for (std::size_t c = 0; c < num_comps; ++c) {
    if (f.component_vertices_[c].size() >= 2 && !f.factors_[c])
      return std::nullopt;
  }
  return f;
}

std::size_t ComponentLaplacianFactor::dense_factor_count() const {
  std::size_t count = 0;
  for (const auto& fac : factors_)
    if (fac && std::holds_alternative<LdltFactor>(*fac)) ++count;
  return count;
}

std::size_t ComponentLaplacianFactor::sparse_factor_count() const {
  std::size_t count = 0;
  for (const auto& fac : factors_)
    if (fac && std::holds_alternative<SparseLdltFactor>(*fac)) ++count;
  return count;
}

Vec ComponentLaplacianFactor::solve(const common::Context& ctx,
                                    const Vec& b) const {
  if (b.size() != n_)
    throw_dim_mismatch("ComponentLaplacianFactor::solve", b.size(), n_);
  Vec x(n_, 0.0);
  // Per-component solves touch disjoint slots of x, so they fan out over
  // the caller's pool.
  ctx.parallel_for(0, component_vertices_.size(), [&](std::size_t c) {
    const auto& verts = component_vertices_[c];
    if (verts.size() < 2) return;  // singleton: L row is zero, x = 0
    // Project rhs onto the component's zero-sum subspace.
    double mean = 0.0;
    for (std::size_t v : verts) mean += b[v];
    mean /= static_cast<double>(verts.size());
    Vec local(verts.size() - 1);
    for (std::size_t i = 0; i + 1 < verts.size(); ++i)
      local[i] = b[verts[i]] - mean;
    const Vec sol = std::visit(
        [&](const auto& fac) { return fac.solve(local); }, *factors_[c]);
    double xmean = 0.0;
    for (double v : sol) xmean += v;
    xmean /= static_cast<double>(verts.size());
    for (std::size_t i = 0; i + 1 < verts.size(); ++i)
      x[verts[i]] = sol[i] - xmean;
    x[verts.back()] = -xmean;
  });
  return x;
}

DenseMatrix ComponentLaplacianFactor::solve_many(const common::Context& ctx,
                                                 const DenseMatrix& b) const {
  if (b.rows() != n_)
    throw_dim_mismatch("ComponentLaplacianFactor::solve_many", b.rows(), n_);
  const std::size_t k = b.cols();
  const std::size_t comps = component_vertices_.size();
  DenseMatrix x(n_, k);
  // (column, component) pairs fan out over the caller's pool; each pair
  // owns the (component vertices) x (column) slots of x, and the per-pair
  // arithmetic is exactly solve()'s per-component body on that column —
  // so the panel is byte-identical to k sequential solves.
  ctx.parallel_for(0, comps * k, [&](std::size_t t) {
    const std::size_t j = t / comps;
    const std::size_t c = t % comps;
    const auto& verts = component_vertices_[c];
    if (verts.size() < 2) return;  // singleton: L row is zero, x = 0
    double mean = 0.0;
    for (std::size_t v : verts) mean += b(v, j);
    mean /= static_cast<double>(verts.size());
    Vec local(verts.size() - 1);
    for (std::size_t i = 0; i + 1 < verts.size(); ++i)
      local[i] = b(verts[i], j) - mean;
    const Vec sol = std::visit(
        [&](const auto& fac) { return fac.solve(local); }, *factors_[c]);
    double xmean = 0.0;
    for (double v : sol) xmean += v;
    xmean /= static_cast<double>(verts.size());
    for (std::size_t i = 0; i + 1 < verts.size(); ++i)
      x(verts[i], j) = sol[i] - xmean;
    x(verts.back(), j) = -xmean;
  });
  return x;
}

}  // namespace bcclap::linalg
