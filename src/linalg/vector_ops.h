// Dense vector operations.
//
// Vectors are plain std::vector<double>; free functions keep the call sites
// close to the paper's notation (||x||_M, coordinate-wise products, etc.).
#pragma once

#include <cstddef>
#include <vector>

namespace bcclap::linalg {

using Vec = std::vector<double>;

Vec zeros(std::size_t n);
Vec ones(std::size_t n);
Vec constant(std::size_t n, double value);

double dot(const Vec& a, const Vec& b);
double norm2(const Vec& a);
double norm_inf(const Vec& a);
double norm1(const Vec& a);
// Weighted 2-norm: sqrt(sum_i w_i x_i^2). w must be nonnegative.
double norm_weighted(const Vec& x, const Vec& w);

Vec add(const Vec& a, const Vec& b);
Vec sub(const Vec& a, const Vec& b);
Vec scale(const Vec& a, double s);
// y += alpha * x
void axpy(Vec& y, double alpha, const Vec& x);

// Coordinate-wise operations (paper's scalar-to-vector convention).
Vec cw_mul(const Vec& a, const Vec& b);
Vec cw_div(const Vec& a, const Vec& b);
Vec cw_inv(const Vec& a);
Vec cw_sqrt(const Vec& a);
Vec cw_abs(const Vec& a);
Vec cw_log(const Vec& a);
Vec cw_exp(const Vec& a);
Vec cw_max(const Vec& a, double floor);
// Coordinate-wise median of three vectors (Algorithm 7's median step).
Vec cw_median(const Vec& a, const Vec& b, const Vec& c);
// Positive/negative parts (Section 5's a^+ / a^- notation).
Vec positive_part(const Vec& a);
Vec negative_part(const Vec& a);

// Subtract the mean from every entry (projects onto 1-perp, the range of a
// connected graph's Laplacian).
void remove_mean(Vec& x);
double mean(const Vec& x);

double max_entry(const Vec& a);
double min_entry(const Vec& a);

}  // namespace bcclap::linalg
