#include "linalg/eigen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace bcclap::linalg {

namespace {

// Sequential matvec: the power iterations below run on verification-sized
// matrices and stay context-free by design.
Vec matvec(const DenseMatrix& a, const Vec& x) {
  Vec y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double s = 0.0;
    const double* row = a.row_data(r);
    for (std::size_t c = 0; c < a.cols(); ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

}  // namespace

Vec symmetric_eigenvalues(DenseMatrix a, int max_sweeps, double tol) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p)
      for (std::size_t q = p + 1; q < n; ++q) off += a(p, q) * a(p, q);
    if (std::sqrt(off) < tol) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double tau = (aqq - app) / (2.0 * apq);
        const double t = (tau >= 0 ? 1.0 : -1.0) /
                         (std::abs(tau) + std::sqrt(1.0 + tau * tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a(i, p);
          const double aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = a(p, i);
          const double aqi = a(q, i);
          a(p, i) = c * api - s * aqi;
          a(q, i) = s * api + c * aqi;
        }
      }
    }
  }
  Vec eigs(n);
  for (std::size_t i = 0; i < n; ++i) eigs[i] = a(i, i);
  std::sort(eigs.begin(), eigs.end());
  return eigs;
}

ExtremeEigs extreme_eigenvalues_power(const DenseMatrix& a,
                                      std::size_t iterations) {
  assert(a.rows() == a.cols());
  const std::size_t n = a.rows();
  rng::Stream stream(0x9d2c5680u);
  Vec v(n);
  for (double& x : v) x = stream.next_gaussian();
  double lmax = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    Vec w = matvec(a, v);
    const double nw = norm2(w);
    if (nw == 0.0) break;
    lmax = dot(v, w) / dot(v, v);
    v = scale(w, 1.0 / nw);
  }
  // Smallest eigenvalue via power iteration on (lmax*I - A).
  for (double& x : v) x = stream.next_gaussian();
  double mu = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    Vec w = matvec(a, v);
    for (std::size_t i = 0; i < n; ++i) w[i] = lmax * v[i] - w[i];
    const double nw = norm2(w);
    if (nw == 0.0) break;
    mu = dot(v, w) / dot(v, v);
    v = scale(w, 1.0 / nw);
  }
  return {lmax - mu, lmax};
}

}  // namespace bcclap::linalg
