// Sparse LDL^T factorization with a dense supernodal tail.
//
// The sparsified Laplacians this library factors have O(n / eps^2) edges,
// so the dense LdltFactor's O(n^2) storage and O(n^3) arithmetic are the
// scaling wall (ROADMAP: "break the dense O(n^2) wall"). This factor is
// the sparse-first path behind LaplacianFactor / ComponentLaplacianFactor
// (linalg/cholesky.h), which select it automatically by a density
// heuristic — see `sparse_path_selected` below.
//
// Pipeline, the classic sparse-direct recipe:
//  1. Fill-reducing ordering: approximate minimum degree on the quotient
//     graph (linalg/amd.h — supervariables, element absorption, mass
//     elimination), with a dense-tail cutoff — once the minimum degree
//     reaches half the remaining vertices (or few vertices remain),
//     further sparse elimination only churns an effectively dense
//     submatrix, so the remaining vertices are deferred to the tail
//     wholesale.
//  2. Symbolic analysis: elimination tree + per-column fill counts via
//     the standard row-subtree traversal, truncated at the tail split t
//     (etree parents strictly increase, so every truncated ancestor is a
//     tail column — the truncation is exact, not a heuristic). The
//     sparse prefix is postordered along the elimination forest, which
//     makes fundamental supernodes — runs of columns with identical
//     below-diagonal pattern — contiguous; supernode boundaries are
//     detected from the etree + fill counts and recorded in sn_ptr_.
//  3. Numeric factorization: up-looking row-by-row sparse LDL^T (the
//     LDL/ldl.c algorithm) for the leading t columns; the Schur
//     complement S = A22 - L21 D1 L21^T is subtracted in supernode
//     panels (dense rank-w dot products over each panel's shared row
//     pattern — the panels are contiguous row-major blocks, not scalar
//     column scatter) and factored by the blocked parallel dense kernel
//     (linalg/ldlt.h). Triangular solves run over the same panels.
//
// Determinism contract: ordering, symbolic and the sparse numeric phase
// are sequential; the Schur subtraction fans out over fixed 64-row bands
// with disjoint writes and a fixed per-band accumulation order; the dense
// tail is the byte-deterministic blocked kernel. Factors and solves are
// therefore byte-identical at any thread count.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "common/context.h"
#include "linalg/csc_matrix.h"
#include "linalg/dense_matrix.h"
#include "linalg/ldlt.h"
#include "linalg/vector_ops.h"

namespace bcclap::linalg {

// Which factorization backend a LaplacianFactor / component ended up on.
enum class FactorKind {
  kNone,    // nothing to factor (n <= 1 after grounding)
  kDense,   // blocked dense LdltFactor
  kSparse,  // SparseLdltFactor
};

// Process-wide override for the dense/sparse dispatch inside the
// Laplacian factors. kAuto applies the density heuristic; the force modes
// pin one backend (test equivalence suites, benchmarks, escape hatch).
// Initialized from the BCCLAP_FACTOR_PATH environment variable
// ("dense" / "sparse" / "auto") on first use.
enum class FactorMode { kAuto, kForceDense, kForceSparse };

FactorMode factor_mode();
void set_factor_mode(FactorMode mode);

// Parses a BCCLAP_FACTOR_PATH-style value ("dense" / "sparse" / "auto").
// Unrecognized values set *recognized to false and return kAuto — the
// env reader warns on that case instead of silently falling through
// (tested in test_sparse_factor.cpp).
FactorMode parse_factor_mode(const char* value, bool* recognized);

// Auto-dispatch thresholds: the sparse path takes over only above
// kSparseMinDim (below it the dense kernel's constants win — and keeping
// the bar above 256 pins every historical n=256 bench case to the dense
// path, byte for byte) and below kSparseMaxDensity stored-entry density
// (near-dense inputs would just rebuild the dense matrix with overhead).
inline constexpr std::size_t kSparseMinDim = 384;
inline constexpr double kSparseMaxDensity = 0.25;

// The dispatch predicate: true when a grounded matrix of dimension `dim`
// with `nnz` stored entries (duplicates counted; heuristic only) should
// be factored on the sparse path under the current factor_mode().
bool sparse_path_selected(std::size_t dim, std::size_t nnz);

// Same predicate under an explicit mode instead of the process-wide one.
// kAuto applies the density heuristic; the force modes pin a backend.
// The engine registry's "exact-dense" / "exact-sparse" keys use this so a
// per-request engine choice never has to mutate process state.
bool sparse_path_selected(std::size_t dim, std::size_t nnz, FactorMode mode);

// Wall-clock and size breakdown of one sparse factorization, surfaced
// through core::RunStats so benches and the service can see where factor
// time goes. The clocks live inside SparseLdltFactor::factor — the
// factorization is the one layer that owns its phases; everything above
// (Laplacian factors, prepared engines, the facade) only aggregates.
// numeric_seconds includes the Schur subtraction and the dense tail.
struct SparseFactorPhases {
  double ordering_seconds = 0.0;
  double symbolic_seconds = 0.0;
  double numeric_seconds = 0.0;
  std::size_t supernodes = 0;  // sparse-prefix supernode panels
  std::size_t fill_nnz = 0;    // nnz(L11) + nnz(L21)

  SparseFactorPhases& operator+=(const SparseFactorPhases& o) {
    ordering_seconds += o.ordering_seconds;
    symbolic_seconds += o.symbolic_seconds;
    numeric_seconds += o.numeric_seconds;
    supernodes += o.supernodes;
    fill_nnz += o.fill_nnz;
    return *this;
  }
};

// Sparse LDL^T factor of a symmetric positive definite matrix given by
// its upper triangle in CSC form.
class SparseLdltFactor {
 public:
  // Factors on ctx's pool. Returns nullopt under the same contract as
  // LdltFactor::factor: empty matrix, all-zero diagonal, or any pivot at
  // or below pivot_tol relative to the largest diagonal magnitude.
  static std::optional<SparseLdltFactor> factor(const common::Context& ctx,
                                                const CscSymmetricMatrix& a,
                                                double pivot_tol = 1e-12);

  Vec solve(const Vec& b) const;

  // Multi-RHS panel solve; columns fan out over ctx's pool with disjoint
  // writes, per-column byte-identical to solve().
  DenseMatrix solve_many(const common::Context& ctx,
                         const DenseMatrix& b) const;

  std::size_t dim() const { return n_; }
  // Columns eliminated by the sparse simplicial phase.
  std::size_t sparse_columns() const { return t_; }
  // Dimension of the dense Schur-complement tail.
  std::size_t tail_dim() const { return n_ - t_; }
  // Stored off-diagonal fill of the sparse phase: nnz(L11) + nnz(L21).
  std::size_t fill_nnz() const {
    return l_rows_.size() + l21_cols_.size();
  }
  // Supernode panels of the sparse prefix (runs of columns with identical
  // below-diagonal pattern); panel s spans columns [sn_ptr_[s], sn_ptr_[s+1]).
  std::size_t supernode_count() const {
    return sn_ptr_.empty() ? 0 : sn_ptr_.size() - 1;
  }
  // Phase breakdown of the factorization that built this object.
  const SparseFactorPhases& phases() const { return phases_; }

  // Resident numeric + index payload (see LdltFactor::resident_bytes);
  // charged against the factorization cache's byte budget.
  std::size_t resident_bytes() const {
    const std::size_t idx =
        (perm_.size() + iperm_.size() + l_colp_.size() + l_rows_.size() +
         l21_rowp_.size() + l21_cols_.size() + sn_ptr_.size()) *
        sizeof(std::size_t);
    const std::size_t num =
        (l_vals_.size() + d_.size() + l21_vals_.size()) * sizeof(double);
    return idx + num + (tail_ ? tail_->resident_bytes() : 0);
  }

 private:
  std::size_t n_ = 0;  // matrix dimension
  std::size_t t_ = 0;  // sparse/dense split: columns [0, t_) are sparse
  std::vector<std::size_t> perm_;   // new index -> original index
  std::vector<std::size_t> iperm_;  // original index -> new index
  // L11: strictly-lower entries of the unit-lower factor's leading t_
  // columns, CSC, rows < t_ (appended in row order, so ascending).
  std::vector<std::size_t> l_colp_;
  std::vector<std::size_t> l_rows_;
  std::vector<double> l_vals_;
  // Supernode column starts over [0, t_]; size supernode_count() + 1.
  // Within panel [j0, j1), column j's pattern is exactly the remaining
  // panel columns {j+1, .., j1-1} followed by a below-panel row set
  // shared by the whole panel — the solves and the Schur subtraction
  // exploit this layout.
  std::vector<std::size_t> sn_ptr_;
  SparseFactorPhases phases_;
  Vec d_;  // t_ sparse-phase pivots
  // L21: rows t_..n-1 of the factor restricted to columns < t_, CSR.
  std::vector<std::size_t> l21_rowp_;
  std::vector<std::size_t> l21_cols_;
  std::vector<double> l21_vals_;
  // Dense LDL^T of the Schur complement; engaged iff t_ < n_.
  std::optional<LdltFactor> tail_;

  void solve_in_place(Vec& y) const;  // permuted coordinates

  SparseLdltFactor() = default;
};

}  // namespace bcclap::linalg
