// Compressed sparse row matrix. This is the storage format for Laplacians,
// incidence matrices and sparsifiers; the distributed algorithms only ever
// need matvec / transpose-matvec / diagonal extraction from it.
#pragma once

#include <cstddef>
#include <vector>

#include "common/context.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace bcclap::linalg {

struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;
  // Builds from triplets; duplicate (row, col) entries are summed.
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> triplets);

  // Adopts pre-built CSR arrays without copying or coalescing (external
  // ingest: scipy-style CSR legitimately carries duplicate columns within
  // a row). Every consumer in this library treats entries additively, so
  // duplicates behave as their sum — matvecs and the factorization
  // scatter paths included.
  static CsrMatrix from_raw(std::size_t rows, std::size_t cols,
                            std::vector<std::size_t> row_ptr,
                            std::vector<std::size_t> col_index,
                            std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  // Row-parallel matvec on ctx's pool (bitwise deterministic at any worker
  // count of the same context).
  Vec multiply(const common::Context& ctx, const Vec& x) const;
  Vec multiply_transpose(const Vec& x) const;  // sequential scatter
  Vec diagonal() const;

  CsrMatrix transpose() const;
  DenseMatrix to_dense() const;

  // Row access for iteration: entries of row r are
  // (col_index_[k], values_[k]) for k in [row_ptr_[r], row_ptr_[r+1]).
  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_index() const { return col_index_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_index_;
  std::vector<double> values_;
};

}  // namespace bcclap::linalg
