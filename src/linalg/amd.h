// Fill-reducing orderings for the sparse LDL^T stack (linalg/sparse_ldlt.h).
//
// Both orderings share one contract, which the sparse/dense dispatch and
// the bench anchors depend on:
//  - `perm` maps new index -> original index;
//  - positions [0, t) are the sparse elimination prefix, positions [t, n)
//    the dense tail, listed in ascending original id;
//  - elimination stops once the (approximate) minimum degree reaches half
//    the remaining vertex weight — the eliminated cliques have fused into
//    an effectively dense block, so further sparse steps would produce
//    O(r^2) fill each — or once at most kOrderingMinTailDim vertices
//    remain (below that the blocked dense kernel wins outright);
//  - ties break on the lowest original vertex id, so the ordering is a
//    pure function of the pattern (byte-determinism anchor).
//
// `amd_order` is the production ordering: approximate minimum degree on
// the quotient graph (elements + supervariables, external-degree upper
// bounds via the set-difference trick, indistinguishable-variable mass
// elimination, element absorption). `exact_min_degree_order` is the
// PR 6 std::set implementation, kept as the fill-quality reference the
// tests and the ordering bench compare against: it materializes every
// elimination clique in its adjacency lists, which makes it exact but
// quadratic-ish on expander-like inputs (~4.6 s of the n=10^4 pipeline,
// vs milliseconds for AMD).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csc_matrix.h"

namespace bcclap::linalg {

// Tail cutoff of the orderings: below this many remaining vertices the
// blocked dense kernel wins outright, so they are deferred wholesale.
// (Mass elimination may overshoot — one pivot can retire a supervariable
// straddling the bar — so the tail can come out smaller than this.)
inline constexpr std::size_t kOrderingMinTailDim = 64;

struct Ordering {
  std::vector<std::size_t> perm;  // new index -> original index
  std::size_t t = 0;              // sparse prefix length
};

// Approximate minimum degree on the quotient graph. Deterministic: the
// pivot is the supervariable with the smallest approximate external
// degree (in original-vertex units), ties on the lowest original id of
// the supervariable's representative.
Ordering amd_order(const CscSymmetricMatrix& a);

// Exact minimum degree on the explicit elimination graph (reference
// implementation; see file comment).
Ordering exact_min_degree_order(const CscSymmetricMatrix& a);

// Off-diagonal fill of the sparse prefix under `ord`: nnz(L11) + nnz(L21)
// of the factor SparseLdltFactor would build, by the truncated-etree
// symbolic count. Pattern-only; used by the fill-regression tests and the
// ordering bench.
std::size_t ordering_fill_nnz(const CscSymmetricMatrix& a,
                              const Ordering& ord);

}  // namespace bcclap::linalg
