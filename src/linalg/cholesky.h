// Dense LDL^T factorization for symmetric positive (semi-)definite systems.
//
// The reproduction uses this in two places:
//  - exact reference solves in tests and verification, and
//  - the "internal computation" each BCC node performs on the globally-known
//    sparsifier H (Section 3.3): once H is known to every node, solving
//    L_H y = r costs zero rounds, so a local factorization is the honest
//    model of that step.
//
// Laplacians are rank-deficient (kernel = span{1} for connected graphs), so
// `LaplacianFactor` grounds the last vertex and solves on the quotient.
//
// `LdltFactor::factor` is a blocked right-looking factorization: the panel
// solve and the trailing-matrix tiles fan out over the execution context's
// worker pool (common/context.h) with fixed tile boundaries, so factors
// are byte-identical at any thread count — the same contract the superstep
// engine gives the network. `ComponentLaplacianFactor` additionally
// factors (and solves) its connected components in parallel; it remembers
// the pool it was factored on, so the owning Runtime must outlive the
// factor. Every factor also exposes a multi-RHS `solve_many` panel path —
// the substitutions fan out one column per task, byte-identical to the
// sequential per-column solves.
#pragma once

#include <optional>

#include "common/context.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace bcclap::linalg {

class LdltFactor {
 public:
  // Factors a symmetric positive definite matrix on ctx's pool. Returns
  // nullopt if a pivot falls below `pivot_tol` relative to the largest
  // diagonal magnitude (matrix not PD to working precision). Degenerate
  // inputs — a 0x0 matrix or an all-zero diagonal — are rejected
  // explicitly rather than left to threshold underflow.
  static std::optional<LdltFactor> factor(const common::Context& ctx,
                                          const DenseMatrix& a,
                                          double pivot_tol = 1e-12);

  Vec solve(const Vec& b) const;

  // Multi-RHS panel solve: b is n x k, one right-hand side per column.
  // Columns fan out over ctx's pool with disjoint column writes, so the
  // result is byte-identical to k sequential solve() calls at any thread
  // count (each column runs exactly the single-vector substitution).
  DenseMatrix solve_many(const common::Context& ctx,
                         const DenseMatrix& b) const;

  std::size_t dim() const { return n_; }

 private:
  std::size_t n_ = 0;
  DenseMatrix l_;  // unit lower triangular
  Vec d_;          // diagonal

  void solve_in_place(Vec& y) const;

  LdltFactor() = default;
};

// Solver for L x = b where L is the Laplacian of a *connected* graph and
// b has zero sum. Grounds the last coordinate, factors the reduced matrix,
// and returns the mean-zero representative of the solution.
class LaplacianFactor {
 public:
  static std::optional<LaplacianFactor> factor(const common::Context& ctx,
                                               const CsrMatrix& laplacian);

  // Requires sum(b) ~ 0 (the solver projects b to be safe). Returns x with
  // mean zero satisfying L x = b.
  Vec solve(const Vec& b) const;

  // Panel solve; per-column byte-identical to solve() (see
  // LdltFactor::solve_many).
  DenseMatrix solve_many(const common::Context& ctx,
                         const DenseMatrix& b) const;

  std::size_t dim() const { return n_; }

 private:
  std::size_t n_ = 0;
  LdltFactor reduced_;

  explicit LaplacianFactor(std::size_t n, LdltFactor reduced)
      : n_(n), reduced_(std::move(reduced)) {}
};

// Generalized Laplacian solver for possibly *disconnected* graphs: solves
// on range(L) by grounding one vertex per connected component and
// projecting the right-hand side per component. Needed by the Gremban
// reduction, whose virtual graph is legitimately disconnected when the SDD
// matrix has zero off-diagonals between some vertex groups.
class ComponentLaplacianFactor {
 public:
  static std::optional<ComponentLaplacianFactor> factor(
      const common::Context& ctx, const CsrMatrix& laplacian);

  // Returns the minimum-norm-style representative: per component, the
  // solution with zero component mean for the component-projected rhs.
  Vec solve(const Vec& b) const;

  // Panel solve on the pool the factor was built on: (component, column)
  // pairs fan out with disjoint writes, per-column byte-identical to
  // solve().
  DenseMatrix solve_many(const DenseMatrix& b) const;

  std::size_t dim() const { return n_; }
  std::size_t num_components() const { return component_vertices_.size(); }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> component_of_;
  std::vector<std::vector<std::size_t>> component_vertices_;
  // One LDL^T per component of size >= 2 (grounded on its last vertex);
  // index aligned with component_vertices_, nullopt for singletons.
  std::vector<std::optional<LdltFactor>> factors_;
  // Pool the factor was built on; solve() fans its per-component solves
  // out over the same pool (never null after factor()).
  common::ThreadPool* pool_ = nullptr;

  ComponentLaplacianFactor() = default;
};

}  // namespace bcclap::linalg
