// Laplacian factorization front ends over the dense and sparse LDL^T
// kernels (linalg/ldlt.h, linalg/sparse_ldlt.h).
//
// The reproduction uses these in two places:
//  - exact reference solves in tests and verification, and
//  - the "internal computation" each BCC node performs on the globally-known
//    sparsifier H (Section 3.3): once H is known to every node, solving
//    L_H y = r costs zero rounds, so a local factorization is the honest
//    model of that step.
//
// Laplacians are rank-deficient (kernel = span{1} for connected graphs), so
// `LaplacianFactor` grounds the last vertex and solves on the quotient;
// `ComponentLaplacianFactor` does the same per connected component.
//
// Backend dispatch: `factor` grounds the matrix and then picks the dense
// blocked kernel or the sparse CSC path via `sparse_path_selected`
// (sparse_ldlt.h) — large, sparse inputs (sparsified Laplacians at bench
// scale) take the sparse factorization, everything else stays on the
// dense kernel, and callers never see the difference except in `path()` /
// the RunStats counters. Both backends keep the byte-identical-at-any-
// thread-count determinism contract, and every factor exposes a multi-RHS
// `solve_many` panel path byte-identical to sequential per-column solves.
//
// Shareability contract (load-bearing for the factorization cache,
// core/factor_cache.h): a factored value is immutable — every solve is
// const and takes its execution context per call — so one factor may be
// applied concurrently from any number of Runtimes without
// synchronization, and the applying pool/thread-count never changes the
// solution bytes.
#pragma once

#include <optional>
#include <variant>

#include "common/context.h"
#include "linalg/csr_matrix.h"
#include "linalg/dense_matrix.h"
#include "linalg/ldlt.h"
#include "linalg/sparse_ldlt.h"
#include "linalg/vector_ops.h"

namespace bcclap::linalg {

// Solver for L x = b where L is the Laplacian of a *connected* graph and
// b has zero sum. Grounds the last coordinate, factors the reduced matrix,
// and returns the mean-zero representative of the solution. A 1-vertex
// graph (L = 0) is a valid edge case: the factor holds nothing and solves
// to the zero vector, matching ComponentLaplacianFactor's singleton
// handling.
class LaplacianFactor {
 public:
  static std::optional<LaplacianFactor> factor(const common::Context& ctx,
                                               const CsrMatrix& laplacian);

  // Same, with an explicit backend mode instead of the process-wide
  // factor_mode() — the engine registry's per-request "exact-dense" /
  // "exact-sparse" keys pin their backend through here.
  static std::optional<LaplacianFactor> factor(const common::Context& ctx,
                                               const CsrMatrix& laplacian,
                                               FactorMode mode);

  // Requires sum(b) ~ 0 (the solver projects b to be safe). Returns x with
  // mean zero satisfying L x = b. Throws std::invalid_argument on a
  // wrong-sized b (public solve surface; see ldlt.h).
  Vec solve(const Vec& b) const;

  // Panel solve; per-column byte-identical to solve() (see
  // LdltFactor::solve_many).
  DenseMatrix solve_many(const common::Context& ctx,
                         const DenseMatrix& b) const;

  std::size_t dim() const { return n_; }

  // Which backend factor() selected for the grounded matrix (kNone for
  // the 1-vertex case, where there is nothing to factor).
  FactorKind path() const;

  // Resident payload of the grounded factor, for the factorization
  // cache's byte-budget accounting.
  std::size_t resident_bytes() const {
    if (const auto* d = std::get_if<LdltFactor>(&reduced_))
      return d->resident_bytes();
    if (const auto* s = std::get_if<SparseLdltFactor>(&reduced_))
      return s->resident_bytes();
    return 0;
  }

  // Phase breakdown of the factorization (sparse_ldlt.h); all-zero when
  // the grounded factor ran on the dense kernel or there was nothing to
  // factor.
  SparseFactorPhases factor_phases() const {
    if (const auto* s = std::get_if<SparseLdltFactor>(&reduced_))
      return s->phases();
    return {};
  }

 private:
  using Reduced = std::variant<std::monostate, LdltFactor, SparseLdltFactor>;

  std::size_t n_ = 0;
  Reduced reduced_;

  // 1-vertex factor: reduced_ default-constructs to monostate.
  explicit LaplacianFactor(std::size_t n) : n_(n) {}
  LaplacianFactor(std::size_t n, Reduced reduced)
      : n_(n), reduced_(std::move(reduced)) {}
};

// Generalized Laplacian solver for possibly *disconnected* graphs: solves
// on range(L) by grounding one vertex per connected component and
// projecting the right-hand side per component. Needed by the Gremban
// reduction, whose virtual graph is legitimately disconnected when the SDD
// matrix has zero off-diagonals between some vertex groups.
class ComponentLaplacianFactor {
 public:
  static std::optional<ComponentLaplacianFactor> factor(
      const common::Context& ctx, const CsrMatrix& laplacian);

  // Explicit-backend variant; see LaplacianFactor::factor(ctx, l, mode).
  static std::optional<ComponentLaplacianFactor> factor(
      const common::Context& ctx, const CsrMatrix& laplacian, FactorMode mode);

  // Returns the minimum-norm-style representative: per component, the
  // solution with zero component mean for the component-projected rhs.
  // Per-component solves fan out over ctx's pool — the context is a
  // per-call argument (not captured at factor time), so the factor stays
  // valid after the Runtime it was factored on is gone.
  Vec solve(const common::Context& ctx, const Vec& b) const;

  // Panel solve: (component, column) pairs fan out over ctx's pool with
  // disjoint writes, per-column byte-identical to solve().
  DenseMatrix solve_many(const common::Context& ctx,
                         const DenseMatrix& b) const;

  std::size_t dim() const { return n_; }
  std::size_t num_components() const { return component_vertices_.size(); }

  // Backend selection tallies across components (singletons factor
  // nothing and count for neither) — the source of the RunStats
  // dense_factors / sparse_factors counters.
  std::size_t dense_factor_count() const;
  std::size_t sparse_factor_count() const;

  // Phase breakdown summed over the components that factored sparsely
  // (all-zero when every component ran dense).
  SparseFactorPhases factor_phases() const {
    SparseFactorPhases sum;
    for (const auto& f : factors_) {
      if (!f) continue;
      if (const auto* s = std::get_if<SparseLdltFactor>(&*f))
        sum += s->phases();
    }
    return sum;
  }

  // Resident payload summed over the per-component factors plus the
  // component index maps, for the factorization cache's byte accounting.
  std::size_t resident_bytes() const {
    std::size_t bytes = component_of_.size() * sizeof(std::size_t);
    for (const auto& vs : component_vertices_)
      bytes += vs.size() * sizeof(std::size_t);
    for (const auto& f : factors_) {
      if (!f) continue;
      if (const auto* d = std::get_if<LdltFactor>(&*f))
        bytes += d->resident_bytes();
      else if (const auto* s = std::get_if<SparseLdltFactor>(&*f))
        bytes += s->resident_bytes();
    }
    return bytes;
  }

 private:
  using Grounded = std::variant<LdltFactor, SparseLdltFactor>;

  std::size_t n_ = 0;
  std::vector<std::size_t> component_of_;
  std::vector<std::vector<std::size_t>> component_vertices_;
  // One grounded factor per component of size >= 2 (grounded on its last
  // vertex); index aligned with component_vertices_, nullopt for
  // singletons.
  std::vector<std::optional<Grounded>> factors_;

  ComponentLaplacianFactor() = default;
};

}  // namespace bcclap::linalg
