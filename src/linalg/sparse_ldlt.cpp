#include "linalg/sparse_ldlt.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "linalg/amd.h"

namespace bcclap::linalg {

namespace {

constexpr std::size_t kNoneIdx = static_cast<std::size_t>(-1);

using Clock = std::chrono::steady_clock;

double seconds_since(const Clock::time_point& start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

FactorMode env_factor_mode() {
  // Recognition and the warn-once-on-misspelling policy live in
  // common::env::keyword; parse_factor_mode stays exported for callers
  // that parse explicit strings (tested in test_sparse_factor.cpp).
  const auto value = common::env::keyword(
      "BCCLAP_FACTOR_PATH", {"dense", "sparse", "auto"},
      "falling back to auto");
  if (!value) return FactorMode::kAuto;
  bool recognized = true;
  return parse_factor_mode(value->c_str(), &recognized);
}

std::atomic<FactorMode>& mode_atomic() {
  static std::atomic<FactorMode> mode{env_factor_mode()};
  return mode;
}

// Permuted upper triangle P A P^T in CSC. Contract: entries within a
// column come out in input order — unordered, and duplicates are kept —
// so every consumer must accumulate additively (or flag-guard pattern
// walks) and may only rely on the row range, rows <= column, which the
// max() below guarantees by construction.
void build_permuted_upper(const CscSymmetricMatrix& a,
                          const std::vector<std::size_t>& iperm,
                          std::vector<std::size_t>& pcp,
                          std::vector<std::size_t>& pri,
                          std::vector<double>* pv) {
  const std::size_t n = a.dim();
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_index();
  const auto& av = a.values();
  pcp.assign(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = cp[j]; k < cp[j + 1]; ++k)
      ++pcp[std::max(iperm[ri[k]], iperm[j]) + 1];
  }
  for (std::size_t j = 0; j < n; ++j) pcp[j + 1] += pcp[j];
  pri.assign(pcp[n], 0);
  if (pv != nullptr) pv->assign(pcp[n], 0.0);
  std::vector<std::size_t> fill(pcp.begin(), pcp.end() - 1);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = cp[j]; k < cp[j + 1]; ++k) {
      std::size_t r = iperm[ri[k]];
      std::size_t c = iperm[j];
      if (r > c) std::swap(r, c);
      pri[fill[c]] = r;
      if (pv != nullptr) (*pv)[fill[c]] = av[k];
      ++fill[c];
    }
  }
}

// Elimination forest over the sparse prefix [0, t) by the union-find
// ancestor walk; parent[i] >= t (or kNoneIdx) marks a root whose
// remaining coupling lives entirely in the dense tail.
std::vector<std::size_t> truncated_etree(const std::vector<std::size_t>& pcp,
                                         const std::vector<std::size_t>& pri,
                                         std::size_t n, std::size_t t) {
  std::vector<std::size_t> parent(t, kNoneIdx);
  std::vector<std::size_t> anc(t, kNoneIdx);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t p = pcp[k]; p < pcp[k + 1]; ++p) {
      std::size_t i = pri[p];
      while (i < t && i < k) {
        const std::size_t next = anc[i];
        anc[i] = k;
        if (next == kNoneIdx) {
          parent[i] = k;
          break;
        }
        i = next;
      }
    }
  }
  return parent;
}

// Postorder of the elimination forest over [0, t); roots and children are
// visited in ascending order, so the result is a pure function of the
// forest (determinism anchor).
std::vector<std::size_t> postorder_forest(
    const std::vector<std::size_t>& parent, std::size_t t) {
  std::vector<std::size_t> head(t, kNoneIdx);
  std::vector<std::size_t> sibling(t, kNoneIdx);
  for (std::size_t j = t; j-- > 0;) {
    if (parent[j] == kNoneIdx || parent[j] >= t) continue;
    sibling[j] = head[parent[j]];
    head[parent[j]] = j;
  }
  std::vector<std::size_t> post;
  post.reserve(t);
  std::vector<std::size_t> stack;
  for (std::size_t r = 0; r < t; ++r) {
    if (parent[r] != kNoneIdx && parent[r] < t) continue;
    stack.push_back(r);
    while (!stack.empty()) {
      const std::size_t j = stack.back();
      const std::size_t c = head[j];
      if (c != kNoneIdx) {
        head[j] = sibling[c];
        stack.push_back(c);
      } else {
        post.push_back(j);
        stack.pop_back();
      }
    }
  }
  return post;
}

}  // namespace

FactorMode factor_mode() {
  return mode_atomic().load(std::memory_order_relaxed);
}

void set_factor_mode(FactorMode mode) {
  mode_atomic().store(mode, std::memory_order_relaxed);
}

FactorMode parse_factor_mode(const char* value, bool* recognized) {
  if (recognized != nullptr) *recognized = true;
  if (value == nullptr) return FactorMode::kAuto;
  const std::string s(value);
  if (s == "dense") return FactorMode::kForceDense;
  if (s == "sparse") return FactorMode::kForceSparse;
  if (s == "auto") return FactorMode::kAuto;
  if (recognized != nullptr) *recognized = false;
  return FactorMode::kAuto;
}

bool sparse_path_selected(std::size_t dim, std::size_t nnz) {
  return sparse_path_selected(dim, nnz, factor_mode());
}

bool sparse_path_selected(std::size_t dim, std::size_t nnz, FactorMode mode) {
  switch (mode) {
    case FactorMode::kForceDense:
      return false;
    case FactorMode::kForceSparse:
      return true;
    case FactorMode::kAuto:
      break;
  }
  if (dim < kSparseMinDim) return false;
  const double density = static_cast<double>(nnz) /
                         (static_cast<double>(dim) * static_cast<double>(dim));
  return density <= kSparseMaxDensity;
}

std::optional<SparseLdltFactor> SparseLdltFactor::factor(
    const common::Context& ctx, const CscSymmetricMatrix& a,
    double pivot_tol) {
  const std::size_t n = a.dim();
  double diag_scale = 0.0;
  for (double v : a.diagonal()) diag_scale = std::max(diag_scale, std::abs(v));
  // Same degenerate-input contract as the dense kernel (linalg/ldlt.h).
  if (n == 0 || diag_scale == 0.0) return std::nullopt;
  const double threshold = pivot_tol * diag_scale;

  SparseLdltFactor f;
  f.n_ = n;
  const auto ordering_start = Clock::now();
  Ordering ord = amd_order(a);
  f.phases_.ordering_seconds = seconds_since(ordering_start);

  const auto symbolic_start = Clock::now();
  const std::size_t t = ord.t;
  const std::size_t tail = n - t;
  f.t_ = t;

  // Postorder the AMD order along its own elimination forest: an
  // etree-respecting permutation of the sparse prefix leaves the fill
  // (and the tail split) invariant, but makes fundamental supernodes —
  // chains of columns whose patterns nest exactly — contiguous, which
  // the blocked numeric phase and the solves below rely on.
  {
    std::vector<std::size_t> iperm0(n);
    for (std::size_t k = 0; k < n; ++k) iperm0[ord.perm[k]] = k;
    std::vector<std::size_t> pcp0;
    std::vector<std::size_t> pri0;
    build_permuted_upper(a, iperm0, pcp0, pri0, nullptr);
    const std::vector<std::size_t> parent0 = truncated_etree(pcp0, pri0, n, t);
    const std::vector<std::size_t> post = postorder_forest(parent0, t);
    std::vector<std::size_t> reordered(t);
    for (std::size_t k = 0; k < t; ++k) reordered[k] = ord.perm[post[k]];
    std::copy(reordered.begin(), reordered.end(), ord.perm.begin());
  }
  f.perm_ = std::move(ord.perm);
  f.iperm_.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) f.iperm_[f.perm_[k]] = k;

  std::vector<std::size_t> pcp;
  std::vector<std::size_t> pri;
  std::vector<double> pv;
  build_permuted_upper(a, f.iperm_, pcp, pri, &pv);

  // Symbolic analysis: elimination tree (parent[i] = first later row
  // whose L pattern reaches column i) and exact fill counts, by the
  // standard row-subtree traversal. Walks truncate at the first node >= t
  // — etree parents strictly increase, so every ancestor past that node
  // is also >= t, i.e. a tail column whose coupling lives entirely in the
  // dense Schur complement; the truncation loses nothing. tcnt[i] counts
  // the tail rows that reach column i — the column's L21 pattern size,
  // which the supernode criterion below needs alongside lcnt.
  std::vector<std::size_t> parent(t, kNoneIdx);
  std::vector<std::size_t> flag(n, kNoneIdx);
  std::vector<std::size_t> lcnt(t, 0);       // strictly-lower nnz of L11 col
  std::vector<std::size_t> tcnt(t, 0);       // tail rows reaching the col
  std::vector<std::size_t> l21cnt(tail, 0);  // nnz of L21 row
  for (std::size_t k = 0; k < n; ++k) {
    flag[k] = k;
    for (std::size_t p = pcp[k]; p < pcp[k + 1]; ++p) {
      std::size_t i = pri[p];
      if (i >= k || i >= t) continue;  // diagonal, or tail-tail block
      while (flag[i] != k) {
        if (parent[i] == kNoneIdx) parent[i] = k;
        flag[i] = k;
        if (k < t) {
          ++lcnt[i];
        } else {
          ++l21cnt[k - t];
          ++tcnt[i];
        }
        if (parent[i] >= t) break;  // truncated: rest of the path is tail
        i = parent[i];
      }
    }
  }

  // Fundamental supernodes: columns j-1, j share a panel iff j is j-1's
  // etree parent and the patterns nest exactly. parent[j-1] == j already
  // forces pattern(j-1) \ {j} ⊆ pattern(j) — every row subtree that
  // walks through j-1 continues into its parent — so matching counts
  // (lcnt off by exactly the in-panel row j, tail counts equal) upgrade
  // both subset relations to equality. Postorder made such chains
  // consecutive, so this linear scan finds every fundamental supernode.
  f.sn_ptr_.clear();
  f.sn_ptr_.push_back(0);
  for (std::size_t j = 1; j < t; ++j) {
    if (parent[j - 1] != j || lcnt[j - 1] != lcnt[j] + 1 ||
        tcnt[j - 1] != tcnt[j]) {
      f.sn_ptr_.push_back(j);
    }
  }
  if (t > 0) f.sn_ptr_.push_back(t);
  f.phases_.supernodes = f.supernode_count();

  f.l_colp_.assign(t + 1, 0);
  for (std::size_t j = 0; j < t; ++j) f.l_colp_[j + 1] = f.l_colp_[j] + lcnt[j];
  f.l_rows_.resize(f.l_colp_[t]);
  f.l_vals_.resize(f.l_colp_[t]);
  f.d_.assign(t, 0.0);
  f.l21_rowp_.assign(tail + 1, 0);
  for (std::size_t i = 0; i < tail; ++i)
    f.l21_rowp_[i + 1] = f.l21_rowp_[i] + l21cnt[i];
  f.l21_cols_.resize(f.l21_rowp_[tail]);
  f.l21_vals_.resize(f.l21_rowp_[tail]);
  f.phases_.symbolic_seconds = seconds_since(symbolic_start);

  // Numeric phase: up-looking row-by-row sparse triangular solves
  // (Davis's LDL algorithm). Row k < t solves
  //   L11(0:k, 0:k) D1 l^T = a(0:k, k)
  // over its fill pattern and appends itself to the touched columns; row
  // k >= t runs the same solve restricted to columns < t, yielding its
  // L21 row. The pattern stack replays the symbolic traversal, so the
  // reserved column slots fill exactly.
  const auto numeric_start = Clock::now();
  std::vector<std::size_t> lnz(t, 0);
  std::vector<std::size_t> pat(t);
  Vec y(t, 0.0);
  std::fill(flag.begin(), flag.end(), kNoneIdx);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t top = t;
    double dk = 0.0;
    flag[k] = k;
    for (std::size_t p = pcp[k]; p < pcp[k + 1]; ++p) {
      std::size_t i = pri[p];
      if (k < t) {
        if (i == k) {
          dk += pv[p];
          continue;
        }
      } else if (i >= t) {
        continue;  // A22 entry: assembled into the Schur complement below
      }
      y[i] += pv[p];
      std::size_t len = 0;
      while (flag[i] != k) {
        pat[len++] = i;
        flag[i] = k;
        if (parent[i] >= t) break;
        i = parent[i];
      }
      // Reverse the path onto the stack: [top, t) ends up topologically
      // ordered (children before ancestors), the order the solve needs.
      while (len > 0) pat[--top] = pat[--len];
    }
    if (k < t) {
      for (std::size_t p = top; p < t; ++p) {
        const std::size_t i = pat[p];
        const double yi = y[i];
        y[i] = 0.0;
        const std::size_t q2 = f.l_colp_[i] + lnz[i];
        for (std::size_t q = f.l_colp_[i]; q < q2; ++q)
          y[f.l_rows_[q]] -= f.l_vals_[q] * yi;
        const double lki = yi / f.d_[i];
        dk -= lki * yi;
        f.l_rows_[q2] = k;
        f.l_vals_[q2] = lki;
        ++lnz[i];
      }
      if (dk <= threshold) return std::nullopt;
      f.d_[k] = dk;
    } else {
      std::size_t out = f.l21_rowp_[k - t];
      for (std::size_t p = top; p < t; ++p) {
        const std::size_t i = pat[p];
        const double yi = y[i];
        y[i] = 0.0;
        const std::size_t q2 = f.l_colp_[i] + lnz[i];
        for (std::size_t q = f.l_colp_[i]; q < q2; ++q)
          y[f.l_rows_[q]] -= f.l_vals_[q] * yi;
        f.l21_cols_[out] = i;
        f.l21_vals_[out] = yi / f.d_[i];
        ++out;
      }
      // Internal invariant, thrown instead of asserted: in a Release
      // build a divergence here would otherwise corrupt the neighbouring
      // L21 row silently (see ldlt.h on the public-surface convention).
      if (out != f.l21_rowp_[k - t + 1]) {
        throw std::runtime_error(
            "SparseLdltFactor: numeric L21 fill diverged from the symbolic "
            "count");
      }
    }
  }

  if (tail > 0) {
    // Schur complement S = A22 - L21 D1 L21^T, assembled into the lower
    // triangle (all the dense kernel reads).
    DenseMatrix s(tail, tail);
    for (std::size_t k = t; k < n; ++k) {
      for (std::size_t p = pcp[k]; p < pcp[k + 1]; ++p)
        if (pri[p] >= t) s(k - t, pri[p] - t) += pv[p];
    }
    // Column-major copy of L21 (rows ascending: the fill loop scans rows
    // in order). Within a supernode the columns carry one shared row
    // set, so the slice for columns [j0, j1) is a dense r x w panel.
    std::vector<std::size_t> ccolp(t + 1, 0);
    for (std::size_t q = 0; q < f.l21_cols_.size(); ++q)
      ++ccolp[f.l21_cols_[q] + 1];
    for (std::size_t j = 0; j < t; ++j) ccolp[j + 1] += ccolp[j];
    std::vector<std::size_t> crows(f.l21_cols_.size());
    std::vector<double> cvals(f.l21_cols_.size());
    {
      std::vector<std::size_t> fill(ccolp.begin(), ccolp.end() - 1);
      for (std::size_t i = 0; i < tail; ++i) {
        for (std::size_t p = f.l21_rowp_[i]; p < f.l21_rowp_[i + 1]; ++p) {
          const std::size_t j = f.l21_cols_[p];
          crows[fill[j]] = i;
          cvals[fill[j]] = f.l21_vals_[p];
          ++fill[j];
        }
      }
    }
    const std::size_t nsn = f.supernode_count();
    // The blocked kernels below stand on the symbolic guarantee that a
    // panel's columns agree on the row pattern; a violation would read
    // rows against the wrong columns, so it is checked outright.
    for (std::size_t si = 0; si < nsn; ++si) {
      const std::size_t j0 = f.sn_ptr_[si];
      const std::size_t r = ccolp[j0 + 1] - ccolp[j0];
      for (std::size_t j = j0 + 1; j < f.sn_ptr_[si + 1]; ++j) {
        if (ccolp[j + 1] - ccolp[j] != r) {
          throw std::runtime_error(
              "SparseLdltFactor: supernode columns disagree on the L21 row "
              "pattern");
        }
      }
    }
    // Row-major mirror of each panel plus a D-scaled copy: the rank-w
    // subtraction then reads contiguous length-w rows instead of
    // scattering column by column. Disjoint per-panel writes, pure copy:
    // byte-deterministic at any worker count.
    std::vector<double> pnl(cvals.size());
    std::vector<double> pnld(cvals.size());
    ctx.parallel_for(0, nsn, [&](std::size_t si) {
      const std::size_t j0 = f.sn_ptr_[si];
      const std::size_t j1 = f.sn_ptr_[si + 1];
      const std::size_t w = j1 - j0;
      const std::size_t base = ccolp[j0];
      const std::size_t r = (ccolp[j1] - base) / w;
      for (std::size_t k = 0; k < w; ++k) {
        const double dj = f.d_[j0 + k];
        const std::size_t cb = ccolp[j0 + k];
        for (std::size_t ia = 0; ia < r; ++ia) {
          const double v = cvals[cb + ia];
          pnl[base + ia * w + k] = v;
          pnld[base + ia * w + k] = v * dj;
        }
      }
    });
    // The subtraction fans out over fixed 64-row bands of S: each band
    // scans every panel in order and owns its rows outright, so the
    // floating-point grouping never depends on the worker count. Each
    // (row, row') pair within a panel's shared row set takes one fused
    // rank-w dot product — the supernode-blocked replacement for the old
    // per-column scatter.
    constexpr std::size_t kBand = 64;
    const std::size_t nbands = (tail + kBand - 1) / kBand;
    ctx.parallel_for(0, nbands, [&](std::size_t band) {
      const std::size_t blo = band * kBand;
      const std::size_t bhi = std::min(tail, blo + kBand);
      for (std::size_t si = 0; si < nsn; ++si) {
        const std::size_t j0 = f.sn_ptr_[si];
        const std::size_t j1 = f.sn_ptr_[si + 1];
        const std::size_t w = j1 - j0;
        const std::size_t base = ccolp[j0];
        const std::size_t r = (ccolp[j1] - base) / w;
        if (r == 0) continue;
        const std::size_t* rows = crows.data() + base;
        const std::size_t start = static_cast<std::size_t>(
            std::lower_bound(rows, rows + r, blo) - rows);
        for (std::size_t ia = start; ia < r && rows[ia] < bhi; ++ia) {
          double* srow = s.row_data(rows[ia]);
          const double* arow = pnl.data() + base + ia * w;
          for (std::size_t ib = 0; ib <= ia; ++ib) {
            const double* brow = pnld.data() + base + ib * w;
            double acc = 0.0;
            for (std::size_t k = 0; k < w; ++k) acc += arow[k] * brow[k];
            srow[rows[ib]] -= acc;
          }
        }
      }
    });
    auto tf = LdltFactor::factor(ctx, s, pivot_tol);
    if (!tf) return std::nullopt;
    f.tail_ = std::move(*tf);
  }
  f.phases_.numeric_seconds = seconds_since(numeric_start);
  f.phases_.fill_nnz = f.fill_nnz();
  return f;
}

void SparseLdltFactor::solve_in_place(Vec& y) const {
  const std::size_t t = t_;
  const std::size_t tail = n_ - t;
  const std::size_t nsn = supernode_count();
  // Forward: supernode panels in ascending order — the in-panel triangle
  // column by column (a panel column's leading entries are exactly the
  // later panel columns), then one pass over the panel's shared below
  // rows with a fused length-w dot per row.
  for (std::size_t s = 0; s < nsn; ++s) {
    const std::size_t j0 = sn_ptr_[s];
    const std::size_t j1 = sn_ptr_[s + 1];
    const std::size_t w = j1 - j0;
    for (std::size_t j = j0; j < j1; ++j) {
      const double yj = y[j];
      const std::size_t cb = l_colp_[j];
      const std::size_t tri = j1 - 1 - j;
      for (std::size_t q = 0; q < tri; ++q)
        y[l_rows_[cb + q]] -= l_vals_[cb + q] * yj;
    }
    const std::size_t cb0 = l_colp_[j0];
    const std::size_t lead0 = j1 - 1 - j0;
    const std::size_t shared = (l_colp_[j0 + 1] - cb0) - lead0;
    for (std::size_t q = 0; q < shared; ++q) {
      const std::size_t row = l_rows_[cb0 + lead0 + q];
      double acc = 0.0;
      for (std::size_t k = 0; k < w; ++k) {
        const std::size_t j = j0 + k;
        acc += l_vals_[l_colp_[j] + (j1 - 1 - j) + q] * y[j];
      }
      y[row] -= acc;
    }
  }
  // The L21 rows couple the solved head into the tail equations, then the
  // dense tail runs its own forward / diagonal / backward passes.
  for (std::size_t i = 0; i < tail; ++i) {
    double v = y[t + i];
    for (std::size_t p = l21_rowp_[i]; p < l21_rowp_[i + 1]; ++p)
      v -= l21_vals_[p] * y[l21_cols_[p]];
    y[t + i] = v;
  }
  for (std::size_t j = 0; j < t; ++j) y[j] /= d_[j];
  if (tail_) {
    Vec z(y.begin() + static_cast<std::ptrdiff_t>(t), y.end());
    tail_->forward_solve_in_place(z);
    tail_->diag_solve_in_place(z);
    tail_->backward_solve_in_place(z);
    std::copy(z.begin(), z.end(), y.begin() + static_cast<std::ptrdiff_t>(t));
  }
  // Backward: the solved tail feeds back through L21^T, then the panels
  // run in descending order — each gathers its columns' shared-row dots
  // first (those rows are beyond the panel, so they are final), then
  // resolves the in-panel triangle descending.
  for (std::size_t i = 0; i < tail; ++i) {
    const double xi = y[t + i];
    for (std::size_t p = l21_rowp_[i]; p < l21_rowp_[i + 1]; ++p)
      y[l21_cols_[p]] -= l21_vals_[p] * xi;
  }
  for (std::size_t s = nsn; s-- > 0;) {
    const std::size_t j0 = sn_ptr_[s];
    const std::size_t j1 = sn_ptr_[s + 1];
    const std::size_t cb0 = l_colp_[j0];
    const std::size_t lead0 = j1 - 1 - j0;
    const std::size_t shared = (l_colp_[j0 + 1] - cb0) - lead0;
    // Fixed-width column chunks bound the accumulator buffer; the chunk
    // grouping is a constant of the layout, never of the thread count.
    constexpr std::size_t kChunk = 32;
    double acc[kChunk];
    for (std::size_t c0 = j0; c0 < j1; c0 += kChunk) {
      const std::size_t m = std::min(j1, c0 + kChunk) - c0;
      for (std::size_t k = 0; k < m; ++k) acc[k] = 0.0;
      for (std::size_t q = 0; q < shared; ++q) {
        const double xr = y[l_rows_[cb0 + lead0 + q]];
        for (std::size_t k = 0; k < m; ++k) {
          const std::size_t j = c0 + k;
          acc[k] += l_vals_[l_colp_[j] + (j1 - 1 - j) + q] * xr;
        }
      }
      for (std::size_t k = 0; k < m; ++k) y[c0 + k] -= acc[k];
    }
    for (std::size_t j = j1; j-- > j0;) {
      double v = y[j];
      const std::size_t cb = l_colp_[j];
      const std::size_t tri = j1 - 1 - j;
      for (std::size_t q = 0; q < tri; ++q)
        v -= l_vals_[cb + q] * y[l_rows_[cb + q]];
      y[j] = v;
    }
  }
}

Vec SparseLdltFactor::solve(const Vec& b) const {
  if (b.size() != n_) {
    throw std::invalid_argument(
        "SparseLdltFactor::solve: right-hand side has " +
        std::to_string(b.size()) + " rows, factor expects " +
        std::to_string(n_));
  }
  Vec y(n_);
  for (std::size_t k = 0; k < n_; ++k) y[k] = b[perm_[k]];
  solve_in_place(y);
  Vec x(n_);
  for (std::size_t k = 0; k < n_; ++k) x[perm_[k]] = y[k];
  return x;
}

DenseMatrix SparseLdltFactor::solve_many(const common::Context& ctx,
                                         const DenseMatrix& b) const {
  if (b.rows() != n_) {
    throw std::invalid_argument(
        "SparseLdltFactor::solve_many: right-hand side has " +
        std::to_string(b.rows()) + " rows, factor expects " +
        std::to_string(n_));
  }
  DenseMatrix x(n_, b.cols());
  // Disjoint column writes: byte-identical to sequential solve() calls.
  ctx.parallel_for(0, b.cols(), [&](std::size_t j) {
    Vec col = b.column(j);
    Vec y(n_);
    for (std::size_t k = 0; k < n_; ++k) y[k] = col[perm_[k]];
    solve_in_place(y);
    for (std::size_t k = 0; k < n_; ++k) col[perm_[k]] = y[k];
    x.set_column(j, col);
  });
  return x;
}

}  // namespace bcclap::linalg
