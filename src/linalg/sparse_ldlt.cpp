#include "linalg/sparse_ldlt.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"

namespace bcclap::linalg {

namespace {

constexpr std::size_t kNoneIdx = static_cast<std::size_t>(-1);

// Tail cutoff of the ordering: below this many remaining vertices the
// blocked dense kernel wins outright, so they are deferred wholesale.
constexpr std::size_t kMinTailDim = 64;

FactorMode env_factor_mode() {
  // Recognition and the warn-once-on-misspelling policy live in
  // common::env::keyword; parse_factor_mode stays exported for callers
  // that parse explicit strings (tested in test_sparse_factor.cpp).
  const auto value = common::env::keyword(
      "BCCLAP_FACTOR_PATH", {"dense", "sparse", "auto"},
      "falling back to auto");
  if (!value) return FactorMode::kAuto;
  bool recognized = true;
  return parse_factor_mode(value->c_str(), &recognized);
}

std::atomic<FactorMode>& mode_atomic() {
  static std::atomic<FactorMode> mode{env_factor_mode()};
  return mode;
}

struct Ordering {
  std::vector<std::size_t> perm;  // new index -> original index
  std::size_t t = 0;              // sparse prefix length
};

// Minimum-degree ordering on the elimination graph, with a dense-tail
// cutoff: elimination stops once the minimum degree reaches half the
// remaining vertices (the eliminated cliques have fused into an
// effectively dense block — further sparse steps would produce O(r^2)
// fill each) or once few vertices remain. Ties break on the smallest
// vertex id, so the ordering is a pure function of the pattern.
Ordering min_degree_order(const CscSymmetricMatrix& a) {
  const std::size_t n = a.dim();
  std::vector<std::vector<std::size_t>> adj(n);
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_index();
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = cp[j]; k < cp[j + 1]; ++k) {
      const std::size_t i = ri[k];
      if (i == j) continue;
      adj[i].push_back(j);
      adj[j].push_back(i);
    }
  }
  for (auto& list : adj) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
  }
  std::set<std::pair<std::size_t, std::size_t>> pq;  // (degree, vertex)
  for (std::size_t v = 0; v < n; ++v) pq.insert({adj[v].size(), v});
  std::vector<char> eliminated(n, 0);
  Ordering ord;
  ord.perm.reserve(n);
  std::size_t remaining = n;
  std::vector<std::size_t> merged;
  while (remaining > kMinTailDim) {
    const std::size_t deg = pq.begin()->first;
    const std::size_t v = pq.begin()->second;
    if (2 * deg >= remaining) break;
    pq.erase(pq.begin());
    eliminated[v] = 1;
    ord.perm.push_back(v);
    --remaining;
    // Eliminating v fuses its neighbourhood into a clique: every
    // neighbour u drops v and unions in the other neighbours.
    const std::vector<std::size_t> nb = std::move(adj[v]);
    adj[v] = {};
    for (std::size_t u : nb) {
      std::vector<std::size_t>& au = adj[u];
      merged.clear();
      merged.reserve(au.size() + nb.size());
      std::size_t x = 0;
      std::size_t y = 0;
      while (x < au.size() && y < nb.size()) {
        if (au[x] == v) {
          ++x;
        } else if (nb[y] == u) {
          ++y;
        } else if (au[x] < nb[y]) {
          merged.push_back(au[x++]);
        } else if (nb[y] < au[x]) {
          merged.push_back(nb[y++]);
        } else {
          merged.push_back(au[x]);
          ++x;
          ++y;
        }
      }
      for (; x < au.size(); ++x)
        if (au[x] != v) merged.push_back(au[x]);
      for (; y < nb.size(); ++y)
        if (nb[y] != u) merged.push_back(nb[y]);
      pq.erase({au.size(), u});
      au = merged;
      pq.insert({au.size(), u});
    }
  }
  ord.t = ord.perm.size();
  // Tail vertices in ascending original id — deterministic, and keeps
  // the permuted tail block in a stable layout for the dense kernel.
  for (std::size_t v = 0; v < n; ++v)
    if (eliminated[v] == 0) ord.perm.push_back(v);
  return ord;
}

}  // namespace

FactorMode factor_mode() {
  return mode_atomic().load(std::memory_order_relaxed);
}

void set_factor_mode(FactorMode mode) {
  mode_atomic().store(mode, std::memory_order_relaxed);
}

FactorMode parse_factor_mode(const char* value, bool* recognized) {
  if (recognized != nullptr) *recognized = true;
  if (value == nullptr) return FactorMode::kAuto;
  const std::string s(value);
  if (s == "dense") return FactorMode::kForceDense;
  if (s == "sparse") return FactorMode::kForceSparse;
  if (s == "auto") return FactorMode::kAuto;
  if (recognized != nullptr) *recognized = false;
  return FactorMode::kAuto;
}

bool sparse_path_selected(std::size_t dim, std::size_t nnz) {
  return sparse_path_selected(dim, nnz, factor_mode());
}

bool sparse_path_selected(std::size_t dim, std::size_t nnz, FactorMode mode) {
  switch (mode) {
    case FactorMode::kForceDense:
      return false;
    case FactorMode::kForceSparse:
      return true;
    case FactorMode::kAuto:
      break;
  }
  if (dim < kSparseMinDim) return false;
  const double density = static_cast<double>(nnz) /
                         (static_cast<double>(dim) * static_cast<double>(dim));
  return density <= kSparseMaxDensity;
}

std::optional<SparseLdltFactor> SparseLdltFactor::factor(
    const common::Context& ctx, const CscSymmetricMatrix& a,
    double pivot_tol) {
  const std::size_t n = a.dim();
  double diag_scale = 0.0;
  for (double v : a.diagonal()) diag_scale = std::max(diag_scale, std::abs(v));
  // Same degenerate-input contract as the dense kernel (linalg/ldlt.h).
  if (n == 0 || diag_scale == 0.0) return std::nullopt;
  const double threshold = pivot_tol * diag_scale;

  SparseLdltFactor f;
  f.n_ = n;
  Ordering ord = min_degree_order(a);
  f.t_ = ord.t;
  f.perm_ = std::move(ord.perm);
  f.iperm_.assign(n, 0);
  for (std::size_t k = 0; k < n; ++k) f.iperm_[f.perm_[k]] = k;
  const std::size_t t = f.t_;
  const std::size_t tail = n - t;

  // Permuted upper triangle P A P^T in CSC (entries unordered within a
  // column; duplicates kept — every consumer below is additive).
  const auto& cp = a.col_ptr();
  const auto& ri = a.row_index();
  const auto& av = a.values();
  std::vector<std::size_t> pcp(n + 1, 0);
  for (std::size_t j = 0; j < n; ++j) {
    for (std::size_t k = cp[j]; k < cp[j + 1]; ++k)
      ++pcp[std::max(f.iperm_[ri[k]], f.iperm_[j]) + 1];
  }
  for (std::size_t j = 0; j < n; ++j) pcp[j + 1] += pcp[j];
  std::vector<std::size_t> pri(pcp[n]);
  std::vector<double> pv(pcp[n]);
  {
    std::vector<std::size_t> fill(pcp.begin(), pcp.end() - 1);
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t k = cp[j]; k < cp[j + 1]; ++k) {
        std::size_t r = f.iperm_[ri[k]];
        std::size_t c = f.iperm_[j];
        if (r > c) std::swap(r, c);
        pri[fill[c]] = r;
        pv[fill[c]] = av[k];
        ++fill[c];
      }
    }
  }

  // Symbolic analysis: elimination tree (parent[i] = first later row
  // whose L pattern reaches column i) and exact fill counts, by the
  // standard row-subtree traversal. Walks truncate at the first node >= t
  // — etree parents strictly increase, so every ancestor past that node
  // is also >= t, i.e. a tail column whose coupling lives entirely in the
  // dense Schur complement; the truncation loses nothing.
  std::vector<std::size_t> parent(n, kNoneIdx);
  std::vector<std::size_t> flag(n, kNoneIdx);
  std::vector<std::size_t> lcnt(t, 0);       // strictly-lower nnz of L11 col
  std::vector<std::size_t> l21cnt(tail, 0);  // nnz of L21 row
  for (std::size_t k = 0; k < n; ++k) {
    flag[k] = k;
    for (std::size_t p = pcp[k]; p < pcp[k + 1]; ++p) {
      std::size_t i = pri[p];
      if (i >= k || i >= t) continue;  // diagonal, or tail-tail block
      while (flag[i] != k) {
        if (parent[i] == kNoneIdx) parent[i] = k;
        flag[i] = k;
        if (k < t) {
          ++lcnt[i];
        } else {
          ++l21cnt[k - t];
        }
        if (parent[i] >= t) break;  // truncated: rest of the path is tail
        i = parent[i];
      }
    }
  }

  f.l_colp_.assign(t + 1, 0);
  for (std::size_t j = 0; j < t; ++j) f.l_colp_[j + 1] = f.l_colp_[j] + lcnt[j];
  f.l_rows_.resize(f.l_colp_[t]);
  f.l_vals_.resize(f.l_colp_[t]);
  f.d_.assign(t, 0.0);
  f.l21_rowp_.assign(tail + 1, 0);
  for (std::size_t i = 0; i < tail; ++i)
    f.l21_rowp_[i + 1] = f.l21_rowp_[i] + l21cnt[i];
  f.l21_cols_.resize(f.l21_rowp_[tail]);
  f.l21_vals_.resize(f.l21_rowp_[tail]);

  // Numeric phase: up-looking row-by-row sparse triangular solves
  // (Davis's LDL algorithm). Row k < t solves
  //   L11(0:k, 0:k) D1 l^T = a(0:k, k)
  // over its fill pattern and appends itself to the touched columns; row
  // k >= t runs the same solve restricted to columns < t, yielding its
  // L21 row. The pattern stack replays the symbolic traversal, so the
  // reserved column slots fill exactly.
  std::vector<std::size_t> lnz(t, 0);
  std::vector<std::size_t> pat(t);
  Vec y(t, 0.0);
  std::fill(flag.begin(), flag.end(), kNoneIdx);
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t top = t;
    double dk = 0.0;
    flag[k] = k;
    for (std::size_t p = pcp[k]; p < pcp[k + 1]; ++p) {
      std::size_t i = pri[p];
      if (k < t) {
        if (i == k) {
          dk += pv[p];
          continue;
        }
      } else if (i >= t) {
        continue;  // A22 entry: assembled into the Schur complement below
      }
      y[i] += pv[p];
      std::size_t len = 0;
      while (flag[i] != k) {
        pat[len++] = i;
        flag[i] = k;
        if (parent[i] >= t) break;
        i = parent[i];
      }
      // Reverse the path onto the stack: [top, t) ends up topologically
      // ordered (children before ancestors), the order the solve needs.
      while (len > 0) pat[--top] = pat[--len];
    }
    if (k < t) {
      for (std::size_t p = top; p < t; ++p) {
        const std::size_t i = pat[p];
        const double yi = y[i];
        y[i] = 0.0;
        const std::size_t q2 = f.l_colp_[i] + lnz[i];
        for (std::size_t q = f.l_colp_[i]; q < q2; ++q)
          y[f.l_rows_[q]] -= f.l_vals_[q] * yi;
        const double lki = yi / f.d_[i];
        dk -= lki * yi;
        f.l_rows_[q2] = k;
        f.l_vals_[q2] = lki;
        ++lnz[i];
      }
      if (dk <= threshold) return std::nullopt;
      f.d_[k] = dk;
    } else {
      std::size_t out = f.l21_rowp_[k - t];
      for (std::size_t p = top; p < t; ++p) {
        const std::size_t i = pat[p];
        const double yi = y[i];
        y[i] = 0.0;
        const std::size_t q2 = f.l_colp_[i] + lnz[i];
        for (std::size_t q = f.l_colp_[i]; q < q2; ++q)
          y[f.l_rows_[q]] -= f.l_vals_[q] * yi;
        f.l21_cols_[out] = i;
        f.l21_vals_[out] = yi / f.d_[i];
        ++out;
      }
      assert(out == f.l21_rowp_[k - t + 1]);
    }
  }

  if (tail > 0) {
    // Schur complement S = A22 - L21 D1 L21^T, assembled into the lower
    // triangle (all the dense kernel reads).
    DenseMatrix s(tail, tail);
    for (std::size_t k = t; k < n; ++k) {
      for (std::size_t p = pcp[k]; p < pcp[k + 1]; ++p)
        if (pri[p] >= t) s(k - t, pri[p] - t) += pv[p];
    }
    // Column-major copy of L21 (rows ascending: the fill loop scans rows
    // in order) for the outer-product sweep.
    std::vector<std::size_t> ccolp(t + 1, 0);
    for (std::size_t q = 0; q < f.l21_cols_.size(); ++q)
      ++ccolp[f.l21_cols_[q] + 1];
    for (std::size_t j = 0; j < t; ++j) ccolp[j + 1] += ccolp[j];
    std::vector<std::size_t> crows(f.l21_cols_.size());
    std::vector<double> cvals(f.l21_cols_.size());
    {
      std::vector<std::size_t> fill(ccolp.begin(), ccolp.end() - 1);
      for (std::size_t i = 0; i < tail; ++i) {
        for (std::size_t p = f.l21_rowp_[i]; p < f.l21_rowp_[i + 1]; ++p) {
          const std::size_t j = f.l21_cols_[p];
          crows[fill[j]] = i;
          cvals[fill[j]] = f.l21_vals_[p];
          ++fill[j];
        }
      }
    }
    // The subtraction fans out over fixed 64-row bands of S: each band
    // scans every column in order and owns its rows outright, so the
    // floating-point grouping never depends on the worker count.
    constexpr std::size_t kBand = 64;
    const std::size_t nbands = (tail + kBand - 1) / kBand;
    ctx.parallel_for(0, nbands, [&](std::size_t band) {
      const std::size_t blo = band * kBand;
      const std::size_t bhi = std::min(tail, blo + kBand);
      for (std::size_t j = 0; j < t; ++j) {
        const double dj = f.d_[j];
        const std::size_t cb = ccolp[j];
        const std::size_t ce = ccolp[j + 1];
        const std::size_t start = static_cast<std::size_t>(
            std::lower_bound(crows.begin() + static_cast<std::ptrdiff_t>(cb),
                             crows.begin() + static_cast<std::ptrdiff_t>(ce),
                             blo) -
            crows.begin());
        for (std::size_t pa = start; pa < ce && crows[pa] < bhi; ++pa) {
          const double va = cvals[pa] * dj;
          double* srow = s.row_data(crows[pa]);
          for (std::size_t pb = cb; pb <= pa; ++pb)
            srow[crows[pb]] -= va * cvals[pb];
        }
      }
    });
    auto tf = LdltFactor::factor(ctx, s, pivot_tol);
    if (!tf) return std::nullopt;
    f.tail_ = std::move(*tf);
  }
  return f;
}

void SparseLdltFactor::solve_in_place(Vec& y) const {
  const std::size_t t = t_;
  const std::size_t tail = n_ - t;
  // Forward: L11 column sweep (column j's value is final once the sweep
  // reaches it), then the L21 rows couple the solved head into the tail
  // equations, then the dense tail's own forward pass.
  for (std::size_t j = 0; j < t; ++j) {
    const double yj = y[j];
    for (std::size_t p = l_colp_[j]; p < l_colp_[j + 1]; ++p)
      y[l_rows_[p]] -= l_vals_[p] * yj;
  }
  for (std::size_t i = 0; i < tail; ++i) {
    double v = y[t + i];
    for (std::size_t p = l21_rowp_[i]; p < l21_rowp_[i + 1]; ++p)
      v -= l21_vals_[p] * y[l21_cols_[p]];
    y[t + i] = v;
  }
  for (std::size_t j = 0; j < t; ++j) y[j] /= d_[j];
  if (tail_) {
    Vec z(y.begin() + static_cast<std::ptrdiff_t>(t), y.end());
    tail_->forward_solve_in_place(z);
    tail_->diag_solve_in_place(z);
    tail_->backward_solve_in_place(z);
    std::copy(z.begin(), z.end(), y.begin() + static_cast<std::ptrdiff_t>(t));
  }
  // Backward: the solved tail feeds back through L21^T, then the L11^T
  // gather runs columns in descending order.
  for (std::size_t i = 0; i < tail; ++i) {
    const double xi = y[t + i];
    for (std::size_t p = l21_rowp_[i]; p < l21_rowp_[i + 1]; ++p)
      y[l21_cols_[p]] -= l21_vals_[p] * xi;
  }
  for (std::size_t j = t; j-- > 0;) {
    double v = y[j];
    for (std::size_t p = l_colp_[j]; p < l_colp_[j + 1]; ++p)
      v -= l_vals_[p] * y[l_rows_[p]];
    y[j] = v;
  }
}

Vec SparseLdltFactor::solve(const Vec& b) const {
  assert(b.size() == n_);
  Vec y(n_);
  for (std::size_t k = 0; k < n_; ++k) y[k] = b[perm_[k]];
  solve_in_place(y);
  Vec x(n_);
  for (std::size_t k = 0; k < n_; ++k) x[perm_[k]] = y[k];
  return x;
}

DenseMatrix SparseLdltFactor::solve_many(const common::Context& ctx,
                                         const DenseMatrix& b) const {
  assert(b.rows() == n_);
  DenseMatrix x(n_, b.cols());
  // Disjoint column writes: byte-identical to sequential solve() calls.
  ctx.parallel_for(0, b.cols(), [&](std::size_t j) {
    Vec col = b.column(j);
    Vec y(n_);
    for (std::size_t k = 0; k < n_; ++k) y[k] = col[perm_[k]];
    solve_in_place(y);
    for (std::size_t k = 0; k < n_; ++k) col[perm_[k]] = y[k];
    x.set_column(j, col);
  });
  return x;
}

}  // namespace bcclap::linalg
