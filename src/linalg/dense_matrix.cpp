#include "linalg/dense_matrix.h"

#include <cassert>
#include <cmath>

namespace bcclap::linalg {

// Chunk sizing comes from ctx.grain (shared with the CSR kernels): chunks
// cover >= ctx.min_work_per_chunk() multiply-adds, with boundaries that
// are a pure function of the matrix shape and the context's policy.

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vec DenseMatrix::column(std::size_t c) const {
  assert(c < cols_);
  Vec v(rows_);
  for (std::size_t r = 0; r < rows_; ++r) v[r] = data_[r * cols_ + c];
  return v;
}

void DenseMatrix::set_column(std::size_t c, const Vec& v) {
  assert(c < cols_);
  assert(v.size() == rows_);
  for (std::size_t r = 0; r < rows_; ++r) data_[r * cols_ + c] = v[r];
}

DenseMatrix DenseMatrix::from_columns(const std::vector<Vec>& cols) {
  if (cols.empty()) return DenseMatrix();
  DenseMatrix m(cols.front().size(), cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) m.set_column(c, cols[c]);
  return m;
}

Vec DenseMatrix::multiply(const common::Context& ctx, const Vec& x) const {
  assert(x.size() == cols_);
  Vec y(rows_, 0.0);
  // Each output row is an independent dot product: embarrassingly parallel
  // and bitwise deterministic at any thread count.
  ctx.parallel_for_chunks(
      0, rows_, ctx.grain(rows_, cols_),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          double s = 0.0;
          const double* row = &data_[r * cols_];
          for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
          y[r] = s;
        }
      });
  return y;
}

Vec DenseMatrix::multiply_transpose(const common::Context& ctx,
                                    const Vec& x) const {
  assert(x.size() == rows_);
  Vec y(cols_, 0.0);
  if (rows_ * cols_ < ctx.min_work_per_chunk()) {
    for (std::size_t r = 0; r < rows_; ++r) {
      const double xr = x[r];
      if (xr == 0.0) continue;
      const double* row = &data_[r * cols_];
      for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
    }
    return y;
  }
  // Deterministic chunked reduction (common::thread_pool.h): row chunks
  // accumulate into private cols-sized partials merged in chunk order. The
  // chunk count is capped so partial storage and the merge stay small
  // relative to the rows x cols multiply-adds, even for wide matrices.
  constexpr std::size_t kMaxChunks = 64;
  const std::size_t grain = std::max(
      ctx.grain(rows_, cols_), (rows_ + kMaxChunks - 1) / kMaxChunks);
  ctx.parallel_reduce_chunks(
      0, rows_, grain, Vec(cols_, 0.0),
      [&](std::size_t lo, std::size_t hi, Vec& p) {
        for (std::size_t r = lo; r < hi; ++r) {
          const double xr = x[r];
          if (xr == 0.0) continue;
          const double* row = &data_[r * cols_];
          for (std::size_t c = 0; c < cols_; ++c) p[c] += row[c] * xr;
        }
      },
      [&](Vec& p) {
        for (std::size_t c = 0; c < cols_; ++c) y[c] += p[c];
      });
  return y;
}

DenseMatrix DenseMatrix::multiply(const common::Context& ctx,
                                  const DenseMatrix& other) const {
  assert(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  // Row-parallel: output row r reads only row r of *this, writes only row r
  // of out. The k-loop order inside a row matches the sequential kernel.
  ctx.parallel_for_chunks(
      0, rows_, ctx.grain(rows_, cols_ * other.cols_),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          for (std::size_t k = 0; k < cols_; ++k) {
            const double v = (*this)(r, k);
            if (v == 0.0) continue;
            for (std::size_t c = 0; c < other.cols_; ++c) {
              out(r, c) += v * other(k, c);
            }
          }
        }
      });
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double DenseMatrix::diff_frobenius(const DenseMatrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double s = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    s += d * d;
  }
  return std::sqrt(s);
}

bool DenseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

}  // namespace bcclap::linalg
