#include "linalg/dense_matrix.h"

#include <cassert>
#include <cmath>

namespace bcclap::linalg {

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vec DenseMatrix::multiply(const Vec& x) const {
  assert(x.size() == cols_);
  Vec y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) s += row[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vec DenseMatrix::multiply_transpose(const Vec& x) const {
  assert(x.size() == rows_);
  Vec y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = &data_[r * cols_];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  assert(cols_ == other.rows_);
  DenseMatrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double v = (*this)(r, k);
      if (v == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) out(r, c) += v * other(k, c);
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double DenseMatrix::diff_frobenius(const DenseMatrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double s = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    const double d = data_[i] - other.data_[i];
    s += d * d;
  }
  return std::sqrt(s);
}

bool DenseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

}  // namespace bcclap::linalg
