#include "linalg/jl_transform.h"

#include <cassert>
#include <cmath>

#include "common/rng.h"

namespace bcclap::linalg {

KaneNelsonSketch::KaneNelsonSketch(std::size_t k, std::size_t m, std::size_t s,
                                   std::uint64_t seed)
    : k_(k), m_(m), s_(s == 0 ? 1 : s) {
  if (s_ > k_) s_ = k_;
  // Round k up so rows split evenly into s blocks.
  block_rows_ = (k_ + s_ - 1) / s_;
  k_ = block_rows_ * s_;
  target_row_.resize(s_ * m_);
  sign_.resize(s_ * m_);
  const double scale = 1.0 / std::sqrt(static_cast<double>(s_));
  rng::Stream stream(seed);
  for (std::size_t col = 0; col < m_; ++col) {
    // One independent child stream per column keeps the construction a pure
    // function of (seed, col) — any node can reconstruct any column.
    rng::Stream cs = stream.child(col);
    for (std::size_t b = 0; b < s_; ++b) {
      const std::size_t row_in_block = cs.next_below(block_rows_);
      target_row_[b * m_ + col] = b * block_rows_ + row_in_block;
      sign_[b * m_ + col] = cs.next_sign() * scale;
    }
  }
}

Vec KaneNelsonSketch::apply(const Vec& x) const {
  assert(x.size() == m_);
  Vec y(k_, 0.0);
  for (std::size_t col = 0; col < m_; ++col) {
    const double v = x[col];
    if (v == 0.0) continue;
    for (std::size_t b = 0; b < s_; ++b)
      y[target_row_[b * m_ + col]] += sign_[b * m_ + col] * v;
  }
  return y;
}

Vec KaneNelsonSketch::apply_transpose(const Vec& y) const {
  assert(y.size() == k_);
  Vec x(m_, 0.0);
  for (std::size_t col = 0; col < m_; ++col) {
    double s = 0.0;
    for (std::size_t b = 0; b < s_; ++b)
      s += sign_[b * m_ + col] * y[target_row_[b * m_ + col]];
    x[col] = s;
  }
  return x;
}

Vec KaneNelsonSketch::row(std::size_t j) const {
  assert(j < k_);
  Vec r(m_, 0.0);
  const std::size_t b = j / block_rows_;
  for (std::size_t col = 0; col < m_; ++col) {
    if (target_row_[b * m_ + col] == j) r[col] = sign_[b * m_ + col];
  }
  return r;
}

RademacherSketch::RademacherSketch(std::size_t k, std::size_t m,
                                   std::uint64_t seed)
    : k_(k), m_(m), entries_(k * m) {
  const double scale = 1.0 / std::sqrt(static_cast<double>(k_));
  rng::Stream stream(seed);
  for (double& e : entries_) e = stream.next_sign() * scale;
}

Vec RademacherSketch::apply(const Vec& x) const {
  assert(x.size() == m_);
  Vec y(k_, 0.0);
  for (std::size_t j = 0; j < k_; ++j) {
    double s = 0.0;
    const double* row = &entries_[j * m_];
    for (std::size_t col = 0; col < m_; ++col) s += row[col] * x[col];
    y[j] = s;
  }
  return y;
}

Vec RademacherSketch::apply_transpose(const Vec& y) const {
  assert(y.size() == k_);
  Vec x(m_, 0.0);
  for (std::size_t j = 0; j < k_; ++j) {
    const double v = y[j];
    if (v == 0.0) continue;
    const double* row = &entries_[j * m_];
    for (std::size_t col = 0; col < m_; ++col) x[col] += row[col] * v;
  }
  return x;
}

Vec RademacherSketch::row(std::size_t j) const {
  assert(j < k_);
  return Vec(entries_.begin() + static_cast<std::ptrdiff_t>(j * m_),
             entries_.begin() + static_cast<std::ptrdiff_t>((j + 1) * m_));
}

std::size_t jl_dimension(std::size_t m, double eta, double c_jl) {
  const double k =
      c_jl * std::log(static_cast<double>(std::max<std::size_t>(m, 2))) /
      (eta * eta);
  return static_cast<std::size_t>(std::ceil(std::max(1.0, k)));
}

}  // namespace bcclap::linalg
