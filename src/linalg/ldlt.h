// Dense LDL^T factorization of a symmetric positive definite matrix.
//
// Split out of linalg/cholesky.h so the sparse factorization
// (linalg/sparse_ldlt.h) can reuse the blocked dense kernel for its
// supernodal tail without an include cycle; cholesky.h re-exports this
// header, so historical include sites compile unchanged.
//
// `factor` is a blocked right-looking factorization: the panel solve and
// the trailing-matrix tiles fan out over the execution context's worker
// pool (common/context.h) with fixed tile boundaries, so factors are
// byte-identical at any thread count.
#pragma once

#include <optional>

#include "common/context.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace bcclap::linalg {

class LdltFactor {
 public:
  // Factors a symmetric positive definite matrix on ctx's pool (only the
  // lower triangle of `a` is read). Returns nullopt if a pivot falls
  // below `pivot_tol` relative to the largest diagonal magnitude (matrix
  // not PD to working precision). Degenerate inputs — a 0x0 matrix or an
  // all-zero diagonal — are rejected explicitly rather than left to
  // threshold underflow.
  static std::optional<LdltFactor> factor(const common::Context& ctx,
                                          const DenseMatrix& a,
                                          double pivot_tol = 1e-12);

  // Throws std::invalid_argument on a wrong-sized right-hand side: this
  // is public solve surface, and an assert-only check would turn a bad
  // size into a silent out-of-bounds read in Release builds.
  Vec solve(const Vec& b) const;

  // Multi-RHS panel solve: b is n x k, one right-hand side per column.
  // Columns fan out over ctx's pool with disjoint column writes, so the
  // result is byte-identical to k sequential solve() calls at any thread
  // count (each column runs exactly the single-vector substitution).
  DenseMatrix solve_many(const common::Context& ctx,
                         const DenseMatrix& b) const;

  std::size_t dim() const { return n_; }

  // Bytes of numeric payload this factor keeps resident (L and D) — the
  // per-entry accounting the factorization cache's LRU budget is charged
  // in. Approximate on purpose (container headers excluded).
  std::size_t resident_bytes() const {
    return (l_.rows() * l_.cols() + d_.size()) * sizeof(double);
  }

  // Split substitution stages, used by the sparse hybrid factorization
  // (sparse_ldlt.h) to interleave its dense tail with the sparse
  // forward/backward sweeps. y.size() must equal dim(); each stage is the
  // exact corresponding slice of solve()'s arithmetic (asserts only —
  // inner-layer surface).
  void forward_solve_in_place(Vec& y) const;   // L y = b
  void diag_solve_in_place(Vec& y) const;      // D z = y
  void backward_solve_in_place(Vec& y) const;  // L^T x = z

 private:
  std::size_t n_ = 0;
  DenseMatrix l_;  // unit lower triangular
  Vec d_;          // diagonal

  void solve_in_place(Vec& y) const;

  LdltFactor() = default;
};

}  // namespace bcclap::linalg
