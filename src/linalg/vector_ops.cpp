#include "linalg/vector_ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace bcclap::linalg {

Vec zeros(std::size_t n) { return Vec(n, 0.0); }
Vec ones(std::size_t n) { return Vec(n, 1.0); }
Vec constant(std::size_t n, double value) { return Vec(n, value); }

double dot(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vec& a) {
  double m = 0.0;
  for (double v : a) m = std::max(m, std::abs(v));
  return m;
}

double norm1(const Vec& a) {
  double s = 0.0;
  for (double v : a) s += std::abs(v);
  return s;
}

double norm_weighted(const Vec& x, const Vec& w) {
  assert(x.size() == w.size());
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += w[i] * x[i] * x[i];
  return std::sqrt(std::max(0.0, s));
}

Vec add(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec sub(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec scale(const Vec& a, double s) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * s;
  return out;
}

void axpy(Vec& y, double alpha, const Vec& x) {
  assert(y.size() == x.size());
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += alpha * x[i];
}

Vec cw_mul(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Vec cw_div(const Vec& a, const Vec& b) {
  assert(a.size() == b.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] / b[i];
  return out;
}

Vec cw_inv(const Vec& a) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = 1.0 / a[i];
  return out;
}

Vec cw_sqrt(const Vec& a) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::sqrt(a[i]);
  return out;
}

Vec cw_abs(const Vec& a) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::abs(a[i]);
  return out;
}

Vec cw_log(const Vec& a) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::log(a[i]);
  return out;
}

Vec cw_exp(const Vec& a) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::exp(a[i]);
  return out;
}

Vec cw_max(const Vec& a, double floor) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::max(a[i], floor);
  return out;
}

Vec cw_median(const Vec& a, const Vec& b, const Vec& c) {
  assert(a.size() == b.size() && b.size() == c.size());
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = std::max(std::min(a[i], b[i]),
                      std::min(std::max(a[i], b[i]), c[i]));
  }
  return out;
}

Vec positive_part(const Vec& a) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::max(a[i], 0.0);
  return out;
}

Vec negative_part(const Vec& a) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = std::min(a[i], 0.0);
  return out;
}

double mean(const Vec& x) {
  if (x.empty()) return 0.0;
  double s = 0.0;
  for (double v : x) s += v;
  return s / static_cast<double>(x.size());
}

void remove_mean(Vec& x) {
  const double m = mean(x);
  for (double& v : x) v -= m;
}

double max_entry(const Vec& a) {
  double m = -std::numeric_limits<double>::infinity();
  for (double v : a) m = std::max(m, v);
  return m;
}

double min_entry(const Vec& a) {
  double m = std::numeric_limits<double>::infinity();
  for (double v : a) m = std::min(m, v);
  return m;
}

}  // namespace bcclap::linalg
