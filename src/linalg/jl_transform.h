// Johnson-Lindenstrauss sketches (Section 4.1).
//
// The paper's point (Theorem 4.4, Kane-Nelson) is that the sketch matrix Q
// can be generated from O(log(1/delta) log m) shared random bits, so a BCC
// leader samples one short seed, broadcasts it, and every node reconstructs
// the same Q locally. Both constructions here are deterministic functions of
// a 64-bit seed, which models exactly that: the seed *is* the broadcast.
//
//  - KaneNelsonSketch: sparse JL (s blocks of CountSketch rows stacked),
//    the construction the paper adopts.
//  - RademacherSketch: dense Achlioptas-style +-1/sqrt(k) baseline, the
//    construction the paper rejects for BC (needs a coin per edge) but which
//    is fine in BCC once seeded; used as ablation.
#pragma once

#include <cstddef>
#include <cstdint>

#include "linalg/vector_ops.h"

namespace bcclap::linalg {

class KaneNelsonSketch {
 public:
  // k: sketch dimension, m: ambient dimension, s: column sparsity
  // (nonzeros per column; k must be divisible into s blocks, we round
  // k up to a multiple of s internally).
  KaneNelsonSketch(std::size_t k, std::size_t m, std::size_t s,
                   std::uint64_t seed);

  std::size_t sketch_dim() const { return k_; }
  std::size_t ambient_dim() const { return m_; }

  // Q x (length k) and Q^T y (length m).
  Vec apply(const Vec& x) const;
  Vec apply_transpose(const Vec& y) const;

  // Row j of Q as a dense vector (used to form Q^(j) probes, Algorithm 6).
  Vec row(std::size_t j) const;

  // Number of random bits a leader must broadcast to reproduce this sketch.
  // Models Theorem 4.4's O(log(1/delta) log m) bound.
  std::size_t seed_bits() const { return 64; }

 private:
  std::size_t k_;
  std::size_t m_;
  std::size_t s_;
  std::size_t block_rows_;
  // For column i and block b: target row and sign, derived from the seed.
  std::vector<std::size_t> target_row_;  // s_ * m_
  std::vector<double> sign_;             // s_ * m_, each +-1/sqrt(s)
};

class RademacherSketch {
 public:
  RademacherSketch(std::size_t k, std::size_t m, std::uint64_t seed);

  std::size_t sketch_dim() const { return k_; }
  std::size_t ambient_dim() const { return m_; }

  Vec apply(const Vec& x) const;
  Vec apply_transpose(const Vec& y) const;
  Vec row(std::size_t j) const;

 private:
  std::size_t k_;
  std::size_t m_;
  std::vector<double> entries_;  // k_ * m_, +-1/sqrt(k)
};

// Sketch dimension for accuracy eta and failure probability ~ m^{-c}:
// k = ceil(c_jl * log(m) / eta^2). `c_jl` is the bench-tunable constant.
std::size_t jl_dimension(std::size_t m, double eta, double c_jl = 8.0);

}  // namespace bcclap::linalg
