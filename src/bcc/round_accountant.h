// Round accounting.
//
// The only efficiency metric in the BC/BCC models is the number of rounds.
// Every layer of the reproduction charges its communication here, labelled,
// so experiments can report both totals and per-phase breakdowns (e.g. the
// preprocessing-vs-instance split of Theorem 1.3).
//
// Charging is thread-safe: the parallel superstep engine may charge from
// worker threads (per-node sub-protocol costs fan out with the compute).
// Readers (total / total_for / breakdown snapshots) take the same lock, so
// totals observed between supersteps are exact. `breakdown()` returns a
// copy for that reason.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace bcclap::bcc {

class RoundAccountant {
 public:
  void charge(const std::string& label, std::int64_t rounds);
  // Charges the rounds needed to broadcast a value of `bits` bits with the
  // given bandwidth (>= 1 round).
  void charge_broadcast_bits(const std::string& label, std::int64_t bits,
                             std::int64_t bandwidth);

  std::int64_t total() const;
  std::int64_t total_for(const std::string& label) const;
  std::map<std::string, std::int64_t> breakdown() const;

  void reset();
  // Snapshot arithmetic for measuring a sub-phase.
  std::int64_t mark() const { return total(); }
  std::int64_t since(std::int64_t mark) const { return total() - mark; }

 private:
  mutable std::mutex mu_;
  std::int64_t total_ = 0;
  std::map<std::string, std::int64_t> by_label_;
};

}  // namespace bcclap::bcc
