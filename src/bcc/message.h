// A broadcast message: a sequence of bit-sized fields.
//
// Both models bound the per-round message to B = Theta(log n) bits. We keep
// messages structured (fields with explicit widths) rather than raw bits so
// algorithm code stays readable, and let the network charge
// ceil(total_bits / B) rounds for a logical message that exceeds B — this is
// exactly how the paper accounts for the (1 + log W / log n) factors in
// Lemma 3.2.
#pragma once

#include <cstdint>
#include <vector>

namespace bcclap::bcc {

struct Field {
  std::uint64_t value;
  int bits;
};

class Message {
 public:
  Message() = default;

  Message& push(std::uint64_t value, int bits);
  // Convenience: a field holding an ID in [0, n).
  Message& push_id(std::size_t id, std::size_t n);
  // A single flag bit.
  Message& push_flag(bool flag);

  std::uint64_t field(std::size_t i) const { return fields_[i].value; }
  std::size_t num_fields() const { return fields_.size(); }
  int total_bits() const;

 private:
  std::vector<Field> fields_;
};

struct ReceivedMessage {
  std::size_t sender;
  Message message;
};

}  // namespace bcclap::bcc
