#include "bcc/message.h"

#include <cassert>

#include "common/encoding.h"

namespace bcclap::bcc {

Message& Message::push(std::uint64_t value, int bits) {
  assert(bits >= 1 && bits <= 64);
  assert(bits == 64 || value < (1ULL << bits));
  fields_.push_back({value, bits});
  return *this;
}

Message& Message::push_id(std::size_t id, std::size_t n) {
  return push(static_cast<std::uint64_t>(id), enc::id_bits(n));
}

Message& Message::push_flag(bool flag) { return push(flag ? 1 : 0, 1); }

int Message::total_bits() const {
  int bits = 0;
  for (const Field& f : fields_) bits += f.bits;
  return bits;
}

}  // namespace bcclap::bcc
