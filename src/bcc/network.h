// Bulk-synchronous simulator for the Broadcast CONGEST and Broadcast
// Congested Clique models (Section 2.1).
//
// Semantics enforced:
//  - computation proceeds in synchronous supersteps; in one superstep every
//    node submits the messages it wants to broadcast;
//  - a node broadcasting a total of `b` bits consumes ceil(b / B) rounds
//    (one B-bit broadcast per round); nodes broadcast in parallel, so the
//    superstep costs max over nodes of that quantity;
//  - broadcast constraint: a message is delivered identically to all
//    recipients — in BC mode the node's neighbours in the communication
//    graph, in BCC mode every other node;
//  - internal computation is free (the models allow unlimited local work).
//
// This bulk-synchronous formulation is round-exact for the algorithms in
// the paper: they are described in phases where each vertex broadcasts a
// bounded number of messages per phase, which is precisely the max-over-
// nodes cost the simulator charges.
//
// Execution is thread-parallel: per-node outbox computation
// (run_superstep), round costing, and per-recipient inbox assembly all fan
// out across the workers of the network's execution context
// (common/context.h — the view of the bcclap::Runtime the network was
// built under; the deprecated context-less constructors fall back to the
// process-default Runtime). Delivery stays deterministic — inboxes[v] is
// ordered by sender id regardless of thread count, and the max-over-nodes
// round charge is order-independent — so a 1-worker and an N-worker
// configuration of the same Runtime produce byte-identical traffic and
// equal round accounting (enforced by tests/test_network_determinism.cpp
// and, across concurrent Runtimes, tests/test_runtime.cpp). Downstream
// layers (spanner, sparsifier) reach the same context through context(),
// so one Runtime's pipeline never touches another's pool.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "bcc/message.h"
#include "bcc/round_accountant.h"
#include "common/context.h"
#include "graph/graph.h"

namespace bcclap::bcc {

enum class Model {
  kBroadcastCongest,         // deliver along communication-graph edges
  kBroadcastCongestedClique, // deliver to everyone
};

class Network {
 public:
  // BC network over the topology of `g` (the usual setting: the input graph
  // is also the communication graph), executing on `ctx`'s worker pool.
  Network(Model model, const graph::Graph& g, std::int64_t bandwidth_bits,
          const common::Context& ctx);
  // BCC network over n nodes (no topology needed).
  Network(Model model, std::size_t n, std::int64_t bandwidth_bits,
          const common::Context& ctx);

  Model model() const { return model_; }
  std::size_t num_nodes() const { return n_; }
  std::int64_t bandwidth() const { return bandwidth_; }

  // The execution context this network (and every layer running on it)
  // dispatches parallel work through.
  const common::Context& context() const { return ctx_; }

  // Runs one superstep: outboxes[v] are the messages node v broadcasts
  // (possibly empty). Returns inboxes: inboxes[v] = messages delivered to v,
  // ordered by sender id. Charges rounds to `label`.
  std::vector<std::vector<ReceivedMessage>> exchange(
      const std::vector<std::vector<Message>>& outboxes,
      const std::string& label);

  // Per-node local computation for run_superstep: node v's compute returns
  // the messages v broadcasts this superstep. Must only write state owned
  // by v (the engine runs nodes concurrently); stateful shared resources —
  // sequential RNG streams in particular — belong outside the compute, not
  // inside it.
  using ComputeFn = std::function<std::vector<Message>(std::size_t node)>;

  // Superstep driver: fans compute(v) out across the worker pool for every
  // node, then exchanges the resulting outboxes. Callers hand the engine
  // their per-node compute instead of looping over nodes themselves.
  std::vector<std::vector<ReceivedMessage>> run_superstep(
      const ComputeFn& compute, const std::string& label);

  // Charges rounds without message traffic (used for sub-protocols whose
  // cost is known analytically, e.g. the <= k-1 rounds of propagating a
  // cluster-marking bit down the cluster tree in Step 1).
  void charge(const std::string& label, std::int64_t rounds) {
    accountant_.charge(label, rounds);
  }

  const RoundAccountant& accountant() const { return accountant_; }
  RoundAccountant& accountant() { return accountant_; }

  // Default bandwidth for an n-node network: B = 2 ceil(log2 n) + 2, the
  // Theta(log n) of the model definition. The formula degenerates below
  // n = 2 (B = 2 at n = 1, undefined at n = 0 — too narrow for the
  // minimal flag + two ids + weight-bit protocol message); tiny networks
  // pin B = 4, so every n >= 0 is accepted and B is always >= 4.
  static std::int64_t default_bandwidth(std::size_t n);

 private:
  Model model_;
  std::size_t n_;
  std::int64_t bandwidth_;
  common::Context ctx_;
  // neighbours_[v]: sorted neighbour ids (BC mode only). Symmetric, so it
  // serves as both send and receive adjacency.
  std::vector<std::vector<std::size_t>> neighbours_;
  RoundAccountant accountant_;
};

}  // namespace bcclap::bcc
