// Bulk-synchronous simulator for the Broadcast CONGEST and Broadcast
// Congested Clique models (Section 2.1).
//
// Semantics enforced:
//  - computation proceeds in synchronous supersteps; in one superstep every
//    node submits the messages it wants to broadcast;
//  - a node broadcasting a total of `b` bits consumes ceil(b / B) rounds
//    (one B-bit broadcast per round); nodes broadcast in parallel, so the
//    superstep costs max over nodes of that quantity;
//  - broadcast constraint: a message is delivered identically to all
//    recipients — in BC mode the node's neighbours in the communication
//    graph, in BCC mode every other node;
//  - internal computation is free (the models allow unlimited local work).
//
// This bulk-synchronous formulation is round-exact for the algorithms in
// the paper: they are described in phases where each vertex broadcasts a
// bounded number of messages per phase, which is precisely the max-over-
// nodes cost the simulator charges.
#pragma once

#include <cstdint>
#include <vector>

#include "bcc/message.h"
#include "bcc/round_accountant.h"
#include "graph/graph.h"

namespace bcclap::bcc {

enum class Model {
  kBroadcastCongest,         // deliver along communication-graph edges
  kBroadcastCongestedClique, // deliver to everyone
};

class Network {
 public:
  // BC network over the topology of `g` (the usual setting: the input graph
  // is also the communication graph).
  Network(Model model, const graph::Graph& g, std::int64_t bandwidth_bits);
  // BCC network over n nodes (no topology needed).
  Network(Model model, std::size_t n, std::int64_t bandwidth_bits);

  Model model() const { return model_; }
  std::size_t num_nodes() const { return n_; }
  std::int64_t bandwidth() const { return bandwidth_; }

  // Runs one superstep: outboxes[v] are the messages node v broadcasts
  // (possibly empty). Returns inboxes: inboxes[v] = messages delivered to v,
  // ordered by sender id. Charges rounds to `label`.
  std::vector<std::vector<ReceivedMessage>> exchange(
      const std::vector<std::vector<Message>>& outboxes,
      const std::string& label);

  // Charges rounds without message traffic (used for sub-protocols whose
  // cost is known analytically, e.g. the <= k-1 rounds of propagating a
  // cluster-marking bit down the cluster tree in Step 1).
  void charge(const std::string& label, std::int64_t rounds) {
    accountant_.charge(label, rounds);
  }

  const RoundAccountant& accountant() const { return accountant_; }
  RoundAccountant& accountant() { return accountant_; }

  // Default bandwidth for an n-node network: B = 2 ceil(log2 n) + 2,
  // the Theta(log n) of the model definition.
  static std::int64_t default_bandwidth(std::size_t n);

 private:
  Model model_;
  std::size_t n_;
  std::int64_t bandwidth_;
  // neighbours_[v]: sorted neighbour ids (BC mode only).
  std::vector<std::vector<std::size_t>> neighbours_;
  RoundAccountant accountant_;
};

}  // namespace bcclap::bcc
