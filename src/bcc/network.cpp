#include "bcc/network.h"

#include <algorithm>
#include <cassert>

#include "common/encoding.h"

namespace bcclap::bcc {

std::int64_t Network::default_bandwidth(std::size_t n) {
  const int id = enc::id_bits(std::max<std::size_t>(n, 2));
  return 2 * id + 2;
}

Network::Network(Model model, const graph::Graph& g,
                 std::int64_t bandwidth_bits)
    : model_(model), n_(g.num_vertices()), bandwidth_(bandwidth_bits) {
  assert(bandwidth_ >= 1);
  if (model_ == Model::kBroadcastCongest) {
    neighbours_.resize(n_);
    for (std::size_t v = 0; v < n_; ++v) {
      for (graph::EdgeId e : g.incident(v)) {
        neighbours_[v].push_back(g.other_endpoint(e, v));
      }
      std::sort(neighbours_[v].begin(), neighbours_[v].end());
      neighbours_[v].erase(
          std::unique(neighbours_[v].begin(), neighbours_[v].end()),
          neighbours_[v].end());
    }
  }
}

Network::Network(Model model, std::size_t n, std::int64_t bandwidth_bits)
    : model_(model), n_(n), bandwidth_(bandwidth_bits) {
  assert(model == Model::kBroadcastCongestedClique);
  (void)model;
  assert(bandwidth_ >= 1);
}

std::vector<std::vector<ReceivedMessage>> Network::exchange(
    const std::vector<std::vector<Message>>& outboxes,
    const std::string& label) {
  assert(outboxes.size() == n_);
  // Cost: nodes broadcast in parallel; each node serializes its own
  // messages, one B-bit broadcast per round.
  std::int64_t rounds = 0;
  for (const auto& box : outboxes) {
    std::int64_t node_rounds = 0;
    for (const Message& msg : box) {
      node_rounds += enc::rounds_for_bits(msg.total_bits(), bandwidth_);
    }
    rounds = std::max(rounds, node_rounds);
  }
  accountant_.charge(label, rounds);

  std::vector<std::vector<ReceivedMessage>> inboxes(n_);
  for (std::size_t sender = 0; sender < n_; ++sender) {
    if (outboxes[sender].empty()) continue;
    if (model_ == Model::kBroadcastCongestedClique) {
      for (std::size_t recv = 0; recv < n_; ++recv) {
        if (recv == sender) continue;
        for (const Message& msg : outboxes[sender]) {
          inboxes[recv].push_back({sender, msg});
        }
      }
    } else {
      for (std::size_t recv : neighbours_[sender]) {
        for (const Message& msg : outboxes[sender]) {
          inboxes[recv].push_back({sender, msg});
        }
      }
    }
  }
  return inboxes;
}

}  // namespace bcclap::bcc
