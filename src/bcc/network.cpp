#include "bcc/network.h"

#include <algorithm>
#include <cassert>

#include "common/encoding.h"

namespace bcclap::bcc {

namespace {

// Below this many nodes the parallel fan-out costs more than it saves;
// everything runs inline (the pool does the same cut-off by grain).
constexpr std::size_t kParallelGrainNodes = 16;

}  // namespace

std::int64_t Network::default_bandwidth(std::size_t n) {
  // The textbook B = 2 ceil(log2 n) + 2 degenerates below n = 2: it gives
  // 2 for n = 1 and is undefined for n = 0, too narrow for the minimal
  // [flag | id | id | weight-bit] protocol message (4 bits) to fit one
  // round. Tiny networks pin B = 4, the n = 2 value of the formula.
  if (n <= 2) return 4;
  return 2 * enc::id_bits(n) + 2;
}

Network::Network(Model model, const graph::Graph& g,
                 std::int64_t bandwidth_bits, const common::Context& ctx)
    : model_(model), n_(g.num_vertices()), bandwidth_(bandwidth_bits),
      ctx_(ctx) {
  assert(bandwidth_ >= 1);
  if (model_ == Model::kBroadcastCongest) {
    neighbours_.resize(n_);
    for (std::size_t v = 0; v < n_; ++v) {
      for (graph::EdgeId e : g.incident(v)) {
        neighbours_[v].push_back(g.other_endpoint(e, v));
      }
      std::sort(neighbours_[v].begin(), neighbours_[v].end());
      neighbours_[v].erase(
          std::unique(neighbours_[v].begin(), neighbours_[v].end()),
          neighbours_[v].end());
    }
  }
}

Network::Network(Model model, std::size_t n, std::int64_t bandwidth_bits,
                 const common::Context& ctx)
    : model_(model), n_(n), bandwidth_(bandwidth_bits), ctx_(ctx) {
  assert(model == Model::kBroadcastCongestedClique);
  (void)model;
  assert(bandwidth_ >= 1);
}

std::vector<std::vector<ReceivedMessage>> Network::exchange(
    const std::vector<std::vector<Message>>& outboxes,
    const std::string& label) {
  assert(outboxes.size() == n_);

  // Cost: nodes broadcast in parallel; each node serializes its own
  // messages, one B-bit broadcast per round. Max-over-nodes is
  // order-independent, so the charge is identical at any thread count.
  std::int64_t rounds = 0;
  ctx_.parallel_reduce_chunks(
      0, n_, kParallelGrainNodes, std::int64_t{0},
      [&](std::size_t lo, std::size_t hi, std::int64_t& local) {
        for (std::size_t v = lo; v < hi; ++v) {
          std::int64_t node_rounds = 0;
          for (const Message& msg : outboxes[v]) {
            node_rounds += enc::rounds_for_bits(msg.total_bits(), bandwidth_);
          }
          local = std::max(local, node_rounds);
        }
      },
      [&](std::int64_t& local) { rounds = std::max(rounds, local); });
  accountant_.charge(label, rounds);

  // Delivery: each recipient's inbox depends only on the (read-only)
  // outboxes, so recipients assemble concurrently. Senders are walked in
  // ascending id order per recipient, which reproduces exactly the
  // sender-ordered delivery of the sequential engine.
  std::vector<std::vector<ReceivedMessage>> inboxes(n_);
  const bool clique = model_ == Model::kBroadcastCongestedClique;
  // Active senders (ascending) and the total message count: with sparse
  // traffic the per-recipient work is O(active), not O(n).
  std::vector<std::size_t> active;
  std::size_t total_msgs = 0;
  for (std::size_t s = 0; s < n_; ++s) {
    if (!outboxes[s].empty()) {
      active.push_back(s);
      total_msgs += outboxes[s].size();
    }
  }
  ctx_.parallel_for_chunks(
      0, n_, kParallelGrainNodes, [&](std::size_t lo, std::size_t hi) {
        for (std::size_t recv = lo; recv < hi; ++recv) {
          auto& inbox = inboxes[recv];
          const auto deliver_from = [&](std::size_t sender) {
            for (const Message& msg : outboxes[sender]) {
              inbox.push_back({sender, msg});
            }
          };
          if (clique) {
            inbox.reserve(total_msgs - outboxes[recv].size());
            for (std::size_t s : active) {
              if (s != recv) deliver_from(s);
            }
          } else {
            // BC adjacency is symmetric: recv's senders are its neighbours,
            // already sorted ascending.
            std::size_t count = 0;
            for (std::size_t s : neighbours_[recv]) {
              count += outboxes[s].size();
            }
            inbox.reserve(count);
            for (std::size_t s : neighbours_[recv]) {
              if (!outboxes[s].empty()) deliver_from(s);
            }
          }
        }
      });
  return inboxes;
}

std::vector<std::vector<ReceivedMessage>> Network::run_superstep(
    const ComputeFn& compute, const std::string& label) {
  std::vector<std::vector<Message>> outboxes(n_);
  // Grain 1: per-node compute is the heavyweight part of a superstep, so
  // every node is its own unit of work.
  ctx_.parallel_for(0, n_, [&](std::size_t v) { outboxes[v] = compute(v); });
  return exchange(outboxes, label);
}

}  // namespace bcclap::bcc
