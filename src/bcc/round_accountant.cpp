#include "bcc/round_accountant.h"

#include <cassert>

#include "common/encoding.h"

namespace bcclap::bcc {

void RoundAccountant::charge(const std::string& label, std::int64_t rounds) {
  assert(rounds >= 0);
  total_ += rounds;
  by_label_[label] += rounds;
}

void RoundAccountant::charge_broadcast_bits(const std::string& label,
                                            std::int64_t bits,
                                            std::int64_t bandwidth) {
  charge(label, enc::rounds_for_bits(bits, bandwidth));
}

std::int64_t RoundAccountant::total_for(const std::string& label) const {
  const auto it = by_label_.find(label);
  return it == by_label_.end() ? 0 : it->second;
}

void RoundAccountant::reset() {
  total_ = 0;
  by_label_.clear();
}

}  // namespace bcclap::bcc
