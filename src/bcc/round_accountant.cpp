#include "bcc/round_accountant.h"

#include <cassert>

#include "common/encoding.h"

namespace bcclap::bcc {

void RoundAccountant::charge(const std::string& label, std::int64_t rounds) {
  assert(rounds >= 0);
  std::lock_guard<std::mutex> lock(mu_);
  total_ += rounds;
  by_label_[label] += rounds;
}

void RoundAccountant::charge_broadcast_bits(const std::string& label,
                                            std::int64_t bits,
                                            std::int64_t bandwidth) {
  charge(label, enc::rounds_for_bits(bits, bandwidth));
}

std::int64_t RoundAccountant::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::int64_t RoundAccountant::total_for(const std::string& label) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_label_.find(label);
  return it == by_label_.end() ? 0 : it->second;
}

std::map<std::string, std::int64_t> RoundAccountant::breakdown() const {
  std::lock_guard<std::mutex> lock(mu_);
  return by_label_;
}

void RoundAccountant::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  total_ = 0;
  by_label_.clear();
}

}  // namespace bcclap::bcc
