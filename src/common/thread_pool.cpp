#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/env.h"

namespace bcclap::common {

namespace {

// Workers run inline when re-entered from a pool thread; nested
// parallel_for otherwise deadlocks waiting for workers that are busy
// running the outer loop.
thread_local bool t_inside_worker = false;

// One parallel_for invocation. Owned by shared_ptr so a worker that wakes
// late (or finishes its last chunk after the caller has already returned)
// still holds a valid job and can never touch a successor job's state.
struct Job {
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> next_chunk{0};

  std::mutex mu;
  std::condition_variable done_cv;
  std::size_t chunks_done = 0;
  std::exception_ptr error;

  void run() {
    for (;;) {
      const std::size_t c = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= num_chunks) return;
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      std::exception_ptr caught;
      try {
        (*fn)(lo, hi);
      } catch (...) {
        caught = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mu);
      if (caught && !error) error = caught;
      if (++chunks_done == num_chunks) done_cv.notify_all();
    }
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mu);
    done_cv.wait(lock, [&] { return chunks_done == num_chunks; });
  }
};

// Decrements the pool's in-flight count even when the kernel throws.
class InFlightGuard {
 public:
  explicit InFlightGuard(std::atomic<std::size_t>& counter)
      : counter_(counter) {
    counter_.fetch_add(1, std::memory_order_acq_rel);
  }
  ~InFlightGuard() { counter_.fetch_sub(1, std::memory_order_acq_rel); }
  InFlightGuard(const InFlightGuard&) = delete;
  InFlightGuard& operator=(const InFlightGuard&) = delete;

 private:
  std::atomic<std::size_t>& counter_;
};

}  // namespace

std::size_t default_thread_count() {
  // Misspelled values warn once inside positive_count and fall through to
  // the compile-time / hardware default (common/env.h).
  if (const auto v = env::positive_count("BCCLAP_THREADS")) return *v;
#ifdef BCCLAP_DEFAULT_THREADS
  return static_cast<std::size_t>(BCCLAP_DEFAULT_THREADS);
#else
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
#endif
}

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;
  std::shared_ptr<Job> job;  // most recently published job
  // job_seq / shutting_down are atomics so the worker spin phase can poll
  // them without the mutex; they are still only *written* under mu, which
  // keeps the cv predicate race-free.
  std::atomic<std::uint64_t> job_seq{0};
  std::atomic<bool> shutting_down{false};
  std::size_t sleepers = 0;  // workers parked in work_cv.wait (under mu)
  std::vector<std::thread> workers;

  // Spin-then-sleep: kernels like the blocked factorization publish many
  // short parallel regions back to back, and a futex sleep/wake round trip
  // per region costs more than the region itself. Workers therefore poll
  // for the next job briefly before parking on the cv; the publisher skips
  // the notify syscall entirely when nobody is parked.
  static constexpr int kSpinIters = 256;

  void worker_loop() {
    t_inside_worker = true;
    std::uint64_t seen = 0;
    for (;;) {
      for (int spin = 0; spin < kSpinIters; ++spin) {
        if (shutting_down.load(std::memory_order_relaxed) ||
            job_seq.load(std::memory_order_acquire) != seen) {
          break;
        }
        std::this_thread::yield();
      }
      std::shared_ptr<Job> j;
      {
        std::unique_lock<std::mutex> lock(mu);
        ++sleepers;
        work_cv.wait(lock, [&] {
          return shutting_down.load(std::memory_order_relaxed) ||
                 job_seq.load(std::memory_order_relaxed) != seen;
        });
        --sleepers;
        if (shutting_down.load(std::memory_order_relaxed)) return;
        seen = job_seq.load(std::memory_order_relaxed);
        j = job;
      }
      if (j) j->run();
    }
  }
};

ThreadPool::ThreadPool(std::size_t threads)
    : impl_(nullptr), threads_(threads == 0 ? 1 : threads) {
  if (threads_ == 1) return;
  impl_ = new Impl;
  impl_->workers.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  drain();
  delete impl_;
}

void ThreadPool::drain() {
  if (!impl_) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->shutting_down.store(true, std::memory_order_relaxed);
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->workers) t.join();
  impl_->workers.clear();
  // impl_ stays allocated: a dispatch that raced the drain (or arrives
  // later through a retained pool pointer) publishes its job and then runs
  // every chunk on the calling thread — the pool is work-conserving, so
  // execution degrades to inline, never to use-after-free. The reported
  // thread count drops to 1 to match what actually executes.
  threads_ = 1;
}

void ThreadPool::parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const InFlightGuard in_flight(in_flight_);
  // Inline paths: single-threaded pool, a range that is one chunk anyway,
  // or a nested call from a worker thread.
  if (!impl_ || end - begin <= grain || t_inside_worker) {
    for (std::size_t lo = begin; lo < end; lo += grain) {
      fn(lo, std::min(end, lo + grain));
    }
    return;
  }

  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = (end - begin + grain - 1) / grain;
  bool anyone_sleeping;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->job = job;
    impl_->job_seq.fetch_add(1, std::memory_order_release);
    anyone_sleeping = impl_->sleepers > 0;
  }
  // Spinning workers observe the job_seq bump without a wakeup; the
  // notify syscall is only paid for workers actually parked on the cv.
  if (anyone_sleeping) impl_->work_cv.notify_all();
  job->run();  // the calling thread participates
  job->wait();
  if (job->error) std::rethrow_exception(job->error);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(begin, end, 1, [&fn](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) fn(i);
  });
}

}  // namespace bcclap::common
