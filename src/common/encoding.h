// Bit-size accounting for broadcast messages.
//
// The BCC/BC models bound each per-round message to B = Θ(log n) bits, so
// round costs of broadcasting weights, vector entries, and IDs depend on
// their bit width. These helpers centralize that arithmetic; the network
// simulator and the round accountant both use them.
#pragma once

#include <cstdint>
#include <cstddef>

namespace bcclap::enc {

// Number of bits needed to represent v (0 -> 1 bit).
int bit_width_u64(std::uint64_t v);

// Bits to encode a signed integer (sign bit + magnitude).
int bit_width_i64(std::int64_t v);

// Bits needed to represent an ID in [0, n).
int id_bits(std::size_t n);

// Bits to encode a real value with absolute values up to `max_abs` at
// relative precision `eps`: sign + integer part + log(1/eps) fraction bits.
int real_bits(double max_abs, double eps);

// Rounds needed to broadcast a payload of `bits` bits with bandwidth B.
std::int64_t rounds_for_bits(std::int64_t bits, std::int64_t bandwidth);

}  // namespace bcclap::enc
