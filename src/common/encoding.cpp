#include "common/encoding.h"

#include <algorithm>
#include <cmath>

namespace bcclap::enc {

namespace {

// C++17 stand-in for std::bit_width (C++20): position of the highest set bit
// plus one, i.e. the number of bits needed to represent v > 0.
int bit_width_nonzero(std::uint64_t v) {
  int width = 0;
  while (v != 0) {
    ++width;
    v >>= 1;
  }
  return width;
}

}  // namespace

int bit_width_u64(std::uint64_t v) {
  return v == 0 ? 1 : bit_width_nonzero(v);
}

int bit_width_i64(std::int64_t v) {
  const std::uint64_t mag = v < 0 ? static_cast<std::uint64_t>(-(v + 1)) + 1
                                  : static_cast<std::uint64_t>(v);
  return 1 + bit_width_u64(mag);
}

int id_bits(std::size_t n) {
  return n <= 1 ? 1 : bit_width_nonzero(n - 1);
}

int real_bits(double max_abs, double eps) {
  const double m = std::max(1.0, std::abs(max_abs));
  const double e = std::clamp(eps, 1e-30, 1.0);
  const int int_bits = static_cast<int>(std::ceil(std::log2(m + 1.0)));
  const int frac_bits = static_cast<int>(std::ceil(std::log2(1.0 / e)));
  return 1 + int_bits + frac_bits;
}

std::int64_t rounds_for_bits(std::int64_t bits, std::int64_t bandwidth) {
  if (bits <= 0) return 0;
  if (bandwidth <= 0) bandwidth = 1;
  return (bits + bandwidth - 1) / bandwidth;
}

}  // namespace bcclap::enc
