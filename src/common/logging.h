// Minimal leveled logging. Off by default; benches and examples flip the
// level to observe algorithm progress without a dependency on a logging lib.
#pragma once

#include <sstream>
#include <string>

namespace bcclap::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

Level threshold();
void set_threshold(Level level);
void emit(Level level, const std::string& message);

}  // namespace bcclap::log

#define BCCLAP_LOG(level, expr)                                        \
  do {                                                                 \
    if (static_cast<int>(level) >=                                     \
        static_cast<int>(::bcclap::log::threshold())) {                \
      std::ostringstream bcclap_log_oss;                               \
      bcclap_log_oss << expr;                                          \
      ::bcclap::log::emit(level, bcclap_log_oss.str());                \
    }                                                                  \
  } while (0)

#define BCCLAP_DEBUG(expr) BCCLAP_LOG(::bcclap::log::Level::kDebug, expr)
#define BCCLAP_INFO(expr) BCCLAP_LOG(::bcclap::log::Level::kInfo, expr)
#define BCCLAP_WARN(expr) BCCLAP_LOG(::bcclap::log::Level::kWarn, expr)
