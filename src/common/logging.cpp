#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace bcclap::log {

namespace {
std::atomic<int> g_threshold{static_cast<int>(Level::kWarn)};
const char* level_name(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO";
    case Level::kWarn: return "WARN";
    case Level::kError: return "ERROR";
    default: return "?";
  }
}
}  // namespace

Level threshold() { return static_cast<Level>(g_threshold.load()); }

void set_threshold(Level level) { g_threshold.store(static_cast<int>(level)); }

void emit(Level level, const std::string& message) {
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace bcclap::log
