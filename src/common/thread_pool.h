// A small reusable worker pool for data-parallel supersteps.
//
// The BC/BCC simulator is bulk-synchronous: within one superstep every
// node's local computation is independent, so the engine fans per-node work
// out across a fixed set of workers and joins at the superstep barrier.
// The pool is deliberately minimal — one blocking parallel-for at a time —
// because that is exactly the shape of a superstep.
//
// Determinism contract (load-bearing for the 1-thread-vs-N-thread test
// suite): `parallel_for_chunks` splits [begin, end) into chunks whose
// boundaries depend only on the range and the grain, never on the thread
// count or on scheduling. Callers that combine per-chunk partial results in
// chunk order therefore produce bit-identical output at any thread count.
// Note the guarantee is thread-count invariance, not equivalence with an
// unchunked sequential loop: merging per-chunk floating-point partials
// groups the additions differently than a single left-to-right sweep, so a
// chunked kernel may differ in the last ulps from its pre-chunking
// sequential version — but never between two runs of itself, whatever the
// worker count.
//
// Ownership: pools are owned by bcclap::Runtime instances (core/runtime.h)
// — the process-global accessor family that used to live here was removed
// once its last callers migrated (Runtime::process_default() is the
// supported process-wide instance). Code takes a common::Context
// (common/context.h) and runs on the pool it carries.
//
// Wakeup cost: workers spin briefly (yielding) for the next job before
// parking on the condition variable, and the publisher skips the notify
// syscall when no worker is parked — kernels that issue many short
// parallel regions back to back (e.g. one per factorization panel) avoid
// a futex round trip per region.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <vector>

namespace bcclap::common {

// Default minimum scalar operations per chunk before fanning a kernel out
// to the pool; below this the dispatch overhead dominates the work.
inline constexpr std::size_t kDefaultMinWorkPerChunk = 16 * 1024;

// Items per chunk so one chunk covers at least `min_work` scalar
// operations, for a loop of `items` iterations costing `item_cost`
// operations each (use the average for ragged loops). Pure function of its
// arguments — never of the thread count — so chunk boundaries stay
// deterministic. Shared by the linalg kernels.
inline std::size_t chunk_grain(std::size_t items, std::size_t item_cost,
                               std::size_t min_work = kDefaultMinWorkPerChunk) {
  const std::size_t grain =
      std::max<std::size_t>(1, min_work / std::max<std::size_t>(item_cost, 1));
  return std::max<std::size_t>(1, std::min(items, grain));
}

// Thread count a defaulted (threads == 0) pool resolves to:
// BCCLAP_THREADS environment variable if set, else the
// BCCLAP_DEFAULT_THREADS compile-time knob, else hardware_concurrency.
std::size_t default_thread_count();

class ThreadPool {
 public:
  // Creates a pool with `threads` workers total (including the calling
  // thread, which participates in every parallel_for). threads == 0 is
  // treated as 1 (env resolution is the Runtime's job, not the pool's).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t num_threads() const { return threads_; }

  // Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks of
  // at most `grain` indices, blocking until every chunk has run. Chunk
  // boundaries are a pure function of (begin, end, grain). Chunks may run
  // in any order on any worker; the caller's writes must be disjoint per
  // index or merged in chunk order afterwards.
  //
  // Exceptions thrown by fn are captured; the first one (in chunk order is
  // not guaranteed) is rethrown on the calling thread after the join.
  //
  // Calls from inside a worker (nested parallelism) run inline on the
  // calling thread — the pool never deadlocks on itself.
  void parallel_for_chunks(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn);

  // Per-index convenience: fn(i) for i in [begin, end).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  // True while any parallel_for (from any thread) is executing on this
  // pool. Used by Runtime::process_default's reset path to make the
  // "no parallel_for in flight" precondition violation detectable.
  bool busy() const {
    return in_flight_.load(std::memory_order_acquire) != 0;
  }

  // Stops and joins the worker threads; the pool object stays valid and
  // every later parallel_for runs all of its chunks on the calling thread
  // (identical chunk boundaries, so results are unchanged byte for byte).
  // Used when the process-default Runtime is retired: objects built on
  // the deprecated path keep their pool pointer working — it just stops
  // being parallel. Precondition: no parallel_for in flight.
  void drain();

 private:
  struct Impl;
  Impl* impl_;  // null when threads_ == 1 (pure inline execution)
  std::size_t threads_;
  // Nesting-aware count of parallel_for invocations currently on this
  // pool (incremented even on the inline paths: destroying the pool under
  // any running call is what the precondition forbids).
  std::atomic<std::size_t> in_flight_{0};
};

// Deterministic chunked reduction, the one blessed way to parallelize an
// accumulate/scatter loop: [begin, end) splits into fixed chunks, each
// chunk's body accumulates into a private partial seeded from `init`, and
// the partials merge on the calling thread in ascending chunk order. The
// chunk boundaries — and therefore the floating-point grouping — depend
// only on (begin, end, grain), so results are bit-identical at any thread
// count. body(lo, hi, partial&); merge(partial&) called per chunk in order.
template <typename Partial, typename Body, typename Merge>
void parallel_reduce_chunks(ThreadPool& pool, std::size_t begin,
                            std::size_t end, std::size_t grain,
                            const Partial& init, Body&& body, Merge&& merge) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t num_chunks = (end - begin + grain - 1) / grain;
  std::vector<Partial> partials(num_chunks, init);
  pool.parallel_for_chunks(begin, end, grain,
                           [&](std::size_t lo, std::size_t hi) {
                             body(lo, hi, partials[(lo - begin) / grain]);
                           });
  for (Partial& p : partials) merge(p);
}

}  // namespace bcclap::common
