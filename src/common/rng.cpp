#include "common/rng.h"

#include <cmath>

namespace bcclap::rng {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_seed(std::uint64_t seed, std::string_view label) {
  std::uint64_t state = seed ^ 0xa0761d6478bd642fULL;
  for (char c : label) {
    state ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    (void)splitmix64(state);
  }
  return splitmix64(state);
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t label) {
  std::uint64_t state = seed ^ (label * 0xe7037ed1a0b428dbULL);
  return splitmix64(state);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Stream::Stream(std::uint64_t seed) : seed_(seed) {
  std::uint64_t state = seed;
  for (auto& word : s_) word = splitmix64(state);
}

Stream Stream::child(std::string_view label) const {
  return Stream(derive_seed(seed_, label));
}

Stream Stream::child(std::uint64_t label) const {
  return Stream(derive_seed(seed_, label));
}

std::uint64_t Stream::next_u64() {
  // xoshiro256**
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Stream::next_below(std::uint64_t bound) {
  // Lemire-style rejection to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Stream::next_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Stream::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Stream::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Stream::next_gaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return gauss_cache_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 0.0);
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  gauss_cache_ = r * std::sin(theta);
  have_gauss_ = true;
  return r * std::cos(theta);
}

int Stream::next_sign() { return (next_u64() & 1) ? 1 : -1; }

std::vector<std::uint8_t> Stream::next_bits(std::size_t count) {
  std::vector<std::uint8_t> out((count + 7) / 8, 0);
  for (std::size_t i = 0; i < count; ++i) {
    if (next_u64() & 1) out[i / 8] |= static_cast<std::uint8_t>(1u << (i % 8));
  }
  return out;
}

}  // namespace bcclap::rng
