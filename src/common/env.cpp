#include "common/env.h"

#include <cstdlib>
#include <mutex>
#include <set>
#include <sstream>

#include "common/logging.h"

namespace bcclap::common::env {

namespace {

std::mutex& warn_mu() {
  static std::mutex mu;
  return mu;
}

// Leaky (never destroyed): warnings may fire during other statics'
// teardown in tests, after a function-local static set would be gone.
std::set<std::string>& warned() {
  static std::set<std::string>* seen = new std::set<std::string>();
  return *seen;
}

// True exactly once per distinct (variable, value) pair process-wide.
bool first_sighting(const char* name, const std::string& value) {
  std::lock_guard<std::mutex> lock(warn_mu());
  return warned().insert(std::string(name) + "=" + value).second;
}

std::string join(const std::vector<std::string>& values) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << values[i];
  }
  return oss.str();
}

}  // namespace

std::optional<std::string> raw(const char* name) {
  const char* e = std::getenv(name);
  if (e == nullptr) return std::nullopt;
  return std::string(e);
}

std::optional<std::size_t> positive_count(const char* name) {
  const auto value = raw(name);
  if (!value) return std::nullopt;
  // strtol would skip leading whitespace and accept a sign; the knob
  // contract is a bare decimal count, so require a digit up front.
  const char* s = value->c_str();
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (*s >= '0' && *s <= '9' && end != s && *end == '\0' && v > 0)
    return static_cast<std::size_t>(v);
  if (first_sighting(name, *value)) {
    BCCLAP_WARN(name << "=\"" << *value
                     << "\" is not a positive integer; ignoring it");
  }
  return std::nullopt;
}

std::optional<std::string> keyword(const char* name,
                                   const std::vector<std::string>& accepted,
                                   const std::string& fallback_note) {
  const auto value = raw(name);
  if (!value) return std::nullopt;
  for (const auto& a : accepted) {
    if (*value == a) return value;
  }
  if (first_sighting(name, *value)) {
    BCCLAP_WARN(name << "=\"" << *value
                     << "\" is not a recognized value (accepted: "
                     << join(accepted) << "); " << fallback_note);
  }
  return std::nullopt;
}

void reset_warnings_for_tests() {
  std::lock_guard<std::mutex> lock(warn_mu());
  warned().clear();
}

}  // namespace bcclap::common::env
