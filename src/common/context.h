// Execution context: the view every algorithm layer receives of the
// Runtime it runs inside (core/runtime.h).
//
// A Context is a cheap, copyable, non-owning triple
//   (worker pool, seed, min_work_per_chunk)
// threaded through the pipeline layers in place of the old process-global
// ThreadPool singleton and ad-hoc bare-seed parameters. Two Runtimes with
// different configurations hand their layers different Contexts, so two
// independently-configured pipelines coexist in one process; the
// byte-identical-determinism contract (thread_pool.h) holds per Context
// because chunk boundaries depend only on the range, the grain, and
// min_work_per_chunk — never on the worker count.
//
// Lifetime: a Context borrows its pool from a Runtime; everything built
// from a Context (Networks, solvers, factors) must not outlive that
// Runtime — except the immutable prepared artifacts (laplacian/prepared.h)
// and factors whose solve takes the context per call. Default Runtimes —
// current and retired (Runtime::reset_process_default drains the old pool
// but keeps the instance alive) — live for the whole process.
#pragma once

#include <cstdint>
#include <string_view>
#include <utility>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace bcclap::common {

class Context {
 public:
  Context(ThreadPool& pool, std::uint64_t seed,
          std::size_t min_work_per_chunk = kDefaultMinWorkPerChunk)
      : pool_(&pool),
        seed_(seed),
        min_work_(min_work_per_chunk == 0 ? 1 : min_work_per_chunk) {}

  ThreadPool& pool() const { return *pool_; }
  std::size_t num_threads() const { return pool_->num_threads(); }
  std::uint64_t seed() const { return seed_; }
  std::size_t min_work_per_chunk() const { return min_work_; }

  // Same pool and chunking policy, different seed. Used by the
  // deprecated-path wrappers, whose callers still pass bare seeds.
  Context with_seed(std::uint64_t seed) const {
    Context c(*this);
    c.seed_ = seed;
    return c;
  }

  // Labelled child context / stream, mirroring rng::Stream::child: layers
  // derive their own randomness without perturbing the parent's.
  Context child(std::string_view label) const {
    return with_seed(rng::derive_seed(seed_, label));
  }
  rng::Stream stream(std::string_view label) const {
    return rng::Stream(rng::derive_seed(seed_, label));
  }

  // chunk_grain under this context's min-work policy.
  std::size_t grain(std::size_t items, std::size_t item_cost) const {
    return chunk_grain(items, item_cost, min_work_);
  }

  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn) const {
    pool_->parallel_for(begin, end, fn);
  }

  void parallel_for_chunks(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t)>& fn) const {
    pool_->parallel_for_chunks(begin, end, grain, fn);
  }

  template <typename Partial, typename Body, typename Merge>
  void parallel_reduce_chunks(std::size_t begin, std::size_t end,
                              std::size_t grain, const Partial& init,
                              Body&& body, Merge&& merge) const {
    common::parallel_reduce_chunks(*pool_, begin, end, grain, init,
                                   std::forward<Body>(body),
                                   std::forward<Merge>(merge));
  }

 private:
  ThreadPool* pool_;
  std::uint64_t seed_;
  std::size_t min_work_;
};

}  // namespace bcclap::common
