// Deterministic splittable random number generation.
//
// Every source of randomness in the library flows from a single root seed
// through a tree of `Stream`s. Child streams are derived by hashing the
// parent's seed with a label, so independent algorithm components draw from
// statistically independent streams while the whole run stays reproducible.
//
// This is load-bearing for the Lemma 3.3 coupling experiment: the ad-hoc and
// a-priori sparsifiers must consume *identical* cluster-marking bits, which
// we arrange by giving both the same labelled child stream.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace bcclap::rng {

// SplitMix64 step; used both as the PRNG core and as the seed-mixing hash.
std::uint64_t splitmix64(std::uint64_t& state);

// Mix a label into a seed to derive a child seed.
std::uint64_t derive_seed(std::uint64_t seed, std::string_view label);
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t label);

// A deterministic PRNG stream (xoshiro256** seeded via SplitMix64).
class Stream {
 public:
  explicit Stream(std::uint64_t seed);

  // Derive an independent child stream. Does not perturb this stream.
  Stream child(std::string_view label) const;
  Stream child(std::uint64_t label) const;

  std::uint64_t next_u64();
  // Uniform in [0, bound). bound must be > 0. Unbiased (rejection sampling).
  std::uint64_t next_below(std::uint64_t bound);
  // Uniform in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi);
  // Uniform in [0, 1).
  double next_double();
  // True with probability p (clamped to [0,1]).
  bool bernoulli(double p);
  // Standard normal via Box-Muller.
  double next_gaussian();
  // Random sign in {-1, +1}.
  int next_sign();
  // `count` raw random bits packed LSB-first into bytes.
  std::vector<std::uint8_t> next_bits(std::size_t count);

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_cache_ = 0.0;
};

}  // namespace bcclap::rng
