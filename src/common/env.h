// One environment-variable parsing seam for the whole library.
//
// Three knobs used to hand-roll their own getenv/parse/warn logic —
// BCCLAP_ENGINE (laplacian/engine_registry.cpp), BCCLAP_FACTOR_PATH
// (linalg/sparse_ldlt.cpp) and BCCLAP_THREADS (common/thread_pool.cpp) —
// with three slightly different misspelling policies (two warned, one was
// silent). These helpers unify them: every variable is read live (tests
// set and unset them), and an unrecognized value warns exactly once per
// distinct (variable, value) pair process-wide, then falls back to the
// caller's default. The warn-once latch means a bench loop that resolves
// the engine per solve emits one line, not thousands.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace bcclap::common::env {

// Live read of `name`; nullopt when unset.
std::optional<std::string> raw(const char* name);

// Strictly positive integer variable (BCCLAP_THREADS). Returns nullopt
// when unset; non-integer, negative, zero or trailing-garbage values warn
// once and also return nullopt (caller applies its default).
std::optional<std::size_t> positive_count(const char* name);

// Keyword variable: returns the value when it is one of `accepted`;
// anything else warns once — listing `accepted` and appending
// `fallback_note` (e.g. "falling back to auto") — and returns nullopt.
std::optional<std::string> keyword(const char* name,
                                   const std::vector<std::string>& accepted,
                                   const std::string& fallback_note);

// Clears the warn-once latch so tests can assert the warning fires again.
void reset_warnings_for_tests();

}  // namespace bcclap::common::env
