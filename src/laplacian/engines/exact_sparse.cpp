// "exact-sparse": grounded sparse CSC LDL^T per connected component
// (linalg/sparse_ldlt.h with the sparse backend pinned — min-degree
// ordering, simplicial sweep, dense supernodal tail). Exact like
// "exact-dense" but with O(n + fill) storage; the auto-tuner's pick for
// large sparse instances. Charges no BCC rounds on the graph side (same
// globally-known-topology model as exact-dense); the SDD side charges the
// analytic exact-solve model so "exact-dense" and "exact-sparse" are
// round-identical and differ only in local arithmetic.
#include <algorithm>
#include <cassert>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "laplacian/engine.h"
#include "laplacian/engines/builtin.h"
#include "linalg/csc_matrix.h"
#include "linalg/sparse_ldlt.h"

namespace bcclap::laplacian::engines {

namespace {

class ExactSparseEngine final : public LaplacianEngine {
 public:
  using LaplacianEngine::LaplacianEngine;

  std::string_view key() const override { return "exact-sparse"; }

  std::shared_ptr<const PreparedLaplacian> prepare(
      const common::Context& ctx, const graph::Graph& g) const override {
    return prepare_exact(ctx, g, linalg::FactorMode::kForceSparse, key());
  }
};

// SDD engine on the sparse factorization: the dense-stored SDD matrix is
// scanned into its upper triangle once and factored on the CSC path.
// Mirrors ExactSddEngine (bcc_solver.cpp) in every contract — Tikhonov
// ridge retry on semi-definite inputs, per-right-hand-side round charging
// via the shared exact model — so the two exact keys are interchangeable
// to the LP layer.
class ExactSparseSddEngine final : public SddEngine {
 public:
  ExactSparseSddEngine(const common::Context& ctx, linalg::DenseMatrix m,
                       std::size_t network_n)
      : ctx_(ctx), network_n_(std::max<std::size_t>(network_n, 2)) {
    factor_ = linalg::SparseLdltFactor::factor(ctx, upper_triangle(m));
    if (!factor_) {
      const std::size_t n = m.rows();
      double scale = 0.0;
      for (std::size_t i = 0; i < n; ++i) scale = std::max(scale, m(i, i));
      for (std::size_t i = 0; i < n; ++i) m(i, i) += 1e-12 * (scale + 1.0);
      factor_ = linalg::SparseLdltFactor::factor(ctx, upper_triangle(m));
    }
    assert(factor_);
  }

  linalg::Vec solve(const linalg::Vec& y, double eps) override {
    rounds_ += exact_sdd_solve_rounds(network_n_, eps);
    return factor_->solve(y);
  }

  linalg::DenseMatrix solve_many(const linalg::DenseMatrix& y,
                                 double eps) override {
    for (std::size_t j = 0; j < y.cols(); ++j)
      rounds_ += exact_sdd_solve_rounds(network_n_, eps);
    return factor_->solve_many(ctx_, y);
  }

  std::int64_t rounds_charged() const override { return rounds_; }

  std::string_view key() const override { return "exact-sparse"; }

 private:
  static linalg::CscSymmetricMatrix upper_triangle(
      const linalg::DenseMatrix& m) {
    const std::size_t n = m.rows();
    std::vector<linalg::Triplet> trips;
    for (std::size_t i = 0; i < n; ++i) {
      const double* row = m.row_data(i);
      for (std::size_t j = i; j < n; ++j)
        if (row[j] != 0.0) trips.push_back({i, j, row[j]});
    }
    return linalg::CscSymmetricMatrix(n, std::move(trips));
  }

  common::Context ctx_;
  std::optional<linalg::SparseLdltFactor> factor_;
  std::size_t network_n_;
  std::int64_t rounds_ = 0;
};

}  // namespace

void register_exact_sparse(EngineRegistry& registry) {
  registry.register_engine(
      "exact-sparse",
      [](const EngineOptions& opt) {
        return std::make_unique<ExactSparseEngine>(opt);
      },
      [](const common::Context& ctx, linalg::DenseMatrix m,
         const SddEngineOptions& opt) {
        return std::make_unique<ExactSparseSddEngine>(ctx, std::move(m),
                                                      opt.network_n);
      });
}

}  // namespace bcclap::laplacian::engines
