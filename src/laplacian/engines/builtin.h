// Registration hooks for the built-in engines. Each engine lives in its
// own translation unit under src/laplacian/engines/ and exposes exactly
// one symbol: its register_* function. engine_registry.cpp calls these
// from the instance() bootstrap — a registration manifest, not dispatch
// code: adding a backend means adding one TU and one line here, and no
// existing engine or call site changes.
//
// (Static self-registering objects would be the zero-touch alternative,
// but this library links as a static archive, where a TU nothing
// references is dropped by the linker along with its registrar — the
// explicit bootstrap list is the reliable form.)
#pragma once

namespace bcclap::laplacian {

class EngineRegistry;

namespace engines {

void register_exact_dense(EngineRegistry& registry);
void register_exact_sparse(EngineRegistry& registry);
void register_sparsified_chebyshev(EngineRegistry& registry);
void register_cg(EngineRegistry& registry);

}  // namespace engines
}  // namespace bcclap::laplacian
