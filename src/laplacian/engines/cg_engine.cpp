// "cg": Jacobi-preconditioned conjugate gradient on the distributed
// matvec — the ablation-A2 baseline as a first-class engine. One L_G
// apply per iteration, charged with the same per-iteration broadcast
// model as the Chebyshev solve (Theorem 1.3's matvec accounting), but no
// sparsifier preprocessing. Never auto-selected: without the
// preconditioner its iteration count scales with sqrt(kappa(L_G)), so it
// exists for explicit requests (baselines, sanity checks, ablations).
// The iteration itself lives in the prepared artifact (PreparedCg,
// laplacian/prepared.cpp); this TU keeps only the engine wrapper and the
// SDD-side CG, which has no graph artifact to share.
//
// Accuracy note: CG's stopping rule is the 2-norm relative residual at
// EngineOptions::eps, not the energy norm of the Chebyshev contract —
// the usual baseline convention (tests compare at matching eps).
#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "common/encoding.h"
#include "laplacian/engine.h"
#include "laplacian/engines/builtin.h"
#include "linalg/cg.h"

namespace bcclap::laplacian::engines {

namespace {

class CgEngine final : public LaplacianEngine {
 public:
  using LaplacianEngine::LaplacianEngine;

  std::string_view key() const override { return "cg"; }

  std::shared_ptr<const PreparedLaplacian> prepare(
      const common::Context& ctx, const graph::Graph& g) const override {
    return prepare_cg(ctx, g);
  }
};

// SDD-side CG: solves M x = y against the dense-stored SDD matrix with a
// Jacobi preconditioner, charging one broadcast per iteration under the
// same network model the exact SDD engines use.
class CgSddEngine final : public SddEngine {
 public:
  CgSddEngine(const common::Context& ctx, linalg::DenseMatrix m,
              std::size_t network_n)
      : ctx_(ctx),
        matrix_(std::move(m)),
        network_n_(std::max<std::size_t>(network_n, 2)) {
    diag_.assign(matrix_.rows(), 0.0);
    for (std::size_t i = 0; i < matrix_.rows(); ++i) diag_[i] = matrix_(i, i);
  }

  linalg::Vec solve(const linalg::Vec& y, double eps) override {
    const linalg::LinearOperator apply_a = [&](const linalg::Vec& x) {
      return matrix_.multiply(ctx_, x);
    };
    const linalg::LinearOperator precond = [&](const linalg::Vec& r) {
      linalg::Vec z(r.size());
      for (std::size_t i = 0; i < r.size(); ++i)
        z[i] = diag_[i] > 0.0 ? r[i] / diag_[i] : r[i];
      return z;
    };
    const auto res = linalg::conjugate_gradient(
        apply_a, y, eps, 4 * matrix_.rows() + 128, &precond);
    charge(res.iterations, eps);
    return res.x;
  }

  std::int64_t rounds_charged() const override { return rounds_; }

  std::string_view key() const override { return "cg"; }

 private:
  void charge(std::size_t iterations, double eps) {
    const double safe = std::max(eps, 1e-12);
    const std::int64_t bits =
        enc::real_bits(static_cast<double>(network_n_) / safe, safe);
    const std::int64_t bw =
        static_cast<std::int64_t>(
            2 * std::log2(static_cast<double>(network_n_))) +
        2;
    rounds_ += static_cast<std::int64_t>(iterations) *
               enc::rounds_for_bits(bits, bw);
  }

  common::Context ctx_;
  linalg::DenseMatrix matrix_;
  std::vector<double> diag_;
  std::size_t network_n_;
  std::int64_t rounds_ = 0;
};

}  // namespace

void register_cg(EngineRegistry& registry) {
  registry.register_engine(
      "cg",
      [](const EngineOptions& opt) { return std::make_unique<CgEngine>(opt); },
      [](const common::Context& ctx, linalg::DenseMatrix m,
         const SddEngineOptions& opt) {
        return std::make_unique<CgSddEngine>(ctx, std::move(m),
                                             opt.network_n);
      });
}

}  // namespace bcclap::laplacian::engines
