// "cg": Jacobi-preconditioned conjugate gradient on the distributed
// matvec — the ablation-A2 baseline as a first-class engine. One L_G
// apply per iteration, charged with the same per-iteration broadcast
// model as the Chebyshev solve (Theorem 1.3's matvec accounting), but no
// sparsifier preprocessing. Never auto-selected: without the
// preconditioner its iteration count scales with sqrt(kappa(L_G)), so it
// exists for explicit requests (baselines, sanity checks, ablations).
//
// Accuracy note: CG's stopping rule is the 2-norm relative residual at
// EngineOptions::eps, not the energy norm of the Chebyshev contract —
// the usual baseline convention (tests compare at matching eps).
#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "bcc/network.h"
#include "common/encoding.h"
#include "graph/laplacian.h"
#include "laplacian/engine.h"
#include "laplacian/engines/builtin.h"
#include "linalg/cg.h"

namespace bcclap::laplacian::engines {

namespace {

// Projection onto range(L_G): remove the per-component mean (same
// contract as the sparsified solver's projection).
void remove_component_means(linalg::Vec& x,
                            const std::vector<std::size_t>& labels) {
  std::size_t k = 0;
  for (std::size_t l : labels) k = std::max(k, l + 1);
  std::vector<double> sum(k, 0.0);
  std::vector<std::size_t> count(k, 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum[labels[i]] += x[i];
    ++count[labels[i]];
  }
  for (std::size_t i = 0; i < x.size(); ++i)
    x[i] -= sum[labels[i]] / static_cast<double>(count[labels[i]]);
}

std::size_t default_max_iter(std::size_t n, std::size_t requested) {
  return requested != 0 ? requested : 4 * n + 128;
}

class CgEngine final : public LaplacianEngine {
 public:
  explicit CgEngine(const EngineOptions& opt) : opt_(opt) {}

  std::string_view key() const override { return "cg"; }

  bool factor(const common::Context&, const graph::Graph& g) override {
    g_ = &g;
    labels_ = g.component_labels();
    // Jacobi preconditioner: D = diag(L_G) = weighted degrees. Isolated
    // vertices have a zero diagonal; their residual is identically zero
    // after projection, so their preconditioned entry is pinned to zero.
    const std::size_t n = g.num_vertices();
    diag_.assign(n, 0.0);
    for (const auto& e : g.edges()) {
      diag_[e.u] += e.weight;
      diag_[e.v] += e.weight;
    }
    bandwidth_ = bcc::Network::default_bandwidth(n);
    weight_bound_ = std::max(g.max_weight(), 1.0);
    return true;
  }

  linalg::Vec solve(const common::Context& ctx,
                    const linalg::Vec& b) override {
    assert(g_ != nullptr && "factor() must be called before solve()");
    check_rows(b.size());
    linalg::Vec rhs = b;
    remove_component_means(rhs, labels_);
    const linalg::LinearOperator apply_a = [&](const linalg::Vec& x) {
      return graph::apply_laplacian(ctx, *g_, x);
    };
    const linalg::LinearOperator precond = [&](const linalg::Vec& r) {
      linalg::Vec z(r.size());
      for (std::size_t i = 0; i < r.size(); ++i)
        z[i] = diag_[i] > 0.0 ? r[i] / diag_[i] : 0.0;
      return z;
    };
    const auto res = linalg::conjugate_gradient(
        apply_a, rhs, opt_.eps,
        default_max_iter(g_->num_vertices(), opt_.max_iterations), &precond);
    charge(res.iterations);
    iterations_ += res.iterations;
    linalg::Vec x = res.x;
    remove_component_means(x, labels_);
    return x;
  }

  linalg::DenseMatrix solve_many(const common::Context& ctx,
                                 const linalg::DenseMatrix& b) override {
    assert(g_ != nullptr && "factor() must be called before solve_many()");
    check_rows(b.rows());
    const std::size_t k = b.cols();
    linalg::DenseMatrix rhs = b;
    for (std::size_t j = 0; j < k; ++j) {
      linalg::Vec col = rhs.column(j);
      remove_component_means(col, labels_);
      rhs.set_column(j, col);
    }
    const linalg::PanelOperator apply_a = [&](const linalg::DenseMatrix& x) {
      return graph::apply_laplacian_many(ctx, *g_, x);
    };
    const linalg::PanelOperator precond = [&](const linalg::DenseMatrix& r) {
      linalg::DenseMatrix z(r.rows(), r.cols());
      for (std::size_t i = 0; i < r.rows(); ++i) {
        const double* ri = r.row_data(i);
        double* zi = z.row_data(i);
        const double d = diag_[i];
        for (std::size_t j = 0; j < r.cols(); ++j)
          zi[j] = d > 0.0 ? ri[j] / d : 0.0;
      }
      return z;
    };
    const auto res = linalg::conjugate_gradient_many(
        apply_a, rhs, opt_.eps,
        default_max_iter(g_->num_vertices(), opt_.max_iterations), &precond);
    // Communication is charged per column (the panel amortizes wall time,
    // not broadcasts — same convention as the sparsified panel), and
    // iterations reports the panel's longest column, matching the
    // "per-column iterations" meaning of the other engines' panels.
    std::size_t longest = 0;
    for (std::size_t j = 0; j < k; ++j) {
      charge(res.iterations[j]);
      longest = std::max(longest, res.iterations[j]);
    }
    iterations_ += longest;
    ++panels_;
    linalg::DenseMatrix x = res.x;
    for (std::size_t j = 0; j < k; ++j) {
      linalg::Vec col = x.column(j);
      remove_component_means(col, labels_);
      x.set_column(j, col);
    }
    return x;
  }

  void report(core::RunStats* stats) const override {
    stats->engine = std::string(key());
    stats->iterations += iterations_;
    stats->rounds += rounds_;
    stats->panels += panels_;
  }

 private:
  void check_rows(std::size_t got) const {
    if (got != g_->num_vertices()) {
      throw std::invalid_argument(
          "cg engine: right-hand side has " + std::to_string(got) +
          " rows, graph has " + std::to_string(g_->num_vertices()) +
          " vertices");
    }
  }

  // One distributed L_G matvec broadcast per CG iteration — identical to
  // the Chebyshev iteration's accounting in SparsifiedLaplacianSolver.
  void charge(std::size_t iterations) {
    const int bits = enc::real_bits(
        static_cast<double>(g_->num_vertices()) * weight_bound_, opt_.eps);
    const std::int64_t per_iter = enc::rounds_for_bits(bits, bandwidth_);
    rounds_ += static_cast<std::int64_t>(iterations) * per_iter;
  }

  EngineOptions opt_;
  const graph::Graph* g_ = nullptr;
  std::vector<std::size_t> labels_;
  std::vector<double> diag_;
  std::int64_t bandwidth_ = 1;
  double weight_bound_ = 1.0;
  std::size_t iterations_ = 0;
  std::int64_t rounds_ = 0;
  std::size_t panels_ = 0;
};

// SDD-side CG: solves M x = y against the dense-stored SDD matrix with a
// Jacobi preconditioner, charging one broadcast per iteration under the
// same network model the exact SDD engines use.
class CgSddEngine final : public SddEngine {
 public:
  CgSddEngine(const common::Context& ctx, linalg::DenseMatrix m,
              std::size_t network_n)
      : ctx_(ctx),
        matrix_(std::move(m)),
        network_n_(std::max<std::size_t>(network_n, 2)) {
    diag_.assign(matrix_.rows(), 0.0);
    for (std::size_t i = 0; i < matrix_.rows(); ++i) diag_[i] = matrix_(i, i);
  }

  linalg::Vec solve(const linalg::Vec& y, double eps) override {
    const linalg::LinearOperator apply_a = [&](const linalg::Vec& x) {
      return matrix_.multiply(ctx_, x);
    };
    const linalg::LinearOperator precond = [&](const linalg::Vec& r) {
      linalg::Vec z(r.size());
      for (std::size_t i = 0; i < r.size(); ++i)
        z[i] = diag_[i] > 0.0 ? r[i] / diag_[i] : r[i];
      return z;
    };
    const auto res = linalg::conjugate_gradient(
        apply_a, y, eps, default_max_iter(matrix_.rows(), 0), &precond);
    charge(res.iterations, eps);
    return res.x;
  }

  std::int64_t rounds_charged() const override { return rounds_; }

  std::string_view key() const override { return "cg"; }

 private:
  void charge(std::size_t iterations, double eps) {
    const double safe = std::max(eps, 1e-12);
    const std::int64_t bits =
        enc::real_bits(static_cast<double>(network_n_) / safe, safe);
    const std::int64_t bw =
        static_cast<std::int64_t>(
            2 * std::log2(static_cast<double>(network_n_))) +
        2;
    rounds_ += static_cast<std::int64_t>(iterations) *
               enc::rounds_for_bits(bits, bw);
  }

  common::Context ctx_;
  linalg::DenseMatrix matrix_;
  std::vector<double> diag_;
  std::size_t network_n_;
  std::int64_t rounds_ = 0;
};

}  // namespace

void register_cg(EngineRegistry& registry) {
  registry.register_engine(
      "cg",
      [](const EngineOptions& opt) { return std::make_unique<CgEngine>(opt); },
      [](const common::Context& ctx, linalg::DenseMatrix m,
         const SddEngineOptions& opt) {
        return std::make_unique<CgSddEngine>(ctx, std::move(m),
                                             opt.network_n);
      });
}

}  // namespace bcclap::laplacian::engines
