// "sparsified-chebyshev": the paper pipeline (Theorem 1.3) — spectral
// sparsifier preconditioner + preconditioned Chebyshev — wrapped as a
// registry engine. This is the engine behind the facade's historical
// behavior: "auto" resolves here for every pre-registry anchor case
// (n < kSparseMinDim, eps above the exact cutoff), and the prepared
// artifact runs the byte-identical PR 6 code path.
#include <memory>

#include "laplacian/engine.h"
#include "laplacian/engines/builtin.h"

namespace bcclap::laplacian::engines {

namespace {

class SparsifiedChebyshevEngine final : public LaplacianEngine {
 public:
  using LaplacianEngine::LaplacianEngine;

  std::string_view key() const override { return "sparsified-chebyshev"; }

  std::shared_ptr<const PreparedLaplacian> prepare(
      const common::Context& ctx, const graph::Graph& g) const override {
    return prepare_sparsified_chebyshev(ctx, g, options().sparsify);
  }
};

}  // namespace

void register_sparsified_chebyshev(EngineRegistry& registry) {
  registry.register_engine(
      "sparsified-chebyshev",
      [](const EngineOptions& opt) {
        return std::make_unique<SparsifiedChebyshevEngine>(opt);
      },
      [](const common::Context& ctx, linalg::DenseMatrix m,
         const SddEngineOptions&) {
        return make_sparsified_sdd_engine(ctx, std::move(m));
      });
}

}  // namespace bcclap::laplacian::engines
