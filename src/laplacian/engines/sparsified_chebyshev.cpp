// "sparsified-chebyshev": the paper pipeline (Theorem 1.3) — spectral
// sparsifier preconditioner + preconditioned Chebyshev — wrapped as a
// registry engine. This is the engine behind the facade's historical
// behavior: "auto" resolves here for every pre-registry anchor case
// (n < kSparseMinDim, eps above the exact cutoff), and the wrapped
// SparsifiedLaplacianSolver runs the byte-identical PR 6 code path.
#include <cassert>
#include <memory>
#include <string>

#include "laplacian/engine.h"
#include "laplacian/engines/builtin.h"
#include "laplacian/solver.h"

namespace bcclap::laplacian::engines {

namespace {

class SparsifiedChebyshevEngine final : public LaplacianEngine {
 public:
  explicit SparsifiedChebyshevEngine(const EngineOptions& opt) : opt_(opt) {}

  std::string_view key() const override { return "sparsified-chebyshev"; }

  bool factor(const common::Context& ctx, const graph::Graph& g) override {
    // The solver captures the factoring context (its preconditioner lives
    // on that pool); later solve calls run on it regardless of the ctx
    // they pass — the facade always passes the same one.
    solver_ =
        std::make_unique<SparsifiedLaplacianSolver>(ctx, g, opt_.sparsify);
    return solver_->usable();
  }

  linalg::Vec solve(const common::Context&, const linalg::Vec& b) override {
    assert(solver_ && solver_->usable());
    SolveStats st;
    linalg::Vec x = solver_->solve(b, opt_.eps, &st);
    iterations_ += st.iterations;
    rounds_ += st.rounds;
    return x;
  }

  linalg::DenseMatrix solve_many(const common::Context&,
                                 const linalg::DenseMatrix& b) override {
    assert(solver_ && solver_->usable());
    SolveStats st;
    linalg::DenseMatrix x = solver_->solve_many(b, opt_.eps, &st);
    iterations_ += st.iterations;
    rounds_ += st.rounds;
    panels_ += st.panels;
    return x;
  }

  void report(core::RunStats* stats) const override {
    stats->engine = std::string(key());
    stats->iterations += iterations_;
    stats->rounds += rounds_;
    stats->panels += panels_;
    if (solver_) {
      stats->dense_factors += solver_->dense_factors();
      stats->sparse_factors += solver_->sparse_factors();
    }
  }

  const graph::Graph* sparsifier() const override {
    return solver_ ? &solver_->sparsifier() : nullptr;
  }

  bool tree_patched() const override {
    return solver_ && solver_->tree_patched();
  }

  std::int64_t preprocessing_rounds() const override {
    return solver_ ? solver_->preprocessing_rounds() : 0;
  }

 private:
  EngineOptions opt_;
  std::unique_ptr<SparsifiedLaplacianSolver> solver_;
  std::size_t iterations_ = 0;
  std::int64_t rounds_ = 0;
  std::size_t panels_ = 0;
};

}  // namespace

void register_sparsified_chebyshev(EngineRegistry& registry) {
  registry.register_engine(
      "sparsified-chebyshev",
      [](const EngineOptions& opt) {
        return std::make_unique<SparsifiedChebyshevEngine>(opt);
      },
      [](const common::Context& ctx, linalg::DenseMatrix m,
         const SddEngineOptions&) {
        return make_sparsified_sdd_engine(ctx, std::move(m));
      });
}

}  // namespace bcclap::laplacian::engines
