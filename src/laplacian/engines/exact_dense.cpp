// "exact-dense": grounded dense blocked LDL^T per connected component
// (linalg/cholesky.h with the dense backend pinned). The reference engine:
// exact to working precision, zero iterations, no preconditioner — models
// the local computation each node performs on a globally-known topology,
// so it charges no BCC rounds.
#include <cassert>
#include <stdexcept>
#include <string>

#include "graph/laplacian.h"
#include "laplacian/engine.h"
#include "laplacian/engines/builtin.h"
#include "linalg/cholesky.h"

namespace bcclap::laplacian::engines {

namespace {

class ExactDenseEngine final : public LaplacianEngine {
 public:
  std::string_view key() const override { return "exact-dense"; }

  bool factor(const common::Context& ctx, const graph::Graph& g) override {
    factor_ = linalg::ComponentLaplacianFactor::factor(
        ctx, graph::laplacian(g), linalg::FactorMode::kForceDense);
    return factor_.has_value();
  }

  linalg::Vec solve(const common::Context& ctx,
                    const linalg::Vec& b) override {
    assert(factor_ && "factor() must succeed before solve()");
    return factor_->solve(ctx, b);
  }

  linalg::DenseMatrix solve_many(const common::Context& ctx,
                                 const linalg::DenseMatrix& b) override {
    assert(factor_ && "factor() must succeed before solve_many()");
    ++panels_;
    return factor_->solve_many(ctx, b);
  }

  void report(core::RunStats* stats) const override {
    stats->engine = std::string(key());
    stats->panels += panels_;
    if (factor_) {
      stats->dense_factors += factor_->dense_factor_count();
      stats->sparse_factors += factor_->sparse_factor_count();
    }
  }

 private:
  std::optional<linalg::ComponentLaplacianFactor> factor_;
  std::size_t panels_ = 0;
};

}  // namespace

void register_exact_dense(EngineRegistry& registry) {
  registry.register_engine(
      "exact-dense",
      [](const EngineOptions&) {
        return std::make_unique<ExactDenseEngine>();
      },
      [](const common::Context& ctx, linalg::DenseMatrix m,
         const SddEngineOptions& opt) {
        return make_exact_sdd_engine(ctx, std::move(m), opt.network_n);
      });
}

}  // namespace bcclap::laplacian::engines
