// "exact-dense": grounded dense blocked LDL^T per connected component
// (linalg/cholesky.h with the dense backend pinned). The reference engine:
// exact to working precision, zero iterations, no preconditioner — models
// the local computation each node performs on a globally-known topology,
// so it charges no BCC rounds.
#include <memory>

#include "laplacian/engine.h"
#include "laplacian/engines/builtin.h"
#include "linalg/sparse_ldlt.h"

namespace bcclap::laplacian::engines {

namespace {

class ExactDenseEngine final : public LaplacianEngine {
 public:
  using LaplacianEngine::LaplacianEngine;

  std::string_view key() const override { return "exact-dense"; }

  std::shared_ptr<const PreparedLaplacian> prepare(
      const common::Context& ctx, const graph::Graph& g) const override {
    return prepare_exact(ctx, g, linalg::FactorMode::kForceDense, key());
  }
};

}  // namespace

void register_exact_dense(EngineRegistry& registry) {
  registry.register_engine(
      "exact-dense",
      [](const EngineOptions& opt) {
        return std::make_unique<ExactDenseEngine>(opt);
      },
      [](const common::Context& ctx, linalg::DenseMatrix m,
         const SddEngineOptions& opt) {
        return make_exact_sdd_engine(ctx, std::move(m), opt.network_n);
      });
}

}  // namespace bcclap::laplacian::engines
