#include "laplacian/prepared.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <optional>
#include <queue>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bcc/network.h"
#include "common/encoding.h"
#include "graph/laplacian.h"
#include "linalg/cg.h"
#include "linalg/chebyshev.h"
#include "linalg/cholesky.h"

namespace bcclap::laplacian {

namespace {

// Spanning forest edges of g (BFS per component); used to patch a
// sparsifier that lost connectivity within some component of G.
std::vector<graph::EdgeId> spanning_forest(const graph::Graph& g) {
  std::vector<graph::EdgeId> forest;
  std::vector<bool> seen(g.num_vertices(), false);
  for (graph::VertexId root = 0; root < g.num_vertices(); ++root) {
    if (seen[root]) continue;
    std::queue<graph::VertexId> q;
    q.push(root);
    seen[root] = true;
    while (!q.empty()) {
      const auto v = q.front();
      q.pop();
      for (graph::EdgeId e : g.incident(v)) {
        const auto u = g.other_endpoint(e, v);
        if (!seen[u]) {
          seen[u] = true;
          forest.push_back(e);
          q.push(u);
        }
      }
    }
  }
  return forest;
}

// Removes the per-component mean (projection onto range(L_G)).
void remove_component_means(linalg::Vec& x,
                            const std::vector<std::size_t>& labels) {
  std::size_t k = 0;
  for (std::size_t l : labels) k = std::max(k, l + 1);
  std::vector<double> sum(k, 0.0);
  std::vector<std::size_t> count(k, 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum[labels[i]] += x[i];
    ++count[labels[i]];
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] -= sum[labels[i]] / static_cast<double>(count[labels[i]]);
  }
}

// Explicit apply-surface size check (carried over from the solve-path
// bugfix sweep): a wrong-sized rhs in a Release build must fail loudly,
// not read out of bounds inside the matvec kernels.
void check_rhs_rows(const char* where, std::size_t got, std::size_t want) {
  if (got != want) {
    throw std::invalid_argument(std::string(where) +
                                ": right-hand side has " +
                                std::to_string(got) + " rows, graph has " +
                                std::to_string(want) + " vertices");
  }
}

// Approximate resident bytes of a graph copy: the edge list plus the
// incidence lists (2 entries per edge, one header per vertex).
std::size_t graph_bytes(const graph::Graph& g) {
  return g.num_edges() * (sizeof(graph::Edge) + 2 * sizeof(graph::EdgeId)) +
         g.num_vertices() * sizeof(std::vector<graph::EdgeId>);
}

// ---- exact engines -------------------------------------------------------

class PreparedExact final : public PreparedLaplacian {
 public:
  PreparedExact(const common::Context& ctx, const graph::Graph& g,
                linalg::FactorMode mode, std::string_view engine_key)
      : key_(engine_key),
        n_(g.num_vertices()),
        factor_(linalg::ComponentLaplacianFactor::factor(
            ctx, graph::laplacian(g), mode)) {}

  std::string_view engine_key() const override { return key_; }
  bool usable() const override { return factor_.has_value(); }
  std::size_t dim() const override { return n_; }

  linalg::Vec apply(const common::Context& ctx, const linalg::Vec& b,
                    const EngineOptions&, core::RunStats* stats) const override {
    assert(factor_ && "apply() requires usable()");
    if (stats) *stats = make_stats();
    return factor_->solve(ctx, b);
  }

  linalg::DenseMatrix apply_many(const common::Context& ctx,
                                 const linalg::DenseMatrix& b,
                                 const EngineOptions&,
                                 core::RunStats* stats) const override {
    assert(factor_ && "apply() requires usable()");
    if (stats) {
      *stats = make_stats();
      stats->panels = 1;
    }
    return factor_->solve_many(ctx, b);
  }

  std::size_t dense_factors() const override {
    return factor_ ? factor_->dense_factor_count() : 0;
  }
  std::size_t sparse_factors() const override {
    return factor_ ? factor_->sparse_factor_count() : 0;
  }
  linalg::SparseFactorPhases factor_phases() const override {
    return factor_ ? factor_->factor_phases() : linalg::SparseFactorPhases{};
  }
  std::size_t resident_bytes() const override {
    return factor_ ? factor_->resident_bytes() : 0;
  }

 private:
  core::RunStats make_stats() const {
    core::RunStats st;
    st.dense_factors = dense_factors();
    st.sparse_factors = sparse_factors();
    return st;
  }

  std::string key_;
  std::size_t n_;
  std::optional<linalg::ComponentLaplacianFactor> factor_;
};

// ---- sparsified + Chebyshev (the paper pipeline) -------------------------

class PreparedSparsifiedChebyshev final : public PreparedLaplacian {
 public:
  PreparedSparsifiedChebyshev(const common::Context& ctx,
                              const graph::Graph& g,
                              const sparsify::SparsifyOptions& opt)
      : g_(g) {
    bandwidth_ = bcc::Network::default_bandwidth(g_.num_vertices());
    bcc::Network net(bcc::Model::kBroadcastCongest, g_, bandwidth_, ctx);
    auto sp = sparsify::spectral_sparsify(ctx, g_, opt, net);
    preprocessing_rounds_ = sp.rounds;
    h_ = std::move(sp.sparsifier);
    g_components_ = g_.component_labels();
    weight_bound_ = std::max({g_.max_weight(), h_.max_weight(), 1.0});

    if (h_.num_components() > g_.num_components()) {
      // Guard: with bench-scale bundle constants the sparsifier can lose
      // connectivity; union a spanning forest of G (each forest edge is
      // one broadcast, <= n-1 rounds) and refactor.
      tree_patched_ = true;
      for (graph::EdgeId e : spanning_forest(g_)) {
        const auto& ed = g_.edge(e);
        if (!h_.find_edge(ed.u, ed.v)) h_.add_edge(ed.u, ed.v, ed.weight);
      }
      net.charge("laplacian/tree-patch",
                 static_cast<std::int64_t>(g_.num_vertices()));
      preprocessing_rounds_ += static_cast<std::int64_t>(g_.num_vertices());
    }
    h_factor_ =
        linalg::ComponentLaplacianFactor::factor(ctx, graph::laplacian(h_));
    if (!h_factor_) {
      // Extreme weight spreads (IPM-generated virtual graphs) can defeat
      // the sparsifier factorization numerically; fall back to
      // preconditioning with G itself. Correctness is unchanged
      // (kappa = 1), only the speedup claim is forfeited for this
      // instance.
      tree_patched_ = true;
      h_ = g_;
      h_factor_ =
          linalg::ComponentLaplacianFactor::factor(ctx, graph::laplacian(h_));
    }
  }

  std::string_view engine_key() const override {
    return "sparsified-chebyshev";
  }
  bool usable() const override { return h_factor_.has_value(); }
  std::size_t dim() const override { return g_.num_vertices(); }

  linalg::Vec apply(const common::Context& ctx, const linalg::Vec& b,
                    const EngineOptions& opt,
                    core::RunStats* stats) const override {
    assert(h_factor_ && "apply() requires usable()");
    check_rhs_rows("SparsifiedLaplacianSolver::solve", b.size(),
                   g_.num_vertices());
    linalg::Vec rhs = b;
    remove_component_means(rhs, g_components_);

    const auto apply_a = [&](const linalg::Vec& x) {
      return graph::apply_laplacian(ctx, g_, x);
    };
    // B = (3/2) L_H  =>  B^{-1} r = (2/3) L_H^+ r.
    const auto solve_b = [&](const linalg::Vec& r) {
      return linalg::scale(h_factor_->solve(ctx, r), 2.0 / 3.0);
    };
    const auto res = linalg::preconditioned_chebyshev(apply_a, solve_b, rhs,
                                                      3.0, opt.eps);

    // Round accounting (Theorem 1.3): each iteration broadcasts one vector
    // coordinate per node at O(log(n U / eps)) bits.
    const std::int64_t rounds =
        static_cast<std::int64_t>(res.iterations) * rounds_per_iter(opt.eps);
    if (stats) {
      core::RunStats st;
      st.iterations = res.iterations;
      st.rounds = rounds;
      st.dense_factors = dense_factors();
      st.sparse_factors = sparse_factors();
      *stats = st;
    }
    linalg::Vec y = res.x;
    remove_component_means(y, g_components_);
    return y;
  }

  linalg::DenseMatrix apply_many(const common::Context& ctx,
                                 const linalg::DenseMatrix& b,
                                 const EngineOptions& opt,
                                 core::RunStats* stats) const override {
    assert(h_factor_ && "apply() requires usable()");
    check_rhs_rows("SparsifiedLaplacianSolver::solve_many", b.rows(),
                   g_.num_vertices());
    const std::size_t k = b.cols();
    linalg::DenseMatrix rhs = b;
    for (std::size_t j = 0; j < k; ++j) {
      linalg::Vec col = rhs.column(j);
      remove_component_means(col, g_components_);
      rhs.set_column(j, col);
    }

    const auto apply_a = [&](const linalg::DenseMatrix& x) {
      return graph::apply_laplacian_many(ctx, g_, x);
    };
    // B = (3/2) L_H  =>  B^{-1} R = (2/3) L_H^+ R, one panel solve per
    // iteration shared by every column.
    const auto solve_b = [&](const linalg::DenseMatrix& r) {
      linalg::DenseMatrix z = h_factor_->solve_many(ctx, r);
      for (std::size_t i = 0; i < z.rows(); ++i) {
        double* zi = z.row_data(i);
        for (std::size_t j = 0; j < z.cols(); ++j) zi[j] *= 2.0 / 3.0;
      }
      return z;
    };
    const auto res = linalg::preconditioned_chebyshev_many(apply_a, solve_b,
                                                           rhs, 3.0, opt.eps);

    // Round accounting: each column still broadcasts its own vector per
    // iteration — a k-wide panel costs k x the single-RHS rounds (the
    // model charges communication; the batching amortizes wall time only).
    const std::int64_t rounds = static_cast<std::int64_t>(k) *
                                static_cast<std::int64_t>(res.iterations) *
                                rounds_per_iter(opt.eps);
    if (stats) {
      core::RunStats st;
      st.iterations = res.iterations;
      st.rounds = rounds;
      st.panels = 1;
      st.dense_factors = dense_factors();
      st.sparse_factors = sparse_factors();
      *stats = st;
    }
    linalg::DenseMatrix y = res.x;
    for (std::size_t j = 0; j < k; ++j) {
      linalg::Vec col = y.column(j);
      remove_component_means(col, g_components_);
      y.set_column(j, col);
    }
    return y;
  }

  const graph::Graph* sparsifier() const override { return &h_; }
  bool tree_patched() const override { return tree_patched_; }
  std::int64_t preprocessing_rounds() const override {
    return preprocessing_rounds_;
  }
  std::size_t dense_factors() const override {
    return h_factor_ ? h_factor_->dense_factor_count() : 0;
  }
  std::size_t sparse_factors() const override {
    return h_factor_ ? h_factor_->sparse_factor_count() : 0;
  }
  linalg::SparseFactorPhases factor_phases() const override {
    return h_factor_ ? h_factor_->factor_phases()
                     : linalg::SparseFactorPhases{};
  }
  std::size_t sparsify_count() const override { return 1; }
  std::size_t resident_bytes() const override {
    return graph_bytes(g_) + graph_bytes(h_) +
           g_components_.size() * sizeof(std::size_t) +
           (h_factor_ ? h_factor_->resident_bytes() : 0);
  }

 private:
  std::int64_t rounds_per_iter(double eps) const {
    const int bits = enc::real_bits(
        static_cast<double>(g_.num_vertices()) * weight_bound_, eps);
    return enc::rounds_for_bits(bits, bandwidth_);
  }

  graph::Graph g_;
  graph::Graph h_;
  std::vector<std::size_t> g_components_;
  std::optional<linalg::ComponentLaplacianFactor> h_factor_;
  std::int64_t preprocessing_rounds_ = 0;
  bool tree_patched_ = false;
  std::int64_t bandwidth_ = 1;
  double weight_bound_ = 1.0;
};

// ---- Jacobi-preconditioned CG baseline -----------------------------------

std::size_t default_max_iter(std::size_t n, std::size_t requested) {
  return requested != 0 ? requested : 4 * n + 128;
}

class PreparedCg final : public PreparedLaplacian {
 public:
  explicit PreparedCg(const graph::Graph& g)
      : g_(g), labels_(g.component_labels()) {
    // Jacobi preconditioner: D = diag(L_G) = weighted degrees. Isolated
    // vertices have a zero diagonal; their residual is identically zero
    // after projection, so their preconditioned entry is pinned to zero.
    const std::size_t n = g_.num_vertices();
    diag_.assign(n, 0.0);
    for (const auto& e : g_.edges()) {
      diag_[e.u] += e.weight;
      diag_[e.v] += e.weight;
    }
    bandwidth_ = bcc::Network::default_bandwidth(n);
    weight_bound_ = std::max(g_.max_weight(), 1.0);
  }

  std::string_view engine_key() const override { return "cg"; }
  bool usable() const override { return true; }
  std::size_t dim() const override { return g_.num_vertices(); }

  linalg::Vec apply(const common::Context& ctx, const linalg::Vec& b,
                    const EngineOptions& opt,
                    core::RunStats* stats) const override {
    check_rhs_rows("cg engine", b.size(), g_.num_vertices());
    linalg::Vec rhs = b;
    remove_component_means(rhs, labels_);
    const linalg::LinearOperator apply_a = [&](const linalg::Vec& x) {
      return graph::apply_laplacian(ctx, g_, x);
    };
    const linalg::LinearOperator precond = [&](const linalg::Vec& r) {
      linalg::Vec z(r.size());
      for (std::size_t i = 0; i < r.size(); ++i)
        z[i] = diag_[i] > 0.0 ? r[i] / diag_[i] : 0.0;
      return z;
    };
    const auto res = linalg::conjugate_gradient(
        apply_a, rhs, opt.eps,
        default_max_iter(g_.num_vertices(), opt.max_iterations), &precond);
    if (stats) {
      core::RunStats st;
      st.iterations = res.iterations;
      st.rounds = rounds_for(res.iterations, opt.eps);
      *stats = st;
    }
    linalg::Vec x = res.x;
    remove_component_means(x, labels_);
    return x;
  }

  linalg::DenseMatrix apply_many(const common::Context& ctx,
                                 const linalg::DenseMatrix& b,
                                 const EngineOptions& opt,
                                 core::RunStats* stats) const override {
    check_rhs_rows("cg engine", b.rows(), g_.num_vertices());
    const std::size_t k = b.cols();
    linalg::DenseMatrix rhs = b;
    for (std::size_t j = 0; j < k; ++j) {
      linalg::Vec col = rhs.column(j);
      remove_component_means(col, labels_);
      rhs.set_column(j, col);
    }
    const linalg::PanelOperator apply_a = [&](const linalg::DenseMatrix& x) {
      return graph::apply_laplacian_many(ctx, g_, x);
    };
    const linalg::PanelOperator precond = [&](const linalg::DenseMatrix& r) {
      linalg::DenseMatrix z(r.rows(), r.cols());
      for (std::size_t i = 0; i < r.rows(); ++i) {
        const double* ri = r.row_data(i);
        double* zi = z.row_data(i);
        const double d = diag_[i];
        for (std::size_t j = 0; j < r.cols(); ++j)
          zi[j] = d > 0.0 ? ri[j] / d : 0.0;
      }
      return z;
    };
    const auto res = linalg::conjugate_gradient_many(
        apply_a, rhs, opt.eps,
        default_max_iter(g_.num_vertices(), opt.max_iterations), &precond);
    // Communication is charged per column (the panel amortizes wall time,
    // not broadcasts — same convention as the sparsified panel), and
    // iterations reports the panel's longest column, matching the
    // "per-column iterations" meaning of the other engines' panels.
    std::int64_t rounds = 0;
    std::size_t longest = 0;
    for (std::size_t j = 0; j < k; ++j) {
      rounds += rounds_for(res.iterations[j], opt.eps);
      longest = std::max(longest, res.iterations[j]);
    }
    if (stats) {
      core::RunStats st;
      st.iterations = longest;
      st.rounds = rounds;
      st.panels = 1;
      *stats = st;
    }
    linalg::DenseMatrix x = res.x;
    for (std::size_t j = 0; j < k; ++j) {
      linalg::Vec col = x.column(j);
      remove_component_means(col, labels_);
      x.set_column(j, col);
    }
    return x;
  }

  std::size_t resident_bytes() const override {
    return graph_bytes(g_) + labels_.size() * sizeof(std::size_t) +
           diag_.size() * sizeof(double);
  }

 private:
  // One distributed L_G matvec broadcast per CG iteration — identical to
  // the Chebyshev iteration's accounting in PreparedSparsifiedChebyshev.
  std::int64_t rounds_for(std::size_t iterations, double eps) const {
    const int bits = enc::real_bits(
        static_cast<double>(g_.num_vertices()) * weight_bound_, eps);
    const std::int64_t per_iter = enc::rounds_for_bits(bits, bandwidth_);
    return static_cast<std::int64_t>(iterations) * per_iter;
  }

  graph::Graph g_;
  std::vector<std::size_t> labels_;
  std::vector<double> diag_;
  std::int64_t bandwidth_ = 1;
  double weight_bound_ = 1.0;
};

}  // namespace

std::shared_ptr<const PreparedLaplacian> prepare_exact(
    const common::Context& ctx, const graph::Graph& g, linalg::FactorMode mode,
    std::string_view engine_key) {
  return std::make_shared<PreparedExact>(ctx, g, mode, engine_key);
}

std::shared_ptr<const PreparedLaplacian> prepare_sparsified_chebyshev(
    const common::Context& ctx, const graph::Graph& g,
    const sparsify::SparsifyOptions& opt) {
  return std::make_shared<PreparedSparsifiedChebyshev>(ctx, g, opt);
}

std::shared_ptr<const PreparedLaplacian> prepare_cg(const common::Context&,
                                                    const graph::Graph& g) {
  return std::make_shared<PreparedCg>(g);
}

}  // namespace bcclap::laplacian
