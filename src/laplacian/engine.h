// Pluggable solver-engine registry (ROADMAP: "pluggable engine registry").
//
// Before this layer the choice between the exact-dense, exact-sparse and
// sparsified+Chebyshev solve paths was hard-coded in three ad-hoc seams
// (`make_*_sdd_engine`, `sparse_path_selected`, the Runtime facade naming
// SparsifiedLaplacianSolver directly). EngineRegistry generalizes PR 6's
// dense/sparse dispatch into one string-keyed factory:
//
//   key                      algorithm
//   "exact-dense"            grounded dense blocked LDL^T per component
//   "exact-sparse"           grounded sparse CSC LDL^T per component
//   "sparsified-chebyshev"   spectral sparsifier + preconditioned
//                            Chebyshev (Theorem 1.3 — the paper pipeline)
//   "cg"                     Jacobi-preconditioned conjugate gradient
//                            (baseline / ablation; never auto-selected)
//   "auto"                   tuner: picks one of the above per instance
//                            from (n, stored density, requested eps)
//
// Engines solve Laplacian systems behind the LaplacianEngine interface
// and SDD systems behind the existing SddEngine interface (bcc_solver.h);
// both are constructed by key, so a new backend plugs in by registering
// itself and touches no dispatch code. Selection can be forced
// process-wide with BCCLAP_ENGINE=<key> (consulted whenever "auto" is
// requested; an explicit key in options wins over the environment,
// mirroring how set_factor_mode wins over BCCLAP_FACTOR_PATH). Unknown
// keys throw std::invalid_argument listing the registered keys; unknown
// BCCLAP_ENGINE values warn once and fall back to the tuner (same policy
// as BCCLAP_FACTOR_PATH).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/context.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "laplacian/bcc_solver.h"
#include "laplacian/prepared.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace bcclap::laplacian {

// Unified Laplacian-solver interface the registry vends, split along the
// prepare/apply seam (laplacian/prepared.h):
//
//   prepare(ctx, g)  — the ONE engine-specific virtual besides key():
//                      runs the per-topology work and returns the
//                      immutable artifact.
//   factor / adopt   — install an artifact: factor() prepares here;
//                      adopt() installs one prepared elsewhere (a
//                      factorization-cache hit), after which this engine
//                      reports none of the prepare-phase cost — it did
//                      none of the work.
//   solve / solve_many — base-class applies against the artifact,
//                      accumulating per-request counters (iterations,
//                      rounds, panels) across calls.
//   report()         — folds the accumulated counters into a RunStats and
//                      stamps the engine key; prepare-phase tallies
//                      (dense/sparse factors, sparsify count,
//                      preprocessing rounds) are included only when the
//                      artifact was prepared by this engine. rounds
//                      excludes preprocessing_rounds() — the facade adds
//                      that separately, preserving the PR 6 reporting
//                      split.
//
// Engines are cheap, stateful, per-run objects; the artifact is the
// expensive shared value.
class LaplacianEngine {
 public:
  explicit LaplacianEngine(const EngineOptions& opt) : opt_(opt) {}
  virtual ~LaplacianEngine() = default;

  virtual std::string_view key() const = 0;

  // The engine's prepare phase: all per-topology work (sparsify, order,
  // factor), honoring the prepare-time fields of options(). Never null;
  // numerical failure is reported via the artifact's usable().
  virtual std::shared_ptr<const PreparedLaplacian> prepare(
      const common::Context& ctx, const graph::Graph& g) const = 0;

  // Prepares an artifact here and installs it. False = numerically
  // degenerate input (artifact unusable); do not solve.
  bool factor(const common::Context& ctx, const graph::Graph& g);

  // Installs an artifact prepared elsewhere (cache hit / shared value).
  // Requires artifact && artifact->usable().
  void adopt(std::shared_ptr<const PreparedLaplacian> artifact);

  // Solve L_G x = b (b projected onto range(L_G) per component) to the
  // engine's accuracy contract at EngineOptions::eps. Throws
  // std::invalid_argument on a wrong-sized b.
  linalg::Vec solve(const common::Context& ctx, const linalg::Vec& b);

  // Batched multi-RHS form; column j is byte-identical (exact engines) or
  // matches the single-RHS path's contract (iterative engines) of
  // solve(ctx, column j).
  linalg::DenseMatrix solve_many(const common::Context& ctx,
                                 const linalg::DenseMatrix& b);

  // Adds the counters accumulated since construction into *stats and sets
  // stats->engine to key().
  void report(core::RunStats* stats) const;

  // Preconditioner introspection, delegated to the artifact; non-null
  // only for engines that build one (the sparsified engine exposes H here
  // for the facade's LaplacianRun::sparsifier field).
  const graph::Graph* sparsifier() const;
  bool tree_patched() const;

  // Rounds the prepare phase charged — 0 when the artifact was adopted
  // (the preprocessing happened in some earlier run, which already
  // reported it).
  std::int64_t preprocessing_rounds() const;

  const EngineOptions& options() const { return opt_; }

  // The installed artifact (null before factor()/adopt()), shareable with
  // other engines and the factorization cache.
  std::shared_ptr<const PreparedLaplacian> prepared() const {
    return prepared_;
  }
  // True when the installed artifact was prepared by this engine's own
  // factor() call rather than adopted.
  bool prepared_here() const { return prepared_here_; }

 private:
  EngineOptions opt_;
  std::shared_ptr<const PreparedLaplacian> prepared_;
  bool prepared_here_ = false;
  std::size_t iterations_ = 0;
  std::int64_t rounds_ = 0;
  std::size_t panels_ = 0;
};

// Configuration for SDD engines built by key (the LP layer's Newton
// systems): `network_n` is the BCC network size the round model charges
// against, `eps_hint` the accuracy the caller will request — the auto
// tuner uses it the way it uses eps for Laplacian engines.
struct SddEngineOptions {
  std::size_t network_n = 2;
  double eps_hint = 1e-12;
};

// Auto-tuner thresholds. Dimension/density reuse the PR 6 factorization
// dispatch constants (linalg/sparse_ldlt.h): at or above kSparseMinDim
// and at or below kSparseMaxDensity stored density the exact sparse path
// wins outright, and keeping the bar above 256 pins every historical
// n=256 anchor to the sparsified pipeline byte for byte. Below that,
// accuracy decides: at eps <= kAutoExactEps the Chebyshev iteration count
// no longer beats a direct factorization, so "auto" goes exact-dense.
inline constexpr double kAutoExactEps = 1e-10;

class EngineRegistry {
 public:
  using GraphFactory =
      std::function<std::unique_ptr<LaplacianEngine>(const EngineOptions&)>;
  using SddFactory = std::function<std::unique_ptr<SddEngine>(
      const common::Context&, linalg::DenseMatrix, const SddEngineOptions&)>;

  // The process-wide registry, with the built-in engines registered on
  // first use (an explicit bootstrap list in engine_registry.cpp — static
  // self-registration would be dead-stripped out of the static archive).
  static EngineRegistry& instance();

  // Registers (or replaces — latest wins, a seam for test doubles) the
  // factories behind `key`. `sdd_factory` may be null for engines that
  // only solve graph Laplacians.
  void register_engine(std::string key, GraphFactory graph_factory,
                       SddFactory sdd_factory = nullptr);

  bool registered(const std::string& key) const;

  // Registered concrete keys, sorted; "auto" is a selector, not an entry.
  std::vector<std::string> keys() const;

  // Maps a requested key to the concrete key that will serve an instance
  // with `n` unknowns, `density` stored-entry density and accuracy target
  // `eps`. "auto" (or empty) consults BCCLAP_ENGINE first, then the
  // tuner; any other key must be registered or this throws
  // std::invalid_argument listing the registered keys.
  std::string resolve(const std::string& requested, std::size_t n,
                      double density, double eps) const;

  // Builds the Laplacian engine behind a *concrete* key (callers resolve
  // "auto" first — the tuner needs the instance shape, which only the
  // caller has). Throws std::invalid_argument on unknown keys and on
  // "auto".
  std::unique_ptr<LaplacianEngine> create(const std::string& key,
                                          const EngineOptions& opt) const;

  // Builds an SDD engine for the dense matrix m. "auto" is resolved here
  // (from m's dimension, its scanned nonzero density and opt.eps_hint).
  // Throws std::invalid_argument on unknown keys and on keys registered
  // without an SDD factory.
  std::unique_ptr<SddEngine> create_sdd(const std::string& key,
                                        const common::Context& ctx,
                                        linalg::DenseMatrix m,
                                        const SddEngineOptions& opt) const;

  // The tuner, exposed for tests: exact-sparse at (n >= kSparseMinDim,
  // density <= kSparseMaxDensity), exact-dense at eps <= kAutoExactEps,
  // else sparsified-chebyshev. "cg" is never auto-selected.
  static std::string auto_select(std::size_t n, double density, double eps);

  // Stored-entry density of g's Laplacian, (n + 2m) / n^2 — the quantity
  // the tuner compares against kSparseMaxDensity.
  static double laplacian_density(const graph::Graph& g);

 private:
  struct Entry {
    GraphFactory graph_factory;
    SddFactory sdd_factory;
  };

  EngineRegistry() = default;

  // Returns a copy: a reference into entries_ could be invalidated by a
  // concurrent register_engine (latest-wins replacement, test seam).
  Entry entry_or_throw(const std::string& key) const;
  [[noreturn]] void throw_unknown_key(const std::string& key) const;

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Entry>> entries_;  // insertion order
};

}  // namespace bcclap::laplacian
