// Pluggable solver-engine registry (ROADMAP: "pluggable engine registry").
//
// Before this layer the choice between the exact-dense, exact-sparse and
// sparsified+Chebyshev solve paths was hard-coded in three ad-hoc seams
// (`make_*_sdd_engine`, `sparse_path_selected`, the Runtime facade naming
// SparsifiedLaplacianSolver directly). EngineRegistry generalizes PR 6's
// dense/sparse dispatch into one string-keyed factory:
//
//   key                      algorithm
//   "exact-dense"            grounded dense blocked LDL^T per component
//   "exact-sparse"           grounded sparse CSC LDL^T per component
//   "sparsified-chebyshev"   spectral sparsifier + preconditioned
//                            Chebyshev (Theorem 1.3 — the paper pipeline)
//   "cg"                     Jacobi-preconditioned conjugate gradient
//                            (baseline / ablation; never auto-selected)
//   "auto"                   tuner: picks one of the above per instance
//                            from (n, stored density, requested eps)
//
// Engines solve Laplacian systems behind the LaplacianEngine interface
// (factor / solve / solve_many) and SDD systems behind the existing
// SddEngine interface (bcc_solver.h); both are constructed by key, so a
// new backend plugs in by registering itself and touches no dispatch
// code. Selection can be forced process-wide with BCCLAP_ENGINE=<key>
// (consulted whenever "auto" is requested; an explicit key in options
// wins over the environment, mirroring how set_factor_mode wins over
// BCCLAP_FACTOR_PATH). Unknown keys throw std::invalid_argument listing
// the registered keys; unknown BCCLAP_ENGINE values warn once and fall
// back to the tuner (same policy as BCCLAP_FACTOR_PATH).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/context.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "laplacian/bcc_solver.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"
#include "sparsify/spectral_sparsify.h"

namespace bcclap::laplacian {

// Per-instance engine configuration. Every engine reads `eps`; the
// sparsified engine reads `sparsify`; the CG engine reads
// `max_iterations` (0 = 4n + 128, a generous cap for a baseline solver).
struct EngineOptions {
  double eps = 1e-8;
  sparsify::SparsifyOptions sparsify;
  std::size_t max_iterations = 0;
};

// Unified Laplacian-solver interface the registry vends. Lifecycle:
// factor(ctx, g) once (false = numerically degenerate input, do not
// solve), then any number of solve / solve_many calls. The graph must
// outlive the engine (engines hold a reference, like
// SparsifiedLaplacianSolver). Engines accumulate their counters across
// solves; report() folds them into a RunStats and stamps the engine key.
class LaplacianEngine {
 public:
  virtual ~LaplacianEngine() = default;

  virtual std::string_view key() const = 0;

  virtual bool factor(const common::Context& ctx, const graph::Graph& g) = 0;

  // Solve L_G x = b (b projected onto range(L_G) per component) to the
  // engine's accuracy contract at EngineOptions::eps. Throws
  // std::invalid_argument on a wrong-sized b.
  virtual linalg::Vec solve(const common::Context& ctx,
                            const linalg::Vec& b) = 0;

  // Batched multi-RHS form; column j is byte-identical (exact engines) or
  // matches the single-RHS path's contract (iterative engines) of
  // solve(ctx, column j).
  virtual linalg::DenseMatrix solve_many(const common::Context& ctx,
                                         const linalg::DenseMatrix& b) = 0;

  // Adds the counters accumulated since construction into *stats and sets
  // stats->engine to key(). rounds excludes preprocessing_rounds() — the
  // facade adds that separately, preserving the PR 6 reporting split.
  virtual void report(core::RunStats* stats) const = 0;

  // Preconditioner introspection; non-null only for engines that build
  // one (the sparsified engine exposes H here for the facade's
  // LaplacianRun::sparsifier field).
  virtual const graph::Graph* sparsifier() const { return nullptr; }
  virtual bool tree_patched() const { return false; }
  virtual std::int64_t preprocessing_rounds() const { return 0; }
};

// Configuration for SDD engines built by key (the LP layer's Newton
// systems): `network_n` is the BCC network size the round model charges
// against, `eps_hint` the accuracy the caller will request — the auto
// tuner uses it the way it uses eps for Laplacian engines.
struct SddEngineOptions {
  std::size_t network_n = 2;
  double eps_hint = 1e-12;
};

// Auto-tuner thresholds. Dimension/density reuse the PR 6 factorization
// dispatch constants (linalg/sparse_ldlt.h): at or above kSparseMinDim
// and at or below kSparseMaxDensity stored density the exact sparse path
// wins outright, and keeping the bar above 256 pins every historical
// n=256 anchor to the sparsified pipeline byte for byte. Below that,
// accuracy decides: at eps <= kAutoExactEps the Chebyshev iteration count
// no longer beats a direct factorization, so "auto" goes exact-dense.
inline constexpr double kAutoExactEps = 1e-10;

class EngineRegistry {
 public:
  using GraphFactory =
      std::function<std::unique_ptr<LaplacianEngine>(const EngineOptions&)>;
  using SddFactory = std::function<std::unique_ptr<SddEngine>(
      const common::Context&, linalg::DenseMatrix, const SddEngineOptions&)>;

  // The process-wide registry, with the built-in engines registered on
  // first use (an explicit bootstrap list in engine_registry.cpp — static
  // self-registration would be dead-stripped out of the static archive).
  static EngineRegistry& instance();

  // Registers (or replaces — latest wins, a seam for test doubles) the
  // factories behind `key`. `sdd_factory` may be null for engines that
  // only solve graph Laplacians.
  void register_engine(std::string key, GraphFactory graph_factory,
                       SddFactory sdd_factory = nullptr);

  bool registered(const std::string& key) const;

  // Registered concrete keys, sorted; "auto" is a selector, not an entry.
  std::vector<std::string> keys() const;

  // Maps a requested key to the concrete key that will serve an instance
  // with `n` unknowns, `density` stored-entry density and accuracy target
  // `eps`. "auto" (or empty) consults BCCLAP_ENGINE first, then the
  // tuner; any other key must be registered or this throws
  // std::invalid_argument listing the registered keys.
  std::string resolve(const std::string& requested, std::size_t n,
                      double density, double eps) const;

  // Builds the Laplacian engine behind a *concrete* key (callers resolve
  // "auto" first — the tuner needs the instance shape, which only the
  // caller has). Throws std::invalid_argument on unknown keys and on
  // "auto".
  std::unique_ptr<LaplacianEngine> create(const std::string& key,
                                          const EngineOptions& opt) const;

  // Builds an SDD engine for the dense matrix m. "auto" is resolved here
  // (from m's dimension, its scanned nonzero density and opt.eps_hint).
  // Throws std::invalid_argument on unknown keys and on keys registered
  // without an SDD factory.
  std::unique_ptr<SddEngine> create_sdd(const std::string& key,
                                        const common::Context& ctx,
                                        linalg::DenseMatrix m,
                                        const SddEngineOptions& opt) const;

  // The tuner, exposed for tests: exact-sparse at (n >= kSparseMinDim,
  // density <= kSparseMaxDensity), exact-dense at eps <= kAutoExactEps,
  // else sparsified-chebyshev. "cg" is never auto-selected.
  static std::string auto_select(std::size_t n, double density, double eps);

  // Stored-entry density of g's Laplacian, (n + 2m) / n^2 — the quantity
  // the tuner compares against kSparseMaxDensity.
  static double laplacian_density(const graph::Graph& g);

 private:
  struct Entry {
    GraphFactory graph_factory;
    SddFactory sdd_factory;
  };

  EngineRegistry() = default;

  // Returns a copy: a reference into entries_ could be invalidated by a
  // concurrent register_engine (latest-wins replacement, test seam).
  Entry entry_or_throw(const std::string& key) const;
  [[noreturn]] void throw_unknown_key(const std::string& key) const;

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Entry>> entries_;  // insertion order
};

}  // namespace bcclap::laplacian
