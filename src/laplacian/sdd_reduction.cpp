#include "laplacian/sdd_reduction.h"

#include <cassert>
#include <cmath>

namespace bcclap::laplacian {

SddReduction gremban_reduce(const linalg::DenseMatrix& m, double tol) {
  SddReduction out;
  const std::size_t n = m.rows();
  if (n == 0 || m.cols() != n) return out;
  out.virtual_graph = graph::Graph(2 * n);

  for (std::size_t u = 0; u < n; ++u) {
    double offdiag_abs = 0.0;
    for (std::size_t v = 0; v < n; ++v) {
      if (v == u) continue;
      offdiag_abs += std::abs(m(u, v));
    }
    const double slack = m(u, u) - offdiag_abs;
    if (slack < -1e-9 * std::max(1.0, m(u, u))) return out;  // not SDD
    // Edge (u, u+n) of weight slack/2 carries the diagonal surplus.
    if (slack > tol) out.virtual_graph.add_edge(u, u + n, slack / 2.0);
    for (std::size_t v = u + 1; v < n; ++v) {
      const double val = m(u, v);
      if (std::abs(val) < tol) continue;
      if (val < 0.0) {
        // Negative off-diagonals become intra-copy edges.
        out.virtual_graph.add_edge(u, v, -val);
        out.virtual_graph.add_edge(u + n, v + n, -val);
      } else {
        // Positive off-diagonals become cross-copy edges.
        out.virtual_graph.add_edge(u, v + n, val);
        out.virtual_graph.add_edge(v, u + n, val);
      }
    }
  }
  out.valid = true;
  return out;
}

linalg::Vec lift_rhs(const linalg::Vec& y) {
  linalg::Vec out(2 * y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    out[i] = y[i];
    out[i + y.size()] = -y[i];
  }
  return out;
}

linalg::Vec project_solution(const linalg::Vec& x12) {
  assert(x12.size() % 2 == 0);
  const std::size_t n = x12.size() / 2;
  linalg::Vec x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = 0.5 * (x12[i] - x12[i + n]);
  return x;
}

linalg::DenseMatrix lift_rhs_many(const linalg::DenseMatrix& y) {
  linalg::DenseMatrix out(2 * y.rows(), y.cols());
  for (std::size_t i = 0; i < y.rows(); ++i) {
    for (std::size_t j = 0; j < y.cols(); ++j) {
      out(i, j) = y(i, j);
      out(i + y.rows(), j) = -y(i, j);
    }
  }
  return out;
}

linalg::DenseMatrix project_solution_many(const linalg::DenseMatrix& x12) {
  assert(x12.rows() % 2 == 0);
  const std::size_t n = x12.rows() / 2;
  linalg::DenseMatrix x(n, x12.cols());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < x12.cols(); ++j)
      x(i, j) = 0.5 * (x12(i, j) - x12(i + n, j));
  }
  return x;
}

}  // namespace bcclap::laplacian
