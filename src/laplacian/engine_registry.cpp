#include "laplacian/engine.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "common/logging.h"
#include "laplacian/engines/builtin.h"
#include "linalg/sparse_ldlt.h"

namespace bcclap::laplacian {

namespace {

// Warn once per distinct invalid BCCLAP_ENGINE value (the env var is read
// live on every "auto" resolve so tests can set and unset it; without the
// latch a bench would emit the warning per solve).
void warn_invalid_env_engine(const std::string& value,
                             const std::string& keys_list) {
  static std::mutex mu;
  static std::string last_warned;
  std::lock_guard<std::mutex> lock(mu);
  if (value == last_warned) return;
  last_warned = value;
  BCCLAP_WARN("BCCLAP_ENGINE=\"" << value
                                 << "\" is not a registered engine key "
                                    "(registered: "
                                 << keys_list
                                 << ", or auto); falling back to auto");
}

std::string join_keys(const std::vector<std::string>& keys) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << keys[i];
  }
  return oss.str();
}

// Stored-entry density of a dense-stored SDD matrix, for the SDD-side
// auto resolve: scan for exact zeros (assembled grams genuinely contain
// them for non-adjacent constraint pairs).
double dense_matrix_density(const linalg::DenseMatrix& m) {
  const std::size_t n = m.rows();
  if (n == 0) return 0.0;
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = m.row_data(i);
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (row[j] != 0.0) ++nnz;
  }
  return static_cast<double>(nnz) /
         (static_cast<double>(n) * static_cast<double>(m.cols()));
}

}  // namespace

EngineRegistry& EngineRegistry::instance() {
  // Leaky singleton (never destroyed: engines may be created during other
  // statics' teardown in tests) with the built-ins registered before the
  // first caller can observe it.
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    engines::register_exact_dense(*r);
    engines::register_exact_sparse(*r);
    engines::register_sparsified_chebyshev(*r);
    engines::register_cg(*r);
    return r;
  }();
  return *registry;
}

void EngineRegistry::register_engine(std::string key,
                                     GraphFactory graph_factory,
                                     SddFactory sdd_factory) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, entry] : entries_) {
    if (existing == key) {
      entry = Entry{std::move(graph_factory), std::move(sdd_factory)};
      return;
    }
  }
  entries_.emplace_back(
      std::move(key), Entry{std::move(graph_factory), std::move(sdd_factory)});
}

bool EngineRegistry::registered(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [existing, entry] : entries_)
    if (existing == key) return true;
  return false;
}

std::vector<std::string> EngineRegistry::keys() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string EngineRegistry::resolve(const std::string& requested,
                                    std::size_t n, double density,
                                    double eps) const {
  const bool is_auto = requested.empty() || requested == "auto";
  if (!is_auto) {
    if (!registered(requested)) throw_unknown_key(requested);
    return requested;
  }
  if (const char* e = std::getenv("BCCLAP_ENGINE")) {
    const std::string env_key(e);
    if (registered(env_key)) return env_key;
    // BCCLAP_ENGINE=auto is a valid no-op spelling of the default.
    if (env_key != "auto") warn_invalid_env_engine(env_key, join_keys(keys()));
  }
  return auto_select(n, density, eps);
}

std::unique_ptr<LaplacianEngine> EngineRegistry::create(
    const std::string& key, const EngineOptions& opt) const {
  if (key == "auto") {
    throw std::invalid_argument(
        "laplacian::EngineRegistry::create: \"auto\" is a selector, not an "
        "engine — resolve(key, n, density, eps) it to a concrete key first");
  }
  return entry_or_throw(key).graph_factory(opt);
}

std::unique_ptr<SddEngine> EngineRegistry::create_sdd(
    const std::string& key, const common::Context& ctx, linalg::DenseMatrix m,
    const SddEngineOptions& opt) const {
  const std::string concrete =
      resolve(key, m.rows(), dense_matrix_density(m), opt.eps_hint);
  const Entry entry = entry_or_throw(concrete);
  if (!entry.sdd_factory) {
    throw std::invalid_argument(
        "laplacian::EngineRegistry::create_sdd: engine \"" + concrete +
        "\" has no SDD factory (registered: " + join_keys(keys()) + ")");
  }
  return entry.sdd_factory(ctx, std::move(m), opt);
}

std::string EngineRegistry::auto_select(std::size_t n, double density,
                                        double eps) {
  if (n >= linalg::kSparseMinDim && density <= linalg::kSparseMaxDensity)
    return "exact-sparse";
  if (eps <= kAutoExactEps) return "exact-dense";
  return "sparsified-chebyshev";
}

double EngineRegistry::laplacian_density(const graph::Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return 0.0;
  // Stored entries of the CSR Laplacian: n diagonal + 2m off-diagonal.
  const double stored =
      static_cast<double>(n) + 2.0 * static_cast<double>(g.num_edges());
  return stored / (static_cast<double>(n) * static_cast<double>(n));
}

EngineRegistry::Entry EngineRegistry::entry_or_throw(
    const std::string& key) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [existing, entry] : entries_)
      if (existing == key) return entry;
  }
  throw_unknown_key(key);
}

void EngineRegistry::throw_unknown_key(const std::string& key) const {
  throw std::invalid_argument("laplacian::EngineRegistry: unknown engine key "
                              "\"" +
                              key + "\" (registered: " + join_keys(keys()) +
                              ", or auto)");
}

}  // namespace bcclap::laplacian
