#include "laplacian/engine.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/env.h"
#include "laplacian/engines/builtin.h"
#include "linalg/sparse_ldlt.h"

namespace bcclap::laplacian {

namespace {

std::string join_keys(const std::vector<std::string>& keys) {
  std::ostringstream oss;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i > 0) oss << ", ";
    oss << keys[i];
  }
  return oss.str();
}

// Stored-entry density of a dense-stored SDD matrix, for the SDD-side
// auto resolve: scan for exact zeros (assembled grams genuinely contain
// them for non-adjacent constraint pairs).
double dense_matrix_density(const linalg::DenseMatrix& m) {
  const std::size_t n = m.rows();
  if (n == 0) return 0.0;
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = m.row_data(i);
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (row[j] != 0.0) ++nnz;
  }
  return static_cast<double>(nnz) /
         (static_cast<double>(n) * static_cast<double>(m.cols()));
}

}  // namespace

// ---- LaplacianEngine base: the apply half of the prepare/apply split ----

bool LaplacianEngine::factor(const common::Context& ctx,
                             const graph::Graph& g) {
  prepared_ = prepare(ctx, g);
  prepared_here_ = true;
  return prepared_ && prepared_->usable();
}

void LaplacianEngine::adopt(std::shared_ptr<const PreparedLaplacian> artifact) {
  assert(artifact && artifact->usable() && "adopt() requires a usable artifact");
  prepared_ = std::move(artifact);
  prepared_here_ = false;
}

linalg::Vec LaplacianEngine::solve(const common::Context& ctx,
                                   const linalg::Vec& b) {
  assert(prepared_ && prepared_->usable() &&
         "factor()/adopt() must succeed before solve()");
  core::RunStats st;
  linalg::Vec x = prepared_->apply(ctx, b, opt_, &st);
  // Accumulate only the per-request counters; the artifact's prepare-phase
  // tallies (factor counts, sparsify count) are added once in report(),
  // never per solve.
  iterations_ += st.iterations;
  rounds_ += st.rounds;
  return x;
}

linalg::DenseMatrix LaplacianEngine::solve_many(const common::Context& ctx,
                                                const linalg::DenseMatrix& b) {
  assert(prepared_ && prepared_->usable() &&
         "factor()/adopt() must succeed before solve_many()");
  core::RunStats st;
  linalg::DenseMatrix x = prepared_->apply_many(ctx, b, opt_, &st);
  iterations_ += st.iterations;
  rounds_ += st.rounds;
  panels_ += st.panels;
  return x;
}

void LaplacianEngine::report(core::RunStats* stats) const {
  stats->engine = std::string(key());
  stats->iterations += iterations_;
  stats->rounds += rounds_;
  stats->panels += panels_;
  if (prepared_ && prepared_here_) {
    stats->dense_factors += prepared_->dense_factors();
    stats->sparse_factors += prepared_->sparse_factors();
    stats->sparsify_count += prepared_->sparsify_count();
    const linalg::SparseFactorPhases phases = prepared_->factor_phases();
    stats->supernodes += phases.supernodes;
    stats->factor_fill_nnz += phases.fill_nnz;
    stats->ordering_seconds += phases.ordering_seconds;
    stats->symbolic_seconds += phases.symbolic_seconds;
    stats->numeric_seconds += phases.numeric_seconds;
  }
}

const graph::Graph* LaplacianEngine::sparsifier() const {
  return prepared_ ? prepared_->sparsifier() : nullptr;
}

bool LaplacianEngine::tree_patched() const {
  return prepared_ && prepared_->tree_patched();
}

std::int64_t LaplacianEngine::preprocessing_rounds() const {
  return (prepared_ && prepared_here_) ? prepared_->preprocessing_rounds() : 0;
}

EngineRegistry& EngineRegistry::instance() {
  // Leaky singleton (never destroyed: engines may be created during other
  // statics' teardown in tests) with the built-ins registered before the
  // first caller can observe it.
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    engines::register_exact_dense(*r);
    engines::register_exact_sparse(*r);
    engines::register_sparsified_chebyshev(*r);
    engines::register_cg(*r);
    return r;
  }();
  return *registry;
}

void EngineRegistry::register_engine(std::string key,
                                     GraphFactory graph_factory,
                                     SddFactory sdd_factory) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, entry] : entries_) {
    if (existing == key) {
      entry = Entry{std::move(graph_factory), std::move(sdd_factory)};
      return;
    }
  }
  entries_.emplace_back(
      std::move(key), Entry{std::move(graph_factory), std::move(sdd_factory)});
}

bool EngineRegistry::registered(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [existing, entry] : entries_)
    if (existing == key) return true;
  return false;
}

std::vector<std::string> EngineRegistry::keys() const {
  std::vector<std::string> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& [key, entry] : entries_) out.push_back(key);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string EngineRegistry::resolve(const std::string& requested,
                                    std::size_t n, double density,
                                    double eps) const {
  const bool is_auto = requested.empty() || requested == "auto";
  if (!is_auto) {
    if (!registered(requested)) throw_unknown_key(requested);
    return requested;
  }
  // BCCLAP_ENGINE is read live on every "auto" resolve (tests set and
  // unset it); accepted values are the registered keys plus "auto" (a
  // no-op spelling of the default), anything else warns once per distinct
  // value inside common::env::keyword and falls back to the tuner.
  std::vector<std::string> accepted = keys();
  accepted.push_back("auto");
  if (const auto env_key = common::env::keyword("BCCLAP_ENGINE", accepted,
                                                "falling back to auto")) {
    if (*env_key != "auto") return *env_key;
  }
  return auto_select(n, density, eps);
}

std::unique_ptr<LaplacianEngine> EngineRegistry::create(
    const std::string& key, const EngineOptions& opt) const {
  if (key == "auto") {
    throw std::invalid_argument(
        "laplacian::EngineRegistry::create: \"auto\" is a selector, not an "
        "engine — resolve(key, n, density, eps) it to a concrete key first");
  }
  return entry_or_throw(key).graph_factory(opt);
}

std::unique_ptr<SddEngine> EngineRegistry::create_sdd(
    const std::string& key, const common::Context& ctx, linalg::DenseMatrix m,
    const SddEngineOptions& opt) const {
  const std::string concrete =
      resolve(key, m.rows(), dense_matrix_density(m), opt.eps_hint);
  const Entry entry = entry_or_throw(concrete);
  if (!entry.sdd_factory) {
    throw std::invalid_argument(
        "laplacian::EngineRegistry::create_sdd: engine \"" + concrete +
        "\" has no SDD factory (registered: " + join_keys(keys()) + ")");
  }
  return entry.sdd_factory(ctx, std::move(m), opt);
}

std::string EngineRegistry::auto_select(std::size_t n, double density,
                                        double eps) {
  if (n >= linalg::kSparseMinDim && density <= linalg::kSparseMaxDensity)
    return "exact-sparse";
  if (eps <= kAutoExactEps) return "exact-dense";
  return "sparsified-chebyshev";
}

double EngineRegistry::laplacian_density(const graph::Graph& g) {
  const std::size_t n = g.num_vertices();
  if (n == 0) return 0.0;
  // Stored entries of the CSR Laplacian: n diagonal + 2m off-diagonal.
  const double stored =
      static_cast<double>(n) + 2.0 * static_cast<double>(g.num_edges());
  return stored / (static_cast<double>(n) * static_cast<double>(n));
}

EngineRegistry::Entry EngineRegistry::entry_or_throw(
    const std::string& key) const {
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [existing, entry] : entries_)
      if (existing == key) return entry;
  }
  throw_unknown_key(key);
}

void EngineRegistry::throw_unknown_key(const std::string& key) const {
  throw std::invalid_argument("laplacian::EngineRegistry: unknown engine key "
                              "\"" +
                              key + "\" (registered: " + join_keys(keys()) +
                              ", or auto)");
}

}  // namespace bcclap::laplacian
