#include "laplacian/solver.h"

#include <cassert>
#include <cmath>

#include "graph/laplacian.h"

namespace bcclap::laplacian {

SparsifiedLaplacianSolver::SparsifiedLaplacianSolver(
    const common::Context& ctx, const graph::Graph& g,
    const sparsify::SparsifyOptions& opt)
    : ctx_(ctx), core_(prepare_sparsified_chebyshev(ctx, g, opt)) {
  accountant_.charge("laplacian/preprocessing", core_->preprocessing_rounds());
}

linalg::Vec SparsifiedLaplacianSolver::solve(const linalg::Vec& b, double eps,
                                             SolveStats* stats) {
  assert(core_->usable() && "sparsifier must be factorizable");
  EngineOptions opt;
  opt.eps = eps;
  core::RunStats st;
  linalg::Vec y = core_->apply(ctx_, b, opt, &st);
  accountant_.charge("laplacian/solve", st.rounds);
  if (stats) {
    stats->iterations = st.iterations;
    stats->rounds = st.rounds;
    stats->dense_factors = st.dense_factors;
    stats->sparse_factors = st.sparse_factors;
  }
  return y;
}

linalg::DenseMatrix SparsifiedLaplacianSolver::solve_many(
    const linalg::DenseMatrix& b, double eps, SolveStats* stats) {
  assert(core_->usable() && "sparsifier must be factorizable");
  EngineOptions opt;
  opt.eps = eps;
  core::RunStats st;
  linalg::DenseMatrix y = core_->apply_many(ctx_, b, opt, &st);
  accountant_.charge("laplacian/solve", st.rounds);
  if (stats) {
    stats->iterations = st.iterations;
    stats->rounds = st.rounds;
    stats->panels = st.panels;
    stats->dense_factors = st.dense_factors;
    stats->sparse_factors = st.sparse_factors;
  }
  return y;
}

ExactLaplacianSolver::ExactLaplacianSolver(const common::Context& ctx,
                                           const graph::Graph& g)
    : ctx_(ctx),
      factor_(linalg::LaplacianFactor::factor(ctx, graph::laplacian(g))) {}

linalg::Vec ExactLaplacianSolver::solve(const linalg::Vec& b) const {
  assert(factor_ && "graph must be connected");
  return factor_->solve(b);
}

linalg::DenseMatrix ExactLaplacianSolver::solve_many(
    const linalg::DenseMatrix& b) const {
  assert(factor_ && "graph must be connected");
  return factor_->solve_many(ctx_, b);
}

linalg::Vec exact_laplacian_solve(const common::Context& ctx,
                                  const graph::Graph& g,
                                  const linalg::Vec& b) {
  return ExactLaplacianSolver(ctx, g).solve(b);
}

double laplacian_norm(const common::Context& ctx, const graph::Graph& g,
                      const linalg::Vec& x) {
  return std::sqrt(
      std::max(0.0, linalg::dot(x, graph::apply_laplacian(ctx, g, x))));
}

}  // namespace bcclap::laplacian
