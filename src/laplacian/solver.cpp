#include "laplacian/solver.h"

#include <cassert>
#include <cmath>
#include <queue>
#include <stdexcept>
#include <string>

#include "common/encoding.h"
#include "graph/laplacian.h"
#include "linalg/chebyshev.h"

namespace bcclap::laplacian {

namespace {

// Spanning forest edges of g (BFS per component); used to patch a
// sparsifier that lost connectivity within some component of G.
std::vector<graph::EdgeId> spanning_forest(const graph::Graph& g) {
  std::vector<graph::EdgeId> forest;
  std::vector<bool> seen(g.num_vertices(), false);
  for (graph::VertexId root = 0; root < g.num_vertices(); ++root) {
    if (seen[root]) continue;
    std::queue<graph::VertexId> q;
    q.push(root);
    seen[root] = true;
    while (!q.empty()) {
      const auto v = q.front();
      q.pop();
      for (graph::EdgeId e : g.incident(v)) {
        const auto u = g.other_endpoint(e, v);
        if (!seen[u]) {
          seen[u] = true;
          forest.push_back(e);
          q.push(u);
        }
      }
    }
  }
  return forest;
}

// Removes the per-component mean (projection onto range(L_G)).
void remove_component_means(linalg::Vec& x,
                            const std::vector<std::size_t>& labels) {
  std::size_t k = 0;
  for (std::size_t l : labels) k = std::max(k, l + 1);
  std::vector<double> sum(k, 0.0);
  std::vector<std::size_t> count(k, 0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum[labels[i]] += x[i];
    ++count[labels[i]];
  }
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] -= sum[labels[i]] / static_cast<double>(count[labels[i]]);
  }
}

// Explicit facade-surface size check (satellite of the solve-path bugfix
// sweep): a wrong-sized rhs in a Release build must fail loudly, not read
// out of bounds inside the matvec kernels.
void check_rhs_rows(const char* where, std::size_t got, std::size_t want) {
  if (got != want) {
    throw std::invalid_argument(std::string(where) +
                                ": right-hand side has " +
                                std::to_string(got) + " rows, graph has " +
                                std::to_string(want) + " vertices");
  }
}

}  // namespace

SparsifiedLaplacianSolver::SparsifiedLaplacianSolver(
    const common::Context& ctx, const graph::Graph& g,
    const sparsify::SparsifyOptions& opt)
    : ctx_(ctx), g_(g) {
  bandwidth_ = bcc::Network::default_bandwidth(g.num_vertices());
  bcc::Network net(bcc::Model::kBroadcastCongest, g, bandwidth_, ctx_);
  auto sp = sparsify::spectral_sparsify(ctx_, g, opt, net);
  preprocessing_rounds_ = sp.rounds;
  h_ = std::move(sp.sparsifier);
  g_components_ = g_.component_labels();
  weight_bound_ = std::max({g.max_weight(), h_.max_weight(), 1.0});

  if (h_.num_components() > g_.num_components()) {
    // Guard: with bench-scale bundle constants the sparsifier can lose
    // connectivity; union a spanning forest of G (each forest edge is one
    // broadcast, <= n-1 rounds) and refactor.
    tree_patched_ = true;
    for (graph::EdgeId e : spanning_forest(g_)) {
      const auto& ed = g_.edge(e);
      if (!h_.find_edge(ed.u, ed.v)) h_.add_edge(ed.u, ed.v, ed.weight);
    }
    net.charge("laplacian/tree-patch",
               static_cast<std::int64_t>(g_.num_vertices()));
    preprocessing_rounds_ += static_cast<std::int64_t>(g_.num_vertices());
  }
  h_factor_ =
      linalg::ComponentLaplacianFactor::factor(ctx_, graph::laplacian(h_));
  if (!h_factor_) {
    // Extreme weight spreads (IPM-generated virtual graphs) can defeat the
    // sparsifier factorization numerically; fall back to preconditioning
    // with G itself. Correctness is unchanged (kappa = 1), only the
    // speedup claim is forfeited for this instance.
    tree_patched_ = true;
    h_ = g_;
    h_factor_ =
        linalg::ComponentLaplacianFactor::factor(ctx_, graph::laplacian(h_));
  }
  accountant_.charge("laplacian/preprocessing", preprocessing_rounds_);
}

linalg::Vec SparsifiedLaplacianSolver::solve(const linalg::Vec& b, double eps,
                                             SolveStats* stats) {
  assert(h_factor_ && "sparsifier must be factorizable");
  check_rhs_rows("SparsifiedLaplacianSolver::solve", b.size(),
                 g_.num_vertices());
  linalg::Vec rhs = b;
  remove_component_means(rhs, g_components_);

  const auto apply_a = [this](const linalg::Vec& x) {
    return graph::apply_laplacian(ctx_, g_, x);
  };
  // B = (3/2) L_H  =>  B^{-1} r = (2/3) L_H^+ r.
  const auto solve_b = [this](const linalg::Vec& r) {
    return linalg::scale(h_factor_->solve(ctx_, r), 2.0 / 3.0);
  };
  const auto res =
      linalg::preconditioned_chebyshev(apply_a, solve_b, rhs, 3.0, eps);

  // Round accounting (Theorem 1.3): each iteration broadcasts one vector
  // coordinate per node at O(log(n U / eps)) bits.
  const int bits = enc::real_bits(
      static_cast<double>(g_.num_vertices()) * weight_bound_, eps);
  const std::int64_t per_iter = enc::rounds_for_bits(bits, bandwidth_);
  const std::int64_t rounds =
      static_cast<std::int64_t>(res.iterations) * per_iter;
  accountant_.charge("laplacian/solve", rounds);
  if (stats) {
    stats->iterations = res.iterations;
    stats->rounds = rounds;
    stats->dense_factors = dense_factors();
    stats->sparse_factors = sparse_factors();
  }
  linalg::Vec y = res.x;
  remove_component_means(y, g_components_);
  return y;
}

linalg::DenseMatrix SparsifiedLaplacianSolver::solve_many(
    const linalg::DenseMatrix& b, double eps, SolveStats* stats) {
  assert(h_factor_ && "sparsifier must be factorizable");
  check_rhs_rows("SparsifiedLaplacianSolver::solve_many", b.rows(),
                 g_.num_vertices());
  const std::size_t k = b.cols();
  linalg::DenseMatrix rhs = b;
  for (std::size_t j = 0; j < k; ++j) {
    linalg::Vec col = rhs.column(j);
    remove_component_means(col, g_components_);
    rhs.set_column(j, col);
  }

  const auto apply_a = [this](const linalg::DenseMatrix& x) {
    return graph::apply_laplacian_many(ctx_, g_, x);
  };
  // B = (3/2) L_H  =>  B^{-1} R = (2/3) L_H^+ R, one panel solve per
  // iteration shared by every column.
  const auto solve_b = [this](const linalg::DenseMatrix& r) {
    linalg::DenseMatrix z = h_factor_->solve_many(ctx_, r);
    for (std::size_t i = 0; i < z.rows(); ++i) {
      double* zi = z.row_data(i);
      for (std::size_t j = 0; j < z.cols(); ++j) zi[j] *= 2.0 / 3.0;
    }
    return z;
  };
  const auto res =
      linalg::preconditioned_chebyshev_many(apply_a, solve_b, rhs, 3.0, eps);

  // Round accounting: each column still broadcasts its own vector per
  // iteration — a k-wide panel costs k x the single-RHS rounds (the model
  // charges communication; the batching amortizes wall time only).
  const int bits = enc::real_bits(
      static_cast<double>(g_.num_vertices()) * weight_bound_, eps);
  const std::int64_t per_iter = enc::rounds_for_bits(bits, bandwidth_);
  const std::int64_t rounds = static_cast<std::int64_t>(k) *
                              static_cast<std::int64_t>(res.iterations) *
                              per_iter;
  accountant_.charge("laplacian/solve", rounds);
  if (stats) {
    stats->iterations = res.iterations;
    stats->rounds = rounds;
    stats->panels = 1;
    stats->dense_factors = dense_factors();
    stats->sparse_factors = sparse_factors();
  }
  linalg::DenseMatrix y = res.x;
  for (std::size_t j = 0; j < k; ++j) {
    linalg::Vec col = y.column(j);
    remove_component_means(col, g_components_);
    y.set_column(j, col);
  }
  return y;
}

ExactLaplacianSolver::ExactLaplacianSolver(const common::Context& ctx,
                                           const graph::Graph& g)
    : ctx_(ctx),
      factor_(linalg::LaplacianFactor::factor(ctx, graph::laplacian(g))) {}

linalg::Vec ExactLaplacianSolver::solve(const linalg::Vec& b) const {
  assert(factor_ && "graph must be connected");
  return factor_->solve(b);
}

linalg::DenseMatrix ExactLaplacianSolver::solve_many(
    const linalg::DenseMatrix& b) const {
  assert(factor_ && "graph must be connected");
  return factor_->solve_many(ctx_, b);
}

linalg::Vec exact_laplacian_solve(const common::Context& ctx,
                                  const graph::Graph& g,
                                  const linalg::Vec& b) {
  return ExactLaplacianSolver(ctx, g).solve(b);
}

double laplacian_norm(const common::Context& ctx, const graph::Graph& g,
                      const linalg::Vec& x) {
  return std::sqrt(
      std::max(0.0, linalg::dot(x, graph::apply_laplacian(ctx, g, x))));
}

}  // namespace bcclap::laplacian
