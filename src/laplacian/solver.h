// Sparsifier-preconditioned Laplacian solver (Corollary 2.4 / Theorem 1.3).
//
// Preprocessing: compute a (1 +- 1/2) spectral sparsifier H of G (known to
// every BCC node after the sparsification broadcasts). Per instance (b,
// eps): preconditioned Chebyshev with A = L_G, B = (3/2) L_H, kappa = 3 —
// O(log 1/eps) iterations, each one distributed L_G matvec plus a free
// local solve in L_H.
//
// Since the prepare/apply split, this class is a thin stateful wrapper
// over the immutable prepared artifact (laplacian/prepared.h): the
// constructor runs the prepare phase (prepare_sparsified_chebyshev) and
// every solve is an apply against it, plus round-accountant charges. The
// artifact itself is what the engines and the factorization cache share.
#pragma once

#include <cstdint>
#include <memory>

#include "bcc/round_accountant.h"
#include "common/context.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "laplacian/prepared.h"
#include "linalg/cholesky.h"
#include "linalg/vector_ops.h"
#include "sparsify/spectral_sparsify.h"

namespace bcclap::laplacian {

// Unified stats shape (core/stats.h): iterations = Chebyshev iterations,
// rounds = BCC rounds of the solve. The old {iterations, rounds} struct
// had exactly these fields, so existing callers compile unchanged.
using SolveStats = core::RunStats;

class SparsifiedLaplacianSolver {
 public:
  // Builds the preconditioner by spectral sparsification over a Broadcast
  // CONGEST network on g's topology, executing on ctx's pool and drawing
  // all randomness from ctx.seed(). If the sparsifier has more connected
  // components than G (possible with aggressively small bundle constants),
  // a spanning forest of G is unioned in; `tree_patched()` reports this.
  // Disconnected inputs are handled per component. The solver keeps the
  // context: the Runtime behind it must outlive the solver. (The prepared
  // artifact it wraps does NOT keep the context — see prepared.h.)
  SparsifiedLaplacianSolver(const common::Context& ctx, const graph::Graph& g,
                            const sparsify::SparsifyOptions& opt);

  // Solves L_G x = b to ||x - y||_{L_G} <= eps ||x||_{L_G}. b is projected
  // onto range(L_G) (mean removed). Rounds are charged per Theorem 1.3:
  // O(log(1/eps)) iterations x O(log(n U / eps)) bits per matvec broadcast.
  // stats additionally reports which factorization backend the
  // preconditioner runs on (dense_factors / sparse_factors). Throws
  // std::invalid_argument on a wrong-sized b.
  linalg::Vec solve(const linalg::Vec& b, double eps,
                    SolveStats* stats = nullptr);

  // Batched multi-RHS solve: b is n x k, one right-hand side per column.
  // The sparsifier and its factorization were built once at construction;
  // every column rides one shared Chebyshev panel loop (one L_G panel
  // apply + one L_H panel solve per iteration), byte-identical per column
  // to solve(column, eps) at any thread count. Rounds are charged k x the
  // per-column solve cost (broadcasting k vectors costs k x the bits; the
  // panel amortizes wall time, not communication). stats: iterations =
  // per-column Chebyshev iterations, rounds = the panel's total, panels
  // = 1.
  linalg::DenseMatrix solve_many(const linalg::DenseMatrix& b, double eps,
                                 SolveStats* stats = nullptr);

  // False when even the fallback factorization failed (numerically
  // degenerate input); solve() must not be called in that case.
  bool usable() const { return core_->usable(); }

  std::int64_t preprocessing_rounds() const {
    return core_->preprocessing_rounds();
  }
  const graph::Graph& sparsifier() const { return *core_->sparsifier(); }
  bool tree_patched() const { return core_->tree_patched(); }
  bcc::RoundAccountant& accountant() { return accountant_; }

  // Backend tallies of the preconditioner factorization (one entry per
  // grounded component of H); 0 / 0 while !usable().
  std::size_t dense_factors() const { return core_->dense_factors(); }
  std::size_t sparse_factors() const { return core_->sparse_factors(); }

  // The immutable prepare-phase artifact this solver wraps (never null).
  std::shared_ptr<const PreparedLaplacian> prepared() const { return core_; }

 private:
  common::Context ctx_;
  std::shared_ptr<const PreparedLaplacian> core_;
  bcc::RoundAccountant accountant_;
};

// Factor-once exact Laplacian solver (dense LDL^T on grounded L_G): test
// oracles, benches and the exact engines solve many right-hand sides
// against one graph without re-paying the O(n^3) factorization per call.
// Requires a connected graph (same contract as exact_laplacian_solve).
class ExactLaplacianSolver {
 public:
  ExactLaplacianSolver(const common::Context& ctx, const graph::Graph& g);

  bool usable() const { return factor_.has_value(); }
  linalg::Vec solve(const linalg::Vec& b) const;
  // Panel solve; columns fan out on the construction context's pool,
  // per-column byte-identical to solve().
  linalg::DenseMatrix solve_many(const linalg::DenseMatrix& b) const;

  // Backend the grounded factorization ran on (kNone while !usable() or
  // for a 1-vertex graph).
  linalg::FactorKind factor_path() const {
    return factor_ ? factor_->path() : linalg::FactorKind::kNone;
  }

 private:
  common::Context ctx_;
  std::optional<linalg::LaplacianFactor> factor_;
};

// Exact reference solve (dense LDL^T on grounded L_G); one-shot test
// oracle. Re-factors per call — callers with several right-hand sides on
// one graph use ExactLaplacianSolver instead.
linalg::Vec exact_laplacian_solve(const common::Context& ctx,
                                  const graph::Graph& g,
                                  const linalg::Vec& b);

// Energy norm ||x||_{L_G} = sqrt(x' L_G x).
double laplacian_norm(const common::Context& ctx, const graph::Graph& g,
                      const linalg::Vec& x);

}  // namespace bcclap::laplacian
