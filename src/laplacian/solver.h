// Sparsifier-preconditioned Laplacian solver (Corollary 2.4 / Theorem 1.3).
//
// Preprocessing: compute a (1 +- 1/2) spectral sparsifier H of G (known to
// every BCC node after the sparsification broadcasts). Per instance (b,
// eps): preconditioned Chebyshev with A = L_G, B = (3/2) L_H, kappa = 3 —
// O(log 1/eps) iterations, each one distributed L_G matvec plus a free
// local solve in L_H.
#pragma once

#include <cstdint>
#include <optional>

#include "bcc/round_accountant.h"
#include "common/context.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "linalg/cholesky.h"
#include "linalg/vector_ops.h"
#include "sparsify/spectral_sparsify.h"

namespace bcclap::laplacian {

// Unified stats shape (core/stats.h): iterations = Chebyshev iterations,
// rounds = BCC rounds of the solve. The old {iterations, rounds} struct
// had exactly these fields, so existing callers compile unchanged.
using SolveStats = core::RunStats;

class SparsifiedLaplacianSolver {
 public:
  // Builds the preconditioner by spectral sparsification over a Broadcast
  // CONGEST network on g's topology, executing on ctx's pool and drawing
  // all randomness from ctx.seed(). If the sparsifier has more connected
  // components than G (possible with aggressively small bundle constants),
  // a spanning forest of G is unioned in; `tree_patched()` reports this.
  // Disconnected inputs are handled per component. The solver keeps the
  // context: the Runtime behind it must outlive the solver.
  SparsifiedLaplacianSolver(const common::Context& ctx, const graph::Graph& g,
                            const sparsify::SparsifyOptions& opt);

  // Deprecated path: bare seed on the process-default Runtime's pool.
  SparsifiedLaplacianSolver(const graph::Graph& g,
                            const sparsify::SparsifyOptions& opt,
                            std::uint64_t seed)
      : SparsifiedLaplacianSolver(common::default_context().with_seed(seed),
                                  g, opt) {}

  // Solves L_G x = b to ||x - y||_{L_G} <= eps ||x||_{L_G}. b is projected
  // onto range(L_G) (mean removed). Rounds are charged per Theorem 1.3:
  // O(log(1/eps)) iterations x O(log(n U / eps)) bits per matvec broadcast.
  linalg::Vec solve(const linalg::Vec& b, double eps,
                    SolveStats* stats = nullptr);

  // False when even the fallback factorization failed (numerically
  // degenerate input); solve() must not be called in that case.
  bool usable() const { return h_factor_.has_value(); }

  std::int64_t preprocessing_rounds() const { return preprocessing_rounds_; }
  const graph::Graph& sparsifier() const { return h_; }
  bool tree_patched() const { return tree_patched_; }
  bcc::RoundAccountant& accountant() { return accountant_; }

 private:
  common::Context ctx_;
  const graph::Graph& g_;
  graph::Graph h_;
  std::vector<std::size_t> g_components_;
  std::optional<linalg::ComponentLaplacianFactor> h_factor_;
  std::int64_t preprocessing_rounds_ = 0;
  bool tree_patched_ = false;
  bcc::RoundAccountant accountant_;
  std::int64_t bandwidth_ = 1;
  double weight_bound_ = 1.0;
};

// Exact reference solve (dense LDL^T on grounded L_G); test oracle.
linalg::Vec exact_laplacian_solve(const common::Context& ctx,
                                  const graph::Graph& g,
                                  const linalg::Vec& b);
inline linalg::Vec exact_laplacian_solve(const graph::Graph& g,
                                         const linalg::Vec& b) {
  return exact_laplacian_solve(common::default_context(), g, b);
}

// Energy norm ||x||_{L_G} = sqrt(x' L_G x).
double laplacian_norm(const common::Context& ctx, const graph::Graph& g,
                      const linalg::Vec& x);
double laplacian_norm(const graph::Graph& g, const linalg::Vec& x);

}  // namespace bcclap::laplacian
