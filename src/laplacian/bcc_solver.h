// SDD system solving for the LP layer (Lemma 5.1).
//
// The LP solver needs (A^T D A)^{-1} y for changing positive diagonals D.
// For the flow constraint matrix, A^T D A is SDD, so the paper's pipeline
// is: Gremban-reduce to a Laplacian on a 2(n-1)-vertex virtual graph, then
// run the BCC Laplacian solver (Theorem 1.3) on it.
//
// Two interchangeable engines:
//  - ExactSddEngine: dense LDL^T, zero noise. Rounds are charged with the
//    analytical cost model of Lemma 5.1 (sparsify + Chebyshev). Default for
//    the IPM benches, where wall-clock matters.
//  - SparsifiedSddEngine: the real pipeline — Gremban reduction + spectral
//    sparsifier + preconditioned Chebyshev. Used by the end-to-end pipeline
//    experiment (E12) and fidelity tests.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "bcc/round_accountant.h"
#include "common/context.h"
#include "linalg/dense_matrix.h"
#include "linalg/ldlt.h"
#include "linalg/vector_ops.h"

namespace bcclap::laplacian {

class SddEngine {
 public:
  virtual ~SddEngine() = default;
  // Solve M x = y to (at least) relative residual `eps`.
  virtual linalg::Vec solve(const linalg::Vec& y, double eps) = 0;

  // Batched multi-RHS solve: y is n x k, one right-hand side per column.
  // The base implementation is a sequential column loop over solve() —
  // engines with a real panel path (both engines below) override it with
  // one that factors/sparsifies once and fans the panel out, byte-identical
  // to the column loop (outputs and rounds) at any thread count.
  virtual linalg::DenseMatrix solve_many(const linalg::DenseMatrix& y,
                                         double eps);

  virtual std::int64_t rounds_charged() const = 0;

  // Registry key of the engine (laplacian/engine.h), e.g. "exact-dense";
  // empty for engines constructed outside the registry's vocabulary
  // (custom gram_factory hooks). The LP layer copies this into
  // RunStats::engine.
  virtual std::string_view key() const { return {}; }
};

// Analytical per-solve round cost of an exact SDD solve under the Lemma
// 5.1 / Theorem 1.3 model (sparsify once per phase — charged by the
// caller — then O(log(1/eps)) Chebyshev iterations of one broadcast
// each): shared by every exact engine so "exact-dense" and "exact-sparse"
// charge identical rounds and differ only in local arithmetic.
std::int64_t exact_sdd_solve_rounds(std::size_t network_n, double eps);

// The SDD layer's dense prepare phase, shared by the exact-dense engine
// and the sparsified engine's residual-guard fallback: dense LDL^T of M
// with a tiny Tikhonov ridge retry on (numerically) semi-definite inputs
// — the documented guard both call sites used to hand-roll. Returns an
// immutable, shareable factor (the shareability contract of
// linalg/cholesky.h); null only if even the ridged matrix fails.
std::shared_ptr<const linalg::LdltFactor> prepare_sdd_dense_factor(
    const common::Context& ctx, linalg::DenseMatrix m);

// Builds an engine for a concrete SDD matrix M (n x n dense), executing on
// ctx's pool; the sparsified engine draws its sparsifier randomness from
// ctx.seed().
std::unique_ptr<SddEngine> make_exact_sdd_engine(const common::Context& ctx,
                                                 linalg::DenseMatrix m,
                                                 std::size_t network_n);
std::unique_ptr<SddEngine> make_sparsified_sdd_engine(
    const common::Context& ctx, linalg::DenseMatrix m);

}  // namespace bcclap::laplacian
