// Immutable prepared-solver artifacts: the "prepare" half of the solve
// stack's prepare/apply split.
//
// Every engine's work factors into two phases with very different
// lifetimes:
//
//   prepare(ctx, g)  — sparsify, order, factor: all the per-topology work
//                      (the expensive half), producing an immutable
//                      artifact (sparsifier output, CSC/dense factors,
//                      iteration bounds);
//   apply(ctx, b)    — iterate/substitute against the artifact: the
//                      per-request work.
//
// PreparedLaplacian is that artifact. It owns copies of everything it
// needs (graphs, factors, index maps) and holds no pool, no Context and
// no mutable state, so one artifact is safe to apply concurrently from
// any number of Runtimes — and because every kernel's chunk boundaries
// depend only on (range, grain, min_work), never on the thread count, an
// artifact prepared once yields bitwise-identical solutions wherever it
// is applied. That makes prepared artifacts cacheable across requests:
// the factorization cache (core/factor_cache.h) retains them keyed by
// graph fingerprint, which is the "factor once, solve many across
// requests" economics the solver service is built on.
//
// Engines (laplacian/engine.h) are thin stateful wrappers: prepare() is
// their only engine-specific virtual; solve/solve_many are base-class
// apply calls that accumulate per-request counters.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "common/context.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_ldlt.h"
#include "linalg/vector_ops.h"
#include "sparsify/spectral_sparsify.h"

namespace bcclap::laplacian {

// Per-instance engine configuration. Prepare-time fields: `sparsify`
// (preconditioner construction — part of the cache identity). Apply-time
// fields, deliberately NOT baked into prepared artifacts so one artifact
// serves requests at any accuracy: `eps` (every engine) and
// `max_iterations` (the CG engine; 0 = 4n + 128, a generous cap for a
// baseline solver).
struct EngineOptions {
  double eps = 1e-8;
  sparsify::SparsifyOptions sparsify;
  std::size_t max_iterations = 0;
};

// The immutable post-prepare state of one engine on one graph.
//
// Threading/determinism contract: const methods only, no internal
// synchronization needed — apply() may run concurrently from multiple
// Runtimes, and its solution bytes depend on the artifact, b, opt and
// ctx's (seed, min_work_per_chunk) but never on ctx's thread count.
class PreparedLaplacian {
 public:
  virtual ~PreparedLaplacian() = default;

  virtual std::string_view engine_key() const = 0;

  // False: the prepare phase failed numerically (degenerate input); apply
  // must not be called. Unusable artifacts are never cached.
  virtual bool usable() const = 0;

  virtual std::size_t dim() const = 0;

  // Solve L_G x = b (b projected onto range(L_G) per component) to the
  // engine's accuracy contract at opt.eps. If stats is non-null, the
  // apply's own counters are *assigned* (iterations, rounds, panels) along
  // with the artifact's factor tallies — the per-call stats shape the
  // historical SolveStats contract used. Throws std::invalid_argument on
  // a wrong-sized b.
  virtual linalg::Vec apply(const common::Context& ctx, const linalg::Vec& b,
                            const EngineOptions& opt,
                            core::RunStats* stats) const = 0;

  // Batched multi-RHS apply; column j matches apply(ctx, column j)'s
  // contract (byte-identical for the exact artifacts). stats->panels = 1.
  virtual linalg::DenseMatrix apply_many(const common::Context& ctx,
                                         const linalg::DenseMatrix& b,
                                         const EngineOptions& opt,
                                         core::RunStats* stats) const = 0;

  // Preconditioner introspection (non-null only when the prepare phase
  // built one — the sparsified engine's H).
  virtual const graph::Graph* sparsifier() const { return nullptr; }
  virtual bool tree_patched() const { return false; }
  virtual std::int64_t preprocessing_rounds() const { return 0; }

  // What the prepare phase cost, for RunStats: factorization backend
  // tallies and the number of sparsifier constructions (0 or 1). A run
  // served from the cache reports none of these — it did none of the work.
  virtual std::size_t dense_factors() const { return 0; }
  virtual std::size_t sparse_factors() const { return 0; }
  virtual std::size_t sparsify_count() const { return 0; }

  // Phase breakdown (ordering/symbolic/numeric wall, supernode count,
  // fill nnz) summed over the sparse factorizations the prepare phase
  // ran; all-zero for dense-only or factorization-free artifacts. Same
  // reporting rule as the tallies above: a cache-served run adds none.
  virtual linalg::SparseFactorPhases factor_phases() const { return {}; }

  // Bytes the artifact keeps resident (graph copies, factors, index
  // maps); the factorization cache charges its LRU budget with this.
  virtual std::size_t resident_bytes() const = 0;
};

// Prepare-phase factories for the built-in engines (implemented in
// prepared.cpp; the engine wrappers in engines/ call these). Each always
// returns a non-null artifact; numerical failure is reported via
// usable() so the caller can distinguish "degenerate input" from a bug.

// Exact per-component factorization with the backend pinned to `mode`
// (kForceDense for "exact-dense", kForceSparse for "exact-sparse").
std::shared_ptr<const PreparedLaplacian> prepare_exact(
    const common::Context& ctx, const graph::Graph& g, linalg::FactorMode mode,
    std::string_view engine_key);

// The paper pipeline's prepare phase: spectral sparsifier H (seeded by
// ctx.seed()), spanning-forest patch if H lost connectivity, and the
// per-component factorization of L_H.
std::shared_ptr<const PreparedLaplacian> prepare_sparsified_chebyshev(
    const common::Context& ctx, const graph::Graph& g,
    const sparsify::SparsifyOptions& opt);

// Jacobi-CG baseline: copies the graph, the component labels and the
// weighted-degree diagonal; iteration happens at apply time.
std::shared_ptr<const PreparedLaplacian> prepare_cg(const common::Context& ctx,
                                                    const graph::Graph& g);

}  // namespace bcclap::laplacian
