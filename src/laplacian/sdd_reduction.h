// Gremban reduction from SDD systems to Laplacian systems (Section 5,
// following Kelner et al.'s notation).
//
// Given symmetric diagonally dominant M (n x n), builds the Laplacian L of
// a virtual graph on 2n vertices such that solving L [x1; x2] = [y; -y]
// yields M x = y with x = (x1 - x2) / 2. In the BCC each physical vertex
// simulates both of its virtual copies (two rounds per virtual round).
#pragma once

#include "graph/graph.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace bcclap::laplacian {

struct SddReduction {
  // The 2n-vertex virtual graph whose Laplacian realizes M.
  graph::Graph virtual_graph;
  bool valid = false;
};

// M must be SDD with symmetric structure. Entries with |value| < tol are
// treated as zero.
SddReduction gremban_reduce(const linalg::DenseMatrix& m, double tol = 1e-12);

// Convenience: lifts y to [y; -y], solves the Laplacian system exactly
// (dense factorization; the BCC solver path goes through
// SparsifiedLaplacianSolver on `virtual_graph`), and projects back.
linalg::Vec lift_rhs(const linalg::Vec& y);
linalg::Vec project_solution(const linalg::Vec& x12);

// Panel forms for the batched SDD engines: column j of the output is
// lift_rhs / project_solution of column j of the input.
linalg::DenseMatrix lift_rhs_many(const linalg::DenseMatrix& y);
linalg::DenseMatrix project_solution_many(const linalg::DenseMatrix& x12);

}  // namespace bcclap::laplacian
