#include "laplacian/bcc_solver.h"

#include <cassert>
#include <cmath>

#include "common/context.h"
#include "common/encoding.h"
#include "laplacian/sdd_reduction.h"
#include "laplacian/solver.h"
#include "linalg/cholesky.h"

namespace bcclap::laplacian {

namespace {

class ExactSddEngine final : public SddEngine {
 public:
  ExactSddEngine(const common::Context& ctx, linalg::DenseMatrix m,
                 std::size_t network_n)
      : network_n_(std::max<std::size_t>(network_n, 2)) {
    factor_ = linalg::LdltFactor::factor(ctx, m);
    if (!factor_) {
      // M may be only positive semi-definite in degenerate cases; add a
      // tiny Tikhonov ridge and retry (documented numerical guard).
      const std::size_t n = m.rows();
      double scale = 0.0;
      for (std::size_t i = 0; i < n; ++i) scale = std::max(scale, m(i, i));
      for (std::size_t i = 0; i < n; ++i) m(i, i) += 1e-12 * (scale + 1.0);
      factor_ = linalg::LdltFactor::factor(ctx, m);
    }
    assert(factor_);
  }

  linalg::Vec solve(const linalg::Vec& y, double eps) override {
    // Analytical round model (Lemma 5.1 / Theorem 1.3): one sparsification
    // (preprocessing) has already been charged per path-following phase by
    // the caller; each solve costs O(log(1/eps) log(n/eps)) rounds.
    const double safe = std::max(eps, 1e-12);
    const double logn = std::log2(static_cast<double>(network_n_));
    const std::int64_t iters = static_cast<std::int64_t>(
        std::ceil(std::sqrt(3.0) * std::log2(2.0 / safe))) + 1;
    const std::int64_t bits = enc::real_bits(
        static_cast<double>(network_n_) / safe, safe);
    rounds_ += iters * enc::rounds_for_bits(
                           bits, static_cast<std::int64_t>(2 * logn) + 2);
    return factor_->solve(y);
  }

  std::int64_t rounds_charged() const override { return rounds_; }

 private:
  std::optional<linalg::LdltFactor> factor_;
  std::size_t network_n_;
  std::int64_t rounds_ = 0;
};

class SparsifiedSddEngine final : public SddEngine {
 public:
  SparsifiedSddEngine(const common::Context& ctx, linalg::DenseMatrix m)
      : ctx_(ctx), matrix_(std::move(m)) {
    reduction_ = gremban_reduce(matrix_);
    assert(reduction_.valid && "matrix must be SDD");
    sparsify::SparsifyOptions opt;
    opt.epsilon = 0.5;
    // Gremban virtual graphs here are small (2(n-1) vertices) and rebuilt
    // on every IPM Newton step; a 2-spanner bundle keeps the per-step cost
    // bounded (bench-scale constant; see DESIGN.md section 6).
    opt.k = 2;
    opt.t = 2;
    solver_ = std::make_unique<SparsifiedLaplacianSolver>(
        ctx_, reduction_.virtual_graph, opt);
  }

  linalg::Vec solve(const linalg::Vec& y, double eps) override {
    if (solver_->usable() && !use_fallback_) {
      SolveStats stats;
      const auto x12 = solver_->solve(lift_rhs(y), eps, &stats);
      rounds_ += stats.rounds;
      auto x = project_solution(x12);
      // Residual guard: IPM-generated systems near the path's end have
      // weight spreads beyond double's reach through the Laplacian route;
      // detect and switch to the dense SDD factorization (LDL^T on a
      // diagonally dominant matrix is stable at any scaling).
      const auto r = linalg::sub(matrix_.multiply(ctx_, x), y);
      const double rel = linalg::norm2(r) /
                         std::max(linalg::norm2(y), 1e-300);
      if (rel <= std::max(eps * 10.0, 1e-6)) return x;
    }
    use_fallback_ = true;
    if (!fallback_) {
      auto m = matrix_;
      fallback_ = linalg::LdltFactor::factor(ctx_, m);
      if (!fallback_) {
        double scale = 0.0;
        for (std::size_t i = 0; i < m.rows(); ++i)
          scale = std::max(scale, m(i, i));
        for (std::size_t i = 0; i < m.rows(); ++i)
          m(i, i) += 1e-12 * (scale + 1.0);
        fallback_ = linalg::LdltFactor::factor(ctx_, m);
      }
      assert(fallback_);
    }
    return fallback_->solve(y);
  }

  std::int64_t rounds_charged() const override {
    return rounds_ + solver_->preprocessing_rounds();
  }

 private:
  common::Context ctx_;
  linalg::DenseMatrix matrix_;
  SddReduction reduction_;
  std::unique_ptr<SparsifiedLaplacianSolver> solver_;
  std::optional<linalg::LdltFactor> fallback_;
  bool use_fallback_ = false;
  std::int64_t rounds_ = 0;
};

}  // namespace

std::unique_ptr<SddEngine> make_exact_sdd_engine(const common::Context& ctx,
                                                 linalg::DenseMatrix m,
                                                 std::size_t network_n) {
  return std::make_unique<ExactSddEngine>(ctx, std::move(m), network_n);
}

std::unique_ptr<SddEngine> make_sparsified_sdd_engine(
    const common::Context& ctx, linalg::DenseMatrix m) {
  return std::make_unique<SparsifiedSddEngine>(ctx, std::move(m));
}

std::unique_ptr<SddEngine> make_exact_sdd_engine(linalg::DenseMatrix m,
                                                 std::size_t network_n) {
  return make_exact_sdd_engine(common::default_context(), std::move(m),
                               network_n);
}

std::unique_ptr<SddEngine> make_sparsified_sdd_engine(linalg::DenseMatrix m,
                                                      std::uint64_t seed) {
  return make_sparsified_sdd_engine(common::default_context().with_seed(seed),
                                    std::move(m));
}

}  // namespace bcclap::laplacian
