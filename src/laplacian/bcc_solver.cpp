#include "laplacian/bcc_solver.h"

#include <cassert>
#include <cmath>

#include "common/context.h"
#include "common/encoding.h"
#include "laplacian/sdd_reduction.h"
#include "laplacian/solver.h"
#include "linalg/cholesky.h"

namespace bcclap::laplacian {

linalg::DenseMatrix SddEngine::solve_many(const linalg::DenseMatrix& y,
                                          double eps) {
  linalg::DenseMatrix x(y.rows(), y.cols());
  for (std::size_t j = 0; j < y.cols(); ++j)
    x.set_column(j, solve(y.column(j), eps));
  return x;
}

std::int64_t exact_sdd_solve_rounds(std::size_t network_n, double eps) {
  const double safe = std::max(eps, 1e-12);
  const double logn = std::log2(static_cast<double>(network_n));
  const std::int64_t iters =
      static_cast<std::int64_t>(
          std::ceil(std::sqrt(3.0) * std::log2(2.0 / safe))) +
      1;
  const std::int64_t bits =
      enc::real_bits(static_cast<double>(network_n) / safe, safe);
  return iters *
         enc::rounds_for_bits(bits, static_cast<std::int64_t>(2 * logn) + 2);
}

std::shared_ptr<const linalg::LdltFactor> prepare_sdd_dense_factor(
    const common::Context& ctx, linalg::DenseMatrix m) {
  auto factor = linalg::LdltFactor::factor(ctx, m);
  if (!factor) {
    // M may be only positive semi-definite in degenerate cases; add a
    // tiny Tikhonov ridge and retry (documented numerical guard).
    const std::size_t n = m.rows();
    double scale = 0.0;
    for (std::size_t i = 0; i < n; ++i) scale = std::max(scale, m(i, i));
    for (std::size_t i = 0; i < n; ++i) m(i, i) += 1e-12 * (scale + 1.0);
    factor = linalg::LdltFactor::factor(ctx, m);
  }
  if (!factor) return nullptr;
  return std::make_shared<const linalg::LdltFactor>(std::move(*factor));
}

namespace {

class ExactSddEngine final : public SddEngine {
 public:
  ExactSddEngine(const common::Context& ctx, linalg::DenseMatrix m,
                 std::size_t network_n)
      : ctx_(ctx),
        network_n_(std::max<std::size_t>(network_n, 2)),
        factor_(prepare_sdd_dense_factor(ctx, std::move(m))) {
    assert(factor_);
  }

  linalg::Vec solve(const linalg::Vec& y, double eps) override {
    charge_solve(eps);
    return factor_->solve(y);
  }

  linalg::DenseMatrix solve_many(const linalg::DenseMatrix& y,
                                 double eps) override {
    // The factorization is shared; the panel fans the k substitutions out
    // over the pool. The model still charges per right-hand side, so the
    // rounds match k sequential solves exactly.
    for (std::size_t j = 0; j < y.cols(); ++j) charge_solve(eps);
    return factor_->solve_many(ctx_, y);
  }

  std::int64_t rounds_charged() const override { return rounds_; }

  std::string_view key() const override { return "exact-dense"; }

 private:
  // Analytical round model (Lemma 5.1 / Theorem 1.3): one sparsification
  // (preprocessing) has already been charged per path-following phase by
  // the caller; each solve costs O(log(1/eps) log(n/eps)) rounds.
  void charge_solve(double eps) {
    rounds_ += exact_sdd_solve_rounds(network_n_, eps);
  }

  common::Context ctx_;
  std::size_t network_n_;
  std::shared_ptr<const linalg::LdltFactor> factor_;
  std::int64_t rounds_ = 0;
};

class SparsifiedSddEngine final : public SddEngine {
 public:
  SparsifiedSddEngine(const common::Context& ctx, linalg::DenseMatrix m)
      : ctx_(ctx), matrix_(std::move(m)) {
    reduction_ = gremban_reduce(matrix_);
    assert(reduction_.valid && "matrix must be SDD");
    sparsify::SparsifyOptions opt;
    opt.epsilon = 0.5;
    // Gremban virtual graphs here are small (2(n-1) vertices) and rebuilt
    // on every IPM Newton step; a 2-spanner bundle keeps the per-step cost
    // bounded (bench-scale constant; see DESIGN.md section 6).
    opt.k = 2;
    opt.t = 2;
    solver_ = std::make_unique<SparsifiedLaplacianSolver>(
        ctx_, reduction_.virtual_graph, opt);
  }

  linalg::Vec solve(const linalg::Vec& y, double eps) override {
    if (solver_->usable() && !use_fallback_) {
      SolveStats stats;
      const auto x12 = solver_->solve(lift_rhs(y), eps, &stats);
      rounds_ += stats.rounds;
      auto x = project_solution(x12);
      // Residual guard: IPM-generated systems near the path's end have
      // weight spreads beyond double's reach through the Laplacian route;
      // detect and switch to the dense SDD factorization (LDL^T on a
      // diagonally dominant matrix is stable at any scaling).
      if (residual_ok(x, y, eps)) return x;
    }
    use_fallback_ = true;
    ensure_fallback();
    return fallback_->solve(y);
  }

  linalg::DenseMatrix solve_many(const linalg::DenseMatrix& y,
                                 double eps) override {
    const std::size_t k = y.cols();
    linalg::DenseMatrix x(y.rows(), k);
    if (k == 0) return x;
    // Columns [0, checked) passed the residual guard on the sparsified
    // path; the rest (first guard failure onward — the sequential loop's
    // sticky use_fallback_) go through the dense factorization.
    std::size_t checked = 0;
    if (solver_->usable() && !use_fallback_) {
      // One batched sparsified attempt covers the whole panel; the guard
      // then walks columns in order, replaying the sequential loop's
      // charging: every attempted column (passing or first-failing) costs
      // its single-RHS rounds, columns after the first failure cost none.
      SolveStats stats;
      const auto x12 = solver_->solve_many(lift_rhs_many(y), eps, &stats);
      const auto cand = project_solution_many(x12);
      const std::int64_t per_col = stats.rounds / static_cast<std::int64_t>(k);
      while (checked < k) {
        rounds_ += per_col;
        const linalg::Vec xc = cand.column(checked);
        if (!residual_ok(xc, y.column(checked), eps)) break;
        x.set_column(checked, xc);
        ++checked;
      }
      if (checked == k) return x;
    }
    use_fallback_ = true;
    ensure_fallback();
    linalg::DenseMatrix rest(y.rows(), k - checked);
    for (std::size_t j = checked; j < k; ++j)
      rest.set_column(j - checked, y.column(j));
    const linalg::DenseMatrix xr = fallback_->solve_many(ctx_, rest);
    for (std::size_t j = checked; j < k; ++j)
      x.set_column(j, xr.column(j - checked));
    return x;
  }

  std::int64_t rounds_charged() const override {
    return rounds_ + solver_->preprocessing_rounds();
  }

  std::string_view key() const override { return "sparsified-chebyshev"; }

 private:
  bool residual_ok(const linalg::Vec& x, const linalg::Vec& y,
                   double eps) const {
    const auto r = linalg::sub(matrix_.multiply(ctx_, x), y);
    const double rel = linalg::norm2(r) / std::max(linalg::norm2(y), 1e-300);
    return rel <= std::max(eps * 10.0, 1e-6);
  }

  void ensure_fallback() {
    if (fallback_) return;
    fallback_ = prepare_sdd_dense_factor(ctx_, matrix_);
    assert(fallback_);
  }

  common::Context ctx_;
  linalg::DenseMatrix matrix_;
  SddReduction reduction_;
  std::unique_ptr<SparsifiedLaplacianSolver> solver_;
  std::shared_ptr<const linalg::LdltFactor> fallback_;
  bool use_fallback_ = false;
  std::int64_t rounds_ = 0;
};

}  // namespace

std::unique_ptr<SddEngine> make_exact_sdd_engine(const common::Context& ctx,
                                                 linalg::DenseMatrix m,
                                                 std::size_t network_n) {
  return std::make_unique<ExactSddEngine>(ctx, std::move(m), network_n);
}

std::unique_ptr<SddEngine> make_sparsified_sdd_engine(
    const common::Context& ctx, linalg::DenseMatrix m) {
  return std::make_unique<SparsifiedSddEngine>(ctx, std::move(m));
}

}  // namespace bcclap::laplacian
