#include "flow/ssp.h"

#include <limits>
#include <queue>
#include <vector>

namespace bcclap::flow {

namespace {
struct ResidualArc {
  std::size_t to;
  std::int64_t cap;
  std::int64_t cost;
  std::size_t rev;
  std::size_t orig;  // SIZE_MAX for reverse arcs
};
constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max() / 4;
}  // namespace

graph::FlowResult min_cost_max_flow_ssp(const graph::Digraph& g,
                                        std::size_t s, std::size_t t) {
  const std::size_t n = g.num_vertices();
  std::vector<std::vector<ResidualArc>> adj(n);
  for (std::size_t a = 0; a < g.num_arcs(); ++a) {
    const auto& arc = g.arc(a);
    adj[arc.tail].push_back(
        {arc.head, arc.capacity, arc.cost, adj[arc.head].size(), a});
    adj[arc.head].push_back(
        {arc.tail, 0, -arc.cost, adj[arc.tail].size() - 1,
         std::numeric_limits<std::size_t>::max()});
  }

  std::vector<std::int64_t> potential(n, 0);  // costs >= 0: zero init valid
  graph::FlowResult out;
  out.flow.assign(g.num_arcs(), 0);

  while (true) {
    // Dijkstra on reduced costs.
    std::vector<std::int64_t> dist(n, kInf);
    std::vector<std::pair<std::size_t, std::size_t>> parent(
        n, {std::numeric_limits<std::size_t>::max(), 0});
    using Item = std::pair<std::int64_t, std::size_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[s] = 0;
    pq.push({0, s});
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (d > dist[v]) continue;
      for (std::size_t i = 0; i < adj[v].size(); ++i) {
        const auto& e = adj[v][i];
        if (e.cap <= 0) continue;
        const std::int64_t nd = d + e.cost + potential[v] - potential[e.to];
        if (nd < dist[e.to]) {
          dist[e.to] = nd;
          parent[e.to] = {v, i};
          pq.push({nd, e.to});
        }
      }
    }
    if (dist[t] >= kInf) break;  // no augmenting path: flow is maximum
    for (std::size_t v = 0; v < n; ++v) {
      if (dist[v] < kInf) potential[v] += dist[v];
    }
    // Bottleneck along the shortest path.
    std::int64_t push = kInf;
    for (std::size_t v = t; v != s;) {
      const auto [pv, pi] = parent[v];
      push = std::min(push, adj[pv][pi].cap);
      v = pv;
    }
    for (std::size_t v = t; v != s;) {
      const auto [pv, pi] = parent[v];
      auto& e = adj[pv][pi];
      e.cap -= push;
      adj[e.to][e.rev].cap += push;
      v = pv;
    }
    out.value += push;
  }

  for (std::size_t v = 0; v < n; ++v) {
    for (const auto& e : adj[v]) {
      if (e.orig != std::numeric_limits<std::size_t>::max()) {
        out.flow[e.orig] = g.arc(e.orig).capacity - e.cap;
      }
    }
  }
  out.cost = graph::flow_cost(g, out.flow);
  return out;
}

}  // namespace bcclap::flow
