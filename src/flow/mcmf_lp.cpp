#include "flow/mcmf_lp.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace bcclap::flow {

namespace {

// Variable layout: [x (m arcs)] [y (nv-1)] [z (nv-1)] [F (1, combined only)].
struct Layout {
  std::size_t m;
  std::size_t nv1;  // |V| - 1
  bool has_f;
  std::size_t y0() const { return m; }
  std::size_t z0() const { return m + nv1; }
  std::size_t f() const { return m + 2 * nv1; }
  std::size_t total() const { return m + 2 * nv1 + (has_f ? 1 : 0); }
};

}  // namespace

McmfLp build_mcmf_lp(const graph::Digraph& g, std::size_t s, std::size_t t,
                     rng::Stream& stream) {
  const std::size_t m = g.num_arcs();
  const std::size_t nv = g.num_vertices();
  assert(s != t && s < nv && t < nv);
  const std::int64_t max_cost = std::max<std::int64_t>(g.max_abs_cost(), 1);
  const std::int64_t max_cap = std::max<std::int64_t>(g.max_capacity(), 1);

  McmfLp out;
  out.num_arcs = m;
  out.num_vertices = nv;
  out.s = s;
  out.t = t;

  // Daitch-Spielman perturbation via the isolation lemma: r_e uniform in
  // [1, R] with R = 2m gives a unique min-cost flow with probability >= 1/2
  // when the noise denominator D = 2 m R keeps total noise below the
  // integer cost granularity.
  const std::int64_t big_r = static_cast<std::int64_t>(2 * m);
  out.cost_scale = static_cast<std::int64_t>(2 * m) * big_r;  // D
  out.perturbed_cost.resize(m);
  for (std::size_t a = 0; a < m; ++a) {
    const std::int64_t r = stream.next_int(1, big_r);
    out.perturbed_cost[a] = g.arc(a).cost * out.cost_scale + r;
  }

  const Layout lay{m, nv - 1, /*has_f=*/true};
  auto col = [&](std::size_t v) { return v < s ? v : v - 1; };

  std::vector<linalg::Triplet> trips;
  for (std::size_t a = 0; a < m; ++a) {
    const auto& arc = g.arc(a);
    if (arc.head != s) trips.push_back({a, col(arc.head), 1.0});
    if (arc.tail != s) trips.push_back({a, col(arc.tail), -1.0});
  }
  for (std::size_t v = 0; v < nv; ++v) {
    if (v == s) continue;
    trips.push_back({lay.y0() + col(v), col(v), 1.0});
    trips.push_back({lay.z0() + col(v), col(v), -1.0});
  }
  trips.push_back({lay.f(), col(t), -1.0});

  const double big_m = static_cast<double>(max_cost);
  // Dominance-preserving penalties (see header): the flow bonus beats any
  // path cost in perturbed units; the slack penalty beats the flow bonus.
  out.flow_bonus = 4.0 * static_cast<double>(m) *
                   static_cast<double>(out.cost_scale) * (big_m + 1.0);
  out.lambda = 4.0 * out.flow_bonus;

  const double y_cap =
      4.0 * static_cast<double>(nv + m) * static_cast<double>(max_cap);
  const double f_cap =
      2.0 * static_cast<double>(nv) * static_cast<double>(max_cap);

  lp::LpProblem prob;
  prob.a = linalg::CsrMatrix(lay.total(), nv - 1, std::move(trips));
  prob.b.assign(nv - 1, 0.0);
  prob.c.assign(lay.total(), 0.0);
  prob.lower.assign(lay.total(), 0.0);
  prob.upper.assign(lay.total(), 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    prob.c[a] = static_cast<double>(out.perturbed_cost[a]);
    prob.upper[a] = static_cast<double>(g.arc(a).capacity);
  }
  for (std::size_t i = 0; i < 2 * lay.nv1; ++i) {
    prob.c[lay.y0() + i] = out.lambda;
    prob.upper[lay.y0() + i] = y_cap;
  }
  prob.c[lay.f()] = -2.0 * static_cast<double>(nv) * out.flow_bonus;
  prob.upper[lay.f()] = f_cap;

  // Interior point (Section 5): x = c/2, F = f_cap/2, slacks absorb the
  // residual r = F e_t - B x with a strictly positive base.
  linalg::Vec x0(lay.total(), 0.0);
  for (std::size_t a = 0; a < m; ++a)
    x0[a] = 0.5 * static_cast<double>(g.arc(a).capacity);
  const double f0 = 0.5 * f_cap;
  x0[lay.f()] = f0;
  linalg::Vec residual(nv - 1, 0.0);
  {
    const auto bx = prob.a.multiply_transpose(x0);  // A^T x0 so far
    for (std::size_t v = 0; v < nv - 1; ++v) residual[v] = -bx[v];
  }
  const double base = 0.25 * y_cap;
  for (std::size_t v = 0; v < nv - 1; ++v) {
    x0[lay.y0() + v] = base + std::max(residual[v], 0.0);
    x0[lay.z0() + v] = base + std::max(-residual[v], 0.0);
    assert(x0[lay.y0() + v] < y_cap && x0[lay.z0() + v] < y_cap);
  }
  out.interior_point = std::move(x0);
  out.problem = std::move(prob);
  return out;
}

std::vector<std::int64_t> round_flow(const McmfLp& lp, const linalg::Vec& x) {
  std::vector<std::int64_t> flow(lp.num_arcs);
  for (std::size_t a = 0; a < lp.num_arcs; ++a) {
    flow[a] = std::llround(x[a]);
    flow[a] = std::max<std::int64_t>(flow[a], 0);
  }
  return flow;
}

}  // namespace bcclap::flow
