#include "flow/dinic.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>

namespace bcclap::flow {

namespace {
struct ResidualArc {
  std::size_t to;
  std::int64_t cap;
  std::size_t rev;     // index of reverse arc in adj[to]
  std::size_t orig;    // original arc id, SIZE_MAX for reverse arcs
};
}  // namespace

graph::FlowResult max_flow_dinic(const graph::Digraph& g, std::size_t s,
                                 std::size_t t) {
  const std::size_t n = g.num_vertices();
  std::vector<std::vector<ResidualArc>> adj(n);
  for (std::size_t a = 0; a < g.num_arcs(); ++a) {
    const auto& arc = g.arc(a);
    adj[arc.tail].push_back(
        {arc.head, arc.capacity, adj[arc.head].size(), a});
    adj[arc.head].push_back(
        {arc.tail, 0, adj[arc.tail].size() - 1,
         std::numeric_limits<std::size_t>::max()});
  }

  std::vector<int> level(n);
  std::vector<std::size_t> iter(n);

  auto bfs = [&]() {
    std::fill(level.begin(), level.end(), -1);
    std::queue<std::size_t> q;
    level[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const std::size_t v = q.front();
      q.pop();
      for (const auto& e : adj[v]) {
        if (e.cap > 0 && level[e.to] < 0) {
          level[e.to] = level[v] + 1;
          q.push(e.to);
        }
      }
    }
    return level[t] >= 0;
  };

  std::function<std::int64_t(std::size_t, std::int64_t)> dfs =
      [&](std::size_t v, std::int64_t f) -> std::int64_t {
    if (v == t) return f;
    for (std::size_t& i = iter[v]; i < adj[v].size(); ++i) {
      ResidualArc& e = adj[v][i];
      if (e.cap > 0 && level[v] < level[e.to]) {
        const std::int64_t d = dfs(e.to, std::min(f, e.cap));
        if (d > 0) {
          e.cap -= d;
          adj[e.to][e.rev].cap += d;
          return d;
        }
      }
    }
    return 0;
  };

  std::int64_t total = 0;
  while (bfs()) {
    std::fill(iter.begin(), iter.end(), 0);
    while (true) {
      const std::int64_t f =
          dfs(s, std::numeric_limits<std::int64_t>::max());
      if (f == 0) break;
      total += f;
    }
  }

  graph::FlowResult out;
  out.flow.assign(g.num_arcs(), 0);
  for (std::size_t v = 0; v < n; ++v) {
    for (const auto& e : adj[v]) {
      if (e.orig != std::numeric_limits<std::size_t>::max()) {
        out.flow[e.orig] = g.arc(e.orig).capacity - e.cap;
      }
    }
  }
  out.value = total;
  out.cost = graph::flow_cost(g, out.flow);
  return out;
}

}  // namespace bcclap::flow
