// Theorem 1.1 pipeline: exact min-cost max-flow via the LP solver.
//
// The solver runs two numerically benign LPs instead of the paper's single
// combined LP (whose worst-case penalty constants overflow doubles; see
// DESIGN.md section 2):
//   Stage A (max flow): min 2*(1'y + 1'z) - F  over the Section 5 polytope
//     — the optimum is -F* with zero slack, and F* is integral, so a 0.2-
//     approximate solve rounds to the exact max-flow value.
//   Stage B (min cost): min q~'x + lambda*(1'y + 1'z) with F fixed to F*,
//     q~ carrying the Daitch-Spielman perturbation; solved to additive
//     1/(3D) so the unique perturbed optimum rounds to the exact integral
//     min-cost flow.
// Rounded candidates are feasibility-checked; on failure the perturbation
// is redrawn (the paper's footnote-7 boosting).
#pragma once

#include <cstdint>

#include "common/context.h"
#include "core/stats.h"
#include "graph/digraph.h"
#include "lp/lp_solver.h"

namespace bcclap::flow {

struct McmfOptions {
  lp::LpOptions lp;            // IPM configuration for both stages
  std::size_t max_retries = 4; // perturbation redraws (boosting)
  std::uint64_t seed = 42;
};

struct McmfIpmResult {
  graph::FlowResult flow;
  bool exact = false;          // rounded flow is feasible with value F*
  std::size_t retries = 0;
  std::size_t path_steps = 0;  // IPM path steps across stages and retries
  std::size_t newton_steps = 0;
  std::int64_t rounds = 0;     // accounted BCC rounds
  std::int64_t max_flow_value = 0;
  // Unified shape (core/stats.h): iterations = path_steps, steps =
  // newton_steps, rounds as above. Kept in sync with the legacy fields.
  core::RunStats stats;
};

// Runs both LP stages on ctx's pool. The Daitch-Spielman perturbation
// stream stays seeded by opt.seed (so reruns with a fixed McmfOptions are
// reproducible across Runtimes); ctx.seed() governs any sparsified Gram
// engines a caller-supplied opt.lp.gram_factory builds from its context.
McmfIpmResult min_cost_max_flow_ipm(const common::Context& ctx,
                                    const graph::Digraph& g, std::size_t s,
                                    std::size_t t, const McmfOptions& opt);

}  // namespace bcclap::flow
