// The Section 5 LP formulation of min-cost max-flow.
//
// Variables (x, y, z, F) in R^{|E| + 2(|V|-1) + 1}:
//   minimize  q~^T x + lambda (1^T y + 1^T z) - flow_bonus * F
//   s.t.      B x + y - z = F e_t          (B: incidence without s's row)
//             0 <= x <= c, 0 <= y,z <= y_cap, 0 <= F <= F_cap
// plus the Daitch-Spielman random cost perturbation q~ that makes the
// optimal flow unique with probability >= 1/2, so the approximate LP
// solution rounds to the exact integral optimum.
//
// The paper's penalty constants (lambda = 440|E|^4 M~^2 M^3 with
// M~ = 8|E|^2 M^3) exceed double range on any nontrivial instance; we use
// the minimal dominance-preserving versions (flow_bonus > max path cost,
// lambda > flow_bonus), which enforce the same lexicographic priorities —
// see DESIGN.md section 2. Exactness is verified (and on failure the
// perturbation is redrawn, the paper's footnote-7 boosting).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "graph/digraph.h"
#include "lp/lp_solver.h"

namespace bcclap::flow {

struct McmfLp {
  lp::LpProblem problem;
  linalg::Vec interior_point;     // the Section 5 explicit interior point
  std::vector<std::int64_t> perturbed_cost;  // q~ (scaled to integers)
  std::int64_t cost_scale = 1;    // q~ = cost_scale * q + noise
  double flow_bonus = 0.0;        // objective coefficient of F
  double lambda = 0.0;            // slack penalty
  std::size_t num_arcs = 0;
  std::size_t num_vertices = 0;
  std::size_t s = 0;
  std::size_t t = 0;
};

// Builds the LP for (g, s, t). `stream` drives the cost perturbation.
McmfLp build_mcmf_lp(const graph::Digraph& g, std::size_t s, std::size_t t,
                     rng::Stream& stream);

// Extracts the arc-flow part of an LP iterate and rounds it to integers
// (Section 5's (1 - eps) scaling + rounding).
std::vector<std::int64_t> round_flow(const McmfLp& lp, const linalg::Vec& x);

}  // namespace bcclap::flow
