// Dinic's max-flow algorithm — combinatorial baseline used to validate the
// flow value F produced by the LP pipeline.
#pragma once

#include "graph/digraph.h"

namespace bcclap::flow {

// Maximum s-t flow value and a witness flow per arc.
graph::FlowResult max_flow_dinic(const graph::Digraph& g, std::size_t s,
                                 std::size_t t);

}  // namespace bcclap::flow
