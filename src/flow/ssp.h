// Successive-shortest-path min-cost max-flow with Johnson potentials — the
// exact combinatorial baseline Theorem 1.1's pipeline is validated against.
// Costs must be nonnegative (our generators guarantee it); capacities
// integral, so the result is an exact integral min-cost max-flow.
#pragma once

#include "graph/digraph.h"

namespace bcclap::flow {

graph::FlowResult min_cost_max_flow_ssp(const graph::Digraph& g,
                                        std::size_t s, std::size_t t);

}  // namespace bcclap::flow
