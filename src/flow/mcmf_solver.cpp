#include "flow/mcmf_solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.h"
#include "flow/mcmf_lp.h"

namespace bcclap::flow {

namespace {

struct StageLp {
  lp::LpProblem problem;
  linalg::Vec x0;
  bool has_f = false;
  std::size_t m = 0;
  std::size_t nv1 = 0;
};

// Shared polytope: rows [x | y | z | (F)], columns = vertices minus s.
StageLp build_stage(const graph::Digraph& g, std::size_t s, std::size_t t,
                    bool with_f, double f_target,
                    const linalg::Vec& arc_cost, double slack_penalty,
                    double f_cost) {
  const std::size_t m = g.num_arcs();
  const std::size_t nv = g.num_vertices();
  const std::size_t nv1 = nv - 1;
  const std::int64_t max_cap = std::max<std::int64_t>(g.max_capacity(), 1);
  auto col = [&](std::size_t v) { return v < s ? v : v - 1; };

  StageLp out;
  out.has_f = with_f;
  out.m = m;
  out.nv1 = nv1;
  const std::size_t total = m + 2 * nv1 + (with_f ? 1 : 0);

  std::vector<linalg::Triplet> trips;
  for (std::size_t a = 0; a < m; ++a) {
    const auto& arc = g.arc(a);
    if (arc.head != s) trips.push_back({a, col(arc.head), 1.0});
    if (arc.tail != s) trips.push_back({a, col(arc.tail), -1.0});
  }
  for (std::size_t v = 0; v < nv; ++v) {
    if (v == s) continue;
    trips.push_back({m + col(v), col(v), 1.0});
    trips.push_back({m + nv1 + col(v), col(v), -1.0});
  }
  if (with_f) trips.push_back({m + 2 * nv1, col(t), -1.0});

  const double y_cap =
      4.0 * static_cast<double>(nv + m) * static_cast<double>(max_cap);
  const double f_cap =
      2.0 * static_cast<double>(nv) * static_cast<double>(max_cap);

  auto& prob = out.problem;
  prob.a = linalg::CsrMatrix(total, nv1, std::move(trips));
  prob.b.assign(nv1, 0.0);
  if (!with_f) prob.b[col(t)] = f_target;  // B x + y - z = F* e_t
  prob.c.assign(total, 0.0);
  prob.lower.assign(total, 0.0);
  prob.upper.assign(total, 0.0);
  for (std::size_t a = 0; a < m; ++a) {
    prob.c[a] = arc_cost.empty() ? 0.0 : arc_cost[a];
    prob.upper[a] = static_cast<double>(g.arc(a).capacity);
  }
  for (std::size_t i = 0; i < 2 * nv1; ++i) {
    prob.c[m + i] = slack_penalty;
    prob.upper[m + i] = y_cap;
  }
  if (with_f) {
    prob.c[m + 2 * nv1] = f_cost;
    prob.upper[m + 2 * nv1] = f_cap;
  }

  // Interior point: mid-capacity flow, slacks absorbing the residual.
  linalg::Vec x0(total, 0.0);
  for (std::size_t a = 0; a < m; ++a)
    x0[a] = 0.5 * static_cast<double>(g.arc(a).capacity);
  if (with_f) x0[m + 2 * nv1] = 0.5 * f_cap;
  const auto partial = prob.a.multiply_transpose(x0);
  const double base = 0.25 * y_cap;
  for (std::size_t v = 0; v < nv1; ++v) {
    const double residual = prob.b[v] - partial[v];  // what y - z must add
    x0[m + v] = base + std::max(residual, 0.0);
    x0[m + nv1 + v] = base + std::max(-residual, 0.0);
    assert(x0[m + v] < y_cap && x0[m + nv1 + v] < y_cap);
  }
  out.x0 = std::move(x0);
  return out;
}

}  // namespace

McmfIpmResult min_cost_max_flow_ipm(const common::Context& ctx,
                                    const graph::Digraph& g, std::size_t s,
                                    std::size_t t, const McmfOptions& opt) {
  McmfIpmResult out;
  const std::size_t m = g.num_arcs();
  rng::Stream stream(opt.seed);

  // ---- Stage A: maximum flow value. Optimum is -F* with F* integral.
  lp::LpOptions lp_a = opt.lp;
  lp_a.epsilon = 0.05;
  StageLp stage_a = build_stage(g, s, t, /*with_f=*/true, 0.0, {},
                                /*slack_penalty=*/2.0, /*f_cost=*/-1.0);
  const auto res_a = lp::lp_solve(ctx, stage_a.problem, stage_a.x0, lp_a);
  out.path_steps += res_a.path_steps;
  out.newton_steps += res_a.newton_steps;
  out.rounds += res_a.rounds;
  if (!res_a.converged) {
    out.stats.rounds = out.rounds;
    out.stats.iterations = out.path_steps;
    out.stats.steps = out.newton_steps;
    return out;
  }
  std::int64_t f_star =
      std::llround(res_a.x[m + 2 * stage_a.nv1]);
  f_star = std::max<std::int64_t>(f_star, 0);
  out.max_flow_value = f_star;

  // ---- Stage B: min cost at F = F*, with perturbation + boosting.
  const double big_m = static_cast<double>(std::max<std::int64_t>(
      g.max_abs_cost(), 1));
  const double d_denom = 4.0 * static_cast<double>(m) * static_cast<double>(m);
  bool have_best = false;
  std::vector<std::int64_t> best_flow;
  std::int64_t best_cost = 0;
  for (std::size_t attempt = 0; attempt <= opt.max_retries; ++attempt) {
    rng::Stream pert = stream.child(attempt);
    linalg::Vec q_tilde(m);
    for (std::size_t a = 0; a < m; ++a) {
      const double noise =
          static_cast<double>(
              pert.next_int(1, static_cast<std::int64_t>(2 * m))) /
          d_denom;
      q_tilde[a] = static_cast<double>(g.arc(a).cost) + noise;
    }
    lp::LpOptions lp_b = opt.lp;
    lp_b.epsilon = 1.0 / (3.0 * d_denom);
    const double lambda = 4.0 * static_cast<double>(m) * (big_m + 1.0);
    // Candidate targets in descending order: stage A's rounding can be
    // off by one in either direction, so probe F*+1 first (a max-flow
    // overshoot fails the value check and falls through harmlessly).
    for (std::int64_t f_target : {f_star + 1, f_star, f_star - 1}) {
      if (f_target < 0) continue;
      StageLp stage_b = build_stage(g, s, t, /*with_f=*/false,
                                    static_cast<double>(f_target), q_tilde,
                                    lambda, 0.0);
      const auto res_b = lp::lp_solve(ctx, stage_b.problem, stage_b.x0, lp_b);
      out.path_steps += res_b.path_steps;
      out.newton_steps += res_b.newton_steps;
      out.rounds += res_b.rounds;
      // Centering can stall at extreme path parameters in double precision
      // while the iterate is already rounding-grade; the feasibility and
      // value checks below are the authoritative validation, so attempt
      // the rounding regardless of the convergence flag.
      std::vector<std::int64_t> flow(m);
      for (std::size_t a = 0; a < m; ++a) {
        flow[a] = std::clamp<std::int64_t>(std::llround(res_b.x[a]), 0,
                                           g.arc(a).capacity);
      }
      if (!graph::is_feasible_flow(g, flow, s, t)) continue;
      const std::int64_t value = graph::flow_value(g, flow, s);
      if (value != f_target) continue;
      const std::int64_t cost = graph::flow_cost(g, flow);
      // Keep the best (max value, then min cost) candidate.
      if (!have_best || value > graph::flow_value(g, best_flow, s) ||
          (value == graph::flow_value(g, best_flow, s) && cost < best_cost)) {
        have_best = true;
        best_flow = flow;
        best_cost = cost;
      }
      break;  // this perturbation produced a feasible rounding
    }
    out.retries = attempt;
    if (have_best && graph::flow_value(g, best_flow, s) >= f_star) {
      break;  // boosted enough
    }
  }

  if (have_best) {
    out.flow.flow = best_flow;
    out.flow.value = graph::flow_value(g, best_flow, s);
    out.flow.cost = best_cost;
    out.exact = true;
    out.max_flow_value = out.flow.value;
  }
  out.stats.rounds = out.rounds;
  out.stats.iterations = out.path_steps;
  out.stats.steps = out.newton_steps;
  return out;
}

}  // namespace bcclap::flow
