#include "service/solver_service.h"

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/runtime.h"
#include "graph/fingerprint.h"
#include "laplacian/engine.h"

namespace bcclap::service {

namespace {

bool same_bits(double a, double b) {
  std::uint64_t ba = 0, bb = 0;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

}  // namespace

const char* request_type_name(RequestType type) {
  switch (type) {
    case RequestType::kSolve:
      return "solve";
    case RequestType::kSolveMany:
      return "solve_many";
    case RequestType::kSparsify:
      return "sparsify";
    case RequestType::kMcmf:
      return "mcmf";
  }
  return "unknown";
}

const char* admission_reason(Admission admission) {
  switch (admission) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kAcceptedWarm:
      return "accepted-warm";
    case Admission::kRejectedQueueFull:
      return "queue-full";
    case Admission::kRejectedColdOversized:
      return "cold-oversized";
    case Admission::kRejectedShutdown:
      return "shutting-down";
  }
  return "unknown";
}

SolverService::SolverService(const ServiceOptions& opts) : opts_(opts) {
  if (opts_.max_coalesce == 0) opts_.max_coalesce = 1;
  if (opts_.queue_capacity == 0) opts_.queue_capacity = 1;
  if (opts_.factor_cache) {
    cache_ = opts_.factor_cache;
  } else if (opts_.factor_cache_bytes > 0) {
    cache_ = std::make_shared<core::FactorCache>(opts_.factor_cache_bytes);
  }
  threads_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

SolverService::~SolverService() { shutdown(); }

Submission SolverService::submit(Request req) {
  Ticket ticket;
  ticket.laplacian = req.type == RequestType::kSolve ||
                     req.type == RequestType::kSolveMany;
  if (ticket.laplacian) {
    // The admission key mirrors Runtime::prepare_engine's cache key
    // exactly: resolved concrete engine, canonical fingerprint, the
    // request seed and the service-wide chunking policy. resolve() throws
    // std::invalid_argument on unknown keys — fail at the boundary, not
    // on a worker.
    auto& registry = laplacian::EngineRegistry::instance();
    ticket.cache_key.engine = registry.resolve(
        req.engine, req.graph.num_vertices(),
        laplacian::EngineRegistry::laplacian_density(req.graph), req.eps);
    ticket.cache_key.fingerprint = graph::fingerprint(req.graph);
    ticket.cache_key.seed = req.seed;
    ticket.cache_key.min_work_per_chunk = opts_.min_work_per_chunk;
    laplacian::EngineOptions eopt;
    eopt.eps = req.eps;
    eopt.sparsify = req.sparsify;
    ticket.cache_key.options_hash = core::prepare_options_hash(eopt);
  }
  // Residency probe outside any admission consequence for the cache: peek
  // neither counts a hit/miss nor touches the LRU order.
  const bool warm =
      ticket.laplacian && cache_ && cache_->peek(ticket.cache_key) != nullptr;

  Submission out;
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    ++stats_.rejected_shutdown;
    out.admission = Admission::kRejectedShutdown;
    return out;
  }
  if (queue_.size() >= opts_.queue_capacity) {
    ++stats_.rejected_queue_full;
    out.admission = Admission::kRejectedQueueFull;
    return out;
  }
  if (!warm && ticket.laplacian && opts_.max_cold_vertices > 0 &&
      req.graph.num_vertices() > opts_.max_cold_vertices) {
    ++stats_.rejected_cold_oversized;
    out.admission = Admission::kRejectedColdOversized;
    return out;
  }
  ticket.req = std::move(req);
  ticket.reply = std::make_shared<PendingReply>();
  out.reply = ticket.reply;
  if (warm) {
    // Warm-topology requests jump the queue: their serve is apply-only.
    out.admission = Admission::kAcceptedWarm;
    ++stats_.warm_admissions;
    queue_.push_front(std::move(ticket));
  } else {
    out.admission = Admission::kAccepted;
    queue_.push_back(std::move(ticket));
  }
  ++stats_.accepted;
  if (queue_.size() > stats_.queue_high_water) {
    stats_.queue_high_water = queue_.size();
  }
  cv_.notify_one();
  return out;
}

std::size_t SolverService::drain(std::size_t max_requests) {
  Worker worker;
  std::size_t served = 0;
  std::vector<Ticket> batch;
  while (served < max_requests) {
    batch.clear();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) break;
      take_batch_locked(&batch);
    }
    serve_batch(worker, batch);
    served += batch.size();
  }
  return served;
}

void SolverService::shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (!joined_) {
    // Workers drain the queue before exiting their loop; join therefore
    // waits for every queued request to be fulfilled.
    for (auto& thread : threads_) thread.join();
    threads_.clear();
    joined_ = true;
  }
  // Caller-driven services (workers = 0) drain here, on this thread, so
  // "accepted implies fulfilled" holds in every mode.
  drain();
}

ServiceStats SolverService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  if (cache_) out.cache = cache_->stats();
  return out;
}

std::size_t SolverService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void SolverService::worker_loop() {
  Worker worker;
  std::vector<Ticket> batch;
  for (;;) {
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      take_batch_locked(&batch);
    }
    serve_batch(worker, batch);
  }
}

namespace {

// Coalescing requires agreement on everything that determines the shared
// panel's bytes: the resolved artifact identity (the full cache key — a
// field-by-field comparison, never the hash alone would not do: the key
// already compares every field exactly) plus the apply-time eps and the
// exact prepare-option fields (belt and braces over options_hash).
bool coalesce_compatible(const sparsify::SparsifyOptions& a,
                         const sparsify::SparsifyOptions& b) {
  return same_bits(a.epsilon, b.epsilon) && a.k == b.k && a.t == b.t &&
         same_bits(a.t_constant, b.t_constant) &&
         a.iterations == b.iterations && a.growing_t == b.growing_t;
}

}  // namespace

void SolverService::take_batch_locked(std::vector<Ticket>* batch) {
  batch->push_back(std::move(queue_.front()));
  queue_.pop_front();
  if (batch->front().req.type != RequestType::kSolve ||
      opts_.max_coalesce <= 1) {
    return;
  }
  // The push_back below may reallocate *batch, so the head's matching
  // fields are taken by value — a reference into the vector would dangle.
  const core::FactorCacheKey head_key = batch->front().cache_key;
  const double head_eps = batch->front().req.eps;
  const sparsify::SparsifyOptions head_sparsify = batch->front().req.sparsify;
  for (auto it = queue_.begin();
       it != queue_.end() && batch->size() < opts_.max_coalesce;) {
    if (it->req.type == RequestType::kSolve && it->cache_key == head_key &&
        same_bits(it->req.eps, head_eps) &&
        coalesce_compatible(it->req.sparsify, head_sparsify)) {
      batch->push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void SolverService::serve_batch(Worker& worker, std::vector<Ticket>& batch) {
  if (batch.size() == 1) {
    Reply reply = serve_one(worker, batch[0].req);
    const std::size_t failed = reply.status == ReplyStatus::kFailed ? 1 : 0;
    record_served(batch, reply.stats, failed, /*coalesced=*/false);
    batch[0].reply->fulfill(std::move(reply));
    return;
  }

  // Coalesced panel: every ticket is a single-RHS solve agreeing on
  // (fingerprint, seed, engine, prepare options, eps). One solve_many
  // run serves them all; column j is byte-identical to the solo solve
  // (the PR 5 panel contract), so coalescing never changes reply bytes.
  const Request& head = batch[0].req;
  const std::size_t n = head.graph.num_vertices();
  linalg::DenseMatrix panel(n, batch.size());
  for (std::size_t j = 0; j < batch.size(); ++j) {
    panel.set_column(j, batch[j].req.b);
  }
  LaplacianSolveOptions lopt;
  lopt.eps = head.eps;
  lopt.sparsify = head.sparsify;
  lopt.engine = batch[0].cache_key.engine;  // the resolved concrete key

  std::vector<Reply> replies(batch.size());
  core::RunStats run_stats;
  std::size_t failed = 0;
  try {
    Runtime& rt = runtime_for(worker, head.seed);
    auto run = rt.solve_laplacian_many(head.graph, panel, lopt);
    run_stats = run.stats;
    for (std::size_t j = 0; j < batch.size(); ++j) {
      replies[j].type = RequestType::kSolve;
      replies[j].panel_width = batch.size();
      replies[j].coalesced = true;
      replies[j].stats = run.stats;
      if (run.usable) {
        replies[j].status = ReplyStatus::kOk;
        replies[j].x = run.x.column(j);
      } else {
        replies[j].status = ReplyStatus::kFailed;
        replies[j].error = "engine factorization failed";
        ++failed;
      }
    }
  } catch (const std::exception& e) {
    for (std::size_t j = 0; j < batch.size(); ++j) {
      replies[j].type = RequestType::kSolve;
      replies[j].panel_width = batch.size();
      replies[j].coalesced = true;
      replies[j].status = ReplyStatus::kFailed;
      replies[j].error = e.what();
    }
    failed = batch.size();
  }
  record_served(batch, run_stats, failed, /*coalesced=*/true);
  for (std::size_t j = 0; j < batch.size(); ++j) {
    batch[j].reply->fulfill(std::move(replies[j]));
  }
}

Reply SolverService::serve_one(Worker& worker, const Request& req) {
  Reply reply;
  reply.type = req.type;
  try {
    Runtime& rt = runtime_for(worker, req.seed);
    switch (req.type) {
      case RequestType::kSolve: {
        LaplacianSolveOptions lopt;
        lopt.eps = req.eps;
        lopt.sparsify = req.sparsify;
        lopt.engine = req.engine;
        auto run = rt.solve_laplacian(req.graph, req.b, lopt);
        reply.stats = run.stats;
        if (run.usable) {
          reply.status = ReplyStatus::kOk;
          reply.x = std::move(run.x);
        } else {
          reply.error = "engine factorization failed";
        }
        break;
      }
      case RequestType::kSolveMany: {
        LaplacianSolveOptions lopt;
        lopt.eps = req.eps;
        lopt.sparsify = req.sparsify;
        lopt.engine = req.engine;
        auto run = rt.solve_laplacian_many(req.graph, req.panel, lopt);
        reply.stats = run.stats;
        if (run.usable) {
          reply.status = ReplyStatus::kOk;
          reply.panel = std::move(run.x);
        } else {
          reply.error = "engine factorization failed";
        }
        break;
      }
      case RequestType::kSparsify: {
        auto run = rt.sparsify(req.graph, req.sparsify);
        reply.stats = run.stats;
        reply.status = ReplyStatus::kOk;
        reply.sparsify = std::move(run.result);
        break;
      }
      case RequestType::kMcmf: {
        auto run = rt.min_cost_max_flow(req.network, req.source, req.sink,
                                        req.mcmf);
        reply.stats = run.stats;
        if (run.result.exact) {
          reply.status = ReplyStatus::kOk;
        } else {
          reply.error = "flow did not round to the exact optimum";
        }
        reply.mcmf = std::move(run.result);
        break;
      }
    }
  } catch (const std::exception& e) {
    reply.status = ReplyStatus::kFailed;
    reply.error = e.what();
  }
  return reply;
}

Runtime& SolverService::runtime_for(Worker& worker, std::uint64_t seed) {
  if (!worker.runtime || worker.runtime->seed() != seed) {
    RuntimeOptions opts;
    opts.threads = opts_.runtime_threads;
    opts.seed = seed;
    opts.min_work_per_chunk = opts_.min_work_per_chunk;
    opts.factor_cache = cache_;
    worker.runtime = std::make_unique<Runtime>(opts);
  }
  return *worker.runtime;
}

void SolverService::record_served(const std::vector<Ticket>& batch,
                                  const core::RunStats& run_stats,
                                  std::size_t failed, bool coalesced) {
  std::lock_guard<std::mutex> lock(mu_);
  stats_.served += batch.size();
  stats_.failed += failed;
  stats_.totals += run_stats;
  if (coalesced && batch.size() >= 2) {
    ++stats_.coalesced_panels;
    stats_.coalesced_requests += batch.size();
  }
}

}  // namespace bcclap::service
