#include "service/journal.h"

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>

namespace bcclap::service {

namespace {

constexpr const char* kMagic = "bcclap-journal";
constexpr int kVersion = 1;

std::string hex_bits(double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

double bits_hex(const std::string& token) {
  const std::uint64_t bits = std::stoull(token, nullptr, 16);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

[[noreturn]] void malformed(const std::string& what) {
  throw std::runtime_error("bcclap journal: malformed input: " + what);
}

std::string next_token(std::istream& in, const std::string& what) {
  std::string token;
  if (!(in >> token)) malformed("expected " + what);
  return token;
}

std::uint64_t next_u64(std::istream& in, const std::string& what) {
  std::uint64_t v = 0;
  if (!(in >> v)) malformed("expected " + what);
  return v;
}

std::int64_t next_i64(std::istream& in, const std::string& what) {
  std::int64_t v = 0;
  if (!(in >> v)) malformed("expected " + what);
  return v;
}

double next_double_bits(std::istream& in, const std::string& what) {
  return bits_hex(next_token(in, what));
}

void expect_token(std::istream& in, const std::string& expected) {
  const std::string token = next_token(in, "'" + expected + "'");
  if (token != expected) {
    malformed("expected '" + expected + "', got '" + token + "'");
  }
}

void write_graph(std::ostream& out, const graph::Graph& g) {
  out << "graph " << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges()) {
    out << e.u << ' ' << e.v << ' ' << hex_bits(e.weight) << '\n';
  }
}

graph::Graph read_graph(std::istream& in) {
  expect_token(in, "graph");
  const std::size_t n = next_u64(in, "vertex count");
  const std::size_t m = next_u64(in, "edge count");
  graph::Graph g(n);
  for (std::size_t i = 0; i < m; ++i) {
    const std::size_t u = next_u64(in, "edge endpoint");
    const std::size_t v = next_u64(in, "edge endpoint");
    const double w = next_double_bits(in, "edge weight");
    g.add_edge(u, v, w);
  }
  return g;
}

void write_sparsify_options(std::ostream& out,
                            const sparsify::SparsifyOptions& opt) {
  out << "sparsify " << hex_bits(opt.epsilon) << ' ' << opt.k << ' ' << opt.t
      << ' ' << hex_bits(opt.t_constant) << ' ' << opt.iterations << ' '
      << (opt.growing_t ? 1 : 0) << '\n';
}

sparsify::SparsifyOptions read_sparsify_options(std::istream& in) {
  expect_token(in, "sparsify");
  sparsify::SparsifyOptions opt;
  opt.epsilon = next_double_bits(in, "sparsify epsilon");
  opt.k = next_u64(in, "sparsify k");
  opt.t = next_u64(in, "sparsify t");
  opt.t_constant = next_double_bits(in, "sparsify t_constant");
  opt.iterations = next_u64(in, "sparsify iterations");
  opt.growing_t = next_u64(in, "sparsify growing_t") != 0;
  return opt;
}

void write_vec(std::ostream& out, const char* tag, const linalg::Vec& v) {
  out << tag << ' ' << v.size() << '\n';
  for (std::size_t i = 0; i < v.size(); ++i) {
    out << hex_bits(v[i]) << ((i + 1) % 8 == 0 ? '\n' : ' ');
  }
  if (v.size() % 8 != 0) out << '\n';
}

linalg::Vec read_vec(std::istream& in, const char* tag) {
  expect_token(in, tag);
  const std::size_t n = next_u64(in, "vector length");
  linalg::Vec v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = next_double_bits(in, "vector entry");
  }
  return v;
}

}  // namespace

void write_journal(std::ostream& out, const std::vector<Request>& stream) {
  out << kMagic << ' ' << kVersion << '\n';
  out << "requests " << stream.size() << '\n';
  for (const auto& req : stream) {
    out << "request " << request_type_name(req.type) << '\n';
    out << "seed " << req.seed << '\n';
    switch (req.type) {
      case RequestType::kSolve:
        out << "engine " << req.engine << '\n';
        out << "eps " << hex_bits(req.eps) << '\n';
        write_sparsify_options(out, req.sparsify);
        write_graph(out, req.graph);
        write_vec(out, "rhs", req.b);
        break;
      case RequestType::kSolveMany: {
        out << "engine " << req.engine << '\n';
        out << "eps " << hex_bits(req.eps) << '\n';
        write_sparsify_options(out, req.sparsify);
        write_graph(out, req.graph);
        out << "panel " << req.panel.rows() << ' ' << req.panel.cols() << '\n';
        for (std::size_t i = 0; i < req.panel.rows(); ++i) {
          for (std::size_t j = 0; j < req.panel.cols(); ++j) {
            out << hex_bits(req.panel(i, j))
                << (j + 1 == req.panel.cols() ? '\n' : ' ');
          }
        }
        break;
      }
      case RequestType::kSparsify:
        write_sparsify_options(out, req.sparsify);
        write_graph(out, req.graph);
        break;
      case RequestType::kMcmf: {
        out << "network " << req.network.num_vertices() << ' '
            << req.network.num_arcs() << '\n';
        for (const auto& arc : req.network.arcs()) {
          out << arc.tail << ' ' << arc.head << ' ' << arc.capacity << ' '
              << arc.cost << '\n';
        }
        out << "flow " << req.source << ' ' << req.sink << ' '
            << req.mcmf.seed << ' ' << req.mcmf.max_retries << '\n';
        break;
      }
    }
    out << "end\n";
  }
}

bool write_journal_file(const std::string& path,
                        const std::vector<Request>& stream) {
  std::ofstream out(path);
  if (!out) return false;
  write_journal(out, stream);
  return static_cast<bool>(out);
}

std::vector<Request> read_journal(std::istream& in) {
  expect_token(in, kMagic);
  const std::uint64_t version = next_u64(in, "journal version");
  if (version != static_cast<std::uint64_t>(kVersion)) {
    malformed("unsupported version " + std::to_string(version));
  }
  expect_token(in, "requests");
  const std::size_t count = next_u64(in, "request count");
  std::vector<Request> stream;
  stream.reserve(count);
  for (std::size_t r = 0; r < count; ++r) {
    expect_token(in, "request");
    const std::string type = next_token(in, "request type");
    Request req;
    if (type == "solve") {
      req.type = RequestType::kSolve;
    } else if (type == "solve_many") {
      req.type = RequestType::kSolveMany;
    } else if (type == "sparsify") {
      req.type = RequestType::kSparsify;
    } else if (type == "mcmf") {
      req.type = RequestType::kMcmf;
    } else {
      malformed("unknown request type '" + type + "'");
    }
    expect_token(in, "seed");
    req.seed = next_u64(in, "seed");
    switch (req.type) {
      case RequestType::kSolve:
        expect_token(in, "engine");
        req.engine = next_token(in, "engine key");
        expect_token(in, "eps");
        req.eps = next_double_bits(in, "eps");
        req.sparsify = read_sparsify_options(in);
        req.graph = read_graph(in);
        req.b = read_vec(in, "rhs");
        break;
      case RequestType::kSolveMany: {
        expect_token(in, "engine");
        req.engine = next_token(in, "engine key");
        expect_token(in, "eps");
        req.eps = next_double_bits(in, "eps");
        req.sparsify = read_sparsify_options(in);
        req.graph = read_graph(in);
        expect_token(in, "panel");
        const std::size_t rows = next_u64(in, "panel rows");
        const std::size_t cols = next_u64(in, "panel cols");
        req.panel = linalg::DenseMatrix(rows, cols);
        for (std::size_t i = 0; i < rows; ++i) {
          for (std::size_t j = 0; j < cols; ++j) {
            req.panel(i, j) = next_double_bits(in, "panel entry");
          }
        }
        break;
      }
      case RequestType::kSparsify:
        req.sparsify = read_sparsify_options(in);
        req.graph = read_graph(in);
        break;
      case RequestType::kMcmf: {
        expect_token(in, "network");
        const std::size_t n = next_u64(in, "network vertex count");
        const std::size_t m = next_u64(in, "network arc count");
        req.network = graph::Digraph(n);
        for (std::size_t a = 0; a < m; ++a) {
          const std::size_t tail = next_u64(in, "arc tail");
          const std::size_t head = next_u64(in, "arc head");
          const std::int64_t capacity = next_i64(in, "arc capacity");
          const std::int64_t cost = next_i64(in, "arc cost");
          req.network.add_arc(tail, head, capacity, cost);
        }
        expect_token(in, "flow");
        req.source = next_u64(in, "source");
        req.sink = next_u64(in, "sink");
        req.mcmf.seed = next_u64(in, "mcmf seed");
        req.mcmf.max_retries = next_u64(in, "mcmf max_retries");
        break;
      }
    }
    expect_token(in, "end");
    stream.push_back(std::move(req));
  }
  return stream;
}

std::vector<Request> read_journal_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("bcclap journal: cannot open " + path);
  }
  return read_journal(in);
}

std::string reply_payload_bytes(const Reply& reply) {
  std::ostringstream out;
  out << "reply " << request_type_name(reply.type) << ' '
      << (reply.status == ReplyStatus::kOk ? "ok" : "failed") << '\n';
  if (reply.status != ReplyStatus::kOk) return out.str();
  switch (reply.type) {
    case RequestType::kSolve:
      write_vec(out, "x", reply.x);
      break;
    case RequestType::kSolveMany:
      out << "panel " << reply.panel.rows() << ' ' << reply.panel.cols()
          << '\n';
      for (std::size_t i = 0; i < reply.panel.rows(); ++i) {
        for (std::size_t j = 0; j < reply.panel.cols(); ++j) {
          out << hex_bits(reply.panel(i, j))
              << (j + 1 == reply.panel.cols() ? '\n' : ' ');
        }
      }
      break;
    case RequestType::kSparsify: {
      const graph::Graph& h = reply.sparsify.sparsifier;
      out << "sparsifier " << h.num_vertices() << ' ' << h.num_edges() << '\n';
      for (std::size_t e = 0; e < h.num_edges(); ++e) {
        const auto& edge = h.edge(e);
        out << edge.u << ' ' << edge.v << ' ' << hex_bits(edge.weight) << ' '
            << reply.sparsify.original_edge[e] << ' '
            << reply.sparsify.out_vertex[e] << '\n';
      }
      break;
    }
    case RequestType::kMcmf:
      out << "flow " << (reply.mcmf.exact ? 1 : 0) << ' '
          << reply.mcmf.flow.value << ' ' << reply.mcmf.flow.cost << '\n';
      for (std::size_t a = 0; a < reply.mcmf.flow.flow.size(); ++a) {
        out << reply.mcmf.flow.flow[a]
            << (a + 1 == reply.mcmf.flow.flow.size() ? '\n' : ' ');
      }
      break;
  }
  return out.str();
}

ReplayResult replay(SolverService& service,
                    const std::vector<Request>& stream) {
  ReplayResult out;
  std::vector<std::shared_ptr<PendingReply>> pending;
  pending.reserve(stream.size());
  for (const auto& req : stream) {
    for (;;) {
      Submission sub = service.submit(req);
      if (sub.accepted()) {
        pending.push_back(sub.reply);
        break;
      }
      if (sub.admission != Admission::kRejectedQueueFull) {
        throw std::runtime_error(std::string("bcclap replay: rejected: ") +
                                 sub.reason());
      }
      ++out.resubmissions;
      if (service.options().workers == 0) {
        // Caller-driven service: make room by serving one request inline.
        service.drain(1);
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  }
  // A caller-driven service has no one else to serve what is still
  // queued; drain it here so every pending reply is fulfilled.
  if (service.options().workers == 0) service.drain();
  out.payloads.reserve(pending.size());
  for (auto& handle : pending) {
    out.payloads.push_back(reply_payload_bytes(handle->wait()));
  }
  return out;
}

}  // namespace bcclap::service
