// SolverService — the long-lived serving layer of the library (ROADMAP:
// "Solver service: multiplex many Runtimes behind a request loop").
//
//   clients --submit--> bounded request queue --pop--> worker Runtimes
//                            |                              |
//                   admission control              shared core::FactorCache
//              (cache residency, size)          (prepared artifacts, LRU)
//
// The service owns a pool of worker threads, each serving requests through
// its own bcclap::Runtime; all workers share ONE core::FactorCache, so a
// topology prepared by any worker is a cache hit for every other — the
// "factor once, solve many across requests" economics the cache was built
// for, now behind a request loop.
//
// Backpressure is explicit: submit() returns a Submission that either
// carries a PendingReply handle or names the rejection reason
// (queue-full / cold-oversized / shutting-down). Nothing is ever silently
// dropped — an accepted request is always eventually fulfilled, including
// through shutdown(), which stops admissions and drains every queued
// request before returning.
//
// Admission control is keyed on FactorCache residency: a Laplacian request
// whose prepared artifact is already resident (FactorCache::peek — no LRU
// or counter perturbation) jumps to the front of the queue (warm requests
// are nearly free — apply-only), while a cold request on a graph larger
// than ServiceOptions::max_cold_vertices is rejected with a reason instead
// of occupying a worker for an unbounded prepare.
//
// Same-fingerprint coalescing: concurrent single-RHS solve requests that
// agree on everything that determines their artifact and their apply
// (fingerprint, seed, resolved engine, prepare options, eps) are batched
// into one solve_many panel. Column j of a panel is byte-identical to the
// single-RHS solve (the PR 5 contract), so coalescing changes throughput,
// never bytes.
//
// Determinism contract (tested in tests/test_service.cpp and the replay
// harness, service/journal.h): the reply payload bytes of a request are a
// pure function of the request — independent of the worker count, the
// queue order, the cache state (cold or warm) and whether the request was
// coalesced. Request seed in, bytes out.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/factor_cache.h"
#include "core/stats.h"
#include "service/request.h"

namespace bcclap {
class Runtime;
}

namespace bcclap::service {

struct ServiceOptions {
  // Worker threads serving the queue. 0 = caller-driven: no threads are
  // spawned and requests are served by explicit drain() calls (and by
  // shutdown(), which drains what is left) — the deterministic mode the
  // queue/coalescing tests run in.
  std::size_t workers = 1;
  // Worker-count of each worker's Runtime pool (0 = BCCLAP_THREADS /
  // hardware). Thread count never changes reply bytes, only wall time.
  std::size_t runtime_threads = 1;
  // Bounded queue: submissions past this depth are rejected (queue-full).
  std::size_t queue_capacity = 64;
  // Shared factorization cache: an external cache (factor_cache) wins;
  // otherwise the service creates one of factor_cache_bytes (0 = serve
  // uncached — every warm-path feature degrades gracefully to cold).
  std::size_t factor_cache_bytes = 256u << 20;
  std::shared_ptr<core::FactorCache> factor_cache;
  // Chunking policy of every worker Runtime; part of the factor-cache key
  // and of the determinism contract, so it is service-wide, not per
  // request.
  std::size_t min_work_per_chunk = common::kDefaultMinWorkPerChunk;
  // Maximum width of a coalesced panel (1 disables coalescing).
  std::size_t max_coalesce = 8;
  // Admission bound: a COLD Laplacian request (no resident artifact) on a
  // graph with more vertices than this is rejected ("cold-oversized").
  // 0 = no bound. Warm requests are never size-rejected — their prepare
  // work is already paid for.
  std::size_t max_cold_vertices = 0;
};

enum class Admission : std::uint8_t {
  kAccepted = 0,
  kAcceptedWarm = 1,          // resident artifact: jumped the queue
  kRejectedQueueFull = 2,     // backpressure: resubmit later
  kRejectedColdOversized = 3, // cold prepare larger than the admission bound
  kRejectedShutdown = 4,      // service no longer accepts work
};

// Stable reason string per admission outcome (rejections name their cause).
const char* admission_reason(Admission admission);

struct Submission {
  Admission admission = Admission::kRejectedShutdown;
  std::shared_ptr<PendingReply> reply;  // non-null iff accepted

  bool accepted() const { return reply != nullptr; }
  const char* reason() const { return admission_reason(admission); }
};

// Aggregated service statistics, built from per-request core::RunStats
// plus the queue/admission counters and a consistent FactorCache snapshot.
struct ServiceStats {
  std::size_t accepted = 0;
  std::size_t warm_admissions = 0;  // accepted at the front of the queue
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_cold_oversized = 0;
  std::size_t rejected_shutdown = 0;
  std::size_t served = 0;  // replies fulfilled
  std::size_t failed = 0;  // replies with ReplyStatus::kFailed
  std::size_t coalesced_panels = 0;    // panels assembled from >= 2 singles
  std::size_t coalesced_requests = 0;  // singles served by such panels
  std::size_t queue_high_water = 0;    // deepest queue observed at submit
  // Sum of the per-request RunStats (a coalesced panel's stats are added
  // once — the panel is one facade run).
  core::RunStats totals;
  // Snapshot of the shared cache (zeroed when the service runs uncached).
  core::FactorCache::Stats cache;
};

class SolverService {
 public:
  static constexpr std::size_t kNoLimit = static_cast<std::size_t>(-1);

  explicit SolverService(const ServiceOptions& opts = {});
  ~SolverService();  // shutdown(): drains queued work, joins workers

  SolverService(const SolverService&) = delete;
  SolverService& operator=(const SolverService&) = delete;

  // Admission + enqueue. Never blocks and never drops silently: the
  // Submission either carries a PendingReply or names the rejection.
  // Throws std::invalid_argument on an unknown engine key (same contract
  // as the Runtime facade, moved to the service boundary).
  Submission submit(Request req);

  // Serves up to max_requests queued requests on the calling thread
  // (coalesced panels count as one). The drive mode of workers = 0
  // services; safe concurrently with worker threads. Returns the number
  // of requests (not panels) served.
  std::size_t drain(std::size_t max_requests = kNoLimit);

  // Stops admissions, drains every queued request (on the workers, or on
  // the calling thread when workers = 0), and joins the worker threads.
  // Idempotent.
  void shutdown();

  ServiceStats stats() const;
  std::size_t queue_depth() const;
  const ServiceOptions& options() const { return opts_; }
  // The shared cache (null when the service runs uncached).
  const std::shared_ptr<core::FactorCache>& factor_cache() const {
    return cache_;
  }

 private:
  struct Ticket {
    Request req;
    std::shared_ptr<PendingReply> reply;
    bool laplacian = false;  // cache_key below is meaningful
    core::FactorCacheKey cache_key;
  };
  // Per-worker serving state: the Runtime is rebuilt when the request
  // seed changes (each Runtime's seed is fixed at construction; traffic
  // that reuses seeds reuses the Runtime).
  struct Worker {
    std::unique_ptr<Runtime> runtime;
  };

  void worker_loop();
  // Pops the front ticket plus every coalescible queued single (lock held).
  void take_batch_locked(std::vector<Ticket>* batch);
  void serve_batch(Worker& worker, std::vector<Ticket>& batch);
  Reply serve_one(Worker& worker, const Request& req);
  Runtime& runtime_for(Worker& worker, std::uint64_t seed);
  void record_served(const std::vector<Ticket>& batch,
                     const core::RunStats& run_stats, std::size_t failed,
                     bool coalesced);

  ServiceOptions opts_;
  std::shared_ptr<core::FactorCache> cache_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Ticket> queue_;
  bool stopping_ = false;
  ServiceStats stats_;  // cache field filled at snapshot time

  std::vector<std::thread> threads_;
  std::mutex shutdown_mu_;  // serializes shutdown() calls
  bool joined_ = false;
};

}  // namespace bcclap::service
