// Deterministic request journal + replay harness for the solver service.
//
// A journal is a plain-text, token-oriented serialization of a request
// stream: every double is written as its exact 64-bit pattern in hex, so a
// journal read back from disk reproduces the original requests *bit for
// bit* — the precondition for byte-identical replay.
//
// reply_payload_bytes() is the canonical serialization of a Reply's
// payload: the request type, the status, and the numeric results by exact
// bit pattern. It deliberately excludes wall time, RunStats and the
// service-side annotations (cache counters, coalescing width), which
// legitimately differ between a cold and a warm serve. The replay
// contract — journaled stream in, byte-compare payloads out — is:
//
//   replay(journal) at 1 worker == replay(journal) at N workers
//                               == replay(journal) against a warm cache
//
// per request, bitwise. tests/test_service_replay.cpp pins this; the
// examples/service_replay driver demonstrates it end to end.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "service/request.h"
#include "service/solver_service.h"

namespace bcclap::service {

// Writes `stream` as a journal. The format is versioned
// ("bcclap-journal 1") and whitespace-tokenized: readers never depend on
// line structure.
void write_journal(std::ostream& out, const std::vector<Request>& stream);
// Convenience file variant; returns false when the file cannot be opened.
bool write_journal_file(const std::string& path,
                        const std::vector<Request>& stream);

// Parses a journal back into requests. Throws std::runtime_error on
// malformed input (wrong magic, truncated payload, unknown request type).
std::vector<Request> read_journal(std::istream& in);
std::vector<Request> read_journal_file(const std::string& path);

// Canonical reply payload bytes; two replies to the same request compare
// equal iff their numeric payloads are bitwise identical.
std::string reply_payload_bytes(const Reply& reply);

struct ReplayResult {
  // Canonical payload bytes, index-aligned with the submitted stream.
  std::vector<std::string> payloads;
  // Queue-full backpressure retries performed while submitting.
  std::size_t resubmissions = 0;
};

// Submits the stream in order and waits for every reply. Backpressure is
// honored, not bypassed: a queue-full rejection is retried (draining one
// request inline when the service is caller-driven, i.e. workers = 0);
// any other rejection throws std::runtime_error — a replay harness must
// observe every reply, so admission rejections are configuration errors.
ReplayResult replay(SolverService& service, const std::vector<Request>& stream);

}  // namespace bcclap::service
