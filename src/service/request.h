// Typed requests and replies of the solver service (service/solver_service.h).
//
// A Request is a self-contained unit of work: the payload (graph, right-hand
// side(s), flow network), the randomness root (`seed` — the Runtime seed the
// request is served under), the backend selection (`engine` registry key) and
// the accuracy target (`eps`). Everything that determines the reply bytes is
// *inside* the request; nothing about the service (worker count, queue order,
// cache state, coalescing) may leak into them. That is the determinism
// contract the replay harness (service/journal.h) byte-checks.
//
// A Reply carries the typed result plus the per-request core::RunStats. The
// canonical *payload* serialization (journal.h: reply_payload_bytes) covers
// the type, the status and the numeric payload by exact bit pattern — and
// deliberately excludes stats, wall time and cache counters, which legitimately
// differ between a cold and a warm serve of the same request.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>

#include "core/stats.h"
#include "flow/mcmf_solver.h"
#include "graph/digraph.h"
#include "graph/graph.h"
#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"
#include "sparsify/spectral_sparsify.h"

namespace bcclap::service {

enum class RequestType : std::uint8_t {
  kSolve = 0,      // L_G x = b, single right-hand side
  kSolveMany = 1,  // L_G X = B, one right-hand side per panel column
  kSparsify = 2,   // Theorem 1.2 spectral sparsifier of the payload graph
  kMcmf = 3,       // Theorem 1.1 exact min-cost max-flow
};

// Stable journal token per type ("solve", "solve_many", "sparsify", "mcmf").
const char* request_type_name(RequestType type);

struct Request {
  RequestType type = RequestType::kSolve;

  // Runtime seed the request is served under: the root of every stream the
  // layers derive. Two requests with equal payloads and equal seeds get
  // bitwise-identical replies no matter which worker serves them.
  std::uint64_t seed = 0;

  // Laplacian requests: engine registry key ("auto" lets the tuner pick),
  // apply-time accuracy, and the prepare-time sparsify knobs (part of the
  // factorization-cache identity).
  std::string engine = "auto";
  double eps = 1e-8;
  sparsify::SparsifyOptions sparsify;

  // kSolve / kSolveMany / kSparsify payload.
  graph::Graph graph;
  linalg::Vec b;              // kSolve
  linalg::DenseMatrix panel;  // kSolveMany (n x k)

  // kMcmf payload. Only mcmf.seed and mcmf.max_retries are journaled; a
  // caller-installed lp.gram_factory is not serializable and replays with
  // the default Gram path.
  graph::Digraph network;
  std::size_t source = 0;
  std::size_t sink = 0;
  flow::McmfOptions mcmf;
};

enum class ReplyStatus : std::uint8_t {
  kOk = 0,
  kFailed = 1,  // engine factorization failed / flow did not round exactly
};

struct Reply {
  RequestType type = RequestType::kSolve;
  ReplyStatus status = ReplyStatus::kFailed;
  std::string error;  // human-readable detail when status == kFailed

  linalg::Vec x;                      // kSolve
  linalg::DenseMatrix panel;          // kSolveMany
  sparsify::SparsifyResult sparsify;  // kSparsify
  flow::McmfIpmResult mcmf;           // kMcmf

  // Service-side annotations (not part of the payload bytes): how wide the
  // panel that served this request was (>= 2 means it was coalesced with
  // concurrent same-fingerprint singles), and the per-request RunStats —
  // for a coalesced single, the stats of the shared panel run.
  std::size_t panel_width = 1;
  bool coalesced = false;
  core::RunStats stats;
};

// Future-like handle a submission returns: the producer blocks on wait()
// (any number of times) until a worker fulfills the reply.
class PendingReply {
 public:
  const Reply& wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return ready_; });
    return reply_;
  }

  bool ready() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ready_;
  }

  void fulfill(Reply reply) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      reply_ = std::move(reply);
      ready_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool ready_ = false;
  Reply reply_;
};

}  // namespace bcclap::service
