// Canonical graph fingerprint: the cache identity of a weighted graph.
//
// The factorization cache (core/factor_cache.h) retains prepared solver
// artifacts across requests; its key must identify "the same network"
// independently of how the caller happened to build it. fingerprint(g)
// hashes the vertex count, the edge count and the canonically-ordered
// multiset of (min endpoint, max endpoint, weight bit pattern) triples, so
//
//  - two graphs whose edges were added in different orders hash equal;
//  - perturbing any weight by one ulp, flipping an edge to a different
//    endpoint pair, or changing the number of (even isolated) vertices
//    all change the fingerprint (collision behavior is tested in
//    tests/test_fingerprint.cpp).
//
// The 128-bit digest (two independently seeded 64-bit mixing lanes) plus
// the explicit (n, m) pair make accidental collisions on real workloads
// vanishingly unlikely; equality of fingerprints — not of graphs — is the
// cache's correctness assumption, the standard content-hash trade.
#pragma once

#include <cstdint>

#include "graph/graph.h"

namespace bcclap::graph {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;

  friend bool operator==(const Fingerprint& a, const Fingerprint& b) {
    return a.hi == b.hi && a.lo == b.lo && a.vertices == b.vertices &&
           a.edges == b.edges;
  }
  friend bool operator!=(const Fingerprint& a, const Fingerprint& b) {
    return !(a == b);
  }
};

// O(m log m): sorts a copy of the edge list into canonical order before
// hashing. Weights hash by bit pattern (no tolerance): the cache must
// only ever equate graphs whose solves are bitwise interchangeable.
Fingerprint fingerprint(const Graph& g);

}  // namespace bcclap::graph
