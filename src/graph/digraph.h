// Directed graph with integral capacities and costs — the min-cost
// max-flow input type (Section 2.4 / Section 5).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bcclap::graph {

struct Arc {
  std::size_t tail;      // edge goes tail -> head
  std::size_t head;
  std::int64_t capacity; // > 0
  std::int64_t cost;     // may be negative in general; generators emit >= 0
};

class Digraph {
 public:
  explicit Digraph(std::size_t n = 0) : out_arcs_(n), in_arcs_(n) {}

  std::size_t num_vertices() const { return out_arcs_.size(); }
  std::size_t num_arcs() const { return arcs_.size(); }

  std::size_t add_arc(std::size_t tail, std::size_t head,
                      std::int64_t capacity, std::int64_t cost);

  const Arc& arc(std::size_t a) const { return arcs_[a]; }
  const std::vector<Arc>& arcs() const { return arcs_; }
  const std::vector<std::size_t>& out_arcs(std::size_t v) const {
    return out_arcs_[v];
  }
  const std::vector<std::size_t>& in_arcs(std::size_t v) const {
    return in_arcs_[v];
  }

  std::int64_t max_capacity() const;
  std::int64_t max_abs_cost() const;

 private:
  std::vector<Arc> arcs_;
  std::vector<std::vector<std::size_t>> out_arcs_;
  std::vector<std::vector<std::size_t>> in_arcs_;
};

// A flow assignment indexed by arc id plus its derived quantities.
struct FlowResult {
  std::vector<std::int64_t> flow;  // per arc
  std::int64_t value = 0;          // net outflow of s
  std::int64_t cost = 0;           // sum arc.cost * flow
};

// Checks capacity bounds and conservation at every vertex except s, t.
bool is_feasible_flow(const Digraph& g, const std::vector<std::int64_t>& flow,
                      std::size_t s, std::size_t t);
std::int64_t flow_value(const Digraph& g, const std::vector<std::int64_t>& flow,
                        std::size_t s);
std::int64_t flow_cost(const Digraph& g, const std::vector<std::int64_t>& flow);

}  // namespace bcclap::graph
