#include "graph/digraph.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

namespace bcclap::graph {

std::size_t Digraph::add_arc(std::size_t tail, std::size_t head,
                             std::int64_t capacity, std::int64_t cost) {
  assert(tail != head && "self-loop arcs are not allowed");
  assert(tail < num_vertices() && head < num_vertices());
  assert(capacity > 0);
  const std::size_t id = arcs_.size();
  arcs_.push_back({tail, head, capacity, cost});
  out_arcs_[tail].push_back(id);
  in_arcs_[head].push_back(id);
  return id;
}

std::int64_t Digraph::max_capacity() const {
  std::int64_t m = 0;
  for (const Arc& a : arcs_) m = std::max(m, a.capacity);
  return m;
}

std::int64_t Digraph::max_abs_cost() const {
  std::int64_t m = 0;
  for (const Arc& a : arcs_) m = std::max(m, std::abs(a.cost));
  return m;
}

bool is_feasible_flow(const Digraph& g, const std::vector<std::int64_t>& flow,
                      std::size_t s, std::size_t t) {
  if (flow.size() != g.num_arcs()) return false;
  for (std::size_t a = 0; a < g.num_arcs(); ++a) {
    if (flow[a] < 0 || flow[a] > g.arc(a).capacity) return false;
  }
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    if (v == s || v == t) continue;
    std::int64_t net = 0;
    for (std::size_t a : g.out_arcs(v)) net += flow[a];
    for (std::size_t a : g.in_arcs(v)) net -= flow[a];
    if (net != 0) return false;
  }
  return true;
}

std::int64_t flow_value(const Digraph& g, const std::vector<std::int64_t>& flow,
                        std::size_t s) {
  std::int64_t value = 0;
  for (std::size_t a : g.out_arcs(s)) value += flow[a];
  for (std::size_t a : g.in_arcs(s)) value -= flow[a];
  return value;
}

std::int64_t flow_cost(const Digraph& g,
                       const std::vector<std::int64_t>& flow) {
  std::int64_t cost = 0;
  for (std::size_t a = 0; a < g.num_arcs(); ++a)
    cost += g.arc(a).cost * flow[a];
  return cost;
}

}  // namespace bcclap::graph
