// Laplacian and incidence-matrix construction (Section 2.2).
//
// L = B^T W B where B is the edge-vertex incidence matrix with
// B(e, head) = 1, B(e, tail) = -1 and W = diag(edge weights). For an
// undirected graph each edge is oriented low-id -> high-id; the Laplacian
// does not depend on the orientation.
#pragma once

#include "common/context.h"
#include "graph/digraph.h"
#include "graph/graph.h"
#include "linalg/csc_matrix.h"
#include "linalg/csr_matrix.h"
#include "linalg/vector_ops.h"

namespace bcclap::graph {

// n x n graph Laplacian in CSR form.
linalg::CsrMatrix laplacian(const Graph& g);

// Upper triangle of the Laplacian in symmetric CSC form, built directly
// from the edge list — one entry per edge plus the degree diagonal, no
// CSR or dense intermediate. This is the native input of the sparse
// factorization path (linalg/sparse_ldlt.h).
linalg::CscSymmetricMatrix laplacian_csc(const Graph& g);

// m x n incidence matrix B (rows = edges, oriented u -> v with u < v).
linalg::CsrMatrix incidence(const Graph& g);

// Incidence matrix of a digraph: row per arc, +1 at head, -1 at tail.
// `drop_vertex` (e.g. the source in Section 5's LP) removes that column.
linalg::CsrMatrix incidence(const Digraph& g, std::size_t drop_vertex);

// Applies L_G to x directly from adjacency (one "distributed matvec";
// each vertex needs only neighbouring values — Theorem 1.3's discussion).
// Large edge counts fan out across ctx's pool via the deterministic
// chunked reduction.
linalg::Vec apply_laplacian(const common::Context& ctx, const Graph& g,
                            const linalg::Vec& x);

// Multi-RHS panel application: x is n x k, one vector per column, and one
// edge sweep (sequential or chunked-reduction, same thresholds and chunk
// boundaries as the single-vector kernel) covers every column. Column j of
// the result is byte-identical to apply_laplacian(ctx, g, column j).
linalg::DenseMatrix apply_laplacian_many(const common::Context& ctx,
                                         const Graph& g,
                                         const linalg::DenseMatrix& x);

}  // namespace bcclap::graph
