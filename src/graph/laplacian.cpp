#include "graph/laplacian.h"

#include <cassert>

namespace bcclap::graph {

linalg::CsrMatrix laplacian(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<linalg::Triplet> trips;
  trips.reserve(4 * g.num_edges() + n);
  for (const Edge& e : g.edges()) {
    trips.push_back({e.u, e.v, -e.weight});
    trips.push_back({e.v, e.u, -e.weight});
    trips.push_back({e.u, e.u, e.weight});
    trips.push_back({e.v, e.v, e.weight});
  }
  return linalg::CsrMatrix(n, n, std::move(trips));
}

linalg::CscSymmetricMatrix laplacian_csc(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<linalg::Triplet> trips;
  trips.reserve(g.num_edges() + n);
  std::vector<double> degree(n, 0.0);
  for (const Edge& e : g.edges()) {
    trips.push_back({std::min(e.u, e.v), std::max(e.u, e.v), -e.weight});
    degree[e.u] += e.weight;
    degree[e.v] += e.weight;
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (degree[v] != 0.0) trips.push_back({v, v, degree[v]});
  }
  return linalg::CscSymmetricMatrix(n, std::move(trips));
}

linalg::CsrMatrix incidence(const Graph& g) {
  const std::size_t m = g.num_edges();
  std::vector<linalg::Triplet> trips;
  trips.reserve(2 * m);
  for (std::size_t e = 0; e < m; ++e) {
    const Edge& ed = g.edge(e);
    trips.push_back({e, ed.v, 1.0});   // head
    trips.push_back({e, ed.u, -1.0});  // tail
  }
  return linalg::CsrMatrix(m, g.num_vertices(), std::move(trips));
}

linalg::CsrMatrix incidence(const Digraph& g, std::size_t drop_vertex) {
  const std::size_t m = g.num_arcs();
  const std::size_t n = g.num_vertices();
  assert(drop_vertex < n);
  auto col = [drop_vertex](std::size_t v) {
    return v < drop_vertex ? v : v - 1;
  };
  std::vector<linalg::Triplet> trips;
  trips.reserve(2 * m);
  for (std::size_t a = 0; a < m; ++a) {
    const Arc& arc = g.arc(a);
    if (arc.head != drop_vertex) trips.push_back({a, col(arc.head), 1.0});
    if (arc.tail != drop_vertex) trips.push_back({a, col(arc.tail), -1.0});
  }
  return linalg::CsrMatrix(m, n - 1, std::move(trips));
}

namespace {

// The grain of the chunked edge scatter below: scales with n so each
// chunk's n-sized partial is amortized over at least n edges — the
// zero-init + chunk-order merge stays O(m), never dominating the scatter
// itself on sparse graphs.
std::size_t scatter_grain(std::size_t n, std::size_t min_work) {
  return std::max<std::size_t>({2 * min_work, n, 1});
}

linalg::Vec apply_laplacian_sequential(const Graph& g, const linalg::Vec& x) {
  linalg::Vec y(x.size(), 0.0);
  for (const Edge& e : g.edges()) {
    const double d = e.weight * (x[e.u] - x[e.v]);
    y[e.u] += d;
    y[e.v] -= d;
  }
  return y;
}

}  // namespace

linalg::Vec apply_laplacian(const common::Context& ctx, const Graph& g,
                            const linalg::Vec& x) {
  assert(x.size() == g.num_vertices());
  const std::size_t m = g.num_edges();
  // Edge-scatter kernel. Small instances run the sequential loop; large
  // ones use the deterministic chunked reduction (common::thread_pool.h).
  const std::size_t grain =
      scatter_grain(x.size(), ctx.min_work_per_chunk());
  if (m <= grain) return apply_laplacian_sequential(g, x);
  linalg::Vec y(x.size(), 0.0);
  ctx.parallel_reduce_chunks(
      0, m, grain, linalg::Vec(x.size(), 0.0),
      [&](std::size_t lo, std::size_t hi, linalg::Vec& p) {
        for (std::size_t i = lo; i < hi; ++i) {
          const Edge& e = g.edge(i);
          const double d = e.weight * (x[e.u] - x[e.v]);
          p[e.u] += d;
          p[e.v] -= d;
        }
      },
      [&](linalg::Vec& p) {
        for (std::size_t v = 0; v < y.size(); ++v) y[v] += p[v];
      });
  return y;
}

linalg::DenseMatrix apply_laplacian_many(const common::Context& ctx,
                                         const Graph& g,
                                         const linalg::DenseMatrix& x) {
  assert(x.rows() == g.num_vertices());
  const std::size_t n = x.rows();
  const std::size_t k = x.cols();
  const std::size_t m = g.num_edges();
  linalg::DenseMatrix y(n, k);
  if (k == 0) return y;
  // Same dispatch threshold and chunk boundaries as the single-vector
  // kernel (they depend only on n, m and the chunking policy, never on k),
  // with every per-edge update widened across the panel's columns — each
  // column sees the additions of its sequential run in the same order.
  const std::size_t grain = scatter_grain(n, ctx.min_work_per_chunk());
  if (m <= grain) {
    for (const Edge& e : g.edges()) {
      double* yu = y.row_data(e.u);
      double* yv = y.row_data(e.v);
      const double* xu = x.row_data(e.u);
      const double* xv = x.row_data(e.v);
      for (std::size_t j = 0; j < k; ++j) {
        const double d = e.weight * (xu[j] - xv[j]);
        yu[j] += d;
        yv[j] -= d;
      }
    }
    return y;
  }
  ctx.parallel_reduce_chunks(
      0, m, grain, linalg::DenseMatrix(n, k),
      [&](std::size_t lo, std::size_t hi, linalg::DenseMatrix& p) {
        for (std::size_t i = lo; i < hi; ++i) {
          const Edge& e = g.edge(i);
          double* pu = p.row_data(e.u);
          double* pv = p.row_data(e.v);
          const double* xu = x.row_data(e.u);
          const double* xv = x.row_data(e.v);
          for (std::size_t j = 0; j < k; ++j) {
            const double d = e.weight * (xu[j] - xv[j]);
            pu[j] += d;
            pv[j] -= d;
          }
        }
      },
      [&](linalg::DenseMatrix& p) {
        for (std::size_t v = 0; v < n; ++v) {
          double* yv = y.row_data(v);
          const double* pv = p.row_data(v);
          for (std::size_t j = 0; j < k; ++j) yv[j] += pv[j];
        }
      });
  return y;
}

}  // namespace bcclap::graph
