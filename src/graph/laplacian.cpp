#include "graph/laplacian.h"

#include <cassert>

namespace bcclap::graph {

linalg::CsrMatrix laplacian(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<linalg::Triplet> trips;
  trips.reserve(4 * g.num_edges() + n);
  for (const Edge& e : g.edges()) {
    trips.push_back({e.u, e.v, -e.weight});
    trips.push_back({e.v, e.u, -e.weight});
    trips.push_back({e.u, e.u, e.weight});
    trips.push_back({e.v, e.v, e.weight});
  }
  return linalg::CsrMatrix(n, n, std::move(trips));
}

linalg::CsrMatrix incidence(const Graph& g) {
  const std::size_t m = g.num_edges();
  std::vector<linalg::Triplet> trips;
  trips.reserve(2 * m);
  for (std::size_t e = 0; e < m; ++e) {
    const Edge& ed = g.edge(e);
    trips.push_back({e, ed.v, 1.0});   // head
    trips.push_back({e, ed.u, -1.0});  // tail
  }
  return linalg::CsrMatrix(m, g.num_vertices(), std::move(trips));
}

linalg::CsrMatrix incidence(const Digraph& g, std::size_t drop_vertex) {
  const std::size_t m = g.num_arcs();
  const std::size_t n = g.num_vertices();
  assert(drop_vertex < n);
  auto col = [drop_vertex](std::size_t v) {
    return v < drop_vertex ? v : v - 1;
  };
  std::vector<linalg::Triplet> trips;
  trips.reserve(2 * m);
  for (std::size_t a = 0; a < m; ++a) {
    const Arc& arc = g.arc(a);
    if (arc.head != drop_vertex) trips.push_back({a, col(arc.head), 1.0});
    if (arc.tail != drop_vertex) trips.push_back({a, col(arc.tail), -1.0});
  }
  return linalg::CsrMatrix(m, n - 1, std::move(trips));
}

namespace {

// The grain of the chunked edge scatter below: scales with n so each
// chunk's n-sized partial is amortized over at least n edges — the
// zero-init + chunk-order merge stays O(m), never dominating the scatter
// itself on sparse graphs.
std::size_t scatter_grain(std::size_t n, std::size_t min_work) {
  return std::max<std::size_t>({2 * min_work, n, 1});
}

linalg::Vec apply_laplacian_sequential(const Graph& g, const linalg::Vec& x) {
  linalg::Vec y(x.size(), 0.0);
  for (const Edge& e : g.edges()) {
    const double d = e.weight * (x[e.u] - x[e.v]);
    y[e.u] += d;
    y[e.v] -= d;
  }
  return y;
}

}  // namespace

linalg::Vec apply_laplacian(const Graph& g, const linalg::Vec& x) {
  assert(x.size() == g.num_vertices());
  // Deprecated path: resolve the default Runtime only when the input is
  // large enough to dispatch — a small matvec must not cost a process-wide
  // worker-pool spawn (the pre-Runtime code had the same laziness).
  if (g.num_edges() <=
      scatter_grain(x.size(), common::kDefaultMinWorkPerChunk)) {
    return apply_laplacian_sequential(g, x);
  }
  return apply_laplacian(common::default_context(), g, x);
}

linalg::Vec apply_laplacian(const common::Context& ctx, const Graph& g,
                            const linalg::Vec& x) {
  assert(x.size() == g.num_vertices());
  const std::size_t m = g.num_edges();
  // Edge-scatter kernel. Small instances run the sequential loop; large
  // ones use the deterministic chunked reduction (common::thread_pool.h).
  const std::size_t grain =
      scatter_grain(x.size(), ctx.min_work_per_chunk());
  if (m <= grain) return apply_laplacian_sequential(g, x);
  linalg::Vec y(x.size(), 0.0);
  ctx.parallel_reduce_chunks(
      0, m, grain, linalg::Vec(x.size(), 0.0),
      [&](std::size_t lo, std::size_t hi, linalg::Vec& p) {
        for (std::size_t i = lo; i < hi; ++i) {
          const Edge& e = g.edge(i);
          const double d = e.weight * (x[e.u] - x[e.v]);
          p[e.u] += d;
          p[e.v] -= d;
        }
      },
      [&](linalg::Vec& p) {
        for (std::size_t v = 0; v < y.size(); ++v) y[v] += p[v];
      });
  return y;
}

}  // namespace bcclap::graph
