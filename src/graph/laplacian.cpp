#include "graph/laplacian.h"

#include <cassert>

#include "common/thread_pool.h"

namespace bcclap::graph {

linalg::CsrMatrix laplacian(const Graph& g) {
  const std::size_t n = g.num_vertices();
  std::vector<linalg::Triplet> trips;
  trips.reserve(4 * g.num_edges() + n);
  for (const Edge& e : g.edges()) {
    trips.push_back({e.u, e.v, -e.weight});
    trips.push_back({e.v, e.u, -e.weight});
    trips.push_back({e.u, e.u, e.weight});
    trips.push_back({e.v, e.v, e.weight});
  }
  return linalg::CsrMatrix(n, n, std::move(trips));
}

linalg::CsrMatrix incidence(const Graph& g) {
  const std::size_t m = g.num_edges();
  std::vector<linalg::Triplet> trips;
  trips.reserve(2 * m);
  for (std::size_t e = 0; e < m; ++e) {
    const Edge& ed = g.edge(e);
    trips.push_back({e, ed.v, 1.0});   // head
    trips.push_back({e, ed.u, -1.0});  // tail
  }
  return linalg::CsrMatrix(m, g.num_vertices(), std::move(trips));
}

linalg::CsrMatrix incidence(const Digraph& g, std::size_t drop_vertex) {
  const std::size_t m = g.num_arcs();
  const std::size_t n = g.num_vertices();
  assert(drop_vertex < n);
  auto col = [drop_vertex](std::size_t v) {
    return v < drop_vertex ? v : v - 1;
  };
  std::vector<linalg::Triplet> trips;
  trips.reserve(2 * m);
  for (std::size_t a = 0; a < m; ++a) {
    const Arc& arc = g.arc(a);
    if (arc.head != drop_vertex) trips.push_back({a, col(arc.head), 1.0});
    if (arc.tail != drop_vertex) trips.push_back({a, col(arc.tail), -1.0});
  }
  return linalg::CsrMatrix(m, n - 1, std::move(trips));
}

linalg::Vec apply_laplacian(const Graph& g, const linalg::Vec& x) {
  assert(x.size() == g.num_vertices());
  linalg::Vec y(x.size(), 0.0);
  const std::size_t m = g.num_edges();
  // Edge-scatter kernel. Small instances run the sequential loop; large
  // ones use the deterministic chunked reduction (common::thread_pool.h).
  // The grain scales with n so each chunk's n-sized partial is amortized
  // over at least n edges — the zero-init + chunk-order merge stays O(m),
  // never dominating the scatter itself on sparse graphs.
  const std::size_t grain =
      std::max<std::size_t>({32 * 1024, x.size(), 1});
  if (m <= grain) {
    for (const Edge& e : g.edges()) {
      const double d = e.weight * (x[e.u] - x[e.v]);
      y[e.u] += d;
      y[e.v] -= d;
    }
    return y;
  }
  common::parallel_reduce_chunks(
      0, m, grain, linalg::Vec(x.size(), 0.0),
      [&](std::size_t lo, std::size_t hi, linalg::Vec& p) {
        for (std::size_t i = lo; i < hi; ++i) {
          const Edge& e = g.edge(i);
          const double d = e.weight * (x[e.u] - x[e.v]);
          p[e.u] += d;
          p[e.v] -= d;
        }
      },
      [&](linalg::Vec& p) {
        for (std::size_t v = 0; v < y.size(); ++v) y[v] += p[v];
      });
  return y;
}

}  // namespace bcclap::graph
