#include "graph/graph.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <utility>

namespace bcclap::graph {

EdgeId Graph::add_edge(VertexId u, VertexId v, double weight) {
  assert(u != v && "self-loops are not allowed");
  assert(u < num_vertices() && v < num_vertices());
  if (u > v) std::swap(u, v);
  const EdgeId id = edges_.size();
  edges_.push_back({u, v, weight});
  adjacency_[u].push_back(id);
  adjacency_[v].push_back(id);
  return id;
}

VertexId Graph::other_endpoint(EdgeId e, VertexId v) const {
  const Edge& ed = edges_[e];
  assert(ed.u == v || ed.v == v);
  return ed.u == v ? ed.v : ed.u;
}

std::optional<EdgeId> Graph::find_edge(VertexId u, VertexId v) const {
  if (u >= num_vertices() || v >= num_vertices()) return std::nullopt;
  const VertexId probe = degree(u) <= degree(v) ? u : v;
  const VertexId target = probe == u ? v : u;
  for (EdgeId e : adjacency_[probe]) {
    if (other_endpoint(e, probe) == target) return e;
  }
  return std::nullopt;
}

double Graph::total_weight() const {
  double s = 0.0;
  for (const Edge& e : edges_) s += e.weight;
  return s;
}

double Graph::max_weight() const {
  double m = 0.0;
  for (const Edge& e : edges_) m = std::max(m, e.weight);
  return m;
}

std::size_t Graph::max_degree() const {
  std::size_t m = 0;
  for (const auto& adj : adjacency_) m = std::max(m, adj.size());
  return m;
}

bool Graph::is_connected() const {
  const std::size_t n = num_vertices();
  if (n == 0) return true;
  std::vector<bool> seen(n, false);
  std::queue<VertexId> q;
  q.push(0);
  seen[0] = true;
  std::size_t count = 1;
  while (!q.empty()) {
    const VertexId v = q.front();
    q.pop();
    for (EdgeId e : adjacency_[v]) {
      const VertexId u = other_endpoint(e, v);
      if (!seen[u]) {
        seen[u] = true;
        ++count;
        q.push(u);
      }
    }
  }
  return count == n;
}

std::vector<std::size_t> Graph::component_labels() const {
  const std::size_t n = num_vertices();
  std::vector<std::size_t> label(n, static_cast<std::size_t>(-1));
  std::size_t next = 0;
  for (VertexId start = 0; start < n; ++start) {
    if (label[start] != static_cast<std::size_t>(-1)) continue;
    const std::size_t c = next++;
    std::queue<VertexId> q;
    q.push(start);
    label[start] = c;
    while (!q.empty()) {
      const VertexId v = q.front();
      q.pop();
      for (EdgeId e : adjacency_[v]) {
        const VertexId u = other_endpoint(e, v);
        if (label[u] == static_cast<std::size_t>(-1)) {
          label[u] = c;
          q.push(u);
        }
      }
    }
  }
  return label;
}

std::size_t Graph::num_components() const {
  const auto labels = component_labels();
  std::size_t k = 0;
  for (std::size_t l : labels) k = std::max(k, l + 1);
  return num_vertices() == 0 ? 0 : k;
}

std::vector<double> Graph::shortest_paths(VertexId src) const {
  const std::size_t n = num_vertices();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  using Item = std::pair<double, VertexId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[src] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    for (EdgeId e : adjacency_[v]) {
      const VertexId u = other_endpoint(e, v);
      const double nd = d + edges_[e].weight;
      if (nd < dist[u]) {
        dist[u] = nd;
        pq.push({nd, u});
      }
    }
  }
  return dist;
}

}  // namespace bcclap::graph
