// Synthetic workload generators for the experiments.
//
// The paper has no dataset (theory paper); experiments run on standard
// random families. All generators are deterministic in the provided stream.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "graph/digraph.h"
#include "graph/graph.h"

namespace bcclap::graph {

// Erdos-Renyi G(n, p) with integer weights uniform in [1, max_weight],
// with a random Hamiltonian-path backbone added so the result is connected
// (required by Laplacian solving).
Graph random_connected_gnp(std::size_t n, double p, std::int64_t max_weight,
                           rng::Stream& stream);

// Union of `d` random perfect matchings/permutation cycles — an
// expander-like d-regular-ish multigraph collapsed to a simple graph.
Graph random_regularish(std::size_t n, std::size_t d, std::int64_t max_weight,
                        rng::Stream& stream);

// 2D grid graph (rows x cols) with unit or random weights.
Graph grid(std::size_t rows, std::size_t cols, std::int64_t max_weight,
           rng::Stream& stream);

Graph path(std::size_t n);
Graph cycle(std::size_t n);
Graph complete(std::size_t n, std::int64_t max_weight, rng::Stream& stream);

// Two cliques of size n/2 joined by a single edge — worst case for
// unpreconditioned iterative solvers (huge condition number).
Graph barbell(std::size_t n);

// Random directed flow network: connected DAG-ish layered network from s=0
// to t=n-1, capacities in [1, max_capacity], costs in [0, max_cost], plus
// random shortcut arcs. Guarantees at least one s-t path.
Digraph random_flow_network(std::size_t n, std::size_t extra_arcs,
                            std::int64_t max_capacity, std::int64_t max_cost,
                            rng::Stream& stream);

}  // namespace bcclap::graph
