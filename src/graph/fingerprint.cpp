#include "graph/fingerprint.h"

#include <algorithm>
#include <cstring>
#include <tuple>
#include <vector>

namespace bcclap::graph {

namespace {

// splitmix64 finalizer: the standard 64-bit avalanche permutation.
std::uint64_t splitmix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t mix(std::uint64_t h, std::uint64_t token) {
  return splitmix(h ^ token);
}

std::uint64_t weight_bits(double w) {
  // +0.0 and -0.0 share a value but not a bit pattern; normalize so the
  // two spellings of a zero-weight edge hash equal.
  if (w == 0.0) w = 0.0;
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(w), "double must be 64-bit");
  std::memcpy(&bits, &w, sizeof(bits));
  return bits;
}

}  // namespace

Fingerprint fingerprint(const Graph& g) {
  struct Token {
    std::uint64_t u, v, w;
  };
  std::vector<Token> tokens;
  tokens.reserve(g.num_edges());
  for (const Edge& e : g.edges()) {
    const std::uint64_t a = std::min<std::uint64_t>(e.u, e.v);
    const std::uint64_t b = std::max<std::uint64_t>(e.u, e.v);
    tokens.push_back({a, b, weight_bits(e.weight)});
  }
  std::sort(tokens.begin(), tokens.end(), [](const Token& a, const Token& b) {
    return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
  });

  Fingerprint fp;
  fp.vertices = g.num_vertices();
  fp.edges = g.num_edges();
  std::uint64_t hi = mix(0x8c511cb4d3f8e502ULL, fp.vertices);
  std::uint64_t lo = mix(0x2545f4914f6cdd1dULL, fp.vertices);
  hi = mix(hi, fp.edges);
  lo = mix(lo, fp.edges);
  for (const Token& t : tokens) {
    hi = mix(mix(mix(hi, t.u), t.v), t.w);
    lo = mix(mix(mix(lo, t.u), t.v), t.w);
  }
  fp.hi = hi;
  fp.lo = lo;
  return fp;
}

}  // namespace bcclap::graph
