#include "graph/generators.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>

namespace bcclap::graph {

namespace {
double random_weight(std::int64_t max_weight, rng::Stream& stream) {
  if (max_weight <= 1) return 1.0;
  return static_cast<double>(stream.next_int(1, max_weight));
}

std::vector<std::size_t> random_permutation(std::size_t n,
                                            rng::Stream& stream) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t i = n; i > 1; --i) {
    std::swap(perm[i - 1], perm[stream.next_below(i)]);
  }
  return perm;
}
}  // namespace

Graph random_connected_gnp(std::size_t n, double p, std::int64_t max_weight,
                           rng::Stream& stream) {
  Graph g(n);
  std::set<std::pair<std::size_t, std::size_t>> present;
  // Backbone: random Hamiltonian path guarantees connectivity.
  const auto order = random_permutation(n, stream);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto u = std::min(order[i], order[i + 1]);
    const auto v = std::max(order[i], order[i + 1]);
    g.add_edge(u, v, random_weight(max_weight, stream));
    present.insert({u, v});
  }
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t v = u + 1; v < n; ++v) {
      if (present.count({u, v})) continue;
      if (stream.bernoulli(p)) {
        g.add_edge(u, v, random_weight(max_weight, stream));
      }
    }
  }
  return g;
}

Graph random_regularish(std::size_t n, std::size_t d, std::int64_t max_weight,
                        rng::Stream& stream) {
  Graph g(n);
  std::set<std::pair<std::size_t, std::size_t>> present;
  // Connectivity backbone first.
  const auto order = random_permutation(n, stream);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const auto u = std::min(order[i], order[i + 1]);
    const auto v = std::max(order[i], order[i + 1]);
    if (present.insert({u, v}).second) {
      g.add_edge(u, v, random_weight(max_weight, stream));
    }
  }
  for (std::size_t round = 0; round < d; ++round) {
    const auto perm = random_permutation(n, stream);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t a = i;
      const std::size_t b = perm[i];
      if (a == b) continue;
      const auto u = std::min(a, b);
      const auto v = std::max(a, b);
      if (present.insert({u, v}).second) {
        g.add_edge(u, v, random_weight(max_weight, stream));
      }
    }
  }
  return g;
}

Graph grid(std::size_t rows, std::size_t cols, std::int64_t max_weight,
           rng::Stream& stream) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols)
        g.add_edge(id(r, c), id(r, c + 1), random_weight(max_weight, stream));
      if (r + 1 < rows)
        g.add_edge(id(r, c), id(r + 1, c), random_weight(max_weight, stream));
    }
  }
  return g;
}

Graph path(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, 1.0);
  return g;
}

Graph cycle(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1, 1.0);
  if (n > 2) g.add_edge(0, n - 1, 1.0);
  return g;
}

Graph complete(std::size_t n, std::int64_t max_weight, rng::Stream& stream) {
  Graph g(n);
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t v = u + 1; v < n; ++v)
      g.add_edge(u, v, random_weight(max_weight, stream));
  return g;
}

Graph barbell(std::size_t n) {
  assert(n >= 4);
  const std::size_t half = n / 2;
  Graph g(n);
  for (std::size_t u = 0; u < half; ++u)
    for (std::size_t v = u + 1; v < half; ++v) g.add_edge(u, v, 1.0);
  for (std::size_t u = half; u < n; ++u)
    for (std::size_t v = u + 1; v < n; ++v) g.add_edge(u, v, 1.0);
  g.add_edge(half - 1, half, 1.0);
  return g;
}

Digraph random_flow_network(std::size_t n, std::size_t extra_arcs,
                            std::int64_t max_capacity, std::int64_t max_cost,
                            rng::Stream& stream) {
  assert(n >= 2);
  Digraph g(n);
  std::set<std::pair<std::size_t, std::size_t>> present;
  auto add = [&](std::size_t u, std::size_t v) {
    if (u == v || present.count({u, v})) return;
    present.insert({u, v});
    const std::int64_t cap =
        max_capacity <= 1 ? 1 : stream.next_int(1, max_capacity);
    const std::int64_t cost = max_cost <= 0 ? 0 : stream.next_int(0, max_cost);
    g.add_arc(u, v, cap, cost);
  };
  // Guaranteed s -> t path through all vertices in a random interior order.
  std::vector<std::size_t> interior(n - 2);
  std::iota(interior.begin(), interior.end(), 1);
  for (std::size_t i = interior.size(); i > 1; --i)
    std::swap(interior[i - 1], interior[stream.next_below(i)]);
  std::size_t prev = 0;
  for (std::size_t v : interior) {
    add(prev, v);
    prev = v;
  }
  add(prev, n - 1);
  for (std::size_t i = 0; i < extra_arcs; ++i) {
    const std::size_t u = stream.next_below(n);
    const std::size_t v = stream.next_below(n);
    if (u != n - 1 && v != 0) add(u, v);
  }
  return g;
}

}  // namespace bcclap::graph
