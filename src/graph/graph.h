// Weighted undirected graph.
//
// Vertices are 0..n-1 (vertex id doubles as processor id in the BC/BCC
// models). Edges are stored once with u < v plus per-vertex adjacency into
// the edge array. Edge ids are stable, which the sparsifier relies on to
// maintain per-edge survival probabilities across iterations.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

namespace bcclap::graph {

using VertexId = std::size_t;
using EdgeId = std::size_t;

struct Edge {
  VertexId u;
  VertexId v;
  double weight;
};

class Graph {
 public:
  explicit Graph(std::size_t n = 0) : adjacency_(n) {}

  std::size_t num_vertices() const { return adjacency_.size(); }
  std::size_t num_edges() const { return edges_.size(); }

  // Adds edge {u, v} (order normalized to u < v). Self-loops are rejected.
  EdgeId add_edge(VertexId u, VertexId v, double weight);

  const Edge& edge(EdgeId e) const { return edges_[e]; }
  const std::vector<Edge>& edges() const { return edges_; }

  // Incident edge ids of v.
  const std::vector<EdgeId>& incident(VertexId v) const {
    return adjacency_[v];
  }
  // The endpoint of edge e that is not v.
  VertexId other_endpoint(EdgeId e, VertexId v) const;

  // Edge id of {u, v} if present.
  std::optional<EdgeId> find_edge(VertexId u, VertexId v) const;

  double total_weight() const;
  double max_weight() const;
  std::size_t degree(VertexId v) const { return adjacency_[v].size(); }
  std::size_t max_degree() const;

  bool is_connected() const;

  // Connected-component label per vertex (labels are 0..k-1 in discovery
  // order) and the number of components.
  std::vector<std::size_t> component_labels() const;
  std::size_t num_components() const;

  // Weighted shortest-path distances from src (Dijkstra). Disconnected
  // vertices get +infinity. Used by spanner stretch verification.
  std::vector<double> shortest_paths(VertexId src) const;

  void set_weight(EdgeId e, double w) { edges_[e].weight = w; }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;
};

}  // namespace bcclap::graph
