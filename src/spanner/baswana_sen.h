// Baswana-Sen (2k-1)-spanner, the Appendix A baseline.
//
// This is the deterministic-edge algorithm the probabilistic spanner of
// Section 3.1 reduces to when p == 1; it is implemented independently (and
// centralized — we only need it as a correctness oracle and size baseline,
// not as a distributed program).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace bcclap::spanner {

struct BaswanaSenResult {
  std::vector<graph::EdgeId> spanner_edges;
  // cluster_of[v] after the final phase; SIZE_MAX = unclustered.
  std::vector<std::size_t> final_cluster;
};

BaswanaSenResult baswana_sen(const graph::Graph& g, std::size_t k,
                             rng::Stream& stream);

// Verifies d_S(u,v) <= stretch * d_G(u,v) for all vertex pairs (exact, via
// Dijkstra from every vertex — test-sized graphs only).
bool verify_stretch(const graph::Graph& g,
                    const std::vector<graph::EdgeId>& spanner_edges,
                    double stretch);

}  // namespace bcclap::spanner
