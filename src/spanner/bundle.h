// t-bundle spanner (Algorithm 3): t successive spanners, each computed on
// the edge set remaining after removing everything the previous spanners
// decided (F+ and F-).
//
// Execution context: all parallel phases dispatch through `net.context()`
// (the Runtime the network was built under), so bundles of two different
// Runtimes never share a pool.
#pragma once

#include <cstdint>
#include <vector>

#include "bcc/network.h"
#include "common/rng.h"
#include "graph/graph.h"
#include "spanner/probabilistic_spanner.h"

namespace bcclap::spanner {

struct BundleResult {
  std::vector<graph::EdgeId> bundle_edges;   // B = union of F+_i
  std::vector<graph::EdgeId> deleted_edges;  // C = union of F-_i
  std::vector<graph::VertexId> out_vertex;   // orientation per bundle edge
  bool deduction_consistent = true;
  std::int64_t rounds = 0;
};

// `pure_oracle` forwards ProbabilisticSpannerOptions::pure_oracle to every
// spanner of the bundle: set it when `oracle` is a pure function of the
// edge id (the sparsifier's survival coins) to let the sampling phase fan
// out across the worker pool.
BundleResult bundle_spanner(const graph::Graph& g,
                            const std::vector<bool>& available,
                            const std::vector<double>& weights, std::size_t k,
                            std::size_t t, const ExistenceOracle& oracle,
                            rng::Stream& mark_stream, bcc::Network& net,
                            bool pure_oracle = false);

}  // namespace bcclap::spanner
