// Spanner computation on a graph with probabilistic edges (Section 3.1).
//
// Input: a graph whose edges exist only with probability p_e (maintained by
// the sparsifier), a stretch parameter k. The algorithm decides edge
// existence lazily inside Connect and communicates each decision
// *implicitly*: a vertex broadcasts only which edge it connected with, and
// every neighbour deduces from that broadcast (plus the shared candidate
// order) whether its own edge was sampled away. The run returns
//   F+ : edges decided to exist (they form the spanner),
//   F- : edges decided not to exist,
// and S = (V, F+) is a (2k-1)-spanner of (V, F+ u E'') for any E'' subset
// of the still-undecided edges (Lemma 3.1).
//
// The implementation runs as a bulk-synchronous program on a Broadcast
// CONGEST network and *replays the paper's deduction rules at every
// receiving vertex*; `deduction_consistent` reports whether every deduced
// edge state matched the decider's, i.e. it machine-checks the paper's
// implicit-communication claim on every run.
//
// Execution context: every parallel phase dispatches through
// `net.context()` — the Runtime the network was built under — never a
// process-global pool.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "bcc/network.h"
#include "common/rng.h"
#include "graph/graph.h"

namespace bcclap::spanner {

enum class EdgeDecision : std::uint8_t { kUndecided, kExists, kDeleted };

// Existence oracle: called exactly once per undecided edge, when Connect
// first samples it. The sparsifier supplies survival-coin sampling here
// (which realizes the Lemma 3.3 coupling); standalone callers supply a
// plain Bernoulli(p_e).
using ExistenceOracle = std::function<bool(graph::EdgeId)>;

struct ProbabilisticSpannerOptions {
  std::size_t k = 2;
  // Edges eligible for this run (empty = all). Ineligible edges are
  // invisible to the algorithm.
  std::vector<bool> available;
  // Current (possibly rescaled) integer weights; empty = graph weights.
  std::vector<double> weights;
  // Declares the existence oracle a pure function of the edge id (no
  // internal state advanced per call — the sparsifier's survival coins
  // are the canonical case). The sampling phase then fans out across the
  // worker pool instead of walking nodes sequentially; the result is
  // identical to the sequential walk because within one superstep every
  // edge has a unique decider. Leave false for stateful oracles
  // (sequential RNG streams), whose call order the engine must pin.
  bool pure_oracle = false;
};

struct ProbabilisticSpannerResult {
  std::vector<graph::EdgeId> f_plus;
  std::vector<graph::EdgeId> f_minus;
  // out_vertex[i] is the endpoint that added f_plus[i]; this is the
  // orientation of Lemma 3.1 (bounded out-degree).
  std::vector<graph::VertexId> out_vertex;
  // True iff every neighbour's deduced edge state matched the actual
  // decision at the end of the run (the Section 3.1 claim).
  bool deduction_consistent = true;
  // Rounds charged on the network by this run.
  std::int64_t rounds = 0;
};

ProbabilisticSpannerResult spanner_with_probabilistic_edges(
    const graph::Graph& g, const ProbabilisticSpannerOptions& opt,
    const ExistenceOracle& oracle, rng::Stream& mark_stream,
    bcc::Network& net);

}  // namespace bcclap::spanner
