#include "spanner/bundle.h"

namespace bcclap::spanner {

BundleResult bundle_spanner(const graph::Graph& g,
                            const std::vector<bool>& available,
                            const std::vector<double>& weights, std::size_t k,
                            std::size_t t, const ExistenceOracle& oracle,
                            rng::Stream& mark_stream, bcc::Network& net,
                            bool pure_oracle) {
  BundleResult out;
  std::vector<bool> avail = available;
  const std::int64_t start = net.accountant().mark();
  for (std::size_t i = 0; i < t; ++i) {
    ProbabilisticSpannerOptions opt;
    opt.k = k;
    opt.available = avail;
    opt.weights = weights;
    opt.pure_oracle = pure_oracle;
    auto res =
        spanner_with_probabilistic_edges(g, opt, oracle, mark_stream, net);
    out.deduction_consistent &= res.deduction_consistent;
    for (std::size_t j = 0; j < res.f_plus.size(); ++j) {
      out.bundle_edges.push_back(res.f_plus[j]);
      out.out_vertex.push_back(res.out_vertex[j]);
      avail[res.f_plus[j]] = false;
    }
    for (graph::EdgeId e : res.f_minus) {
      out.deleted_edges.push_back(e);
      avail[e] = false;
    }
  }
  out.rounds = net.accountant().since(start);
  return out;
}

}  // namespace bcclap::spanner
