// The Connect procedure (Algorithm 2).
//
// Given the candidate neighbours of a vertex inside one target cluster,
// sorted ascending by (edge weight, neighbour id), Connect walks the list
// sampling each edge's existence; the first accepted edge is returned and
// every edge rejected before it is reported deleted. Candidates after the
// accepted one are left untouched (they stay probabilistic).
//
// Edge existence is sampled through a callback so the caller controls the
// coupling: the standalone spanner uses a fresh Bernoulli(p_e) draw, while
// the sparsifier uses per-iteration survival coins, which makes the ad-hoc
// algorithm *bitwise* equal to the a-priori one under a shared seed — the
// constructive form of Lemma 3.3.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "graph/graph.h"

namespace bcclap::spanner {

struct Candidate {
  graph::VertexId u;
  graph::EdgeId e;
  double weight;
};

struct ConnectResult {
  std::optional<Candidate> accepted;
  std::vector<Candidate> rejected;  // the N^- set
};

// `exists` is invoked at most once per candidate, in sorted order, until one
// returns true. It must encapsulate the "already decided to exist" case by
// returning true deterministically.
ConnectResult connect(std::vector<Candidate> candidates,
                      const std::function<bool(graph::EdgeId)>& exists);

// The (weight, id) candidate order used throughout Section 3.1; exposed for
// the deduction rules, which must replay the same comparisons.
bool candidate_less(const Candidate& a, const Candidate& b);

}  // namespace bcclap::spanner
